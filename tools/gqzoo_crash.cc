// gqzoo_crash: process-level crash-recovery harness for the durability
// subsystem.
//
// The parent drives a matrix of (crash site × kill mode × firing point)
// cells. For each cell it forks a child of this same binary into a fresh
// durability directory; the child arms the site from GQZOO_FAILPOINTS
// (Failpoint::ArmFromEnv) and runs a fixed, deterministic mutation script
// through a real QueryEngine, appending an fsynced ledger line to
// `acks.log` after every acknowledged batch. The armed failpoint kills the
// child mid-WAL-append, mid-checkpoint-write, or mid-WAL-rotation
// (_exit or SIGKILL, plus simulated torn writes cut at a byte offset).
//
// The parent then recovers the directory in-process and checks, against a
// GraphSim reference ledger, that the recovered graph renders
// byte-identical to the state after some *whole* prefix of the script of
// at least every acknowledged batch — every acked batch durable, no batch
// half-applied — and that recovering twice is idempotent. After a clean
// (uncrashed) run it also damages the WAL directly: a flipped mid-log byte
// must make recovery refuse with kDataLoss (never silently truncate acked
// writes), a truncated tail must recover with a torn-tail warning, and a
// deleted WAL must be kDataLoss.
//
// A final drain scenario runs the same script over the network front-end
// (a `--serve-child` with a 5-second group-commit window) and SIGTERMs the
// server mid-script: the graceful drain must flush the WAL so every batch
// whose DONE the client received survives recovery.
//
// Usage:
//   gqzoo_crash                        # the full matrix
//   gqzoo_crash --site=wal.append      # cells whose site contains the text
//   gqzoo_crash --mode=kill            # restrict the kill mode
//   gqzoo_crash --list                 # print the matrix, run nothing
//   gqzoo_crash --workdir=PATH         # where cell directories live
//   gqzoo_crash --keep                 # keep directories of passing cells
//   gqzoo_crash --child --dir=D        # internal: the scripted victim
//   gqzoo_crash --serve-child --dir=D  # internal: the served victim

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/fuzz/mutation_gen.h"
#include "src/graph/delta/delta.h"
#include "src/graph/graph_io.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/storage/wal.h"
#include "src/util/failpoint.h"
#include "src/util/value.h"

namespace {

using gqzoo::MutationBatch;
using gqzoo::MutationOp;
using gqzoo::ParsePropertyGraph;
using gqzoo::PropertyGraph;
using gqzoo::PropertyGraphToText;
using gqzoo::QueryEngine;
using gqzoo::Result;
using gqzoo::Value;

// Low enough that the script triggers several synchronous compactions —
// and with them checkpoint writes and WAL rotations for the storage.ckpt.*
// and storage.wal.rotate.* sites to fire from.
constexpr size_t kCompactMinOps = 10;
// Chosen so the clean run ends with two un-checkpointed residual records in
// the WAL (the corruption scenarios need a non-empty log to damage).
constexpr int kScriptBatches = 46;

PropertyGraph InitialGraph() {
  static const char* kText =
      "node a :Account { owner = \"ann\", balance = 10 }\n"
      "node b :Account { owner = \"bob\" }\n"
      "node c :Bank\n"
      "edge t0 :Transfer a -> b { amount = 3 }\n"
      "edge t1 :Owns c -> a\n";
  return ParsePropertyGraph(kText).value();
}

/// The fixed mutation script. Valid-by-construction: every op is accepted,
/// so the child's acked-batch count and the parent's GraphSim ledger line
/// up one-to-one.
std::vector<MutationBatch> BuildScript() {
  static const char* kLabels[3] = {"Account", "Bank", "Audit"};
  std::vector<MutationBatch> batches;
  for (int i = 0; i < kScriptBatches; ++i) {
    MutationBatch b;
    const std::string node = "w" + std::to_string(i);
    b.AddNode(node, kLabels[i % 3]);
    if (i % 2 == 0) {
      b.AddEdge("s" + std::to_string(i), node,
                i == 0 ? "a" : "w" + std::to_string(i - 1), "Transfer");
    }
    switch (i % 3) {
      case 0:
        b.SetNodeProperty(node, "balance", Value(static_cast<int64_t>(i)));
        break;
      case 1:
        b.SetNodeProperty(node, "note",
                          Value("n \"quoted\"\t" + std::to_string(i)));
        break;
      default:
        b.SetNodeProperty(node, "flag", Value(i % 6 == 2));
        break;
    }
    if (i % 11 == 10) b.RemoveNode("w" + std::to_string(i - 5));
    batches.push_back(std::move(b));
  }
  return batches;
}

QueryEngine::Options EngineOptions(const std::string& dir) {
  QueryEngine::Options options;
  options.num_threads = 2;
  options.mutation.compact_min_ops = kCompactMinOps;
  options.mutation.compact_ratio = 0;              // only the op-count trigger
  options.mutation.background_compaction = false;  // deterministic firing
  options.durability.dir = dir;
  return options;
}

// ---------------------------------------------------------------------------
// Child: apply the script, ledger every ack, die when the failpoint fires.

int RunChild(const std::string& dir) {
  gqzoo::Failpoint::ArmFromEnv();
  Result<std::unique_ptr<QueryEngine>> opened =
      QueryEngine::RecoverFrom(InitialGraph(), EngineOptions(dir));
  if (!opened.ok()) {
    std::fprintf(stderr, "child: recover failed: %s\n",
                 opened.error().message().c_str());
    return 3;
  }
  std::unique_ptr<QueryEngine> engine = std::move(opened).value();

  const std::string acks_path = dir + "/acks.log";
  int ack_fd = ::open(acks_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) {
    std::perror("child: open acks.log");
    return 3;
  }
  std::vector<MutationBatch> script = BuildScript();
  for (size_t i = 0; i < script.size(); ++i) {
    Result<QueryEngine::MutationResult> applied =
        engine->ApplyMutation(script[i]);
    if (!applied.ok()) {
      std::fprintf(stderr, "child: batch %zu rejected: %s\n", i,
                   applied.error().message().c_str());
      return 4;
    }
    // The ledger line is the ack: fsynced before the next batch so the
    // parent can trust it even across SIGKILL.
    char line[32];
    int n = std::snprintf(line, sizeof(line), "%zu\n", i);
    if (::write(ack_fd, line, static_cast<size_t>(n)) != n ||
        ::fsync(ack_fd) != 0) {
      std::perror("child: ack write");
      return 3;
    }
  }
  ::close(ack_fd);
  return 0;
}

// ---------------------------------------------------------------------------
// Serve child: the same durable engine, but behind the network front-end.
// SIGTERM must drain gracefully — finish or shed in-flight work, flush the
// group-commit window — so that no DONE-acked batch is ever lost.

volatile std::sig_atomic_t g_serve_stop = 0;

void HandleServeStop(int) { g_serve_stop = 1; }

int RunServeChild(const std::string& dir) {
  QueryEngine::Options options = EngineOptions(dir);
  // A huge group-commit window: DONE acks outrun fsyncs by design, so the
  // drain's FlushWal is the *only* thing standing between an acked batch
  // and data loss. That is exactly the property under test.
  options.durability.group_commit_window_ms = 5000;
  Result<std::unique_ptr<QueryEngine>> opened =
      QueryEngine::RecoverFrom(InitialGraph(), options);
  if (!opened.ok()) {
    std::fprintf(stderr, "serve-child: recover failed: %s\n",
                 opened.error().message().c_str());
    return 3;
  }
  std::unique_ptr<QueryEngine> engine = std::move(opened).value();

  gqzoo::server::ServerOptions server_options;
  server_options.drain_deadline = std::chrono::milliseconds(2000);
  gqzoo::server::GraphServer server(engine.get(), server_options);
  Result<bool> started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve-child: start failed: %s\n",
                 started.error().message().c_str());
    return 3;
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleServeStop;
  ::sigaction(SIGTERM, &sa, nullptr);

  // Publish the ephemeral port via write-then-rename so the parent never
  // reads a half-written file.
  {
    const std::string tmp = dir + "/port.txt.tmp";
    std::ofstream out(tmp);
    out << server.port() << "\n";
    out.close();
    if (!out.good() ||
        std::rename(tmp.c_str(), (dir + "/port.txt").c_str()) != 0) {
      std::fprintf(stderr, "serve-child: cannot publish port\n");
      return 3;
    }
  }

  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.Shutdown();
  return 0;
}

// ---------------------------------------------------------------------------
// Parent: the matrix.

struct Cell {
  std::string site;
  std::string mode;    // "exit" or "kill"
  uint64_t after_n;    // passes before the site fires
  uint64_t arg;        // torn sites: bytes written before the crash
  std::string spec() const {
    std::string s = site + ":" + mode + ":" + std::to_string(after_n);
    if (arg != 0) s += ":" + std::to_string(arg);
    return s;
  }
};

std::vector<Cell> BuildMatrix() {
  // after_n for append sites counts WAL appends; for checkpoint/rotation
  // sites pass 0 hits the *initialization* checkpoint of the fresh
  // directory and pass 1 the first compaction checkpoint of real data.
  struct Site {
    const char* name;
    std::vector<uint64_t> after;
    std::vector<uint64_t> args;  // empty = not a torn site
  };
  const std::vector<Site> sites = {
      {"storage.wal.append.before", {0, 4}, {}},
      {"storage.wal.append.torn", {0, 4}, {0, 5, 13}},
      {"storage.wal.append.before_sync", {0, 4}, {}},
      {"storage.wal.append.after_sync", {0, 4}, {}},
      // Torn cuts target the snapshot-format structure: 0/7 die before and
      // inside the magic, 512 mid-region-table, 1500 mid-region-payload —
      // every partial prefix of the new checkpoint file must be survivable
      // (it is still a .tmp; recovery never sees it as a checkpoint).
      {"storage.ckpt.write.torn", {0, 1}, {0, 7, 512, 1500}},
      {"storage.ckpt.before_rename", {0, 1}, {}},
      {"storage.ckpt.after_rename", {0, 1}, {}},
      {"storage.wal.rotate.torn", {0, 1}, {3, 10}},
      {"storage.wal.rotate.before_rename", {0, 1}, {}},
      {"storage.wal.rotate.after_rename", {0, 1}, {}},
  };
  std::vector<Cell> cells;
  for (const Site& site : sites) {
    for (const char* mode : {"exit", "kill"}) {
      for (uint64_t after : site.after) {
        if (site.args.empty()) {
          cells.push_back({site.name, mode, after, 0});
        } else {
          for (uint64_t arg : site.args) {
            cells.push_back({site.name, mode, after, arg});
          }
        }
      }
    }
  }
  return cells;
}

std::string SelfExe() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

/// Renders the reference state after each whole batch prefix (index 0 = the
/// initial graph).
std::vector<std::string> ReferenceSnapshots(const PropertyGraph& initial) {
  gqzoo::fuzz::GraphSim sim(initial);
  std::vector<std::string> snapshots = {PropertyGraphToText(sim.Build())};
  for (const MutationBatch& batch : BuildScript()) {
    for (const MutationOp& op : batch.ops) {
      Result<bool> ok = sim.Apply(op);
      if (!ok.ok()) {
        std::fprintf(stderr, "FATAL: script op rejected by GraphSim: %s\n",
                     op.ToString().c_str());
        std::exit(2);
      }
    }
    snapshots.push_back(PropertyGraphToText(sim.Build()));
  }
  return snapshots;
}

size_t CountAcks(const std::string& dir) {
  std::ifstream in(dir + "/acks.log");
  size_t n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++n;
  }
  return n;
}

struct CellResult {
  bool ok = false;
  std::string detail;
};

/// Recovers `dir` and checks prefix consistency against the reference
/// ledger: the recovered render must equal snapshot[j] for some whole
/// prefix j with acked ≤ j ≤ total, and a second recovery must agree.
CellResult VerifyRecovery(const std::string& dir,
                          const std::vector<std::string>& snapshots,
                          size_t acked) {
  CellResult r;
  std::string first_render;
  for (int round = 0; round < 2; ++round) {
    Result<std::unique_ptr<QueryEngine>> opened =
        QueryEngine::RecoverFrom(InitialGraph(), EngineOptions(dir));
    if (!opened.ok()) {
      r.detail = "recovery failed: " + opened.error().message();
      return r;
    }
    const std::string render =
        PropertyGraphToText(*opened.value()->graph_snapshot());
    if (round == 0) {
      first_render = render;
    } else if (render != first_render) {
      r.detail = "second recovery disagreed with the first";
      return r;
    }
  }
  size_t matched = snapshots.size();
  for (size_t j = 0; j < snapshots.size(); ++j) {
    if (snapshots[j] == first_render) {
      matched = j;
      break;
    }
  }
  if (matched == snapshots.size()) {
    r.detail = "recovered state matches no whole batch prefix (acked " +
               std::to_string(acked) + ")";
    return r;
  }
  if (matched < acked) {
    r.detail = "acked batch lost: recovered prefix " + std::to_string(matched) +
               " < acked " + std::to_string(acked);
    return r;
  }
  r.ok = true;
  r.detail = "prefix " + std::to_string(matched) + "/" +
             std::to_string(snapshots.size() - 1) + ", acked " +
             std::to_string(acked);
  return r;
}

CellResult RunCell(const std::string& self, const Cell& cell,
                   const std::string& dir,
                   const std::vector<std::string>& snapshots) {
  CellResult r;
  std::filesystem::create_directories(dir);
  pid_t pid = ::fork();
  if (pid < 0) {
    r.detail = "fork failed";
    return r;
  }
  if (pid == 0) {
    ::setenv("GQZOO_FAILPOINTS", cell.spec().c_str(), 1);
    std::string dir_flag = "--dir=" + dir;
    ::execl(self.c_str(), self.c_str(), "--child", dir_flag.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);

  const bool exited_42 = WIFEXITED(status) && WEXITSTATUS(status) == 42;
  const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  if (cell.mode == "exit" ? !exited_42 : !killed) {
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      r.detail = "failpoint never fired (child ran to completion)";
    } else {
      r.detail = "child died the wrong way (status " + std::to_string(status) +
                 ")";
    }
    return r;
  }
  return VerifyRecovery(dir, snapshots, CountAcks(dir));
}

/// After a clean run, damage the WAL directly and check recovery's refusal
/// policy end-to-end: mid-log flip ⇒ kDataLoss, torn tail ⇒ truncate +
/// warn, missing WAL ⇒ kDataLoss.
int RunCorruptionScenarios(const std::string& self, const std::string& workdir,
                           const std::vector<std::string>& snapshots) {
  int failures = 0;
  auto scenario = [&](const char* name, auto damage, auto check) {
    const std::string dir = workdir + "/" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    pid_t pid = ::fork();
    if (pid == 0) {
      ::unsetenv("GQZOO_FAILPOINTS");
      std::string dir_flag = "--dir=" + dir;
      ::execl(self.c_str(), self.c_str(), "--child", dir_flag.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::printf("FAIL %-28s clean child run died (status %d)\n", name,
                  status);
      ++failures;
      return;
    }
    if (!damage(dir)) {
      std::printf("FAIL %-28s damage step could not run\n", name);
      ++failures;
      return;
    }
    std::string detail;
    if (!check(dir, &detail)) {
      std::printf("FAIL %-28s %s\n", name, detail.c_str());
      std::printf("     dir kept for inspection: %s\n", dir.c_str());
      ++failures;
      return;
    }
    std::printf("ok   %-28s %s\n", name, detail.c_str());
    std::filesystem::remove_all(dir);
  };

  // Flipping a byte inside the first residual record's payload (the WAL
  // after a clean run holds the batches since the last checkpoint).
  scenario(
      "midlog-flip-kdataloss",
      [](const std::string& dir) {
        Result<std::string> bytes =
            gqzoo::storage::ReadFileBytes(dir + "/wal.log");
        if (!bytes.ok()) return false;
        Result<gqzoo::storage::WalDecodeResult> decoded =
            gqzoo::storage::DecodeWal(bytes.value());
        if (!decoded.ok() || decoded.value().records.size() < 2) return false;
        std::string damaged = bytes.value();
        damaged[gqzoo::storage::kWalHeaderBytes +
                gqzoo::storage::kWalFrameBytes + 1] ^= 0xFF;
        std::ofstream out(dir + "/wal.log", std::ios::binary);
        out << damaged;
        return out.good();
      },
      [](const std::string& dir, std::string* detail) {
        Result<std::unique_ptr<QueryEngine>> opened =
            QueryEngine::RecoverFrom(InitialGraph(), EngineOptions(dir));
        if (opened.ok()) {
          *detail = "recovery served a mid-log-corrupted WAL";
          return false;
        }
        if (opened.error().code() != gqzoo::ErrorCode::kDataLoss) {
          *detail = "expected kDataLoss, got " + opened.error().message();
          return false;
        }
        *detail = "refused with kDataLoss";
        return true;
      });

  scenario(
      "torn-tail-truncate",
      [](const std::string& dir) {
        std::error_code ec;
        const auto size =
            std::filesystem::file_size(dir + "/wal.log", ec);
        if (ec || size < gqzoo::storage::kWalHeaderBytes + 4) return false;
        std::filesystem::resize_file(dir + "/wal.log", size - 3, ec);
        return !ec;
      },
      [&snapshots](const std::string& dir, std::string* detail) {
        Result<std::unique_ptr<QueryEngine>> opened =
            QueryEngine::RecoverFrom(InitialGraph(), EngineOptions(dir));
        if (!opened.ok()) {
          *detail = "torn tail was not recoverable: " +
                    opened.error().message();
          return false;
        }
        const gqzoo::storage::RecoveryInfo& info =
            opened.value()->recovery_info();
        if (!info.tail_truncated || info.warning.empty()) {
          *detail = "tail truncation not surfaced in RecoveryInfo";
          return false;
        }
        const std::string render =
            PropertyGraphToText(*opened.value()->graph_snapshot());
        // The cut record was the last acked batch; the rest must survive.
        if (render != snapshots[snapshots.size() - 2]) {
          *detail = "torn tail recovered to an unexpected prefix";
          return false;
        }
        *detail = "truncated one record, warned";
        return true;
      });

  // Flipping one byte inside the *published* newest checkpoint (a snapshot
  // file). The mmap instant-restart path must reject it on its checksum
  // sweep and the decode fallback must refuse to serve the stale older
  // checkpoint, because the residual WAL records no longer chain onto it.
  scenario(
      "ckpt-flip-kdataloss",
      [](const std::string& dir) {
        std::string newest;
        uint64_t best = 0;
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
          const std::string name = entry.path().filename().string();
          if (name.rfind("checkpoint-", 0) != 0) continue;
          uint64_t lsn = std::strtoull(name.c_str() + 11, nullptr, 10);
          if (newest.empty() || lsn > best) {
            best = lsn;
            newest = entry.path().string();
          }
        }
        if (newest.empty()) return false;
        Result<std::string> bytes = gqzoo::storage::ReadFileBytes(newest);
        if (!bytes.ok()) return false;
        std::string damaged = bytes.value();
        damaged[damaged.size() / 2] ^= 0x01;  // mid-file: a region payload
        std::ofstream out(newest, std::ios::binary);
        out << damaged;
        return out.good();
      },
      [](const std::string& dir, std::string* detail) {
        Result<std::unique_ptr<QueryEngine>> opened =
            QueryEngine::RecoverFrom(InitialGraph(), EngineOptions(dir));
        if (opened.ok()) {
          *detail = "recovery served a corrupted checkpoint";
          return false;
        }
        if (opened.error().code() != gqzoo::ErrorCode::kDataLoss) {
          *detail = "expected kDataLoss, got " + opened.error().message();
          return false;
        }
        *detail = "mmap + decode both refused, kDataLoss";
        return true;
      });

  scenario(
      "missing-wal-kdataloss",
      [](const std::string& dir) {
        return std::filesystem::remove(dir + "/wal.log");
      },
      [](const std::string& dir, std::string* detail) {
        Result<std::unique_ptr<QueryEngine>> opened =
            QueryEngine::RecoverFrom(InitialGraph(), EngineOptions(dir));
        if (opened.ok() ||
            opened.error().code() != gqzoo::ErrorCode::kDataLoss) {
          *detail = "deleted WAL must be kDataLoss";
          return false;
        }
        *detail = "refused with kDataLoss";
        return true;
      });

  return failures;
}

/// SIGTERM-during-serve: run the script over the wire against a serve
/// child whose group-commit window is far longer than the run, SIGTERM it
/// mid-script, and check that every batch whose DONE the client saw
/// survives recovery. This is the end-to-end drain guarantee: the drain's
/// FlushWal — not the group-commit timer — makes the acked tail durable.
int RunServeScenario(const std::string& self, const std::string& workdir,
                     const std::vector<std::string>& snapshots) {
  const char* name = "sigterm-during-serve";
  const std::string dir = workdir + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  pid_t pid = ::fork();
  if (pid < 0) {
    std::printf("FAIL %-28s fork failed\n", name);
    return 1;
  }
  if (pid == 0) {
    ::unsetenv("GQZOO_FAILPOINTS");
    std::string dir_flag = "--dir=" + dir;
    ::execl(self.c_str(), self.c_str(), "--serve-child", dir_flag.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }

  auto fail = [&](const std::string& detail) {
    std::printf("FAIL %-28s %s\n", name, detail.c_str());
    std::printf("     dir kept for inspection: %s\n", dir.c_str());
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return 1;
  };

  // Wait for the child to publish its port.
  uint16_t port = 0;
  const auto port_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (std::chrono::steady_clock::now() < port_deadline) {
    std::ifstream in(dir + "/port.txt");
    unsigned value = 0;
    if (in >> value && value > 0 && value < 65536) {
      port = static_cast<uint16_t>(value);
      break;
    }
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      return fail("serve child died before publishing its port (status " +
                  std::to_string(status) + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (port == 0) return fail("serve child never published a port");

  Result<gqzoo::server::Client> connected =
      gqzoo::server::Client::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    return fail("connect: " + connected.error().message());
  }
  gqzoo::server::Client client = std::move(connected).value();
  Result<bool> hello = client.Hello("crash");
  if (!hello.ok()) return fail("hello: " + hello.error().message());

  // Stream the script over the wire; the SIGTERM lands halfway through,
  // while MUTATE frames are still in flight. A DONE with ok=true is the
  // server's durability promise; anything else (kUnavailable from the
  // drain, a dropped connection) ends the run un-acked.
  std::vector<MutationBatch> script = BuildScript();
  size_t acked = 0;
  for (size_t i = 0; i < script.size(); ++i) {
    if (i == script.size() / 2) {
      ::kill(pid, SIGTERM);
      // Give the child's signal poll a beat so the drain is underway;
      // the remaining sends land during it and are refused (or the
      // connection is gone), ending the acked prefix mid-script.
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    std::vector<std::string> lines;
    lines.reserve(script[i].ops.size());
    for (const MutationOp& op : script[i].ops) lines.push_back(op.ToString());
    Result<gqzoo::server::DoneStatus> done = client.Mutate(lines);
    if (!done.ok() || !done.value().ok) break;
    ++acked;
  }
  client.Close();

  // The drain must end in a clean exit: every in-flight DONE written,
  // the WAL flushed, exit code 0 — never a hang or a crash.
  int status = 0;
  const auto exit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (::waitpid(pid, &status, WNOHANG) != pid) {
    if (std::chrono::steady_clock::now() >= exit_deadline) {
      return fail("serve child did not exit after SIGTERM");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return fail("serve child exited uncleanly (status " +
                std::to_string(status) + ")");
  }
  if (acked == 0 || acked >= script.size()) {
    return fail("drain timing degenerate: acked " + std::to_string(acked) +
                " of " + std::to_string(script.size()));
  }

  CellResult result = VerifyRecovery(dir, snapshots, acked);
  if (!result.ok) {
    std::printf("FAIL %-28s %s\n", name, result.detail.c_str());
    std::printf("     dir kept for inspection: %s\n", dir.c_str());
    return 1;
  }
  std::printf("ok   %-28s %s\n", name, result.detail.c_str());
  std::filesystem::remove_all(dir);
  return 0;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string child_dir;
  std::string site_filter;
  std::string mode_filter;
  std::string workdir = "gqzoo_crash_work";
  bool list_only = false;
  bool keep = false;
  bool child = false;
  bool serve_child = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--child") {
      child = true;
    } else if (arg == "--serve-child") {
      serve_child = true;
    } else if (ParseFlag(arg, "dir", &value)) {
      child_dir = value;
    } else if (ParseFlag(arg, "site", &value)) {
      site_filter = value;
    } else if (ParseFlag(arg, "mode", &value)) {
      mode_filter = value;
    } else if (ParseFlag(arg, "workdir", &value)) {
      workdir = value;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--keep") {
      keep = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--site=SUBSTR] [--mode=exit|kill] [--list]\n"
                   "          [--workdir=PATH] [--keep]\n",
                   argv[0]);
      return 2;
    }
  }
  if (child || serve_child) {
    if (child_dir.empty()) {
      std::fprintf(stderr, "--child/--serve-child requires --dir\n");
      return 2;
    }
    return child ? RunChild(child_dir) : RunServeChild(child_dir);
  }

  // The parent must never inherit an armed failpoint into itself.
  ::unsetenv("GQZOO_FAILPOINTS");

  std::vector<Cell> cells;
  for (const Cell& cell : BuildMatrix()) {
    if (!site_filter.empty() &&
        cell.site.find(site_filter) == std::string::npos) {
      continue;
    }
    if (!mode_filter.empty() && cell.mode != mode_filter) continue;
    cells.push_back(cell);
  }
  if (list_only) {
    for (const Cell& cell : cells) std::printf("%s\n", cell.spec().c_str());
    return 0;
  }

  const std::string self = SelfExe();
  if (self.empty()) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
    return 2;
  }
  std::filesystem::create_directories(workdir);
  const std::vector<std::string> snapshots = ReferenceSnapshots(InitialGraph());

  int failures = 0;
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const std::string dir = workdir + "/cell-" + std::to_string(i);
    std::filesystem::remove_all(dir);
    CellResult result = RunCell(self, cell, dir, snapshots);
    if (result.ok) {
      std::printf("ok   %-44s %s\n", cell.spec().c_str(),
                  result.detail.c_str());
      if (!keep) std::filesystem::remove_all(dir);
    } else {
      std::printf("FAIL %-44s %s\n", cell.spec().c_str(),
                  result.detail.c_str());
      std::printf("     dir kept for inspection: %s\n", dir.c_str());
      ++failures;
    }
  }

  failures += RunCorruptionScenarios(self, workdir, snapshots);
  failures += RunServeScenario(self, workdir, snapshots);

  if (failures != 0) {
    std::printf("FAILED: %d of %zu crash cells + scenarios\n", failures,
                cells.size() + 4);
    return 1;
  }
  std::printf("OK: %zu crash cells + 4 corruption scenarios + 1 drain "
              "scenario recovered consistently\n",
              cells.size());
  if (!keep) {
    std::error_code ec;
    std::filesystem::remove_all(workdir, ec);
  }
  return 0;
}
