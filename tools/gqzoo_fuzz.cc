// gqzoo_fuzz: randomized differential fuzzing harness for the query zoo.
//
// Every case is derived from a single 64-bit seed: a random property graph
// (paper-shaped families: chains, cliques, diamonds, parallel chains), a
// random query in one of the zoo languages, and optionally an injected
// resource budget. Each case runs through the full substrate matrix
// (graph-scan vs CSR snapshot, serial vs sharded, planner vs textual join
// order, cold vs cached plan, budget/fail-point injection) plus the
// metamorphic properties; any disagreement is minimized with delta
// debugging and emitted as a ready-to-commit corpus file and regression
// test.
//
// Usage:
//   gqzoo_fuzz --seed=42 --cases=10000        # campaign
//   gqzoo_fuzz --smoke                        # CI: ~60s time-boxed run
//   gqzoo_fuzz --seed=42 --case=137           # regenerate one case
//   gqzoo_fuzz --seed=42 --case=137 --print   # dump the case, don't run
//   gqzoo_fuzz --case-file=f.case [--minimize]
//   gqzoo_fuzz --seed=42 --cases=500 --lang=crpq
//   gqzoo_fuzz ... --out=repro.case           # where to write a failure

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "src/fuzz/crash_oracle.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/metamorphic.h"
#include "src/fuzz/minimize.h"
#include "src/fuzz/mutation_gen.h"
#include "src/fuzz/oracle.h"
#include "src/util/thread_pool.h"

namespace {

using gqzoo::QueryEngine;
using gqzoo::QueryLanguage;
using gqzoo::Result;
using gqzoo::ThreadPool;

struct CliOptions {
  uint64_t seed = 1;
  size_t cases = 1000;
  std::optional<size_t> only_case;
  std::optional<QueryLanguage> language;
  std::string case_file;
  std::string out_file = "fuzz_repro.case";
  uint64_t time_budget_ms = 0;
  bool smoke = false;
  bool minimize_flag = false;
  bool print_only = false;
  bool no_engine = false;
  bool quiet = false;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed=N] [--cases=N] [--case=I] [--lang=NAME]\n"
               "          [--time-budget-ms=N] [--smoke] [--minimize]\n"
               "          [--case-file=PATH] [--out=PATH] [--print]\n"
               "          [--no-engine] [--quiet]\n",
               argv0);
  return 2;
}

/// Builds the shared execution context: one engine (its own small pool)
/// reused across cases via SetGraph, one helper pool for the sharded legs.
struct Harness {
  Harness()
      : pool(2),
        engine(gqzoo::PropertyGraph(), [] {
          QueryEngine::Options options;
          options.num_threads = 2;
          options.rpq_shards = 3;
          return options;
        }()) {}

  ThreadPool pool;
  QueryEngine engine;
};

int RunCaseFile(const CliOptions& cli) {
  std::ifstream in(cli.case_file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", cli.case_file.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<gqzoo::fuzz::FuzzCase> c = gqzoo::fuzz::ParseFuzzCase(buffer.str());
  if (!c.ok()) {
    std::fprintf(stderr, "bad case file: %s\n", c.error().message().c_str());
    return 2;
  }

  Harness harness;
  gqzoo::fuzz::OracleOptions oracle;
  oracle.pool = &harness.pool;
  if (cli.no_engine) {
    oracle.engine_checks = false;
  } else {
    oracle.engine = &harness.engine;
  }

  gqzoo::fuzz::OracleReport report = RunOracle(c.value(), oracle);
  if (report.ok() && !c.value().mutations.empty()) {
    RunMutationOracle(c.value(), oracle, &report);
  }
  if (report.ok() && !c.value().mutations.empty()) {
    RunCrashOracle(c.value(), &report);
  }
  if (report.ok()) {
    gqzoo::fuzz::FuzzRng rng =
        gqzoo::fuzz::FuzzRng(c.value().seed).Fork(7);
    RunMetamorphic(c.value(), &rng, oracle, &report);
  }
  std::cout << report.ToString() << "\n";
  if (report.ok()) return 0;

  gqzoo::fuzz::FuzzCase repro = c.value();
  std::string check = report.divergences.front().check;
  if (cli.minimize_flag) {
    gqzoo::fuzz::MinimizeOptions minimize_options;
    minimize_options.oracle = oracle;
    gqzoo::fuzz::MinimizeResult minimized =
        MinimizeCase(c.value(), minimize_options);
    if (minimized.reproduced) {
      repro = minimized.reduced;
      check = minimized.check;
      std::cout << "minimized after " << minimized.evaluations
                << " verdict runs:\n"
                << repro.ToText();
    }
  }
  std::ofstream out(cli.out_file);
  out << repro.ToText();
  std::cout << "# repro written to " << cli.out_file << "\n"
            << EmitRegressionTest(repro, check);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "seed", &value)) {
      cli.seed = strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "cases", &value)) {
      cli.cases = strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "case", &value)) {
      cli.only_case = strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "time-budget-ms", &value)) {
      cli.time_budget_ms = strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "lang", &value)) {
      Result<QueryLanguage> lang = gqzoo::ParseQueryLanguage(value);
      if (!lang.ok()) {
        std::fprintf(stderr, "unknown language '%s'\n", value.c_str());
        return 2;
      }
      cli.language = lang.value();
    } else if (ParseFlag(arg, "case-file", &value)) {
      cli.case_file = value;
    } else if (ParseFlag(arg, "out", &value)) {
      cli.out_file = value;
    } else if (arg == "--smoke") {
      cli.smoke = true;
    } else if (arg == "--minimize") {
      cli.minimize_flag = true;
    } else if (arg == "--print") {
      cli.print_only = true;
    } else if (arg == "--no-engine") {
      cli.no_engine = true;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!cli.case_file.empty()) return RunCaseFile(cli);

  gqzoo::fuzz::FuzzerOptions options;
  options.seed = cli.seed;
  options.num_cases = cli.cases;
  options.only_case = cli.only_case;
  options.only_language = cli.language;
  options.time_budget_ms = cli.time_budget_ms;
  options.minimize = true;
  if (cli.smoke) {
    // CI budget: time-boxed, capped case count so a fast machine still
    // terminates promptly; failures upload fuzz_repro.case as an artifact.
    options.time_budget_ms =
        cli.time_budget_ms == 0 ? 60000 : cli.time_budget_ms;
    options.num_cases = cli.cases == 1000 ? 4000 : cli.cases;
  }

  if (cli.print_only) {
    size_t index = cli.only_case.value_or(0);
    gqzoo::fuzz::FuzzCase c =
        GenCase(gqzoo::fuzz::CaseSeed(options.seed, index), options);
    std::cout << c.ToText();
    return 0;
  }

  Harness harness;
  options.oracle.pool = &harness.pool;
  if (cli.no_engine) {
    options.oracle.engine_checks = false;
  } else {
    options.oracle.engine = &harness.engine;
  }

  gqzoo::fuzz::FuzzRunResult run =
      RunFuzzer(options, cli.quiet ? nullptr : &std::cerr);
  std::cout << run.stats.ToString() << "\n";

  if (!run.ok()) {
    const gqzoo::fuzz::FuzzFailure& first = run.failures.front();
    std::ofstream out(cli.out_file);
    out << first.minimized.ToText();
    std::cout << "FAILED: " << run.failures.size() << " divergent case(s); "
              << "first: case " << first.case_index << " [" << first.check
              << "] " << first.detail << "\n"
              << "# repro written to " << cli.out_file << "\n"
              << "# reproduce: gqzoo_fuzz --case-file=" << cli.out_file
              << " --minimize\n"
              << EmitRegressionTest(first.minimized, first.check);
    return 1;
  }
  std::cout << "OK: no divergences\n";
  return 0;
}
