// gqzoo_load: out-of-core bulk loader. Turns a text edge list into a
// ready-to-serve durability directory — `checkpoint-0` in the snapshot
// format (storage/snapshot_format.h) plus an empty versioned `wal.log` —
// without ever materializing the graph in RAM. The engine then opens the
// directory through its instant-restart path: the checkpoint mmaps and the
// first query runs after one checksum pass, no rebuild.
//
//   gqzoo_load --input edges.txt --out /data/graph
//              [--node-label N] [--sort-buffer-mb 256]
//
// Input: one edge per line, whitespace-separated `src tgt [label]` (label
// defaults to "edge"); `#` starts a comment. Node names are the tokens;
// edge names are synthesized as e0, e1, ... in input order.
//
// Memory model (semi-external): node-proportional state lives in RAM (the
// node-name interner and per-node degree/run counters); edge-proportional
// state — the edge table, the three CSR orders (out, in, by-label) — is
// spooled to temp files and ordered by chunked sort + k-way merge, with
// the chunk size capped by --sort-buffer-mb. Peak RSS is O(nodes + sort
// buffer), so edge lists much larger than RAM load fine.

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <queue>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/storage/crc32c.h"
#include "src/storage/snapshot_format.h"
#include "src/storage/wal.h"

namespace gqzoo {
namespace {

using storage::Crc32c;
using storage::Crc32cExtend;
using storage::SnapshotAlign8;
using storage::SnapshotRegion;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "gqzoo_load: %s\n", message.c_str());
  std::exit(1);
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}

// ---------------------------------------------------------------------------
// External sort: fixed 16-byte records ordered by (a, b, e). Records are
// buffered up to the budget, sorted, and flushed as runs into one temp
// file; Merge() streams the globally ordered sequence through a k-way heap.

struct SortRec {
  uint32_t a;     // primary key: node (out/in) or label (by-label)
  uint32_t b;     // secondary key: label (unused for by-label order)
  uint32_t e;     // edge id, the tiebreak — keeps runs deterministic
  uint32_t node;  // hop payload: the node on the far side
};

// GraphSnapshot::LabelRun is private to the snapshot/codec pair; the
// loader writes the identical 12-byte layout.
struct RawLabelRun {
  LabelId label;
  uint32_t begin;
  uint32_t end;
};
static_assert(sizeof(RawLabelRun) == 12, "must match GraphSnapshot::LabelRun");

bool RecLess(const SortRec& x, const SortRec& y) {
  if (x.a != y.a) return x.a < y.a;
  if (x.b != y.b) return x.b < y.b;
  return x.e < y.e;
}

class ExternalSorter {
 public:
  ExternalSorter(std::string path, size_t buffer_bytes) : path_(std::move(path)) {
    buffer_.reserve(std::max<size_t>(buffer_bytes / sizeof(SortRec), 1024));
    file_ = std::fopen(path_.c_str(), "wb+");
    if (file_ == nullptr) Die("cannot create sort spool " + path_);
  }
  ~ExternalSorter() {
    if (file_ != nullptr) std::fclose(file_);
    std::remove(path_.c_str());
  }

  void Add(const SortRec& rec) {
    if (buffer_.size() == buffer_.capacity()) Flush();
    buffer_.push_back(rec);
  }

  /// Calls `fn(const SortRec&)` for every record in (a, b, e) order.
  template <typename Fn>
  void Merge(Fn&& fn) {
    Flush();
    std::fflush(file_);
    std::vector<RunReader> readers;
    readers.reserve(runs_.size());
    for (const Run& run : runs_) readers.emplace_back(file_, run);
    auto greater = [&readers](size_t x, size_t y) {
      return RecLess(readers[y].Head(), readers[x].Head());
    };
    std::priority_queue<size_t, std::vector<size_t>, decltype(greater)> heap(
        greater);
    for (size_t i = 0; i < readers.size(); ++i) {
      if (readers[i].Refill()) heap.push(i);
    }
    while (!heap.empty()) {
      size_t i = heap.top();
      heap.pop();
      fn(readers[i].Head());
      if (readers[i].Pop()) heap.push(i);
    }
  }

 private:
  struct Run {
    uint64_t offset;  // bytes into the spool
    uint64_t count;   // records
  };

  /// Buffered sequential reader over one sorted run (shared FILE*, seeks
  /// per refill — each run is read exactly once, front to back).
  class RunReader {
   public:
    RunReader(std::FILE* file, const Run& run) : file_(file), run_(run) {}
    const SortRec& Head() const { return buf_[pos_]; }
    bool Pop() {
      ++pos_;
      return pos_ < buf_.size() || Refill();
    }
    bool Refill() {
      if (pos_ < buf_.size()) return true;
      uint64_t left = run_.count - consumed_;
      if (left == 0) return false;
      size_t take = static_cast<size_t>(std::min<uint64_t>(left, 16384));
      buf_.resize(take);
      pos_ = 0;
      if (std::fseek(file_,
                     static_cast<long>(run_.offset +
                                       consumed_ * sizeof(SortRec)),
                     SEEK_SET) != 0 ||
          std::fread(buf_.data(), sizeof(SortRec), take, file_) != take) {
        Die("sort spool read failed");
      }
      consumed_ += take;
      return true;
    }

   private:
    std::FILE* file_;
    Run run_;
    std::vector<SortRec> buf_;
    size_t pos_ = 0;
    uint64_t consumed_ = 0;
  };

  void Flush() {
    if (buffer_.empty()) return;
    std::sort(buffer_.begin(), buffer_.end(), RecLess);
    if (std::fseek(file_, 0, SEEK_END) != 0) Die("sort spool seek failed");
    long at = std::ftell(file_);
    if (std::fwrite(buffer_.data(), sizeof(SortRec), buffer_.size(), file_) !=
        buffer_.size()) {
      Die("sort spool write failed (disk full?)");
    }
    runs_.push_back({static_cast<uint64_t>(at), buffer_.size()});
    buffer_.clear();
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<SortRec> buffer_;
  std::vector<Run> runs_;
};

// ---------------------------------------------------------------------------
// Snapshot assembly: region payloads stream into one spool file (lengths
// and checksums tracked per region), then Commit prepends the header and
// publishes write-temp → fsync → rename, like every durable file.

class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::string spool_path)
      : spool_path_(std::move(spool_path)) {
    spool_ = std::fopen(spool_path_.c_str(), "wb");
    if (spool_ == nullptr) Die("cannot create region spool " + spool_path_);
  }
  ~SnapshotWriter() {
    if (spool_ != nullptr) std::fclose(spool_);
    std::remove(spool_path_.c_str());
  }

  void Begin(uint64_t id) {
    current_ = SnapshotRegion{id, 0, 0, 0};
    crc_ = 0;
  }
  void Append(const void* data, size_t len) {
    if (len == 0) return;
    if (std::fwrite(data, 1, len, spool_) != len) {
      Die("region spool write failed (disk full?)");
    }
    crc_ = current_.length == 0 ? Crc32c(data, len)
                                : Crc32cExtend(crc_, data, len);
    current_.length += len;
  }
  void AppendFile(const std::string& path) {
    std::FILE* in = std::fopen(path.c_str(), "rb");
    if (in == nullptr) Die("cannot reopen spool " + path);
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0) Append(buf, got);
    std::fclose(in);
  }
  void End() {
    static const char kPad[8] = {0};
    size_t pad = SnapshotAlign8(current_.length) - current_.length;
    if (pad > 0 && std::fwrite(kPad, 1, pad, spool_) != pad) {
      Die("region spool write failed (disk full?)");
    }
    // Empty regions checksum as Crc32c("") extended over their padding —
    // matches AssembleSnapshot exactly.
    uint32_t crc = current_.length == 0 ? Crc32c("", 0) : crc_;
    current_.crc = Crc32cExtend(crc, kPad, pad);
    table_.push_back(current_);
  }
  void AddRegion(uint64_t id, std::string_view payload) {
    Begin(id);
    Append(payload.data(), payload.size());
    End();
  }

  void Commit(const std::string& final_path) {
    std::fflush(spool_);
    std::string header = storage::BuildSnapshotHeader(&table_);
    std::string tmp = final_path + ".tmp";
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) Die("cannot create " + tmp);
    if (std::fwrite(header.data(), 1, header.size(), out) != header.size()) {
      Die("checkpoint write failed");
    }
    std::FILE* in = std::fopen(spool_path_.c_str(), "rb");
    if (in == nullptr) Die("cannot reopen region spool");
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      if (std::fwrite(buf, 1, got, out) != got) Die("checkpoint write failed");
    }
    std::fclose(in);
    if (std::fflush(out) != 0 || fsync(fileno(out)) != 0) {
      Die("checkpoint fsync failed");
    }
    std::fclose(out);
    if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
      Die("cannot publish " + final_path + ": " + std::strerror(errno));
    }
    Result<bool> synced = storage::SyncDirOf(final_path);
    if (!synced.ok()) Die(synced.error().message());
  }

 private:
  std::string spool_path_;
  std::FILE* spool_ = nullptr;
  std::vector<SnapshotRegion> table_;
  SnapshotRegion current_{};
  uint32_t crc_ = 0;
};

// ---------------------------------------------------------------------------
// Streaming helpers.

/// Emits the ids 0..n-1 ordered by the lexicographic order of their
/// decimal numerals — which IS the sorted order of the synthesized edge
/// names "e0".."e<n-1>" (same prefix, no leading zeros). O(n) and zero
/// allocation, so the edges-by-name directory streams without a sort.
template <typename Fn>
void ForEachIdLexicographic(uint64_t n, Fn&& fn) {
  if (n == 0) return;
  fn(0);  // "0" sorts first; no other numeral starts with '0'
  if (n == 1) return;
  uint64_t cur = 1;
  for (uint64_t emitted = 1; emitted < n; ++emitted) {
    fn(static_cast<uint32_t>(cur));
    if (cur * 10 < n) {
      cur *= 10;
    } else {
      while (cur % 10 == 9 || cur + 1 >= n) cur /= 10;
      ++cur;
    }
  }
}

struct Options {
  std::string input;
  std::string out_dir;
  std::string node_label = "N";
  std::string edge_label_default = "edge";
  size_t sort_buffer_mb = 256;
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) Die(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--input") {
      o.input = need("--input");
    } else if (arg == "--out") {
      o.out_dir = need("--out");
    } else if (arg == "--node-label") {
      o.node_label = need("--node-label");
    } else if (arg == "--default-edge-label") {
      o.edge_label_default = need("--default-edge-label");
    } else if (arg == "--sort-buffer-mb") {
      o.sort_buffer_mb = std::strtoull(need("--sort-buffer-mb").c_str(),
                                       nullptr, 10);
      if (o.sort_buffer_mb == 0) Die("--sort-buffer-mb must be > 0");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: gqzoo_load --input EDGES.txt --out DIR\n"
          "                  [--node-label N] [--default-edge-label edge]\n"
          "                  [--sort-buffer-mb 256]\n"
          "Bulk-loads a text edge list (lines: src tgt [label]) into a\n"
          "durability directory holding a memory-mappable checkpoint.\n");
      std::exit(0);
    } else {
      Die("unknown flag " + arg + " (see --help)");
    }
  }
  if (o.input.empty() || o.out_dir.empty()) {
    Die("--input and --out are required (see --help)");
  }
  return o;
}

int Load(const Options& opt) {
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  if (ec) Die("cannot create " + opt.out_dir + ": " + ec.message());
  const std::string tmp_prefix = opt.out_dir + "/.load";

  // ---- Pass 1: parse, intern, count, spool the raw edge table. -----------
  std::unordered_map<std::string, NodeId> node_ids;
  std::vector<const std::string*> node_names;  // id -> name (owned by map)
  std::unordered_map<std::string, LabelId> label_ids;
  std::vector<std::string> label_names;
  auto intern_label = [&](const std::string& name) {
    auto [it, fresh] = label_ids.emplace(name, label_names.size());
    if (fresh) label_names.push_back(name);
    return it->second;
  };
  const LabelId node_label = intern_label(opt.node_label);

  std::ifstream in(opt.input);
  if (!in.is_open()) Die("cannot open " + opt.input);
  const std::string edges_spool = tmp_prefix + ".edges";
  std::FILE* edges_file = std::fopen(edges_spool.c_str(), "wb+");
  if (edges_file == nullptr) Die("cannot create " + edges_spool);

  uint64_t num_edges = 0;
  std::vector<uint64_t> edge_count;  // per label
  std::string line, src, tgt, label;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    if (!(fields >> src)) continue;  // blank line
    if (!(fields >> tgt)) {
      Die("line " + std::to_string(line_no) + ": expected 'src tgt [label]'");
    }
    if (!(fields >> label)) label = opt.edge_label_default;
    auto intern_node = [&](const std::string& name) {
      auto [it, fresh] = node_ids.emplace(name, node_names.size());
      if (fresh) {
        if (node_names.size() >= kInvalidId) Die("too many nodes (2^32-1)");
        node_names.push_back(&it->first);
      }
      return it->second;
    };
    EdgeLabeledGraph::EdgeData e{intern_node(src), intern_node(tgt),
                                 intern_label(label)};
    if (num_edges >= kInvalidId) Die("too many edges (2^32-1)");
    if (std::fwrite(&e, sizeof(e), 1, edges_file) != 1) {
      Die("edge spool write failed (disk full?)");
    }
    if (e.label >= edge_count.size()) edge_count.resize(e.label + 1, 0);
    ++edge_count[e.label];
    ++num_edges;
  }
  if (in.bad()) Die("read error on " + opt.input);
  std::fflush(edges_file);
  const uint64_t num_nodes = node_names.size();
  const uint64_t num_labels = label_names.size();
  edge_count.resize(num_labels, 0);
  std::fprintf(stderr, "gqzoo_load: %" PRIu64 " nodes, %" PRIu64
                       " edges, %" PRIu64 " labels\n",
               num_nodes, num_edges, num_labels);

  // ---- CSR orders: chunked sort + merge, one direction at a time. --------
  auto feed = [&](ExternalSorter* sorter, auto&& key_of) {
    std::fseek(edges_file, 0, SEEK_SET);
    std::vector<EdgeLabeledGraph::EdgeData> buf(1 << 14);
    uint64_t at = 0;
    while (at < num_edges) {
      size_t take = static_cast<size_t>(
          std::min<uint64_t>(num_edges - at, buf.size()));
      if (std::fread(buf.data(), sizeof(buf[0]), take, edges_file) != take) {
        Die("edge spool read failed");
      }
      for (size_t i = 0; i < take; ++i) {
        sorter->Add(key_of(static_cast<EdgeId>(at + i), buf[i]));
      }
      at += take;
    }
  };

  const size_t sort_bytes = opt.sort_buffer_mb << 20;
  struct DirectionOut {
    std::string hops_spool;
    std::string runs_spool;
    std::vector<uint32_t> node_begin;   // RAM: node-proportional
    std::vector<uint32_t> runs_begin;   // RAM: node-proportional
    std::vector<uint64_t> distinct;     // per label
    uint64_t any_endpoint = 0;
  };
  // Streams one merged (node, label, edge) order into hops + label-run
  // directories, counting the planner's distinct-endpoint statistics on
  // the way through (each (node, label) boundary is one distinct pair).
  auto build_direction = [&](const char* tag, auto&& key_of) {
    DirectionOut d;
    d.hops_spool = tmp_prefix + "." + tag + ".hops";
    d.runs_spool = tmp_prefix + "." + tag + ".runs";
    d.node_begin.assign(num_nodes + 1, 0);
    d.runs_begin.assign(num_nodes + 1, 0);
    d.distinct.assign(num_labels, 0);
    std::FILE* hops = std::fopen(d.hops_spool.c_str(), "wb");
    std::FILE* runs = std::fopen(d.runs_spool.c_str(), "wb");
    if (hops == nullptr || runs == nullptr) Die("cannot create CSR spool");
    {
      ExternalSorter sorter(tmp_prefix + "." + tag + ".sort", sort_bytes);
      feed(&sorter, key_of);
      uint64_t pos = 0;
      uint32_t run_node = kInvalidId, run_label = kInvalidId;
      uint64_t run_begin = 0;
      auto close_run = [&]() {
        if (run_node == kInvalidId) return;
        RawLabelRun run{run_label, static_cast<uint32_t>(run_begin),
                        static_cast<uint32_t>(pos)};
        if (std::fwrite(&run, sizeof(run), 1, runs) != 1) {
          Die("run spool write failed");
        }
        ++d.runs_begin[run_node + 1];
      };
      sorter.Merge([&](const SortRec& rec) {
        if (rec.a != run_node || rec.b != run_label) {
          close_run();
          run_node = rec.a;
          run_label = rec.b;
          run_begin = pos;
          ++d.distinct[rec.b];
        }
        GraphSnapshot::Hop hop{rec.e, rec.node};
        if (std::fwrite(&hop, sizeof(hop), 1, hops) != 1) {
          Die("hop spool write failed");
        }
        ++d.node_begin[rec.a + 1];
        ++pos;
      });
      close_run();
    }
    std::fflush(hops);
    std::fclose(hops);
    std::fflush(runs);
    std::fclose(runs);
    for (uint64_t v = 0; v < num_nodes; ++v) {
      if (d.node_begin[v + 1] != 0) ++d.any_endpoint;
      d.node_begin[v + 1] += d.node_begin[v];
      d.runs_begin[v + 1] += d.runs_begin[v];
    }
    return d;
  };

  DirectionOut out = build_direction(
      "out", [](EdgeId e, const EdgeLabeledGraph::EdgeData& d) {
        return SortRec{d.src, d.label, e, d.tgt};
      });
  DirectionOut in_dir = build_direction(
      "in", [](EdgeId e, const EdgeLabeledGraph::EdgeData& d) {
        return SortRec{d.tgt, d.label, e, d.src};
      });

  // By-label edge list: (label, edge) order; label_begin comes from the
  // pass-1 counts, so only the hop stream needs the external sort.
  const std::string label_edges_spool = tmp_prefix + ".label.hops";
  {
    std::FILE* hops = std::fopen(label_edges_spool.c_str(), "wb");
    if (hops == nullptr) Die("cannot create CSR spool");
    ExternalSorter sorter(tmp_prefix + ".label.sort", sort_bytes);
    feed(&sorter, [](EdgeId e, const EdgeLabeledGraph::EdgeData& d) {
      return SortRec{d.label, 0, e, d.tgt};
    });
    sorter.Merge([&](const SortRec& rec) {
      GraphSnapshot::Hop hop{rec.e, rec.node};
      if (std::fwrite(&hop, sizeof(hop), 1, hops) != 1) {
        Die("hop spool write failed");
      }
    });
    std::fflush(hops);
    std::fclose(hops);
  }
  std::vector<uint32_t> label_begin(num_labels + 1, 0);
  for (uint64_t l = 0; l < num_labels; ++l) {
    label_begin[l + 1] =
        label_begin[l] + static_cast<uint32_t>(edge_count[l]);
  }

  // ---- Assemble the snapshot, region by region, in canonical order. ------
  SnapshotWriter w(tmp_prefix + ".regions");
  {
    std::string meta;
    PutU64(&meta, 0);  // covered_lsn: a fresh directory starts at 0
    PutU64(&meta, num_nodes);
    PutU64(&meta, num_edges);
    PutU64(&meta, num_labels);
    PutU64(&meta, 0);  // no properties
    PutU64(&meta, 1);  // node labels present (uniform --node-label)
    w.AddRegion(storage::kRegionMeta, meta);
  }
  w.Begin(storage::kRegionEdges);
  w.AppendFile(edges_spool);
  w.End();
  std::fclose(edges_file);
  std::remove(edges_spool.c_str());

  w.Begin(storage::kRegionNodeLabels);
  {
    std::vector<LabelId> chunk(4096, node_label);
    for (uint64_t at = 0; at < num_nodes; at += chunk.size()) {
      size_t take = static_cast<size_t>(
          std::min<uint64_t>(num_nodes - at, chunk.size()));
      w.Append(chunk.data(), take * sizeof(LabelId));
    }
  }
  w.End();

  auto add_names = [&w](uint64_t offsets_id, uint64_t heap_id, uint64_t n,
                        auto&& name_of) {
    std::string offsets, heap;
    uint64_t at = 0;
    PutU64(&offsets, 0);
    for (uint64_t i = 0; i < n; ++i) {
      at += name_of(i).size();
      PutU64(&offsets, at);
      heap.append(name_of(i));
    }
    w.AddRegion(offsets_id, offsets);
    w.AddRegion(heap_id, heap);
  };
  add_names(storage::kRegionLabelNameOffsets, storage::kRegionLabelNameHeap,
            num_labels,
            [&](uint64_t i) { return std::string_view(label_names[i]); });
  // No properties: a one-entry offset table over an empty heap.
  add_names(storage::kRegionPropNameOffsets, storage::kRegionPropNameHeap, 0,
            [](uint64_t) { return std::string_view(); });
  add_names(storage::kRegionNodeNameOffsets, storage::kRegionNodeNameHeap,
            num_nodes,
            [&](uint64_t i) { return std::string_view(*node_names[i]); });
  {
    std::vector<NodeId> by_name(num_nodes);
    for (uint64_t i = 0; i < num_nodes; ++i) {
      by_name[i] = static_cast<NodeId>(i);
    }
    std::sort(by_name.begin(), by_name.end(), [&](NodeId x, NodeId y) {
      return *node_names[x] < *node_names[y];
    });
    w.Begin(storage::kRegionNodesByName);
    w.Append(by_name.data(), by_name.size() * sizeof(NodeId));
    w.End();
  }

  // Synthesized edge names "e<id>": offsets and heap stream arithmetically,
  // and the sorted directory is the lexicographic numeral order — no sort,
  // no edge-proportional RAM.
  w.Begin(storage::kRegionEdgeNameOffsets);
  {
    std::string chunk;
    uint64_t at = 0;
    PutU64(&chunk, 0);
    char digits[24];
    for (uint64_t e = 0; e < num_edges; ++e) {
      at += 1 + std::snprintf(digits, sizeof(digits), "%" PRIu64, e);
      PutU64(&chunk, at);
      if (chunk.size() >= (1 << 16)) {
        w.Append(chunk.data(), chunk.size());
        chunk.clear();
      }
    }
    w.Append(chunk.data(), chunk.size());
  }
  w.End();
  w.Begin(storage::kRegionEdgeNameHeap);
  {
    std::string chunk;
    char name[25];
    for (uint64_t e = 0; e < num_edges; ++e) {
      chunk.append(name, std::snprintf(name, sizeof(name), "e%" PRIu64, e));
      if (chunk.size() >= (1 << 16)) {
        w.Append(chunk.data(), chunk.size());
        chunk.clear();
      }
    }
    w.Append(chunk.data(), chunk.size());
  }
  w.End();
  w.Begin(storage::kRegionEdgesByName);
  {
    std::vector<EdgeId> chunk;
    chunk.reserve(4096);
    ForEachIdLexicographic(num_edges, [&](uint32_t e) {
      chunk.push_back(e);
      if (chunk.size() == chunk.capacity()) {
        w.Append(chunk.data(), chunk.size() * sizeof(EdgeId));
        chunk.clear();
      }
    });
    w.Append(chunk.data(), chunk.size() * sizeof(EdgeId));
  }
  w.End();

  auto add_direction = [&](DirectionOut* d, uint64_t hops_id,
                           uint64_t begin_id, uint64_t runs_id,
                           uint64_t runs_begin_id) {
    w.Begin(hops_id);
    w.AppendFile(d->hops_spool);
    w.End();
    std::remove(d->hops_spool.c_str());
    w.Begin(begin_id);
    w.Append(d->node_begin.data(), d->node_begin.size() * sizeof(uint32_t));
    w.End();
    w.Begin(runs_id);
    w.AppendFile(d->runs_spool);
    w.End();
    std::remove(d->runs_spool.c_str());
    w.Begin(runs_begin_id);
    w.Append(d->runs_begin.data(), d->runs_begin.size() * sizeof(uint32_t));
    w.End();
    d->node_begin.clear();
    d->node_begin.shrink_to_fit();
    d->runs_begin.clear();
    d->runs_begin.shrink_to_fit();
  };
  add_direction(&out, storage::kRegionOutHops, storage::kRegionOutNodeBegin,
                storage::kRegionOutRuns, storage::kRegionOutRunsBegin);
  add_direction(&in_dir, storage::kRegionInHops, storage::kRegionInNodeBegin,
                storage::kRegionInRuns, storage::kRegionInRunsBegin);

  w.Begin(storage::kRegionLabelEdges);
  w.AppendFile(label_edges_spool);
  w.End();
  std::remove(label_edges_spool.c_str());
  w.Begin(storage::kRegionLabelBegin);
  w.Append(label_begin.data(), label_begin.size() * sizeof(uint32_t));
  w.End();

  // Every node carries the uniform node label: the by-label node index is
  // the identity sequence under one run.
  w.Begin(storage::kRegionNodesByLabel);
  {
    std::vector<NodeId> chunk(4096);
    for (uint64_t at = 0; at < num_nodes; at += chunk.size()) {
      size_t take = static_cast<size_t>(
          std::min<uint64_t>(num_nodes - at, chunk.size()));
      for (size_t i = 0; i < take; ++i) {
        chunk[i] = static_cast<NodeId>(at + i);
      }
      w.Append(chunk.data(), take * sizeof(NodeId));
    }
  }
  w.End();
  {
    std::vector<uint32_t> begin(num_labels + 1, 0);
    for (uint64_t l = node_label; l < num_labels; ++l) {
      begin[l + 1] = static_cast<uint32_t>(num_nodes);
    }
    w.Begin(storage::kRegionNodesByLabelBegin);
    w.Append(begin.data(), begin.size() * sizeof(uint32_t));
    w.End();
  }

  // No properties: all-zero extent arrays over an empty entry table.
  auto add_zero_u64 = [&w](uint64_t id, uint64_t n) {
    w.Begin(id);
    std::vector<uint64_t> chunk(4096, 0);
    for (uint64_t at = 0; at < n; at += chunk.size()) {
      size_t take =
          static_cast<size_t>(std::min<uint64_t>(n - at, chunk.size()));
      w.Append(chunk.data(), take * sizeof(uint64_t));
    }
    w.End();
  };
  add_zero_u64(storage::kRegionNodePropBegin, num_nodes + 1);
  add_zero_u64(storage::kRegionEdgePropBegin, num_edges + 1);
  w.AddRegion(storage::kRegionPropEntries, std::string_view());
  w.AddRegion(storage::kRegionValueHeap, std::string_view());

  {
    std::string stats;
    for (uint64_t l = 0; l < num_labels; ++l) PutU64(&stats, edge_count[l]);
    for (uint64_t l = 0; l < num_labels; ++l) {
      PutU64(&stats, out.distinct[l]);
    }
    for (uint64_t l = 0; l < num_labels; ++l) {
      PutU64(&stats, in_dir.distinct[l]);
    }
    for (uint64_t l = 0; l < num_labels; ++l) {
      PutU64(&stats, l == node_label ? num_nodes : 0);
    }
    PutU64(&stats, out.any_endpoint);
    PutU64(&stats, in_dir.any_endpoint);
    w.AddRegion(storage::kRegionStats, stats);
  }

  const std::string checkpoint_path = opt.out_dir + "/checkpoint-0";
  w.Commit(checkpoint_path);

  // An empty versioned WAL completes the durable pair; the engine opens
  // the directory exactly as if a clean shutdown had left it behind.
  Result<bool> wal = storage::WriteFileDurably(opt.out_dir + "/wal.log",
                                               storage::WalFileHeader());
  if (!wal.ok()) Die(wal.error().message());

  // ---- Self-check: the file must map and verify end to end. --------------
  Result<storage::SnapshotFile> file =
      storage::SnapshotFile::OpenMapped(checkpoint_path);
  if (!file.ok()) Die("self-check failed: " + file.error().message());
  size_t bytes = file.value().file_bytes();
  Result<storage::MappedGraph> mapped =
      storage::SnapshotCodec::Open(std::move(file).value());
  if (!mapped.ok()) Die("self-check failed: " + mapped.error().message());
  if (mapped.value().graph->NumNodes() != num_nodes ||
      mapped.value().graph->NumEdges() != num_edges) {
    Die("self-check failed: mapped counts do not match the load");
  }
  std::fprintf(stderr,
               "gqzoo_load: wrote %s (%.1f MiB), mapped and verified\n",
               checkpoint_path.c_str(),
               static_cast<double>(bytes) / (1024.0 * 1024.0));
  return 0;
}

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  return gqzoo::Load(gqzoo::ParseArgs(argc, argv));
}
