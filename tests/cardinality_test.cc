#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/rpq/cardinality.h"
#include "src/rpq/rpq_eval.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::Rx;

TEST(GraphStatisticsTest, CountsPerLabel) {
  EdgeLabeledGraph g;
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  NodeId c = g.AddNode();
  g.AddEdge(a, b, "x");
  g.AddEdge(a, c, "x");
  g.AddEdge(b, c, "y");
  GraphStatistics stats(g);
  LabelId x = *g.FindLabel("x");
  LabelId y = *g.FindLabel("y");
  EXPECT_EQ(stats.EdgeCount(x), 2u);
  EXPECT_EQ(stats.EdgeCount(y), 1u);
  EXPECT_EQ(stats.DistinctSources(x), 1u);
  EXPECT_EQ(stats.DistinctTargets(x), 2u);
  EXPECT_DOUBLE_EQ(stats.AvgOutDegree(x), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.EdgesMatching(LabelPred::Any()), 3.0);
  EXPECT_DOUBLE_EQ(stats.EdgesMatching(LabelPred::NegSet({x})), 1.0);
  EXPECT_DOUBLE_EQ(stats.EdgesMatching(LabelPred::None()), 0.0);
}

TEST(SynopsisEstimateTest, ExactOnSingleLabelChainEdges) {
  // On a chain, `a` has exactly n answers; the synopsis predicts
  // n · (n/(n+1)) ≈ n.
  EdgeLabeledGraph g = Chain(9);  // 10 nodes, 9 edges
  GraphStatistics stats(g);
  Nfa nfa = Nfa::FromRegex(*Rx("a"), g);
  double estimate = EstimateRpqCardinalitySynopsis(stats, nfa);
  double exact = static_cast<double>(EvalRpq(g, nfa).size());
  EXPECT_NEAR(estimate, exact, exact * 0.2);
}

TEST(SynopsisEstimateTest, SaturatesOnStar) {
  // Transfer* on a clique saturates to n² — the estimate must not exceed
  // n² and should be close to it.
  EdgeLabeledGraph g = Clique(6);
  GraphStatistics stats(g);
  Nfa nfa = Nfa::FromRegex(*Rx("a*"), g);
  double estimate = EstimateRpqCardinalitySynopsis(stats, nfa);
  EXPECT_LE(estimate, 36.0 + 1e-9);
  EXPECT_GE(estimate, 30.0);
  EXPECT_EQ(EvalRpq(g, nfa).size(), 36u);
}

TEST(SynopsisEstimateTest, EmptyForAbsentLabels) {
  EdgeLabeledGraph g = Chain(5);
  GraphStatistics stats(g);
  Nfa nfa = Nfa::FromRegex(*Rx("zzz"), g);
  EXPECT_DOUBLE_EQ(EstimateRpqCardinalitySynopsis(stats, nfa), 0.0);
}

TEST(SamplingEstimateTest, ExactWhenSamplingEveryNode) {
  // With sample_size ≫ n the estimator converges to the exact count (it
  // samples uniformly with replacement; on a vertex-transitive graph any
  // single sample is already exact).
  EdgeLabeledGraph g = Cycle(8);
  Nfa nfa = Nfa::FromRegex(*Rx("a a"), g);
  double estimate = EstimateRpqCardinalitySampling(g, nfa, 1, 42);
  EXPECT_DOUBLE_EQ(estimate, 8.0);  // each node reaches exactly one node
  EXPECT_EQ(EvalRpq(g, nfa).size(), 8u);
}

TEST(SamplingEstimateTest, ReasonableOnRandomGraphs) {
  EdgeLabeledGraph g = RandomGraph(64, 192, 2, 7);
  Nfa nfa = Nfa::FromRegex(*Rx("a b"), g);
  double exact = static_cast<double>(EvalRpq(g, nfa).size());
  double estimate = EstimateRpqCardinalitySampling(g, nfa, 64, 11);
  if (exact > 0) {
    EXPECT_GT(estimate, exact * 0.3);
    EXPECT_LT(estimate, exact * 3.0);
  }
}

TEST(SynopsisEstimateTest, WithinOrderOfMagnitudeOnRandomGraphs) {
  for (uint64_t seed : {21, 22, 23}) {
    EdgeLabeledGraph g = RandomGraph(48, 144, 2, seed);
    GraphStatistics stats(g);
    for (const char* regex : {"a", "a b", "a|b", "a b a"}) {
      Nfa nfa = Nfa::FromRegex(*Rx(regex), g);
      double exact = static_cast<double>(EvalRpq(g, nfa).size());
      double estimate = EstimateRpqCardinalitySynopsis(stats, nfa);
      if (exact > 10) {
        EXPECT_GT(estimate, exact / 10.0) << regex << " seed " << seed;
        EXPECT_LT(estimate, exact * 10.0) << regex << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace gqzoo
