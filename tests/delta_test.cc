// Tests for the mutable-graph subsystem: the DeltaOverlay write set, the
// merged-view / compaction id discipline (GraphDeltaMerger), and the engine
// write path (ApplyMutation, label-scoped plan invalidation, epoch MVCC,
// CompactNow, the kRegular compaction barrier, and admission/budget
// shedding). The concurrency test at the bottom is the TSan target:
// readers, a writer, and a compactor race on one engine.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/fuzz/mutation_gen.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/delta/delta.h"
#include "src/graph/delta/merge.h"
#include "src/graph/graph.h"
#include "src/graph/graph_io.h"
#include "src/util/failpoint.h"

namespace gqzoo {
namespace {

QueryRequest Req(QueryLanguage language, const std::string& text) {
  QueryRequest request;
  request.language = language;
  request.text = text;
  return request;
}

/// x --a--> y --b--> z, one label per edge, for label-scoped invalidation.
PropertyGraph TwoLabelGraph() {
  PropertyGraph g;
  NodeId x = g.AddNode("x", "N");
  NodeId y = g.AddNode("y", "N");
  NodeId z = g.AddNode("z", "N");
  g.AddEdge(x, y, "a", "ea");
  g.AddEdge(y, z, "b", "eb");
  return g;
}

std::string Text(const PropertyGraph& g) { return PropertyGraphToText(g); }

/// Compaction never triggers on its own: tiny test graphs cross the
/// default churn ratio after a couple of ops, which would fold the delta
/// behind assertions about `pending_ops`.
QueryEngine::Options NoAutoCompact() {
  QueryEngine::Options options;
  options.num_threads = 2;
  options.mutation.compact_min_ops = size_t{1} << 30;
  options.mutation.compact_ratio = 1e9;
  return options;
}

// ---------------------------------------------------------------------------
// MutationOp surface

TEST(MutationOpTest, ToStringParseRoundTrip) {
  std::vector<MutationOp> ops = {
      MutationOp::AddNode("w1", "Account"),
      MutationOp::RemoveNode("a4"),
      MutationOp::AddEdge("t11", "a1", "a6", "Transfer"),
      MutationOp::RemoveEdge("t9"),
      MutationOp::SetLabel("a2", "Blocked"),
      MutationOp::SetNodeProperty("a1", "owner", Value(std::string("Zoe"))),
      MutationOp::SetEdgeProperty("t1", "amount", Value(int64_t{42})),
      MutationOp::SetNodeProperty("a1", "flag", Value(true)),
  };
  for (const MutationOp& op : ops) {
    Result<MutationOp> parsed = ParseMutationOp(op.ToString());
    ASSERT_TRUE(parsed.ok()) << op.ToString() << ": "
                             << parsed.error().message();
    EXPECT_EQ(parsed.value().ToString(), op.ToString());
  }
}

TEST(MutationOpTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(ParseMutationOp("frobnicate x").ok());
  EXPECT_FALSE(ParseMutationOp("add-node onlyname").ok());
  EXPECT_FALSE(ParseMutationOp("add-edge e src").ok());
  EXPECT_FALSE(ParseMutationOp("set-prop node x").ok());
  EXPECT_FALSE(ParseMutationOp("").ok());
}

TEST(MutationOpTest, NastyStringValuesRoundTripExactly) {
  // The textual form is both the shell surface and the WAL record payload,
  // so values full of quoting hazards must survive serialize → parse with
  // every byte intact — not merely re-render to the same string.
  std::vector<std::string> values = {
      "",
      " ",
      "two  spaces",
      "she said \"hi\" and left",
      "back\\slash and \\\" mix",
      "tab\tnewline\nreturn\r",
      "trailing backslash \\",
      "\"",
      std::string(kMaxMutationValueLen, 'v'),
  };
  for (const std::string& v : values) {
    MutationOp op = MutationOp::SetNodeProperty("n", "p", Value(v));
    Result<MutationOp> parsed = ParseMutationOp(op.ToString());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message();
    EXPECT_EQ(parsed.value().value.as_string(), v)
        << "bytes changed across the round trip";
    EXPECT_EQ(parsed.value().ToString(), op.ToString());
  }
}

TEST(MutationOpTest, IdentifierValidationBoundaries) {
  // Identifiers are the loophole-free half of WAL safety: names never get
  // escaped anywhere, so the write path must reject anything outside the
  // bare-identifier charset before it can reach a log record.
  const std::string max_name(kMaxMutationNameLen, 'a');
  EXPECT_TRUE(IsValidMutationName(max_name));
  EXPECT_TRUE(IsValidMutationName("_x9"));
  EXPECT_FALSE(IsValidMutationName(max_name + "a"));
  EXPECT_FALSE(IsValidMutationName(""));
  EXPECT_FALSE(IsValidMutationName("has space"));
  EXPECT_FALSE(IsValidMutationName("has\"quote"));
  EXPECT_FALSE(IsValidMutationName("has\nnewline"));
  EXPECT_FALSE(IsValidMutationName("9starts_with_digit"));
  EXPECT_FALSE(IsValidMutationName("dash-ed"));

  EXPECT_TRUE(
      ValidateMutationNames(MutationOp::AddNode(max_name, "L")).ok());
  for (const MutationOp& bad : {
           MutationOp::AddNode(max_name + "a", "L"),
           MutationOp::AddNode("n", "bad label"),
           MutationOp::AddEdge("e", "a b", "c", "L"),
           MutationOp::SetLabel("n", "\"L\""),
           MutationOp::SetNodeProperty("n", "bad prop", Value(1)),
           MutationOp::SetNodeProperty(
               "n", "p", Value(std::string(kMaxMutationValueLen + 1, 'v'))),
       }) {
    Result<bool> r = ValidateMutationNames(bad);
    ASSERT_FALSE(r.ok()) << bad.ToString();
    EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
  }
}

TEST(MutationOpTest, IsMutationCommandCoversAllVerbs) {
  for (const char* verb : {"add-node", "del-node", "add-edge", "del-edge",
                           "set-label", "set-prop"}) {
    EXPECT_TRUE(IsMutationCommand(verb)) << verb;
  }
  EXPECT_FALSE(IsMutationCommand("rpq"));
  EXPECT_FALSE(IsMutationCommand("compact"));
}

// ---------------------------------------------------------------------------
// DeltaOverlay semantics

TEST(DeltaOverlayTest, ErrorCodesMatchValidationRules) {
  auto base = std::make_shared<PropertyGraph>(TwoLabelGraph());
  DeltaOverlay overlay(base);
  MutationBatch batch;

  auto apply_one = [&](MutationOp op) {
    MutationBatch b;
    b.ops.push_back(std::move(op));
    return overlay.Apply(b, nullptr, nullptr);
  };

  // Duplicate names and empty labels are invalid arguments.
  EXPECT_EQ(apply_one(MutationOp::AddNode("x", "N")).error().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(apply_one(MutationOp::AddNode("w", "")).error().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(apply_one(MutationOp::AddEdge("ea", "x", "y", "a"))
                .error()
                .code(),
            ErrorCode::kInvalidArgument);
  // Missing subjects are not-found.
  EXPECT_EQ(apply_one(MutationOp::RemoveNode("nope")).error().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(apply_one(MutationOp::RemoveEdge("nope")).error().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(apply_one(MutationOp::SetLabel("nope", "M")).error().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(apply_one(MutationOp::AddEdge("e2", "x", "nope", "a"))
                .error()
                .code(),
            ErrorCode::kNotFound);
  // None of the rejected ops entered the log.
  EXPECT_EQ(overlay.seq(), 0u);
}

TEST(DeltaOverlayTest, BatchKeepsValidPrefixOnError) {
  auto base = std::make_shared<PropertyGraph>(TwoLabelGraph());
  DeltaOverlay overlay(base);

  MutationBatch batch;
  batch.AddNode("w1", "N")
      .AddEdge("e2", "x", "w1", "a")
      .AddEdge("bad", "x", "missing", "a")  // fails: tgt unknown
      .AddNode("w2", "N");                  // never reached
  Result<size_t> applied = overlay.Apply(batch, nullptr, nullptr);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.error().code(), ErrorCode::kNotFound);
  // The two valid leading ops stay applied; the log is exactly the prefix.
  EXPECT_EQ(overlay.seq(), 2u);
  EXPECT_EQ(overlay.alive_added_nodes(), 1u);
  EXPECT_EQ(overlay.alive_added_edges(), 1u);

  // The overlay stays usable after a rejected batch.
  MutationBatch more;
  more.AddNode("w2", "N");
  Result<size_t> again = overlay.Apply(more, nullptr, nullptr);
  ASSERT_TRUE(again.ok()) << again.error().message();
  EXPECT_EQ(overlay.seq(), 3u);
}

TEST(DeltaOverlayTest, RemoveNodeCascadesToIncidentEdges) {
  auto base = std::make_shared<PropertyGraph>(TwoLabelGraph());
  DeltaOverlay overlay(base);
  MutationBatch batch;
  batch.RemoveNode("y");  // y carries both ea (in x->y) and eb (out y->z)
  ASSERT_TRUE(overlay.Apply(batch, nullptr, nullptr).ok());
  EXPECT_EQ(overlay.removed_base_nodes(), 1u);
  EXPECT_EQ(overlay.removed_base_edges(), 2u);

  PropertyGraph merged = GraphDeltaMerger::Materialize(overlay);
  EXPECT_EQ(merged.NumNodes(), 2u);
  EXPECT_EQ(merged.NumEdges(), 0u);
  // The freed edge name is reusable.
  MutationBatch reuse;
  reuse.AddEdge("ea", "x", "z", "a");
  ASSERT_TRUE(overlay.Apply(reuse, nullptr, nullptr).ok());
}

/// Merge (splice view), Materialize (compactor output) and Replay (from-
/// scratch reference) must agree byte-for-byte on a sequence that exercises
/// every op kind, tombstones, name reuse, and property overrides on both
/// base and added objects.
TEST(DeltaOverlayTest, MergeMaterializeReplayAgree) {
  auto base = std::make_shared<PropertyGraph>(Figure3Graph());
  GraphSnapshot base_snapshot(*base);
  DeltaOverlay overlay(base);

  MutationBatch batch;
  batch.AddNode("w1", "Account")
      .AddNode("w2", "Shell")
      .AddEdge("t11", "w1", "a3", "Transfer")
      .AddEdge("t12", "w2", "w1", "Wire")
      .SetLabel("a2", "Blocked")
      .SetNodeProperty("a1", "owner", Value(std::string("Zoe")))
      .SetNodeProperty("w1", "owner", Value(std::string("Pat")))
      .SetEdgeProperty("t11", "amount", Value(int64_t{7}))
      .RemoveNode("a4")   // cascades t3, t6, t9
      .RemoveEdge("t10")
      .AddNode("a4", "Account");  // reuse the freed name
  Result<size_t> applied = overlay.Apply(batch, nullptr, nullptr);
  ASSERT_TRUE(applied.ok()) << applied.error().message();

  MergedGraph merged = GraphDeltaMerger::Merge(base_snapshot, overlay);
  PropertyGraph materialized = GraphDeltaMerger::Materialize(overlay);
  PropertyGraph replayed = GraphDeltaMerger::Replay(*base, overlay.log());

  std::string merged_text = Text(*merged.graph);
  EXPECT_EQ(merged_text, Text(materialized));
  EXPECT_EQ(merged_text, Text(replayed));
  // The merged CSR must describe the merged graph, not the base.
  EXPECT_EQ(merged.snapshot->NumNodes(), merged.graph->NumNodes());
  EXPECT_EQ(merged.snapshot->NumEdges(), merged.graph->NumEdges());
}

/// The fuzzer's independent GraphSim reimplementation must agree with the
/// overlay on handcrafted tricky sequences, both on accept/reject codes and
/// on the final rendered graph.
TEST(DeltaOverlayTest, GraphSimParityOnTrickySequences) {
  auto base = std::make_shared<PropertyGraph>(TwoLabelGraph());
  DeltaOverlay overlay(base);
  fuzz::GraphSim sim(*base);

  std::vector<MutationOp> ops = {
      MutationOp::RemoveNode("y"),              // cascade both edges
      MutationOp::AddNode("y", "M"),            // readd under new label
      MutationOp::AddEdge("ea", "x", "y", "a"), // freed edge name
      MutationOp::SetLabel("y", "M"),           // no-op label change
      MutationOp::SetNodeProperty("x", "k", Value(int64_t{1})),
      MutationOp::SetNodeProperty("x", "k", Value(int64_t{2})),  // override
      MutationOp::SetEdgeProperty("ea", "k", Value(false)),
      MutationOp::RemoveEdge("eb"),             // already dead via cascade
      MutationOp::AddNode("x", "N"),            // name still taken
      MutationOp::SetLabel("z", "Mz"),
  };
  for (const MutationOp& op : ops) {
    MutationBatch b;
    b.ops.push_back(op);
    Result<size_t> overlay_status = overlay.Apply(b, nullptr, nullptr);
    Result<bool> sim_status = sim.Apply(op);
    ASSERT_EQ(overlay_status.ok(), sim_status.ok()) << op.ToString();
    if (!overlay_status.ok()) {
      EXPECT_EQ(overlay_status.error().code(), sim_status.error().code())
          << op.ToString();
    }
  }
  EXPECT_EQ(Text(GraphDeltaMerger::Materialize(overlay)), Text(sim.Build()));
}

// ---------------------------------------------------------------------------
// Engine write path

TEST(EngineMutationTest, MutationVisibleToSubsequentQueries) {
  QueryEngine engine(Figure3Graph());
  Result<QueryResponse> before =
      engine.Execute(Req(QueryLanguage::kRpq, "Transfer"));
  ASSERT_TRUE(before.ok());

  MutationBatch batch;
  batch.AddEdge("t11", "a1", "a6", "Transfer");
  Result<QueryEngine::MutationResult> applied = engine.ApplyMutation(batch);
  ASSERT_TRUE(applied.ok()) << applied.error().message();
  EXPECT_EQ(applied.value().applied, 1u);
  EXPECT_EQ(applied.value().pending_ops, 1u);

  Result<QueryResponse> after =
      engine.Execute(Req(QueryLanguage::kRpq, "Transfer"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().num_rows, before.value().num_rows + 1);

  EXPECT_EQ(engine.metrics().write_batches.value(), 1u);
  EXPECT_EQ(engine.metrics().write_ops.value(), 1u);
  EXPECT_EQ(engine.metrics().delta_pending_ops.value(), 1u);
  EXPECT_EQ(engine.delta_info().pending_ops, 1u);
  // The merged view was built lazily for the post-mutation read.
  EXPECT_GE(engine.metrics().merged_view_builds.value(), 1u);
}

TEST(EngineMutationTest, BatchErrorKeepsPrefixAndReportsOp) {
  QueryEngine engine(TwoLabelGraph(), NoAutoCompact());
  MutationBatch batch;
  batch.AddNode("w1", "N").AddEdge("bad", "w1", "missing", "a");
  Result<QueryEngine::MutationResult> applied = engine.ApplyMutation(batch);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.error().code(), ErrorCode::kNotFound);
  // The valid prefix is visible: w1 exists, so an edge to it now succeeds.
  MutationBatch follow;
  follow.AddEdge("e2", "x", "w1", "a");
  EXPECT_TRUE(engine.ApplyMutation(follow).ok());
  EXPECT_EQ(engine.delta_info().pending_ops, 2u);
}

TEST(EngineMutationTest, ReadersPinPreWriteView) {
  QueryEngine engine(TwoLabelGraph());
  std::shared_ptr<const PropertyGraph> pinned = engine.graph_snapshot();
  std::string before = Text(*pinned);

  MutationBatch batch;
  batch.AddEdge("e2", "z", "x", "a");
  ASSERT_TRUE(engine.ApplyMutation(batch).ok());
  ASSERT_TRUE(engine.CompactNow());

  // The pinned generation is untouched by both the write and the fold.
  EXPECT_EQ(Text(*pinned), before);
  EXPECT_NE(Text(*engine.graph_snapshot()), before);
}

TEST(EngineMutationTest, PlanInvalidationIsLabelScoped) {
  QueryEngine engine(TwoLabelGraph());
  QueryRequest rpq_a = Req(QueryLanguage::kRpq, "a+");
  ASSERT_TRUE(engine.Execute(rpq_a).ok());
  ASSERT_TRUE(engine.Execute(rpq_a).value().cache_hit);

  // Mutating label b leaves the a-plan cached.
  MutationBatch touch_b;
  touch_b.AddEdge("eb2", "x", "z", "b");
  Result<QueryEngine::MutationResult> r1 = engine.ApplyMutation(touch_b);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().plans_invalidated, 0u);
  EXPECT_TRUE(engine.Execute(rpq_a).value().cache_hit);

  // Mutating label a drops it.
  MutationBatch touch_a;
  touch_a.AddEdge("ea2", "z", "y", "a");
  Result<QueryEngine::MutationResult> r2 = engine.ApplyMutation(touch_a);
  ASSERT_TRUE(r2.ok());
  EXPECT_GE(r2.value().plans_invalidated, 1u);
  Result<QueryResponse> recompiled = engine.Execute(rpq_a);
  ASSERT_TRUE(recompiled.ok());
  EXPECT_FALSE(recompiled.value().cache_hit);
  EXPECT_GE(engine.metrics().plans_invalidated.value(), 1u);
}

TEST(EngineMutationTest, UnknownLabelBecomingKnownInvalidates) {
  QueryEngine engine(TwoLabelGraph());
  // "zz" matches nothing yet, but the compiled plan still depends on it.
  QueryRequest rpq_zz = Req(QueryLanguage::kRpq, "zz");
  Result<QueryResponse> empty = engine.Execute(rpq_zz);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().num_rows, 0u);
  ASSERT_TRUE(engine.Execute(rpq_zz).value().cache_hit);

  MutationBatch batch;
  batch.AddEdge("ez", "x", "y", "zz");
  ASSERT_TRUE(engine.ApplyMutation(batch).ok());

  Result<QueryResponse> after = engine.Execute(rpq_zz);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().cache_hit);
  EXPECT_EQ(after.value().num_rows, 1u);
}

TEST(EngineMutationTest, EvalTimeLanguagesSurviveMutations) {
  QueryEngine engine(TwoLabelGraph());
  // CoreGQL resolves labels at evaluation time: empty deps, never
  // label-invalidated — but it still sees the new data.
  QueryRequest gql =
      Req(QueryLanguage::kCoreGql, "MATCH (u)-[:a]->(v) RETURN u, v");
  Result<QueryResponse> before = engine.Execute(gql);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(engine.Execute(gql).value().cache_hit);

  MutationBatch batch;
  batch.AddEdge("ea2", "z", "x", "a");
  ASSERT_TRUE(engine.ApplyMutation(batch).ok());

  Result<QueryResponse> after = engine.Execute(gql);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().cache_hit);
  EXPECT_EQ(after.value().num_rows, before.value().num_rows + 1);
}

TEST(EngineMutationTest, SetGraphEvictsDeadEpochPlansEagerly) {
  QueryEngine engine(TwoLabelGraph());
  ASSERT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "a")).ok());
  ASSERT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "b")).ok());
  EXPECT_GE(engine.plan_cache().GetStats().entries, 2u);

  engine.SetGraph(Figure3Graph());
  EXPECT_GE(engine.metrics().plans_evicted_dead_epoch.value(), 2u);
  EXPECT_EQ(engine.plan_cache().GetStats().entries, 0u);
  EXPECT_EQ(engine.metrics().plan_invalidations_full.value(), 1u);
  // Any pending delta died with the old base.
  EXPECT_EQ(engine.delta_info().pending_ops, 0u);
}

TEST(EngineMutationTest, CompactionPreservesViewAndCachedPlans) {
  QueryEngine::Options options;
  options.num_threads = 2;
  options.mutation.background_compaction = false;
  QueryEngine engine(Figure3Graph(), options);

  QueryRequest rpq = Req(QueryLanguage::kRpq, "Wire");
  MutationBatch batch;
  batch.AddNode("w1", "Account")
      .AddEdge("t11", "w1", "a1", "Wire")
      .RemoveEdge("t9");
  ASSERT_TRUE(engine.ApplyMutation(batch).ok());
  ASSERT_TRUE(engine.Execute(rpq).ok());
  ASSERT_TRUE(engine.Execute(rpq).value().cache_hit);
  std::string merged_text = Text(*engine.graph_snapshot());

  ASSERT_TRUE(engine.CompactNow());
  EXPECT_FALSE(engine.CompactNow());  // nothing left to fold

  // Query-visible state is unchanged, down to rendered bytes and ids.
  EXPECT_EQ(Text(*engine.graph_snapshot()), merged_text);
  EXPECT_EQ(engine.delta_info().pending_ops, 0u);
  EXPECT_EQ(engine.delta_info().compactions, 1u);
  EXPECT_EQ(engine.metrics().compactions_run.value(), 1u);
  EXPECT_EQ(engine.metrics().delta_pending_ops.value(), 0u);
  // No epoch bump: the cached plan survives the fold.
  Result<QueryResponse> after = engine.Execute(rpq);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().cache_hit);

  // The compacted base accepts further mutations (residual lifecycle).
  MutationBatch more;
  more.AddEdge("t12", "a1", "w1", "Wire");
  ASSERT_TRUE(engine.ApplyMutation(more).ok());
  Result<QueryResponse> grown = engine.Execute(rpq);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown.value().num_rows, 2u);
}

TEST(EngineMutationTest, PolicyThresholdTriggersSynchronousCompaction) {
  QueryEngine::Options options;
  options.num_threads = 2;
  options.mutation.compact_min_ops = 2;
  options.mutation.background_compaction = false;
  QueryEngine engine(TwoLabelGraph(), options);

  MutationBatch first;
  first.AddNode("w1", "N");
  Result<QueryEngine::MutationResult> r1 = engine.ApplyMutation(first);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value().compaction_scheduled);

  MutationBatch second;
  second.AddNode("w2", "N");
  Result<QueryEngine::MutationResult> r2 = engine.ApplyMutation(second);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value().compaction_scheduled);
  EXPECT_EQ(engine.delta_info().pending_ops, 0u);
  EXPECT_EQ(engine.delta_info().compactions, 1u);
}

TEST(EngineMutationTest, RegularQueryForcesCompactionBarrier) {
  QueryEngine::Options options;
  options.num_threads = 2;
  options.mutation.background_compaction = false;
  QueryEngine engine(Figure3Graph(), options);

  MutationBatch batch;
  batch.AddEdge("t11", "a1", "a6", "Wire");
  ASSERT_TRUE(engine.ApplyMutation(batch).ok());
  ASSERT_EQ(engine.delta_info().pending_ops, 1u);

  // Regular queries cannot evaluate an overlay-mode view; the engine folds
  // the delta first and the query sees the mutation.
  Result<QueryResponse> r =
      engine.Execute(Req(QueryLanguage::kRegular, "q(u, v) := Wire(u, v)"));
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_EQ(r.value().num_rows, 1u);
  EXPECT_EQ(engine.delta_info().pending_ops, 0u);
  EXPECT_GE(engine.delta_info().compactions, 1u);
}

TEST(EngineMutationTest, WriteShedViaFailpoint) {
  QueryEngine engine(TwoLabelGraph());
  MutationBatch batch;
  batch.AddNode("w1", "N");
  {
    ScopedFailpoint fp("engine.apply_mutation");
    Result<QueryEngine::MutationResult> shed = engine.ApplyMutation(batch);
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.error().code(), ErrorCode::kOverloaded);
  }
  EXPECT_EQ(engine.metrics().write_sheds.value(), 1u);
  EXPECT_EQ(engine.delta_info().pending_ops, 0u);
  // After the shed the same batch goes through.
  EXPECT_TRUE(engine.ApplyMutation(batch).ok());
}

TEST(EngineMutationTest, WriteBudgetExhaustionKeepsChargedPrefix) {
  QueryEngine engine(TwoLabelGraph(), NoAutoCompact());
  ResourceBudgets tight;
  tight.steps = 2;  // writes charge one step per op
  engine.set_default_budgets(tight);

  MutationBatch batch;
  batch.AddNode("w1", "N").AddNode("w2", "N").AddNode("w3", "N");
  Result<QueryEngine::MutationResult> r = engine.ApplyMutation(batch);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted);
  // The two ops inside the budget stay applied.
  EXPECT_EQ(engine.delta_info().pending_ops, 2u);
}

TEST(EngineMutationTest, StatsReportShowsDeltaLine) {
  QueryEngine engine(TwoLabelGraph());
  MutationBatch batch;
  batch.AddNode("w1", "N");
  ASSERT_TRUE(engine.ApplyMutation(batch).ok());
  std::string report = engine.StatsReport();
  EXPECT_NE(report.find("delta"), std::string::npos);
  EXPECT_NE(report.find("pending_ops 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan target)

/// Readers, one writer, and one compactor race on a single engine. The
/// writer's net effect is zero (every added edge is deleted in the same
/// iteration), so after a final fold the rendered graph must equal the
/// starting state; meanwhile every concurrent read must succeed against
/// some consistent pinned view.
TEST(DeltaConcurrencyTest, ReadersWriterCompactorRace) {
  QueryEngine::Options options;
  options.num_threads = 2;
  options.mutation.compact_min_ops = 8;
  options.mutation.background_compaction = true;
  QueryEngine engine(TwoLabelGraph(), options);
  const std::string initial = Text(*engine.graph_snapshot());

  constexpr int kWriterIterations = 400;
  constexpr int kReaderIterations = 500;
  std::atomic<bool> stop{false};
  std::atomic<int> read_failures{0};
  std::atomic<int> write_failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&engine, &read_failures, t] {
      QueryRequest rpq =
          Req(QueryLanguage::kRpq, t % 2 == 0 ? "a+" : "a b");
      for (int i = 0; i < kReaderIterations; ++i) {
        Result<QueryResponse> r = engine.Execute(rpq);
        if (!r.ok()) read_failures.fetch_add(1);
      }
    });
  }
  std::thread writer([&engine, &write_failures] {
    for (int i = 0; i < kWriterIterations; ++i) {
      std::string edge = "w" + std::to_string(i);
      MutationBatch add;
      add.AddEdge(edge, "x", "z", "a");
      MutationBatch del;
      del.RemoveEdge(edge);
      if (!engine.ApplyMutation(add).ok()) write_failures.fetch_add(1);
      if (!engine.ApplyMutation(del).ok()) write_failures.fetch_add(1);
    }
  });
  std::thread compactor([&engine, &stop] {
    while (!stop.load()) {
      engine.CompactNow();
      std::this_thread::yield();
    }
  });

  for (std::thread& t : readers) t.join();
  writer.join();
  stop.store(true);
  compactor.join();

  EXPECT_EQ(read_failures.load(), 0);
  EXPECT_EQ(write_failures.load(), 0);

  // Fold whatever is left; the writer's net effect is zero.
  while (engine.delta_info().pending_ops > 0) {
    if (!engine.CompactNow()) std::this_thread::yield();
  }
  EXPECT_EQ(Text(*engine.graph_snapshot()), initial);
  EXPECT_EQ(engine.metrics().write_ops.value(),
            static_cast<uint64_t>(2 * kWriterIterations));
}

}  // namespace
}  // namespace gqzoo
