// Walk logic (Section 7.1, "A Logic for Graphs"): bounded model checking
// of path-quantified first-order properties, cross-checked against the
// dl-RPQ evaluator on the increasing-edge-values query.

#include <gtest/gtest.h>

#include <set>

#include "src/datatest/dl_eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/logic/walk_logic.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

using F = WlFormula;

// "Every edge of π is labeled `label` and π is nonempty."
WlFormulaPtr NonEmptyAllLabeled(const std::string& walk,
                                const std::string& label) {
  return F::And(F::ExistsPos("p0", walk, F::EdgeLabel("p0", label)),
                F::ForallPos("q0", walk, F::EdgeLabel("q0", label)));
}

// "Edge property `k` strictly increases along π":
// ∀p ∀q (¬(p < q) ∨ prop(p).k < prop(q).k).
WlFormulaPtr Increasing(const std::string& walk) {
  return F::ForallPos(
      "p", walk,
      F::ForallPos("q", walk,
                   F::Or(F::Not(F::PosLess("p", "q")),
                         F::PropCompare("p", "k", CompareOp::kLt, "q", "k"))));
}

PropertyGraph ValueChain(const std::vector<int64_t>& edge_values) {
  PropertyGraph g;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i <= edge_values.size(); ++i) {
    nodes.push_back(g.AddNode("n" + std::to_string(i), "N"));
  }
  for (size_t i = 0; i < edge_values.size(); ++i) {
    EdgeId e = g.AddEdge(nodes[i], nodes[i + 1], "a");
    g.SetProperty(ObjectRef::Edge(e), "k", Value(edge_values[i]));
  }
  return g;
}

TEST(WalkLogicTest, BasicExistence) {
  PropertyGraph g = Figure3Graph();
  auto some = [&](const std::string& label) {
    return F::ExistsNode(
        "x", F::ExistsNode("y", F::ExistsWalk("pi", "x", "y",
                                              NonEmptyAllLabeled("pi",
                                                                 label))));
  };
  EXPECT_TRUE(CheckWalkLogic(g, *some("Transfer")).value());
  EXPECT_FALSE(CheckWalkLogic(g, *some("Nothing")).value());
}

TEST(WalkLogicTest, EmptyWalkMakesForallVacuous) {
  PropertyGraph g = Figure3Graph();
  WlFormulaPtr phi = F::ExistsNode(
      "x", F::ExistsWalk("pi", "x", "x",
                         F::ForallPos("p", "pi",
                                      F::EdgeLabel("p", "Nothing"))));
  EXPECT_TRUE(CheckWalkLogic(g, *phi).value());
}

TEST(WalkLogicTest, AnchoredIncreasingOnProp23Chain) {
  PropertyGraph g = ValueChain({3, 4, 1, 2});
  WlFormulaPtr exists_increasing =
      F::ExistsWalk("pi", "x", "y",
                    F::And(F::ExistsPos("p0", "pi", F::EdgeLabel("p0", "a")),
                           Increasing("pi")));
  auto check = [&](const char* from, const char* to) {
    return CheckWalkLogic(g, *exists_increasing, {},
                          {{"x", *g.FindNode(from)}, {"y", *g.FindNode(to)}})
        .value();
  };
  EXPECT_TRUE(check("n0", "n2"));   // 3,4 increases
  EXPECT_FALSE(check("n0", "n4"));  // 3,4,1,2 does not
  EXPECT_TRUE(check("n2", "n4"));   // 1,2 increases
  EXPECT_FALSE(check("n1", "n3"));  // 4,1 does not
}

TEST(WalkLogicTest, ForallIsNegationOfExists) {
  PropertyGraph g = ValueChain({3, 4, 1, 2});
  // ∀π(x,y) ¬increasing  ≡  ¬∃π(x,y) increasing (walks are bounded the
  // same way on both sides).
  WlFormulaPtr all_bad =
      F::ForallWalk("pi", "x", "y", F::Not(Increasing("pi")));
  WlFormulaPtr some_good = F::ExistsWalk("pi", "x", "y", Increasing("pi"));
  for (NodeId x = 0; x < g.NumNodes(); ++x) {
    for (NodeId y = 0; y < g.NumNodes(); ++y) {
      std::map<std::string, NodeId> bind = {{"x", x}, {"y", y}};
      EXPECT_EQ(CheckWalkLogic(g, *all_bad, {}, bind).value(),
                !CheckWalkLogic(g, *some_good, {}, bind).value())
          << x << "->" << y;
    }
  }
}

TEST(WalkLogicTest, AgreesWithDlRpqOnIncreasingEdges) {
  // Cross-evaluator check: ∃π(x,y) (nonempty ∧ increasing) must equal the
  // dl-RPQ `()[a][x := k]((_)[a][k > x][x := k])*()` pair by pair.
  PropertyGraph g = ValueChain({1, 5, 2, 7, 3});
  DlNfa nfa = DlNfa::FromRegex(
      *ParseRegex("()[a][x := k]( (_)[a][k > x][x := k] )*()",
                  RegexDialect::kDl)
           .ValueOrDie(),
      g);
  DlEvaluator evaluator(g, nfa);
  std::set<std::pair<NodeId, NodeId>> dl_pairs;
  for (const auto& [u, v] : evaluator.AllPairs()) dl_pairs.insert({u, v});

  WlFormulaPtr wl = F::ExistsWalk(
      "pi", "x", "y",
      F::And(F::ExistsPos("p0", "pi", F::EdgeLabel("p0", "a")),
             Increasing("pi")));
  WalkLogicOptions options;
  options.max_walk_length = 6;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      bool wl_holds =
          CheckWalkLogic(g, *wl, options, {{"x", u}, {"y", v}}).value();
      EXPECT_EQ(wl_holds, dl_pairs.count({u, v}) > 0) << u << "->" << v;
    }
  }
}

TEST(WalkLogicTest, IncidenceAtoms) {
  PropertyGraph g = ValueChain({1, 2});
  // The first position of a nonempty walk from x starts at x:
  // ∃π(x,y) ∃p (¬∃q q<p ∧ src(p) = x).
  WlFormulaPtr phi = F::ExistsWalk(
      "pi", "x", "y",
      F::ExistsPos("p", "pi",
                   F::And(F::Not(F::ExistsPos("q", "pi",
                                              F::PosLess("q", "p"))),
                          F::SrcIs("p", "x"))));
  EXPECT_TRUE(CheckWalkLogic(g, *phi, {},
                             {{"x", *g.FindNode("n0")},
                              {"y", *g.FindNode("n2")}})
                  .value());
  // tgt of the last position is y.
  WlFormulaPtr last = F::ExistsWalk(
      "pi", "x", "y",
      F::ExistsPos("p", "pi",
                   F::And(F::Not(F::ExistsPos("q", "pi",
                                              F::PosLess("p", "q"))),
                          F::TgtIs("p", "y"))));
  EXPECT_TRUE(CheckWalkLogic(g, *last, {},
                             {{"x", *g.FindNode("n0")},
                              {"y", *g.FindNode("n2")}})
                  .value());
}

TEST(WalkLogicTest, NodeQuantifiersAndEquality) {
  PropertyGraph g = ToPropertyGraph(Cycle(3));
  // Every node lies on a nonempty walk back to itself (cycle).
  WlFormulaPtr phi = F::ForallNode(
      "x", F::ExistsWalk("pi", "x", "x",
                         F::ExistsPos("p", "pi", F::EdgeLabel("p", "a"))));
  EXPECT_TRUE(CheckWalkLogic(g, *phi).value());
  // On a chain this fails.
  PropertyGraph chain = ToPropertyGraph(Chain(3));
  EXPECT_FALSE(CheckWalkLogic(chain, *phi).value());
  // x = y sanity.
  WlFormulaPtr eq = F::ExistsNode(
      "x", F::ExistsNode("y", F::And(F::NodeEq("x", "y"),
                                     F::Not(F::NodeEq("x", "x")))));
  EXPECT_FALSE(CheckWalkLogic(g, *eq).value());
}

TEST(WalkLogicTest, UnboundVariablesAreErrors) {
  PropertyGraph g = ValueChain({1});
  EXPECT_FALSE(CheckWalkLogic(g, *F::NodeEq("x", "y")).ok());
  EXPECT_FALSE(
      CheckWalkLogic(g, *F::ExistsWalk("pi", "x", "y",
                                       F::PosLess("p", "q")))
          .ok());
  EXPECT_FALSE(
      CheckWalkLogic(g, *F::ExistsNode("x", F::ExistsPos("p", "pi",
                                                         F::PosLess("p", "p"))))
          .ok());
}

TEST(WalkLogicTest, ToStringIsReadable) {
  WlFormulaPtr phi = F::ExistsWalk("pi", "x", "y", Increasing("pi"));
  EXPECT_EQ(phi->ToString(),
            "exists walk pi(x, y). forall p in pi. forall q in pi. "
            "(not (p < q) or prop(p).k < prop(q).k)");
}

}  // namespace
}  // namespace gqzoo
