#include <gtest/gtest.h>

#include <random>

#include "src/automata/operations.h"
#include "src/graph/generators.h"
#include "src/regex/printer.h"
#include "src/regex/rewrite.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::MatchingBindingsBruteForce;
using testing_util::Rx;

std::string Simplified(const char* text) {
  return RegexToString(*SimplifyRegex(Rx(text)), RegexDialect::kPlain);
}

TEST(RewriteTest, PaperNestedStarCollapses) {
  // Section 6.1: (((a*)*)*)* ≡ a* — and the rewriter finds it.
  EXPECT_EQ(Simplified("(((a*)*)*)*"), "a*");
}

TEST(RewriteTest, StarPlusOptionalAlgebra) {
  EXPECT_EQ(Simplified("(a+)*"), "a*");
  EXPECT_EQ(Simplified("(a?)*"), "a*");
  EXPECT_EQ(Simplified("(a*)?"), "a*");
  EXPECT_EQ(Simplified("(a*)+"), "a*");
  EXPECT_EQ(Simplified("(a+)+"), "a+");
  EXPECT_EQ(Simplified("(a?)?"), "a?");
  EXPECT_EQ(Simplified("(a+)?"), "a*");
  EXPECT_EQ(Simplified("eps*"), "eps");
  EXPECT_EQ(Simplified("a|a"), "a");
  EXPECT_EQ(Simplified("eps|a"), "a?");
  EXPECT_EQ(Simplified("eps|a*"), "a*");  // a* is nullable
  EXPECT_EQ(Simplified("eps a eps"), "a");
  EXPECT_EQ(Simplified("a* a*"), "a*");
  EXPECT_EQ(Simplified("(a b)? | eps"), "(a b)?");
}

TEST(RewriteTest, DoesNotOverSimplify) {
  EXPECT_EQ(Simplified("a a"), "a a");
  EXPECT_EQ(Simplified("a|b"), "a | b");
  EXPECT_EQ(Simplified("(a b)*"), "(a b)*");
  EXPECT_EQ(Simplified("a* b*"), "a* b*");
  // Captures distinguish otherwise-equal atoms.
  EXPECT_EQ(Simplified("a|a^z"), "a | a^z");
}

TEST(RewriteTest, NeverGrowsAndIsIdempotent) {
  for (const char* text :
       {"(((a*)*)*)*", "((a|a) b?)+", "(eps|a)(eps|b)", "a{0,3}",
        "((a^z)*)*", "(a+|b+)*", "eps eps eps", "((((a?)?)?)?)*"}) {
    RegexPtr r = Rx(text);
    RegexPtr s = SimplifyRegex(r);
    EXPECT_LE(RegexSize(*s), RegexSize(*r)) << text;
    EXPECT_TRUE(RegexEquals(*SimplifyRegex(s), *s)) << text;
  }
}

// Random regex generator over labels {a, b} with occasional captures.
RegexPtr RandomRegex(std::mt19937_64* rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 2 : 7);
  switch (pick(*rng)) {
    case 0:
      return Regex::MakeAtom(Atom::Label("a"));
    case 1:
      return Regex::MakeAtom(Atom::Label("b"));
    case 2:
      return (*rng)() % 3 == 0
                 ? Regex::Epsilon()
                 : Regex::MakeAtom(Atom::LabelCapture("a", "z"));
    case 3:
      return Regex::Concat(RandomRegex(rng, depth - 1),
                           RandomRegex(rng, depth - 1));
    case 4:
      return Regex::Union(RandomRegex(rng, depth - 1),
                          RandomRegex(rng, depth - 1));
    case 5:
      return Regex::Star(RandomRegex(rng, depth - 1));
    case 6:
      return Regex::Plus(RandomRegex(rng, depth - 1));
    default:
      return Regex::Optional(RandomRegex(rng, depth - 1));
  }
}

TEST(RewritePropertyTest, PreservesLanguage) {
  EdgeLabeledGraph alphabet = Clique(2);
  alphabet.InternLabel("b");
  std::mt19937_64 rng(4242);
  for (int i = 0; i < 300; ++i) {
    RegexPtr r = RandomRegex(&rng, 4);
    RegexPtr s = SimplifyRegex(r);
    EXPECT_LE(RegexSize(*s), RegexSize(*r));
    Nfa before = Nfa::FromRegex(*r, alphabet);
    Nfa after = Nfa::FromRegex(*s, alphabet);
    ASSERT_TRUE(AreEquivalent(before, after))
        << RegexToString(*r, RegexDialect::kPlain) << "  vs  "
        << RegexToString(*s, RegexDialect::kPlain);
  }
}

TEST(RewritePropertyTest, PreservesBindingsSemantics) {
  // Stronger than language equivalence: the (path, µ) sets agree on
  // random graphs (captures must survive simplification).
  EdgeLabeledGraph g = RandomGraph(4, 7, 2, 1001);
  std::mt19937_64 rng(2121);
  for (int i = 0; i < 60; ++i) {
    RegexPtr r = RandomRegex(&rng, 3);
    RegexPtr s = SimplifyRegex(r);
    Nfa before = Nfa::FromRegex(*r, g);
    Nfa after = Nfa::FromRegex(*s, g);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        EXPECT_EQ(MatchingBindingsBruteForce(g, before, u, v, 3),
                  MatchingBindingsBruteForce(g, after, u, v, 3))
            << RegexToString(*r, RegexDialect::kPlain) << "  vs  "
            << RegexToString(*s, RegexDialect::kPlain) << " " << u << "->"
            << v;
      }
    }
  }
}

TEST(RewriteTest, SpeedsUpGlushkov) {
  // The rewritten automaton for the paper's pathological expression has
  // one position instead of... well, also one (Glushkov is robust), but
  // deeply nested duplicated unions do shrink.
  RegexPtr bloated = Rx("((a|a)|(a|a)) ((b?)?)* (a+)+");
  RegexPtr slim = SimplifyRegex(bloated);
  EXPECT_LT(RegexSize(*slim), RegexSize(*bloated));
  EXPECT_EQ(RegexToString(*slim, RegexDialect::kPlain), "a b* a+");
}

}  // namespace
}  // namespace gqzoo
