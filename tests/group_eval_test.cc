// The paper's Examples 1 and 2 executed under real GQL group-variable
// semantics, demonstrating the anomalies the paper blames on using one
// variable mechanism for both joins and list collection — and the
// contrast with l-RPQ list variables, which satisfy [[R]]² = [[R·R]].

#include <gtest/gtest.h>

#include "src/coregql/group_eval.h"
#include "src/coregql/pattern_parser.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"

namespace gqzoo {
namespace {

CorePatternPtr Pat(const std::string& text) {
  return ParseCorePattern(text).ValueOrDie();
}

// Two a-edges in a row: u0 -e0-> u1 -e1-> u2 (named u1..u3 by Chain).
PropertyGraph TwoEdgeChain() { return ToPropertyGraph(Chain(2)); }

TEST(GqlValueTest, Printing) {
  PropertyGraph g = TwoEdgeChain();
  GqlValue element(ObjectRef::Node(0));
  EXPECT_EQ(element.ToString(g.skeleton()), "u1");
  GqlValue nested(std::vector<GqlValue>{
      GqlValue(ObjectRef::Edge(0)),
      GqlValue(std::vector<GqlValue>{GqlValue(ObjectRef::Edge(1))})});
  EXPECT_EQ(nested.ToString(g.skeleton()), "list(e0, list(e1))");
}

TEST(GroupEvalTest, Example1RepetitionCollectsAList) {
  // (x) ( ()-[z:a]->() ){2} (y): z is a group variable collecting the two
  // traversed edges — exactly what the paper says GQL does.
  PropertyGraph g = TwoEdgeChain();
  Result<GqlEvalResult> r =
      EvalGqlGroupPattern(g, *Pat("(x) ( ()-[z:a]->() ){2} (y)"));
  ASSERT_TRUE(r.ok()) << r.error().message();
  ASSERT_EQ(r.value().rows.size(), 1u);
  const GqlPathRow& row = r.value().rows[0];
  EXPECT_EQ(row.mu.at("x").ToString(g.skeleton()), "u1");
  EXPECT_EQ(row.mu.at("y").ToString(g.skeleton()), "u3");
  EXPECT_EQ(row.mu.at("z").ToString(g.skeleton()), "list(e0, e1)");
}

TEST(GroupEvalTest, Example1JoinVariantOnlyMatchesSelfLoops) {
  // (x) ()-[z:a]->() ()-[z:a]->() (y): both z occurrences are singletons
  // and join — only a self-loop can satisfy it (with the node joins).
  PropertyGraph chain = TwoEdgeChain();
  Result<GqlEvalResult> none = EvalGqlGroupPattern(
      chain, *Pat("(x) ()-[z:a]->() ()-[z:a]->() (y)"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().rows.empty());

  PropertyGraph loop;
  NodeId u = loop.AddNode("u", "N");
  loop.AddEdge(u, u, "a", "self");
  Result<GqlEvalResult> only = EvalGqlGroupPattern(
      loop, *Pat("(x) ()-[z:a]->() ()-[z:a]->() (y)"));
  ASSERT_TRUE(only.ok());
  ASSERT_EQ(only.value().rows.size(), 1u);
  EXPECT_EQ(only.value().rows[0].mu.at("z").ToString(loop.skeleton()),
            "self");
}

TEST(GroupEvalTest, Example1ThirdVariantBindsSeparately) {
  // (x) ()-[z:a]->() ()-[z1:a]->() (y): matches the 2-edge path but binds
  // z and z1 separately instead of one list.
  PropertyGraph g = TwoEdgeChain();
  Result<GqlEvalResult> r = EvalGqlGroupPattern(
      g, *Pat("(x) ()-[z:a]->() ()-[z1:a]->() (y)"));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0].mu.at("z").ToString(g.skeleton()), "e0");
  EXPECT_EQ(r.value().rows[0].mu.at("z1").ToString(g.skeleton()), "e1");
}

TEST(GroupEvalTest, RepetitionIsNotConcatenation) {
  // The Example 1 disconnect, end to end: π{2} differs from π π with a
  // shared variable, and differs in *binding shape* from π π with fresh
  // variables — while for l-RPQs [[R]]² = [[R·R]] by definition
  // (pmr_test.cc, LrpqSemanticTest).
  PropertyGraph g = TwoEdgeChain();
  auto repeated =
      EvalGqlGroupPattern(g, *Pat("(x) ( ()-[z:a]->() ){2} (y)"));
  auto shared =
      EvalGqlGroupPattern(g, *Pat("(x) ()-[z:a]->() ()-[z:a]->() (y)"));
  ASSERT_TRUE(repeated.ok());
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(repeated.value().rows.size(), 1u);
  EXPECT_EQ(shared.value().rows.size(), 0u);
}

TEST(GroupEvalTest, Example2JoinInsideGroupOutside) {
  // Example 2: within one iteration x joins (a self-loop is required);
  // across iterations x becomes a group. Build the graph the example
  // describes: nodes with a-self-loops connected by a-edges.
  PropertyGraph g;
  NodeId n0 = g.AddNode("m0", "N");
  NodeId n1 = g.AddNode("m1", "N");
  NodeId n2 = g.AddNode("m2", "N");
  g.AddEdge(n0, n0, "a", "loop0");
  g.AddEdge(n1, n1, "a", "loop1");
  g.AddEdge(n0, n1, "a", "step01");
  g.AddEdge(n1, n2, "a", "step12");  // m2 has no self-loop

  // Iteration body: (x) with an a-self-loop, then an a-step onward.
  CorePatternPtr pattern = Pat("( (x)-[:a]->(x)-[:a]->() ){1,3}");
  Result<GqlEvalResult> r = EvalGqlGroupPattern(g, *pattern);
  ASSERT_TRUE(r.ok()) << r.error().message();
  // The 2-iteration match starting at m0 that steps onward to m2:
  // x -> list(m0, m1), path loop0, step01, loop1, step12.
  bool found = false;
  for (const GqlPathRow& row : r.value().rows) {
    if (row.mu.at("x").ToString(g.skeleton()) == "list(m0, m1)" &&
        row.path.ToString(g.skeleton()) ==
            "path(m0, loop0, m0, step01, m1, loop1, m1, step12, m2)") {
      found = true;
    }
    // Every collected x must have a self-loop: m2 never appears in a list.
    EXPECT_EQ(row.mu.at("x").ToString(g.skeleton()).find("m2"),
              std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(GroupEvalTest, NestedRepetitionsNestLists) {
  // ( ( ()-[z:a]->() ){2} ){2}: z is a list of lists — the "monster".
  PropertyGraph g = ToPropertyGraph(Chain(4));
  Result<GqlEvalResult> r =
      EvalGqlGroupPattern(g, *Pat("( ( ()-[z:a]->() ){2} ){2}"));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0].mu.at("z").ToString(g.skeleton()),
            "list(list(e0, e1), list(e2, e3))");
}

TEST(GroupEvalTest, DegreeMixingIsAnError) {
  // z as a group (under a star) concatenated with z as a singleton.
  PropertyGraph g = TwoEdgeChain();
  Result<GqlEvalResult> r = EvalGqlGroupPattern(
      g, *Pat("( ()-[z:a]->() )* ()-[z:a]->()"));
  EXPECT_FALSE(r.ok());
}

TEST(GroupEvalTest, ConditionsSeeSingletonsOnly) {
  PropertyGraph g;
  NodeId a = g.AddNode("a", "N");
  NodeId b = g.AddNode("b", "N");
  g.SetProperty(ObjectRef::Node(a), "k", Value(1));
  g.SetProperty(ObjectRef::Node(b), "k", Value(2));
  EdgeId e = g.AddEdge(a, b, "x");
  g.SetProperty(ObjectRef::Edge(e), "k", Value(5));
  Result<GqlEvalResult> ok = EvalGqlGroupPattern(
      g, *Pat("( (u)-[f]->(v) WHERE u.k < v.k )"));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().rows.size(), 1u);
  // A condition over a group variable filters everything out (like an
  // unbound variable — no nulls, no implicit unnesting).
  Result<GqlEvalResult> group_cond = EvalGqlGroupPattern(
      g, *Pat("( ( (u)-[f]->(v) )* WHERE u.k < v.k )"));
  ASSERT_TRUE(group_cond.ok());
  EXPECT_TRUE(group_cond.value().rows.empty());
}

TEST(GroupEvalTest, Section42PartialBindingsInsteadOfNulls) {
  // Section 4.2: real GQL allows `((x) + ->y)` to produce bindings with
  // domain {x} or {y} — CoreGQL forbids it (no nulls), but the
  // group-variable evaluator models GQL's partial bindings as partial
  // maps. Build the union AST directly (the CoreGQL parser would reject
  // the unequal free variables by design).
  PropertyGraph g = ToPropertyGraph(Chain(1));  // u1 -e0-> u2
  CorePatternPtr arms = CorePattern::Union(
      CorePattern::Node("x", std::nullopt),
      CorePattern::Edge("y", std::nullopt));
  Result<GqlEvalResult> r = EvalGqlGroupPattern(g, *arms);
  ASSERT_TRUE(r.ok()) << r.error().message();
  size_t node_rows = 0, edge_rows = 0;
  for (const GqlPathRow& row : r.value().rows) {
    if (row.mu.count("x")) {
      EXPECT_FALSE(row.mu.count("y"));
      ++node_rows;
    } else {
      EXPECT_TRUE(row.mu.count("y"));
      ++edge_rows;
    }
  }
  EXPECT_EQ(node_rows, 2u);  // u1, u2
  EXPECT_EQ(edge_rows, 1u);  // e0
  // CoreGQL itself rejects the same pattern (no nulls).
  EXPECT_FALSE(EvalPatternPairs(g, *arms).ok());
}

TEST(GroupEvalTest, StarCollectsPerIterationOnCycles) {
  PropertyGraph g = ToPropertyGraph(Cycle(2));
  CorePathEvalOptions options;
  options.max_path_length = 4;
  Result<GqlEvalResult> r = EvalGqlGroupPattern(
      g, *Pat("( ()-[z]->() )* "), options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().truncated);
  // Lists of every length up to the bound appear.
  size_t max_len = 0;
  for (const GqlPathRow& row : r.value().rows) {
    max_len = std::max(max_len, row.mu.at("z").list().size());
  }
  EXPECT_EQ(max_len, 4u);
}

}  // namespace
}  // namespace gqzoo
