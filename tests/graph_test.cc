#include <gtest/gtest.h>

#include "src/graph/builtin_graphs.h"
#include "src/graph/graph.h"
#include "src/graph/graph_io.h"
#include "src/graph/path.h"

namespace gqzoo {
namespace {

TEST(EdgeLabeledGraphTest, BasicConstruction) {
  EdgeLabeledGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  EdgeId e = g.AddEdge(a, b, "knows", "e0");
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Src(e), a);
  EXPECT_EQ(g.Tgt(e), b);
  EXPECT_EQ(g.LabelName(g.EdgeLabel(e)), "knows");
  EXPECT_EQ(g.FindNode("a"), std::optional<NodeId>(a));
  EXPECT_EQ(g.FindEdge("e0"), std::optional<EdgeId>(e));
  EXPECT_EQ(g.FindNode("zzz"), std::nullopt);
  ASSERT_EQ(g.OutEdges(a).size(), 1u);
  ASSERT_EQ(g.InEdges(b).size(), 1u);
  EXPECT_TRUE(g.OutEdges(b).empty());
}

TEST(EdgeLabeledGraphTest, ParallelEdgesAreDistinct) {
  // Definition 4 allows two edges with the same endpoints and label (the
  // paper's t2 and t5).
  EdgeLabeledGraph g;
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  EdgeId e1 = g.AddEdge(a, b, "Transfer");
  EdgeId e2 = g.AddEdge(a, b, "Transfer");
  EXPECT_NE(e1, e2);
  EXPECT_EQ(g.OutEdges(a).size(), 2u);
}

TEST(PropertyGraphTest, PropertiesArePartial) {
  PropertyGraph g;
  NodeId a = g.AddNode("a1", "Account");
  NodeId b = g.AddNode("a2", "Account");
  g.SetProperty(ObjectRef::Node(a), "owner", Value("Megan"));
  EXPECT_EQ(g.GetProperty(ObjectRef::Node(a), "owner"), Value("Megan"));
  EXPECT_EQ(g.GetProperty(ObjectRef::Node(b), "owner"), std::nullopt);
  EXPECT_EQ(g.GetProperty(ObjectRef::Node(a), "nope"), std::nullopt);
  EXPECT_EQ(g.LabelName(g.NodeLabel(a)), "Account");
}

TEST(PropertyGraphTest, SkeletonIsTheEdgeLabeledRestriction) {
  PropertyGraph g = Figure3Graph();
  const EdgeLabeledGraph& skel = g.skeleton();
  EXPECT_EQ(skel.NumNodes(), g.NumNodes());
  EXPECT_EQ(skel.NumEdges(), g.NumEdges());
  EdgeId t1 = *g.FindEdge("t1");
  EXPECT_EQ(skel.LabelName(skel.EdgeLabel(t1)), "Transfer");
}

class PathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = Figure2Graph();
    a1_ = *g_.FindNode("a1");
    a2_ = *g_.FindNode("a2");
    a3_ = *g_.FindNode("a3");
    t1_ = *g_.FindEdge("t1");
    t2_ = *g_.FindEdge("t2");
  }

  Path P(std::vector<ObjectRef> objs) {
    Result<Path> p = Path::Make(g_, std::move(objs));
    if (!p.ok()) {
      ADD_FAILURE() << p.error().message();
      return Path();
    }
    return p.value();
  }

  EdgeLabeledGraph g_;
  NodeId a1_, a2_, a3_;
  EdgeId t1_, t2_;
};

TEST_F(PathTest, ExampleTenValidPaths) {
  // Example 10: path(a1, t1, a3, t2) is a valid node-to-edge path.
  Result<Path> p = Path::Make(g_, {ObjectRef::Node(a1_), ObjectRef::Edge(t1_),
                                   ObjectRef::Node(a3_), ObjectRef::Edge(t2_)});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().StartsWithNode());
  EXPECT_FALSE(p.value().EndsWithNode());
  EXPECT_EQ(p.value().Length(), 2u);
  EXPECT_EQ(p.value().Src(g_), a1_);
  EXPECT_EQ(p.value().Tgt(g_), a2_);  // tgt of t2 is a2

  // path(t1, a3, t2) is a valid edge-to-edge path.
  Result<Path> q = Path::Make(
      g_, {ObjectRef::Edge(t1_), ObjectRef::Node(a3_), ObjectRef::Edge(t2_)});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().Src(g_), a1_);  // src of t1

  // path(a1, t1, t1) repeats an edge without interleaving a node: invalid.
  Result<Path> bad = Path::Make(
      g_, {ObjectRef::Node(a1_), ObjectRef::Edge(t1_), ObjectRef::Edge(t1_)});
  EXPECT_FALSE(bad.ok());
}

TEST_F(PathTest, ExampleTenConcatenations) {
  // path(a1, t1, a3, t2, a2) arises from several concatenations.
  Path full = P({ObjectRef::Node(a1_), ObjectRef::Edge(t1_),
                 ObjectRef::Node(a3_), ObjectRef::Edge(t2_),
                 ObjectRef::Node(a2_)});
  Path p1 = P({ObjectRef::Node(a1_), ObjectRef::Edge(t1_),
               ObjectRef::Node(a3_)});
  Path p2 = P({ObjectRef::Node(a3_), ObjectRef::Edge(t2_),
               ObjectRef::Node(a2_)});
  Path p3 = P({ObjectRef::Node(a1_), ObjectRef::Edge(t1_)});
  Path p4 = P({ObjectRef::Edge(t1_), ObjectRef::Node(a3_),
               ObjectRef::Edge(t2_), ObjectRef::Node(a2_)});

  // Collapsing concatenation (shared node a3).
  Result<Path> c1 = Path::Concat(g_, p1, p2);
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1.value(), full);
  // Edge-to-node adjacency.
  Result<Path> c2 = Path::Concat(g_, p3, p2);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2.value(), full);
  // Collapsing on a shared edge t1: len(p·p') < len(p) + len(p').
  Result<Path> c3 = Path::Concat(g_, p3, p4);
  ASSERT_TRUE(c3.ok());
  EXPECT_EQ(c3.value(), full);
  EXPECT_EQ(c3.value().Length(), 2u);
  EXPECT_LT(c3.value().Length(), p3.Length() + p4.Length());
}

TEST_F(PathTest, SingletonConcatIdempotent) {
  // path(o) · path(o) = path(o) for nodes AND edges (the paper's symmetric
  // design choice, different from GQL).
  Path node = Path::Singleton(ObjectRef::Node(a1_));
  Path edge = Path::Singleton(ObjectRef::Edge(t1_));
  EXPECT_EQ(Path::Concat(g_, node, node).value(), node);
  EXPECT_EQ(Path::Concat(g_, edge, edge).value(), edge);
}

TEST_F(PathTest, SelfLoopTraversalNeedsIncidentNode) {
  // Section 2: to traverse a self-loop twice, concatenate via the node.
  EdgeLabeledGraph g;
  NodeId u = g.AddNode("u");
  EdgeId loop = g.AddEdge(u, u, "a", "t0");
  Path t0 = Path::Singleton(ObjectRef::Edge(loop));
  Path u_t0 = Path::Make(g, {ObjectRef::Node(u), ObjectRef::Edge(loop)})
                  .value();
  EXPECT_EQ(Path::Concat(g, t0, t0).value().Length(), 1u);
  Result<Path> twice = Path::Concat(g, t0, u_t0);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice.value().Length(), 2u);
  EXPECT_EQ(twice.value().NumObjects(), 3u);  // path(t0, u, t0)
}

TEST_F(PathTest, EmptyPathIsNeutral) {
  Path p = P({ObjectRef::Node(a1_), ObjectRef::Edge(t1_)});
  Path empty;
  EXPECT_EQ(Path::Concat(g_, p, empty).value(), p);
  EXPECT_EQ(Path::Concat(g_, empty, p).value(), p);
  EXPECT_TRUE(empty.empty());
}

TEST_F(PathTest, ELabSkipsNodes) {
  Path p = P({ObjectRef::Node(a1_), ObjectRef::Edge(t1_),
              ObjectRef::Node(a3_), ObjectRef::Edge(t2_),
              ObjectRef::Node(a2_)});
  std::vector<LabelId> lab = p.ELab(g_);
  ASSERT_EQ(lab.size(), 2u);
  EXPECT_EQ(g_.LabelName(lab[0]), "Transfer");
  EXPECT_EQ(g_.LabelName(lab[1]), "Transfer");
}

TEST_F(PathTest, SimpleAndTrail) {
  EdgeLabeledGraph g;
  NodeId u = g.AddNode("u");
  NodeId v = g.AddNode("v");
  EdgeId e1 = g.AddEdge(u, v, "a");
  EdgeId e2 = g.AddEdge(v, u, "a");
  // u -e1-> v -e2-> u: a trail (no repeated edge) but not simple (u twice).
  Path cycle = Path::Make(g, {ObjectRef::Node(u), ObjectRef::Edge(e1),
                              ObjectRef::Node(v), ObjectRef::Edge(e2),
                              ObjectRef::Node(u)})
                   .value();
  EXPECT_TRUE(cycle.IsTrail());
  EXPECT_FALSE(cycle.IsSimple());
  Path straight = Path::Make(g, {ObjectRef::Node(u), ObjectRef::Edge(e1),
                                 ObjectRef::Node(v)})
                      .value();
  EXPECT_TRUE(straight.IsSimple());
  EXPECT_TRUE(straight.IsTrail());
}

TEST_F(PathTest, ToStringUsesNames) {
  Path p = P({ObjectRef::Node(a1_), ObjectRef::Edge(t1_),
              ObjectRef::Node(a3_)});
  EXPECT_EQ(p.ToString(g_), "path(a1, t1, a3)");
}

TEST(BuiltinGraphTest, Figure2Topology) {
  EdgeLabeledGraph g = Figure2Graph();
  auto edge = [&](const std::string& name) { return *g.FindEdge(name); };
  auto node = [&](const std::string& name) { return *g.FindNode(name); };
  // The constraints documented in builtin_graphs.h.
  EXPECT_EQ(g.Src(edge("t1")), node("a1"));
  EXPECT_EQ(g.Tgt(edge("t1")), node("a3"));
  EXPECT_EQ(g.Src(edge("t2")), node("a3"));
  EXPECT_EQ(g.Tgt(edge("t2")), node("a2"));
  EXPECT_EQ(g.Src(edge("t5")), node("a3"));
  EXPECT_EQ(g.Tgt(edge("t5")), node("a2"));
  EXPECT_EQ(g.Tgt(edge("t7")), node("a5"));
  EXPECT_EQ(g.LabelName(g.EdgeLabel(edge("t1"))), "Transfer");
  EXPECT_EQ(g.LabelName(g.EdgeLabel(edge("r1"))), "owner");
  EXPECT_EQ(g.Tgt(edge("r10")), node("yes"));
  EXPECT_EQ(g.Tgt(edge("r9")), node("no"));
}

TEST(BuiltinGraphTest, Figure3Properties) {
  PropertyGraph g = Figure3Graph();
  NodeId a1 = *g.FindNode("a1");
  EXPECT_EQ(g.GetProperty(ObjectRef::Node(a1), "owner"), Value("Megan"));
  EdgeId t9 = *g.FindEdge("t9");
  ASSERT_TRUE(g.GetProperty(ObjectRef::Edge(t9), "amount").has_value());
  // t9 is the only transfer under the 4.5M threshold of Section 6.3.
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    std::optional<Value> amount = g.GetProperty(ObjectRef::Edge(e), "amount");
    ASSERT_TRUE(amount.has_value());
    if (e == t9) {
      EXPECT_LT(amount->ToDouble(), 4.5e6);
    } else {
      EXPECT_GE(amount->ToDouble(), 4.5e6);
    }
  }
}

TEST(GraphIoTest, RoundTrip) {
  PropertyGraph g = Figure3Graph();
  std::string text = PropertyGraphToText(g);
  Result<PropertyGraph> parsed = ParsePropertyGraph(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_EQ(parsed.value().NumNodes(), g.NumNodes());
  EXPECT_EQ(parsed.value().NumEdges(), g.NumEdges());
  NodeId a1 = *parsed.value().FindNode("a1");
  EXPECT_EQ(parsed.value().GetProperty(ObjectRef::Node(a1), "owner"),
            Value("Megan"));
  EdgeId t9 = *parsed.value().FindEdge("t9");
  EXPECT_EQ(parsed.value().GetProperty(ObjectRef::Edge(t9), "amount"),
            Value(1.0e6));
}

TEST(GraphIoTest, ParseErrors) {
  EXPECT_FALSE(ParsePropertyGraph("node").ok());
  EXPECT_FALSE(ParsePropertyGraph("node x").ok());
  EXPECT_FALSE(ParsePropertyGraph("edge :T a -> b").ok());  // unknown nodes
  EXPECT_FALSE(ParsePropertyGraph("node a :N\nnode a :N").ok());  // duplicate
  EXPECT_FALSE(ParsePropertyGraph("node a :N { x = }").ok());
  EXPECT_FALSE(ParsePropertyGraph("frobnicate a :N").ok());
}

TEST(GraphIoTest, OversizedTextIsInvalidArgumentUpFront) {
  // The cap is checked before any parsing: a huge input must be rejected
  // by size alone (the filler here is not even valid graph text).
  std::string huge(kMaxGraphTextBytes + 1, '#');
  Result<PropertyGraph> r = ParsePropertyGraph(huge);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
}

TEST(GraphIoTest, EveryByteTruncationParsesOrRejectsCleanly) {
  // A loader fed a partial file (crash mid-copy, truncated download) must
  // never crash or accept structurally broken text; each cut either parses
  // as a valid smaller graph or comes back kInvalidArgument.
  std::string text = PropertyGraphToText(Figure3Graph());
  for (size_t cut = 0; cut < text.size(); ++cut) {
    std::string prefix = text.substr(0, cut);
    Result<PropertyGraph> r = ParsePropertyGraph(prefix);
    if (r.ok()) {
      // Whatever parsed must itself round-trip (no half-ingested object).
      std::string rendered = PropertyGraphToText(r.value());
      Result<PropertyGraph> again = ParsePropertyGraph(rendered);
      ASSERT_TRUE(again.ok()) << "cut at " << cut;
      EXPECT_EQ(PropertyGraphToText(again.value()), rendered)
          << "cut at " << cut;
    } else {
      EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument)
          << "cut at " << cut << ": " << r.error().message();
    }
  }
}

TEST(GraphIoTest, ParsesValuesAndComments) {
  Result<PropertyGraph> g = ParsePropertyGraph(R"(
    # a small graph
    node a :N { i = 42, d = 2.5, s = "hi", b = true }
    node b :N
    edge e1 :x a -> b { w = -3 }
    edge :x b -> a
  )");
  ASSERT_TRUE(g.ok()) << g.error().message();
  NodeId a = *g.value().FindNode("a");
  EXPECT_EQ(g.value().GetProperty(ObjectRef::Node(a), "i"), Value(42));
  EXPECT_EQ(g.value().GetProperty(ObjectRef::Node(a), "d"), Value(2.5));
  EXPECT_EQ(g.value().GetProperty(ObjectRef::Node(a), "s"), Value("hi"));
  EXPECT_EQ(g.value().GetProperty(ObjectRef::Node(a), "b"), Value(true));
  EdgeId e1 = *g.value().FindEdge("e1");
  EXPECT_EQ(g.value().GetProperty(ObjectRef::Edge(e1), "w"),
            Value(int64_t{-3}));
  EXPECT_EQ(g.value().NumEdges(), 2u);
}

TEST(GraphIoTest, ToPropertyGraphLifting) {
  EdgeLabeledGraph g = Figure2Graph();
  PropertyGraph pg = ToPropertyGraph(g, "Obj");
  EXPECT_EQ(pg.NumNodes(), g.NumNodes());
  EXPECT_EQ(pg.NumEdges(), g.NumEdges());
  EXPECT_EQ(pg.LabelName(pg.NodeLabel(*pg.FindNode("a1"))), "Obj");
  EXPECT_EQ(pg.LabelName(pg.EdgeLabel(*pg.FindEdge("t1"))), "Transfer");
}

}  // namespace
}  // namespace gqzoo
