// Tests for the Section 7 / Remark 9 extensions: two-way navigation
// (2RPQs), RPQ containment, and ordered (k-shortest) enumeration.

#include <gtest/gtest.h>

#include <set>

#include "src/automata/operations.h"
#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/regex/printer.h"
#include "src/rpq/rpq_eval.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::Rx;

TEST(TwoWayParserTest, InverseAtoms) {
  RegexPtr r = Rx("~a");
  ASSERT_EQ(r->op(), Regex::Op::kAtom);
  EXPECT_TRUE(r->atom().inverse);
  EXPECT_TRUE(HasInverseAtoms(*r));
  EXPECT_FALSE(HasInverseAtoms(*Rx("a b*")));
  EXPECT_TRUE(HasInverseAtoms(*Rx("(a ~b)*")));
  // Inverse wildcard and capture.
  EXPECT_TRUE(Rx("~_")->atom().inverse);
  EXPECT_TRUE(Rx("~a^z")->atom().inverse);
  // ~ applies to atoms only.
  EXPECT_FALSE(ParseRegex("~(a b)", RegexDialect::kPlain).ok());
  // Not available in the dl dialect.
  EXPECT_FALSE(ParseRegex("~[a]", RegexDialect::kDl).ok());
}

TEST(TwoWayParserTest, PrintRoundTrip) {
  for (const char* text : {"~a", "(a ~a)*", "~_ b", "a ~!{b}"}) {
    RegexPtr r = Rx(text);
    std::string printed = RegexToString(*r, RegexDialect::kPlain);
    Result<RegexPtr> reparsed = ParseRegex(printed, RegexDialect::kPlain);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(RegexToString(*reparsed.value(), RegexDialect::kPlain),
              printed);
  }
}

TEST(TwoWayEvalTest, BackwardStep) {
  // u -a-> v: ~a connects v to u.
  EdgeLabeledGraph g = Chain(2);  // u1 -> u2 -> u3
  auto pairs = EvalRpq(g, *Rx("~a"));
  std::set<std::pair<NodeId, NodeId>> set(pairs.begin(), pairs.end());
  EXPECT_EQ(set, (std::set<std::pair<NodeId, NodeId>>{{1, 0}, {2, 1}}));
}

TEST(TwoWayEvalTest, ZigZag) {
  // a ~a: forward then backward — reaches siblings sharing a parent edge
  // target... on a chain it returns to the start.
  EdgeLabeledGraph g = Chain(3);
  auto pairs = EvalRpq(g, *Rx("a ~a"));
  std::set<std::pair<NodeId, NodeId>> set(pairs.begin(), pairs.end());
  EXPECT_EQ(set, (std::set<std::pair<NodeId, NodeId>>{{0, 0}, {1, 1},
                                                      {2, 2}}));
  // On a "V" shape u -> w <- v, a ~a connects u to v.
  EdgeLabeledGraph v;
  NodeId a = v.AddNode("a");
  NodeId b = v.AddNode("b");
  NodeId w = v.AddNode("w");
  v.AddEdge(a, w, "a");
  v.AddEdge(b, w, "a");
  auto vpairs = EvalRpq(v, *Rx("a ~a"));
  std::set<std::pair<NodeId, NodeId>> vset(vpairs.begin(), vpairs.end());
  EXPECT_TRUE(vset.count({a, b}));
  EXPECT_TRUE(vset.count({b, a}));
  EXPECT_FALSE(vset.count({a, w}));
}

TEST(TwoWayEvalTest, TwoWayReachabilityOnFigure2) {
  // (Transfer|~Transfer)*: the undirected connectivity over transfers —
  // connects all accounts both ways without needing the full cycle.
  EdgeLabeledGraph g = Figure2Graph();
  Nfa nfa = Nfa::FromRegex(*Rx("(Transfer|~Transfer)*"), g);
  EXPECT_TRUE(nfa.HasInverse());
  std::vector<NodeId> from_a1 = EvalRpqFrom(g, nfa, *g.FindNode("a1"));
  std::set<NodeId> set(from_a1.begin(), from_a1.end());
  for (const char* name : {"a1", "a2", "a3", "a4", "a5", "a6"}) {
    EXPECT_TRUE(set.count(*g.FindNode(name))) << name;
  }
  // Entity nodes are not reached by Transfer edges in either direction.
  EXPECT_FALSE(set.count(*g.FindNode("Megan")));
}

TEST(TwoWayEvalTest, BruteForceAgreement) {
  // Independent oracle: explicit traversal-sequence search.
  for (uint64_t seed : {61, 62, 63}) {
    EdgeLabeledGraph g = RandomGraph(6, 10, 2, seed);
    RegexPtr r = Rx("a (~b | b) ~a");
    Nfa nfa = Nfa::FromRegex(*r, g);
    auto pairs = EvalRpq(g, nfa);
    std::set<std::pair<NodeId, NodeId>> fast(pairs.begin(), pairs.end());
    // Oracle: BFS over (node, state) with explicit forward/backward moves,
    // structured differently from the evaluator (adjacency recomputed).
    std::set<std::pair<NodeId, NodeId>> slow;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      std::set<std::pair<NodeId, uint32_t>> seen = {{u, nfa.initial()}};
      std::vector<std::pair<NodeId, uint32_t>> stack(seen.begin(), seen.end());
      while (!stack.empty()) {
        auto [v, q] = stack.back();
        stack.pop_back();
        if (nfa.accepting(q)) slow.insert({u, v});
        for (const Nfa::Transition& t : nfa.Out(q)) {
          for (EdgeId e = 0; e < g.NumEdges(); ++e) {
            if (!t.pred.Matches(g.EdgeLabel(e))) continue;
            NodeId from = t.inverse ? g.Tgt(e) : g.Src(e);
            NodeId to = t.inverse ? g.Src(e) : g.Tgt(e);
            if (from != v) continue;
            if (seen.insert({to, t.to}).second) stack.push_back({to, t.to});
          }
        }
      }
    }
    EXPECT_EQ(fast, slow) << "seed " << seed;
  }
}

TEST(TwoWayEvalTest, CrpqWithInverseAtoms) {
  EdgeLabeledGraph g = Figure2Graph();
  // Accounts sharing an owner-like pattern: x and y both transfer to a
  // common account: Transfer ~Transfer.
  Result<CrpqResult> r =
      EvalCrpq(g, ParseCrpq("q(x, y) := (Transfer ~Transfer)(x, y)")
                      .ValueOrDie());
  ASSERT_TRUE(r.ok()) << r.error().message();
  // t2/t5: a3 -> a2 twice, so (a3, a3); t3: a2 -> a4 and t6: a3 -> a4, so
  // (a2, a3) and (a3, a2).
  std::set<std::string> rows;
  for (const auto& row : r.value().rows) {
    rows.insert(std::string(g.NodeName(std::get<NodeId>(row[0]))) + "->" +
                std::string(g.NodeName(std::get<NodeId>(row[1]))));
  }
  EXPECT_TRUE(rows.count("a2->a3"));
  EXPECT_TRUE(rows.count("a3->a2"));
  // Inverse atoms with list variables are rejected (one-way paths).
  Result<CrpqResult> bad =
      EvalCrpq(g, ParseCrpq("q(z) := (~Transfer^z)(x, y)").ValueOrDie());
  EXPECT_FALSE(bad.ok());
}

TEST(ContainmentTest, LanguageInclusion) {
  EdgeLabeledGraph g = Clique(2);
  g.InternLabel("b");
  auto nfa = [&](const char* text) { return Nfa::FromRegex(*Rx(text), g); };
  EXPECT_TRUE(IsContainedIn(nfa("a"), nfa("a|b")));
  EXPECT_TRUE(IsContainedIn(nfa("(a a)*"), nfa("a*")));
  EXPECT_FALSE(IsContainedIn(nfa("a*"), nfa("(a a)*")));
  EXPECT_TRUE(IsContainedIn(nfa("a{2,4}"), nfa("a+")));
  EXPECT_FALSE(IsContainedIn(nfa("a?"), nfa("a")));
  EXPECT_TRUE(IsContainedIn(nfa("a b|b a"), nfa("_ _")));
  EXPECT_FALSE(IsContainedIn(nfa("_"), nfa("a|b")));  // wildcard is larger
  // Containment both ways = equivalence.
  EXPECT_TRUE(IsContainedIn(nfa("(((a*)*)*)*"), nfa("a*")));
  EXPECT_TRUE(IsContainedIn(nfa("a*"), nfa("(((a*)*)*)*")));
}

TEST(OrderedEnumerationTest, NondecreasingLengths) {
  EdgeLabeledGraph g = Figure2Graph();
  Nfa nfa = Nfa::FromRegex(*Rx("(Transfer^z)+"), g);
  Pmr pmr = BuildPmrBetween(g, nfa, *g.FindNode("a3"), *g.FindNode("a5"));
  EnumerationLimits limits;
  limits.max_results = 50;
  size_t last = 0;
  size_t count = 0;
  EnumeratePathBindingsByLength(pmr, limits, [&](const PathBinding& pb) {
    EXPECT_GE(pb.path.Length(), last);
    last = pb.path.Length();
    ++count;
    return true;
  });
  EXPECT_EQ(count, 50u);  // infinitely many exist; the first 50 stream out
}

TEST(OrderedEnumerationTest, MatchesDfsEnumerationAsSets) {
  EdgeLabeledGraph g = RandomGraph(6, 9, 2, 71);
  Nfa nfa = Nfa::FromRegex(*Rx("(a|b)+"), g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      Pmr pmr = BuildPmrBetween(g, nfa, u, v);
      EnumerationLimits limits;
      limits.max_length = 4;
      std::vector<PathBinding> dfs = CollectPathBindings(pmr, limits);
      std::vector<PathBinding> ordered;
      EnumeratePathBindingsByLength(pmr, limits,
                                    [&ordered](const PathBinding& pb) {
                                      ordered.push_back(pb);
                                      return true;
                                    });
      std::sort(ordered.begin(), ordered.end());
      ordered.erase(std::unique(ordered.begin(), ordered.end()),
                    ordered.end());
      EXPECT_EQ(ordered, dfs) << u << "->" << v;
    }
  }
}

TEST(OrderedEnumerationTest, KShortest) {
  // Fig 2: shortest transfer paths a3 → a1: t7 t4 (len 2); next come the
  // length-5 ones around a cycle.
  EdgeLabeledGraph g = Figure2Graph();
  Nfa nfa = Nfa::FromRegex(*Rx("(Transfer^z)+"), g);
  Pmr pmr = BuildPmrBetween(g, nfa, *g.FindNode("a3"), *g.FindNode("a1"));
  std::vector<PathBinding> top = KShortestPathBindings(pmr, 4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].path.ToString(g), "path(a3, t7, a5, t4, a1)");
  EXPECT_EQ(top[0].path.Length(), 2u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i].path.Length(), top[i - 1].path.Length());
  }
  std::set<PathBinding> distinct(top.begin(), top.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(OrderedEnumerationTest, FiniteSmallerThanK) {
  EdgeLabeledGraph g = Chain(3);
  Nfa nfa = Nfa::FromRegex(*Rx("a a"), g);
  Pmr pmr = BuildPmrBetween(g, nfa, 0, 2);
  std::vector<PathBinding> top = KShortestPathBindings(pmr, 10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].path.Length(), 2u);
}

}  // namespace
}  // namespace gqzoo
