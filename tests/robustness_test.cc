// Robustness and cross-evaluator consistency:
//  * parsers must reject garbage with Result errors, never crash;
//  * the lazy pair evaluator, the all-pairs evaluator, and the PMR agree;
//  * the dl shortest-length search agrees with shortest-mode enumeration;
//  * generators produce the advertised shapes.

#include <gtest/gtest.h>

#include <future>
#include <random>
#include <set>
#include <vector>

#include "src/coregql/pattern_parser.h"
#include "src/engine/engine.h"
#include "src/coregql/query.h"
#include "src/crpq/crpq_parser.h"
#include "src/datatest/dl_eval.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/regex/parser.h"
#include "src/rpq/rpq_eval.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::Rx;

// Random strings over the token-ish character set; every parser must
// return (not crash, not hang) — ok or error both being acceptable.
TEST(ParserFuzzTest, RandomInputNeverCrashes) {
  const std::string alphabet =
      "ab xyz()[]{}<>|*+?^~!=.,:;@-'\"0123456789_ \t\n";
  std::mt19937_64 rng(20260707);
  std::uniform_int_distribution<size_t> len_dist(0, 40);
  std::uniform_int_distribution<size_t> char_dist(0, alphabet.size() - 1);
  for (int i = 0; i < 3000; ++i) {
    std::string input;
    size_t len = len_dist(rng);
    for (size_t j = 0; j < len; ++j) input += alphabet[char_dist(rng)];
    (void)ParseRegex(input, RegexDialect::kPlain);
    (void)ParseRegex(input, RegexDialect::kDl);
    (void)ParseCrpq(input);
    (void)ParseCorePattern(input);
    (void)ParseCoreGqlQuery(input);
    (void)ParsePropertyGraph(input);
  }
  SUCCEED();
}

// Mutations of valid queries: drop/duplicate single characters.
TEST(ParserFuzzTest, MutatedQueriesNeverCrash) {
  const std::string seeds[] = {
      "q(x1, x2, z) := owner(y1, x1), shortest (Transfer^z)+ (y1, @a5)",
      "MATCH p = (x) ( (u)-[e:a]->(v) WHERE u.k < v.k )* (y) RETURN p, x",
      "()[Transfer^z][x := date]( (_)[a^z][date > x][x := date] )*()",
      "node a :N { k = 1 }\nedge e :T a -> a { w = -2.5 }",
  };
  for (const std::string& seed : seeds) {
    for (size_t i = 0; i < seed.size(); ++i) {
      std::string dropped = seed.substr(0, i) + seed.substr(i + 1);
      std::string doubled = seed.substr(0, i) + seed[i] + seed.substr(i);
      for (const std::string& input : {dropped, doubled}) {
        (void)ParseCrpq(input);
        (void)ParseCrpq(input, RegexDialect::kDl);
        (void)ParseCoreGqlQuery(input);
        (void)ParseRegex(input, RegexDialect::kDl);
        (void)ParsePropertyGraph(input);
      }
    }
  }
  SUCCEED();
}

// Malformed graph files must come back as Result errors that name the
// offending line — never crashes, never silent acceptance.
TEST(GraphIoRobustnessTest, MalformedInputsReportLineNumbers) {
  const struct {
    const char* label;
    std::string text;
  } cases[] = {
      {"truncated node line", "node a :N\nnode b"},
      {"truncated edge line", "node a :N\nedge e :T a ->"},
      {"edge to unknown endpoint", "node a :N\nedge e :T a -> zz"},
      {"property block never closed", "node a :N { k = 1"},
      {"unterminated string", "node a :N { s = \"oops"},
      {"stray punctuation", "node a :N\n-> -> ->"},
      {"non-utf8 garbage", std::string("node a :N\n\xff\xfe\x80\x81 junk")},
      {"garbage after valid prefix",
       "node a :N\nedge e :T a -> a\n\x01\x02\x03"},
  };
  for (const auto& c : cases) {
    Result<PropertyGraph> g = ParsePropertyGraph(c.text);
    ASSERT_FALSE(g.ok()) << c.label;
    EXPECT_NE(g.error().message().find("line "), std::string::npos)
        << c.label << ": " << g.error().message();
  }
  // Huge numeric literals saturate instead of crashing; the graph itself
  // still round-trips.
  Result<PropertyGraph> huge = ParsePropertyGraph(
      "node a :N { k = 99999999999999999999999999999 }\n"
      "edge e :T a -> a { w = 1e500 }");
  ASSERT_TRUE(huge.ok()) << (huge.ok() ? "" : huge.error().message());
  EXPECT_EQ(huge.value().NumNodes(), 1u);
}

// Overload drill: twice the admission capacity in concurrent mixed-language
// submissions. Some must be shed with kOverloaded, nothing may deadlock,
// and the pool must drain clean (checked again under TSan in CI).
TEST(EngineOverloadTest, MixedLanguageOverloadDrainsClean) {
  QueryEngine::Options options;
  options.num_threads = 2;
  options.governor.admission_capacity = 4;
  QueryEngine engine(RandomPropertyGraph(12, 40, 3, 77), options);

  std::vector<QueryRequest> mix;
  auto req = [](QueryLanguage language, const std::string& text) {
    QueryRequest r;
    r.language = language;
    r.text = text;
    r.timeout = std::chrono::milliseconds(150);
    return r;
  };
  mix.push_back(req(QueryLanguage::kRpq, "a+"));
  mix.push_back(req(QueryLanguage::kCrpq, "q(x, y) :- a+(x, y), a*(y, x)"));
  mix.push_back(req(QueryLanguage::kCoreGql,
                    "MATCH (x)-[:a]->(y)-[:a]->(z) RETURN x, z"));
  mix.push_back(req(QueryLanguage::kGqlGroup, "(x) (-[t:a]->(v)){1,4} (y)"));

  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const QueryRequest& r : mix) futures.push_back(engine.Submit(r));
  }
  size_t shed = 0, completed = 0;
  for (auto& f : futures) {
    Result<QueryResponse> r = f.get();  // nothing may hang
    if (!r.ok() && r.error().code() == ErrorCode::kOverloaded) {
      ++shed;
    } else {
      ++completed;  // ok, deadline, or budget — all are orderly outcomes
    }
  }
  EXPECT_EQ(shed + completed, futures.size());
  EXPECT_EQ(engine.metrics().overloaded_shed.value(), shed);
  EXPECT_LE(engine.metrics().queue_depth_high_water.value(), 4u);
  EXPECT_EQ(engine.governor().in_flight(), 0u);
  // The engine serves new queries after the storm.
  QueryRequest after;
  after.language = QueryLanguage::kRpq;
  after.text = "a";
  EXPECT_TRUE(engine.Submit(after).get().ok());
}

TEST(ConsistencyTest, PairEvaluatorsAgree) {
  for (uint64_t seed : {301, 302, 303}) {
    EdgeLabeledGraph g = RandomGraph(10, 25, 2, seed);
    for (const char* regex : {"a*", "(a b)+", "a (a|b)* b?"}) {
      Nfa nfa = Nfa::FromRegex(*Rx(regex), g);
      auto pairs = EvalRpq(g, nfa);
      std::set<std::pair<NodeId, NodeId>> all(pairs.begin(), pairs.end());
      for (NodeId u = 0; u < g.NumNodes(); ++u) {
        std::vector<NodeId> from = EvalRpqFrom(g, nfa, u);
        std::set<NodeId> from_set(from.begin(), from.end());
        for (NodeId v = 0; v < g.NumNodes(); ++v) {
          bool in_all = all.count({u, v}) > 0;
          EXPECT_EQ(in_all, from_set.count(v) > 0) << regex;
          EXPECT_EQ(in_all, EvalRpqPair(g, nfa, u, v)) << regex;
          // And the PMR is non-empty exactly for answer pairs.
          Pmr pmr = BuildPmrBetween(g, nfa, u, v);
          EXPECT_EQ(in_all, pmr.NumNodes() > 0) << regex;
        }
      }
    }
  }
}

TEST(ConsistencyTest, DlShortestLengthMatchesEnumeration) {
  for (uint64_t seed : {401, 402}) {
    PropertyGraph g = RandomPropertyGraph(8, 20, 3, seed);
    DlNfa nfa = DlNfa::FromRegex(
        *ParseRegex("( ()[a] )+ (k < 2)", RegexDialect::kDl).ValueOrDie(),
        g);
    DlEvaluator evaluator(g, nfa);
    EnumerationLimits limits;
    limits.max_length = 12;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        size_t best = evaluator.ShortestLength(u, v);
        std::vector<PathBinding> shortest =
            evaluator.CollectModePaths(u, v, PathMode::kShortest, limits);
        if (best == SIZE_MAX) {
          EXPECT_TRUE(shortest.empty()) << u << "->" << v;
        } else {
          ASSERT_FALSE(shortest.empty()) << u << "->" << v;
          for (const PathBinding& pb : shortest) {
            EXPECT_EQ(pb.path.Length(), best) << u << "->" << v;
          }
        }
      }
    }
  }
}

TEST(ConsistencyTest, ReachableFromMatchesCollectedEndpoints) {
  PropertyGraph g = RandomPropertyGraph(7, 18, 3, 55);
  DlNfa nfa = DlNfa::FromRegex(
      *ParseRegex("( ()[a] ){1,4} ()", RegexDialect::kDl).ValueOrDie(), g);
  DlEvaluator evaluator(g, nfa);
  EnumerationLimits limits;
  limits.max_length = 6;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    std::vector<NodeId> reach = evaluator.ReachableFrom(u);
    std::set<NodeId> reach_set(reach.begin(), reach.end());
    std::set<NodeId> enumerated;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (!evaluator.CollectModePaths(u, v, PathMode::kAll, limits).empty()) {
        enumerated.insert(v);
      }
    }
    EXPECT_EQ(reach_set, enumerated) << "from " << u;
  }
}

TEST(GeneratorShapeTest, AdvertisedSizes) {
  EXPECT_EQ(ParallelChain(5).NumNodes(), 6u);
  EXPECT_EQ(ParallelChain(5).NumEdges(), 10u);
  EXPECT_EQ(ParallelChain(5, 3).NumEdges(), 15u);
  EXPECT_EQ(Chain(7).NumNodes(), 8u);
  EXPECT_EQ(Chain(7).NumEdges(), 7u);
  EXPECT_EQ(Cycle(4).NumEdges(), 4u);
  EXPECT_EQ(Clique(5).NumEdges(), 20u);
  EXPECT_EQ(RandomGraph(10, 33, 2, 1).NumEdges(), 33u);
  EXPECT_EQ(SubsetSumChain({1, 2, 3}).NumEdges(), 6u);
  EXPECT_EQ(IncreasingEdgeChain(6, 0, 1).NumEdges(), 6u);
  EXPECT_EQ(TransferRing(9, 2, 100.0, 1).NumEdges(), 9u);
  EXPECT_EQ(TwoWayTransferChain(4).NumNodes(), 10u);  // 5 hubs + 5 decoys
  // TransferRing: exactly num_cheap amounts below the threshold.
  PropertyGraph ring = TransferRing(20, 3, 1000.0, 5);
  size_t cheap = 0;
  for (EdgeId e = 0; e < ring.NumEdges(); ++e) {
    if (ring.GetProperty(ObjectRef::Edge(e), "amount")->ToDouble() < 1000.0) {
      ++cheap;
    }
  }
  EXPECT_EQ(cheap, 3u);
  // Deterministic in the seed.
  EXPECT_EQ(PropertyGraphToText(RandomPropertyGraph(8, 16, 5, 9)),
            PropertyGraphToText(RandomPropertyGraph(8, 16, 5, 9)));
}

TEST(ConsistencyTest, CoreGqlPathlessAndPathBlocksAgreeOnElements) {
  PropertyGraph g = RandomPropertyGraph(6, 12, 3, 321);
  // The same pattern evaluated with and without a path binding projects to
  // the same element rows.
  Result<CoreQueryResult> plain =
      RunCoreGql(g, "MATCH (x)-[e]->(y) RETURN x, e, y");
  Result<CoreQueryResult> with_path =
      RunCoreGql(g, "MATCH p = (x)-[e]->(y) RETURN x, e, y");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(with_path.ok());
  EXPECT_EQ(plain.value().relation.rows(), with_path.value().relation.rows());
}

}  // namespace
}  // namespace gqzoo
