#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "src/engine/language.h"
#include "src/engine/plan_cache.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/graph.h"

namespace gqzoo {
namespace {

QueryRequest Req(QueryLanguage language, const std::string& text) {
  QueryRequest request;
  request.language = language;
  request.text = text;
  return request;
}

/// The Figure 5 graph as a property graph: a chain s → v1 → ... → t of
/// `n` segments with two parallel a-edges each, i.e. 2^n distinct s→t
/// paths (all shortest).
PropertyGraph Figure5Chain(size_t n) {
  PropertyGraph g;
  std::vector<NodeId> nodes;
  nodes.push_back(g.AddNode("s", "Node"));
  for (size_t i = 1; i < n; ++i) {
    nodes.push_back(g.AddNode("v" + std::to_string(i), "Node"));
  }
  nodes.push_back(g.AddNode("t", "Node"));
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(nodes[i], nodes[i + 1], "a");
    g.AddEdge(nodes[i], nodes[i + 1], "a");
  }
  return g;
}

TEST(QueryLanguageTest, NamesRoundTrip) {
  for (size_t i = 0; i < kNumQueryLanguages; ++i) {
    QueryLanguage language = static_cast<QueryLanguage>(i);
    Result<QueryLanguage> parsed =
        ParseQueryLanguage(QueryLanguageName(language));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), language);
  }
  EXPECT_FALSE(ParseQueryLanguage("sparql").ok());
  // Aliases from the shell's command surface.
  Result<QueryLanguage> two_rpq = ParseQueryLanguage("2rpq");
  ASSERT_TRUE(two_rpq.ok());
  EXPECT_EQ(two_rpq.value(), QueryLanguage::kRpq);
}

TEST(QueryEngineTest, ExecutesEveryLanguage) {
  QueryEngine engine(Figure3Graph());
  std::vector<QueryRequest> requests = {
      Req(QueryLanguage::kRpq, "Transfer+"),
      Req(QueryLanguage::kRpq, "~Transfer"),
      Req(QueryLanguage::kCrpq, "q(x, y) :- Transfer+(x, y)"),
      Req(QueryLanguage::kDlCrpq, "q(x, y) := ( ()[Transfer] )+ () (x, y)"),
      Req(QueryLanguage::kCoreGql, "MATCH (x)-[:Transfer]->(y) RETURN x, y"),
      Req(QueryLanguage::kGqlGroup, "(x) (-[t:Transfer]->(v)){1,2} (y)"),
      Req(QueryLanguage::kRegular,
          "two(x, y) := Transfer(x, y), Transfer(y, x) ; "
          "q(u, v) := two*(u, v)"),
  };
  QueryRequest paths = Req(QueryLanguage::kPaths, "Transfer+");
  paths.paths.from = "a2";
  paths.paths.to = "a4";
  requests.push_back(paths);

  for (const QueryRequest& request : requests) {
    Result<QueryResponse> r = engine.Execute(request);
    ASSERT_TRUE(r.ok()) << QueryLanguageName(request.language) << " "
                        << request.text << ": "
                        << (r.ok() ? "" : r.error().message());
    EXPECT_FALSE(r.value().cache_hit);
  }
  EXPECT_EQ(engine.metrics().queries_ok.value(), requests.size());
  EXPECT_EQ(engine.metrics().queries_error.value(), 0u);
}

TEST(QueryEngineTest, SecondExecutionHitsPlanCache) {
  QueryEngine engine(Figure3Graph());
  QueryRequest request = Req(QueryLanguage::kCoreGql,
                             "MATCH (x)-[:Transfer]->(y) RETURN x, y");

  Result<QueryResponse> cold = engine.Execute(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.value().cache_hit);
  EXPECT_EQ(engine.metrics().cache_hits.value(), 0u);
  EXPECT_EQ(engine.metrics().cache_misses.value(), 1u);

  Result<QueryResponse> warm = engine.Execute(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().cache_hit);
  EXPECT_EQ(engine.metrics().cache_hits.value(), 1u);
  EXPECT_EQ(engine.metrics().cache_misses.value(), 1u);
  // Same plan, same answer.
  EXPECT_EQ(cold.value().text, warm.value().text);
  EXPECT_EQ(cold.value().num_rows, warm.value().num_rows);
}

TEST(QueryEngineTest, OptimizedAndPlainPlansAreDistinctEntries) {
  QueryEngine engine(Figure3Graph());
  QueryRequest plain = Req(QueryLanguage::kCoreGql,
                           "MATCH (x)-[:Transfer]->(y) RETURN x, y");
  QueryRequest optimized = plain;
  optimized.optimize = true;

  ASSERT_TRUE(engine.Execute(plain).ok());
  Result<QueryResponse> r = engine.Execute(optimized);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().cache_hit);  // different cache key
  EXPECT_EQ(engine.plan_cache().GetStats().entries, 2u);
}

TEST(QueryEngineTest, LruEvictionInTinyCache) {
  QueryEngine::Options options;
  options.cache_shards = 1;
  options.cache_capacity_per_shard = 2;
  QueryEngine engine(Figure3Graph(), options);

  ASSERT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "Transfer")).ok());
  ASSERT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "Transfer+")).ok());
  ASSERT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "Transfer*")).ok());

  PlanCache::Stats stats = engine.plan_cache().GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // "Transfer" was the least recently used, so it was evicted and has to
  // be recompiled; "Transfer*" is still resident.
  Result<QueryResponse> evicted =
      engine.Execute(Req(QueryLanguage::kRpq, "Transfer"));
  ASSERT_TRUE(evicted.ok());
  EXPECT_FALSE(evicted.value().cache_hit);
  Result<QueryResponse> resident =
      engine.Execute(Req(QueryLanguage::kRpq, "Transfer*"));
  ASSERT_TRUE(resident.ok());
  EXPECT_TRUE(resident.value().cache_hit);
}

TEST(QueryEngineTest, GraphEpochInvalidatesCachedPlans) {
  QueryEngine engine(Figure5Chain(3));
  QueryRequest request = Req(QueryLanguage::kRpq, "a+");

  Result<QueryResponse> before = engine.Execute(request);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(engine.Execute(request).value().cache_hit);
  EXPECT_EQ(engine.graph_epoch(), 0u);

  engine.SetGraph(Figure5Chain(5));
  EXPECT_EQ(engine.graph_epoch(), 1u);
  EXPECT_EQ(engine.metrics().graph_epoch_bumps.value(), 1u);

  Result<QueryResponse> after = engine.Execute(request);
  ASSERT_TRUE(after.ok());
  // The old plan's automaton was resolved against the old graph; the new
  // epoch forces a recompile, and the answer reflects the new graph.
  EXPECT_FALSE(after.value().cache_hit);
  EXPECT_GT(after.value().num_rows, before.value().num_rows);
}

TEST(QueryEngineTest, DeadlineExceededOnFigure5PathEnumeration) {
  // Figure 5, n = 30: 2^30 s→t paths. Unbounded `all` enumeration cannot
  // finish; the 100ms deadline must trip and surface as an error well
  // within 500ms (cooperative cancellation polls every few iterations).
  QueryEngine engine(Figure5Chain(30));
  QueryRequest request = Req(QueryLanguage::kPaths, "a+");
  request.paths.from = "s";
  request.paths.to = "t";
  request.paths.mode = PathMode::kAll;
  request.max_results = SIZE_MAX;  // no result-count safety net
  request.timeout = std::chrono::milliseconds(100);

  const auto start = std::chrono::steady_clock::now();
  Result<QueryResponse> r = engine.Execute(request);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
  EXPECT_EQ(engine.metrics().deadline_exceeded.value(), 1u);
  EXPECT_EQ(engine.metrics().queries_error.value(), 1u);

  // The engine is still healthy after a deadline: a cheap query succeeds.
  QueryRequest cheap = Req(QueryLanguage::kRpq, "a");
  EXPECT_TRUE(engine.Execute(cheap).ok());
}

TEST(QueryEngineTest, DefaultTimeoutAppliesWhenRequestHasNone) {
  QueryEngine::Options options;
  options.default_timeout = std::chrono::milliseconds(50);
  QueryEngine engine(Figure5Chain(30), options);

  QueryRequest request = Req(QueryLanguage::kPaths, "a+");
  request.paths.from = "s";
  request.paths.to = "t";
  request.max_results = SIZE_MAX;

  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDeadlineExceeded);

  // Disabling the default deadline lets a bounded query of the same shape
  // finish (small result cap => quick).
  engine.set_default_timeout(std::nullopt);
  request.max_results = 10;
  Result<QueryResponse> bounded = engine.Execute(request);
  ASSERT_TRUE(bounded.ok());
  EXPECT_TRUE(bounded.value().truncated);
  EXPECT_EQ(bounded.value().num_rows, 10u);
}

TEST(QueryEngineTest, ConcurrentMixedLanguageExecution) {
  QueryEngine::Options options;
  options.num_threads = 8;
  QueryEngine engine(Figure3Graph(), options);
  ASSERT_EQ(engine.num_threads(), 8u);

  std::vector<QueryRequest> mix = {
      Req(QueryLanguage::kRpq, "Transfer+"),
      Req(QueryLanguage::kRpq, "~Transfer"),
      Req(QueryLanguage::kCrpq, "q(x, y) :- Transfer+(x, y)"),
      Req(QueryLanguage::kDlCrpq, "q(x, y) := ( ()[Transfer] )+ () (x, y)"),
      Req(QueryLanguage::kCoreGql, "MATCH (x)-[:Transfer]->(y) RETURN x, y"),
      Req(QueryLanguage::kGqlGroup, "(x) (-[t:Transfer]->(v)){1,2} (y)"),
      Req(QueryLanguage::kRegular, "q(u, v) := Transfer(u, v)"),
  };
  QueryRequest paths = Req(QueryLanguage::kPaths, "Transfer+");
  paths.paths.from = "a2";
  paths.paths.to = "a4";
  mix.push_back(paths);

  // 3 rounds of 8 languages = 24 in-flight queries across the pool; later
  // rounds should be plan-cache hits.
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int round = 0; round < 3; ++round) {
    for (const QueryRequest& request : mix) {
      futures.push_back(engine.Submit(request));
    }
  }
  size_t hits = 0;
  for (auto& f : futures) {
    Result<QueryResponse> r = f.get();
    ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message());
    if (r.value().cache_hit) ++hits;
  }
  EXPECT_EQ(engine.metrics().queries_total.value(), futures.size());
  EXPECT_EQ(engine.metrics().queries_ok.value(), futures.size());
  // Every plan is compiled at most a handful of times (concurrent misses
  // on the same key can race), and the steady state is all hits.
  EXPECT_GE(hits, futures.size() - 2 * mix.size());
  EXPECT_EQ(engine.metrics().cache_hits.value(), hits);
}

TEST(QueryEngineTest, ParseErrorsPropagateAndAreCounted) {
  QueryEngine engine(Figure3Graph());

  Result<QueryResponse> bad_rpq =
      engine.Execute(Req(QueryLanguage::kRpq, "(("));
  ASSERT_FALSE(bad_rpq.ok());
  EXPECT_EQ(bad_rpq.error().code(), ErrorCode::kParse);

  Result<QueryResponse> bad_gql =
      engine.Execute(Req(QueryLanguage::kCoreGql, "MATCH ("));
  ASSERT_FALSE(bad_gql.ok());
  EXPECT_EQ(bad_gql.error().code(), ErrorCode::kParse);

  Result<QueryResponse> bad_crpq =
      engine.Execute(Req(QueryLanguage::kCrpq, "q(w) :- a(x, y)"));
  ASSERT_FALSE(bad_crpq.ok());
  EXPECT_EQ(bad_crpq.error().code(), ErrorCode::kParse);

  EXPECT_EQ(engine.metrics().parse_errors.value(), 3u);
  EXPECT_EQ(engine.metrics().queries_error.value(), 3u);
  EXPECT_EQ(engine.plan_cache().GetStats().entries, 0u);  // never cached

  // The engine keeps serving after parse errors.
  EXPECT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "Transfer")).ok());
}

TEST(QueryEngineTest, PathQueriesResolveEndpointsPerRequest) {
  QueryEngine engine(Figure5Chain(4));

  QueryRequest request = Req(QueryLanguage::kPaths, "a+");
  request.paths.from = "s";
  request.paths.to = "t";
  Result<QueryResponse> all = engine.Execute(request);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().num_rows, 16u);  // 2^4 s→t paths

  // Same plan (cache hit), different endpoints.
  request.paths.to = "v2";
  Result<QueryResponse> prefix = engine.Execute(request);
  ASSERT_TRUE(prefix.ok());
  EXPECT_TRUE(prefix.value().cache_hit);
  EXPECT_EQ(prefix.value().num_rows, 4u);  // 2^2 s→v2 paths

  request.paths.to = "nowhere";
  Result<QueryResponse> missing = engine.Execute(request);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code(), ErrorCode::kNotFound);

  // k-shortest through the same cached plan.
  request.paths.to = "t";
  request.paths.k_shortest = 3;
  Result<QueryResponse> kshortest = engine.Execute(request);
  ASSERT_TRUE(kshortest.ok());
  EXPECT_EQ(kshortest.value().num_rows, 3u);
}

}  // namespace
}  // namespace gqzoo
