#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "src/engine/executor.h"
#include "src/engine/language.h"
#include "src/engine/plan_cache.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/graph_io.h"

namespace gqzoo {
namespace {

QueryRequest Req(QueryLanguage language, const std::string& text) {
  QueryRequest request;
  request.language = language;
  request.text = text;
  return request;
}

/// The Figure 5 graph as a property graph: a chain s → v1 → ... → t of
/// `n` segments with two parallel a-edges each, i.e. 2^n distinct s→t
/// paths (all shortest).
PropertyGraph Figure5Chain(size_t n) {
  PropertyGraph g;
  std::vector<NodeId> nodes;
  nodes.push_back(g.AddNode("s", "Node"));
  for (size_t i = 1; i < n; ++i) {
    nodes.push_back(g.AddNode("v" + std::to_string(i), "Node"));
  }
  nodes.push_back(g.AddNode("t", "Node"));
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(nodes[i], nodes[i + 1], "a");
    g.AddEdge(nodes[i], nodes[i + 1], "a");
  }
  return g;
}

TEST(QueryLanguageTest, NamesRoundTrip) {
  for (size_t i = 0; i < kNumQueryLanguages; ++i) {
    QueryLanguage language = static_cast<QueryLanguage>(i);
    Result<QueryLanguage> parsed =
        ParseQueryLanguage(QueryLanguageName(language));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), language);
  }
  EXPECT_FALSE(ParseQueryLanguage("sparql").ok());
  // Aliases from the shell's command surface.
  Result<QueryLanguage> two_rpq = ParseQueryLanguage("2rpq");
  ASSERT_TRUE(two_rpq.ok());
  EXPECT_EQ(two_rpq.value(), QueryLanguage::kRpq);
}

TEST(QueryEngineTest, ExecutesEveryLanguage) {
  QueryEngine engine(Figure3Graph());
  std::vector<QueryRequest> requests = {
      Req(QueryLanguage::kRpq, "Transfer+"),
      Req(QueryLanguage::kRpq, "~Transfer"),
      Req(QueryLanguage::kCrpq, "q(x, y) :- Transfer+(x, y)"),
      Req(QueryLanguage::kDlCrpq, "q(x, y) := ( ()[Transfer] )+ () (x, y)"),
      Req(QueryLanguage::kCoreGql, "MATCH (x)-[:Transfer]->(y) RETURN x, y"),
      Req(QueryLanguage::kGqlGroup, "(x) (-[t:Transfer]->(v)){1,2} (y)"),
      Req(QueryLanguage::kRegular,
          "two(x, y) := Transfer(x, y), Transfer(y, x) ; "
          "q(u, v) := two*(u, v)"),
  };
  QueryRequest paths = Req(QueryLanguage::kPaths, "Transfer+");
  paths.paths.from = "a2";
  paths.paths.to = "a4";
  requests.push_back(paths);

  for (const QueryRequest& request : requests) {
    Result<QueryResponse> r = engine.Execute(request);
    ASSERT_TRUE(r.ok()) << QueryLanguageName(request.language) << " "
                        << request.text << ": "
                        << (r.ok() ? "" : r.error().message());
    EXPECT_FALSE(r.value().cache_hit);
  }
  EXPECT_EQ(engine.metrics().queries_ok.value(), requests.size());
  EXPECT_EQ(engine.metrics().queries_error.value(), 0u);
}

TEST(QueryEngineTest, SecondExecutionHitsPlanCache) {
  QueryEngine engine(Figure3Graph());
  QueryRequest request = Req(QueryLanguage::kCoreGql,
                             "MATCH (x)-[:Transfer]->(y) RETURN x, y");

  Result<QueryResponse> cold = engine.Execute(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.value().cache_hit);
  EXPECT_EQ(engine.metrics().cache_hits.value(), 0u);
  EXPECT_EQ(engine.metrics().cache_misses.value(), 1u);

  Result<QueryResponse> warm = engine.Execute(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().cache_hit);
  EXPECT_EQ(engine.metrics().cache_hits.value(), 1u);
  EXPECT_EQ(engine.metrics().cache_misses.value(), 1u);
  // Same plan, same answer.
  EXPECT_EQ(cold.value().text, warm.value().text);
  EXPECT_EQ(cold.value().num_rows, warm.value().num_rows);
}

TEST(QueryEngineTest, OptimizedAndPlainPlansAreDistinctEntries) {
  QueryEngine engine(Figure3Graph());
  QueryRequest plain = Req(QueryLanguage::kCoreGql,
                           "MATCH (x)-[:Transfer]->(y) RETURN x, y");
  QueryRequest optimized = plain;
  optimized.optimize = true;

  ASSERT_TRUE(engine.Execute(plain).ok());
  Result<QueryResponse> r = engine.Execute(optimized);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().cache_hit);  // different cache key
  EXPECT_EQ(engine.plan_cache().GetStats().entries, 2u);
}

TEST(QueryEngineTest, PlanCacheKeyHasNoDelimiterCollision) {
  // Regression: options used to be folded into the key by appending
  // "\x01opt" to the text, so the *unoptimized* compile of the literal
  // query `X + "\x01opt"` shared a cache entry with the *optimized*
  // compile of `X`. Structural keys must keep them distinct.
  const std::string base = "MATCH (x)-[:Transfer]->(y) RETURN x, y";
  PlanCacheKey optimized{QueryLanguage::kCoreGql, base, 0, true};
  PlanCacheKey collider{QueryLanguage::kCoreGql, base + "\x01opt", 0, false};
  EXPECT_FALSE(optimized == collider);

  // End to end: the colliding text is a parse error, so a shared cache
  // entry would instead return the optimized plan's (successful) response.
  QueryEngine engine(Figure3Graph());
  QueryRequest opt_req = Req(QueryLanguage::kCoreGql, base);
  opt_req.optimize = true;
  ASSERT_TRUE(engine.Execute(opt_req).ok());

  QueryRequest collider_req =
      Req(QueryLanguage::kCoreGql, base + "\x01opt");
  Result<QueryResponse> r = engine.Execute(collider_req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kParse);
}

TEST(QueryEngineTest, CsrSnapshotFollowsGraphEpoch) {
  QueryEngine engine(Figure3Graph());
  std::shared_ptr<const GraphSnapshot> before = engine.csr_snapshot();
  ASSERT_NE(before, nullptr);
  const size_t before_nodes = before->NumNodes();
  EXPECT_EQ(before_nodes, engine.graph_snapshot()->NumNodes());

  // In-flight queries pin the snapshot they started with; a graph swap
  // must produce a fresh snapshot without disturbing the pinned one.
  engine.SetGraph(ToPropertyGraph(Clique(4)));
  std::shared_ptr<const GraphSnapshot> after = engine.csr_snapshot();
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(after->NumNodes(), 4u);
  EXPECT_EQ(before->NumNodes(), before_nodes);  // still valid and unchanged
  EXPECT_NE(before_nodes, 4u);

  Result<QueryResponse> r = engine.Execute(Req(QueryLanguage::kRpq, "a"));
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_EQ(r.value().num_rows, 12u);  // K4: every ordered pair once
}

TEST(QueryEngineTest, LruEvictionInTinyCache) {
  QueryEngine::Options options;
  options.cache_shards = 1;
  options.cache_capacity_per_shard = 2;
  QueryEngine engine(Figure3Graph(), options);

  ASSERT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "Transfer")).ok());
  ASSERT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "Transfer+")).ok());
  ASSERT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "Transfer*")).ok());

  PlanCache::Stats stats = engine.plan_cache().GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // "Transfer" was the least recently used, so it was evicted and has to
  // be recompiled; "Transfer*" is still resident.
  Result<QueryResponse> evicted =
      engine.Execute(Req(QueryLanguage::kRpq, "Transfer"));
  ASSERT_TRUE(evicted.ok());
  EXPECT_FALSE(evicted.value().cache_hit);
  Result<QueryResponse> resident =
      engine.Execute(Req(QueryLanguage::kRpq, "Transfer*"));
  ASSERT_TRUE(resident.ok());
  EXPECT_TRUE(resident.value().cache_hit);
}

TEST(QueryEngineTest, GraphEpochInvalidatesCachedPlans) {
  QueryEngine engine(Figure5Chain(3));
  QueryRequest request = Req(QueryLanguage::kRpq, "a+");

  Result<QueryResponse> before = engine.Execute(request);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(engine.Execute(request).value().cache_hit);
  EXPECT_EQ(engine.graph_epoch(), 0u);

  engine.SetGraph(Figure5Chain(5));
  EXPECT_EQ(engine.graph_epoch(), 1u);
  EXPECT_EQ(engine.metrics().graph_epoch_bumps.value(), 1u);

  Result<QueryResponse> after = engine.Execute(request);
  ASSERT_TRUE(after.ok());
  // The old plan's automaton was resolved against the old graph; the new
  // epoch forces a recompile, and the answer reflects the new graph.
  EXPECT_FALSE(after.value().cache_hit);
  EXPECT_GT(after.value().num_rows, before.value().num_rows);
}

TEST(QueryEngineTest, DeadlineExceededOnFigure5PathEnumeration) {
  // Figure 5, n = 30: 2^30 s→t paths. Unbounded `all` enumeration cannot
  // finish; the 100ms deadline must trip and surface as an error well
  // within 500ms (cooperative cancellation polls every few iterations).
  QueryEngine engine(Figure5Chain(30));
  QueryRequest request = Req(QueryLanguage::kPaths, "a+");
  request.paths.from = "s";
  request.paths.to = "t";
  request.paths.mode = PathMode::kAll;
  request.max_results = SIZE_MAX;  // no result-count safety net
  request.timeout = std::chrono::milliseconds(100);

  const auto start = std::chrono::steady_clock::now();
  Result<QueryResponse> r = engine.Execute(request);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
  EXPECT_EQ(engine.metrics().deadline_exceeded.value(), 1u);
  EXPECT_EQ(engine.metrics().queries_error.value(), 1u);

  // The engine is still healthy after a deadline: a cheap query succeeds.
  QueryRequest cheap = Req(QueryLanguage::kRpq, "a");
  EXPECT_TRUE(engine.Execute(cheap).ok());
}

TEST(QueryEngineTest, DefaultTimeoutAppliesWhenRequestHasNone) {
  QueryEngine::Options options;
  options.default_timeout = std::chrono::milliseconds(50);
  QueryEngine engine(Figure5Chain(30), options);

  QueryRequest request = Req(QueryLanguage::kPaths, "a+");
  request.paths.from = "s";
  request.paths.to = "t";
  request.max_results = SIZE_MAX;

  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDeadlineExceeded);

  // Disabling the default deadline lets a bounded query of the same shape
  // finish (small result cap => quick).
  engine.set_default_timeout(std::nullopt);
  request.max_results = 10;
  Result<QueryResponse> bounded = engine.Execute(request);
  ASSERT_TRUE(bounded.ok());
  EXPECT_TRUE(bounded.value().truncated);
  EXPECT_EQ(bounded.value().num_rows, 10u);
}

TEST(QueryEngineTest, ConcurrentMixedLanguageExecution) {
  QueryEngine::Options options;
  options.num_threads = 8;
  QueryEngine engine(Figure3Graph(), options);
  ASSERT_EQ(engine.num_threads(), 8u);

  std::vector<QueryRequest> mix = {
      Req(QueryLanguage::kRpq, "Transfer+"),
      Req(QueryLanguage::kRpq, "~Transfer"),
      Req(QueryLanguage::kCrpq, "q(x, y) :- Transfer+(x, y)"),
      Req(QueryLanguage::kDlCrpq, "q(x, y) := ( ()[Transfer] )+ () (x, y)"),
      Req(QueryLanguage::kCoreGql, "MATCH (x)-[:Transfer]->(y) RETURN x, y"),
      Req(QueryLanguage::kGqlGroup, "(x) (-[t:Transfer]->(v)){1,2} (y)"),
      Req(QueryLanguage::kRegular, "q(u, v) := Transfer(u, v)"),
  };
  QueryRequest paths = Req(QueryLanguage::kPaths, "Transfer+");
  paths.paths.from = "a2";
  paths.paths.to = "a4";
  mix.push_back(paths);

  // 3 rounds of 8 languages = 24 in-flight queries across the pool; later
  // rounds should be plan-cache hits.
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int round = 0; round < 3; ++round) {
    for (const QueryRequest& request : mix) {
      futures.push_back(engine.Submit(request));
    }
  }
  size_t hits = 0;
  for (auto& f : futures) {
    Result<QueryResponse> r = f.get();
    ASSERT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message());
    if (r.value().cache_hit) ++hits;
  }
  EXPECT_EQ(engine.metrics().queries_total.value(), futures.size());
  EXPECT_EQ(engine.metrics().queries_ok.value(), futures.size());
  // Every plan is compiled at most a handful of times (concurrent misses
  // on the same key can race), and the steady state is all hits.
  EXPECT_GE(hits, futures.size() - 2 * mix.size());
  EXPECT_EQ(engine.metrics().cache_hits.value(), hits);
}

TEST(QueryEngineTest, ParseErrorsPropagateAndAreCounted) {
  QueryEngine engine(Figure3Graph());

  Result<QueryResponse> bad_rpq =
      engine.Execute(Req(QueryLanguage::kRpq, "(("));
  ASSERT_FALSE(bad_rpq.ok());
  EXPECT_EQ(bad_rpq.error().code(), ErrorCode::kParse);

  Result<QueryResponse> bad_gql =
      engine.Execute(Req(QueryLanguage::kCoreGql, "MATCH ("));
  ASSERT_FALSE(bad_gql.ok());
  EXPECT_EQ(bad_gql.error().code(), ErrorCode::kParse);

  Result<QueryResponse> bad_crpq =
      engine.Execute(Req(QueryLanguage::kCrpq, "q(w) :- a(x, y)"));
  ASSERT_FALSE(bad_crpq.ok());
  EXPECT_EQ(bad_crpq.error().code(), ErrorCode::kParse);

  EXPECT_EQ(engine.metrics().parse_errors.value(), 3u);
  EXPECT_EQ(engine.metrics().queries_error.value(), 3u);
  EXPECT_EQ(engine.plan_cache().GetStats().entries, 0u);  // never cached

  // The engine keeps serving after parse errors.
  EXPECT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "Transfer")).ok());
}

TEST(QueryEngineTest, PathQueriesResolveEndpointsPerRequest) {
  QueryEngine engine(Figure5Chain(4));

  QueryRequest request = Req(QueryLanguage::kPaths, "a+");
  request.paths.from = "s";
  request.paths.to = "t";
  Result<QueryResponse> all = engine.Execute(request);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().num_rows, 16u);  // 2^4 s→t paths

  // Same plan (cache hit), different endpoints.
  request.paths.to = "v2";
  Result<QueryResponse> prefix = engine.Execute(request);
  ASSERT_TRUE(prefix.ok());
  EXPECT_TRUE(prefix.value().cache_hit);
  EXPECT_EQ(prefix.value().num_rows, 4u);  // 2^2 s→v2 paths

  request.paths.to = "nowhere";
  Result<QueryResponse> missing = engine.Execute(request);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code(), ErrorCode::kNotFound);

  // k-shortest through the same cached plan.
  request.paths.to = "t";
  request.paths.k_shortest = 3;
  Result<QueryResponse> kshortest = engine.Execute(request);
  ASSERT_TRUE(kshortest.ok());
  EXPECT_EQ(kshortest.value().num_rows, 3u);
}

// ---------------------------------------------------------------------------
// Resource governor: budgets, queue-wait deadlines, admission control.

TEST(QueryEngineTest, MemoryBudgetTripsOnFigure5PathEnumeration) {
  // Figure 5, n = 30: 2^30 s→t paths. With a 64 MB accounted-memory budget
  // the enumeration must stop with kResourceExhausted (not OOM) and report
  // which budget tripped; the engine stays healthy afterwards.
  QueryEngine engine(Figure5Chain(30));
  QueryRequest request = Req(QueryLanguage::kPaths, "a+");
  request.paths.from = "s";
  request.paths.to = "t";
  request.paths.mode = PathMode::kAll;
  request.max_results = SIZE_MAX;
  request.memory_budget = 64ull << 20;

  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(r.error().message().find("resource budget exhausted"),
            std::string::npos)
      << r.error().message();
  EXPECT_NE(r.error().message().find("memory"), std::string::npos)
      << r.error().message();
  EXPECT_EQ(engine.metrics().resource_exhausted.value(), 1u);
  EXPECT_GE(engine.metrics().peak_query_bytes.value(), 64ull << 20);

  // Subsequent queries run normally.
  EXPECT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "a")).ok());
}

TEST(QueryEngineTest, MemoryBudgetTripsOnCliqueGroupSemantics) {
  // Bag-semantics repetition over the 6-clique: the group-variable frontier
  // grows as ~30^j partial compositions. A 64 MB budget must stop it.
  QueryEngine engine(ToPropertyGraph(Clique(6)));
  QueryRequest request =
      Req(QueryLanguage::kGqlGroup, "(x) (-[t:a]->(v)){1,8} (y)");
  request.max_results = SIZE_MAX;
  request.memory_budget = 64ull << 20;

  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(r.error().message().find("memory"), std::string::npos)
      << r.error().message();
  EXPECT_TRUE(engine.Execute(Req(QueryLanguage::kRpq, "a")).ok());
}

TEST(QueryEngineTest, RowBudgetTripsWithStructuredReport) {
  QueryEngine engine(Figure5Chain(10));  // 1024 s→t paths
  QueryRequest request = Req(QueryLanguage::kPaths, "a+");
  request.paths.from = "s";
  request.paths.to = "t";
  request.max_results = SIZE_MAX;
  request.row_budget = 100;

  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(r.error().message().find("rows"), std::string::npos)
      << r.error().message();
  // The report carries partial progress: rows consumed over the limit.
  EXPECT_NE(r.error().message().find("rows=101/100"), std::string::npos)
      << r.error().message();
}

TEST(QueryEngineTest, StepBudgetBoundsWork) {
  QueryEngine engine(Figure5Chain(30));
  QueryRequest request = Req(QueryLanguage::kRpq, "a+");
  request.step_budget = 50;

  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(r.error().message().find("steps"), std::string::npos)
      << r.error().message();
}

TEST(QueryEngineTest, ExplicitZeroBudgetOverridesEngineDefault) {
  QueryEngine engine(Figure5Chain(4));  // 16 s→t paths
  ResourceBudgets defaults;
  defaults.result_rows = 5;
  engine.set_default_budgets(defaults);

  QueryRequest request = Req(QueryLanguage::kPaths, "a+");
  request.paths.from = "s";
  request.paths.to = "t";
  Result<QueryResponse> capped = engine.Execute(request);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.error().code(), ErrorCode::kResourceExhausted);

  request.row_budget = 0;  // explicit 0 = unlimited, overriding the default
  Result<QueryResponse> unlimited = engine.Execute(request);
  ASSERT_TRUE(unlimited.ok());
  EXPECT_EQ(unlimited.value().num_rows, 16u);
}

TEST(QueryEngineTest, QueueWaitCountsAgainstSubmitDeadline) {
  // One worker; a 300ms blocker occupies it. A victim with a 25ms deadline
  // queued behind it must come back kDeadlineExceeded *without ever being
  // evaluated* — the deadline clock starts at Submit, and the fail-fast
  // check fires before compilation.
  QueryEngine::Options options;
  options.num_threads = 1;
  QueryEngine engine(Figure5Chain(30), options);

  QueryRequest blocker = Req(QueryLanguage::kPaths, "a+");
  blocker.paths.from = "s";
  blocker.paths.to = "t";
  blocker.paths.mode = PathMode::kAll;
  blocker.max_results = SIZE_MAX;
  blocker.timeout = std::chrono::milliseconds(300);

  QueryRequest victim = Req(QueryLanguage::kRpq, "a");
  victim.timeout = std::chrono::milliseconds(25);

  std::future<Result<QueryResponse>> blocked = engine.Submit(blocker);
  std::future<Result<QueryResponse>> shed = engine.Submit(victim);

  Result<QueryResponse> victim_result = shed.get();
  ASSERT_FALSE(victim_result.ok());
  EXPECT_EQ(victim_result.error().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(victim_result.error().message().find("before execution started"),
            std::string::npos)
      << victim_result.error().message();

  Result<QueryResponse> blocker_result = blocked.get();
  ASSERT_FALSE(blocker_result.ok());
  EXPECT_EQ(blocker_result.error().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(engine.metrics().deadline_exceeded.value(), 2u);
}

TEST(QueryEngineTest, AdmissionControlShedsExactOverflow) {
  // Capacity 4, two workers, eight long-running submissions: the first four
  // are admitted (queued or running both count as in flight), the next four
  // are shed immediately with kOverloaded.
  QueryEngine::Options options;
  options.num_threads = 2;
  options.governor.admission_capacity = 4;
  QueryEngine engine(Figure5Chain(30), options);

  QueryRequest heavy = Req(QueryLanguage::kPaths, "a+");
  heavy.paths.from = "s";
  heavy.paths.to = "t";
  heavy.paths.mode = PathMode::kAll;
  heavy.max_results = SIZE_MAX;
  heavy.timeout = std::chrono::milliseconds(200);

  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(engine.Submit(heavy));

  size_t shed = 0, deadline = 0;
  for (auto& f : futures) {
    Result<QueryResponse> r = f.get();
    ASSERT_FALSE(r.ok());
    if (r.error().code() == ErrorCode::kOverloaded) {
      ++shed;
      EXPECT_NE(r.error().message().find("shed"), std::string::npos);
    } else {
      EXPECT_EQ(r.error().code(), ErrorCode::kDeadlineExceeded);
      ++deadline;
    }
  }
  EXPECT_EQ(shed, 4u);
  EXPECT_EQ(deadline, 4u);
  EXPECT_EQ(engine.metrics().overloaded_shed.value(), 4u);
  EXPECT_EQ(engine.metrics().queue_depth_high_water.value(), 4u);
  EXPECT_EQ(engine.governor().shed_total(), 4u);
  EXPECT_EQ(engine.governor().in_flight(), 0u);

  // Once drained, submissions are admitted again.
  Result<QueryResponse> after = engine.Submit(Req(QueryLanguage::kRpq, "a")).get();
  EXPECT_TRUE(after.ok());
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  pool.Shutdown();  // drains the queue, joins the workers
  EXPECT_EQ(ran.load(), 1);
  // A task submitted after shutdown is rejected, not silently dropped into
  // a queue nobody serves.
  EXPECT_FALSE(pool.Submit([&] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 1);
  pool.Shutdown();  // idempotent
}

TEST(QueryEngineTest, MaxConcurrentGateStillCompletesAllAdmitted) {
  QueryEngine::Options options;
  options.num_threads = 4;
  options.governor.admission_capacity = 16;
  options.governor.max_concurrent = 1;  // serialize execution
  QueryEngine engine(Figure3Graph(), options);

  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine.Submit(Req(QueryLanguage::kRpq, "Transfer+")));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(engine.governor().in_flight(), 0u);
}

}  // namespace
}  // namespace gqzoo
