// On-disk snapshot format coverage: corruption sweeps (every single-byte
// flip and every prefix truncation must refuse with kDataLoss — the format
// promises every file byte is covered by exactly one checksum), the mapped
// open path (in-memory and from a real mmap'd file), and differential
// tests pinning mapped-graph evaluation in every query language to the
// plain in-RAM evaluation.

#include "src/storage/snapshot_format.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/coregql/group_eval.h"
#include "src/coregql/pattern_parser.h"
#include "src/coregql/query.h"
#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/datatest/dl_eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/planner/stats.h"
#include "src/rpq/bag_semantics.h"
#include "src/rpq/rpq_eval.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using storage::MappedGraph;
using storage::SnapshotCodec;
using storage::SnapshotFile;
using testing_util::Rx;

class TempDir {
 public:
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "gqzoo_snapshot_format_test.XXXXXX")
                           .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

PropertyGraph Fixture() {
  Result<PropertyGraph> g = ParsePropertyGraph(
      "node a :Account { balance = 10, note = \"has \\\"quotes\\\"\" }\n"
      "node b :Account { ratio = 2.5 }\n"
      "node c :Bank { open = true }\n"
      "edge t0 :Transfer a -> b { amount = 7 }\n"
      "edge t1 :Owns c -> a\n");
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// Encode → adopt in memory → open mapped-mode views over the image.
MappedGraph OpenImage(const PropertyGraph& g, uint64_t lsn) {
  std::string image = SnapshotCodec::EncodeSnapshot(g, lsn);
  Result<SnapshotFile> file = SnapshotFile::FromBytes(std::move(image));
  EXPECT_TRUE(file.ok()) << file.error().message();
  Result<MappedGraph> mapped = SnapshotCodec::Open(std::move(file).value());
  EXPECT_TRUE(mapped.ok()) << mapped.error().message();
  return std::move(mapped).value();
}

// ---------------------------------------------------------------------------
// Corruption sweeps. Mirrors the WAL's torn-tail sweep in spirit, but the
// policy is stricter: snapshots rename into place whole, so *any* damage
// anywhere — magic, header, region table, payload, even alignment padding
// — is kDataLoss, never leniency.

TEST(SnapshotSweepTest, EveryByteFlipIsDataLoss) {
  PropertyGraph g = RandomPropertyGraph(20, 60, 10, 53);
  std::string image = SnapshotCodec::EncodeSnapshot(g, 42);
  ASSERT_TRUE(SnapshotFile::FromBytes(image).ok());
  for (size_t pos = 0; pos < image.size(); ++pos) {
    std::string damaged = image;
    damaged[pos] ^= 0x01;
    Result<SnapshotFile> f = SnapshotFile::FromBytes(std::move(damaged));
    ASSERT_FALSE(f.ok()) << "flipped byte " << pos << " of " << image.size()
                         << " was accepted";
    EXPECT_EQ(f.error().code(), ErrorCode::kDataLoss) << "byte " << pos;
  }
}

TEST(SnapshotSweepTest, EveryPrefixTruncationIsDataLoss) {
  std::string image = SnapshotCodec::EncodeSnapshot(Fixture(), 5);
  for (size_t cut = 0; cut < image.size(); ++cut) {
    Result<SnapshotFile> f = SnapshotFile::FromBytes(image.substr(0, cut));
    ASSERT_FALSE(f.ok()) << "truncation to " << cut << " bytes was accepted";
    EXPECT_EQ(f.error().code(), ErrorCode::kDataLoss) << "cut " << cut;
  }
  // Trailing garbage is damage too: the header pins the exact total size.
  Result<SnapshotFile> f = SnapshotFile::FromBytes(image + "x");
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.error().code(), ErrorCode::kDataLoss);
}

TEST(SnapshotSweepTest, VersionSkewIsDataLoss) {
  std::string image = SnapshotCodec::EncodeSnapshot(Fixture(), 5);
  // A future format version must refuse outright, even if the rest of the
  // file were plausible — there is no guessing at an unknown layout.
  image[storage::kSnapshotMagicBytes] ^= 0x02;
  Result<SnapshotFile> f = SnapshotFile::FromBytes(std::move(image));
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.error().code(), ErrorCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Mapped open: the same accessors, reading the file image in place.

TEST(MappedSnapshotTest, OpenServesByteIdenticalGraphInPlace) {
  PropertyGraph g = Fixture();
  MappedGraph m = OpenImage(g, 9);
  EXPECT_TRUE(m.graph->is_mapped());
  EXPECT_TRUE(m.graph->skeleton().is_mapped());
  EXPECT_EQ(m.covered_lsn, 9u);
  EXPECT_GT(m.file_bytes, 0u);
  EXPECT_EQ(PropertyGraphToText(*m.graph), PropertyGraphToText(g));

  // Point lookups go through the sorted by-name directories, not a hash.
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(m.graph->skeleton().FindNode(name).has_value()) << name;
    EXPECT_EQ(m.graph->skeleton().NodeName(
                  *m.graph->skeleton().FindNode(name)),
              name);
  }
  EXPECT_FALSE(m.graph->skeleton().FindNode("nope").has_value());
  ASSERT_TRUE(m.graph->skeleton().FindEdge("t1").has_value());
  EXPECT_FALSE(m.graph->skeleton().FindEdge("t9").has_value());
}

TEST(MappedSnapshotTest, OpenMappedReadsARealFileViaMmap) {
  TempDir dir;
  PropertyGraph g = RandomPropertyGraph(30, 90, 8, 17);
  std::string image = SnapshotCodec::EncodeSnapshot(g, 123);
  std::string path = dir.path() + "/snap";
  {
    std::ofstream out(path, std::ios::binary);
    out << image;
    ASSERT_TRUE(out.good());
  }
  Result<SnapshotFile> file = SnapshotFile::OpenMapped(path);
  ASSERT_TRUE(file.ok()) << file.error().message();
  EXPECT_EQ(file.value().file_bytes(), image.size());
  Result<MappedGraph> mapped = SnapshotCodec::Open(std::move(file).value());
  ASSERT_TRUE(mapped.ok()) << mapped.error().message();
  EXPECT_EQ(mapped.value().covered_lsn, 123u);
  EXPECT_EQ(PropertyGraphToText(*mapped.value().graph),
            PropertyGraphToText(g));
  // The mapping must outlive the file handle and even the snapshot file on
  // disk (POSIX keeps mapped pages alive after unlink).
  std::filesystem::remove(path);
  EXPECT_EQ(PropertyGraphToText(*mapped.value().graph),
            PropertyGraphToText(g));
}

TEST(MappedSnapshotTest, MaterializePlainRoundTripsAndIsMutable) {
  PropertyGraph g = Fixture();
  MappedGraph m = OpenImage(g, 1);
  EdgeLabeledGraph plain = m.graph->skeleton().MaterializePlain();
  EXPECT_FALSE(plain.is_mapped());
  ASSERT_EQ(plain.NumNodes(), g.skeleton().NumNodes());
  ASSERT_EQ(plain.NumEdges(), g.skeleton().NumEdges());
  // Ids are preserved exactly, and the copy accepts writes.
  for (NodeId v = 0; v < plain.NumNodes(); ++v) {
    EXPECT_EQ(plain.NodeName(v), g.skeleton().NodeName(v));
  }
  plain.AddNode("fresh");
  EXPECT_EQ(plain.NumNodes(), g.skeleton().NumNodes() + 1);
}

TEST(MappedSnapshotTest, MappedStatsMatchRebuiltStats) {
  PropertyGraph g = RandomPropertyGraph(25, 80, 6, 29);
  MappedGraph m = OpenImage(g, 3);
  GraphSnapshot rebuilt(g);
  SnapshotStats expect(rebuilt);
  ASSERT_EQ(m.stats->num_labels(), expect.num_labels());
  EXPECT_EQ(m.stats->num_nodes(), expect.num_nodes());
  EXPECT_EQ(m.stats->num_edges(), expect.num_edges());
  for (LabelId l = 0; l < expect.num_labels(); ++l) {
    EXPECT_EQ(m.stats->EdgeCount(l), expect.EdgeCount(l)) << l;
    EXPECT_EQ(m.stats->DistinctSources(l), expect.DistinctSources(l)) << l;
    EXPECT_EQ(m.stats->DistinctTargets(l), expect.DistinctTargets(l)) << l;
    EXPECT_EQ(m.stats->NodeLabelCount(l), expect.NodeLabelCount(l)) << l;
  }
}

// ---------------------------------------------------------------------------
// Differentials: every query language evaluated over the mapped epoch
// (graph + CSR views reading the file image) must agree exactly with the
// plain in-RAM evaluation. Mirrors csr_test's snapshot differentials.

std::set<std::string> CrpqRows(const EdgeLabeledGraph& g,
                               const CrpqResult& r) {
  std::set<std::string> out;
  for (const auto& row : r.rows) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ",";
      s += CrpqValueToString(g, row[i]);
    }
    out.insert(s);
  }
  return out;
}

TEST(MappedDifferentialTest, RpqAndBagSemanticsAgree) {
  EdgeLabeledGraph base = RandomGraph(25, 110, 4, 41);
  PropertyGraph pg = ToPropertyGraph(base);
  MappedGraph m = OpenImage(pg, 1);
  const EdgeLabeledGraph& g = pg.skeleton();
  const EdgeLabeledGraph& mg = m.graph->skeleton();
  for (const char* regex : {"a*", "(a|b)+ c", "!{a} b*"}) {
    Nfa nfa = Nfa::FromRegex(*Rx(regex), g);
    EXPECT_EQ(EvalRpq(mg, nfa), EvalRpq(g, nfa)) << regex;
    EXPECT_EQ(EvalRpq(*m.snapshot, nfa), EvalRpq(g, nfa)) << regex;
    EXPECT_EQ(BagCountTotal(*Rx(regex), *m.snapshot).ToString(),
              BagCountTotal(*Rx(regex), g).ToString())
        << regex;
  }
}

TEST(MappedDifferentialTest, CrpqEvaluationAgrees) {
  EdgeLabeledGraph base = RandomGraph(25, 110, 4, 41);
  PropertyGraph pg = ToPropertyGraph(base);
  MappedGraph m = OpenImage(pg, 1);
  const EdgeLabeledGraph& g = pg.skeleton();
  const char* queries[] = {
      "q(x, y) := a* (x, y)",
      "q(x, z) := (a|b)+ (x, y), c* (y, z)",
      "q(x) := a b (x, y), !{c} (y, x)",
  };
  for (const char* text : queries) {
    Result<Crpq> q = ParseCrpq(text);
    ASSERT_TRUE(q.ok()) << text;
    Result<CrpqResult> seed_r = EvalCrpq(g, q.value());
    ASSERT_TRUE(seed_r.ok());
    CrpqEvalOptions options;
    options.snapshot = m.snapshot.get();
    Result<CrpqResult> mapped_r =
        EvalCrpq(m.graph->skeleton(), q.value(), options);
    ASSERT_TRUE(mapped_r.ok()) << mapped_r.error().message();
    EXPECT_EQ(CrpqRows(g, seed_r.value()),
              CrpqRows(m.graph->skeleton(), mapped_r.value()))
        << text;
  }
}

TEST(MappedDifferentialTest, DlCrpqEvaluationAgrees) {
  PropertyGraph g = Figure3Graph();
  MappedGraph m = OpenImage(g, 1);
  const char* queries[] = {
      "q(x, y) := ( ()[Transfer] )+ () (x, y)",
      "q(x) := ( ()[Transfer][amount > 5000000] )+ () (x, y)",
      "q(z) := trail ()[Transfer^z]( ()[Transfer^z] )+ () (@a3, @a3)",
      "q(x, y) := shortest ( ()[Transfer] )+ () (x, y)",
  };
  for (const char* text : queries) {
    Result<Crpq> q = ParseCrpq(text, RegexDialect::kDl);
    ASSERT_TRUE(q.ok()) << text << ": " << q.error().message();
    Result<CrpqResult> seed_r = EvalDlCrpq(g, q.value());
    ASSERT_TRUE(seed_r.ok()) << seed_r.error().message();
    DlCrpqEvalOptions options;
    options.snapshot = m.snapshot.get();
    Result<CrpqResult> mapped_r = EvalDlCrpq(*m.graph, q.value(), options);
    ASSERT_TRUE(mapped_r.ok()) << mapped_r.error().message();
    EXPECT_EQ(CrpqRows(g.skeleton(), seed_r.value()),
              CrpqRows(m.graph->skeleton(), mapped_r.value()))
        << text;
  }
}

TEST(MappedDifferentialTest, CoreGqlQueriesAgree) {
  PropertyGraph g = RandomPropertyGraph(20, 60, 10, 53);
  MappedGraph m = OpenImage(g, 1);
  const char* queries[] = {
      "MATCH (x)-[e]->(y) RETURN x, e, y",
      "MATCH (x:N)->(y) WHERE x.k = y.k RETURN x, y",
      "MATCH (x)-[:a]->(y), (y)-[:a]->(z) RETURN x, z",
      "MATCH (x)-[e:a]->(y) WHERE e.k = 3 RETURN x, y",
  };
  for (const char* text : queries) {
    Result<CoreQueryResult> seed_r = RunCoreGql(g, text);
    ASSERT_TRUE(seed_r.ok()) << text << ": " << seed_r.error().message();
    CoreQueryEvalOptions options;
    options.path_options.snapshot = m.snapshot.get();
    Result<CoreQueryResult> mapped_r = RunCoreGql(*m.graph, text, options);
    ASSERT_TRUE(mapped_r.ok()) << mapped_r.error().message();
    EXPECT_EQ(seed_r.value().relation.ToString(g.skeleton()),
              mapped_r.value().relation.ToString(m.graph->skeleton()))
        << text;
  }
}

TEST(MappedDifferentialTest, GqlGroupPatternsAgree) {
  PropertyGraph g = ToPropertyGraph(RandomGraph(12, 36, 2, 61));
  MappedGraph m = OpenImage(g, 1);
  const char* patterns[] = {
      "(x) ( ()-[z:a]->() ){2} (y)",
      "(x) ( ()-[:a]->() | ()-[:b]->() ) (y)",
      "( ()-[z:a]->() ){1,2}",
  };
  for (const char* text : patterns) {
    Result<CorePatternPtr> p = ParseCorePattern(text);
    ASSERT_TRUE(p.ok()) << text << ": " << p.error().message();
    Result<GqlEvalResult> seed_r = EvalGqlGroupPattern(g, *p.value());
    ASSERT_TRUE(seed_r.ok()) << seed_r.error().message();
    CorePathEvalOptions options;
    options.snapshot = m.snapshot.get();
    Result<GqlEvalResult> mapped_r =
        EvalGqlGroupPattern(*m.graph, *p.value(), options);
    ASSERT_TRUE(mapped_r.ok()) << mapped_r.error().message();
    ASSERT_EQ(seed_r.value().rows.size(), mapped_r.value().rows.size())
        << text;
    for (size_t i = 0; i < seed_r.value().rows.size(); ++i) {
      EXPECT_EQ(seed_r.value().rows[i].path.ToString(g.skeleton()),
                mapped_r.value().rows[i].path.ToString(m.graph->skeleton()));
    }
  }
}

TEST(MappedDifferentialTest, EmptyGraphMapsCleanly) {
  PropertyGraph g;
  MappedGraph m = OpenImage(g, 0);
  EXPECT_EQ(m.graph->skeleton().NumNodes(), 0u);
  EXPECT_EQ(m.graph->skeleton().NumEdges(), 0u);
  EXPECT_EQ(PropertyGraphToText(*m.graph), PropertyGraphToText(g));
}

}  // namespace
}  // namespace gqzoo
