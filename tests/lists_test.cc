#include <gtest/gtest.h>

#include "src/coregql/pattern_parser.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/lists/aggregate_paths.h"
#include "src/lists/forall_subpattern.h"
#include "src/lists/list_functions.h"

namespace gqzoo {
namespace {

TEST(ReduceTest, DefinitionCases) {
  PropertyGraph g = SubsetSumChain({5, -3});
  auto iota = PropertyIota(g, "k");
  auto sum = SumStep(g, "k");
  // Empty list → ε.
  EXPECT_EQ(Reduce(Value(42), iota, sum, {}), Value(42));
  // Singleton → ι(x).
  ObjectList one = {ObjectRef::Edge(0)};  // k = 5
  EXPECT_EQ(Reduce(Value(42), iota, sum, one), Value(int64_t{5}));
  // Longer lists fold with f.
  ObjectList two = {ObjectRef::Edge(0), ObjectRef::Edge(2)};  // 5 + (-3)
  EXPECT_EQ(Reduce(Value(0), iota, sum, two), Value(int64_t{2}));
}

TEST(ReduceTest, IncreasingStepCertifiesMonotonePaths) {
  PropertyGraph inc = IncreasingEdgeChain(5, 0, 1);
  NodeId s = *inc.FindNode("v0");
  NodeId t = *inc.FindNode("v5");
  auto ge0 = [](const Value& v) {
    return v.is_numeric() && v.ToDouble() >= 0;
  };
  std::vector<Path> ok = PathsWithReducePredicate(
      inc, s, t, Value(0), PropertyIota(inc, "k"), IncreasingStep(inc, "k"),
      ge0);
  EXPECT_EQ(ok.size(), 1u);

  PropertyGraph dec = IncreasingEdgeChain(5, 2, 7);
  std::vector<Path> bad = PathsWithReducePredicate(
      dec, *dec.FindNode("v0"), *dec.FindNode("v5"), Value(0),
      PropertyIota(dec, "k"), IncreasingStep(dec, "k"), ge0);
  EXPECT_TRUE(bad.empty());
}

TEST(ReduceTest, SubsetSumEncoding) {
  // Section 5.2: reduce-sum = 0 on the gadget graph decides SUBSET-SUM.
  auto eq0 = [](const Value& v) {
    return v.is_int() ? v.as_int() == 0 : v.ToDouble() == 0.0;
  };
  {
    // {3, -1, -2}: subset {3, -1, -2} sums to 0 (and {} gives the all-zero
    // path, also 0 — the encoding asks for a nonzero selection by looking
    // at which parallel edges are taken, but sum 0 is what the query
    // checks).
    PropertyGraph g = SubsetSumChain({3, -1, -2});
    NodeId s = *g.FindNode("w0");
    NodeId t = *g.FindNode("w3");
    std::vector<Path> solutions = PathsWithReducePredicate(
        g, s, t, Value(0), PropertyIota(g, "k"), SumStep(g, "k"), eq0);
    // All-zeros, {3,-1,-2}, and nothing else: {3,-1}, {3,-2}, {-1,-2},
    // {3}, {-1}, {-2} all non-zero.
    EXPECT_EQ(solutions.size(), 2u);
  }
  {
    // {3, 5, 7}: only the all-zero selection sums to 0.
    PropertyGraph g = SubsetSumChain({3, 5, 7});
    std::vector<Path> solutions = PathsWithReducePredicate(
        g, *g.FindNode("w0"), *g.FindNode("w3"), Value(0),
        PropertyIota(g, "k"), SumStep(g, "k"), eq0);
    EXPECT_EQ(solutions.size(), 1u);
  }
}

TEST(ReduceTest, ExplorationIsExponential) {
  // The stats expose the 2^n path explosion behind the NP-hardness.
  std::vector<int64_t> values;
  for (int i = 0; i < 10; ++i) values.push_back(i + 1);
  PropertyGraph g = SubsetSumChain(values);
  ReduceQueryStats stats;
  PathsWithReducePredicate(
      g, *g.FindNode("w0"), *g.FindNode("w10"), Value(0),
      PropertyIota(g, "k"), SumStep(g, "k"),
      [](const Value& v) { return v.is_int() && v.as_int() == 0; }, {},
      &stats);
  EXPECT_GT(stats.paths_explored, size_t{1} << 10);
}

TEST(PathAsGraphTest, PositionsAndProperties) {
  PropertyGraph g = Figure3Graph();
  // path(a3, t7, a5, t4, a1): three node positions, two edge positions.
  Path p = Path::Make(g.skeleton(),
                      {ObjectRef::Node(*g.FindNode("a3")),
                       ObjectRef::Edge(*g.FindEdge("t7")),
                       ObjectRef::Node(*g.FindNode("a5")),
                       ObjectRef::Edge(*g.FindEdge("t4")),
                       ObjectRef::Node(*g.FindNode("a1"))})
               .ValueOrDie();
  PropertyGraph pg = PathAsGraph(g, p);
  EXPECT_EQ(pg.NumNodes(), 3u);
  EXPECT_EQ(pg.NumEdges(), 2u);
  // Properties are copied to positions.
  EXPECT_EQ(pg.GetProperty(ObjectRef::Node(0), "owner"), Value("Mike"));
  EXPECT_EQ(pg.GetProperty(ObjectRef::Edge(0), "date"), Value("2025-01-07"));
  // A cyclic path gets distinct positions for repeated elements.
  Path cycle = Path::Make(g.skeleton(),
                          {ObjectRef::Node(*g.FindNode("a3")),
                           ObjectRef::Edge(*g.FindEdge("t7")),
                           ObjectRef::Node(*g.FindNode("a5")),
                           ObjectRef::Edge(*g.FindEdge("t4")),
                           ObjectRef::Node(*g.FindNode("a1")),
                           ObjectRef::Edge(*g.FindEdge("t1")),
                           ObjectRef::Node(*g.FindNode("a3"))})
                   .ValueOrDie();
  PropertyGraph cg = PathAsGraph(g, cycle);
  EXPECT_EQ(cg.NumNodes(), 4u);  // a3 appears twice, as pos0 and pos6→pos3
}

TEST(ForAllSubpatternTest, IncreasingEdgeValuesViaForAll) {
  // Section 5.2: ((x)→*(y))⟨∀ (-[u]->()-[v]->) ⇒ u.k < v.k⟩.
  PropertyGraph inc;
  std::vector<NodeId> nodes;
  const int64_t values[] = {3, 4, 1, 2};
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(inc.AddNode("n" + std::to_string(i), "N"));
  }
  for (int i = 0; i < 4; ++i) {
    EdgeId e = inc.AddEdge(nodes[i], nodes[i + 1], "a");
    inc.SetProperty(ObjectRef::Edge(e), "k", Value(values[i]));
  }
  CorePatternPtr window =
      ParseCorePattern("()-[u]->()-[v]->()").ValueOrDie();
  CoreCondPtr cond = ParseCoreCondition("u.k < v.k").ValueOrDie();
  auto path_of = [&](int from, int to) {
    std::vector<ObjectRef> objs = {ObjectRef::Node(nodes[from])};
    for (int i = from; i < to; ++i) {
      objs.push_back(ObjectRef::Edge(static_cast<EdgeId>(i)));
      objs.push_back(ObjectRef::Node(nodes[i + 1]));
    }
    return Path::MakeUnchecked(objs);
  };
  // 3,4 increasing: holds.
  EXPECT_TRUE(
      ForAllSubpatternHolds(inc, path_of(0, 2), *window, *cond).value());
  // 3,4,1,2 contains the (4,1) window: fails.
  EXPECT_FALSE(
      ForAllSubpatternHolds(inc, path_of(0, 4), *window, *cond).value());
  // 1,2 increasing: holds.
  EXPECT_TRUE(
      ForAllSubpatternHolds(inc, path_of(2, 4), *window, *cond).value());
  // Single-edge and empty paths hold vacuously.
  EXPECT_TRUE(
      ForAllSubpatternHolds(inc, path_of(1, 2), *window, *cond).value());
}

TEST(ForAllSubpatternTest, AllDistinctValuesIsTheDangerousVariant) {
  // ∀ ((u)→*(v)) ⇒ u.k ≠ v.k: all node values along the path differ — the
  // NP-hard query of Section 5.2.
  PropertyGraph g;
  std::vector<NodeId> nodes;
  const int64_t values[] = {1, 2, 1};
  for (int i = 0; i < 3; ++i) {
    NodeId n = g.AddNode("m" + std::to_string(i), "N");
    g.SetProperty(ObjectRef::Node(n), "k", Value(values[i]));
    nodes.push_back(n);
  }
  g.AddEdge(nodes[0], nodes[1], "a");
  g.AddEdge(nodes[1], nodes[2], "a");
  CorePatternPtr sub = ParseCorePattern("(u) ->* (v)").ValueOrDie();
  CoreCondPtr cond = ParseCoreCondition("u.k != v.k").ValueOrDie();
  Path p01 = Path::MakeUnchecked({ObjectRef::Node(nodes[0]),
                                  ObjectRef::Edge(0),
                                  ObjectRef::Node(nodes[1])});
  Path p012 = Path::MakeUnchecked(
      {ObjectRef::Node(nodes[0]), ObjectRef::Edge(0),
       ObjectRef::Node(nodes[1]), ObjectRef::Edge(1),
       ObjectRef::Node(nodes[2])});
  // 1,2 all distinct... but note ∀ includes the empty subpath u = v, where
  // u.k ≠ u.k fails! The ∀-semantics therefore needs u ≠ v — we model the
  // paper's intent by only quantifying over nonempty subpaths.
  CorePatternPtr nonempty = ParseCorePattern("(u) ->+ (v)").ValueOrDie();
  EXPECT_TRUE(ForAllSubpatternHolds(g, p01, *nonempty, *cond).value());
  EXPECT_FALSE(ForAllSubpatternHolds(g, p012, *nonempty, *cond).value());
}

TEST(AggregatePathsTest, TwoSemanticsDiverge) {
  // Section 5.2's one-node example: u with a self-loop (k = 1) and
  // coefficients a, b, c. Under condition-after-shortest the condition is
  // checked on the shortest path only; under shortest-among-satisfying the
  // path length solves a·x² + b·x + c = 0.
  PropertyGraph g;
  NodeId u = g.AddNode("u", "N");
  // x² - 5x + 6 = 0: roots 2 and 3.
  g.SetProperty(ObjectRef::Node(u), "a", Value(1));
  g.SetProperty(ObjectRef::Node(u), "b", Value(-5));
  g.SetProperty(ObjectRef::Node(u), "c", Value(6));
  EdgeId loop = g.AddEdge(u, u, "a");
  g.SetProperty(ObjectRef::Edge(loop), "k", Value(1));

  auto cond = QuadraticSigmaCondition(g, "k");
  AggregatePathResult after = SelectAggregatePaths(
      g, u, u, cond, AggregateSemantics::kConditionAfterShortest);
  // Shortest u→u path is the empty path (Σ = 0), 0² - 0 + 6 ≠ 0.
  EXPECT_TRUE(after.paths.empty());
  AggregatePathResult among = SelectAggregatePaths(
      g, u, u, cond, AggregateSemantics::kShortestAmongSatisfying);
  ASSERT_EQ(among.paths.size(), 1u);
  EXPECT_EQ(among.paths[0].Length(), 2u);  // the smaller root

  // With no root, the search runs to the bound — the undecidability story.
  g.SetProperty(ObjectRef::Node(u), "c", Value(7));
  AggregatePathResult none = SelectAggregatePaths(
      g, u, u, QuadraticSigmaCondition(g, "k"),
      AggregateSemantics::kShortestAmongSatisfying, {.max_path_length = 20});
  EXPECT_TRUE(none.paths.empty());
  EXPECT_TRUE(none.hit_length_bound);
}

}  // namespace
}  // namespace gqzoo
