#include <gtest/gtest.h>

#include <algorithm>

#include "src/automata/operations.h"
#include "src/regex/parser.h"
#include "src/coregql/pattern_eval.h"
#include "src/cypher/cypher_fragment.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/rpq/rpq_eval.h"

namespace gqzoo {
namespace {

CypherPatternPtr CyPat(const std::string& text) {
  Result<CypherPatternPtr> p = ParseCypherPattern(text);
  if (!p.ok()) {
    ADD_FAILURE() << text << ": " << p.error().message();
    return CypherPattern::Node(std::nullopt, {});
  }
  return p.value();
}

TEST(CypherFragmentParserTest, AtomsAndStar) {
  CypherPatternPtr node = CyPat("(x:Account|Person)");
  EXPECT_EQ(node->kind(), CypherPattern::Kind::kNode);
  EXPECT_EQ(node->labels(),
            (std::vector<std::string>{"Account", "Person"}));
  CypherPatternPtr star = CyPat("-[:Transfer*]->");
  EXPECT_EQ(star->kind(), CypherPattern::Kind::kEdgeStar);
  CypherPatternPtr seq = CyPat("(x) -[:a]-> () -[:b*]-> (y)");
  EXPECT_EQ(seq->kind(), CypherPattern::Kind::kConcat);
  // Star over anything else is not part of the fragment.
  EXPECT_FALSE(ParseCypherPattern("((x)-[:a]->(y))*").ok());
  EXPECT_FALSE(ParseCypherPattern("-[e:a*]->").ok());
}

TEST(CypherFragmentTest, ToRegexDropsNodesKeepsEdges) {
  CypherPatternPtr p = CyPat("(x) -[:a]-> () -[:b|c*]-> (y)");
  RegexPtr r = p->ToRegex();
  EdgeLabeledGraph alphabet;
  NodeId u = alphabet.AddNode();
  alphabet.AddEdge(u, u, "a");
  alphabet.AddEdge(u, u, "b");
  alphabet.AddEdge(u, u, "c");
  Nfa nfa = Nfa::FromRegex(*r, alphabet);
  LabelId a = *alphabet.FindLabel("a");
  LabelId b = *alphabet.FindLabel("b");
  LabelId c = *alphabet.FindLabel("c");
  EXPECT_TRUE(nfa.AcceptsWord({a}));
  EXPECT_TRUE(nfa.AcceptsWord({a, b, c, b}));
  EXPECT_FALSE(nfa.AcceptsWord({b}));
}

TEST(CypherFragmentTest, EvaluatesViaCoreGql) {
  PropertyGraph g = Figure3Graph();
  CypherPatternPtr p = CyPat("(x:Account) -[:Transfer*]-> (y:Account)");
  Result<std::vector<CorePairRow>> rows =
      EvalPatternPairs(g, *p->ToCorePattern());
  ASSERT_TRUE(rows.ok());
  // Transfer* is complete on the 6 accounts (Example 12).
  EXPECT_EQ(rows.value().size(), 36u);
}

TEST(UnaryLanguageTest, Operations) {
  UnaryLanguage one = UnaryLanguage::Single(1);
  UnaryLanguage zero = UnaryLanguage::Single(0);
  UnaryLanguage all = UnaryLanguage::AllLengths();
  // {1} + {1} = {2}.
  UnaryLanguage two = UnaryLanguage::SumOf(one, one);
  EXPECT_TRUE(two.Contains(2));
  EXPECT_FALSE(two.Contains(1));
  EXPECT_FALSE(two.IsInfinite());
  // {0} is the neutral element of +.
  EXPECT_EQ(UnaryLanguage::SumOf(two, zero), two);
  // ℕ + {2} = [2, ∞).
  UnaryLanguage shifted = UnaryLanguage::SumOf(all, two);
  EXPECT_FALSE(shifted.Contains(1));
  EXPECT_TRUE(shifted.Contains(2));
  EXPECT_TRUE(shifted.Contains(1000));
  // ∅ annihilates.
  UnaryLanguage empty;
  EXPECT_EQ(UnaryLanguage::SumOf(empty, all), empty);
  // Union normalizes contiguous prefixes into the threshold.
  UnaryLanguage u = UnaryLanguage::UnionOf(zero, UnaryLanguage::SumOf(all, one));
  EXPECT_TRUE(u.Contains(0));
  EXPECT_TRUE(u.Contains(1));
  UnaryLanguage n2 = UnaryLanguage::UnionOf(
      UnaryLanguage::UnionOf(zero, one),
      UnaryLanguage::SumOf(all, two));
  EXPECT_EQ(n2, UnaryLanguage::AllLengths());  // {0} ∪ {1} ∪ [2,∞) = ℕ
}

TEST(UnaryLanguageTest, FragmentPatternsDenoteTheirLanguages) {
  struct Case {
    const char* pattern;
    std::vector<size_t> in;
    std::vector<size_t> out;
  };
  for (const Case& c : std::vector<Case>{
           {"(x) -[:a]-> (y)", {1}, {0, 2, 3}},
           {"(x) -[:a]-> () -[:a]-> (y)", {2}, {0, 1, 3}},
           {"(x) -[:a*]-> (y)", {0, 1, 2, 50}, {}},
           {"((x)-[:a]->(y) | (x)(y))", {0, 1}, {2}},
           {"(x) -[:a]-> () -[:a*]-> (y)", {1, 2, 99}, {0}},
       }) {
    UnaryLanguage lang = UnaryLanguageOf(*CyPat(c.pattern), "a");
    for (size_t n : c.in) EXPECT_TRUE(lang.Contains(n)) << c.pattern << " " << n;
    for (size_t n : c.out) {
      EXPECT_FALSE(lang.Contains(n)) << c.pattern << " " << n;
    }
  }
}

// Proposition 22: no Cypher-fragment pattern expresses (ℓℓ)*. Every
// fragment unary language is finite or upward closed; the even-length
// language is neither. We verify exhaustively for all patterns up to 9
// atoms, and structurally for the general claim.
TEST(Prop22Test, NoFragmentPatternExpressesEvenLengths) {
  std::vector<UnaryLanguage> languages = EnumerateFragmentUnaryLanguages(9);
  ASSERT_FALSE(languages.empty());
  // The target: even lengths (infinite, not upward closed).
  auto is_even_language = [](const UnaryLanguage& l) {
    // Would need: contains all even n, no odd n, infinitely many members.
    if (!l.IsInfinite()) return false;  // finite can't contain all evens
    for (size_t n = 0; n < 20; ++n) {
      if (l.Contains(n) != (n % 2 == 0)) return false;
    }
    return true;
  };
  for (const UnaryLanguage& l : languages) {
    EXPECT_FALSE(is_even_language(l));
    // The structural invariant: infinite ⇒ upward closed from threshold.
    if (l.IsInfinite()) {
      EXPECT_TRUE(l.Contains(l.threshold));
      EXPECT_TRUE(l.Contains(l.threshold + 1));  // both parities present
    }
  }
  // Sanity: the enumeration does reach nontrivial languages, e.g. {2} and
  // [3, ∞) and {1} ∪ [4, ∞).
  UnaryLanguage two = UnaryLanguage::SumOf(UnaryLanguage::Single(1),
                                           UnaryLanguage::Single(1));
  EXPECT_NE(std::find(languages.begin(), languages.end(), two),
            languages.end());
}

TEST(Prop22Test, TheRpqItselfIsFine) {
  // (aa)* is of course expressible as an RPQ and evaluable by automata —
  // the gap is the Cypher fragment, not RPQs.
  EdgeLabeledGraph g = Chain(4);
  Result<RegexPtr> r = ParseRegex("(a a)*", RegexDialect::kPlain);
  ASSERT_TRUE(r.ok());
  auto pairs = EvalRpq(g, *r.value());
  // Pairs at even distance: 5 (dist 0) + 3 (dist 2) + 1 (dist 4).
  EXPECT_EQ(pairs.size(), 9u);
}

}  // namespace
}  // namespace gqzoo
