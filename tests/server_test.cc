// Lifecycle tests for the network front-end: real sockets on loopback,
// streaming byte-identity against the in-process engine, mid-query
// cancellation (CANCEL frame and plain disconnect), graceful drain under
// load, and per-tenant quota shedding.

#include "src/server/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/engine/engine.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/graph_io.h"
#include "src/server/client.h"

namespace gqzoo {
namespace server {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

Client ConnectTo(const GraphServer& server) {
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.error().message();
  return std::move(client).value();
}

/// Polls `predicate` until it holds or `deadline_ms` elapses.
bool WaitFor(const std::function<bool()>& predicate, int deadline_ms) {
  const auto deadline = steady_clock::now() + milliseconds(deadline_ms);
  while (steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return predicate();
}

TEST(ServerTest, StreamedRowsAreByteIdenticalToInProcessExecution) {
  // Cycle(60) with (a)+ yields 3600 pairs — several 4 KiB chunks, so the
  // identity actually crosses chunk boundaries.
  QueryEngine engine(ToPropertyGraph(Cycle(60)));
  GraphServer server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Client client = ConnectTo(server);
  ASSERT_TRUE(client.Hello("tenant-a").ok());

  ClientQueryOptions options;
  options.language = "rpq";
  options.max_display_rows = 100000;
  std::string streamed;
  size_t chunks = 0;
  Result<DoneStatus> done =
      client.Query("(a)+", options, [&](std::string_view chunk) {
        streamed += chunk;
        ++chunks;
        return true;
      });
  ASSERT_TRUE(done.ok()) << done.error().message();
  ASSERT_TRUE(done.value().ok) << done.value().message;
  EXPECT_GT(chunks, 1u) << "expected a multi-chunk stream";

  QueryRequest request;
  request.language = QueryLanguage::kRpq;
  request.text = "(a)+";
  request.max_display_rows = 100000;
  Result<QueryResponse> local = engine.Execute(request);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(streamed, local.value().text);
  EXPECT_EQ(done.value().num_rows, local.value().num_rows);
  EXPECT_GT(engine.metrics().server_stream_chunks.value(), 1u);
}

TEST(ServerTest, SessionDefaultsFromHelloApply) {
  QueryEngine engine(Figure3Graph());
  GraphServer server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Client client = ConnectTo(server);
  // Session default language gql: a bare query must parse as CoreGQL.
  ASSERT_TRUE(client.Hello("tenant-a", "gql").ok());
  std::string streamed;
  Result<DoneStatus> done = client.Query(
      "MATCH (x:Person)-[:worksFor]->(y) RETURN x, y", {},
      [&](std::string_view chunk) {
        streamed += chunk;
        return true;
      });
  ASSERT_TRUE(done.ok()) << done.error().message();
  ASSERT_TRUE(done.value().ok) << done.value().message;
  EXPECT_NE(streamed.find("x | y"), std::string::npos);

  // An unknown per-request language is an invalid argument, not a hang.
  ClientQueryOptions bad;
  bad.language = "sparql";
  Result<DoneStatus> rejected = client.Query("whatever", bad);
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected.value().ok);
  EXPECT_EQ(rejected.value().code, ErrorCode::kInvalidArgument);
}

TEST(ServerTest, CancelFrameTripsRunningQuery) {
  // A big all-pairs evaluation; the CANCEL lands while it runs and the
  // engine's cooperative cancellation trips it.
  QueryEngine engine(ToPropertyGraph(Cycle(2000)));
  GraphServer server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Client client = ConnectTo(server);
  ASSERT_TRUE(client.Hello("tenant-a").ok());
  std::thread canceller([&client] {
    std::this_thread::sleep_for(milliseconds(30));
    (void)client.SendCancel();
  });
  ClientQueryOptions options;
  options.language = "rpq";
  Result<DoneStatus> done = client.Query("(a)+", options);
  canceller.join();
  ASSERT_TRUE(done.ok()) << done.error().message();
  EXPECT_FALSE(done.value().ok);
  EXPECT_EQ(done.value().code, ErrorCode::kCancelled)
      << done.value().message;
}

TEST(ServerTest, ClientDisconnectCancelsRunningQuery) {
  QueryEngine engine(ToPropertyGraph(Cycle(2000)));
  GraphServer server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  {
    Client client = ConnectTo(server);
    ASSERT_TRUE(client.Hello("tenant-a").ok());
    ClientQueryOptions options;
    options.language = "rpq";
    ASSERT_TRUE(client.StartQuery("(a)+", options).ok());
    std::this_thread::sleep_for(milliseconds(30));
    client.Close();  // vanish mid-query, without reading a single frame
  }

  // The connection thread observes the EOF and trips the engine's
  // external cancel; the query must die as kCancelled, not run to
  // completion against a dead socket.
  EXPECT_TRUE(WaitFor(
      [&engine] { return engine.metrics().cancelled.value() >= 1; }, 30000))
      << "query was not cancelled after client disconnect";

  // The server stays healthy for new sessions afterwards.
  Client again = ConnectTo(server);
  ASSERT_TRUE(again.Hello("tenant-a").ok());
  ClientQueryOptions small;
  small.language = "rpq";
  Result<DoneStatus> done = again.Query("a", small);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done.value().ok);
}

TEST(ServerTest, DrainUnderLoadShedsWithUnavailable) {
  QueryEngine engine(ToPropertyGraph(Cycle(2000)));
  ServerOptions options;
  options.drain_deadline = milliseconds(50);
  GraphServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  Client client = ConnectTo(server);
  ASSERT_TRUE(client.Hello("tenant-a").ok());
  Result<DoneStatus> done = Error("not finished");
  std::thread runner([&client, &done] {
    ClientQueryOptions slow;
    slow.language = "rpq";
    done = client.Query("(a)+", slow);
  });
  // Wait until the query is actually in flight before draining.
  ASSERT_TRUE(WaitFor(
      [&engine] { return engine.metrics().server_queries.value() >= 1; },
      30000));
  std::this_thread::sleep_for(milliseconds(20));

  size_t sheds = server.Shutdown();
  runner.join();

  // The in-flight query outlived the 50ms drain deadline, so the drain
  // cancelled it and its DONE reports kUnavailable — the client is told
  // to retry elsewhere, it is never left hanging.
  EXPECT_EQ(sheds, 1u);
  ASSERT_TRUE(done.ok()) << done.error().message();
  EXPECT_FALSE(done.value().ok);
  EXPECT_EQ(done.value().code, ErrorCode::kUnavailable)
      << done.value().message;
  EXPECT_GE(engine.metrics().server_drain_shed.value(), 1u);

  // Draining twice is a no-op, and new connections are refused.
  EXPECT_EQ(server.Shutdown(), 0u);
  EXPECT_FALSE(Client::Connect("127.0.0.1", server.port()).ok());
}

TEST(ServerTest, TenantQuotaExhaustionShedsWithOverloaded) {
  QueryEngine engine(Figure3Graph());
  ServerOptions options;
  options.quota.queries_per_sec = 1;
  options.quota.burst = 2;
  GraphServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  Client client = ConnectTo(server);
  ASSERT_TRUE(client.Hello("small-tenant").ok());
  ClientQueryOptions query;
  query.language = "rpq";
  for (int i = 0; i < 2; ++i) {
    Result<DoneStatus> done = client.Query("worksFor", query);
    ASSERT_TRUE(done.ok());
    EXPECT_TRUE(done.value().ok) << done.value().message;
  }
  // The burst is spent and 1 qps cannot refill a whole token this fast.
  Result<DoneStatus> shed = client.Query("worksFor", query);
  ASSERT_TRUE(shed.ok());
  EXPECT_FALSE(shed.value().ok);
  EXPECT_EQ(shed.value().code, ErrorCode::kOverloaded) << shed.value().message;
  EXPECT_GE(engine.metrics().tenant_quota_shed.value(), 1u);

  // Quotas are per tenant: a different tenant has its own full bucket.
  Client other = ConnectTo(server);
  ASSERT_TRUE(other.Hello("big-tenant").ok());
  Result<DoneStatus> done = other.Query("worksFor", query);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done.value().ok);

  // Both tenants show up in the stats report with their counts.
  Result<std::string> stats = other.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("small-tenant"), std::string::npos);
  EXPECT_NE(stats.value().find("big-tenant"), std::string::npos);
}

TEST(ServerTest, MutationsStreamThroughTheWritePathAndAck) {
  QueryEngine engine(Figure3Graph());
  GraphServer server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Client client = ConnectTo(server);
  ASSERT_TRUE(client.Hello("tenant-a").ok());
  Result<DoneStatus> done = client.Mutate(
      {"add-node carol Person", "add-edge e100 carol carol knows"});
  ASSERT_TRUE(done.ok()) << done.error().message();
  ASSERT_TRUE(done.value().ok) << done.value().message;
  EXPECT_EQ(done.value().num_rows, 2u);

  // The write is visible to a query on the same session right away.
  ClientQueryOptions query;
  query.language = "rpq";
  std::string streamed;
  Result<DoneStatus> read =
      client.Query("knows", query, [&](std::string_view chunk) {
        streamed += chunk;
        return true;
      });
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(read.value().ok);
  EXPECT_NE(streamed.find("carol"), std::string::npos);

  // A malformed mutation line fails the batch with a parse error.
  Result<DoneStatus> bad = client.Mutate({"add-node"});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().ok);
}

}  // namespace
}  // namespace server
}  // namespace gqzoo
