// Cross-validation of the mode machinery (Section 3.1.5): the production
// implementations (PMR shortest restriction, backtracking simple/trail
// search) against the reference definition — filter the explicit set of
// matching path bindings with ApplyMode.

#include <gtest/gtest.h>

#include <set>

#include "src/crpq/modes.h"
#include "src/graph/generators.h"
#include "src/util/biguint.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::MatchingBindingsBruteForce;
using testing_util::Rx;

struct ModeCase {
  uint64_t seed;
  const char* regex;
};

class ModeAgreementTest : public ::testing::TestWithParam<ModeCase> {};

TEST_P(ModeAgreementTest, ImplementationsMatchReferenceFilter) {
  // Small graphs so the brute-force set is complete for every mode:
  //  * simple paths have < |V| = 4 edges,
  //  * trails have ≤ |E| = 6 edges,
  //  * `all` and the brute force use the same bound L = 6.
  const size_t kBound = 6;
  EdgeLabeledGraph g = RandomGraph(4, 6, 2, GetParam().seed);
  Nfa nfa = Nfa::FromRegex(*Rx(GetParam().regex), g);
  EnumerationLimits limits;
  limits.max_length = kBound;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      std::vector<PathBinding> brute =
          MatchingBindingsBruteForce(g, nfa, u, v, kBound);
      for (PathMode mode : {PathMode::kAll, PathMode::kSimple,
                            PathMode::kTrail, PathMode::kShortest}) {
        if (mode == PathMode::kShortest && brute.empty()) {
          // A shortest witness longer than the brute-force bound may
          // exist; the reference set is incomplete here, so skip.
          continue;
        }
        std::vector<PathBinding> expected = ApplyMode(mode, brute);
        std::sort(expected.begin(), expected.end());
        expected.erase(std::unique(expected.begin(), expected.end()),
                       expected.end());
        std::vector<PathBinding> got =
            CollectModePaths(g, nfa, u, v, mode, limits);
        EXPECT_EQ(got, expected)
            << GetParam().regex << " mode=" << PathModeName(mode) << " " << u
            << "->" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, ModeAgreementTest,
    ::testing::Values(ModeCase{81, "a*"}, ModeCase{82, "(a|b)*"},
                      ModeCase{83, "a (b|a)*"}, ModeCase{84, "(a^z)*"},
                      ModeCase{85, "(a^z b)* a?"}, ModeCase{86, "_+"},
                      ModeCase{87, "(a b^z|b a^z)*"},
                      ModeCase{88, "a{1,3}"}));

TEST(ApplyModeTest, ShortestKeepsAllMinimal) {
  EdgeLabeledGraph g = ParallelChain(2);  // 4 shortest paths of length 2
  Nfa nfa = Nfa::FromRegex(*Rx("a*"), g);
  std::vector<PathBinding> all =
      MatchingBindingsBruteForce(g, nfa, 0, 2, 4);
  std::vector<PathBinding> shortest = ApplyMode(PathMode::kShortest, all);
  EXPECT_EQ(shortest.size(), 4u);
  for (const PathBinding& pb : shortest) {
    EXPECT_EQ(pb.path.Length(), 2u);
  }
}

TEST(ApplyModeTest, EmptySetsStayEmpty) {
  for (PathMode mode : {PathMode::kAll, PathMode::kSimple, PathMode::kTrail,
                        PathMode::kShortest}) {
    EXPECT_TRUE(ApplyMode(mode, {}).empty());
  }
}

TEST(ModeCountTest, TrailCountOnParallelChain) {
  // Every s→t path in ParallelChain is a trail and simple; the counts are
  // exactly 2^n for all of all/trail/simple, while shortest also keeps all
  // of them (equal lengths). A strong consistency check among modes.
  const size_t n = 6;
  EdgeLabeledGraph g = ParallelChain(n);
  Nfa nfa = Nfa::FromRegex(*Rx("a*"), g);
  EnumerationLimits limits;
  for (PathMode mode : {PathMode::kAll, PathMode::kSimple, PathMode::kTrail,
                        PathMode::kShortest}) {
    std::vector<PathBinding> got = CollectModePaths(
        g, nfa, *g.FindNode("s"), *g.FindNode("t"), mode, limits);
    EXPECT_EQ(got.size(), size_t{1} << n) << PathModeName(mode);
  }
}

TEST(ModeCountTest, CycleDistinguishesModes) {
  // On a 3-cycle from c0 to c0: `all` is infinite (truncates), shortest is
  // the empty path, simple is the empty path only, trail adds the full
  // 3-cycle.
  EdgeLabeledGraph g = Cycle(3);
  Nfa nfa = Nfa::FromRegex(*Rx("a*"), g);
  EnumerationLimits limits;
  limits.max_results = 10;
  limits.max_length = 30;

  EnumerationStats stats;
  std::vector<PathBinding> all =
      CollectModePaths(g, nfa, 0, 0, PathMode::kAll, limits, &stats);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(all.size(), 10u);

  std::vector<PathBinding> shortest =
      CollectModePaths(g, nfa, 0, 0, PathMode::kShortest, limits);
  ASSERT_EQ(shortest.size(), 1u);
  EXPECT_EQ(shortest[0].path.Length(), 0u);

  std::vector<PathBinding> simple =
      CollectModePaths(g, nfa, 0, 0, PathMode::kSimple, limits);
  ASSERT_EQ(simple.size(), 1u);
  EXPECT_EQ(simple[0].path.Length(), 0u);

  std::vector<PathBinding> trail =
      CollectModePaths(g, nfa, 0, 0, PathMode::kTrail, limits);
  ASSERT_EQ(trail.size(), 2u);  // empty path + the 3-cycle
  EXPECT_EQ(trail[1].path.Length(), 3u);
}

}  // namespace
}  // namespace gqzoo
