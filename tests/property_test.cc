// Randomized property tests across layers: BigUint vs native wide
// arithmetic, graph-text round trips, CoreGQL condition algebra, and the
// pattern pair/path consistency on random graphs.

#include <gtest/gtest.h>

#include <random>

#include "src/coregql/pattern_eval.h"
#include "src/coregql/pattern_parser.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/util/biguint.h"

namespace gqzoo {
namespace {

TEST(BigUintPropertyTest, AgreesWithNativeWideArithmetic) {
  std::mt19937_64 rng(12345);
  std::uniform_int_distribution<uint64_t> dist(0, UINT64_MAX >> 1);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = dist(rng);
    uint64_t b = dist(rng);
    unsigned __int128 sum = static_cast<unsigned __int128>(a) + b;
    unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
    auto to_string = [](unsigned __int128 v) {
      if (v == 0) return std::string("0");
      std::string out;
      while (v > 0) {
        out.insert(out.begin(), static_cast<char>('0' + static_cast<int>(v % 10)));
        v /= 10;
      }
      return out;
    };
    EXPECT_EQ((BigUint(a) + BigUint(b)).ToString(), to_string(sum));
    EXPECT_EQ((BigUint(a) * BigUint(b)).ToString(), to_string(prod));
    EXPECT_EQ(BigUint(a) < BigUint(b), a < b);
  }
}

TEST(BigUintPropertyTest, RingLaws) {
  std::mt19937_64 rng(777);
  std::uniform_int_distribution<uint64_t> dist(0, 1000000);
  for (int i = 0; i < 200; ++i) {
    BigUint a(dist(rng)), b(dist(rng)), c(dist(rng));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * BigUint(1), a);
    EXPECT_TRUE((a * BigUint(0)).is_zero());
  }
}

TEST(GraphIoPropertyTest, RandomGraphsRoundTrip) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    PropertyGraph g = RandomPropertyGraph(12, 30, 50, seed);
    std::string text = PropertyGraphToText(g);
    Result<PropertyGraph> parsed = ParsePropertyGraph(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message();
    const PropertyGraph& h = parsed.value();
    ASSERT_EQ(h.NumNodes(), g.NumNodes());
    ASSERT_EQ(h.NumEdges(), g.NumEdges());
    // Structure and properties survive (names identify elements).
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      NodeId m = *h.FindNode(std::string(g.NodeName(n)));
      EXPECT_EQ(h.LabelName(h.NodeLabel(m)), g.LabelName(g.NodeLabel(n)));
      EXPECT_EQ(h.GetProperty(ObjectRef::Node(m), "k"),
                g.GetProperty(ObjectRef::Node(n), "k"));
    }
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      EdgeId f = *h.FindEdge(std::string(g.EdgeName(e)));
      EXPECT_EQ(h.NodeName(h.Src(f)), g.NodeName(g.Src(e)));
      EXPECT_EQ(h.NodeName(h.Tgt(f)), g.NodeName(g.Tgt(e)));
      EXPECT_EQ(h.GetProperty(ObjectRef::Edge(f), "k"),
                g.GetProperty(ObjectRef::Edge(e), "k"));
    }
    // And the serialization is stable.
    EXPECT_EQ(PropertyGraphToText(h), text);
  }
}

class ConditionAlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = RandomPropertyGraph(6, 10, 3, 99);
    // Bindings over a couple of elements.
    mu_["x"] = ObjectRef::Node(0);
    mu_["y"] = ObjectRef::Node(1);
    mu_["e"] = ObjectRef::Edge(0);
  }

  bool Eval(const std::string& text) {
    CoreCondPtr cond = ParseCoreCondition(text).ValueOrDie();
    return EvalCoreCondition(g_, *cond, mu_);
  }

  PropertyGraph g_ = RandomPropertyGraph(1, 0, 1, 0);
  CoreBinding mu_;
};

TEST_F(ConditionAlgebraTest, BooleanLaws) {
  // For a grid of atomic conditions, check De Morgan and double negation
  // against the evaluator.
  const char* atoms[] = {"x.k < y.k", "x.k = y.k", "e.k >= 1",
                         "x:N", "x.k != 2", "z.k = 1" /* unbound var */};
  for (const char* a : atoms) {
    for (const char* b : atoms) {
      std::string sa(a), sb(b);
      bool va = Eval(sa);
      bool vb = Eval(sb);
      EXPECT_EQ(Eval(sa + " AND " + sb), va && vb) << sa << " & " << sb;
      EXPECT_EQ(Eval(sa + " OR " + sb), va || vb);
      EXPECT_EQ(Eval("NOT (" + sa + " AND " + sb + ")"),
                Eval("NOT " + sa + " OR NOT " + sb));
      EXPECT_EQ(Eval("NOT (" + sa + " OR " + sb + ")"),
                Eval("NOT " + sa + " AND NOT " + sb));
      EXPECT_EQ(Eval("NOT NOT " + sa), va);
    }
  }
}

TEST_F(ConditionAlgebraTest, UnboundAndMissingAreFalse) {
  EXPECT_FALSE(Eval("z.k = 1"));
  EXPECT_TRUE(Eval("NOT z.k = 1"));
  EXPECT_FALSE(Eval("x.nonexistent = 1"));
  EXPECT_FALSE(Eval("x.nonexistent != 1"));  // missing ≠ three-valued logic
  EXPECT_FALSE(Eval("z:N"));
}

TEST(PatternConsistencyTest, PairsEqualPathProjectionsOnRandomGraphs) {
  // On random DAG-ish graphs (chains with extra forward edges) where
  // [[π]] is finite, pair-level and path-level evaluation agree.
  for (uint64_t seed : {5, 6, 7}) {
    std::mt19937_64 rng(seed);
    PropertyGraph g;
    const size_t n = 7;
    for (size_t i = 0; i < n; ++i) {
      NodeId node = g.AddNode("n" + std::to_string(i), "N");
      g.SetProperty(ObjectRef::Node(node), "k",
                    Value(static_cast<int64_t>(rng() % 5)));
    }
    for (size_t i = 0; i + 1 < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (rng() % 3 == 0 || j == i + 1) {
          EdgeId e = g.AddEdge(static_cast<NodeId>(i),
                               static_cast<NodeId>(j), "a");
          g.SetProperty(ObjectRef::Edge(e), "k",
                        Value(static_cast<int64_t>(rng() % 5)));
        }
      }
    }
    for (const char* text :
         {"(x) -> (y)", "(x) ->* (y)",
          "(x) ( ((u)->(v)) WHERE u.k <= v.k )* (y)",
          "(x) (-[e]-> () WHERE e.k > 1)? (y)",
          "(x) (->|->->) (y)"}) {
      CorePatternPtr p = ParseCorePattern(text).ValueOrDie();
      auto pairs = EvalPatternPairs(g, *p).ValueOrDie();
      auto paths = EvalPatternPaths(g, *p).ValueOrDie();
      ASSERT_FALSE(paths.truncated) << text;
      std::set<CorePairRow> projected;
      for (const CorePathRow& r : paths.rows) {
        projected.insert({r.path.Src(g.skeleton()),
                          r.path.Tgt(g.skeleton()), r.mu});
      }
      std::set<CorePairRow> expected(pairs.begin(), pairs.end());
      EXPECT_EQ(projected, expected) << text << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace gqzoo
