#include <gtest/gtest.h>

#include <set>

#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

Crpq Q(const std::string& text,
       RegexDialect dialect = RegexDialect::kPlain) {
  Result<Crpq> q = ParseCrpq(text, dialect);
  if (!q.ok()) {
    ADD_FAILURE() << text << ": " << q.error().message();
    return Crpq{};
  }
  return q.value();
}

// Renders a result set as readable strings for assertions.
std::set<std::string> Rows(const EdgeLabeledGraph& g, const CrpqResult& r) {
  std::set<std::string> out;
  for (const auto& row : r.rows) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ",";
      s += CrpqValueToString(g, row[i]);
    }
    out.insert(s);
  }
  return out;
}

TEST(CrpqParserTest, ParsesHeadModesAndConstants) {
  Crpq q = Q("q(x, z) := shortest (Transfer^z)+ (x, @a5), owner(x, y)");
  EXPECT_EQ(q.name, "q");
  EXPECT_EQ(q.head, (std::vector<std::string>{"x", "z"}));
  ASSERT_EQ(q.atoms.size(), 2u);
  EXPECT_EQ(q.atoms[0].mode, PathMode::kShortest);
  EXPECT_TRUE(q.atoms[0].to.is_constant);
  EXPECT_EQ(q.atoms[0].to.name, "a5");
  EXPECT_EQ(q.atoms[1].mode, PathMode::kAll);
  EXPECT_EQ(q.ListVariables(), (std::vector<std::string>{"z"}));
  EXPECT_EQ(q.EndpointVariables(), (std::vector<std::string>{"x", "y"}));
}

TEST(CrpqParserTest, AcceptsColonDash) {
  EXPECT_TRUE(ParseCrpq("q(x) :- a(x, y)").ok());
}

TEST(CrpqParserTest, RegexEndingInGroupBeforeEndpoints) {
  Crpq q = Q("q(x, y) := (Transfer|owner) (x, y)");
  ASSERT_EQ(q.atoms.size(), 1u);
  EXPECT_EQ(q.atoms[0].regex->op(), Regex::Op::kUnion);
}

TEST(CrpqParserTest, RejectsIllFormedQueries) {
  // Head variable not in body (condition 5).
  EXPECT_FALSE(ParseCrpq("q(w) := a(x, y)").ok());
  // List variable shared between atoms (condition 4).
  EXPECT_FALSE(ParseCrpq("q(z) := a^z(x, y), b^z(y, w)").ok());
  // List variable also an endpoint (condition 3).
  EXPECT_FALSE(ParseCrpq("q(z) := a^z(z, y)").ok());
  // Missing endpoints.
  EXPECT_FALSE(ParseCrpq("q(x) := a b").ok());
  EXPECT_FALSE(ParseCrpq("q(x) := (x, y)").ok());
  EXPECT_FALSE(ParseCrpq("q(x)").ok());
}

TEST(CrpqEvalTest, Example13FirstQuery) {
  // q1(x1,x2,x3) := Transfer(x1,x2), Transfer(x1,x3), Transfer(x2,x3)
  // returns {(a3,a2,a4), (a6,a3,a5)} on Figure 2.
  EdgeLabeledGraph g = Figure2Graph();
  Crpq q = Q("q1(x1, x2, x3) := Transfer(x1, x2), Transfer(x1, x3), "
             "Transfer(x2, x3)");
  Result<CrpqResult> r = EvalCrpq(g, q);
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_EQ(Rows(g, r.value()),
            (std::set<std::string>{"a3,a2,a4", "a6,a3,a5"}));
  EXPECT_FALSE(r.value().truncated);
}

TEST(CrpqEvalTest, Example13SecondQuery) {
  // q2(x,x1,x2) := owner(y,x1), isBlocked(y,x2), (Transfer Transfer?)(x,y).
  EdgeLabeledGraph g = Figure2Graph();
  Crpq q = Q("q2(x, x1, x2) := owner(y, x1), isBlocked(y, x2), "
             "(Transfer Transfer?)(x, y)");
  Result<CrpqResult> r = EvalCrpq(g, q);
  ASSERT_TRUE(r.ok()) << r.error().message();
  std::set<std::string> rows = Rows(g, r.value());
  // The example's witness: (a4, Rebecca, no) via the 2-transfer path
  // a4 → a6 → a5.
  EXPECT_TRUE(rows.count("a4,Rebecca,no")) << r.value().ToString(g);
  // Every row's account reaches an owned+blocked-status account in ≤2 hops.
  for (const std::string& row : rows) {
    EXPECT_NE(row.find(','), std::string::npos);
  }
}

TEST(CrpqEvalTest, Example17ShortestGroupedByEndpoints) {
  // q(x1,x2,z) := owner(y1,x1), owner(y2,x2), shortest (Transfer^z)+(y1,y2).
  EdgeLabeledGraph g = Figure2Graph();
  Crpq q = Q("q(x1, x2, z) := owner(y1, x1), owner(y2, x2), "
             "shortest (Transfer^z)+ (y1, y2)");
  Result<CrpqResult> r = EvalCrpq(g, q);
  ASSERT_TRUE(r.ok()) << r.error().message();
  std::set<std::string> rows = Rows(g, r.value());
  // Example 17's two spotlighted answers.
  EXPECT_TRUE(rows.count("Jay,Rebecca,list(t10)")) << r.value().ToString(g);
  EXPECT_TRUE(rows.count("Mike,Megan,list(t7, t4)")) << r.value().ToString(g);
  // Shortest is per endpoint pair: the a3→a1 list has length 2 even though
  // a6→a5 admits a length-1 list.
  EXPECT_FALSE(rows.count("Mike,Megan,list(t10)"));
}

TEST(CrpqEvalTest, ConstantEndpoints) {
  EdgeLabeledGraph g = Figure2Graph();
  Crpq q = Q("q(x) := Transfer(@a3, x)");
  Result<CrpqResult> r = EvalCrpq(g, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Rows(g, r.value()), (std::set<std::string>{"a2", "a4", "a5"}));
  Crpq q2 = Q("q(x) := Transfer(x, @a5), owner(x, y)");
  Result<CrpqResult> r2 = EvalCrpq(g, q2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(Rows(g, r2.value()), (std::set<std::string>{"a3", "a6"}));
  // Unknown constant is an error.
  EXPECT_FALSE(EvalCrpq(g, Q("q(x) := Transfer(@nope, x)")).ok());
}

TEST(CrpqEvalTest, SelfJoinEndpoints) {
  // R(x, x) matches self-loops of the virtual relation.
  EdgeLabeledGraph g = Figure2Graph();
  Crpq q = Q("q(x) := (Transfer Transfer Transfer)(x, x)");
  Result<CrpqResult> r = EvalCrpq(g, q);
  ASSERT_TRUE(r.ok());
  // The 3-cycle a3 -t7-> a5 -t4-> a1 -t1-> a3 and the 3-cycle
  // a3 -t6-> a4 -t9-> a6 -t8-> a3 (and rotations).
  std::set<std::string> rows = Rows(g, r.value());
  EXPECT_TRUE(rows.count("a3"));
  EXPECT_TRUE(rows.count("a5"));
  EXPECT_TRUE(rows.count("a1"));
  EXPECT_TRUE(rows.count("a4"));
  EXPECT_TRUE(rows.count("a6"));
  EXPECT_FALSE(rows.count("Megan"));
}

TEST(CrpqEvalTest, ModesWithoutListVariablesAreVacuous) {
  // Per the (restricted) path homomorphism definition, modes act through
  // list variables; without them the atom contributes [[R]]_G. On a cycle,
  // `simple` with no list variable still returns the pair (u, u).
  EdgeLabeledGraph g = Cycle(3);
  Crpq all = Q("q(x, y) := all (a a a)(x, y)");
  Crpq simple = Q("q(x, y) := simple (a a a)(x, y)");
  Result<CrpqResult> r_all = EvalCrpq(g, all);
  Result<CrpqResult> r_simple = EvalCrpq(g, simple);
  ASSERT_TRUE(r_all.ok());
  ASSERT_TRUE(r_simple.ok());
  EXPECT_EQ(Rows(g, r_all.value()), Rows(g, r_simple.value()));
  EXPECT_EQ(r_all.value().rows.size(), 3u);  // (c0,c0), (c1,c1), (c2,c2)
}

TEST(CrpqEvalTest, SimpleModeWithListVariableExcludesCyclicWitnesses) {
  // With a list variable, `simple` requires an actual simple path: the
  // 3-cycle (length-3 loop) is not simple, so no bindings survive.
  EdgeLabeledGraph g = Cycle(3);
  Crpq q = Q("q(x, z) := simple (a^z a a)(x, x)");
  Result<CrpqResult> r = EvalCrpq(g, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().rows.empty());
  // `trail` admits it (no repeated edges).
  Crpq qt = Q("q(x, z) := trail (a^z a a)(x, x)");
  Result<CrpqResult> rt = EvalCrpq(g, qt);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.value().rows.size(), 3u);
}

TEST(CrpqEvalTest, AllModeOnCyclicGraphTruncates) {
  EdgeLabeledGraph g = Cycle(3);
  Crpq q = Q("q(z) := all (a^z)+ (x, x)");
  CrpqEvalOptions options;
  options.max_bindings_per_pair = 50;
  options.max_path_length = 30;
  Result<CrpqResult> r = EvalCrpq(g, q, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().truncated);
  EXPECT_FALSE(r.value().rows.empty());
}

TEST(CrpqEvalTest, JoinAcrossAtomsIsConsistent) {
  // Triangle query on random graphs: CRPQ result equals a hand-rolled join.
  for (uint64_t seed : {41, 42, 43}) {
    EdgeLabeledGraph g = RandomGraph(6, 12, 2, seed);
    Crpq q = Q("q(x, y, w) := a(x, y), b(y, w), a(x, w)");
    Result<CrpqResult> r = EvalCrpq(g, q);
    ASSERT_TRUE(r.ok());
    std::set<std::string> expected;
    std::optional<LabelId> la = g.FindLabel("a");
    std::optional<LabelId> lb = g.FindLabel("b");
    for (EdgeId e1 = 0; e1 < g.NumEdges(); ++e1) {
      if (!la || g.EdgeLabel(e1) != *la) continue;
      for (EdgeId e2 = 0; e2 < g.NumEdges(); ++e2) {
        if (!lb || g.EdgeLabel(e2) != *lb) continue;
        if (g.Tgt(e1) != g.Src(e2)) continue;
        for (EdgeId e3 = 0; e3 < g.NumEdges(); ++e3) {
          if (g.EdgeLabel(e3) != *la) continue;
          if (g.Src(e3) != g.Src(e1) || g.Tgt(e3) != g.Tgt(e2)) continue;
          expected.insert(std::string(g.NodeName(g.Src(e1))) + "," +
                          std::string(g.NodeName(g.Tgt(e1))) + "," +
                          std::string(g.NodeName(g.Tgt(e2))));
        }
      }
    }
    EXPECT_EQ(Rows(g, r.value()), expected) << "seed " << seed;
  }
}

TEST(CrpqEvalTest, EmptyConjunctionShortCircuits) {
  EdgeLabeledGraph g = Figure2Graph();
  Crpq q = Q("q(x) := Transfer(x, y), nonexistent(y, w)");
  Result<CrpqResult> r = EvalCrpq(g, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().rows.empty());
}

TEST(CrpqEvalTest, RoundTripToString) {
  Crpq q = Q("q(x1, z) := owner(y1, x1), shortest (Transfer^z)+ (y1, @a5)");
  Crpq q2 = Q(q.ToString());
  EXPECT_EQ(q2.head, q.head);
  ASSERT_EQ(q2.atoms.size(), q.atoms.size());
  EXPECT_EQ(q2.atoms[1].mode, PathMode::kShortest);
  EXPECT_TRUE(q2.atoms[1].to.is_constant);
}

}  // namespace
}  // namespace gqzoo
