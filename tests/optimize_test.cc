// Tests for the Section 7.1 pushdown optimizer: rewrites are
// answer-preserving and actually fire.

#include <gtest/gtest.h>

#include "src/coregql/optimize.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"

namespace gqzoo {
namespace {

CoreGqlQuery Q(const std::string& text) {
  return ParseCoreGqlQuery(text).ValueOrDie();
}

// Evaluates original and optimized and checks both rewrite activity and
// answer equality.
void CheckPreserves(const PropertyGraph& g, const std::string& text,
                    size_t expect_labels, size_t expect_selections) {
  CoreGqlQuery original = Q(text);
  PushdownStats stats;
  CoreGqlQuery optimized = PushDownConditions(original, &stats);
  EXPECT_EQ(stats.labels_pushed, expect_labels) << text;
  EXPECT_EQ(stats.selections_pushed, expect_selections) << text;
  Result<CoreQueryResult> before = EvalCoreGqlQuery(g, original);
  Result<CoreQueryResult> after = EvalCoreGqlQuery(g, optimized);
  ASSERT_TRUE(before.ok()) << before.error().message();
  ASSERT_TRUE(after.ok()) << after.error().message();
  EXPECT_EQ(before.value().relation.rows(), after.value().relation.rows())
      << text;
}

TEST(PushdownTest, LabelPushdownFires) {
  PropertyGraph g = Figure3Graph();
  CoreGqlQuery q = Q("MATCH (x)-[e]->(y) WHERE x:Account RETURN x, y");
  PushdownStats stats;
  CoreGqlQuery optimized = PushDownConditions(q, &stats);
  EXPECT_EQ(stats.labels_pushed, 1u);
  EXPECT_EQ(optimized.blocks[0].where, nullptr);
  // The atom now carries the label.
  EXPECT_NE(optimized.blocks[0].patterns[0].pattern->ToString().find(
                "x:Account"),
            std::string::npos);
}

TEST(PushdownTest, PreservesAnswers) {
  PropertyGraph g = Figure3Graph();
  CheckPreserves(g, "MATCH (x)-[e]->(y) WHERE x:Account RETURN x, y", 1, 0);
  CheckPreserves(g,
                 "MATCH (x)-[e:Transfer]->(y) WHERE e.amount < 5000000 "
                 "RETURN x, y",
                 0, 1);
  CheckPreserves(g,
                 "MATCH (x)->(y), (y)->(w) "
                 "WHERE x:Account AND y.owner = 'Dave' RETURN x, w",
                 1, 1);
  // Mixed with a non-pushable conjunct (two-variable comparison).
  CheckPreserves(g,
                 "MATCH (x)-[e]->(y) WHERE x:Account AND "
                 "x.owner != y.owner AND e.amount > 1 RETURN x, y",
                 1, 1);
}

TEST(PushdownTest, ContradictoryLabelIsKeptNotMiscompiled) {
  PropertyGraph g = Figure3Graph();
  // x already labeled Account; WHERE claims a different label: the result
  // must stay empty (conjunct kept, not overwritten).
  CoreGqlQuery q =
      Q("MATCH (x:Account)->(y) WHERE x:Ghost RETURN x, y");
  PushdownStats stats;
  CoreGqlQuery optimized = PushDownConditions(q, &stats);
  EXPECT_EQ(stats.labels_pushed, 0u);
  Result<CoreQueryResult> r = EvalCoreGqlQuery(g, optimized);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().relation.NumRows(), 0u);
}

TEST(PushdownTest, RepeatedVariablesAreNotTouched) {
  // u under a repetition is a different (erased) variable; the WHERE
  // conjunct over it must not be pushed into the starred atoms.
  PropertyGraph g = Figure3Graph();
  CoreGqlQuery q = Q("MATCH (x) ( (u)->(v) )* (y) WHERE u:Account RETURN x");
  PushdownStats stats;
  CoreGqlQuery optimized = PushDownConditions(q, &stats);
  EXPECT_EQ(stats.labels_pushed, 0u);
  // u is unbound at the top level, so the block is empty either way.
  Result<CoreQueryResult> before = EvalCoreGqlQuery(g, q);
  Result<CoreQueryResult> after = EvalCoreGqlQuery(g, optimized);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value().relation.NumRows(), 0u);
  EXPECT_EQ(after.value().relation.NumRows(), 0u);
}

TEST(PushdownTest, RandomizedEquivalence) {
  for (uint64_t seed : {91, 92, 93}) {
    PropertyGraph g = RandomPropertyGraph(20, 60, 4, seed);
    for (const char* text :
         {"MATCH (x)-[e]->(y) WHERE x:N AND e.k < 3 RETURN x, y",
          "MATCH (x)->(y) WHERE x.k = 1 RETURN y",
          "MATCH (x)->(y), (y)->(w) WHERE y.k >= 2 AND x:N RETURN x, w",
          "MATCH (x) ->* (y) WHERE x.k = 0 RETURN x, y"}) {
      CoreGqlQuery original = Q(text);
      CoreGqlQuery optimized = PushDownConditions(original);
      Result<CoreQueryResult> before = EvalCoreGqlQuery(g, original);
      Result<CoreQueryResult> after = EvalCoreGqlQuery(g, optimized);
      ASSERT_TRUE(before.ok());
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(before.value().relation.rows(),
                after.value().relation.rows())
          << text << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace gqzoo
