#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/crpq/crpq_parser.h"
#include "src/datatest/dl_eval.h"
#include "src/datatest/dl_rpq.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::DlRx;

// ---------------------------------------------------------------------------
// Independent oracle: the ⊢_R derivation semantics of Section 3.2.1,
// implemented by structural recursion on the AST (completely separate code
// path from DlNfa/DlEvaluator). Bounded by path length.
// ---------------------------------------------------------------------------

struct OracleTriple {
  Path p;
  std::map<std::string, Value> nu;
  Binding mu;

  bool operator<(const OracleTriple& o) const {
    if (p != o.p) return p < o.p;
    if (nu != o.nu) return nu < o.nu;
    return mu < o.mu;
  }
};

using TripleSet = std::set<OracleTriple>;

class Oracle {
 public:
  Oracle(const PropertyGraph& g, size_t max_len) : g_(g), max_len_(max_len) {}

  TripleSet Derive(const Regex& r, const TripleSet& in) {
    switch (r.op()) {
      case Regex::Op::kEpsilon:
        return in;
      case Regex::Op::kAtom:
        return StepAtom(r.atom(), in);
      case Regex::Op::kConcat:
        return Derive(*r.right(), Derive(*r.left(), in));
      case Regex::Op::kUnion: {
        TripleSet out = Derive(*r.left(), in);
        TripleSet rhs = Derive(*r.right(), in);
        out.insert(rhs.begin(), rhs.end());
        return out;
      }
      case Regex::Op::kOptional: {
        TripleSet out = in;
        TripleSet step = Derive(*r.child(), in);
        out.insert(step.begin(), step.end());
        return out;
      }
      case Regex::Op::kPlus:
      case Regex::Op::kStar: {
        TripleSet out = r.op() == Regex::Op::kStar ? in : TripleSet{};
        TripleSet frontier = in;
        // Saturate. Only usable for regexes without collapse-capture
        // loops (the tests below respect this).
        while (true) {
          frontier = Derive(*r.child(), frontier);
          size_t before = out.size();
          out.insert(frontier.begin(), frontier.end());
          if (out.size() == before) break;
        }
        return out;
      }
    }
    return {};
  }

 private:
  TripleSet StepAtom(const Atom& atom, const TripleSet& in) {
    TripleSet out;
    for (const OracleTriple& t : in) {
      // Candidate objects: anything if p is empty, else collapse/append.
      std::vector<ObjectRef> candidates;
      if (t.p.empty()) {
        for (NodeId n = 0; n < g_.NumNodes(); ++n) {
          candidates.push_back(ObjectRef::Node(n));
        }
        for (EdgeId e = 0; e < g_.NumEdges(); ++e) {
          candidates.push_back(ObjectRef::Edge(e));
        }
      } else {
        ObjectRef last = t.p.back();
        candidates.push_back(last);
        if (last.is_node()) {
          for (EdgeId e : g_.OutEdges(last.id)) {
            candidates.push_back(ObjectRef::Edge(e));
          }
        } else {
          candidates.push_back(ObjectRef::Node(g_.Tgt(last.id)));
        }
      }
      for (ObjectRef o : candidates) {
        OracleTriple next = t;
        if (!next.p.AppendObject(g_.skeleton(), o)) continue;
        if (next.p.Length() > max_len_) continue;
        if (!MatchAtom(atom, o, &next)) continue;
        out.insert(std::move(next));
      }
    }
    return out;
  }

  bool MatchAtom(const Atom& atom, ObjectRef o, OracleTriple* t) {
    if ((atom.target == Atom::Target::kNode) != o.is_node()) return false;
    if (!atom.is_test()) {
      LabelId label = g_.ObjectLabel(o);
      const std::string& name = g_.LabelName(label);
      switch (atom.label_kind) {
        case Atom::LabelKind::kOne:
          if (atom.labels[0] != name) return false;
          break;
        case Atom::LabelKind::kNegSet:
          for (const std::string& l : atom.labels) {
            if (l == name) return false;
          }
          break;
        case Atom::LabelKind::kAny:
          break;
        case Atom::LabelKind::kTest:
          return false;
      }
      if (atom.capture.has_value()) t->mu.Append(*atom.capture, o);
      return true;
    }
    const ElementTest& test = *atom.test;
    std::optional<Value> value = g_.GetProperty(o, test.property);
    if (!value.has_value()) return false;
    switch (test.kind) {
      case ElementTest::Kind::kAssign:
        t->nu[test.data_var] = *value;
        return true;
      case ElementTest::Kind::kCompareConst:
        return Value::Compare(*value, test.op, test.constant);
      case ElementTest::Kind::kCompareVar: {
        auto it = t->nu.find(test.data_var);
        if (it == t->nu.end()) return false;
        return Value::Compare(*value, test.op, it->second);
      }
    }
    return false;
  }

  const PropertyGraph& g_;
  size_t max_len_;
};

// Anchored oracle evaluation: (p, µ) with src(p) = u, tgt(p) = v, bounded.
std::vector<PathBinding> OracleEval(const PropertyGraph& g, const Regex& r,
                                    NodeId u, NodeId v, size_t max_len) {
  Oracle oracle(g, max_len);
  TripleSet start = {OracleTriple{}};
  std::vector<PathBinding> out;
  for (const OracleTriple& t : oracle.Derive(r, start)) {
    if (t.p.empty()) continue;
    if (t.p.Src(g.skeleton()) != u || t.p.Tgt(g.skeleton()) != v) continue;
    out.push_back({t.p, t.mu});
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Unit tests for collapse and symmetry.
// ---------------------------------------------------------------------------

class DlBasicTest : public ::testing::Test {
 protected:
  void SetUp() override { g_ = Figure3Graph(); }

  std::vector<PathBinding> Eval(const std::string& regex, const char* u,
                                const char* v,
                                PathMode mode = PathMode::kAll,
                                size_t max_len = 8) {
    DlNfa nfa = DlNfa::FromRegex(*DlRx(regex), g_);
    DlEvaluator evaluator(g_, nfa);
    EnumerationLimits limits;
    limits.max_length = max_len;
    return evaluator.CollectModePaths(*g_.FindNode(u), *g_.FindNode(v), mode,
                                      limits);
  }

  PropertyGraph g_;
};

TEST_F(DlBasicTest, SingleNodeAtomMatchesThatNode) {
  std::vector<PathBinding> r = Eval("(Account)", "a1", "a1");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].path.ToString(g_.skeleton()), "path(a1)");
}

TEST_F(DlBasicTest, ConsecutiveAtomsCollapseOntoOneObject) {
  // (Account)(Account) matches a single node twice (collapse).
  std::vector<PathBinding> twice = Eval("(Account)(Account)", "a1", "a1");
  ASSERT_EQ(twice.size(), 1u);
  EXPECT_EQ(twice[0].path.NumObjects(), 1u);
  // (Account)(owner = 'Megan') further filters by property.
  EXPECT_EQ(Eval("(Account)(owner = 'Megan')", "a1", "a1").size(), 1u);
  EXPECT_TRUE(Eval("(Account)(owner = 'Megan')", "a3", "a3").empty());
}

TEST_F(DlBasicTest, EdgeAtomsAreSymmetricToNodeAtoms) {
  // [Transfer][amount < 4500000] matches exactly the edge t9 (a4 → a6),
  // as an edge-to-edge path.
  std::vector<PathBinding> r = Eval("[Transfer][amount < 4500000]", "a4",
                                    "a6");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].path.ToString(g_.skeleton()), "path(t9)");
  EXPECT_FALSE(r[0].path.StartsWithNode());
  EXPECT_EQ(r[0].path.Length(), 1u);
}

TEST_F(DlBasicTest, AdjacentEdgeAtomsWithDifferentLabelsMatchNothing) {
  // [Transfer][owner]: collapse requires one object with both labels.
  EXPECT_TRUE(Eval("[Transfer][owner]", "a1", "a3").empty());
}

TEST_F(DlBasicTest, CollapseCaptureAppendsTwice) {
  std::vector<PathBinding> r = Eval("[Transfer^z][Transfer^z]", "a4", "a6");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(ListToString(g_.skeleton(), r[0].mu.Get("z")), "list(t9, t9)");
}

TEST_F(DlBasicTest, AssignThenCompare) {
  // [x := amount][amount = x] trivially holds on any transfer.
  EXPECT_EQ(Eval("[Transfer][x := amount][amount = x]", "a4", "a6").size(),
            1u);
  // [x := amount][amount > x] never holds.
  EXPECT_TRUE(Eval("[Transfer][x := amount][amount > x]", "a4", "a6").empty());
}

TEST_F(DlBasicTest, UnboundDataVariableComparisonFails) {
  EXPECT_TRUE(Eval("[Transfer][amount > x]", "a4", "a6").empty());
}

TEST_F(DlBasicTest, UnknownPropertyFails) {
  EXPECT_TRUE(Eval("[Transfer][frobs < 1]", "a4", "a6").empty());
  EXPECT_TRUE(Eval("[x := frobs]", "a4", "a6").empty());
}

TEST_F(DlBasicTest, Example21IncreasingEdgeDates) {
  // Example 21, edge version. Figure 3 dates increase t1 < t2 < ... < t10.
  const std::string query =
      "()[Transfer^z][x := date]( (_)[Transfer^z][date > x][x := date] )*()";
  // a1 -t1-> a3 -t7-> a5: dates 01-01 < 01-07: accepted.
  std::vector<PathBinding> ok = Eval(query, "a1", "a5");
  bool found = false;
  for (const PathBinding& pb : ok) {
    if (pb.path.Length() == 2) {
      found = true;
      EXPECT_EQ(ListToString(g_.skeleton(), pb.mu.Get("z")), "list(t1, t7)");
    }
  }
  EXPECT_TRUE(found);
  // a6 -t8-> a3 -t2|t5-> a2: dates 01-08 > 01-02/01-05: the 2-edge paths
  // are rejected; no path a6 → a2 with increasing dates of length 2.
  for (const PathBinding& pb : Eval(query, "a6", "a2")) {
    EXPECT_NE(pb.path.Length(), 2u) << pb.path.ToString(g_.skeleton());
  }
}

TEST_F(DlBasicTest, Prop23CounterexampleRejectedByDlRpq) {
  // The Section 5.1 counterexample: a 4-edge path with edge values
  // 3, 4, 1, 2 fools the naive two-edge-window pattern but must be
  // rejected by the dl-RPQ (which threads x through every step).
  PropertyGraph pg;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(pg.AddNode("n" + std::to_string(i), "N"));
  }
  const int64_t values[] = {3, 4, 1, 2};
  for (int i = 0; i < 4; ++i) {
    EdgeId e = pg.AddEdge(nodes[i], nodes[i + 1], "a");
    pg.SetProperty(ObjectRef::Edge(e), "k", Value(values[i]));
  }
  DlNfa nfa = DlNfa::FromRegex(
      *DlRx("()[a][x := k]( (_)[a][k > x][x := k] )*()"), pg);
  DlEvaluator evaluator(pg, nfa);
  EnumerationLimits limits;
  // End-to-end (3,4,1,2) is not increasing: rejected.
  EXPECT_TRUE(evaluator.CollectModePaths(nodes[0], nodes[4], PathMode::kAll,
                                         limits)
                  .empty());
  // But the increasing prefix (3,4) is accepted.
  EXPECT_EQ(evaluator
                .CollectModePaths(nodes[0], nodes[2], PathMode::kAll, limits)
                .size(),
            1u);
}

TEST_F(DlBasicTest, Section63ShortestWithDataFilterTakesDetour) {
  // Shortest transfer path Mike (a3) → Rebecca (a5) with at least one
  // amount < 4.5M: the direct t7 is too expensive; the answer is
  // path(a3, t6, a4, t9, a6, t10, a5) of length 3.
  const std::string query =
      "( ()[Transfer] )* ()[Transfer][amount < 4500000] ( ()[Transfer] )* ()";
  std::vector<PathBinding> r =
      Eval(query, "a3", "a5", PathMode::kShortest, 20);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].path.ToString(g_.skeleton()),
            "path(a3, t6, a4, t9, a6, t10, a5)");
  // Without the filter the shortest path has length 1.
  DlNfa plain = DlNfa::FromRegex(*DlRx("( ()[Transfer] )* ()"), g_);
  EXPECT_EQ(DlEvaluator(g_, plain).ShortestLength(*g_.FindNode("a3"),
                                                  *g_.FindNode("a5")),
            1u);
}

TEST_F(DlBasicTest, Section63TwoCheapTransfersForceACycle) {
  // With two cheap transfers required, the shortest witness must traverse
  // t9 twice (only t9 is cheap), going around the a3→a4→a6→a3 cycle.
  const std::string cheap = "()[Transfer][amount < 4500000]";
  const std::string query = "( ()[Transfer] )* " + cheap +
                            " ( ()[Transfer] )* " + cheap +
                            " ( ()[Transfer] )* ()";
  DlNfa nfa = DlNfa::FromRegex(*DlRx(query), g_);
  DlEvaluator evaluator(g_, nfa);
  NodeId a3 = *g_.FindNode("a3");
  NodeId a5 = *g_.FindNode("a5");
  EXPECT_EQ(evaluator.ShortestLength(a3, a5), 6u);
  EnumerationLimits limits;
  limits.max_length = 10;
  std::vector<PathBinding> r =
      evaluator.CollectModePaths(a3, a5, PathMode::kShortest, limits);
  ASSERT_FALSE(r.empty());
  for (const PathBinding& pb : r) {
    EXPECT_EQ(pb.path.Length(), 6u);
    EXPECT_FALSE(pb.path.IsTrail());  // t9 repeats
  }
}

TEST_F(DlBasicTest, ReachabilityAndPairs) {
  DlNfa nfa = DlNfa::FromRegex(
      *DlRx("( ()[Transfer] )+ (owner = 'Rebecca')"), g_);
  DlEvaluator evaluator(g_, nfa);
  std::vector<NodeId> from_a4 = evaluator.ReachableFrom(*g_.FindNode("a4"));
  ASSERT_EQ(from_a4.size(), 1u);
  EXPECT_EQ(g_.NodeName(from_a4[0]), "a5");
  auto pairs = evaluator.AllPairs();
  for (const auto& [u, v] : pairs) {
    EXPECT_EQ(g_.NodeName(v), "a5");
  }
  EXPECT_FALSE(pairs.empty());
}

TEST_F(DlBasicTest, CollapseCaptureLoopTruncates) {
  DlNfa nfa = DlNfa::FromRegex(*DlRx("([Transfer^z])+"), g_);
  DlEvaluator evaluator(g_, nfa);
  EnumerationLimits limits;
  limits.max_results = 10;
  EnumerationStats stats;
  std::vector<PathBinding> r = evaluator.CollectModePaths(
      *g_.FindNode("a4"), *g_.FindNode("a6"), PathMode::kAll, limits, &stats);
  EXPECT_TRUE(stats.truncated);  // z can be pumped: list(t9), list(t9,t9), …
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(r[0].path.ToString(g_.skeleton()), "path(t9)");
}

// ---------------------------------------------------------------------------
// Property tests against the oracle.
// ---------------------------------------------------------------------------

struct DlOracleCase {
  uint64_t seed;
  const char* regex;
};

class DlOracleTest : public ::testing::TestWithParam<DlOracleCase> {};

TEST_P(DlOracleTest, EvaluatorMatchesDerivationSemantics) {
  PropertyGraph g = RandomPropertyGraph(5, 8, 3, GetParam().seed);
  RegexPtr r = DlRx(GetParam().regex);
  DlNfa nfa = DlNfa::FromRegex(*r, g);
  DlEvaluator evaluator(g, nfa);
  const size_t max_len = 3;
  EnumerationLimits limits;
  limits.max_length = max_len;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      std::vector<PathBinding> got =
          evaluator.CollectModePaths(u, v, PathMode::kAll, limits);
      std::vector<PathBinding> expected = OracleEval(g, *r, u, v, max_len);
      EXPECT_EQ(got, expected)
          << GetParam().regex << " " << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, DlOracleTest,
    ::testing::Values(
        DlOracleCase{51, "(N)"}, DlOracleCase{52, "[a]"},
        DlOracleCase{53, "()[a]()"}, DlOracleCase{54, "( ()[a^z] )+ ()"},
        DlOracleCase{55, "(k < 2)"}, DlOracleCase{56, "[a][k > 0]"},
        DlOracleCase{57, "(x := k)( [_](k >= x)(x := k) )*"},
        DlOracleCase{58, "()[x := k]( (_)[k > x][x := k] )*()"},
        DlOracleCase{59, "((N) | [a])( [_] | (_) )"},
        DlOracleCase{60, "[a^z](_)[a^w]"}));

// ---------------------------------------------------------------------------
// dl-CRPQs (Section 3.2.2).
// ---------------------------------------------------------------------------

TEST(DlCrpqTest, JoinWithDataTests) {
  PropertyGraph g = Figure3Graph();
  // Accounts x that can reach, by transfers, an account y with a cheap
  // incoming transfer, such that y also reaches Rebecca's account.
  Result<Crpq> q = ParseCrpq(
      "q(x, y) := ( ()[Transfer] )+ [amount < 4500000] () (x, y), "
      "( ()[Transfer] )+ (owner = 'Rebecca') (y, w)",
      RegexDialect::kDl);
  ASSERT_TRUE(q.ok()) << q.error().message();
  Result<CrpqResult> r = EvalDlCrpq(g, q.value());
  ASSERT_TRUE(r.ok()) << r.error().message();
  // The only cheap transfer is t9 (a4 → a6), so y = a6, and x is anything
  // that reaches a4 (all accounts, since the transfer graph is strongly
  // connected).
  std::set<std::string> ys;
  for (const auto& row : r.value().rows) {
    ys.insert(std::string(g.NodeName(std::get<NodeId>(row[1]))));
  }
  EXPECT_EQ(ys, (std::set<std::string>{"a6"}));
  EXPECT_EQ(r.value().rows.size(), 6u);
}

TEST(DlCrpqTest, ShortestModeWithListVariables) {
  PropertyGraph g = Figure3Graph();
  Result<Crpq> q = ParseCrpq(
      "q(z) := shortest ( ()[Transfer^z] )+ ()[Transfer^z]"
      "[amount < 4500000] ( ()[Transfer^z] )* () (@a3, @a5)",
      RegexDialect::kDl);
  ASSERT_TRUE(q.ok()) << q.error().message();
  Result<CrpqResult> r = EvalDlCrpq(g, q.value());
  ASSERT_TRUE(r.ok()) << r.error().message();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(ListToString(g.skeleton(),
                         std::get<ObjectList>(r.value().rows[0][0])),
            "list(t6, t9, t10)");
}

}  // namespace
}  // namespace gqzoo
