#include <gtest/gtest.h>

#include "src/regex/lexer.h"
#include "src/regex/parser.h"
#include "src/regex/printer.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::DlRx;
using testing_util::Rx;

TEST(LexerTest, BasicTokens) {
  Result<std::vector<Token>> tokens = Lex("abc (x)->[y] {1,2} := <= _ _f");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> texts;
  for (const Token& t : tokens.value()) texts.push_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{
                       "abc", "(", "x", ")", "->", "[", "y", "]", "{", "1",
                       ",", "2", "}", ":=", "<=", "_", "_f", ""}));
}

TEST(LexerTest, StringsAndComments) {
  Result<std::vector<Token>> tokens = Lex("\"a b\" 'c' # comment\n x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, Token::Kind::kString);
  EXPECT_EQ(tokens.value()[0].text, "a b");
  EXPECT_EQ(tokens.value()[1].text, "c");
  EXPECT_EQ(tokens.value()[2].text, "x");
}

TEST(LexerTest, UnterminatedString) { EXPECT_FALSE(Lex("\"abc").ok()); }

TEST(PlainRegexParserTest, Atoms) {
  RegexPtr r = Rx("Transfer");
  EXPECT_EQ(r->op(), Regex::Op::kAtom);
  EXPECT_EQ(r->atom().labels[0], "Transfer");
  EXPECT_EQ(r->atom().target, Atom::Target::kEdge);
}

TEST(PlainRegexParserTest, PrecedenceUnionVsConcat) {
  // a b | c parses as (a b) | c.
  RegexPtr r = Rx("a b | c");
  ASSERT_EQ(r->op(), Regex::Op::kUnion);
  EXPECT_EQ(r->left()->op(), Regex::Op::kConcat);
}

TEST(PlainRegexParserTest, PostfixOperators) {
  EXPECT_EQ(Rx("a*")->op(), Regex::Op::kStar);
  EXPECT_EQ(Rx("a+")->op(), Regex::Op::kPlus);
  EXPECT_EQ(Rx("a?")->op(), Regex::Op::kOptional);
  // Nested: (((a*)*)*)* — the Section 6.1 expression.
  RegexPtr nested = Rx("(((a*)*)*)*");
  EXPECT_EQ(nested->op(), Regex::Op::kStar);
  EXPECT_EQ(nested->child()->op(), Regex::Op::kStar);
}

TEST(PlainRegexParserTest, RepetitionDesugars) {
  // a{2} == a a at the language level; structurally a concat.
  RegexPtr r = Rx("a{2}");
  EXPECT_EQ(r->op(), Regex::Op::kConcat);
  EXPECT_EQ(r->NumPositions(), 2u);
  RegexPtr r2 = Rx("a{1,3}");
  EXPECT_EQ(r2->NumPositions(), 3u);
  RegexPtr r3 = Rx("a{2,}");
  EXPECT_EQ(r3->NumPositions(), 3u);  // a a a*
  EXPECT_EQ(Rx("a{0,0}")->op(), Regex::Op::kEpsilon);
}

TEST(PlainRegexParserTest, EpsilonForms) {
  EXPECT_EQ(Rx("eps")->op(), Regex::Op::kEpsilon);
  EXPECT_EQ(Rx("()")->op(), Regex::Op::kEpsilon);
  EXPECT_TRUE(Rx("a?")->Nullable());
  EXPECT_FALSE(Rx("a")->Nullable());
}

TEST(PlainRegexParserTest, WildcardsAndCaptures) {
  RegexPtr any = Rx("_");
  EXPECT_EQ(any->atom().label_kind, Atom::LabelKind::kAny);
  RegexPtr neg = Rx("!{a, b}");
  EXPECT_EQ(neg->atom().label_kind, Atom::LabelKind::kNegSet);
  EXPECT_EQ(neg->atom().labels, (std::vector<std::string>{"a", "b"}));
  RegexPtr cap = Rx("Transfer^z");
  ASSERT_TRUE(cap->atom().capture.has_value());
  EXPECT_EQ(*cap->atom().capture, "z");
  RegexPtr wild_cap = Rx("_^z");
  EXPECT_TRUE(wild_cap->atom().capture.has_value());
}

TEST(PlainRegexParserTest, CaptureVariableCollection) {
  RegexPtr r = Rx("(a^z1 b^z2)* a^z1");
  EXPECT_EQ(r->CaptureVariables(), (std::vector<std::string>{"z1", "z2"}));
}

TEST(PlainRegexParserTest, Errors) {
  EXPECT_FALSE(ParseRegex("a |", RegexDialect::kPlain).ok());
  EXPECT_FALSE(ParseRegex("(a", RegexDialect::kPlain).ok());
  EXPECT_FALSE(ParseRegex("a b)", RegexDialect::kPlain).ok());
  EXPECT_FALSE(ParseRegex("!{}", RegexDialect::kPlain).ok());
  EXPECT_FALSE(ParseRegex("a{3,1}", RegexDialect::kPlain).ok());
  EXPECT_FALSE(ParseRegex("", RegexDialect::kPlain).ok());
  EXPECT_FALSE(ParseRegex("*", RegexDialect::kPlain).ok());
}

TEST(PlainRegexParserTest, ClassPredicates) {
  EXPECT_TRUE(IsPlainRpq(*Rx("a (b|c)* !{d}")));
  EXPECT_FALSE(IsPlainRpq(*Rx("a^z")));
  EXPECT_TRUE(IsListRpq(*Rx("a^z b")));
  EXPECT_FALSE(IsListRpq(*DlRx("(a)")));
  EXPECT_FALSE(IsPlainRpq(*DlRx("[date < 5]")));
}

TEST(DlRegexParserTest, NodeAndEdgeAtoms) {
  RegexPtr node = DlRx("(a)");
  EXPECT_EQ(node->atom().target, Atom::Target::kNode);
  EXPECT_EQ(node->atom().labels[0], "a");
  RegexPtr edge = DlRx("[a]");
  EXPECT_EQ(edge->atom().target, Atom::Target::kEdge);
  RegexPtr anon = DlRx("()");
  EXPECT_EQ(anon->atom().target, Atom::Target::kNode);
  EXPECT_EQ(anon->atom().label_kind, Atom::LabelKind::kAny);
  RegexPtr wild_edge = DlRx("[_]");
  EXPECT_EQ(wild_edge->atom().label_kind, Atom::LabelKind::kAny);
}

TEST(DlRegexParserTest, CapturesAndTests) {
  RegexPtr cap = DlRx("(a^z)");
  EXPECT_EQ(*cap->atom().capture, "z");
  RegexPtr assign = DlRx("(x := date)");
  ASSERT_TRUE(assign->atom().is_test());
  EXPECT_EQ(assign->atom().test->kind, ElementTest::Kind::kAssign);
  EXPECT_EQ(assign->atom().test->data_var, "x");
  EXPECT_EQ(assign->atom().test->property, "date");
  RegexPtr cmp_const = DlRx("[amount < 4500000]");
  ASSERT_TRUE(cmp_const->atom().is_test());
  EXPECT_EQ(cmp_const->atom().test->kind, ElementTest::Kind::kCompareConst);
  EXPECT_EQ(cmp_const->atom().test->op, CompareOp::kLt);
  RegexPtr cmp_var = DlRx("[date > x]");
  EXPECT_EQ(cmp_var->atom().test->kind, ElementTest::Kind::kCompareVar);
  RegexPtr str = DlRx("(owner = 'Mike')");
  EXPECT_EQ(str->atom().test->constant, Value("Mike"));
  RegexPtr neg = DlRx("[k = -3]");
  EXPECT_EQ(neg->atom().test->constant, Value(int64_t{-3}));
}

TEST(DlRegexParserTest, ExampleTwentyOne) {
  // The three expressions of Example 21 parse.
  RegexPtr nodes = DlRx(
      "(a^z)(x := date)( [_](a^z)(date > x)(x := date) )*");
  EXPECT_EQ(nodes->DataVariables(), (std::vector<std::string>{"x"}));
  EXPECT_EQ(nodes->CaptureVariables(), (std::vector<std::string>{"z"}));
  RegexPtr edges = DlRx(
      "[a^z][x := date]( (_)[a^z][date > x][x := date] )*");
  EXPECT_EQ(edges->CaptureVariables(), (std::vector<std::string>{"z"}));
  RegexPtr node_to_node = DlRx(
      "()[a^z][x := date]( (_)[a^z][date > x][x := date] )*()");
  EXPECT_EQ(node_to_node->op(), Regex::Op::kConcat);
}

TEST(DlRegexParserTest, GroupDisambiguation) {
  // ((a) | (b)) is a union of node atoms, not an atom.
  RegexPtr r = DlRx("((a) | (b))");
  EXPECT_EQ(r->op(), Regex::Op::kUnion);
  // ((a)) is a group of one node atom.
  EXPECT_EQ(DlRx("((a))")->op(), Regex::Op::kAtom);
  // ([a][b])* groups edge atoms under a star.
  EXPECT_EQ(DlRx("([a](n)[b])*")->op(), Regex::Op::kStar);
}

TEST(DlRegexParserTest, Errors) {
  EXPECT_FALSE(ParseRegex("a", RegexDialect::kDl).ok());  // bare label
  EXPECT_FALSE(ParseRegex("(a", RegexDialect::kDl).ok());
  EXPECT_FALSE(ParseRegex("[a)", RegexDialect::kDl).ok());
  EXPECT_FALSE(ParseRegex("(x :=)", RegexDialect::kDl).ok());
  EXPECT_FALSE(ParseRegex("(date <)", RegexDialect::kDl).ok());
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PlainPrintParsesBack) {
  RegexPtr r = Rx(GetParam());
  std::string printed = RegexToString(*r, RegexDialect::kPlain);
  Result<RegexPtr> reparsed = ParseRegex(printed, RegexDialect::kPlain);
  ASSERT_TRUE(reparsed.ok()) << printed << ": "
                             << reparsed.error().message();
  EXPECT_EQ(RegexToString(*reparsed.value(), RegexDialect::kPlain), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Plain, RoundTripTest,
    ::testing::Values("a", "a b", "a|b c", "(a|b)*", "a+ b? c*", "eps",
                      "!{a,b} _ a^z", "(a^z b^w)* c", "a{2,4}",
                      "(((a*)*)*)*", "Transfer (Transfer|owner)?"));

class DlRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DlRoundTripTest, DlPrintParsesBack) {
  RegexPtr r = DlRx(GetParam());
  std::string printed = RegexToString(*r, RegexDialect::kDl);
  Result<RegexPtr> reparsed = ParseRegex(printed, RegexDialect::kDl);
  ASSERT_TRUE(reparsed.ok()) << printed << ": "
                             << reparsed.error().message();
  EXPECT_EQ(RegexToString(*reparsed.value(), RegexDialect::kDl), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Dl, DlRoundTripTest,
    ::testing::Values("(a)", "[a]", "()", "(a^z)[b](c)",
                      "((a) | (b))*", "[x := date]",
                      "(a^z)(x := date)([_](a^z)(date > x)(x := date))*",
                      "[amount < 4500000]", "[owner = 'Mike']",
                      "([a](n)[b]){2,3}"));

}  // namespace
}  // namespace gqzoo
