// Engine-level durability tests: recover/mutate/recover cycles through
// QueryEngine::RecoverFrom, checkpoint-on-compaction, checkpoint fallback,
// SetGraph resetting the durable state, the sticky broken-store behavior
// after an injected WAL failure, and recovery idempotence.
//
// tools/gqzoo_crash.cc drives the same machinery across real process kills
// at every failpoint site; these tests pin the in-process behavior that the
// harness builds on.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/graph/graph_io.h"
#include "src/util/failpoint.h"

namespace gqzoo {
namespace {

class TempDir {
 public:
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "gqzoo_recovery_test.XXXXXX")
                           .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

PropertyGraph SeedGraph() {
  Result<PropertyGraph> g = ParsePropertyGraph(
      "node a :Account { balance = 10 }\n"
      "node b :Account\n"
      "edge t0 :Transfer a -> b\n");
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

QueryEngine::Options DurableOptions(const std::string& dir) {
  QueryEngine::Options options;
  options.num_threads = 2;
  options.durability.dir = dir;
  // Compaction (and with it checkpointing) only on explicit CompactNow, so
  // each test controls exactly which checkpoints exist.
  options.mutation.background_compaction = false;
  options.mutation.compact_min_ops = size_t{1} << 30;
  options.mutation.compact_ratio = 1e9;
  return options;
}

std::unique_ptr<QueryEngine> MustOpen(const std::string& dir) {
  Result<std::unique_ptr<QueryEngine>> r =
      QueryEngine::RecoverFrom(SeedGraph(), DurableOptions(dir));
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message());
  return r.ok() ? std::move(r).value() : nullptr;
}

void MustApply(QueryEngine* engine, std::vector<MutationOp> ops) {
  MutationBatch batch;
  batch.ops = std::move(ops);
  Result<QueryEngine::MutationResult> r = engine->ApplyMutation(batch);
  ASSERT_TRUE(r.ok()) << r.error().message();
  ASSERT_EQ(r.value().applied, batch.ops.size());
}

std::string Render(const QueryEngine& engine) {
  return PropertyGraphToText(*engine.graph_snapshot());
}

TEST(RecoveryTest, FreshDirectoryThenRecoverCycles) {
  TempDir dir;
  std::string after_writes;
  {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    EXPECT_TRUE(engine->durable());
    EXPECT_FALSE(engine->recovery_info().recovered);
    MustApply(engine.get(), {MutationOp::AddNode("c", "Bank"),
                             MutationOp::AddEdge("t1", "b", "c", "Owns")});
    MustApply(engine.get(),
              {MutationOp::SetNodeProperty("c", "open", Value(true))});
    after_writes = Render(*engine);
  }
  {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    const storage::RecoveryInfo& info = engine->recovery_info();
    EXPECT_TRUE(info.recovered);
    EXPECT_EQ(info.batches_replayed, 2u);
    EXPECT_EQ(info.ops_replayed, 3u);
    EXPECT_EQ(info.last_lsn, 2u);
    EXPECT_EQ(Render(*engine), after_writes);
    // More writes on top of the recovered state...
    MustApply(engine.get(),
              {MutationOp::SetNodeProperty("a", "balance", Value(11))});
    after_writes = Render(*engine);
  }
  {
    // ...survive a second cycle; recovery is not a one-shot trick.
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(Render(*engine), after_writes);
  }
}

TEST(RecoveryTest, RecoveryIsIdempotent) {
  TempDir dir;
  std::string expected;
  {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    MustApply(engine.get(), {MutationOp::AddNode("c", "Bank")});
    expected = Render(*engine);
  }
  for (int round = 0; round < 3; ++round) {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(Render(*engine), expected) << "round " << round;
  }
  // After the first recovery wrote its checkpoint, later opens find the
  // directory already clean and replay nothing — and take the instant
  // restart path: the checkpoint is mmap'd and served in place rather
  // than decoded and rebuilt.
  std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->recovery_info().batches_replayed, 0u);
  EXPECT_TRUE(engine->recovery_info().mapped);
  EXPECT_TRUE(engine->graph_snapshot()->is_mapped());
}

TEST(RecoveryTest, InstantRestartMapsAndStaysWritable) {
  TempDir dir;
  std::string expected;
  {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    MustApply(engine.get(), {MutationOp::AddNode("c", "Bank"),
                             MutationOp::AddEdge("t1", "b", "c", "Owns")});
    expected = Render(*engine);
  }
  {
    // First reopen replays the WAL (dirty shutdown shape) and leaves a
    // covering checkpoint + empty log behind.
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    EXPECT_FALSE(engine->recovery_info().mapped);
    EXPECT_EQ(Render(*engine), expected);
  }
  std::string after_mapped_write;
  {
    // Second reopen finds the clean shape and maps. The mapped epoch is
    // fully writable: mutations layer a delta overlay over the mapped
    // base, exactly as over a plain one.
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    EXPECT_TRUE(engine->recovery_info().mapped);
    EXPECT_EQ(engine->recovery_info().batches_replayed, 0u);
    EXPECT_EQ(Render(*engine), expected);
    MustApply(engine.get(),
              {MutationOp::SetNodeProperty("c", "open", Value(true))});
    after_mapped_write = Render(*engine);
    EXPECT_NE(after_mapped_write, expected);
  }
  {
    // The write logged over the mapped base replays like any other.
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(Render(*engine), after_mapped_write);
  }
}

TEST(RecoveryTest, MapCheckpointsOffFallsBackToRebuild) {
  TempDir dir;
  std::string expected;
  {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    MustApply(engine.get(), {MutationOp::AddNode("c", "Bank")});
    expected = Render(*engine);
  }
  { std::unique_ptr<QueryEngine> engine = MustOpen(dir.path()); }
  QueryEngine::Options options = DurableOptions(dir.path());
  options.durability.map_checkpoints = false;
  Result<std::unique_ptr<QueryEngine>> r =
      QueryEngine::RecoverFrom(SeedGraph(), std::move(options));
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_FALSE(r.value()->recovery_info().mapped);
  EXPECT_FALSE(r.value()->graph_snapshot()->is_mapped());
  EXPECT_EQ(Render(*r.value()), expected);
}

TEST(RecoveryTest, CompactionWritesACoveringCheckpoint) {
  TempDir dir;
  std::string expected;
  uint64_t last_lsn = 0;
  {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    for (int i = 0; i < 8; ++i) {
      MustApply(engine.get(),
                {MutationOp::AddNode("n" + std::to_string(i), "Account")});
      ++last_lsn;
    }
    ASSERT_TRUE(engine->CompactNow());
    // One more batch after the checkpoint: recovery must replay exactly it.
    MustApply(engine.get(), {MutationOp::SetLabel("n0", "Bank")});
    ++last_lsn;
    expected = Render(*engine);
  }
  std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
  ASSERT_NE(engine, nullptr);
  const storage::RecoveryInfo& info = engine->recovery_info();
  EXPECT_EQ(info.checkpoint_lsn, last_lsn - 1)
      << "the compaction checkpoint should cover every pre-compaction batch";
  EXPECT_EQ(info.batches_replayed, 1u);
  EXPECT_EQ(info.last_lsn, last_lsn);
  EXPECT_EQ(Render(*engine), expected);
}

TEST(RecoveryTest, SetGraphResetsTheDurableState) {
  TempDir dir;
  Result<PropertyGraph> replacement = ParsePropertyGraph(
      "node x :Fresh { v = 1 }\n"
      "node y :Fresh\n"
      "edge e :Link x -> y\n");
  ASSERT_TRUE(replacement.ok());
  std::string expected;
  {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    MustApply(engine.get(), {MutationOp::AddNode("doomed", "Account")});
    engine->SetGraph(std::move(replacement).value());
    MustApply(engine.get(),
              {MutationOp::SetNodeProperty("y", "v", Value(2))});
    expected = Render(*engine);
    EXPECT_EQ(expected.find("doomed"), std::string::npos);
  }
  std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(Render(*engine), expected)
      << "recovery must see the replaced graph plus the post-SetGraph write, "
         "not any pre-SetGraph state";
}

TEST(RecoveryTest, FailedWalAppendBreaksTheStoreUntilRestart) {
  TempDir dir;
  std::string before_failure;
  {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    MustApply(engine.get(), {MutationOp::AddNode("c", "Bank")});
    before_failure = Render(*engine);

    // Soft-fail the next WAL append: the write must NOT be acknowledged and
    // must NOT be visible, and the store goes sticky-broken.
    Failpoint::Arm("storage.wal.append.before");
    MutationBatch batch;
    batch.ops = {MutationOp::AddNode("lost", "Account")};
    Result<QueryEngine::MutationResult> r = engine->ApplyMutation(batch);
    Failpoint::DisarmAll();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(Render(*engine), before_failure)
        << "an unlogged write must not be published";

    // Every later write fails kUnavailable without touching state.
    Result<QueryEngine::MutationResult> later = engine->ApplyMutation(batch);
    ASSERT_FALSE(later.ok());
    EXPECT_EQ(later.error().code(), ErrorCode::kUnavailable);
    EXPECT_FALSE(engine->CompactNow())
        << "a broken store must not checkpoint";
  }
  // Restart recovers everything acked before the failure.
  std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(Render(*engine), before_failure);
}

TEST(RecoveryTest, TornWalTailIsTruncatedWithAWarning) {
  TempDir dir;
  std::string expected;
  {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    MustApply(engine.get(), {MutationOp::AddNode("c", "Bank")});
    expected = Render(*engine);
  }
  {
    std::ofstream out(dir.path() + "/wal.log",
                      std::ios::binary | std::ios::app);
    out << "\x20torn";  // shorter than a frame header: an interrupted append
  }
  std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(engine->recovery_info().tail_truncated);
  EXPECT_FALSE(engine->recovery_info().warning.empty());
  EXPECT_EQ(Render(*engine), expected);
  // The recovery checkpoint physically removed the tail: a second open is
  // clean and warning-free.
  engine = MustOpen(dir.path());
  ASSERT_NE(engine, nullptr);
  EXPECT_FALSE(engine->recovery_info().tail_truncated);
}

TEST(RecoveryTest, MissingWalIsDataLoss) {
  TempDir dir;
  { ASSERT_NE(MustOpen(dir.path()), nullptr); }
  std::filesystem::remove(dir.path() + "/wal.log");
  Result<std::unique_ptr<QueryEngine>> r =
      QueryEngine::RecoverFrom(SeedGraph(), DurableOptions(dir.path()));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDataLoss);
}

TEST(RecoveryTest, AllCheckpointsCorruptIsDataLoss) {
  TempDir dir;
  { ASSERT_NE(MustOpen(dir.path()), nullptr); }
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) != 0) continue;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "not a checkpoint";
  }
  Result<std::unique_ptr<QueryEngine>> r =
      QueryEngine::RecoverFrom(SeedGraph(), DurableOptions(dir.path()));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDataLoss);
}

TEST(RecoveryTest, CorruptNewestCheckpointFallsBackToTheOlderOne) {
  // Build the one directory shape where an older checkpoint is genuinely
  // load-bearing: a checkpoint that renamed into place but whose WAL
  // rotation never happened, so the old WAL still holds every record above
  // the *older* checkpoint. (An injected failure right after the rename
  // leaves exactly that; the crash harness produces the same shape with a
  // real kill at storage.ckpt.after_rename.)
  TempDir dir;
  std::string expected;
  {
    std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
    ASSERT_NE(engine, nullptr);
    for (int i = 0; i < 3; ++i) {
      MustApply(engine.get(),
                {MutationOp::AddNode("n" + std::to_string(i), "Account")});
    }
    expected = Render(*engine);
    Failpoint::Arm("storage.ckpt.after_rename");
    engine->CompactNow();  // folds, then fails to finish the checkpoint
    Failpoint::DisarmAll();
    EXPECT_EQ(Render(*engine), expected);
  }

  // Directory now: checkpoint-0 (init), checkpoint-3 (renamed before the
  // injected failure), wal.log with records 1..3. Damage checkpoint-3;
  // recovery must warn, fall back to checkpoint-0, and replay the WAL to
  // the identical state.
  std::string newest = dir.path() + "/checkpoint-3";
  ASSERT_TRUE(std::filesystem::exists(newest));
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    f.put('\x7f');
  }
  std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
  ASSERT_NE(engine, nullptr);
  EXPECT_FALSE(engine->recovery_info().warning.empty())
      << "falling back to an older checkpoint must be warned about";
  EXPECT_EQ(engine->recovery_info().checkpoint_lsn, 0u);
  EXPECT_EQ(engine->recovery_info().batches_replayed, 3u);
  EXPECT_EQ(Render(*engine), expected);
}

TEST(RecoveryTest, GroupCommitWindowIsFlushedByDestructorOnlyExit) {
  TempDir dir;
  uint64_t acked = 0;
  {
    QueryEngine::Options options = DurableOptions(dir.path());
    // A window far longer than the test: no append ever observes it
    // elapsed, so every acked batch sits in the open group-commit window
    // until shutdown. The destructor must flush that window (before the
    // pool teardown, whose shutdown-time compactions can rotate the WAL)
    // — an acked write may not evaporate on a clean destructor-only exit.
    options.durability.group_commit_window_ms = 10u * 60 * 1000;
    Result<std::unique_ptr<QueryEngine>> opened =
        QueryEngine::RecoverFrom(SeedGraph(), std::move(options));
    ASSERT_TRUE(opened.ok()) << opened.error().message();
    std::unique_ptr<QueryEngine> engine = std::move(opened).value();
    for (int i = 0; i < 5; ++i) {
      MustApply(engine.get(),
                {MutationOp::AddNode("n" + std::to_string(i), "Bank")});
      ++acked;
    }
    // No FlushWal, no shell-style cleanup: the destructor is the exit.
  }
  std::unique_ptr<QueryEngine> engine = MustOpen(dir.path());
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(engine->recovery_info().recovered);
  EXPECT_EQ(engine->recovery_info().batches_replayed, acked);
  EXPECT_EQ(engine->recovery_info().last_lsn, acked);
}

TEST(RecoveryTest, RamOnlyEngineHasNoDurableState) {
  QueryEngine::Options options;
  options.num_threads = 2;
  Result<std::unique_ptr<QueryEngine>> r =
      QueryEngine::RecoverFrom(SeedGraph(), std::move(options));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value()->durable());
  EXPECT_FALSE(r.value()->recovery_info().recovered);
  MustApply(r.value().get(), {MutationOp::AddNode("c", "Bank")});
}

}  // namespace
}  // namespace gqzoo
