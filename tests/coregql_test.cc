#include <gtest/gtest.h>

#include <set>

#include "src/coregql/algebra.h"
#include "src/coregql/pattern_eval.h"
#include "src/coregql/pattern_parser.h"
#include "src/coregql/query.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"

namespace gqzoo {
namespace {

CorePatternPtr Pat(const std::string& text) {
  Result<CorePatternPtr> p = ParseCorePattern(text);
  if (!p.ok()) {
    ADD_FAILURE() << text << ": " << p.error().message();
    return CorePattern::Node(std::nullopt, std::nullopt);
  }
  return p.value();
}

// A chain with integer property k on nodes and edges for condition tests.
PropertyGraph ValueChain(const std::vector<int64_t>& node_values,
                         const std::vector<int64_t>& edge_values) {
  PropertyGraph g;
  for (size_t i = 0; i < node_values.size(); ++i) {
    NodeId n = g.AddNode("n" + std::to_string(i), "N");
    g.SetProperty(ObjectRef::Node(n), "k", Value(node_values[i]));
  }
  for (size_t i = 0; i < edge_values.size(); ++i) {
    EdgeId e = g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                         "a");
    g.SetProperty(ObjectRef::Edge(e), "k", Value(edge_values[i]));
  }
  return g;
}

TEST(CorePatternParserTest, AtomsAndSugar) {
  CorePatternPtr node = Pat("(x:Account)");
  EXPECT_EQ(node->kind(), CorePattern::Kind::kNode);
  EXPECT_EQ(*node->var(), "x");
  EXPECT_EQ(*node->label(), "Account");
  CorePatternPtr anon = Pat("()");
  EXPECT_FALSE(anon->var().has_value());
  CorePatternPtr edge = Pat("-[e:Transfer]->");
  EXPECT_EQ(edge->kind(), CorePattern::Kind::kEdge);
  EXPECT_EQ(*edge->var(), "e");
  CorePatternPtr arrow = Pat("->");
  EXPECT_EQ(arrow->kind(), CorePattern::Kind::kEdge);
  EXPECT_FALSE(arrow->var().has_value());
}

TEST(CorePatternParserTest, FreeVariableRules) {
  // FV of a repetition is empty (Section 4.1.1).
  CorePatternPtr star = Pat("( (u)->(v) )*");
  EXPECT_TRUE(star->FreeVariables().empty());
  EXPECT_EQ(star->AllVariables(),
            (std::vector<std::string>{"u", "v"}));
  CorePatternPtr seq = Pat("(x) -[e]-> (y)");
  EXPECT_EQ(seq->FreeVariables(),
            (std::vector<std::string>{"x", "e", "y"}));
  // Disjunction arms must have equal FV.
  EXPECT_TRUE(ParseCorePattern("((x)->(y) | (x)(y))").ok());
  EXPECT_FALSE(ParseCorePattern("((x)->(y) | (x)(z))").ok());
}

TEST(CorePatternParserTest, ConditionsParse) {
  CorePatternPtr p = Pat("( (u)-[e]->(v) WHERE u.k < v.k AND NOT e.w = 3 )");
  ASSERT_EQ(p->kind(), CorePattern::Kind::kCondition);
  EXPECT_EQ(p->cond()->kind(), CoreCondition::Kind::kAnd);
  CorePatternPtr lbl = Pat("( (u)->(v) WHERE label(u) = Account OR v:N )");
  EXPECT_EQ(lbl->cond()->kind(), CoreCondition::Kind::kOr);
}

TEST(CorePatternParserTest, Errors) {
  EXPECT_FALSE(ParseCorePattern("(x").ok());
  EXPECT_FALSE(ParseCorePattern("-[e]").ok());
  EXPECT_FALSE(ParseCorePattern("(x) WHERE x.k < 1").ok());  // WHERE not in group
  EXPECT_FALSE(ParseCorePattern("( (x)->(y) WHERE )").ok());
  EXPECT_FALSE(ParseCorePattern("(x){2,1}").ok());
}

TEST(CorePatternEvalTest, NodeEdgeAndLabels) {
  PropertyGraph g = Figure3Graph();
  Result<std::vector<CorePairRow>> nodes =
      EvalPatternPairs(g, *Pat("(x:Account)"));
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes.value().size(), 6u);
  Result<std::vector<CorePairRow>> edges =
      EvalPatternPairs(g, *Pat("-[e:Transfer]->"));
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges.value().size(), 10u);
  Result<std::vector<CorePairRow>> none =
      EvalPatternPairs(g, *Pat("(x:Nothing)"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST(CorePatternEvalTest, ConsecutiveNodeVariablesJoinOnSameNode) {
  // Example 1's parenthetical: (u)(v) must match the same node.
  PropertyGraph g = Figure3Graph();
  Result<std::vector<CorePairRow>> rows =
      EvalPatternPairs(g, *Pat("(u)(v)"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), g.NumNodes());
  for (const CorePairRow& r : rows.value()) {
    EXPECT_EQ(r.mu.at("u"), r.mu.at("v"));
  }
}

TEST(CorePatternEvalTest, Example1RepeatedEdgeVariableMeansSelfJoin) {
  // (x) ()-[z:a]->() ()-[z:a]->() (y): both z occurrences must bind the
  // same edge; combined with the node joins this only matches self-loops.
  PropertyGraph g;
  NodeId u = g.AddNode("u", "N");
  NodeId v = g.AddNode("v", "N");
  g.AddEdge(u, u, "a", "loop");
  g.AddEdge(u, v, "a", "straight");
  Result<std::vector<CorePairRow>> rows = EvalPatternPairs(
      g, *Pat("(x) ()-[z:a]->() ()-[z:a]->() (y)"));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(g.ObjectName(rows.value()[0].mu.at("z")), "loop");
  EXPECT_EQ(rows.value()[0].src, u);
  EXPECT_EQ(rows.value()[0].tgt, u);
}

TEST(CorePatternEvalTest, Example1RepetitionIsNotSelfJoin) {
  // (x) ( ()-[z:a]->() ){2} (y): the repetition erases z and matches any
  // 2-edge a-path — not equivalent to the self-join pattern above.
  PropertyGraph g;
  NodeId u = g.AddNode("u", "N");
  NodeId v = g.AddNode("v", "N");
  NodeId w = g.AddNode("w", "N");
  g.AddEdge(u, v, "a");
  g.AddEdge(v, w, "a");
  CorePatternPtr rep = Pat("(x) ( ()-[z:a]->() ){2} (y)");
  EXPECT_EQ(rep->FreeVariables(), (std::vector<std::string>{"x", "y"}));
  Result<std::vector<CorePairRow>> rows = EvalPatternPairs(g, *rep);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0].src, u);
  EXPECT_EQ(rows.value()[0].tgt, w);
  // The join-variant matches nothing here (no self-loop).
  Result<std::vector<CorePairRow>> join_rows = EvalPatternPairs(
      g, *Pat("(x) ()-[z:a]->() ()-[z:a]->() (y)"));
  ASSERT_TRUE(join_rows.ok());
  EXPECT_TRUE(join_rows.value().empty());
}

TEST(CorePatternEvalTest, RepetitionBounds) {
  PropertyGraph g = ToPropertyGraph(Chain(4));  // u1 → ... → u5
  auto count = [&](const std::string& pattern) {
    Result<std::vector<CorePairRow>> rows = EvalPatternPairs(g, *Pat(pattern));
    EXPECT_TRUE(rows.ok());
    return rows.value().size();
  };
  EXPECT_EQ(count("(x) -> (y)"), 4u);
  EXPECT_EQ(count("(x) ->{2} (y)"), 3u);
  EXPECT_EQ(count("(x) ->{2,3} (y)"), 5u);       // 3 + 2
  EXPECT_EQ(count("(x) ->* (y)"), 15u);          // pairs u_i ⇝ u_j, i ≤ j
  EXPECT_EQ(count("(x) ->+ (y)"), 10u);
  EXPECT_EQ(count("(x) ->? (y)"), 9u);           // 5 identity + 4 edges
  EXPECT_EQ(count("(x) ->{0} (y)"), 5u);         // identity on all nodes
}

TEST(CorePatternEvalTest, RepetitionOverCyclesTerminates) {
  PropertyGraph g = ToPropertyGraph(Cycle(3));
  Result<std::vector<CorePairRow>> rows =
      EvalPatternPairs(g, *Pat("(x) ->* (y)"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 9u);  // complete
  Result<std::vector<CorePairRow>> exact =
      EvalPatternPairs(g, *Pat("(x) ->{5} (y)"));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value().size(), 3u);  // rotation by 5 ≡ 2
}

TEST(CorePatternEvalTest, PiIncIncreasingNodeValues) {
  // π_inc from Section 5.1: increasing node property along the path.
  PropertyGraph inc = ValueChain({1, 2, 3, 4}, {0, 0, 0});
  CorePatternPtr pi_inc = Pat("(x) ( ((u)->(v)) WHERE u.k < v.k )* (y)");
  Result<std::vector<CorePairRow>> rows = EvalPatternPairs(inc, *pi_inc);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 10u);  // all i ≤ j pairs
  PropertyGraph dec = ValueChain({1, 3, 2, 4}, {0, 0, 0});
  Result<std::vector<CorePairRow>> rows2 = EvalPatternPairs(dec, *pi_inc);
  ASSERT_TRUE(rows2.ok());
  // n1 ⇝ n2 is blocked by 3 > 2: reachable pairs are the increasing runs.
  std::set<std::pair<NodeId, NodeId>> got;
  for (const CorePairRow& r : rows2.value()) got.insert({r.src, r.tgt});
  EXPECT_TRUE(got.count({0, 1}));
  EXPECT_FALSE(got.count({1, 2}));
  EXPECT_FALSE(got.count({0, 3}));
  EXPECT_TRUE(got.count({2, 3}));
}

TEST(CorePatternEvalTest, Prop23NaiveEdgePatternAcceptsCounterexample) {
  // Section 5.1: the naive two-edge-window pattern accepts the 4-edge path
  // with edge values 3, 4, 1, 2 because the window advances in steps of 2.
  PropertyGraph g = ValueChain({0, 0, 0, 0, 0}, {3, 4, 1, 2});
  CorePatternPtr naive =
      Pat("(x) ( ( ()-[u]->()-[v]->() ) WHERE u.k < v.k )* (y)");
  Result<std::vector<CorePairRow>> rows = EvalPatternPairs(g, *naive);
  ASSERT_TRUE(rows.ok());
  std::set<std::pair<NodeId, NodeId>> got;
  for (const CorePairRow& r : rows.value()) got.insert({r.src, r.tgt});
  EXPECT_TRUE(got.count({0, 4}));  // accepted despite 4 > 1 in the middle
}

TEST(CorePathEvalTest, PathsMatchPairsProjection) {
  // Path-level evaluation projected to endpoints+µ equals pair-level
  // evaluation, on graphs where [[π]] is finite.
  PropertyGraph g = ToPropertyGraph(Chain(3));
  for (const char* text :
       {"(x) -> (y)", "(x) ->* (y)", "(x) ( (u)->(v) )? (y)",
        "(x) (->|->->) (y)"}) {
    CorePatternPtr p = Pat(text);
    Result<std::vector<CorePairRow>> pairs = EvalPatternPairs(g, *p);
    Result<CorePathEvalResult> paths = EvalPatternPaths(g, *p);
    ASSERT_TRUE(pairs.ok());
    ASSERT_TRUE(paths.ok());
    EXPECT_FALSE(paths.value().truncated);
    std::set<CorePairRow> projected;
    for (const CorePathRow& r : paths.value().rows) {
      projected.insert({r.path.Src(g.skeleton()), r.path.Tgt(g.skeleton()),
                        r.mu});
    }
    std::set<CorePairRow> expected(pairs.value().begin(),
                                   pairs.value().end());
    EXPECT_EQ(projected, expected) << text;
  }
}

TEST(CorePathEvalTest, PathsAreNodeToNode) {
  PropertyGraph g = Figure3Graph();
  Result<CorePathEvalResult> paths =
      EvalPatternPaths(g, *Pat("-[e:Transfer]->"));
  ASSERT_TRUE(paths.ok());
  for (const CorePathRow& r : paths.value().rows) {
    EXPECT_TRUE(r.path.StartsWithNode());
    EXPECT_TRUE(r.path.EndsWithNode());
  }
  EXPECT_EQ(paths.value().rows.size(), 10u);
}

TEST(CorePathEvalTest, CyclicStarTruncates) {
  PropertyGraph g = ToPropertyGraph(Cycle(2));
  CorePathEvalOptions options;
  options.max_path_length = 6;
  Result<CorePathEvalResult> paths =
      EvalPatternPaths(g, *Pat("(x) ->* (y)"), options);
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(paths.value().truncated);
  for (const CorePathRow& r : paths.value().rows) {
    EXPECT_LE(r.path.Length(), 6u);
  }
}

TEST(CoreAlgebraTest, SelectProjectJoinRenameSetOps) {
  CoreRelation r({"x", "y"});
  r.AddRow({Value(1), Value(10)});
  r.AddRow({Value(2), Value(20)});
  r.AddRow({Value(2), Value(20)});  // duplicate
  r.Normalize();
  EXPECT_EQ(r.NumRows(), 2u);

  CoreRelation sel = Select(r, [](const std::vector<CoreCell>& row) {
    return Value::Compare(std::get<Value>(row[0]), CompareOp::kGt, Value(1));
  });
  EXPECT_EQ(sel.NumRows(), 1u);

  Result<CoreRelation> proj = Project(r, {"y"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj.value().NumRows(), 2u);
  EXPECT_FALSE(Project(r, {"zzz"}).ok());

  CoreRelation s({"y", "z"});
  s.AddRow({Value(10), Value(100)});
  s.AddRow({Value(30), Value(300)});
  CoreRelation joined = NaturalJoinRel(r, s);
  ASSERT_EQ(joined.NumRows(), 1u);
  EXPECT_EQ(joined.schema(),
            (std::vector<std::string>{"x", "y", "z"}));

  Result<CoreRelation> renamed = Rename(r, "x", "w");
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(renamed.value().schema(),
            (std::vector<std::string>{"w", "y"}));
  EXPECT_FALSE(Rename(r, "zzz", "w").ok());
  EXPECT_FALSE(Rename(r, "x", "y").ok());

  CoreRelation t({"x", "y"});
  t.AddRow({Value(1), Value(10)});
  t.AddRow({Value(3), Value(30)});
  Result<CoreRelation> u = UnionRel(r, t);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().NumRows(), 3u);
  Result<CoreRelation> d = DifferenceRel(r, t);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().NumRows(), 1u);
  Result<CoreRelation> i = IntersectRel(r, t);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i.value().NumRows(), 1u);
  EXPECT_FALSE(UnionRel(r, s).ok());  // schema mismatch
}

TEST(CoreQueryTest, Section413ExampleQuery) {
  // Nodes u with property s connected to two different nodes with the same
  // value of property p: π_{x,x.s}(σ_{x1≠x2 ∧ x1.p=x2.p}(R1 ⋈ R2)).
  PropertyGraph g;
  NodeId hub = g.AddNode("hub", "N");
  g.SetProperty(ObjectRef::Node(hub), "s", Value("hubby"));
  NodeId other = g.AddNode("other", "N");
  g.SetProperty(ObjectRef::Node(other), "s", Value("o"));
  NodeId c1 = g.AddNode("c1", "N");
  NodeId c2 = g.AddNode("c2", "N");
  NodeId c3 = g.AddNode("c3", "N");
  g.SetProperty(ObjectRef::Node(c1), "p", Value(7));
  g.SetProperty(ObjectRef::Node(c2), "p", Value(7));
  g.SetProperty(ObjectRef::Node(c3), "p", Value(9));
  g.AddEdge(hub, c1, "a");
  g.AddEdge(hub, c2, "a");
  g.AddEdge(other, c1, "a");
  g.AddEdge(other, c3, "a");

  Result<CoreQueryResult> r = RunCoreGql(
      g,
      "MATCH (x)->(x1), (x)->(x2) "
      "WHERE NOT x1.p = x2.p OR x1.p = x2.p RETURN x, x.s, x1, x2");
  ASSERT_TRUE(r.ok()) << r.error().message();
  // Do it properly through the algebra, as in the paper.
  Result<CoreQueryResult> q = RunCoreGql(
      g,
      "MATCH (x)->(x1), (x)->(x2) WHERE x1.p = x2.p RETURN x.s, x1, x2");
  ASSERT_TRUE(q.ok());
  // Filter x1 ≠ x2 via the algebra layer.
  const CoreRelation& rel = q.value().relation;
  size_t i1 = rel.AttrIndex("x1");
  size_t i2 = rel.AttrIndex("x2");
  CoreRelation distinct = Select(rel, [&](const std::vector<CoreCell>& row) {
    return !(row[i1] == row[i2]);
  });
  Result<CoreRelation> out = Project(distinct, {"x.s"});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().NumRows(), 1u);
  EXPECT_EQ(std::get<Value>(out.value().rows()[0][0]), Value("hubby"));
}

TEST(CoreQueryTest, ReturnPropertyDropsIncompatibleRows) {
  // µ_Ω compatibility: rows whose element lacks the property vanish.
  PropertyGraph g;
  NodeId a = g.AddNode("a", "N");
  g.SetProperty(ObjectRef::Node(a), "k", Value(1));
  g.AddNode("b", "N");  // no k
  Result<CoreQueryResult> r = RunCoreGql(g, "MATCH (x) RETURN x, x.k");
  ASSERT_TRUE(r.ok()) << r.error().message();
  ASSERT_EQ(r.value().relation.NumRows(), 1u);
  EXPECT_EQ(CoreCellToString(g.skeleton(), r.value().relation.rows()[0][0]),
            "a");
}

TEST(CoreQueryTest, PathBindingAndExcept) {
  // Section 5.2 "Turning to Complement for Help": all paths minus the
  // paths with a non-increasing adjacent edge pair.
  PropertyGraph g = ValueChain({0, 0, 0, 0, 0}, {3, 4, 1, 2});
  const std::string all =
      "MATCH p = (s) ->* (t) WHERE s.k = 0 AND t.k = 0 RETURN p";
  const std::string violating =
      "MATCH p = (s) ->* ( ( ()-[u]->()-[v]->() ) WHERE u.k >= v.k ) ->* (t) "
      "RETURN p";
  Result<CoreQueryResult> diff = RunCoreGql(g, all + " EXCEPT " + violating);
  ASSERT_TRUE(diff.ok()) << diff.error().message();
  // Increasing-edge-value paths on 3,4,1,2: all length ≤ 1 paths, the (3,4)
  // prefix pair, and the (1,2) suffix pair: 5 + 4 + 2 = 11.
  EXPECT_EQ(diff.value().relation.NumRows(), 11u);
  for (const auto& row : diff.value().relation.rows()) {
    const Path& p = std::get<Path>(row[0]);
    std::vector<EdgeId> edges = p.Edges();
    for (size_t i = 0; i + 1 < edges.size(); ++i) {
      Value a = *g.GetProperty(ObjectRef::Edge(edges[i]), "k");
      Value b = *g.GetProperty(ObjectRef::Edge(edges[i + 1]), "k");
      EXPECT_TRUE(Value::Compare(a, CompareOp::kLt, b));
    }
  }
}

TEST(CoreQueryTest, UnionAndIntersect) {
  PropertyGraph g = Figure3Graph();
  Result<CoreQueryResult> u = RunCoreGql(
      g,
      "MATCH (x) WHERE x.owner = 'Mike' RETURN x "
      "UNION MATCH (x) WHERE x.owner = 'Megan' RETURN x");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u.value().relation.NumRows(), 2u);
  Result<CoreQueryResult> i = RunCoreGql(
      g,
      "MATCH (x:Account) RETURN x "
      "INTERSECT MATCH (x) WHERE x.owner = 'Mike' RETURN x");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i.value().relation.NumRows(), 1u);
}

TEST(CoreQueryTest, ParseErrors) {
  EXPECT_FALSE(ParseCoreGqlQuery("MATCH (x)").ok());
  EXPECT_FALSE(ParseCoreGqlQuery("RETURN x").ok());
  EXPECT_FALSE(ParseCoreGqlQuery("MATCH (x) RETURN").ok());
  EXPECT_FALSE(ParseCoreGqlQuery("MATCH (x) RETURN x FOO").ok());
  PropertyGraph g = Figure3Graph();
  EXPECT_FALSE(RunCoreGql(g, "MATCH (x) RETURN y").ok());
}

TEST(CorePatternRoundTripTest, ToStringReparses) {
  for (const char* text :
       {"(x:Account) -[e:Transfer]-> (y)", "(x) ( (u)->(v) WHERE u.k < v.k )* (y)",
        "(x) ->{2,5} (y)", "((x)->(y) | (x)(y))"}) {
    CorePatternPtr p = Pat(text);
    Result<CorePatternPtr> reparsed = ParseCorePattern(p->ToString());
    ASSERT_TRUE(reparsed.ok()) << p->ToString() << ": "
                               << reparsed.error().message();
    EXPECT_EQ(reparsed.value()->ToString(), p->ToString());
  }
}

}  // namespace
}  // namespace gqzoo
