// Unit tests for the unified relational kernel (src/rel/rel.h) on the
// degenerate shapes the evaluator integration tests rarely reach: empty
// inputs, all-duplicate inputs, arity-0 relations, and budget trips
// mid-operator — plus the differential suite pinning the columnar batch
// kernel (src/rel/batch.h) to the row kernel: identical rows, identical
// row order, and identical budget accounting on every operator.

#include "src/rel/rel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/crpq/crpq.h"
#include "src/rel/batch.h"
#include "src/util/query_context.h"

namespace gqzoo {
namespace rel {
namespace {

using Cell = CrpqValue;  // variant<NodeId, ObjectList>; NodeId is enough here
using IntTable = Table<Cell>;

Cell N(uint32_t id) { return Cell(NodeId(id)); }

IntTable Make(std::vector<std::string> schema,
              std::vector<std::vector<uint32_t>> rows) {
  IntTable t;
  t.schema = std::move(schema);
  for (const auto& row : rows) {
    std::vector<Cell> cells;
    for (uint32_t v : row) cells.push_back(N(v));
    t.rows.push_back(std::move(cells));
  }
  return t;
}

TEST(JoinLayoutTest, SharedAndTailColumns) {
  JoinLayout layout = ComputeJoinLayout({"x", "y"}, {"y", "z"});
  EXPECT_EQ(layout.shared_a, std::vector<size_t>({1}));
  EXPECT_EQ(layout.shared_b, std::vector<size_t>({0}));
  EXPECT_EQ(layout.b_only, std::vector<size_t>({1}));
}

TEST(NaturalJoinTest, EmptyLeftInput) {
  IntTable a = Make({"x", "y"}, {});
  IntTable b = Make({"y", "z"}, {{1, 2}});
  IntTable out = NaturalJoin(a, b);
  EXPECT_EQ(out.schema, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_TRUE(out.rows.empty());
}

TEST(NaturalJoinTest, EmptyRightInput) {
  IntTable a = Make({"x", "y"}, {{1, 2}});
  IntTable b = Make({"y", "z"}, {});
  EXPECT_TRUE(NaturalJoin(a, b).rows.empty());
}

TEST(NaturalJoinTest, NoSharedAttributesIsCartesianProduct) {
  IntTable a = Make({"x"}, {{1}, {2}});
  IntTable b = Make({"y"}, {{3}, {4}});
  IntTable out = NaturalJoin(a, b);
  EXPECT_EQ(out.schema, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(out.rows.size(), 4u);
}

TEST(NaturalJoinTest, AllDuplicateKeysMultiplyOut) {
  // Set semantics holds for *normalized* inputs; the kernel itself must
  // still be exact on duplicate keys (each a-row pairs with each match).
  IntTable a = Make({"x", "y"}, {{1, 7}, {2, 7}});
  IntTable b = Make({"y", "z"}, {{7, 3}, {7, 4}});
  IntTable out = NaturalJoin(a, b);
  EXPECT_EQ(out.rows.size(), 4u);
  for (const auto& row : out.rows) EXPECT_EQ(row[1], N(7));
}

TEST(NaturalJoinTest, ArityZeroInputs) {
  // A 0-ary relation is TRUE (one empty row) or FALSE (no rows); the join
  // of TRUE with anything is that thing.
  IntTable true_rel;
  true_rel.rows.push_back({});
  IntTable a = Make({"x"}, {{1}, {2}});
  IntTable out = NaturalJoin(true_rel, a);
  EXPECT_EQ(out.schema, a.schema);
  EXPECT_EQ(out.rows.size(), 2u);

  IntTable false_rel;  // no rows, no columns
  EXPECT_TRUE(NaturalJoin(false_rel, a).rows.empty());
  EXPECT_TRUE(NaturalJoin(a, false_rel).rows.empty());
}

TEST(NaturalJoinTest, BudgetTripMidJoinUnwindsPromptly) {
  IntTable a = Make({"x"}, {});
  IntTable b = Make({"x"}, {});
  for (uint32_t i = 0; i < 100; ++i) {
    a.rows.push_back({N(i)});
    b.rows.push_back({N(i)});
  }
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.memory_bytes = 512;  // a few output tuples, then trip
  ctx.set_budgets(budgets);
  IntTable out = NaturalJoin(a, b, &ctx);
  EXPECT_EQ(ctx.stop_cause(), StopCause::kMemoryBudget);
  EXPECT_LT(out.rows.size(), 100u);  // partial, not complete
}

TEST(NaturalJoinTest, AllocFailpointTripsAsMemoryBudget) {
  IntTable a = Make({"x"}, {{1}});
  IntTable b = Make({"x"}, {{1}});
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.memory_bytes = 1ull << 40;
  ctx.set_budgets(budgets);
  ScopedFailpoint fp("rel.test.join.alloc");
  IntTable out = NaturalJoin(a, b, &ctx, "rel.test.join.alloc");
  EXPECT_TRUE(out.rows.empty());
  EXPECT_EQ(ctx.stop_cause(), StopCause::kMemoryBudget);
}

TEST(SemiJoinTest, EmptyAndNoSharedAttributes) {
  IntTable a = Make({"x"}, {{1}, {2}});
  IntTable empty_b = Make({"y"}, {});
  // No shared attrs: semijoin keeps all of `a` iff b is nonempty.
  EXPECT_TRUE(SemiJoin(a, empty_b).rows.empty());
  IntTable b = Make({"y"}, {{9}});
  EXPECT_EQ(SemiJoin(a, b).rows.size(), 2u);
}

TEST(SemiJoinTest, FiltersOnSharedAttribute) {
  IntTable a = Make({"x", "y"}, {{1, 7}, {2, 8}, {3, 7}});
  IntTable b = Make({"y"}, {{7}});
  IntTable out = SemiJoin(a, b);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.schema, a.schema);
  EXPECT_EQ(out.rows[0][0], N(1));
  EXPECT_EQ(out.rows[1][0], N(3));
}

TEST(SemiJoinTest, DuplicateProbeRowsAreKeptAsIs) {
  // SemiJoin filters, it does not normalize: duplicates in `a` survive.
  IntTable a = Make({"x"}, {{1}, {1}});
  IntTable b = Make({"x"}, {{1}});
  EXPECT_EQ(SemiJoin(a, b).rows.size(), 2u);
}

TEST(SemiJoinTest, BudgetTripReturnsPartial) {
  IntTable a = Make({"x"}, {});
  IntTable b = Make({"x"}, {});
  for (uint32_t i = 0; i < 100; ++i) {
    a.rows.push_back({N(i)});
    b.rows.push_back({N(i)});
  }
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.steps = 10;  // SemiJoin burns one step per probe row
  ctx.set_budgets(budgets);
  IntTable out = SemiJoin(a, b, &ctx);
  EXPECT_EQ(ctx.stop_cause(), StopCause::kStepBudget);
  EXPECT_LT(out.rows.size(), 100u);
}

TEST(ProjectTest, MissingAttributeFails) {
  IntTable a = Make({"x"}, {{1}});
  IntTable out;
  EXPECT_FALSE(Project(a, {"nope"}, &out));
}

TEST(ProjectTest, EmptyInputAndArityZeroTarget) {
  IntTable a = Make({"x", "y"}, {{1, 2}, {3, 4}});
  IntTable out;
  // π over no attributes: the rows collapse to the single empty tuple.
  ASSERT_TRUE(Project(a, {}, &out));
  EXPECT_TRUE(out.schema.empty());
  EXPECT_EQ(out.rows.size(), 1u);

  IntTable empty = Make({"x"}, {});
  ASSERT_TRUE(Project(empty, {"x"}, &out));
  EXPECT_TRUE(out.rows.empty());
}

TEST(ProjectTest, AllDuplicatesNormalizeToOne) {
  IntTable a = Make({"x", "y"}, {{1, 2}, {1, 3}, {1, 4}});
  IntTable out;
  ASSERT_TRUE(Project(a, {"x"}, &out));
  EXPECT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0][0], N(1));
}

TEST(ProjectTest, ReordersColumns) {
  IntTable a = Make({"x", "y"}, {{1, 2}});
  IntTable out;
  ASSERT_TRUE(Project(a, {"y", "x"}, &out));
  EXPECT_EQ(out.rows[0][0], N(2));
  EXPECT_EQ(out.rows[0][1], N(1));
}

TEST(DedupeTest, EmptyAllDuplicateAndTripped) {
  IntTable empty = Make({"x"}, {});
  Dedupe(&empty);
  EXPECT_TRUE(empty.rows.empty());

  IntTable dups = Make({"x"}, {{5}, {5}, {5}});
  Dedupe(&dups);
  EXPECT_EQ(dups.rows.size(), 1u);

  // On a tripped context normalization is skipped (prompt unwinding): the
  // caller discards partial rows anyway.
  IntTable partial = Make({"x"}, {{5}, {5}});
  QueryContext ctx;
  ctx.RequestCancel();
  Dedupe(&partial, &ctx);
  EXPECT_EQ(partial.rows.size(), 2u);
}

// ---------------------------------------------------------------------------
// Batch-kernel differential suite: every batch operator must produce the
// same rows in the same order as its row twin, and charge the budget
// identically (same first cause, same accounted totals) when governed.
// ---------------------------------------------------------------------------

Cell L(std::vector<uint32_t> edges) {
  ObjectList list;
  for (uint32_t e : edges) list.push_back(ObjectRef::Edge(e));
  return Cell(list);
}

void ExpectSameTable(const IntTable& row_out, const IntTable& batch_out) {
  EXPECT_EQ(row_out.schema, batch_out.schema);
  ASSERT_EQ(row_out.rows.size(), batch_out.rows.size());
  for (size_t i = 0; i < row_out.rows.size(); ++i) {
    EXPECT_EQ(row_out.rows[i], batch_out.rows[i]) << "row " << i;
  }
}

void ExpectSameReport(const QueryContext& row_ctx,
                      const QueryContext& batch_ctx) {
  BudgetReport r = row_ctx.Report();
  BudgetReport b = batch_ctx.Report();
  EXPECT_EQ(r.cause, b.cause);
  EXPECT_EQ(r.memory_bytes, b.memory_bytes);
  EXPECT_EQ(r.memory_peak_bytes, b.memory_peak_bytes);
  EXPECT_EQ(r.steps, b.steps);
  EXPECT_EQ(r.result_rows, b.result_rows);
}

// The interesting input shapes: empty, single row, duplicate-heavy keys,
// and a fully demoted (no-id) column next to packed id columns.
std::vector<std::pair<IntTable, IntTable>> DifferentialInputs() {
  std::vector<std::pair<IntTable, IntTable>> cases;
  cases.emplace_back(Make({"x", "y"}, {}), Make({"y", "z"}, {{1, 2}}));
  cases.emplace_back(Make({"x", "y"}, {{1, 2}}), Make({"y", "z"}, {}));
  cases.emplace_back(Make({"x", "y"}, {{1, 2}}), Make({"y", "z"}, {{2, 3}}));
  cases.emplace_back(Make({"x"}, {{1}, {2}}), Make({"y"}, {{3}, {4}}));
  // Duplicate-heavy: every key matches every row on the other side.
  IntTable dup_a = Make({"x", "y"}, {});
  IntTable dup_b = Make({"y", "z"}, {});
  for (uint32_t i = 0; i < 8; ++i) {
    dup_a.rows.push_back({N(i), N(7)});
    dup_b.rows.push_back({N(7), N(100 + i)});
  }
  cases.emplace_back(std::move(dup_a), std::move(dup_b));
  // A column with no id cell at all (list-valued), forcing the side store
  // and the Cell-keyed join path.
  IntTable list_a = Make({"x"}, {});
  list_a.schema.push_back("p");
  list_a.rows = {{N(1), L({10})}, {N(2), L({11, 12})}, {N(3), L({10})}};
  IntTable list_b;
  list_b.schema = {"p", "z"};
  list_b.rows = {{L({10}), N(5)}, {L({11, 12}), N(6)}};
  cases.emplace_back(std::move(list_a), std::move(list_b));
  return cases;
}

TEST(BatchDifferentialTest, NaturalJoinMatchesRowKernel) {
  for (const auto& [a, b] : DifferentialInputs()) {
    ExpectSameTable(NaturalJoin(a, b), NaturalJoinBatched(a, b));
    ExpectSameTable(NaturalJoin(b, a), NaturalJoinBatched(b, a));
  }
}

TEST(BatchDifferentialTest, SemiJoinMatchesRowKernel) {
  for (const auto& [a, b] : DifferentialInputs()) {
    ExpectSameTable(SemiJoin(a, b), SemiJoinBatched(a, b));
    ExpectSameTable(SemiJoin(b, a), SemiJoinBatched(b, a));
  }
}

TEST(BatchDifferentialTest, ProjectMatchesRowKernel) {
  for (const auto& [a, b] : DifferentialInputs()) {
    for (const IntTable* t : {&a, &b}) {
      // Project each single attribute, the reversed schema, and arity 0.
      std::vector<std::vector<std::string>> targets;
      for (const std::string& attr : t->schema) targets.push_back({attr});
      targets.push_back(
          std::vector<std::string>(t->schema.rbegin(), t->schema.rend()));
      targets.push_back({});
      for (const auto& attrs : targets) {
        IntTable row_out, batch_out;
        ASSERT_TRUE(Project(*t, attrs, &row_out));
        ASSERT_TRUE(ProjectBatched(*t, attrs, &batch_out));
        ExpectSameTable(row_out, batch_out);
      }
    }
  }
}

TEST(BatchDifferentialTest, ProjectMissingAttributeFailsInBoth) {
  IntTable a = Make({"x"}, {{1}});
  IntTable out;
  EXPECT_FALSE(Project(a, {"nope"}, &out));
  EXPECT_FALSE(ProjectBatched(a, {"nope"}, &out));
}

TEST(BatchDifferentialTest, DedupeMatchesRowKernel) {
  IntTable dups = Make({"x", "y"}, {{2, 1}, {1, 2}, {2, 1}, {1, 1}, {1, 2}});
  dups.rows.push_back({N(1), L({10})});
  dups.rows.push_back({N(1), L({10})});
  IntTable row_side = dups;
  Dedupe(&row_side);
  ColumnBatch<Cell> batch = ToBatch(dups);
  BatchDedupe(&batch);
  ExpectSameTable(row_side, ToTable(batch));
}

TEST(BatchDifferentialTest, SingleRowAndRoundTrip) {
  IntTable one = Make({"x", "y"}, {{1, 2}});
  ExpectSameTable(one, ToTable(ToBatch(one)));
  IntTable mixed;
  mixed.schema = {"x", "p"};
  mixed.rows = {{N(1), L({9})}};
  ExpectSameTable(mixed, ToTable(ToBatch(mixed)));
  ColumnBatch<Cell> b = ToBatch(mixed);
  EXPECT_TRUE(b.cols[0].all_ids);
  EXPECT_FALSE(b.cols[1].all_ids);
}

TEST(BatchDifferentialTest, MixedColumnDemotesMidAppend) {
  // Id rows first, then a list cell: the column re-boxes the packed ids
  // and keeps serving the earlier rows unchanged.
  IntTable t;
  t.schema = {"x"};
  t.rows = {{N(4)}, {N(5)}, {L({1})}};
  ColumnBatch<Cell> b = ToBatch(t);
  EXPECT_FALSE(b.cols[0].all_ids);
  ExpectSameTable(t, ToTable(b));
}

TEST(BatchDifferentialTest, MemoryTripMidJoinLeavesIdenticalReport) {
  IntTable a = Make({"x"}, {});
  IntTable b = Make({"x"}, {});
  for (uint32_t i = 0; i < 100; ++i) {
    a.rows.push_back({N(i)});
    b.rows.push_back({N(i)});
  }
  ResourceBudgets budgets;
  budgets.memory_bytes = 4096;  // trips while probing, mid-batch
  QueryContext row_ctx;
  row_ctx.set_budgets(budgets);
  QueryContext batch_ctx;
  batch_ctx.set_budgets(budgets);
  IntTable row_out = NaturalJoin(a, b, &row_ctx);
  IntTable batch_out = NaturalJoinBatched(a, b, &batch_ctx);
  EXPECT_EQ(row_ctx.stop_cause(), StopCause::kMemoryBudget);
  ExpectSameTable(row_out, batch_out);
  ExpectSameReport(row_ctx, batch_ctx);
}

TEST(BatchDifferentialTest, StepTripMidJoinLeavesIdenticalReport) {
  IntTable a = Make({"x"}, {});
  IntTable b = Make({"x"}, {});
  for (uint32_t i = 0; i < 100; ++i) {
    a.rows.push_back({N(i)});
    b.rows.push_back({N(i)});
  }
  ResourceBudgets budgets;
  budgets.steps = 25;
  QueryContext row_ctx;
  row_ctx.set_budgets(budgets);
  QueryContext batch_ctx;
  batch_ctx.set_budgets(budgets);
  IntTable row_out = NaturalJoin(a, b, &row_ctx);
  IntTable batch_out = NaturalJoinBatched(a, b, &batch_ctx);
  EXPECT_EQ(row_ctx.stop_cause(), StopCause::kStepBudget);
  ExpectSameTable(row_out, batch_out);
  ExpectSameReport(row_ctx, batch_ctx);
}

TEST(BatchDifferentialTest, SemiJoinTripLeavesIdenticalReport) {
  IntTable a = Make({"x"}, {});
  IntTable b = Make({"x"}, {});
  for (uint32_t i = 0; i < 100; ++i) {
    a.rows.push_back({N(i)});
    b.rows.push_back({N(i)});
  }
  ResourceBudgets budgets;
  budgets.steps = 10;
  QueryContext row_ctx;
  row_ctx.set_budgets(budgets);
  QueryContext batch_ctx;
  batch_ctx.set_budgets(budgets);
  IntTable row_out = SemiJoin(a, b, &row_ctx);
  IntTable batch_out = SemiJoinBatched(a, b, &batch_ctx);
  EXPECT_EQ(row_ctx.stop_cause(), StopCause::kStepBudget);
  ExpectSameTable(row_out, batch_out);
  ExpectSameReport(row_ctx, batch_ctx);
}

TEST(BatchDifferentialTest, AllocFailpointTripsIdentically) {
  IntTable a = Make({"x"}, {{1}});
  IntTable b = Make({"x"}, {{1}});
  ResourceBudgets budgets;
  budgets.memory_bytes = 1ull << 40;
  QueryContext row_ctx;
  row_ctx.set_budgets(budgets);
  QueryContext batch_ctx;
  batch_ctx.set_budgets(budgets);
  {
    ScopedFailpoint fp("rel.test.join.alloc");
    (void)NaturalJoin(a, b, &row_ctx, "rel.test.join.alloc");
  }
  IntTable batch_out;
  {
    ScopedFailpoint fp("rel.test.join.alloc");
    batch_out = NaturalJoinBatched(a, b, &batch_ctx, "rel.test.join.alloc");
  }
  EXPECT_TRUE(batch_out.rows.empty());
  EXPECT_EQ(batch_ctx.stop_cause(), StopCause::kMemoryBudget);
  ExpectSameReport(row_ctx, batch_ctx);
}

TEST(BatchDifferentialTest, DedupeSkippedOnTrippedContext) {
  IntTable dups = Make({"x"}, {{5}, {5}});
  QueryContext ctx;
  ctx.RequestCancel();
  ColumnBatch<Cell> b = ToBatch(dups);
  BatchDedupe(&b, &ctx);
  EXPECT_EQ(b.num_rows, 2u);  // same prompt-unwinding contract as Dedupe
}

}  // namespace
}  // namespace rel
}  // namespace gqzoo
