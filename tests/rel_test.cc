// Unit tests for the unified relational kernel (src/rel/rel.h) on the
// degenerate shapes the evaluator integration tests rarely reach: empty
// inputs, all-duplicate inputs, arity-0 relations, and budget trips
// mid-operator.

#include "src/rel/rel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/crpq/crpq.h"
#include "src/util/query_context.h"

namespace gqzoo {
namespace rel {
namespace {

using Cell = CrpqValue;  // variant<NodeId, ObjectList>; NodeId is enough here
using IntTable = Table<Cell>;

Cell N(uint32_t id) { return Cell(NodeId(id)); }

IntTable Make(std::vector<std::string> schema,
              std::vector<std::vector<uint32_t>> rows) {
  IntTable t;
  t.schema = std::move(schema);
  for (const auto& row : rows) {
    std::vector<Cell> cells;
    for (uint32_t v : row) cells.push_back(N(v));
    t.rows.push_back(std::move(cells));
  }
  return t;
}

TEST(JoinLayoutTest, SharedAndTailColumns) {
  JoinLayout layout = ComputeJoinLayout({"x", "y"}, {"y", "z"});
  EXPECT_EQ(layout.shared_a, std::vector<size_t>({1}));
  EXPECT_EQ(layout.shared_b, std::vector<size_t>({0}));
  EXPECT_EQ(layout.b_only, std::vector<size_t>({1}));
}

TEST(NaturalJoinTest, EmptyLeftInput) {
  IntTable a = Make({"x", "y"}, {});
  IntTable b = Make({"y", "z"}, {{1, 2}});
  IntTable out = NaturalJoin(a, b);
  EXPECT_EQ(out.schema, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_TRUE(out.rows.empty());
}

TEST(NaturalJoinTest, EmptyRightInput) {
  IntTable a = Make({"x", "y"}, {{1, 2}});
  IntTable b = Make({"y", "z"}, {});
  EXPECT_TRUE(NaturalJoin(a, b).rows.empty());
}

TEST(NaturalJoinTest, NoSharedAttributesIsCartesianProduct) {
  IntTable a = Make({"x"}, {{1}, {2}});
  IntTable b = Make({"y"}, {{3}, {4}});
  IntTable out = NaturalJoin(a, b);
  EXPECT_EQ(out.schema, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(out.rows.size(), 4u);
}

TEST(NaturalJoinTest, AllDuplicateKeysMultiplyOut) {
  // Set semantics holds for *normalized* inputs; the kernel itself must
  // still be exact on duplicate keys (each a-row pairs with each match).
  IntTable a = Make({"x", "y"}, {{1, 7}, {2, 7}});
  IntTable b = Make({"y", "z"}, {{7, 3}, {7, 4}});
  IntTable out = NaturalJoin(a, b);
  EXPECT_EQ(out.rows.size(), 4u);
  for (const auto& row : out.rows) EXPECT_EQ(row[1], N(7));
}

TEST(NaturalJoinTest, ArityZeroInputs) {
  // A 0-ary relation is TRUE (one empty row) or FALSE (no rows); the join
  // of TRUE with anything is that thing.
  IntTable true_rel;
  true_rel.rows.push_back({});
  IntTable a = Make({"x"}, {{1}, {2}});
  IntTable out = NaturalJoin(true_rel, a);
  EXPECT_EQ(out.schema, a.schema);
  EXPECT_EQ(out.rows.size(), 2u);

  IntTable false_rel;  // no rows, no columns
  EXPECT_TRUE(NaturalJoin(false_rel, a).rows.empty());
  EXPECT_TRUE(NaturalJoin(a, false_rel).rows.empty());
}

TEST(NaturalJoinTest, BudgetTripMidJoinUnwindsPromptly) {
  IntTable a = Make({"x"}, {});
  IntTable b = Make({"x"}, {});
  for (uint32_t i = 0; i < 100; ++i) {
    a.rows.push_back({N(i)});
    b.rows.push_back({N(i)});
  }
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.memory_bytes = 512;  // a few output tuples, then trip
  ctx.set_budgets(budgets);
  IntTable out = NaturalJoin(a, b, &ctx);
  EXPECT_EQ(ctx.stop_cause(), StopCause::kMemoryBudget);
  EXPECT_LT(out.rows.size(), 100u);  // partial, not complete
}

TEST(NaturalJoinTest, AllocFailpointTripsAsMemoryBudget) {
  IntTable a = Make({"x"}, {{1}});
  IntTable b = Make({"x"}, {{1}});
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.memory_bytes = 1ull << 40;
  ctx.set_budgets(budgets);
  ScopedFailpoint fp("rel.test.join.alloc");
  IntTable out = NaturalJoin(a, b, &ctx, "rel.test.join.alloc");
  EXPECT_TRUE(out.rows.empty());
  EXPECT_EQ(ctx.stop_cause(), StopCause::kMemoryBudget);
}

TEST(SemiJoinTest, EmptyAndNoSharedAttributes) {
  IntTable a = Make({"x"}, {{1}, {2}});
  IntTable empty_b = Make({"y"}, {});
  // No shared attrs: semijoin keeps all of `a` iff b is nonempty.
  EXPECT_TRUE(SemiJoin(a, empty_b).rows.empty());
  IntTable b = Make({"y"}, {{9}});
  EXPECT_EQ(SemiJoin(a, b).rows.size(), 2u);
}

TEST(SemiJoinTest, FiltersOnSharedAttribute) {
  IntTable a = Make({"x", "y"}, {{1, 7}, {2, 8}, {3, 7}});
  IntTable b = Make({"y"}, {{7}});
  IntTable out = SemiJoin(a, b);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.schema, a.schema);
  EXPECT_EQ(out.rows[0][0], N(1));
  EXPECT_EQ(out.rows[1][0], N(3));
}

TEST(SemiJoinTest, DuplicateProbeRowsAreKeptAsIs) {
  // SemiJoin filters, it does not normalize: duplicates in `a` survive.
  IntTable a = Make({"x"}, {{1}, {1}});
  IntTable b = Make({"x"}, {{1}});
  EXPECT_EQ(SemiJoin(a, b).rows.size(), 2u);
}

TEST(SemiJoinTest, BudgetTripReturnsPartial) {
  IntTable a = Make({"x"}, {});
  IntTable b = Make({"x"}, {});
  for (uint32_t i = 0; i < 100; ++i) {
    a.rows.push_back({N(i)});
    b.rows.push_back({N(i)});
  }
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.steps = 10;  // SemiJoin burns one step per probe row
  ctx.set_budgets(budgets);
  IntTable out = SemiJoin(a, b, &ctx);
  EXPECT_EQ(ctx.stop_cause(), StopCause::kStepBudget);
  EXPECT_LT(out.rows.size(), 100u);
}

TEST(ProjectTest, MissingAttributeFails) {
  IntTable a = Make({"x"}, {{1}});
  IntTable out;
  EXPECT_FALSE(Project(a, {"nope"}, &out));
}

TEST(ProjectTest, EmptyInputAndArityZeroTarget) {
  IntTable a = Make({"x", "y"}, {{1, 2}, {3, 4}});
  IntTable out;
  // π over no attributes: the rows collapse to the single empty tuple.
  ASSERT_TRUE(Project(a, {}, &out));
  EXPECT_TRUE(out.schema.empty());
  EXPECT_EQ(out.rows.size(), 1u);

  IntTable empty = Make({"x"}, {});
  ASSERT_TRUE(Project(empty, {"x"}, &out));
  EXPECT_TRUE(out.rows.empty());
}

TEST(ProjectTest, AllDuplicatesNormalizeToOne) {
  IntTable a = Make({"x", "y"}, {{1, 2}, {1, 3}, {1, 4}});
  IntTable out;
  ASSERT_TRUE(Project(a, {"x"}, &out));
  EXPECT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0][0], N(1));
}

TEST(ProjectTest, ReordersColumns) {
  IntTable a = Make({"x", "y"}, {{1, 2}});
  IntTable out;
  ASSERT_TRUE(Project(a, {"y", "x"}, &out));
  EXPECT_EQ(out.rows[0][0], N(2));
  EXPECT_EQ(out.rows[0][1], N(1));
}

TEST(DedupeTest, EmptyAllDuplicateAndTripped) {
  IntTable empty = Make({"x"}, {});
  Dedupe(&empty);
  EXPECT_TRUE(empty.rows.empty());

  IntTable dups = Make({"x"}, {{5}, {5}, {5}});
  Dedupe(&dups);
  EXPECT_EQ(dups.rows.size(), 1u);

  // On a tripped context normalization is skipped (prompt unwinding): the
  // caller discards partial rows anyway.
  IntTable partial = Make({"x"}, {{5}, {5}});
  QueryContext ctx;
  ctx.RequestCancel();
  Dedupe(&partial, &ctx);
  EXPECT_EQ(partial.rows.size(), 2u);
}

}  // namespace
}  // namespace rel
}  // namespace gqzoo
