#include <gtest/gtest.h>

#include <set>

#include "src/automata/operations.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::MatchingBindingsBruteForce;
using testing_util::MatchingPathsBruteForce;
using testing_util::Rx;

TEST(PmrTest, HomomorphismEnforcedAndSPathsBasics) {
  EdgeLabeledGraph g = Chain(2);  // u1 -e0-> u2 -e1-> u3
  Pmr pmr(g);
  uint32_t n0 = pmr.AddNode(0);
  uint32_t n1 = pmr.AddNode(1);
  uint32_t n2 = pmr.AddNode(2);
  pmr.AddEdge(n0, n1, 0);
  pmr.AddEdge(n1, n2, 1);
  pmr.AddSource(n0);
  pmr.AddTarget(n2);
  std::vector<PathBinding> paths =
      CollectPathBindings(pmr, EnumerationLimits{});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].path.ToString(g), "path(u1, e0, u2, e1, u3)");
  EXPECT_FALSE(pmr.RepresentsInfinitelyManyPaths());
  EXPECT_EQ(CountPmrWalks(pmr)->ToString(), "1");
}

TEST(PmrTest, PaperExampleCycleRepresentation) {
  // Section 6.4: the infinitely many Transfer-cycles from Mike (a3) to Mike
  // looping through t7, t4, t1 are represented by a 3-node cyclic PMR.
  EdgeLabeledGraph g = Figure2Graph();
  NodeId a3 = *g.FindNode("a3");
  NodeId a5 = *g.FindNode("a5");
  NodeId a1 = *g.FindNode("a1");
  EdgeId t7 = *g.FindEdge("t7");
  EdgeId t4 = *g.FindEdge("t4");
  EdgeId t1 = *g.FindEdge("t1");
  Pmr pmr(g);
  uint32_t r1 = pmr.AddNode(a3);
  uint32_t r2 = pmr.AddNode(a5);
  uint32_t r3 = pmr.AddNode(a1);
  pmr.AddEdge(r1, r2, t7);
  pmr.AddEdge(r2, r3, t4);
  pmr.AddEdge(r3, r1, t1);
  pmr.AddSource(r1);
  pmr.AddTarget(r1);
  EXPECT_TRUE(pmr.RepresentsInfinitelyManyPaths());
  EXPECT_EQ(CountPmrWalks(pmr), std::nullopt);
  // Finite prefix of the infinite set: the empty cycle, one loop, two loops.
  EnumerationLimits limits;
  limits.max_results = 3;
  EnumerationStats stats;
  std::vector<PathBinding> some = CollectPathBindings(pmr, limits, &stats);
  ASSERT_EQ(some.size(), 3u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(some[0].path.Length(), 0u);
  EXPECT_EQ(some[1].path.Length(), 3u);
  EXPECT_EQ(some[2].path.Length(), 6u);
}

TEST(PmrTest, Figure5ParallelChainIsLinearSizeForExponentialPaths) {
  // E3: 2^n paths, O(n)-size PMR.
  const size_t n = 12;
  EdgeLabeledGraph g = ParallelChain(n);
  Nfa nfa = Nfa::FromRegex(*Rx("a*"), g);
  Pmr pmr = BuildPmrBetween(g, nfa, *g.FindNode("s"), *g.FindNode("t"));
  EXPECT_EQ(CountPmrWalks(pmr)->ToString(),
            std::to_string(uint64_t{1} << n));
  EXPECT_LE(pmr.NumNodes(), (n + 1) * nfa.num_states());
  EXPECT_LE(pmr.NumEdges(), 2 * n * nfa.num_states() * nfa.num_states());
}

struct PmrCase {
  uint64_t seed;
  const char* regex;
};

class PmrAgreementTest : public ::testing::TestWithParam<PmrCase> {};

// Property: SPaths of the PMR built for (u, v) equals the set of matching
// paths (brute force), up to the length bound.
TEST_P(PmrAgreementTest, SPathsMatchBruteForce) {
  EdgeLabeledGraph g = RandomGraph(6, 10, 2, GetParam().seed);
  RegexPtr r = Rx(GetParam().regex);
  Nfa nfa = Nfa::FromRegex(*r, g);
  const size_t max_len = 5;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      Pmr pmr = BuildPmrBetween(g, nfa, u, v);
      EnumerationLimits limits;
      limits.max_length = max_len;
      std::vector<PathBinding> got = CollectPathBindings(pmr, limits);
      std::set<Path> got_paths;
      for (const PathBinding& pb : got) got_paths.insert(pb.path);
      std::vector<Path> expected = MatchingPathsBruteForce(g, nfa, u, v,
                                                           max_len);
      std::set<Path> expected_set(expected.begin(), expected.end());
      EXPECT_EQ(got_paths, expected_set)
          << GetParam().regex << " " << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, PmrAgreementTest,
    ::testing::Values(PmrCase{11, "a*"}, PmrCase{12, "(a b)*"},
                      PmrCase{13, "a (a|b)*"}, PmrCase{14, "a{2,3}"},
                      PmrCase{15, "_ _ _"}, PmrCase{16, "(a|b b)*"}));

class LrpqBindingTest : public ::testing::TestWithParam<PmrCase> {};

// Property: enumerated (path, µ) sets agree with the brute-force l-RPQ
// semantics (all runs over all bounded paths).
TEST_P(LrpqBindingTest, BindingsMatchBruteForce) {
  EdgeLabeledGraph g = RandomGraph(5, 9, 2, GetParam().seed);
  RegexPtr r = Rx(GetParam().regex);
  Nfa nfa = Nfa::FromRegex(*r, g);
  const size_t max_len = 4;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      Pmr pmr = BuildPmrBetween(g, nfa, u, v);
      EnumerationLimits limits;
      limits.max_length = max_len;
      std::vector<PathBinding> got = CollectPathBindings(pmr, limits);
      std::vector<PathBinding> expected =
          MatchingBindingsBruteForce(g, nfa, u, v, max_len);
      EXPECT_EQ(got, expected) << GetParam().regex << " " << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, LrpqBindingTest,
    ::testing::Values(PmrCase{21, "(a^z)*"}, PmrCase{22, "a^z (b^w)*"},
                      PmrCase{23, "(a^z|b^z)*"},
                      PmrCase{24, "(a a^z|a^z a)*"},
                      PmrCase{25, "_^z _^z"}));

// Section 3.1.4: [[R]]² = [[R·R]] by definition for l-RPQs — the fix for
// the Example 1 anomaly. We verify [[R{2}]] = [[R R]] on random graphs,
// including the bindings.
TEST(LrpqSemanticTest, RepetitionEqualsConcatenation) {
  for (uint64_t seed : {31, 32, 33}) {
    EdgeLabeledGraph g = RandomGraph(5, 10, 2, seed);
    Nfa rep = Nfa::FromRegex(*Rx("(a^z b){2}"), g);
    Nfa cat = Nfa::FromRegex(*Rx("(a^z b) (a^z b)"), g);
    const size_t max_len = 4;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        EXPECT_EQ(MatchingBindingsBruteForce(g, rep, u, v, max_len),
                  MatchingBindingsBruteForce(g, cat, u, v, max_len))
            << seed << ": " << u << "->" << v;
      }
    }
  }
}

TEST(PmrTest, ShortestRestrictionKeepsOnlyGeodesics) {
  // Figure 2: shortest Transfer-paths a3 → a1 have length 2 (t7 t4).
  EdgeLabeledGraph g = Figure2Graph();
  Nfa nfa = Nfa::FromRegex(*Rx("(Transfer^z)+"), g);
  Pmr pmr = BuildPmrBetween(g, nfa, *g.FindNode("a3"), *g.FindNode("a1"))
                .ShortestRestriction();
  std::vector<PathBinding> paths =
      CollectPathBindings(pmr, EnumerationLimits{});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].path.ToString(g), "path(a3, t7, a5, t4, a1)");
  EXPECT_EQ(ListToString(g, paths[0].mu.Get("z")), "list(t7, t4)");
}

TEST(PmrTest, EmptyWhenNoPath) {
  EdgeLabeledGraph g = Chain(2);
  Nfa nfa = Nfa::FromRegex(*Rx("b"), g);
  Pmr pmr = BuildPmrBetween(g, nfa, 0, 2);
  EXPECT_EQ(pmr.NumNodes(), 0u);
  EXPECT_TRUE(CollectPathBindings(pmr, EnumerationLimits{}).empty());
  EXPECT_EQ(CountPmrWalks(pmr)->ToString(), "0");
}

TEST(PmrTest, EpsilonSelfPath) {
  EdgeLabeledGraph g = Chain(1);
  Nfa nfa = Nfa::FromRegex(*Rx("a*"), g);
  Pmr pmr = BuildPmrBetween(g, nfa, 0, 0);
  std::vector<PathBinding> paths =
      CollectPathBindings(pmr, EnumerationLimits{});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].path.Length(), 0u);
}

}  // namespace
}  // namespace gqzoo
