#include <gtest/gtest.h>

#include "src/util/biguint.h"
#include "src/util/interner.h"
#include "src/util/result.h"
#include "src/util/value.h"

namespace gqzoo {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{3}).is_numeric());
  EXPECT_TRUE(Value(3.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, IntComparison) {
  EXPECT_TRUE(Value::Compare(Value(1), CompareOp::kLt, Value(2)));
  EXPECT_FALSE(Value::Compare(Value(2), CompareOp::kLt, Value(1)));
  EXPECT_TRUE(Value::Compare(Value(2), CompareOp::kGe, Value(2)));
  EXPECT_TRUE(Value::Compare(Value(2), CompareOp::kEq, Value(2)));
  EXPECT_TRUE(Value::Compare(Value(2), CompareOp::kNe, Value(3)));
}

TEST(ValueTest, MixedNumericComparison) {
  EXPECT_TRUE(Value::Compare(Value(1), CompareOp::kLt, Value(1.5)));
  EXPECT_TRUE(Value::Compare(Value(2.0), CompareOp::kEq, Value(2)));
}

TEST(ValueTest, StringComparisonIsLexicographic) {
  EXPECT_TRUE(Value::Compare(Value("2025-01-03"), CompareOp::kLt,
                             Value("2025-01-10")));
  EXPECT_TRUE(Value::Compare(Value("abc"), CompareOp::kEq, Value("abc")));
}

TEST(ValueTest, CrossTypeComparisonIsFalseExceptNe) {
  EXPECT_FALSE(Value::Compare(Value("1"), CompareOp::kEq, Value(1)));
  EXPECT_FALSE(Value::Compare(Value("1"), CompareOp::kLt, Value(1)));
  EXPECT_TRUE(Value::Compare(Value("1"), CompareOp::kNe, Value(1)));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
}

TEST(ValueTest, StructuralEqualityDistinguishesTypes) {
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));
  EXPECT_TRUE(Value(int64_t{1}) == Value(int64_t{1}));
}

TEST(BigUintTest, BasicArithmetic) {
  BigUint a(123456789);
  BigUint b(987654321);
  EXPECT_EQ((a + b).ToString(), "1111111110");
  EXPECT_EQ((a * b).ToString(), "121932631112635269");
}

TEST(BigUintTest, Zero) {
  BigUint zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ((zero + BigUint(5)).ToString(), "5");
  EXPECT_TRUE((zero * BigUint(5)).is_zero());
  EXPECT_EQ(zero.NumDecimalDigits(), 1u);
}

TEST(BigUintTest, LargeMultiplication) {
  // 2^128 computed by repeated squaring of 2^32.
  BigUint two32(uint64_t{1} << 32);
  BigUint two64 = two32 * two32;
  BigUint two128 = two64 * two64;
  EXPECT_EQ(two128.ToString(), "340282366920938463463374607431768211456");
  EXPECT_EQ(two128.NumDecimalDigits(), 39u);
}

TEST(BigUintTest, PowerOfTenAndComparison) {
  BigUint p80 = BigUint::PowerOfTen(80);
  EXPECT_EQ(p80.NumDecimalDigits(), 81u);
  EXPECT_TRUE(BigUint::PowerOfTen(79) < p80);
  EXPECT_TRUE(p80 > BigUint(999));
  EXPECT_TRUE(p80 >= p80);
  EXPECT_TRUE(p80 <= p80);
}

TEST(BigUintTest, FromDecimalRoundTrip) {
  const std::string digits = "98765432109876543210987654321";
  EXPECT_EQ(BigUint::FromDecimal(digits).ToString(), digits);
}

TEST(BigUintTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigUint(1000).ToDouble(), 1000.0);
  double big = BigUint::PowerOfTen(30).ToDouble();
  EXPECT_NEAR(big, 1e30, 1e16);
}

TEST(InternerTest, InternAndLookup) {
  Interner interner;
  uint32_t a = interner.Intern("alpha");
  uint32_t b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.NameOf(a), "alpha");
  EXPECT_EQ(interner.Find("beta"), std::optional<uint32_t>(b));
  EXPECT_EQ(interner.Find("gamma"), std::nullopt);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err{Error("boom")};
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().message(), "boom");
}

}  // namespace
}  // namespace gqzoo
