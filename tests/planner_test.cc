// Tests for the statistics-driven conjunct planner: exactness of the
// snapshot statistics, cost-model sanity against exact counts, the greedy
// join orderer, and — most importantly — differential suites asserting
// that planner-ordered evaluation returns results byte-identical to
// textual-order evaluation across all three conjunctive languages.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/automata/nfa.h"
#include "src/coregql/query.h"
#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/crpq/join.h"
#include "src/datatest/dl_eval.h"
#include "src/datatest/dl_rpq.h"
#include "src/engine/engine.h"
#include "src/engine/plan.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/planner/cost_model.h"
#include "src/planner/planner.h"
#include "src/planner/stats.h"
#include "src/rel/rel.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::Rx;

/// Wraps an edge-labeled graph as a property graph (all nodes labeled "N")
/// so it can drive the engine and CompilePlan.
PropertyGraph ToPropertyGraph(const EdgeLabeledGraph& g) {
  PropertyGraph pg;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    pg.AddNode(std::string(g.NodeName(v)), "N");
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    pg.AddEdge(g.Src(e), g.Tgt(e), g.LabelName(g.EdgeLabel(e)),
               std::string(g.EdgeName(e)));
  }
  return pg;
}

/// A star-join family where textual order is pessimal: `centers` hub nodes
/// each fan out over `fanout` shared targets via `big1` and `big2`, while
/// only `rare_centers` hubs carry a `rare` edge. The query
/// `q(x) :- big1(x,y), big2(x,z), rare(x,w)` builds a centers·fanout²
/// intermediate textually; rare-first keeps it at rare_centers·fanout².
EdgeLabeledGraph StarJoinGraph(size_t centers, size_t fanout,
                               size_t rare_centers) {
  EdgeLabeledGraph g;
  std::vector<NodeId> hubs, t1, t2;
  for (size_t i = 0; i < centers; ++i) {
    hubs.push_back(g.AddNode("c" + std::to_string(i)));
  }
  for (size_t j = 0; j < fanout; ++j) {
    t1.push_back(g.AddNode("s" + std::to_string(j)));
    t2.push_back(g.AddNode("t" + std::to_string(j)));
  }
  for (size_t i = 0; i < centers; ++i) {
    for (size_t j = 0; j < fanout; ++j) {
      g.AddEdge(hubs[i], t1[j], "big1");
      g.AddEdge(hubs[i], t2[j], "big2");
    }
  }
  for (size_t i = 0; i < rare_centers; ++i) {
    NodeId w = g.AddNode("r" + std::to_string(i));
    g.AddEdge(hubs[i], w, "rare");
  }
  return g;
}

// ---------------------------------------------------------------------------
// SnapshotStats: exact per-label counts vs brute force.

TEST(SnapshotStatsTest, ExactPerLabelCountsOnRandomGraph) {
  EdgeLabeledGraph g = RandomGraph(60, 240, 4, 11);
  GraphSnapshot snapshot(g);
  SnapshotStats stats(snapshot);

  ASSERT_EQ(stats.num_nodes(), g.NumNodes());
  ASSERT_EQ(stats.num_edges(), g.NumEdges());

  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    uint64_t edges = 0;
    std::set<NodeId> srcs, tgts;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      if (g.EdgeLabel(e) != l) continue;
      ++edges;
      srcs.insert(g.Src(e));
      tgts.insert(g.Tgt(e));
    }
    EXPECT_EQ(stats.EdgeCount(l), edges) << g.LabelName(l);
    EXPECT_EQ(stats.DistinctSources(l), srcs.size()) << g.LabelName(l);
    EXPECT_EQ(stats.DistinctTargets(l), tgts.size()) << g.LabelName(l);
  }
}

TEST(SnapshotStatsTest, PredicateLevelCounts) {
  EdgeLabeledGraph g = RandomGraph(40, 160, 3, 7);
  GraphSnapshot snapshot(g);
  SnapshotStats stats(snapshot);

  LabelId a = *g.FindLabel("a");
  LabelId b = *g.FindLabel("b");
  EXPECT_EQ(stats.EdgesMatching(LabelPred::One(a)), stats.EdgeCount(a));
  EXPECT_EQ(stats.EdgesMatching(LabelPred::Any()), g.NumEdges());
  EXPECT_EQ(stats.EdgesMatching(LabelPred::None()), 0u);
  // !{a, b} counts exactly the remaining labels' edges.
  uint64_t not_ab = g.NumEdges() - stats.EdgeCount(a) - stats.EdgeCount(b);
  EXPECT_EQ(stats.EdgesMatching(LabelPred::NegSet({a, b})), not_ab);
  // Distinct-node counts for kOne are exact; kAny is capped at n.
  EXPECT_EQ(stats.SourcesMatching(LabelPred::One(a)), stats.DistinctSources(a));
  EXPECT_LE(stats.SourcesMatching(LabelPred::Any()), g.NumNodes());
}

TEST(SnapshotStatsTest, NodeLabelCounts) {
  PropertyGraph g = RandomPropertyGraph(20, 60, 10, 53);
  GraphSnapshot snapshot(g);
  SnapshotStats stats(snapshot);
  ASSERT_TRUE(stats.has_node_labels());
  LabelId n_label = *g.FindLabel("N");
  EXPECT_EQ(stats.NodeLabelCount(n_label), g.NumNodes());
  EXPECT_EQ(stats.NodesMatching(LabelPred::One(n_label)), g.NumNodes());
}

// ---------------------------------------------------------------------------
// Cost model vs exact counts.

TEST(CostModelTest, SingleLabelAtomIsExactOnChain) {
  // A 4-edge chain of `a` edges: the atom a(x, y) has exactly 4 rows.
  EdgeLabeledGraph g = Chain(4);
  GraphSnapshot snapshot(g);
  SnapshotStats stats(snapshot);

  Crpq q = ParseCrpq("q(x, y) := a(x, y)").value();
  Nfa nfa = Nfa::FromRegex(*q.atoms[0].regex, g);
  AtomEstimate est = EstimateCrpqAtom(stats, nfa, false, q.atoms[0]);
  EXPECT_EQ(est.rows, 4u);
  EXPECT_EQ(est.distinct_from, 4u);
  EXPECT_EQ(est.distinct_to, 4u);
}

TEST(CostModelTest, ConstantEndpointDividesEstimate) {
  EdgeLabeledGraph g = StarJoinGraph(10, 5, 2);
  GraphSnapshot snapshot(g);
  SnapshotStats stats(snapshot);

  Crpq free_q = ParseCrpq("q(x, y) := big1(x, y)").value();
  Crpq const_q = ParseCrpq("q(y) := big1(@c0, y)").value();
  Nfa nfa = Nfa::FromRegex(*free_q.atoms[0].regex, g);
  uint64_t free_rows = EstimateCrpqAtom(stats, nfa, false, free_q.atoms[0]).rows;
  uint64_t const_rows =
      EstimateCrpqAtom(stats, nfa, false, const_q.atoms[0]).rows;
  EXPECT_LT(const_rows, free_rows);
  // 10 distinct big1 sources: pinning one divides by exactly that.
  EXPECT_EQ(const_rows, free_rows / 10);
}

TEST(CostModelTest, RareLabelEstimatedSmallerThanBigLabel) {
  EdgeLabeledGraph g = StarJoinGraph(100, 20, 3);
  GraphSnapshot snapshot(g);
  SnapshotStats stats(snapshot);

  Crpq q = ParseCrpq("q(x) := big1(x, y), rare(x, w)").value();
  Nfa big = Nfa::FromRegex(*q.atoms[0].regex, g);
  Nfa rare = Nfa::FromRegex(*q.atoms[1].regex, g);
  uint64_t big_rows = EstimateCrpqAtom(stats, big, false, q.atoms[0]).rows;
  uint64_t rare_rows = EstimateCrpqAtom(stats, rare, false, q.atoms[1]).rows;
  EXPECT_EQ(rare_rows, 3u);
  EXPECT_EQ(big_rows, 100u * 20u);
  EXPECT_LT(rare_rows, big_rows);
}

TEST(CostModelTest, NullableRegexAddsIdentityPairs) {
  EdgeLabeledGraph g = Chain(4);  // 5 nodes
  GraphSnapshot snapshot(g);
  SnapshotStats stats(snapshot);

  Crpq q = ParseCrpq("q(x, y) := a*(x, y)").value();
  Nfa nfa = Nfa::FromRegex(*q.atoms[0].regex, g);
  AtomEstimate est =
      EstimateCrpqAtom(stats, nfa, q.atoms[0].regex->Nullable(), q.atoms[0]);
  // ε contributes the 5 identity pairs on top of the edge-bounded matches.
  EXPECT_GE(est.rows, 5u);
}

// ---------------------------------------------------------------------------
// Greedy join ordering.

TEST(GreedyJoinOrderTest, SmallestFirstThenConnected) {
  std::vector<Conjunct> conjuncts = {
      {{"x", "y"}, 100, "A"},
      {{"y", "z"}, 5, "B"},
      {{"z", "w"}, 50, "C"},
  };
  ExplainInfo explain;
  std::vector<size_t> order = GreedyJoinOrder(conjuncts, &explain);
  // B is cheapest; C (50, shares z) beats A (100, shares y).
  EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
  ASSERT_TRUE(explain.planned);
  ASSERT_EQ(explain.order.size(), 3u);
  EXPECT_FALSE(explain.order[0].connected);
  EXPECT_TRUE(explain.order[1].connected);
  EXPECT_TRUE(explain.order[2].connected);
}

TEST(GreedyJoinOrderTest, PrefersConnectedOverCheaperCartesian) {
  std::vector<Conjunct> conjuncts = {
      {{"x", "y"}, 10, "A"},
      {{"y", "z"}, 1, "B"},
      {{"z", "w"}, 100, "C"},
      {{"p", "q"}, 2, "D"},  // cheap but disconnected from everything
  };
  ExplainInfo explain;
  std::vector<size_t> order = GreedyJoinOrder(conjuncts, &explain);
  // B first; A and C are connected and beat the cheaper-but-cartesian D.
  EXPECT_EQ(order, (std::vector<size_t>{1, 0, 2, 3}));
  EXPECT_TRUE(explain.order[1].connected);
  EXPECT_TRUE(explain.order[2].connected);
  EXPECT_FALSE(explain.order[3].connected);
}

TEST(GreedyJoinOrderTest, TiesBreakTowardTextualOrder) {
  std::vector<Conjunct> conjuncts = {
      {{"x", "y"}, 7, "A"},
      {{"y", "z"}, 7, "B"},
      {{"z", "w"}, 7, "C"},
  };
  EXPECT_EQ(GreedyJoinOrder(conjuncts), (std::vector<size_t>{0, 1, 2}));
  std::vector<size_t> textual = TextualJoinOrder(conjuncts);
  EXPECT_EQ(textual, (std::vector<size_t>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Relational kernel.

TEST(RelKernelTest, SemiJoinKeepsMatchingRows) {
  rel::Table<CrpqValue> a;
  a.schema = {"x", "y"};
  a.rows = {{CrpqValue(NodeId{1}), CrpqValue(NodeId{2})},
            {CrpqValue(NodeId{3}), CrpqValue(NodeId{4})},
            {CrpqValue(NodeId{5}), CrpqValue(NodeId{6})}};
  rel::Table<CrpqValue> b;
  b.schema = {"y", "z"};
  b.rows = {{CrpqValue(NodeId{2}), CrpqValue(NodeId{9})},
            {CrpqValue(NodeId{6}), CrpqValue(NodeId{9})}};
  rel::Table<CrpqValue> out = rel::SemiJoin(a, b);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0], a.rows[0]);
  EXPECT_EQ(out.rows[1], a.rows[2]);

  // No shared attributes: semijoin keeps everything iff b is non-empty.
  rel::Table<CrpqValue> c;
  c.schema = {"w"};
  EXPECT_TRUE(rel::SemiJoin(a, c).rows.empty());
  c.rows = {{CrpqValue(NodeId{0})}};
  EXPECT_EQ(rel::SemiJoin(a, c).rows.size(), 3u);
}

TEST(RelKernelTest, TrippedContextSkipsProjectNormalization) {
  // The prompt-unwinding contract: once the context has tripped, partial
  // results are about to be discarded, so ProjectHead must not burn time
  // sorting them.
  crpq_internal::Relation joined;
  joined.schema = {"x"};
  joined.rows = {{CrpqValue(NodeId{3})},
                 {CrpqValue(NodeId{1})},
                 {CrpqValue(NodeId{3})}};
  QueryContext ctx;
  ctx.Trip(StopCause::kMemoryBudget);
  std::vector<std::vector<CrpqValue>> rows;
  ASSERT_TRUE(crpq_internal::ProjectHead(joined, {"x"}, &rows, &ctx));
  // Unsorted and undeduped: exactly the raw projection.
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(std::get<NodeId>(rows[0][0]), 3u);
  EXPECT_EQ(std::get<NodeId>(rows[1][0]), 1u);
}

TEST(RelKernelTest, TrippedContextSkipsNormalizeOnCoreRelation) {
  CoreRelation r({"x"});
  r.AddRow({CoreCell(ObjectRef::Node(2))});
  r.AddRow({CoreCell(ObjectRef::Node(1))});
  r.AddRow({CoreCell(ObjectRef::Node(2))});
  QueryContext ctx;
  ctx.Trip(StopCause::kDeadline);
  r.Normalize(&ctx);
  EXPECT_EQ(r.NumRows(), 3u);  // untouched
  r.Normalize();
  EXPECT_EQ(r.NumRows(), 2u);  // untripped normalization still works
}

// ---------------------------------------------------------------------------
// Differential suite: planner order vs textual order, byte-identical.

class DifferentialTest : public ::testing::Test {
 protected:
  /// Executes `text` twice through an engine over `g` — once with the
  /// planner's order, once forced textual — and asserts byte-identical
  /// rendered responses.
  static void ExpectOrderInvariant(PropertyGraph g, QueryLanguage language,
                                   const std::string& text) {
    QueryEngine engine(std::move(g));
    QueryRequest planned;
    planned.language = language;
    planned.text = text;
    QueryRequest textual = planned;
    textual.textual_join_order = true;

    Result<QueryResponse> a = engine.Execute(planned);
    Result<QueryResponse> b = engine.Execute(textual);
    ASSERT_EQ(a.ok(), b.ok()) << text;
    if (!a.ok()) {
      EXPECT_EQ(a.error().message(), b.error().message()) << text;
      return;
    }
    EXPECT_EQ(a.value().text, b.value().text) << text;
    EXPECT_EQ(a.value().num_rows, b.value().num_rows) << text;
  }
};

TEST_F(DifferentialTest, CrpqShapesOnRandomGraphs) {
  const std::string queries[] = {
      // chain
      "q(x, w) := a(x, y), b(y, z), c(z, w)",
      // star
      "q(x) := a(x, y), b(x, z), c(x, w)",
      // cycle
      "q(x) := a(x, y), b(y, z), c(z, x)",
      // regex atoms + a same-variable atom
      "q(x, z) := (a b)(x, y), c*(y, z), a(z, z)",
      // two-atom with shared head variables
      "q(x, y) := (a + b)(x, y), c(y, x)",
  };
  for (uint64_t seed : {1u, 2u, 3u}) {
    EdgeLabeledGraph g = RandomGraph(30, 120, 3, seed);
    for (const std::string& q : queries) {
      ExpectOrderInvariant(ToPropertyGraph(g), QueryLanguage::kCrpq, q);
    }
  }
}

TEST_F(DifferentialTest, CrpqOnPessimalStarJoin) {
  EdgeLabeledGraph g = StarJoinGraph(40, 10, 3);
  ExpectOrderInvariant(ToPropertyGraph(g), QueryLanguage::kCrpq,
                       "q(x) := big1(x, y), big2(x, z), rare(x, w)");
  ExpectOrderInvariant(ToPropertyGraph(g), QueryLanguage::kCrpq,
                       "q(x, w) := big1(x, y), rare(x, w), big2(x, z)");
}

TEST_F(DifferentialTest, DlCrpqWithDataTests) {
  const std::string queries[] = {
      "q(x, z) := ( ()[a] )+ () (x, y), ()[a][k >= 3]() (y, z)",
      "q(x) := ()[a][k >= 5]() (x, y), ()[a]() (y, z), ()[a]() (z, x)",
      "q(x, y) := (k <= 2)( [a] )+ () (x, y), ()[a]() (y, y)",
  };
  for (uint64_t seed : {5u, 6u}) {
    PropertyGraph g = RandomPropertyGraph(25, 100, 8, seed);
    for (const std::string& q : queries) {
      ExpectOrderInvariant(g, QueryLanguage::kDlCrpq, q);
    }
  }
}

TEST_F(DifferentialTest, CoreGqlMultiPatternBlocks) {
  const std::string queries[] = {
      "MATCH (x)->(y), (y)->(z) RETURN x, z",
      "MATCH (x)->(x1), (x)->(x2), (x1)->(y) WHERE x1.k = x2.k "
      "RETURN x, y",
      "MATCH (x)->(y) RETURN x UNION MATCH (x)->(y), (y)->(z) RETURN x",
      "MATCH (x)->(y), (y)->(z) RETURN x EXCEPT MATCH (x)->(x) RETURN x",
  };
  for (uint64_t seed : {8u, 9u}) {
    PropertyGraph g = RandomPropertyGraph(20, 70, 4, seed);
    for (const std::string& q : queries) {
      ExpectOrderInvariant(g, QueryLanguage::kCoreGql, q);
    }
  }
}

TEST_F(DifferentialTest, ErrorsSurfaceIdenticallyUnderReordering) {
  // Unknown constants are validated in textual order before any join, so
  // the planner's reordering never changes which error the user sees.
  EdgeLabeledGraph g = StarJoinGraph(10, 4, 2);
  ExpectOrderInvariant(ToPropertyGraph(g), QueryLanguage::kCrpq,
                       "q(x) := big1(x, y), big2(@nope, z), rare(@missing, w)");
}

// ---------------------------------------------------------------------------
// Planner effect: the compiled plan actually reorders a pessimal query.

TEST(PlannerChoiceTest, RareAtomMovesFirstOnStarJoin) {
  PropertyGraph g = ToPropertyGraph(StarJoinGraph(50, 10, 2));
  GraphSnapshot snapshot(g);
  SnapshotStats stats(snapshot);
  Result<PlanPtr> plan =
      CompilePlan(QueryLanguage::kCrpq,
                  "q(x) := big1(x, y), big2(x, z), rare(x, w)", g, 0, {},
                  &stats);
  ASSERT_TRUE(plan.ok());
  const auto* crpq = std::get_if<CrpqPlan>(&plan.value()->compiled);
  ASSERT_NE(crpq, nullptr);
  ASSERT_EQ(crpq->join_order.size(), 3u);
  EXPECT_EQ(crpq->join_order[0], 2u);  // rare(x, w) leads
  ASSERT_TRUE(crpq->explain.planned);
  EXPECT_NE(crpq->explain.order[0].label.find("rare"), std::string::npos);
  // Every later conjunct shares x: no cartesian steps.
  EXPECT_TRUE(crpq->explain.order[1].connected);
  EXPECT_TRUE(crpq->explain.order[2].connected);
}

TEST(PlannerChoiceTest, WithoutStatsOrderIsTextual) {
  PropertyGraph g = ToPropertyGraph(StarJoinGraph(10, 4, 2));
  Result<PlanPtr> plan =
      CompilePlan(QueryLanguage::kCrpq,
                  "q(x) := big1(x, y), big2(x, z), rare(x, w)", g, 0, {},
                  nullptr);
  ASSERT_TRUE(plan.ok());
  const auto* crpq = std::get_if<CrpqPlan>(&plan.value()->compiled);
  ASSERT_NE(crpq, nullptr);
  EXPECT_EQ(crpq->join_order, (std::vector<size_t>{0, 1, 2}));
  EXPECT_FALSE(crpq->explain.planned);
}

// ---------------------------------------------------------------------------
// Plan cache: cached executions never recompile automata.

TEST(PlanCacheTest, CrpqCacheHitDoesNotRecompileNfas) {
  QueryEngine engine(ToPropertyGraph(RandomGraph(20, 60, 3, 4)));
  QueryRequest request;
  request.language = QueryLanguage::kCrpq;
  request.text = "q(x, z) := a(x, y), b(y, z)";

  Result<QueryResponse> first = engine.Execute(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);

  uint64_t compiles_before = Nfa::CompileCount();
  Result<QueryResponse> second = engine.Execute(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(Nfa::CompileCount(), compiles_before);
  EXPECT_EQ(second.value().text, first.value().text);
}

TEST(PlanCacheTest, DlCrpqCacheHitDoesNotRecompileNfas) {
  QueryEngine engine(RandomPropertyGraph(15, 50, 5, 21));
  QueryRequest request;
  request.language = QueryLanguage::kDlCrpq;
  request.text = "q(x, z) := ( ()[a] )+ () (x, y), ()[a][k >= 2]() (y, z)";

  Result<QueryResponse> first = engine.Execute(request);
  ASSERT_TRUE(first.ok());
  uint64_t compiles_before = DlNfa::CompileCount();
  Result<QueryResponse> second = engine.Execute(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(DlNfa::CompileCount(), compiles_before);
}

// ---------------------------------------------------------------------------
// EXPLAIN surface.

TEST(ExplainTest, CrpqExplainShowsJoinOrderWithoutExecuting) {
  QueryEngine engine(ToPropertyGraph(StarJoinGraph(30, 8, 2)));
  QueryRequest request;
  request.language = QueryLanguage::kCrpq;
  request.text = "q(x) := big1(x, y), big2(x, z), rare(x, w)";
  request.explain = true;

  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().text.find("join order (planner)"), std::string::npos);
  EXPECT_NE(r.value().text.find("rare"), std::string::npos);
  EXPECT_NE(r.value().text.find("est_rows="), std::string::npos);
  EXPECT_EQ(r.value().num_rows, 0u);  // nothing executed
}

TEST(ExplainTest, NonConjunctiveLanguageHasNothingToReorder) {
  QueryEngine engine(ToPropertyGraph(Chain(3)));
  QueryRequest request;
  request.language = QueryLanguage::kRpq;
  request.text = "a a";
  request.explain = true;
  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().text.find("nothing to reorder"), std::string::npos);
}

TEST(ExplainTest, CoreGqlExplainCoversEveryBlock) {
  QueryEngine engine(RandomPropertyGraph(10, 30, 3, 2));
  QueryRequest request;
  request.language = QueryLanguage::kCoreGql;
  request.text =
      "MATCH (x)->(y), (y)->(z) RETURN x "
      "UNION MATCH (x)->(x) RETURN x";
  request.explain = true;
  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().text.find("block 1:"), std::string::npos);
  EXPECT_NE(r.value().text.find("block 2:"), std::string::npos);
}

}  // namespace
}  // namespace gqzoo
