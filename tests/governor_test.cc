// The resource governor's building blocks in isolation: QueryContext
// budget accounting and first-cause-wins stop reporting, the deterministic
// fail-point registry, and the admission controller — plus each named
// fail-point injected through the full engine stack.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/engine/governor.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/util/failpoint.h"
#include "src/util/query_context.h"

namespace gqzoo {
namespace {

// --------------------------------------------------------------- QueryContext

TEST(QueryContextTest, UnlimitedContextNeverStops) {
  QueryContext ctx;
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.ChargeMemory(1ull << 40));
  EXPECT_TRUE(ctx.ChargeRows(1ull << 30));
  EXPECT_EQ(ctx.stop_cause(), StopCause::kNone);
}

TEST(QueryContextTest, NullContextHelpersAreNoOps) {
  const QueryContext* null_ctx = nullptr;
  EXPECT_FALSE(ShouldStop(null_ctx));
  EXPECT_TRUE(ChargeMemory(null_ctx, 1ull << 40));
  EXPECT_TRUE(ChargeRows(null_ctx));
}

TEST(QueryContextTest, StepBudgetTripsAtExactCount) {
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.steps = 10;
  ctx.set_budgets(budgets);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(ctx.ShouldStop()) << i;
  EXPECT_TRUE(ctx.ShouldStop());  // step 11 exceeds the budget
  EXPECT_EQ(ctx.stop_cause(), StopCause::kStepBudget);
  EXPECT_EQ(ctx.Report().steps, 11u);
}

TEST(QueryContextTest, MemoryAccountingTracksPeakAndRelease) {
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.memory_bytes = 1000;
  ctx.set_budgets(budgets);

  EXPECT_TRUE(ctx.ChargeMemory(600));
  EXPECT_TRUE(ctx.ChargeMemory(300));
  EXPECT_EQ(ctx.memory_bytes(), 900u);
  ctx.ReleaseMemory(500);
  EXPECT_EQ(ctx.memory_bytes(), 400u);
  EXPECT_EQ(ctx.memory_peak_bytes(), 900u);  // peak survives the release
  EXPECT_TRUE(ctx.ChargeMemory(600));        // back to exactly the limit
  EXPECT_FALSE(ctx.ChargeMemory(1));         // one byte over trips
  EXPECT_EQ(ctx.stop_cause(), StopCause::kMemoryBudget);
  EXPECT_TRUE(ctx.ShouldStop());
}

TEST(QueryContextTest, RowBudgetTrips) {
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.result_rows = 3;
  ctx.set_budgets(budgets);
  EXPECT_TRUE(ctx.ChargeRows(3));
  EXPECT_FALSE(ctx.ChargeRows(1));
  EXPECT_EQ(ctx.stop_cause(), StopCause::kRowBudget);
}

TEST(QueryContextTest, FirstCauseWins) {
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.memory_bytes = 100;
  ctx.set_budgets(budgets);
  EXPECT_FALSE(ctx.ChargeMemory(200));
  ctx.RequestCancel();  // later cancellation must not overwrite the cause
  EXPECT_EQ(ctx.stop_cause(), StopCause::kMemoryBudget);
  EXPECT_STREQ(StopCauseName(ctx.stop_cause()), "MEMORY_BUDGET");
}

TEST(QueryContextTest, DeadlineTripsViaShouldStopProbe) {
  QueryContext ctx = QueryContext::WithTimeout(std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // ShouldStop probes the clock every 64 steps; within 64 iterations the
  // expired deadline must surface.
  bool stopped = false;
  for (int i = 0; i < 64 && !stopped; ++i) stopped = ctx.ShouldStop();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(ctx.stop_cause(), StopCause::kDeadline);
}

TEST(QueryContextTest, BudgetReportRendersLimitsAndConsumption) {
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.memory_bytes = 64;
  ctx.set_budgets(budgets);
  EXPECT_FALSE(ctx.ChargeMemory(100));
  std::string report = ctx.Report().ToString();
  EXPECT_NE(report.find("MEMORY_BUDGET"), std::string::npos) << report;
  EXPECT_NE(report.find("memory=100/64"), std::string::npos) << report;
  EXPECT_NE(report.find("unlimited"), std::string::npos) << report;
}

TEST(ScopedMemoryChargeTest, ReleasesOnDestruction) {
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.memory_bytes = 1000;
  ctx.set_budgets(budgets);
  {
    ScopedMemoryCharge scope(&ctx);
    EXPECT_TRUE(scope.Charge(400));
    EXPECT_TRUE(scope.Charge(300));
    scope.Release(200);
    EXPECT_EQ(ctx.memory_bytes(), 500u);
  }
  EXPECT_EQ(ctx.memory_bytes(), 0u);          // remainder released
  EXPECT_EQ(ctx.memory_peak_bytes(), 700u);   // peak preserved
}

// ------------------------------------------------------------------ Failpoint

TEST(FailpointTest, FiresExactlyOnceThenDisarms) {
  Failpoint::DisarmAll();
  Failpoint::Arm("test.point");
  EXPECT_TRUE(Failpoint::ShouldFail("test.point"));
  EXPECT_FALSE(Failpoint::ShouldFail("test.point"));  // auto-disarmed
  EXPECT_EQ(Failpoint::FireCount("test.point"), 1u);
}

TEST(FailpointTest, AfterNSkipsFirstPasses) {
  Failpoint::DisarmAll();
  Failpoint::Arm("test.after", /*after_n=*/3);
  EXPECT_FALSE(Failpoint::ShouldFail("test.after"));
  EXPECT_FALSE(Failpoint::ShouldFail("test.after"));
  EXPECT_FALSE(Failpoint::ShouldFail("test.after"));
  EXPECT_TRUE(Failpoint::ShouldFail("test.after"));
  EXPECT_FALSE(Failpoint::ShouldFail("test.after"));
}

TEST(FailpointTest, UnarmedPointsAreFreeAndSilent) {
  Failpoint::DisarmAll();
  EXPECT_FALSE(Failpoint::ShouldFail("test.never.armed"));
  EXPECT_EQ(Failpoint::FireCount("test.never.armed"), 0u);
}

TEST(FailpointTest, ScopedFailpointDisarmsOnExit) {
  Failpoint::DisarmAll();
  {
    ScopedFailpoint scoped("test.scoped");
    // Never hit inside the scope.
  }
  EXPECT_FALSE(Failpoint::ShouldFail("test.scoped"));
}

// ------------------------------------------------------- ResourceGovernor

TEST(ResourceGovernorTest, AdmitsUpToCapacityThenSheds) {
  GovernorOptions options;
  options.admission_capacity = 3;
  ResourceGovernor governor(options);
  EXPECT_TRUE(governor.TryAdmit());
  EXPECT_TRUE(governor.TryAdmit());
  EXPECT_TRUE(governor.TryAdmit());
  EXPECT_FALSE(governor.TryAdmit());  // full
  EXPECT_EQ(governor.shed_total(), 1u);
  EXPECT_EQ(governor.high_water(), 3u);

  governor.BeginExecution();
  governor.EndExecution();
  EXPECT_EQ(governor.in_flight(), 2u);
  EXPECT_TRUE(governor.TryAdmit());  // slot freed
  EXPECT_EQ(governor.high_water(), 3u);
}

TEST(ResourceGovernorTest, CancelAdmissionFreesTheSlot) {
  GovernorOptions options;
  options.admission_capacity = 1;
  ResourceGovernor governor(options);
  EXPECT_TRUE(governor.TryAdmit());
  EXPECT_FALSE(governor.TryAdmit());
  governor.CancelAdmission();
  EXPECT_TRUE(governor.TryAdmit());
}

TEST(ResourceGovernorTest, ZeroCapacityDisablesShedding) {
  ResourceGovernor governor(GovernorOptions{/*admission_capacity=*/0,
                                            /*max_concurrent=*/0});
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(governor.TryAdmit());
  EXPECT_EQ(governor.shed_total(), 0u);
}

// ----------------------------------------- fail points through the engine

// Every evaluator has a named injection site; arming it must surface as a
// clean kResourceExhausted (or kOverloaded for the submit site) through
// the full engine stack, proving the unwind paths, not just the happy path.

QueryRequest Budgeted(QueryLanguage language, const std::string& text) {
  QueryRequest request;
  request.language = language;
  request.text = text;
  // A huge (but set) budget forces a governed context without ever
  // tripping organically — only the fail point can stop the query.
  request.memory_budget = 1ull << 40;
  return request;
}

TEST(FailpointInjectionTest, RpqProductBfs) {
  Failpoint::DisarmAll();
  QueryEngine engine(ToPropertyGraph(Clique(4)));
  ScopedFailpoint scoped("rpq.product.bfs");
  Result<QueryResponse> r = engine.Execute(Budgeted(QueryLanguage::kRpq, "a+"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(Failpoint::FireCount("rpq.product.bfs"), 1u);
  // Disarmed: the same query now succeeds.
  EXPECT_TRUE(engine.Execute(Budgeted(QueryLanguage::kRpq, "a+")).ok());
}

TEST(FailpointInjectionTest, CrpqJoinAlloc) {
  Failpoint::DisarmAll();
  QueryEngine engine(ToPropertyGraph(Clique(4)));
  ScopedFailpoint scoped("crpq.join.alloc");
  Result<QueryResponse> r = engine.Execute(
      Budgeted(QueryLanguage::kCrpq, "q(x, z) :- a+(x, y), a+(y, z)"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(Failpoint::FireCount("crpq.join.alloc"), 1u);
}

TEST(FailpointInjectionTest, CoreGqlFrontier) {
  Failpoint::DisarmAll();
  QueryEngine engine(ToPropertyGraph(Clique(4)));
  ScopedFailpoint scoped("coregql.frontier");
  Result<QueryResponse> r = engine.Execute(
      Budgeted(QueryLanguage::kGqlGroup, "(x) (-[t:a]->(v)){1,3} (y)"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted);
}

TEST(FailpointInjectionTest, PmrEnumerateEmit) {
  Failpoint::DisarmAll();
  QueryEngine engine(ToPropertyGraph(Clique(4)));
  ScopedFailpoint scoped("pmr.enumerate.emit");
  QueryRequest request = Budgeted(QueryLanguage::kPaths, "a+");
  request.paths.from = "q0";
  request.paths.to = "q1";
  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_FALSE(r.ok());
  // The emit site cancels (simulating an alloc failure mid-emission).
  EXPECT_EQ(r.error().code(), ErrorCode::kCancelled);
}

TEST(FailpointInjectionTest, DatatestRecurse) {
  Failpoint::DisarmAll();
  QueryEngine engine(ToPropertyGraph(Clique(4)));
  ScopedFailpoint scoped("datatest.recurse");
  Result<QueryResponse> r = engine.Execute(Budgeted(
      QueryLanguage::kDlCrpq, "q(x, y) := ( ()[a^z] )+ () (x, y)"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted);
}

TEST(FailpointInjectionTest, EngineSubmitShedsOneQuery) {
  Failpoint::DisarmAll();
  QueryEngine engine(Figure3Graph());
  ScopedFailpoint scoped("engine.submit");
  QueryRequest request;
  request.language = QueryLanguage::kRpq;
  request.text = "Transfer";
  Result<QueryResponse> shed = engine.Submit(request).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code(), ErrorCode::kOverloaded);
  EXPECT_EQ(engine.metrics().overloaded_shed.value(), 1u);
  // Fired once; the next submission goes through.
  EXPECT_TRUE(engine.Submit(request).get().ok());
}

}  // namespace
}  // namespace gqzoo
