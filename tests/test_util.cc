#include "tests/test_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>

namespace gqzoo {
namespace testing_util {

RegexPtr Rx(const std::string& text) {
  Result<RegexPtr> r = ParseRegex(text, RegexDialect::kPlain);
  if (!r.ok()) {
    fprintf(stderr, "Rx(%s): %s\n", text.c_str(), r.error().message().c_str());
    abort();
  }
  return r.value();
}

RegexPtr DlRx(const std::string& text) {
  Result<RegexPtr> r = ParseRegex(text, RegexDialect::kDl);
  if (!r.ok()) {
    fprintf(stderr, "DlRx(%s): %s\n", text.c_str(),
            r.error().message().c_str());
    abort();
  }
  return r.value();
}

std::vector<Path> AllPathsFrom(const EdgeLabeledGraph& g, NodeId u,
                               size_t max_len) {
  std::vector<Path> out;
  std::vector<ObjectRef> current = {ObjectRef::Node(u)};
  std::function<void(NodeId, size_t)> dfs = [&](NodeId node, size_t len) {
    out.push_back(Path::MakeUnchecked(current));
    if (len >= max_len) return;
    for (EdgeId e : g.OutEdges(node)) {
      current.push_back(ObjectRef::Edge(e));
      current.push_back(ObjectRef::Node(g.Tgt(e)));
      dfs(g.Tgt(e), len + 1);
      current.pop_back();
      current.pop_back();
    }
  };
  dfs(u, 0);
  return out;
}

std::vector<Path> MatchingPathsBruteForce(const EdgeLabeledGraph& g,
                                          const Nfa& nfa, NodeId u, NodeId v,
                                          size_t max_len) {
  std::vector<Path> out;
  for (const Path& p : AllPathsFrom(g, u, max_len)) {
    if (p.Tgt(g) == v && nfa.AcceptsWord(p.ELab(g))) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PathBinding> MatchingBindingsBruteForce(const EdgeLabeledGraph& g,
                                                    const Nfa& nfa, NodeId u,
                                                    NodeId v, size_t max_len) {
  // Simulate all runs over all paths, collecting captures per run.
  std::vector<PathBinding> out;
  std::vector<ObjectRef> current = {ObjectRef::Node(u)};
  Binding mu;
  std::function<void(NodeId, uint32_t, size_t)> dfs = [&](NodeId node,
                                                          uint32_t state,
                                                          size_t len) {
    if (node == v && nfa.accepting(state)) {
      out.push_back({Path::MakeUnchecked(current), mu});
    }
    if (len >= max_len) return;
    for (EdgeId e : g.OutEdges(node)) {
      LabelId l = g.EdgeLabel(e);
      for (const Nfa::Transition& t : nfa.Out(state)) {
        if (!t.pred.Matches(l)) continue;
        current.push_back(ObjectRef::Edge(e));
        current.push_back(ObjectRef::Node(g.Tgt(e)));
        bool captured = t.capture != Nfa::kNoCapture;
        if (captured) {
          mu.Append(nfa.capture_names()[t.capture], ObjectRef::Edge(e));
        }
        dfs(g.Tgt(e), t.to, len + 1);
        if (captured) {
          const std::string& var = nfa.capture_names()[t.capture];
          mu.lists[var].pop_back();
          if (mu.lists[var].empty()) mu.lists.erase(var);
        }
        current.pop_back();
        current.pop_back();
      }
    }
  };
  dfs(u, nfa.initial(), 0);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> PairNames(
    const EdgeLabeledGraph& g,
    const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  std::vector<std::string> out;
  for (const auto& [u, v] : pairs) {
    out.push_back(std::string(g.NodeName(u)) + "->" +
                  std::string(g.NodeName(v)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace testing_util
}  // namespace gqzoo
