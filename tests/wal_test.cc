// WAL and checkpoint codec tests: framing, CRC verification, the torn-tail
// vs mid-log corruption policy, payload round-trips (including escaped
// string values), the WalFile append handle, group commit, and the
// checkpoint's id-faithful graph round trip.
//
// The central property pinned here: EVERY byte-prefix truncation of a valid
// WAL decodes without kDataLoss (a crash can only tear the tail), while any
// damage with intact records after it — or any damage at all to a
// checkpoint — refuses to serve with kDataLoss.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/graph/graph_io.h"
#include "src/storage/checkpoint.h"
#include "src/storage/crc32c.h"
#include "src/storage/wal.h"

namespace gqzoo::storage {
namespace {

/// A per-test scratch directory under the system temp dir, removed on
/// destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "gqzoo_wal_test.XXXXXX")
                           .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string File(const std::string& name) const { return path_ + "/" + name; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<MutationOp> SampleOps() {
  return {
      MutationOp::AddNode("n1", "Account"),
      MutationOp::AddEdge("e1", "n1", "n1", "Transfer"),
      MutationOp::SetNodeProperty("n1", "balance", Value(int64_t{-42})),
  };
}

/// Three records with consecutive LSNs starting at 1, as a full byte image.
std::string ThreeRecordLog() {
  std::string log = WalFileHeader();
  AppendWalRecord(&log, 1, SampleOps());
  AppendWalRecord(&log, 2, {MutationOp::SetLabel("n1", "Bank")});
  AppendWalRecord(&log, 3, {MutationOp::RemoveEdge("e1"),
                            MutationOp::RemoveNode("n1")});
  return log;
}

/// Byte offsets of the record boundaries in `log` (after the magic, after
/// record 0, ...), derived from the frame headers.
std::vector<size_t> RecordBoundaries(const std::string& log) {
  std::vector<size_t> out = {kWalHeaderBytes};
  size_t pos = kWalHeaderBytes;
  while (pos + kWalFrameBytes <= log.size()) {
    uint32_t len = 0;
    std::memcpy(&len, log.data() + pos, sizeof(len));
    pos += kWalFrameBytes + len;
    out.push_back(pos);
  }
  return out;
}

TEST(WalCodecTest, EmptyLogIsCleanAndRecordless) {
  Result<WalDecodeResult> r = DecodeWal(WalFileHeader());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().records.empty());
  EXPECT_EQ(r.value().tail, WalTail::kClean);
  EXPECT_EQ(r.value().valid_bytes, kWalHeaderBytes);
}

TEST(WalCodecTest, RecordsRoundTripThroughTheFraming) {
  std::string log = ThreeRecordLog();
  Result<WalDecodeResult> r = DecodeWal(log);
  ASSERT_TRUE(r.ok()) << r.error().message();
  ASSERT_EQ(r.value().records.size(), 3u);
  EXPECT_EQ(r.value().tail, WalTail::kClean);
  EXPECT_EQ(r.value().valid_bytes, log.size());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.value().records[i].lsn, i + 1);
  }
  const std::vector<MutationOp>& ops = r.value().records[0].ops;
  ASSERT_EQ(ops.size(), SampleOps().size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].ToString(), SampleOps()[i].ToString());
  }
}

TEST(WalCodecTest, EscapedStringValuesRoundTripExactly) {
  // The payload is line-oriented shell syntax; values with quotes,
  // backslashes, tabs, and newlines must survive only because the op
  // serializer escapes them.
  std::vector<std::string> nasty = {
      "she said \"hi\"", "back\\slash", "tab\there", "line\nbreak", "",
  };
  std::string log = WalFileHeader();
  uint64_t lsn = 1;
  for (const std::string& s : nasty) {
    AppendWalRecord(&log, lsn++,
                    {MutationOp::SetNodeProperty("n", "p", Value(s))});
  }
  Result<WalDecodeResult> r = DecodeWal(log);
  ASSERT_TRUE(r.ok()) << r.error().message();
  ASSERT_EQ(r.value().records.size(), nasty.size());
  for (size_t i = 0; i < nasty.size(); ++i) {
    ASSERT_EQ(r.value().records[i].ops.size(), 1u);
    EXPECT_EQ(r.value().records[i].ops[0].value.as_string(), nasty[i])
        << "value " << i << " did not round-trip";
  }
}

TEST(WalCodecTest, EveryPrefixTruncationIsTornNeverDataLoss) {
  std::string log = ThreeRecordLog();
  std::vector<size_t> boundaries = RecordBoundaries(log);
  for (size_t cut = kWalHeaderBytes; cut < log.size(); ++cut) {
    Result<WalDecodeResult> r = DecodeWal(log.substr(0, cut));
    ASSERT_TRUE(r.ok()) << "cut at " << cut << " byte(s): "
                        << r.error().message();
    // The valid prefix is always the last whole-record boundary <= cut.
    size_t expect_valid = kWalHeaderBytes;
    size_t expect_records = 0;
    for (size_t i = 0; i < boundaries.size(); ++i) {
      if (boundaries[i] <= cut) {
        expect_valid = boundaries[i];
        expect_records = i;
      }
    }
    EXPECT_EQ(r.value().valid_bytes, expect_valid) << "cut at " << cut;
    EXPECT_EQ(r.value().records.size(), expect_records) << "cut at " << cut;
    if (cut == expect_valid) {
      EXPECT_EQ(r.value().tail, WalTail::kClean) << "cut at " << cut;
    } else {
      EXPECT_EQ(r.value().tail, WalTail::kTorn) << "cut at " << cut;
      EXPECT_FALSE(r.value().warning.empty()) << "cut at " << cut;
    }
  }
}

TEST(WalCodecTest, CorruptionBeforeIntactRecordsIsDataLoss) {
  std::string log = ThreeRecordLog();
  std::vector<size_t> boundaries = RecordBoundaries(log);
  // Flip one payload byte inside record 0 — records 1 and 2 after it are
  // intact, so this cannot be a torn append.
  log[boundaries[0] + kWalFrameBytes + 2] ^= 0x40;
  Result<WalDecodeResult> r = DecodeWal(log);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDataLoss);
}

TEST(WalCodecTest, CorruptFinalRecordIsATornTail) {
  std::string log = ThreeRecordLog();
  std::vector<size_t> boundaries = RecordBoundaries(log);
  log[boundaries[2] + kWalFrameBytes + 2] ^= 0x40;
  Result<WalDecodeResult> r = DecodeWal(log);
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_EQ(r.value().tail, WalTail::kTorn);
  EXPECT_EQ(r.value().records.size(), 2u);
  EXPECT_EQ(r.value().valid_bytes, boundaries[2]);
}

TEST(WalCodecTest, BadMagicIsDataLoss) {
  std::string log = ThreeRecordLog();
  log[0] ^= 0x01;
  Result<WalDecodeResult> r = DecodeWal(log);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDataLoss);
}

TEST(WalCodecTest, LsnGapIsDataLoss) {
  std::string log = WalFileHeader();
  AppendWalRecord(&log, 1, SampleOps());
  AppendWalRecord(&log, 3, SampleOps());  // 2 is missing
  Result<WalDecodeResult> r = DecodeWal(log);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDataLoss);
}

TEST(WalCodecTest, ImplausiblePayloadLengthIsDataLoss) {
  std::string log = WalFileHeader();
  uint32_t len = static_cast<uint32_t>(kMaxWalPayloadBytes + 1);
  uint32_t crc = 0;
  log.append(reinterpret_cast<const char*>(&len), sizeof(len));
  log.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  log += "xxxx";
  Result<WalDecodeResult> r = DecodeWal(log);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDataLoss);
}

TEST(WalCodecTest, GarbageOpLineInsideCrcCleanRecordIsDataLoss) {
  // A record whose CRC verifies but whose payload is not shell syntax: the
  // checksum says "this is what was written", so an unparseable op is real
  // corruption at write time, not a torn read.
  std::string payload;
  uint64_t lsn = 1;
  payload.append(reinterpret_cast<const char*>(&lsn), sizeof(lsn));
  payload += "this-is-not-a-mutation op";
  std::string log = WalFileHeader();
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32c(payload.data(), payload.size());
  log.append(reinterpret_cast<const char*>(&len), sizeof(len));
  log.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  log += payload;
  Result<WalDecodeResult> r = DecodeWal(log);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDataLoss);
}

TEST(WalFileTest, CreateAppendReopenAppend) {
  TempDir dir;
  std::string path = dir.File("wal.log");
  WalFileOptions opts;  // fsync on, no group commit

  Result<std::unique_ptr<WalFile>> created = WalFile::Create(path);
  ASSERT_TRUE(created.ok()) << created.error().message();
  std::unique_ptr<WalFile> wal = std::move(created).value();
  ASSERT_TRUE(wal->Append(1, SampleOps(), opts).ok());
  ASSERT_TRUE(wal->Append(2, {MutationOp::SetLabel("n1", "Bank")}, opts).ok());
  EXPECT_EQ(wal->appended_records(), 2u);
  uint64_t valid = wal->bytes();
  wal.reset();  // clean close

  Result<std::string> bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value().size(), valid);
  Result<WalDecodeResult> first = DecodeWal(bytes.value());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().records.size(), 2u);

  Result<std::unique_ptr<WalFile>> reopened = WalFile::OpenForAppend(path, valid);
  ASSERT_TRUE(reopened.ok()) << reopened.error().message();
  wal = std::move(reopened).value();
  ASSERT_TRUE(wal->Append(3, {MutationOp::RemoveNode("n1")}, opts).ok());
  wal.reset();

  bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  Result<WalDecodeResult> second = DecodeWal(bytes.value());
  ASSERT_TRUE(second.ok()) << second.error().message();
  ASSERT_EQ(second.value().records.size(), 3u);
  EXPECT_EQ(second.value().records[2].lsn, 3u);
}

TEST(WalFileTest, OpenForAppendPhysicallyRemovesATornTail) {
  TempDir dir;
  std::string path = dir.File("wal.log");
  WalFileOptions opts;
  Result<std::unique_ptr<WalFile>> created = WalFile::Create(path);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<WalFile> wal = std::move(created).value();
  ASSERT_TRUE(wal->Append(1, SampleOps(), opts).ok());
  uint64_t valid = wal->bytes();
  wal.reset();

  // Simulate a crash mid-append: a few bytes of the next record's header
  // reached the disk (a real torn append leaves a prefix of a valid
  // record, so the fragment must be shorter than a full frame header — a
  // complete header with garbage in it is mid-log corruption, not a tear).
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "\x03torn";
  }
  Result<std::string> damaged = ReadFileBytes(path);
  ASSERT_TRUE(damaged.ok());
  Result<WalDecodeResult> dec = DecodeWal(damaged.value());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value().tail, WalTail::kTorn);
  EXPECT_EQ(dec.value().valid_bytes, valid);

  Result<std::unique_ptr<WalFile>> reopened =
      WalFile::OpenForAppend(path, dec.value().valid_bytes);
  ASSERT_TRUE(reopened.ok());
  wal = std::move(reopened).value();
  ASSERT_TRUE(wal->Append(2, {MutationOp::AddNode("n2", "A")}, opts).ok());
  wal.reset();

  Result<std::string> repaired = ReadFileBytes(path);
  ASSERT_TRUE(repaired.ok());
  Result<WalDecodeResult> clean = DecodeWal(repaired.value());
  ASSERT_TRUE(clean.ok()) << clean.error().message();
  EXPECT_EQ(clean.value().tail, WalTail::kClean);
  ASSERT_EQ(clean.value().records.size(), 2u);
  EXPECT_EQ(clean.value().records[1].lsn, 2u);
}

TEST(WalFileTest, GroupCommitAmortizesFsyncAcrossAppends) {
  TempDir dir;

  // Baseline: fsync-per-append syncs once per record.
  Result<std::unique_ptr<WalFile>> created = WalFile::Create(dir.File("a.log"));
  ASSERT_TRUE(created.ok());
  std::unique_ptr<WalFile> every = std::move(created).value();
  WalFileOptions sync_each;
  for (uint64_t lsn = 1; lsn <= 20; ++lsn) {
    ASSERT_TRUE(every->Append(lsn, SampleOps(), sync_each).ok());
  }
  EXPECT_EQ(every->syncs(), 20u);

  // A wide group-commit window: the first append syncs (window starts
  // empty), later appends ride the window.
  created = WalFile::Create(dir.File("b.log"));
  ASSERT_TRUE(created.ok());
  std::unique_ptr<WalFile> grouped = std::move(created).value();
  WalFileOptions windowed;
  windowed.group_commit_window_ms = 60000;
  for (uint64_t lsn = 1; lsn <= 20; ++lsn) {
    ASSERT_TRUE(grouped->Append(lsn, SampleOps(), windowed).ok());
  }
  EXPECT_LT(grouped->syncs(), 3u)
      << "a 60s window must not fsync per append";
  uint64_t before = grouped->syncs();
  ASSERT_TRUE(grouped->Sync().ok());  // shutdown flush
  EXPECT_EQ(grouped->syncs(), before + 1);
  ASSERT_TRUE(grouped->Sync().ok());  // nothing unsynced: no extra fsync
  EXPECT_EQ(grouped->syncs(), before + 1);

  // Both files hold identical records regardless of sync policy.
  Result<std::string> a = ReadFileBytes(dir.File("a.log"));
  Result<std::string> b = ReadFileBytes(dir.File("b.log"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
}

PropertyGraph CheckpointFixture() {
  Result<PropertyGraph> g = ParsePropertyGraph(
      "node a :Account { balance = 10, note = \"has \\\"quotes\\\"\" }\n"
      "node b :Account { ratio = 2.5 }\n"
      "node c :Bank { open = true }\n"
      "edge t0 :Transfer a -> b { amount = 7 }\n"
      "edge t1 :Owns c -> a\n");
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(CheckpointCodecTest, GraphRoundTripsByteIdentically) {
  PropertyGraph g = CheckpointFixture();
  std::string before = PropertyGraphToText(g);
  std::string image = EncodeCheckpoint(g, 77);
  Result<CheckpointData> d = DecodeCheckpoint(image);
  ASSERT_TRUE(d.ok()) << d.error().message();
  EXPECT_EQ(d.value().covered_lsn, 77u);
  EXPECT_EQ(PropertyGraphToText(d.value().graph), before);
}

TEST(CheckpointCodecTest, AnyDamageIsDataLoss) {
  // Unlike the WAL, checkpoints rename into place whole, so there is no
  // torn-tail leniency: every flipped byte and every truncation refuses.
  std::string image = EncodeCheckpoint(CheckpointFixture(), 5);
  for (size_t pos : {size_t{0}, size_t{9}, kCheckpointHeaderBytes + 3,
                     image.size() / 2, image.size() - 1}) {
    std::string damaged = image;
    damaged[pos] ^= 0x20;
    Result<CheckpointData> d = DecodeCheckpoint(damaged);
    ASSERT_FALSE(d.ok()) << "flipped byte at " << pos << " was accepted";
    EXPECT_EQ(d.error().code(), ErrorCode::kDataLoss) << "byte " << pos;
  }
  for (size_t cut = 0; cut < image.size(); cut += 7) {
    Result<CheckpointData> d = DecodeCheckpoint(image.substr(0, cut));
    ASSERT_FALSE(d.ok()) << "truncation to " << cut << " bytes was accepted";
    EXPECT_EQ(d.error().code(), ErrorCode::kDataLoss) << "cut " << cut;
  }
}

TEST(CheckpointCodecTest, EmptyGraphRoundTrips) {
  PropertyGraph g;
  std::string image = EncodeCheckpoint(g, 0);
  Result<CheckpointData> d = DecodeCheckpoint(image);
  ASSERT_TRUE(d.ok()) << d.error().message();
  EXPECT_EQ(d.value().covered_lsn, 0u);
  EXPECT_EQ(d.value().graph.NumNodes(), 0u);
  EXPECT_EQ(d.value().graph.NumEdges(), 0u);
}

}  // namespace
}  // namespace gqzoo::storage
