#include <gtest/gtest.h>

#include <set>

#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/nested/regular_queries.h"

namespace gqzoo {
namespace {

RegularQuery RQ(const std::string& text) {
  Result<RegularQuery> q = ParseRegularQuery(text);
  if (!q.ok()) {
    ADD_FAILURE() << text << ": " << q.error().message();
    return RegularQuery{};
  }
  return q.value();
}

std::set<std::string> PairRows(const EdgeLabeledGraph& g,
                               const CrpqResult& r) {
  std::set<std::string> out;
  for (const auto& row : r.rows) {
    out.insert(std::string(g.NodeName(std::get<NodeId>(row[0]))) + "->" +
               std::string(g.NodeName(std::get<NodeId>(row[1]))));
  }
  return out;
}

TEST(RegularQueryParserTest, RulesAndMain) {
  RegularQuery q = RQ(
      "twoWay(x, y) := Transfer(x, y), Transfer(y, x) ;"
      "q(u, v) := twoWay*(u, v)");
  EXPECT_EQ(q.rules.size(), 1u);
  EXPECT_EQ(q.rules[0].name, "twoWay");
  EXPECT_EQ(q.main.name, "q");
}

TEST(RegularQueryParserTest, RejectsRecursionAndForwardRefs) {
  // Self-reference.
  EXPECT_FALSE(ParseRegularQuery("r(x, y) := r(x, z), a(z, y); q(u,v) := "
                                 "r(u, v)")
                   .ok());
  // Forward reference.
  EXPECT_FALSE(ParseRegularQuery(
                   "r1(x, y) := r2(x, y); r2(x, y) := a(x, y); "
                   "q(u, v) := r1(u, v)")
                   .ok());
  // Non-binary rule.
  EXPECT_FALSE(ParseRegularQuery("r(x, y, z) := a(x, y), a(y, z); "
                                 "q(u, v) := r2(u, v)")
                   .ok());
  EXPECT_FALSE(ParseRegularQuery("   ").ok());
}

TEST(RegularQueryEvalTest, Example15TwoWayClosure) {
  // Examples 14-15: pairs connected by a path of two-way-transfer virtual
  // edges. On TwoWayTransferChain the hubs are mutually reachable through
  // the virtual edges, while plain Transfer* also reaches the decoys.
  EdgeLabeledGraph g = TwoWayTransferChain(3);  // hubs h0..h3 + decoys
  RegularQuery q = RQ(
      "twoWay(x, y) := Transfer(x, y), Transfer(y, x) ;"
      "q(u, v) := twoWay*(u, v)");
  Result<CrpqResult> r = EvalRegularQuery(g, q);
  ASSERT_TRUE(r.ok()) << r.error().message();
  std::set<std::string> rows = PairRows(g, r.value());
  // All hub pairs are in (both directions).
  for (int i = 0; i <= 3; ++i) {
    for (int j = 0; j <= 3; ++j) {
      EXPECT_TRUE(rows.count("h" + std::to_string(i) + "->h" +
                             std::to_string(j)))
          << i << "," << j;
    }
  }
  // Decoys appear only as trivial (d, d) pairs — no two-way edge to them.
  EXPECT_FALSE(rows.count("h0->d0"));
  EXPECT_TRUE(rows.count("d0->d0"));  // ε-pair of the Kleene star

  // Flat reachability over-approximates: Transfer* reaches the decoys.
  RegularQuery flat = RQ("q(u, v) := Transfer*(u, v)");
  Result<CrpqResult> rf = EvalRegularQuery(g, flat);
  ASSERT_TRUE(rf.ok());
  EXPECT_TRUE(PairRows(g, rf.value()).count("h0->d0"));
}

TEST(RegularQueryEvalTest, ChainedRules) {
  // A rule using a rule: cheap = two-way; rich = cheap o cheap.
  EdgeLabeledGraph g = TwoWayTransferChain(4);
  RegularQuery q = RQ(
      "twoWay(x, y) := Transfer(x, y), Transfer(y, x) ;"
      "twoHop(x, y) := (twoWay twoWay)(x, y) ;"
      "q(u, v) := twoHop+(u, v)");
  Result<CrpqResult> r = EvalRegularQuery(g, q);
  ASSERT_TRUE(r.ok()) << r.error().message();
  std::set<std::string> rows = PairRows(g, r.value());
  // twoHop moves 2 steps (in either direction) along the hub chain; its
  // transitive closure links hubs at even distance... but since steps can
  // backtrack (h0→h1→h0), even-length round trips land anywhere of the
  // same parity.
  EXPECT_TRUE(rows.count("h0->h2"));
  EXPECT_TRUE(rows.count("h0->h4"));
  EXPECT_TRUE(rows.count("h0->h0"));
  EXPECT_FALSE(rows.count("h0->h1"));  // odd distance unreachable by 2-hops
}

TEST(RegularQueryEvalTest, VirtualEdgesDoNotLeakIntoInput) {
  EdgeLabeledGraph g = TwoWayTransferChain(2);
  size_t edges_before = g.NumEdges();
  RegularQuery q = RQ(
      "twoWay(x, y) := Transfer(x, y), Transfer(y, x) ;"
      "q(u, v) := twoWay(u, v)");
  Result<CrpqResult> r = EvalRegularQuery(g, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(g.NumEdges(), edges_before);  // input untouched
  EXPECT_FALSE(r.value().rows.empty());
}

TEST(RegularQueryEvalTest, MainCanMixBaseAndVirtualLabels) {
  EdgeLabeledGraph g = TwoWayTransferChain(3);
  RegularQuery q = RQ(
      "twoWay(x, y) := Transfer(x, y), Transfer(y, x) ;"
      "q(u, v) := (twoWay* Transfer)(u, v)");
  Result<CrpqResult> r = EvalRegularQuery(g, q);
  ASSERT_TRUE(r.ok()) << r.error().message();
  // From h0: any hub, then one Transfer (to a neighbor hub or a decoy).
  std::set<std::string> rows = PairRows(g, r.value());
  EXPECT_TRUE(rows.count("h0->d3"));
  EXPECT_TRUE(rows.count("h0->h1"));
}

}  // namespace
}  // namespace gqzoo
