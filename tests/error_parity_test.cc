// Table-driven error-path parity: for every cancellation/deadline/
// fail-point trigger, each query language must surface the *documented*
// status code through the full engine stack — the same class everywhere,
// never a wrong answer, never a different error for the same cause.
//
// governor_test.cc proves individual sites unwind; this table pins the
// cause → code mapping per language so a refactor can't silently reroute,
// say, a deadline into kResourceExhausted for one evaluator only.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/engine/engine.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/rpq/rpq_eval.h"
#include "src/util/failpoint.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

struct LanguageQuery {
  QueryLanguage language;
  const char* text;
  const char* paths_from = "";
  const char* paths_to = "";
};

/// One nontrivial query per language; all touch label `a` so every
/// evaluator does real work on a clique before the trigger fires.
const std::vector<LanguageQuery>& AllLanguages() {
  static const std::vector<LanguageQuery> kQueries = {
      {QueryLanguage::kRpq, "a+"},
      {QueryLanguage::kCrpq, "q(x, z) :- a+(x, y), a+(y, z)"},
      {QueryLanguage::kDlCrpq, "q(x, y) := ( ()[a^z] )+ () (x, y)"},
      {QueryLanguage::kCoreGql, "MATCH (x) -[e:a]-> (y) RETURN x, y"},
      {QueryLanguage::kGqlGroup, "(x) (-[t:a]->(v)){1,3} (y)"},
      {QueryLanguage::kPaths, "a+", "q0", "q1"},
  };
  return kQueries;
}

QueryRequest RequestFor(const LanguageQuery& q) {
  QueryRequest request;
  request.language = q.language;
  request.text = q.text;
  request.paths.from = q.paths_from;
  request.paths.to = q.paths_to;
  return request;
}

TEST(ErrorParityTest, DeadlineMidRunIsDeadlineExceeded) {
  // A 1ms deadline against walk enumeration on a clique (5^12 candidate
  // walks) cannot be met on any machine; the cooperative probes must stop
  // the query and surface exactly kDeadlineExceeded — not a partial OK,
  // not kResourceExhausted.
  QueryEngine engine(ToPropertyGraph(Clique(6)));
  QueryRequest request;
  request.language = QueryLanguage::kPaths;
  request.text = "a+";
  request.paths.from = "q0";
  request.paths.to = "q1";
  request.timeout = std::chrono::milliseconds(1);
  request.max_results = 100000000;
  request.max_path_length = 12;
  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kDeadlineExceeded)
      << r.error().message();
}

TEST(ErrorParityTest, PreTrippedContextIsPreservedByEveryEvaluator) {
  // Cancellation parity at the library layer: a context that is already
  // tripped makes each evaluator unwind promptly, and none of them may
  // overwrite the recorded cause (first trip wins) — that cause is what
  // the engine maps to the documented status code.
  PropertyGraph g = ToPropertyGraph(Clique(4));
  for (StopCause cause : {StopCause::kCancelled, StopCause::kDeadline}) {
    QueryContext ctx;
    ctx.Trip(cause);

    (void)EvalRpq(g.skeleton(), *testing_util::Rx("a+"), &ctx);

    Crpq crpq =
        ParseCrpq("q(x, z) :- a+(x, y), a+(y, z)", RegexDialect::kPlain)
            .ValueOrDie();
    CrpqEvalOptions crpq_options;
    crpq_options.cancel = &ctx;
    (void)EvalCrpq(g.skeleton(), crpq, crpq_options);

    EXPECT_EQ(ctx.stop_cause(), cause) << StopCauseName(cause);
  }
}

TEST(ErrorParityTest, TinyStepBudgetIsResourceExhaustedEverywhere) {
  QueryEngine engine(ToPropertyGraph(Clique(6)));
  for (const LanguageQuery& q : AllLanguages()) {
    QueryRequest request = RequestFor(q);
    request.step_budget = 1;  // trips on the first hot-loop iteration
    Result<QueryResponse> r = engine.Execute(request);
    ASSERT_FALSE(r.ok()) << QueryLanguageName(q.language);
    EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted)
        << QueryLanguageName(q.language) << ": " << r.error().message();
  }
}

// The documented fail-point table (failpoint.h): site → language whose hot
// path contains it → status class the unwind must surface.
struct FailpointRow {
  const char* site;
  QueryLanguage language;
  ErrorCode expected;
};

TEST(ErrorParityTest, FailpointSitesSurfaceDocumentedCodes) {
  const FailpointRow kRows[] = {
      {"rpq.product.bfs", QueryLanguage::kRpq, ErrorCode::kResourceExhausted},
      {"crpq.join.alloc", QueryLanguage::kCrpq,
       ErrorCode::kResourceExhausted},
      {"datatest.recurse", QueryLanguage::kDlCrpq,
       ErrorCode::kResourceExhausted},
      // The frontier site lives in group_eval, so it belongs to kGqlGroup
      // repetitions, not plain CoreGQL MATCH.
      {"coregql.frontier", QueryLanguage::kGqlGroup,
       ErrorCode::kResourceExhausted},
      {"pmr.enumerate.emit", QueryLanguage::kPaths, ErrorCode::kCancelled},
  };
  QueryEngine engine(ToPropertyGraph(Clique(4)));
  for (const FailpointRow& row : kRows) {
    Failpoint::DisarmAll();
    const LanguageQuery* q = nullptr;
    for (const LanguageQuery& candidate : AllLanguages()) {
      if (candidate.language == row.language) q = &candidate;
    }
    ASSERT_NE(q, nullptr);
    QueryRequest request = RequestFor(*q);
    // A set-but-huge budget forces a governed context (fail-points only
    // fire on governed runs) without ever tripping on its own.
    request.memory_budget = 1ull << 40;
    // Keep the clean re-run cheap: dl-CRPQ capture enumeration on a
    // clique explodes under the engine's default limits.
    request.max_results = 50;
    request.max_path_length = 6;

    ScopedFailpoint scoped(row.site);
    Result<QueryResponse> r = engine.Execute(request);
    ASSERT_FALSE(r.ok()) << row.site;
    EXPECT_EQ(r.error().code(), row.expected)
        << row.site << ": " << r.error().message();
    EXPECT_GE(Failpoint::FireCount(row.site), 1u) << row.site;

    // Disarmed, the identical request succeeds: the trigger is the fail
    // point, not the query.
    Result<QueryResponse> clean = engine.Execute(request);
    EXPECT_TRUE(clean.ok()) << row.site << ": " << clean.error().message();
  }
}

TEST(ErrorParityTest, WcojAllocFailpointIsResourceExhaustedEverywhere) {
  // The wcoj result-tuple alloc site must surface the same class as the
  // binary join's alloc site — kResourceExhausted — for every language
  // whose planner can select a cyclic core (failpoint.h: crpq.wcoj.alloc).
  // Each query is a triangle over label `a`, so the planner replaces the
  // whole conjunct list with a wcoj group and the site is on the hot path.
  struct WcojRow {
    QueryLanguage language;
    const char* text;
  };
  const WcojRow kRows[] = {
      {QueryLanguage::kCrpq, "q(x, y, z) :- a(x, y), a(y, z), a(x, z)"},
      {QueryLanguage::kDlCrpq,
       "q(x, y, z) := [a] (x, y), [a] (y, z), [a] (x, z)"},
      {QueryLanguage::kCoreGql,
       "MATCH (x)-[:a]->(y), (y)-[:a]->(z), (x)-[:a]->(z) RETURN x, y, z"},
  };
  QueryEngine engine(ToPropertyGraph(Clique(4)));
  for (const WcojRow& row : kRows) {
    Failpoint::DisarmAll();
    QueryRequest request;
    request.language = row.language;
    request.text = row.text;
    request.memory_budget = 1ull << 40;  // governed, never trips on its own

    ScopedFailpoint scoped("crpq.wcoj.alloc");
    Result<QueryResponse> r = engine.Execute(request);
    ASSERT_FALSE(r.ok()) << QueryLanguageName(row.language);
    EXPECT_EQ(r.error().code(), ErrorCode::kResourceExhausted)
        << QueryLanguageName(row.language) << ": " << r.error().message();
    // FireCount proves the wcoj group was actually selected and reached.
    EXPECT_GE(Failpoint::FireCount("crpq.wcoj.alloc"), 1u)
        << QueryLanguageName(row.language);

    Result<QueryResponse> clean = engine.Execute(request);
    EXPECT_TRUE(clean.ok())
        << QueryLanguageName(row.language) << ": " << clean.error().message();
  }
}

TEST(ErrorParityTest, SubmitShedIsOverloadedForEveryLanguage) {
  QueryEngine engine(ToPropertyGraph(Clique(4)));
  for (const LanguageQuery& q : AllLanguages()) {
    Failpoint::DisarmAll();
    ScopedFailpoint scoped("engine.submit");
    Result<QueryResponse> r = engine.Submit(RequestFor(q)).get();
    ASSERT_FALSE(r.ok()) << QueryLanguageName(q.language);
    EXPECT_EQ(r.error().code(), ErrorCode::kOverloaded)
        << QueryLanguageName(q.language);
  }
}

TEST(ErrorParityTest, StaticErrorsKeepTheirClassAcrossJoinOrders) {
  // Parse and not-found outcomes must not depend on execution-time policy
  // (planner vs textual order, budgets).
  QueryEngine engine(ToPropertyGraph(Clique(4)));
  QueryRequest bad;
  bad.language = QueryLanguage::kCrpq;
  bad.text = "q(x :- broken";
  for (bool textual : {false, true}) {
    bad.textual_join_order = textual;
    Result<QueryResponse> r = engine.Execute(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::kParse);
  }

  QueryRequest missing;
  missing.language = QueryLanguage::kPaths;
  missing.text = "a+";
  missing.paths.from = "q0";
  missing.paths.to = "no_such_node";
  for (bool textual : {false, true}) {
    missing.textual_join_order = textual;
    Result<QueryResponse> r = engine.Execute(missing);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::kNotFound);
  }
}

// Durable-storage cause → code table: every way a durability directory can
// be damaged maps to exactly one status class. kDataLoss is reserved for
// damage that loses acked writes (the engine refuses to serve); a torn
// tail — bytes a crash cut off an in-flight, never-acked append — recovers
// OK with a warning; a live write failure is kUnavailable, not data loss.
TEST(ErrorParityTest, DurableStorageDamageSurfacesDocumentedCodes) {
  struct DamageRow {
    const char* cause;
    void (*damage)(const std::string& dir);
    std::optional<ErrorCode> expected;  // nullopt = must recover OK
  };
  const DamageRow kRows[] = {
      {"wal.log deleted (checkpoints present)",
       [](const std::string& dir) {
         std::filesystem::remove(dir + "/wal.log");
       },
       ErrorCode::kDataLoss},
      {"all checkpoints deleted (WAL holds records)",
       [](const std::string& dir) {
         for (const auto& e : std::filesystem::directory_iterator(dir)) {
           if (e.path().filename().string().rfind("checkpoint-", 0) == 0) {
             std::filesystem::remove(e.path());
           }
         }
       },
       ErrorCode::kDataLoss},
      {"mid-log WAL corruption (intact record after it)",
       [](const std::string& dir) {
         // Records begin after the 8-byte magic; byte magic+10 is inside
         // the first record's payload, and a second record follows it.
         std::fstream f(dir + "/wal.log",
                        std::ios::binary | std::ios::in | std::ios::out);
         f.seekp(18);
         f.put('\x7e');
       },
       ErrorCode::kDataLoss},
      {"torn WAL tail (crash mid-append)",
       [](const std::string& dir) {
         std::ofstream out(dir + "/wal.log",
                           std::ios::binary | std::ios::app);
         out << "\x40torn";
       },
       std::nullopt},
  };
  for (const DamageRow& row : kRows) {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "gqzoo_parity_dataloss.XXXXXX")
                           .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(mkdtemp(buf.data()), nullptr);
    std::string dir = buf.data();

    QueryEngine::Options options;
    options.num_threads = 2;
    options.durability.dir = dir;
    {
      Result<std::unique_ptr<QueryEngine>> engine =
          QueryEngine::RecoverFrom(ToPropertyGraph(Clique(3)), options);
      ASSERT_TRUE(engine.ok()) << row.cause;
      // Two logged batches so the WAL has a record boundary mid-file.
      for (const char* name : {"extra1", "extra2"}) {
        MutationBatch batch;
        batch.ops = {MutationOp::AddNode(name, "Added")};
        ASSERT_TRUE(engine.value()->ApplyMutation(batch).ok()) << row.cause;
      }
    }
    row.damage(dir);
    Result<std::unique_ptr<QueryEngine>> r =
        QueryEngine::RecoverFrom(ToPropertyGraph(Clique(3)), options);
    if (row.expected.has_value()) {
      ASSERT_FALSE(r.ok()) << row.cause << ": damage was not detected";
      EXPECT_EQ(r.error().code(), *row.expected)
          << row.cause << ": " << r.error().message();
    } else {
      ASSERT_TRUE(r.ok()) << row.cause << ": " << r.error().message();
      EXPECT_FALSE(r.value()->recovery_info().warning.empty()) << row.cause;
    }
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
}

}  // namespace
}  // namespace gqzoo
