// Replays every committed fuzz case under tests/corpus/ through the full
// library oracle and the metamorphic suite. Each file is a divergence the
// harness once found (then minimized) or a hand-written probe of a fixed
// bug; keeping them green means the fix stayed fixed.
//
// Engine-level legs run too, against a per-suite engine, so the corpus
// also covers plan-cache, planner-vs-textual, and error-parity behavior.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/fuzz/metamorphic.h"
#include "src/fuzz/minimize.h"
#include "src/fuzz/oracle.h"
#include "src/util/thread_pool.h"

#ifndef GQZOO_CORPUS_DIR
#error "GQZOO_CORPUS_DIR must point at tests/corpus"
#endif

namespace gqzoo {
namespace fuzz {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(GQZOO_CORPUS_DIR)) {
    if (entry.path().extension() == ".case") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpusTest, HasCommittedCases) {
  EXPECT_GE(CorpusFiles().size(), 3u);
}

TEST(FuzzCorpusTest, EveryCaseReplaysClean) {
  QueryEngine::Options engine_options;
  engine_options.num_threads = 2;
  engine_options.rpq_shards = 3;
  QueryEngine engine(PropertyGraph(), engine_options);
  ThreadPool pool(2);

  for (const std::filesystem::path& file : CorpusFiles()) {
    SCOPED_TRACE(file.filename().string());
    std::ifstream in(file);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Result<FuzzCase> c = ParseFuzzCase(buffer.str());
    ASSERT_TRUE(c.ok()) << c.error().message();

    OracleOptions options;
    options.engine = &engine;
    options.pool = &pool;
    OracleReport report = RunOracle(c.value(), options);
    if (report.ok()) {
      FuzzRng rng = FuzzRng(c.value().seed).Fork(7);
      RunMetamorphic(c.value(), &rng, options, &report);
    }
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace gqzoo
