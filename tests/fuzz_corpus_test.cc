// Replays every committed fuzz case under tests/corpus/ through the full
// library oracle and the metamorphic suite. Each file is a divergence the
// harness once found (then minimized) or a hand-written probe of a fixed
// bug; keeping them green means the fix stayed fixed.
//
// Engine-level legs run too, against a per-suite engine, so the corpus
// also covers plan-cache, planner-vs-textual, and error-parity behavior.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/fuzz/crash_oracle.h"
#include "src/fuzz/metamorphic.h"
#include "src/fuzz/minimize.h"
#include "src/fuzz/mutation_gen.h"
#include "src/fuzz/oracle.h"
#include "src/util/thread_pool.h"

#ifndef GQZOO_CORPUS_DIR
#error "GQZOO_CORPUS_DIR must point at tests/corpus"
#endif

namespace gqzoo {
namespace fuzz {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(GQZOO_CORPUS_DIR)) {
    if (entry.path().extension() == ".case") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpusTest, HasCommittedCases) {
  EXPECT_GE(CorpusFiles().size(), 3u);
}

TEST(FuzzCorpusTest, EveryCaseReplaysClean) {
  QueryEngine::Options engine_options;
  engine_options.num_threads = 2;
  engine_options.rpq_shards = 3;
  QueryEngine engine(PropertyGraph(), engine_options);
  ThreadPool pool(2);

  for (const std::filesystem::path& file : CorpusFiles()) {
    SCOPED_TRACE(file.filename().string());
    std::ifstream in(file);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Result<FuzzCase> c = ParseFuzzCase(buffer.str());
    ASSERT_TRUE(c.ok()) << c.error().message();

    OracleOptions options;
    options.engine = &engine;
    options.pool = &pool;
    OracleReport report = RunOracle(c.value(), options);
    if (report.ok() && !c.value().mutations.empty()) {
      RunMutationOracle(c.value(), options, &report);
    }
    if (report.ok() && !c.value().mutations.empty()) {
      RunCrashOracle(c.value(), &report);
    }
    if (report.ok()) {
      FuzzRng rng = FuzzRng(c.value().seed).Fork(7);
      RunMetamorphic(c.value(), &rng, options, &report);
    }
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

TEST(FuzzCorpusTest, OversizedCaseIsInvalidArgumentUpFront) {
  std::string huge(kMaxFuzzCaseBytes + 1, '#');
  Result<FuzzCase> r = ParseFuzzCase(huge);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
}

TEST(FuzzCorpusTest, EveryByteTruncationOfEveryCaseFailsOrParsesCleanly) {
  // A corpus file cut at any byte (editor crash, partial checkout) must
  // never crash the loader or yield a half-parsed case: each cut either
  // errors, or parses into a case whose graph text still stands alone.
  for (const std::filesystem::path& file : CorpusFiles()) {
    SCOPED_TRACE(file.filename().string());
    std::ifstream in(file);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    for (size_t cut = 0; cut < text.size(); ++cut) {
      Result<FuzzCase> r = ParseFuzzCase(text.substr(0, cut));
      if (!r.ok()) continue;  // clean rejection is always acceptable
      // An accepted prefix must be internally consistent: the graph block
      // parses, and the case round-trips through its own serializer.
      ASSERT_TRUE(ParseCaseGraph(r.value()).ok()) << "cut at " << cut;
      Result<FuzzCase> again = ParseFuzzCase(r.value().ToText());
      ASSERT_TRUE(again.ok()) << "cut at " << cut;
      EXPECT_EQ(again.value().ToText(), r.value().ToText())
          << "cut at " << cut;
    }
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace gqzoo
