#include <gtest/gtest.h>

#include <set>

#include "src/automata/counting.h"
#include "src/automata/operations.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/rpq/bag_semantics.h"
#include "src/rpq/product_graph.h"
#include "src/rpq/rpq_eval.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::MatchingPathsBruteForce;
using testing_util::PairNames;
using testing_util::Rx;

TEST(ProductGraphTest, SizesMatchDefinition) {
  EdgeLabeledGraph g = Figure2Graph();
  Nfa nfa = Nfa::FromRegex(*Rx("Transfer Transfer"), g);
  ProductGraph product(g, nfa);
  EXPECT_EQ(product.num_product_nodes(), g.NumNodes() * nfa.num_states());
  // Each arc corresponds to a (graph edge, matching transition) pair.
  size_t expected = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    for (uint32_t q = 0; q < nfa.num_states(); ++q) {
      for (const Nfa::Transition& t : nfa.Out(q)) {
        if (t.pred.Matches(g.EdgeLabel(e))) ++expected;
      }
    }
  }
  EXPECT_EQ(product.NumArcs(), expected);
}

TEST(RpqEvalTest, Example12TransferStarIsComplete) {
  // Example 12: Transfer* on Figure 2 connects every pair of accounts.
  EdgeLabeledGraph g = Figure2Graph();
  auto pairs = EvalRpq(g, *Rx("Transfer*"));
  std::set<std::pair<NodeId, NodeId>> set(pairs.begin(), pairs.end());
  std::vector<std::string> accounts = {"a1", "a2", "a3", "a4", "a5", "a6"};
  for (const std::string& u : accounts) {
    for (const std::string& v : accounts) {
      EXPECT_TRUE(set.count({*g.FindNode(u), *g.FindNode(v)}))
          << u << "->" << v;
    }
  }
  // And ε-pairs for every node (including non-accounts).
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_TRUE(set.count({n, n}));
  }
}

TEST(RpqEvalTest, SingleLabelIsEdgeRelation) {
  EdgeLabeledGraph g = Figure2Graph();
  auto pairs = EvalRpq(g, *Rx("owner"));
  std::vector<std::string> names = PairNames(g, pairs);
  EXPECT_EQ(names, (std::vector<std::string>{"a1->Megan", "a3->Mike",
                                             "a5->Rebecca", "a6->Jay"}));
}

TEST(RpqEvalTest, FromAndPairQueries) {
  EdgeLabeledGraph g = Figure2Graph();
  Nfa nfa = Nfa::FromRegex(*Rx("Transfer Transfer"), g);
  NodeId a4 = *g.FindNode("a4");
  NodeId a5 = *g.FindNode("a5");
  std::vector<NodeId> from_a4 = EvalRpqFrom(g, nfa, a4);
  // a4 -t9-> a6 -t10-> a5 and a4 -t9-> a6 -t8-> a3.
  EXPECT_EQ(from_a4.size(), 2u);
  EXPECT_TRUE(EvalRpqPair(g, nfa, a4, a5));
  EXPECT_FALSE(EvalRpqPair(g, nfa, a5, a4));
}

struct RandomCase {
  uint64_t seed;
  const char* regex;
};

class RpqRandomAgreementTest : public ::testing::TestWithParam<RandomCase> {};

// Property test: product-graph BFS evaluation agrees with two independent
// oracles: (1) the run-counting DP of counting.cc at the completeness bound
// |V|·|Q| (if any matching path exists, one of length < |V|·|Q| exists),
// and (2) explicit path enumeration at small depth (soundness of short
// witnesses).
TEST_P(RpqRandomAgreementTest, AgreesWithBruteForce) {
  EdgeLabeledGraph g = RandomGraph(7, 14, 2, GetParam().seed);
  RegexPtr r = Rx(GetParam().regex);
  Nfa nfa = Nfa::FromRegex(*r, g);
  size_t bound = g.NumNodes() * nfa.num_states() + 1;
  auto pairs = EvalRpq(g, nfa);
  std::set<std::pair<NodeId, NodeId>> fast(pairs.begin(), pairs.end());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      bool counted = !CountRunsOnPaths(g, nfa, u, v, bound).is_zero();
      EXPECT_EQ(fast.count({u, v}) > 0, counted)
          << GetParam().regex << " " << u << "->" << v;
      // Short explicit witnesses must be reflected in the fast result.
      if (!MatchingPathsBruteForce(g, nfa, u, v, 4).empty()) {
        EXPECT_TRUE(fast.count({u, v}) > 0)
            << GetParam().regex << " " << u << "->" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, RpqRandomAgreementTest,
    ::testing::Values(RandomCase{1, "a"}, RandomCase{2, "a b"},
                      RandomCase{3, "a*"}, RandomCase{4, "(a b)*"},
                      RandomCase{5, "(a|b)* a"}, RandomCase{6, "a+ b?"},
                      RandomCase{7, "_ _"}, RandomCase{8, "!{a}*"},
                      RandomCase{9, "(a a)*"}, RandomCase{10, "a{2,3}"}));

TEST(BagSemanticsTest, SetVsBagOnTinyClique) {
  // On K2 with a-edges: a* from u to v (u≠v): simple-path expansions.
  EdgeLabeledGraph g = Clique(2);
  RegexPtr astar = Rx("a*");
  // Node-distinct sequences u→v: just u,v: 1 way. u→u: empty expansion.
  EXPECT_EQ(BagCount(*astar, g, 0, 1).ToString(), "1");
  EXPECT_EQ(BagCount(*astar, g, 0, 0).ToString(), "1");
  // ((a*)*): sequences u→v with products of a*-counts.
  RegexPtr nested = Rx("(a*)*");
  // u→v: sequences (u,v): count 1·? = a*(u,v)=1 → total 1; plus none else.
  EXPECT_EQ(BagCount(*nested, g, 0, 1).ToString(), "1");
}

TEST(BagSemanticsTest, TripleCliqueGrows) {
  EdgeLabeledGraph g = Clique(3);
  RegexPtr astar = Rx("a*");
  // Simple a-paths q0→q1 in K3: (q0,q1), (q0,q2,q1): 2.
  EXPECT_EQ(BagCount(*astar, g, 0, 1).ToString(), "2");
  RegexPtr nested2 = Rx("((a*)*)*");
  BigUint deep = BagCount(*nested2, g, 0, 1);
  BigUint shallow = BagCount(*Rx("(a*)*"), g, 0, 1);
  EXPECT_TRUE(shallow > BagCount(*astar, g, 0, 1));
  EXPECT_TRUE(deep > shallow);
}

TEST(BagSemanticsTest, UnionAndConcatCounts) {
  EdgeLabeledGraph g;
  NodeId u = g.AddNode();
  NodeId v = g.AddNode();
  NodeId w = g.AddNode();
  g.AddEdge(u, v, "a");
  g.AddEdge(u, v, "a");  // parallel
  g.AddEdge(v, w, "b");
  EXPECT_EQ(BagCount(*Rx("a"), g, u, v).ToString(), "2");
  EXPECT_EQ(BagCount(*Rx("a|a"), g, u, v).ToString(), "4");
  EXPECT_EQ(BagCount(*Rx("a b"), g, u, w).ToString(), "2");
  EXPECT_EQ(BagCount(*Rx("a?"), g, u, u).ToString(), "1");
  EXPECT_EQ(BagCount(*Rx("a?"), g, u, v).ToString(), "2");
}

TEST(BagSemanticsTest, PaperBlowupExceedsProtonCount) {
  // Section 6.1: (((a*)*)*)* on a 6-clique yields more answers than the
  // ~10^80 protons in the observable universe.
  EdgeLabeledGraph g = Clique(6);
  BigUint total = BagCountTotal(*Rx("(((a*)*)*)*"), g);
  EXPECT_TRUE(total > BigUint::PowerOfTen(80))
      << "only " << total.NumDecimalDigits() << " digits";
  // While set semantics (the automata route) gives exactly 36 answers.
  auto pairs = EvalRpq(g, *Rx("(((a*)*)*)*"));
  EXPECT_EQ(pairs.size(), 36u);
}

}  // namespace
}  // namespace gqzoo
