// Smoke tests for the differential fuzzing harness itself: seed
// reproducibility, generator validity, oracle cleanliness on a few hundred
// cases (the full campaign runs in CI via `gqzoo_fuzz --smoke`), the label
// renamer's token discipline, and the minimizer/regression-emitter
// plumbing.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/fuzz/fuzzer.h"
#include "src/fuzz/metamorphic.h"
#include "src/fuzz/minimize.h"
#include "src/util/thread_pool.h"

namespace gqzoo {
namespace fuzz {
namespace {

TEST(FuzzRngTest, DeterministicAndForkDecorrelated) {
  FuzzRng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  // Forks of the same seed with different stream ids diverge immediately.
  FuzzRng f1 = FuzzRng(42).Fork(1);
  FuzzRng f2 = FuzzRng(42).Fork(2);
  EXPECT_NE(f1.Next(), f2.Next());
  // CaseSeed is stable: regression tests depend on these exact values.
  EXPECT_EQ(CaseSeed(1, 0), CaseSeed(1, 0));
  EXPECT_NE(CaseSeed(1, 0), CaseSeed(1, 1));
  EXPECT_NE(CaseSeed(1, 0), CaseSeed(2, 0));
}

TEST(FuzzCaseTest, TextRoundTrip) {
  FuzzerOptions options;
  for (size_t i = 0; i < 25; ++i) {
    FuzzCase c = GenCase(CaseSeed(3, i), options);
    Result<FuzzCase> back = ParseFuzzCase(c.ToText());
    ASSERT_TRUE(back.ok()) << back.error().message() << "\n" << c.ToText();
    EXPECT_EQ(back.value().seed, c.seed);
    EXPECT_EQ(back.value().language, c.language);
    EXPECT_EQ(back.value().query_text, c.query_text);
    EXPECT_EQ(back.value().graph_text, c.graph_text);
    EXPECT_EQ(back.value().paths_from, c.paths_from);
    EXPECT_EQ(back.value().paths_to, c.paths_to);
    EXPECT_EQ(back.value().paths_mode, c.paths_mode);
    EXPECT_EQ(back.value().step_budget, c.step_budget);
    EXPECT_EQ(back.value().memory_budget, c.memory_budget);
  }
}

TEST(FuzzGeneratorTest, CasesAreSeedReproducible) {
  FuzzerOptions options;
  for (size_t i = 0; i < 50; ++i) {
    FuzzCase a = GenCase(CaseSeed(9, i), options);
    FuzzCase b = GenCase(CaseSeed(9, i), options);
    EXPECT_EQ(a.ToText(), b.ToText()) << "case " << i;
  }
}

TEST(FuzzCampaignTest, SameSeedSameStatsAndVerdicts) {
  FuzzerOptions options;
  options.seed = 11;
  options.num_cases = 60;
  options.oracle.engine_checks = false;  // library-only: fast
  FuzzRunResult a = RunFuzzer(options);
  FuzzRunResult b = RunFuzzer(options);
  EXPECT_EQ(a.stats.ToString(), b.stats.ToString());
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].check, b.failures[i].check);
    EXPECT_EQ(a.failures[i].minimized.ToText(),
              b.failures[i].minimized.ToText());
  }
}

TEST(FuzzCampaignTest, NoDivergencesWithEngineAndShardedLegs) {
  QueryEngine::Options engine_options;
  engine_options.num_threads = 2;
  engine_options.rpq_shards = 3;
  QueryEngine engine(PropertyGraph(), engine_options);
  ThreadPool pool(2);

  FuzzerOptions options;
  options.seed = 20260807;
  options.num_cases = 150;
  options.oracle.engine = &engine;
  options.oracle.pool = &pool;
  FuzzRunResult run = RunFuzzer(options);
  EXPECT_EQ(run.stats.cases_run, 150u);
  EXPECT_GT(run.stats.checks, run.stats.cases_run);  // full matrix executed
  for (const FuzzFailure& f : run.failures) {
    ADD_FAILURE() << "case " << f.case_index << " [" << f.check << "] "
                  << f.detail << "\n"
                  << f.minimized.ToText();
  }
}

TEST(FuzzGeneratorTest, QueriesMostlyParse) {
  // The generators aim for valid-by-construction queries; a high parse
  // rate keeps the oracle matrix exercised rather than bouncing off kParse.
  FuzzerOptions options;
  options.seed = 5;
  options.num_cases = 200;
  options.metamorphic = false;
  options.oracle.engine_checks = false;
  FuzzRunResult run = RunFuzzer(options);
  EXPECT_GE(run.stats.queries_parsed * 100, run.stats.cases_run * 90);
}

TEST(RenameLabelsTest, WholeTokensOnly) {
  std::map<std::string, std::string> rename = {{"a", "lr0"}, {"b", "lr1"}};
  // Keywords and longer identifiers that merely *contain* a label must
  // survive: `all`, `trail`, `ab`.
  EXPECT_EQ(RenameLabelsInQuery("a b ab all trail", rename),
            "lr0 lr1 ab all trail");
  EXPECT_EQ(RenameLabelsInQuery("(a|b)+ & ~a", rename), "(lr0|lr1)+ & ~lr0");
  EXPECT_EQ(RenameLabelsInQuery("q(x) :- a(x, y)", rename),
            "q(x) :- lr0(x, y)");
  // Two-phase renaming: a swap must not collapse the labels.
  std::map<std::string, std::string> swap = {{"a", "b"}, {"b", "a"}};
  EXPECT_EQ(RenameLabelsInQuery("a b", swap), "b a");
}

TEST(MinimizerTest, PinsFirstCheckAndHandlesUnparsableGraph) {
  // A case whose graph text does not parse is the one divergence we can
  // manufacture deterministically; the minimizer must pin that check,
  // report reproduced, and leave the (unshrinkable) case intact.
  FuzzCase c;
  c.seed = 123;
  c.language = QueryLanguage::kRpq;
  c.query_text = "a";
  c.graph_text = "node n0 :N\nthis is not a graph line\n";
  MinimizeOptions options;
  options.oracle.engine_checks = false;
  MinimizeResult r = MinimizeCase(c, options);
  EXPECT_TRUE(r.reproduced);
  EXPECT_EQ(r.check, "case.graph-parse");
  EXPECT_GT(r.evaluations, 0u);
  EXPECT_EQ(r.reduced.graph_text, c.graph_text);
}

TEST(MinimizerTest, PassingCaseIsNotReproduced) {
  FuzzerOptions gen;
  FuzzCase c = GenCase(CaseSeed(31, 4), gen);
  MinimizeOptions options;
  options.oracle.engine_checks = false;
  MinimizeResult r = MinimizeCase(c, options);
  EXPECT_FALSE(r.reproduced);
}

TEST(MinimizerTest, EmitRegressionTestContainsReplayableCase) {
  FuzzerOptions gen;
  FuzzCase c = GenCase(CaseSeed(31, 7), gen);
  std::string test = EmitRegressionTest(c, "rpq.graph-vs-snapshot");
  EXPECT_NE(test.find("TEST(FuzzRegression,"), std::string::npos);
  EXPECT_NE(test.find("RpqGraphVsSnapshotSeed"), std::string::npos);
  // The embedded raw string must replay through ParseFuzzCase; extract it
  // and check.
  size_t start = test.find("R\"case(");
  size_t end = test.find(")case\"");
  ASSERT_NE(start, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  std::string embedded = test.substr(start + 7, end - start - 7);
  Result<FuzzCase> back = ParseFuzzCase(embedded);
  ASSERT_TRUE(back.ok()) << back.error().message();
  EXPECT_EQ(back.value().query_text, c.query_text);
}

TEST(MetamorphicTest, CanonicalEvalMatchesHandComputedRpq) {
  FuzzCase c;
  c.seed = 1;
  c.language = QueryLanguage::kRpq;
  c.query_text = "a+";
  c.graph_text =
      "node n0 :N\nnode n1 :N\nnode n2 :N\n"
      "edge e0 :a n0 -> n1\nedge e1 :a n1 -> n2\n";
  Result<PropertyGraph> g = ParseCaseGraph(c);
  ASSERT_TRUE(g.ok());
  OracleOptions options;
  Result<CanonicalResult> rows = EvalCanonical(g.value(), c, options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().rows,
            (std::vector<std::string>{"(n0, n1)", "(n0, n2)", "(n1, n2)"}));
}

}  // namespace
}  // namespace fuzz
}  // namespace gqzoo
