// GraphSnapshot (label-indexed CSR) coverage: slice primitives against
// brute-force adjacency filtering, differential tests pinning every
// language's snapshot-backed evaluation to the seed scan-based evaluation,
// the 64-bit product-state id regression, and parallel RPQ sharding.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/automata/counting.h"
#include "src/coregql/group_eval.h"
#include "src/coregql/pattern_parser.h"
#include "src/coregql/query.h"
#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/crpq/modes.h"
#include "src/datatest/dl_eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/rpq/bag_semantics.h"
#include "src/rpq/cardinality.h"
#include "src/rpq/product_graph.h"
#include "src/rpq/rpq_eval.h"
#include "src/util/query_context.h"
#include "src/util/thread_pool.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::Rx;

// ---------------------------------------------------------------------------
// Slice primitives.

TEST(GraphSnapshotTest, SlicesMatchAdjacencyFiltering) {
  EdgeLabeledGraph g = RandomGraph(30, 120, 5, 7);
  GraphSnapshot snap(g);
  ASSERT_EQ(snap.NumNodes(), g.NumNodes());
  ASSERT_EQ(snap.NumEdges(), g.NumEdges());
  EXPECT_GT(snap.ApproxBytes(), 0u);

  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    // Wildcard slices carry exactly the node's out/in edges.
    std::multiset<EdgeId> out_expected(g.OutEdges(v).begin(),
                                       g.OutEdges(v).end());
    std::multiset<EdgeId> out_got;
    for (const GraphSnapshot::Hop& hop : snap.Out(v)) {
      EXPECT_EQ(hop.node, g.Tgt(hop.edge));
      out_got.insert(hop.edge);
    }
    EXPECT_EQ(out_got, out_expected);

    std::multiset<EdgeId> in_expected(g.InEdges(v).begin(),
                                      g.InEdges(v).end());
    std::multiset<EdgeId> in_got;
    for (const GraphSnapshot::Hop& hop : snap.In(v)) {
      EXPECT_EQ(hop.node, g.Src(hop.edge));
      in_got.insert(hop.edge);
    }
    EXPECT_EQ(in_got, in_expected);

    // Per-label slices partition the wildcard slice.
    for (LabelId l = 0; l < g.NumLabels(); ++l) {
      std::multiset<EdgeId> expected;
      for (EdgeId e : g.OutEdges(v)) {
        if (g.EdgeLabel(e) == l) expected.insert(e);
      }
      std::multiset<EdgeId> got;
      for (const GraphSnapshot::Hop& hop : snap.Out(v, l)) {
        EXPECT_EQ(g.EdgeLabel(hop.edge), l);
        got.insert(hop.edge);
      }
      EXPECT_EQ(got, expected);
    }
  }

  // Graph-wide label lists are sorted by edge id and complete.
  size_t total = 0;
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    GraphSnapshot::Slice slice = snap.EdgesWithLabel(l);
    total += slice.size();
    EdgeId prev = 0;
    bool first = true;
    for (const GraphSnapshot::Hop& hop : slice) {
      EXPECT_EQ(g.EdgeLabel(hop.edge), l);
      EXPECT_EQ(hop.node, g.Tgt(hop.edge));
      if (!first) {
        EXPECT_LT(prev, hop.edge);
      }
      prev = hop.edge;
      first = false;
    }
  }
  EXPECT_EQ(total, g.NumEdges());
}

TEST(GraphSnapshotTest, ForEachMatchHonorsEveryPredicateKind) {
  EdgeLabeledGraph g = RandomGraph(20, 80, 4, 11);
  GraphSnapshot snap(g);
  std::vector<LabelPred> preds = {
      LabelPred::None(), LabelPred::Any(), LabelPred::One(0),
      LabelPred::One(3), LabelPred::NegSet({1, 2})};
  for (const LabelPred& pred : preds) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      for (bool inverse : {false, true}) {
        std::multiset<EdgeId> expected;
        for (EdgeId e : inverse ? g.InEdges(v) : g.OutEdges(v)) {
          if (pred.Matches(g.EdgeLabel(e))) expected.insert(e);
        }
        std::multiset<EdgeId> got;
        snap.ForEachMatch(v, pred, inverse,
                          [&](const GraphSnapshot::Hop& hop) {
                            got.insert(hop.edge);
                          });
        EXPECT_EQ(got, expected);
      }
    }
  }
}

TEST(GraphSnapshotTest, NodeLabelIndexFromPropertyGraph) {
  PropertyGraph g;
  NodeId a = g.AddNode("a", "Account");
  NodeId b = g.AddNode("b", "Person");
  NodeId c = g.AddNode("c", "Account");
  g.AddEdge(a, b, "owner");
  g.AddEdge(c, b, "owner");
  GraphSnapshot snap(g);
  EXPECT_TRUE(snap.has_node_labels());
  LabelId account = *g.FindLabel("Account");
  LabelId person = *g.FindLabel("Person");
  auto accounts = snap.NodesWithLabel(account);
  EXPECT_EQ(std::vector<NodeId>(accounts.begin(), accounts.end()),
            (std::vector<NodeId>{a, c}));
  auto persons = snap.NodesWithLabel(person);
  EXPECT_EQ(std::vector<NodeId>(persons.begin(), persons.end()),
            (std::vector<NodeId>{b}));

  GraphSnapshot skeleton_only(g.skeleton());
  EXPECT_FALSE(skeleton_only.has_node_labels());
  EXPECT_TRUE(skeleton_only.NodesWithLabel(account).empty());
}

// ---------------------------------------------------------------------------
// Product-state id overflow regression (the PR's headline bugfix).
//
// Product ids were packed as `uint32_t id = v * num_states + q`; with
// 65536 nodes and a 65537-state automaton, the state (65535, 1) encodes to
// 65535 * 65537 + 1 = 2^32 + 64800, which wraps to the id of (0, 64800).
// The aliased entry was marked visited before the real one, so the seed
// BFS dropped the only answer. 64-bit ids make the encoding injective.
TEST(RpqOverflowRegressionTest, ProductIdsPastFourBillionDoNotAlias) {
  EdgeLabeledGraph g;
  std::vector<NodeId> nodes;
  nodes.reserve(65536);
  for (size_t i = 0; i < 65536; ++i) {
    nodes.push_back(g.AddNode("n" + std::to_string(i)));
  }
  LabelId j = g.InternLabel("j");
  g.AddEdge(nodes[0], nodes[65535], j);

  // 65537 states; only 0 -j-> 1 matters, 1 accepting. The dead states
  // exist purely to push the product size past 2^32.
  Nfa nfa(65537);
  nfa.AddTransition(0, {1, LabelPred::One(j), Nfa::kNoCapture, false});
  nfa.set_accepting(1, true);
  ASSERT_GT(static_cast<uint64_t>(g.NumNodes()) * nfa.num_states(),
            uint64_t{1} << 32);

  std::vector<NodeId> reached = EvalRpqFrom(g, nfa, nodes[0]);
  EXPECT_EQ(reached, (std::vector<NodeId>{nodes[65535]}));

  GraphSnapshot snap(g);
  EXPECT_EQ(EvalRpqFrom(snap, nfa, nodes[0]),
            (std::vector<NodeId>{nodes[65535]}));
  EXPECT_TRUE(EvalRpqPair(g, nfa, nodes[0], nodes[65535]));
}

TEST(RpqOverflowRegressionTest, MaterializedProductPastLimitThrows) {
  // ProductGraph materializes per-node adjacency, so it keeps 32-bit ids
  // but must refuse (not wrap) when the product exceeds them.
  EdgeLabeledGraph g;
  for (size_t i = 0; i < 65536; ++i) g.AddNode("n" + std::to_string(i));
  Nfa nfa(65537);
  nfa.set_accepting(0, true);
  EXPECT_THROW(ProductGraph(g, nfa), std::length_error);
}

// ---------------------------------------------------------------------------
// Differential: snapshot evaluation is byte-identical to the seed scans.

struct DiffCase {
  uint64_t seed;
  const char* regex;
};

class SnapshotRpqDifferentialTest : public ::testing::TestWithParam<DiffCase> {
};

TEST_P(SnapshotRpqDifferentialTest, AllFromPairAndParallelAgree) {
  EdgeLabeledGraph g = RandomGraph(60, 360, 8, GetParam().seed);
  GraphSnapshot snap(g);
  Nfa nfa = Nfa::FromRegex(*Rx(GetParam().regex), g);

  auto seed_pairs = EvalRpq(g, nfa);
  EXPECT_EQ(EvalRpq(snap, nfa), seed_pairs);

  ThreadPool pool(3);
  ParallelRpqOptions parallel;
  parallel.pool = &pool;
  EXPECT_EQ(EvalRpqParallel(snap, nfa, parallel), seed_pairs);
  parallel.num_shards = 7;
  EXPECT_EQ(EvalRpqParallel(snap, nfa, parallel), seed_pairs);

  for (NodeId u = 0; u < g.NumNodes(); u += 9) {
    EXPECT_EQ(EvalRpqFrom(snap, nfa, u), EvalRpqFrom(g, nfa, u));
    for (NodeId v = 0; v < g.NumNodes(); v += 13) {
      EXPECT_EQ(EvalRpqPair(snap, nfa, u, v), EvalRpqPair(g, nfa, u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, SnapshotRpqDifferentialTest,
    ::testing::Values(DiffCase{1, "a"}, DiffCase{2, "a b c"},
                      DiffCase{3, "(a|b)* c"}, DiffCase{4, "!{a,b}*"},
                      DiffCase{5, "_ _"}, DiffCase{6, "(a b)* (c|d)"},
                      DiffCase{7, "~a* b"}, DiffCase{8, "(~a|b)*"}));

TEST(SnapshotDifferentialTest, ProductGraphArcOrderMatchesSeed) {
  for (uint64_t seed : {3u, 17u, 91u}) {
    EdgeLabeledGraph g = RandomGraph(25, 120, 6, seed);
    GraphSnapshot snap(g);
    for (const char* regex : {"a (b|c)*", "!{a} d*", "_ a"}) {
      Nfa nfa = Nfa::FromRegex(*Rx(regex), g);
      ProductGraph from_graph(g, nfa);
      ProductGraph from_snap(snap, nfa);
      ASSERT_EQ(from_snap.num_product_nodes(), from_graph.num_product_nodes());
      ASSERT_EQ(from_snap.NumArcs(), from_graph.NumArcs());
      for (uint32_t id = 0; id < from_graph.num_product_nodes(); ++id) {
        const auto& a = from_graph.Out(id);
        const auto& b = from_snap.Out(id);
        ASSERT_EQ(a.size(), b.size()) << regex << " node " << id;
        for (size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i].to, b[i].to);
          EXPECT_EQ(a[i].edge, b[i].edge);
          EXPECT_EQ(a[i].capture, b[i].capture);
          EXPECT_EQ(a[i].reversed, b[i].reversed);
        }
      }
    }
  }
}

TEST(SnapshotDifferentialTest, ModeEnumerationsAgree) {
  EdgeLabeledGraph g = RandomGraph(12, 40, 3, 23);
  GraphSnapshot snap(g);
  for (const char* regex : {"a b*", "(a|b) c?", "a{1,3}"}) {
    Nfa nfa = Nfa::FromRegex(*Rx(regex), g);
    EnumerationLimits limits;
    limits.max_results = 100000;  // non-truncating: path sets must be equal
    limits.max_length = 8;
    for (PathMode mode : {PathMode::kAll, PathMode::kShortest,
                          PathMode::kSimple, PathMode::kTrail}) {
      for (NodeId u = 0; u < g.NumNodes(); u += 3) {
        for (NodeId v = 0; v < g.NumNodes(); v += 4) {
          EnumerationStats seed_stats, snap_stats;
          auto seed_paths =
              CollectModePaths(g, nfa, u, v, mode, limits, &seed_stats);
          auto snap_paths =
              CollectModePaths(snap, nfa, u, v, mode, limits, &snap_stats);
          EXPECT_EQ(seed_paths, snap_paths)
              << regex << " mode " << static_cast<int>(mode) << " " << u
              << "->" << v;
          EXPECT_EQ(seed_stats.truncated, snap_stats.truncated);
        }
      }
    }
  }
}

TEST(SnapshotDifferentialTest, KShortestOverSnapshotPmrAgrees) {
  EdgeLabeledGraph g = RandomGraph(15, 60, 3, 31);
  GraphSnapshot snap(g);
  Nfa nfa = Nfa::FromRegex(*Rx("a (b|c)*"), g);
  for (NodeId u = 0; u < g.NumNodes(); u += 4) {
    for (NodeId v = 0; v < g.NumNodes(); v += 5) {
      Pmr seed_pmr = BuildPmrBetween(g, nfa, u, v);
      Pmr snap_pmr = BuildPmrBetween(snap, nfa, u, v);
      EXPECT_EQ(KShortestPathBindings(seed_pmr, 5),
                KShortestPathBindings(snap_pmr, 5));
    }
  }
}

std::set<std::string> CrpqRows(const EdgeLabeledGraph& g,
                               const CrpqResult& r) {
  std::set<std::string> out;
  for (const auto& row : r.rows) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ",";
      s += CrpqValueToString(g, row[i]);
    }
    out.insert(s);
  }
  return out;
}

TEST(SnapshotDifferentialTest, CrpqEvaluationAgrees) {
  EdgeLabeledGraph g = RandomGraph(25, 110, 4, 41);
  GraphSnapshot snap(g);
  const char* queries[] = {
      "q(x, y) := a* (x, y)",
      "q(x, z) := (a|b)+ (x, y), c* (y, z)",
      "q(x) := a b (x, y), !{c} (y, x)",
  };
  for (const char* text : queries) {
    Result<Crpq> q = ParseCrpq(text);
    ASSERT_TRUE(q.ok()) << text;
    Result<CrpqResult> seed_r = EvalCrpq(g, q.value());
    ASSERT_TRUE(seed_r.ok());

    CrpqEvalOptions options;
    options.snapshot = &snap;
    Result<CrpqResult> snap_r = EvalCrpq(g, q.value(), options);
    ASSERT_TRUE(snap_r.ok());
    EXPECT_EQ(CrpqRows(g, seed_r.value()), CrpqRows(g, snap_r.value()));
    EXPECT_EQ(seed_r.value().truncated, snap_r.value().truncated);

    ThreadPool pool(2);
    options.pool = &pool;
    options.num_shards = 5;
    Result<CrpqResult> par_r = EvalCrpq(g, q.value(), options);
    ASSERT_TRUE(par_r.ok());
    EXPECT_EQ(CrpqRows(g, seed_r.value()), CrpqRows(g, par_r.value()));
  }
}

TEST(SnapshotDifferentialTest, DlCrpqEvaluationAgrees) {
  PropertyGraph g = Figure3Graph();
  GraphSnapshot snap(g);
  const char* queries[] = {
      "q(x, y) := ( ()[Transfer] )+ () (x, y)",
      "q(x) := ( ()[Transfer][amount > 5000000] )+ () (x, y)",
      "q(z) := trail ()[Transfer^z]( ()[Transfer^z] )+ () (@a3, @a3)",
      "q(x, y) := shortest ( ()[Transfer] )+ () (x, y)",
  };
  for (const char* text : queries) {
    Result<Crpq> q = ParseCrpq(text, RegexDialect::kDl);
    ASSERT_TRUE(q.ok()) << text << ": " << q.error().message();
    Result<CrpqResult> seed_r = EvalDlCrpq(g, q.value());
    ASSERT_TRUE(seed_r.ok()) << seed_r.error().message();

    DlCrpqEvalOptions options;
    options.snapshot = &snap;
    Result<CrpqResult> snap_r = EvalDlCrpq(g, q.value(), options);
    ASSERT_TRUE(snap_r.ok());
    EXPECT_EQ(CrpqRows(g.skeleton(), seed_r.value()),
              CrpqRows(g.skeleton(), snap_r.value()))
        << text;
    EXPECT_EQ(seed_r.value().truncated, snap_r.value().truncated);
  }
}

TEST(SnapshotDifferentialTest, CoreGqlQueriesAgree) {
  PropertyGraph g = RandomPropertyGraph(20, 60, 10, 53);
  GraphSnapshot snap(g);
  const char* queries[] = {
      "MATCH (x)-[e]->(y) RETURN x, e, y",
      "MATCH (x:N)->(y) WHERE x.k = y.k RETURN x, y",
      "MATCH (x)-[:a]->(y), (y)-[:a]->(z) RETURN x, z",
      "MATCH (x)-[e:a]->(y) WHERE e.k = 3 RETURN x, y",
  };
  for (const char* text : queries) {
    Result<CoreQueryResult> seed_r = RunCoreGql(g, text);
    ASSERT_TRUE(seed_r.ok()) << text << ": " << seed_r.error().message();
    CoreQueryEvalOptions options;
    options.path_options.snapshot = &snap;
    Result<CoreQueryResult> snap_r = RunCoreGql(g, text, options);
    ASSERT_TRUE(snap_r.ok());
    EXPECT_EQ(seed_r.value().relation.ToString(g.skeleton()),
              snap_r.value().relation.ToString(g.skeleton()))
        << text;
    EXPECT_EQ(seed_r.value().truncated, snap_r.value().truncated);
  }
}

TEST(SnapshotDifferentialTest, GqlGroupPatternsAgree) {
  PropertyGraph g = ToPropertyGraph(RandomGraph(12, 36, 2, 61));
  GraphSnapshot snap(g);
  const char* patterns[] = {
      "(x) ( ()-[z:a]->() ){2} (y)",
      "(x) ( ()-[:a]->() | ()-[:b]->() ) (y)",
      "( ()-[z:a]->() ){1,2}",
  };
  for (const char* text : patterns) {
    Result<CorePatternPtr> p = ParseCorePattern(text);
    ASSERT_TRUE(p.ok()) << text << ": " << p.error().message();
    Result<GqlEvalResult> seed_r = EvalGqlGroupPattern(g, *p.value());
    ASSERT_TRUE(seed_r.ok()) << seed_r.error().message();
    CorePathEvalOptions options;
    options.snapshot = &snap;
    Result<GqlEvalResult> snap_r = EvalGqlGroupPattern(g, *p.value(), options);
    ASSERT_TRUE(snap_r.ok());
    ASSERT_EQ(seed_r.value().rows.size(), snap_r.value().rows.size()) << text;
    for (size_t i = 0; i < seed_r.value().rows.size(); ++i) {
      EXPECT_EQ(seed_r.value().rows[i].path.ToString(g.skeleton()),
                snap_r.value().rows[i].path.ToString(g.skeleton()));
    }
  }
}

TEST(SnapshotDifferentialTest, CountingBagAndCardinalityAgree) {
  EdgeLabeledGraph g = RandomGraph(10, 40, 4, 71);
  GraphSnapshot snap(g);

  Nfa nfa = Nfa::FromRegex(*Rx("(a|b)* c"), g);
  size_t bound = g.NumNodes() * nfa.num_states() + 1;
  for (NodeId u = 0; u < g.NumNodes(); u += 2) {
    for (NodeId v = 0; v < g.NumNodes(); v += 3) {
      EXPECT_EQ(CountRunsOnPaths(snap, nfa, u, v, bound).ToString(),
                CountRunsOnPaths(g, nfa, u, v, bound).ToString());
    }
  }

  for (const char* regex : {"a*", "(a|b) c?", "!{a} b*"}) {
    RegexPtr r = Rx(regex);
    EXPECT_EQ(BagCountTotal(*r, snap).ToString(),
              BagCountTotal(*r, g).ToString())
        << regex;
    EXPECT_EQ(BagCount(*r, snap, 0, 5).ToString(),
              BagCount(*r, g, 0, 5).ToString());
  }

  GraphStatistics seed_stats(g);
  GraphStatistics snap_stats(snap);
  ASSERT_EQ(snap_stats.num_nodes(), seed_stats.num_nodes());
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    EXPECT_EQ(snap_stats.EdgeCount(l), seed_stats.EdgeCount(l));
    EXPECT_EQ(snap_stats.DistinctSources(l), seed_stats.DistinctSources(l));
    EXPECT_EQ(snap_stats.DistinctTargets(l), seed_stats.DistinctTargets(l));
  }
  EXPECT_EQ(EstimateRpqCardinalitySampling(snap, nfa, 8, 99),
            EstimateRpqCardinalitySampling(g, nfa, 8, 99));
}

// ---------------------------------------------------------------------------
// Parallel evaluation: budgets, cancellation, degenerate pools.

TEST(ParallelRpqTest, SmallGraphsFallBackToSequential) {
  EdgeLabeledGraph g = Figure2Graph();  // < kMinParallelNodes
  GraphSnapshot snap(g);
  Nfa nfa = Nfa::FromRegex(*Rx("Transfer*"), g);
  ThreadPool pool(2);
  ParallelRpqOptions options;
  options.pool = &pool;
  EXPECT_EQ(EvalRpqParallel(snap, nfa, options), EvalRpq(g, nfa));
}

TEST(ParallelRpqTest, NullPoolAndSingleShardWork) {
  EdgeLabeledGraph g = RandomGraph(200, 800, 4, 83);
  GraphSnapshot snap(g);
  Nfa nfa = Nfa::FromRegex(*Rx("a b*"), g);
  auto expected = EvalRpq(g, nfa);
  EXPECT_EQ(EvalRpqParallel(snap, nfa, {}), expected);
  ThreadPool pool(2);
  ParallelRpqOptions one_shard;
  one_shard.pool = &pool;
  one_shard.num_shards = 1;
  EXPECT_EQ(EvalRpqParallel(snap, nfa, one_shard), expected);
}

TEST(ParallelRpqTest, SubmitToShutDownPoolStillCompletes) {
  EdgeLabeledGraph g = RandomGraph(300, 1200, 4, 89);
  GraphSnapshot snap(g);
  Nfa nfa = Nfa::FromRegex(*Rx("(a|b) c*"), g);
  ThreadPool pool(2);
  pool.Shutdown();  // Submit returns false; the caller runs every shard
  ParallelRpqOptions options;
  options.pool = &pool;
  EXPECT_EQ(EvalRpqParallel(snap, nfa, options), EvalRpq(g, nfa));
}

TEST(ParallelRpqTest, ShardBudgetsMergeIntoParentContext) {
  EdgeLabeledGraph g = RandomGraph(400, 2400, 3, 97);
  GraphSnapshot snap(g);
  Nfa nfa = Nfa::FromRegex(*Rx("(a|b|c)*"), g);

  // Generous budget: merged accounting must report work but not trip.
  {
    QueryContext ctx;
    ResourceBudgets budgets;
    budgets.steps = 100000000;
    ctx.set_budgets(budgets);
    ThreadPool pool(3);
    ParallelRpqOptions options;
    options.pool = &pool;
    options.cancel = &ctx;
    auto pairs = EvalRpqParallel(snap, nfa, options);
    EXPECT_EQ(ctx.stop_cause(), StopCause::kNone);
    EXPECT_GT(ctx.Report().steps, 0u);
    EXPECT_EQ(pairs, EvalRpq(g, nfa));
  }

  // Tiny budget: some shard trips, the cause propagates to the parent,
  // and the partial result is returned unsorted-but-valid (no crash, no
  // deadlock — helpers must all retire before EvalRpqParallel returns).
  {
    QueryContext ctx;
    ResourceBudgets budgets;
    budgets.steps = 500;
    ctx.set_budgets(budgets);
    ThreadPool pool(3);
    ParallelRpqOptions options;
    options.pool = &pool;
    options.cancel = &ctx;
    (void)EvalRpqParallel(snap, nfa, options);
    EXPECT_EQ(ctx.stop_cause(), StopCause::kStepBudget);
  }
}

TEST(ParallelRpqTest, TrippedEvaluationSkipsFinalSort) {
  // PR-1 contract: a stopped evaluation returns whatever it has without
  // spending time sorting. Verify via the sequential snapshot path, whose
  // output ordering for a completed run is sorted.
  EdgeLabeledGraph g = RandomGraph(400, 2400, 3, 101);
  GraphSnapshot snap(g);
  Nfa nfa = Nfa::FromRegex(*Rx("(a|b|c)*"), g);

  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.steps = 200;
  ctx.set_budgets(budgets);
  auto partial = EvalRpq(snap, nfa, &ctx);
  EXPECT_EQ(ctx.stop_cause(), StopCause::kStepBudget);
  auto full = EvalRpq(snap, nfa, nullptr);
  EXPECT_LT(partial.size(), full.size());
  EXPECT_TRUE(std::is_sorted(full.begin(), full.end()));
}

}  // namespace
}  // namespace gqzoo
