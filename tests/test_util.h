#ifndef GQZOO_TESTS_TEST_UTIL_H_
#define GQZOO_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "src/automata/nfa.h"
#include "src/graph/graph.h"
#include "src/graph/path_binding.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace testing_util {

/// Parses a plain-dialect regex or aborts (test convenience).
RegexPtr Rx(const std::string& text);
/// Parses a dl-dialect regex or aborts.
RegexPtr DlRx(const std::string& text);

/// Brute force: all node-to-node paths in `g` from `u` with at most
/// `max_len` edges (walks; edges may repeat).
std::vector<Path> AllPathsFrom(const EdgeLabeledGraph& g, NodeId u,
                               size_t max_len);

/// Brute force: all node-to-node paths u→v with ≤ max_len edges whose edge
/// label word is accepted by `nfa`.
std::vector<Path> MatchingPathsBruteForce(const EdgeLabeledGraph& g,
                                          const Nfa& nfa, NodeId u, NodeId v,
                                          size_t max_len);

/// Brute force l-RPQ semantics (Section 3.1.4) on node-to-node paths up to
/// max_len: all (p, µ) with p from u to v and some accepting run; µ is
/// collected per run, so one path can yield several bindings.
std::vector<PathBinding> MatchingBindingsBruteForce(const EdgeLabeledGraph& g,
                                                    const Nfa& nfa, NodeId u,
                                                    NodeId v, size_t max_len);

/// Node names of pairs for readable assertions: {"a1->a2", ...}.
std::vector<std::string> PairNames(const EdgeLabeledGraph& g,
                                   const std::vector<std::pair<NodeId, NodeId>>& pairs);

}  // namespace testing_util
}  // namespace gqzoo

#endif  // GQZOO_TESTS_TEST_UTIL_H_
