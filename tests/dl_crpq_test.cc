// dl-CRPQ (Section 3.2.2) coverage: modes × data tests × joins, constants,
// and round trips of the dl-dialect rule syntax.

#include <gtest/gtest.h>

#include <set>

#include "src/crpq/crpq_parser.h"
#include "src/datatest/dl_eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"

namespace gqzoo {
namespace {

Crpq DlQ(const std::string& text) {
  Result<Crpq> q = ParseCrpq(text, RegexDialect::kDl);
  if (!q.ok()) {
    ADD_FAILURE() << text << ": " << q.error().message();
    return Crpq{};
  }
  return q.value();
}

std::set<std::string> Rows(const PropertyGraph& g, const CrpqResult& r) {
  std::set<std::string> out;
  for (const auto& row : r.rows) {
    std::string s;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ",";
      s += CrpqValueToString(g.skeleton(), row[i]);
    }
    out.insert(s);
  }
  return out;
}

TEST(DlCrpqParserTest, DlDialectRules) {
  Crpq q = DlQ("q(x, z) := shortest ( ()[Transfer^z] )+ () (x, @a5), "
               "( ()[Transfer][amount > 5000000] )+ () (x, y)");
  EXPECT_EQ(q.atoms.size(), 2u);
  EXPECT_EQ(q.atoms[0].mode, PathMode::kShortest);
  EXPECT_TRUE(q.atoms[0].to.is_constant);
  EXPECT_EQ(q.ListVariables(), (std::vector<std::string>{"z"}));
  // Round trip through ToString.
  Result<Crpq> again = ParseCrpq(q.ToString(), RegexDialect::kDl);
  ASSERT_TRUE(again.ok()) << q.ToString() << ": " << again.error().message();
  EXPECT_EQ(again.value().atoms.size(), 2u);
}

TEST(DlCrpqEvalTest, TrailModeWithDataTests) {
  // Trail transfer cycles at Mike's account whose first hop is expensive.
  PropertyGraph g = Figure3Graph();
  Crpq q = DlQ("q(z) := trail ()[Transfer^z][amount >= 6000000]"
               "( ()[Transfer^z] )+ () (@a3, @a3)");
  Result<CrpqResult> r = EvalDlCrpq(g, q);
  ASSERT_TRUE(r.ok()) << r.error().message();
  // Cycles at a3: t7,t4,t1 (first hop t7 = 10M ✓) and t6,t9,t8 (t6 = 4.5M ✗)
  // and t2/t5 → a2 → a4 → a6 → a3 (t2 = 6M ✓, t5 = 9.1M ✓).
  std::set<std::string> rows = Rows(g, r.value());
  EXPECT_TRUE(rows.count("list(t7, t4, t1)")) << r.value().ToString(g.skeleton());
  EXPECT_TRUE(rows.count("list(t2, t3, t9, t8)"));
  EXPECT_TRUE(rows.count("list(t5, t3, t9, t8)"));
  EXPECT_FALSE(rows.count("list(t6, t9, t8)"));  // first hop too cheap
}

TEST(DlCrpqEvalTest, SimpleModeExcludesRevisits) {
  // The two-cheap-transfers query has no simple witness (t9 must repeat).
  PropertyGraph g = Figure3Graph();
  const std::string cheap = "()[Transfer^z][amount < 4500000]";
  Crpq q = DlQ("q(z) := simple ( ()[Transfer^z] )* " + cheap +
               " ( ()[Transfer^z] )* " + cheap +
               " ( ()[Transfer^z] )* () (@a3, @a5)");
  Result<CrpqResult> r = EvalDlCrpq(g, q);
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_TRUE(r.value().rows.empty());
  // Under `all` (bounded) witnesses exist.
  Crpq q_all = DlQ("q(z) := all ( ()[Transfer^z] )* " + cheap +
                   " ( ()[Transfer^z] )* " + cheap +
                   " ( ()[Transfer^z] )* () (@a3, @a5)");
  DlCrpqEvalOptions options;
  options.max_path_length = 8;
  options.max_bindings_per_pair = 50;
  Result<CrpqResult> ra = EvalDlCrpq(g, q_all, options);
  ASSERT_TRUE(ra.ok());
  EXPECT_FALSE(ra.value().rows.empty());
}

TEST(DlCrpqEvalTest, JoinOnSharedEndpointAcrossDataTests) {
  // y is simultaneously: reachable from a blocked-looking account (a4, via
  // isBlocked = "yes") ... the Figure 3 graph has isBlocked as a property.
  PropertyGraph g = Figure3Graph();
  Crpq q = DlQ(
      "q(x, y) := (isBlocked = 'yes')( [Transfer] )+ () (x, y), "
      "( ()[Transfer][amount < 4500000] )+ () (w, y)");
  Result<CrpqResult> r = EvalDlCrpq(g, q);
  ASSERT_TRUE(r.ok()) << r.error().message();
  // x must be a4 (the only blocked account); first hop from a4 is t9; y is
  // then a6 or beyond. Second atom requires y to be the target of a cheap
  // transfer path: the only cheap edge is t9 (a4→a6), so y = a6.
  std::set<std::string> rows = Rows(g, r.value());
  EXPECT_EQ(rows, (std::set<std::string>{"a4,a6"}));
}

TEST(DlCrpqEvalTest, SelfJoinWithTests) {
  PropertyGraph g = Figure3Graph();
  // Nodes on a transfer cycle avoiding expensive first hops.
  Crpq q = DlQ("q(x) := ( ()[Transfer] ){3} () (x, x)");
  Result<CrpqResult> r = EvalDlCrpq(g, q);
  ASSERT_TRUE(r.ok());
  std::set<std::string> rows = Rows(g, r.value());
  // 3-cycles: {a3,a5,a1} and {a3,a4,a6}.
  EXPECT_EQ(rows, (std::set<std::string>{"a1", "a3", "a4", "a5", "a6"}));
}

TEST(DlCrpqEvalTest, NodeTestsAsAtoms) {
  PropertyGraph g = Figure3Graph();
  // Pure node-test atom: accounts owned by Mike (path of length 0).
  Crpq q = DlQ("q(x) := (owner = 'Mike') (x, x)");
  Result<CrpqResult> r = EvalDlCrpq(g, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Rows(g, r.value()), (std::set<std::string>{"a3"}));
  // Chained node tests collapse onto one node.
  Crpq q2 = DlQ("q(x) := (owner = 'Mike')(isBlocked = 'no') (x, x)");
  Result<CrpqResult> r2 = EvalDlCrpq(g, q2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(Rows(g, r2.value()), (std::set<std::string>{"a3"}));
  Crpq q3 = DlQ("q(x) := (owner = 'Mike')(isBlocked = 'yes') (x, x)");
  Result<CrpqResult> r3 = EvalDlCrpq(g, q3);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.value().rows.empty());
}

TEST(DlCrpqEvalTest, UnknownConstantIsError) {
  PropertyGraph g = Figure3Graph();
  EXPECT_FALSE(
      EvalDlCrpq(g, DlQ("q(x) := ( ()[Transfer] )+ () (@nope, x)")).ok());
}

TEST(DlCrpqEvalTest, TruncationPropagates) {
  PropertyGraph g = Figure3Graph();
  Crpq q = DlQ("q(z) := all ( ()[Transfer^z] )+ () (@a3, @a3)");
  DlCrpqEvalOptions options;
  options.max_bindings_per_pair = 5;
  options.max_path_length = 20;
  Result<CrpqResult> r = EvalDlCrpq(g, q, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().truncated);
  EXPECT_FALSE(r.value().rows.empty());
}

}  // namespace
}  // namespace gqzoo
