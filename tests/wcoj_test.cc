// Tests for the worst-case-optimal join path: the trie-iterator kernel
// (src/rel/wcoj.h) on hand-computed cyclic patterns, the planner's cyclic-
// core detection (src/planner/planner.h), and the engine-level guarantee
// that wcoj / binary / textual execution render byte-identical results
// across crpq, dl-crpq, and coregql.

#include "src/rel/wcoj.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/engine/language.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/planner/planner.h"
#include "src/planner/stats.h"

namespace gqzoo {
namespace {

using Row = std::vector<NodeId>;

QueryRequest Req(QueryLanguage language, const std::string& text) {
  QueryRequest request;
  request.language = language;
  request.text = text;
  return request;
}

PropertyGraph ToPropertyGraph(const EdgeLabeledGraph& g) {
  PropertyGraph pg;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    pg.AddNode(std::string(g.NodeName(v)), "N");
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    pg.AddEdge(g.Src(e), g.Tgt(e), std::string(g.LabelName(g.EdgeLabel(e))));
  }
  return pg;
}

// A graph with two labeled triangles sharing no edges, plus chain noise
// that matches a/b/c individually but closes no triangle:
//   triangle 1: a(0,1), b(1,2), c(0,2)
//   triangle 2: a(3,4), b(4,5), c(3,5)
//   noise:      a(6,7), b(7,8)  (no chord c(6,8))
EdgeLabeledGraph TwoTriangles() {
  EdgeLabeledGraph g;
  for (int i = 0; i < 9; ++i) g.AddNode("n" + std::to_string(i));
  g.AddEdge(0, 1, "a");
  g.AddEdge(1, 2, "b");
  g.AddEdge(0, 2, "c");
  g.AddEdge(3, 4, "a");
  g.AddEdge(4, 5, "b");
  g.AddEdge(3, 5, "c");
  g.AddEdge(6, 7, "a");
  g.AddEdge(7, 8, "b");
  return g;
}

rel::WcojSpec TriangleSpec(const EdgeLabeledGraph& g) {
  // q(x,y,z) :- a(x,y), b(y,z), c(x,z), elimination order x, y, z.
  rel::WcojSpec spec;
  spec.vars = {"x", "y", "z"};
  spec.atoms = {{0, 1, *g.FindLabel("a")},
                {1, 2, *g.FindLabel("b")},
                {0, 2, *g.FindLabel("c")}};
  spec.conjuncts = {0, 1, 2};
  return spec;
}

TEST(WcojEvalTest, TriangleHandComputed) {
  EdgeLabeledGraph g = TwoTriangles();
  GraphSnapshot snap(g);
  std::vector<Row> rows = rel::WcojEval(snap, TriangleSpec(g), 32);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Row{0, 1, 2}));
  EXPECT_EQ(rows[1], (Row{3, 4, 5}));
}

TEST(WcojEvalTest, OutputIsSortedInEliminationOrder) {
  // Several triangles through the same apex, inserted out of order: the
  // kernel must still emit rows in lexicographic (x, y, z) order.
  EdgeLabeledGraph g;
  for (int i = 0; i < 6; ++i) g.AddNode("n" + std::to_string(i));
  for (NodeId y : {NodeId(4), NodeId(2), NodeId(3)}) {
    g.AddEdge(0, y, "a");
    g.AddEdge(y, 5, "b");
  }
  g.AddEdge(0, 5, "c");
  GraphSnapshot snap(g);
  std::vector<Row> rows = rel::WcojEval(snap, TriangleSpec(g), 32);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (Row{0, 2, 5}));
  EXPECT_EQ(rows[1], (Row{0, 3, 5}));
  EXPECT_EQ(rows[2], (Row{0, 4, 5}));
}

TEST(WcojEvalTest, FourCliqueHandComputed) {
  // Directed 4-clique on {0,1,2,3} with label l on every forward edge,
  // queried as the 6-atom clique pattern: exactly one result row.
  EdgeLabeledGraph g;
  for (int i = 0; i < 5; ++i) g.AddNode("n" + std::to_string(i));
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = i + 1; j < 4; ++j) g.AddEdge(i, j, "l");
  }
  g.AddEdge(0, 4, "l");  // dangling spoke, not in any clique
  GraphSnapshot snap(g);
  rel::WcojSpec spec;
  spec.vars = {"w", "x", "y", "z"};
  LabelId l = *g.FindLabel("l");
  spec.atoms = {{0, 1, l}, {0, 2, l}, {0, 3, l},
                {1, 2, l}, {1, 3, l}, {2, 3, l}};
  spec.conjuncts = {0, 1, 2, 3, 4, 5};
  std::vector<Row> rows = rel::WcojEval(snap, spec, 32);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Row{0, 1, 2, 3}));
}

TEST(WcojEvalTest, DiamondHandComputed) {
  // Diamond (4-cycle) x -a-> y -b-> w, x -c-> z -d-> w; two diamonds, one
  // sharing its rim nodes with chain noise.
  EdgeLabeledGraph g;
  for (int i = 0; i < 9; ++i) g.AddNode("n" + std::to_string(i));
  g.AddEdge(0, 1, "a");
  g.AddEdge(1, 3, "b");
  g.AddEdge(0, 2, "c");
  g.AddEdge(2, 3, "d");
  g.AddEdge(4, 5, "a");
  g.AddEdge(5, 7, "b");
  g.AddEdge(4, 6, "c");
  g.AddEdge(6, 7, "d");
  g.AddEdge(8, 1, "a");  // a-edge into a rim node, closes nothing
  GraphSnapshot snap(g);
  rel::WcojSpec spec;  // vars x, y, z, w
  spec.vars = {"x", "y", "z", "w"};
  spec.atoms = {{0, 1, *g.FindLabel("a")},
                {1, 3, *g.FindLabel("b")},
                {0, 2, *g.FindLabel("c")},
                {2, 3, *g.FindLabel("d")}};
  spec.conjuncts = {0, 1, 2, 3};
  std::vector<Row> rows = rel::WcojEval(snap, spec, 32);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Row{0, 1, 2, 3}));
  EXPECT_EQ(rows[1], (Row{4, 5, 6, 7}));
}

TEST(WcojEvalTest, MemoryBudgetTripsAsFirstCause) {
  EdgeLabeledGraph g = TwoTriangles();
  GraphSnapshot snap(g);
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.memory_bytes = 64;  // the adjacency caches alone exceed this
  ctx.set_budgets(budgets);
  std::vector<Row> rows = rel::WcojEval(snap, TriangleSpec(g), 32, &ctx);
  EXPECT_EQ(ctx.stop_cause(), StopCause::kMemoryBudget);
  EXPECT_LT(rows.size(), 2u);
}

TEST(WcojEvalTest, AllocFailpointTripsAsMemoryBudget) {
  EdgeLabeledGraph g = TwoTriangles();
  GraphSnapshot snap(g);
  QueryContext ctx;
  ResourceBudgets budgets;
  budgets.memory_bytes = 1ull << 40;
  ctx.set_budgets(budgets);
  ScopedFailpoint fp("crpq.wcoj.alloc");
  std::vector<Row> rows =
      rel::WcojEval(snap, TriangleSpec(g), 32, &ctx, "crpq.wcoj.alloc");
  EXPECT_EQ(ctx.stop_cause(), StopCause::kMemoryBudget);
  EXPECT_TRUE(rows.empty());
}

// --------------------------------------------------------------------------
// Planner core detection.
// --------------------------------------------------------------------------

std::vector<WcojCandidate> Candidates(
    std::vector<std::pair<std::string, std::string>> edges) {
  std::vector<WcojCandidate> out;
  for (size_t i = 0; i < edges.size(); ++i) {
    WcojCandidate c;
    c.conjunct = i;
    c.from = edges[i].first;
    c.to = edges[i].second;
    out.push_back(std::move(c));
  }
  return out;
}

TEST(DetectWcojCoreTest, TriangleIsDetected) {
  auto core = DetectWcojCore(
      Candidates({{"x", "y"}, {"y", "z"}, {"x", "z"}}));
  ASSERT_TRUE(core.has_value());
  EXPECT_EQ(core->conjuncts, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(core->var_order.size(), 3u);
}

TEST(DetectWcojCoreTest, ChainAndStarAreNot) {
  EXPECT_FALSE(DetectWcojCore(
                   Candidates({{"x", "y"}, {"y", "z"}, {"z", "w"}}))
                   .has_value());
  EXPECT_FALSE(DetectWcojCore(
                   Candidates({{"h", "a"}, {"h", "b"}, {"h", "c"}}))
                   .has_value());
}

TEST(DetectWcojCoreTest, TwoCycleIsDeliberatelyNot) {
  // R(x,y), S(y,x) is a 2-cycle; binary join handles it optimally, and the
  // detector's simple-graph view keeps it off the wcoj path.
  EXPECT_FALSE(
      DetectWcojCore(Candidates({{"x", "y"}, {"y", "x"}}))
          .has_value());
}

TEST(DetectWcojCoreTest, PendantEdgesArePrunedOffTheCore) {
  // Triangle plus a tail z -> w: the tail is stripped, the triangle stays.
  auto core = DetectWcojCore(
      Candidates({{"x", "y"}, {"y", "z"}, {"x", "z"}, {"z", "w"}}));
  ASSERT_TRUE(core.has_value());
  EXPECT_EQ(core->conjuncts, (std::vector<size_t>{0, 1, 2}));
}

// --------------------------------------------------------------------------
// Engine-level differential and explain checks.
// --------------------------------------------------------------------------

// Executes `text` four ways — wcoj on, wcoj off, textual order, and wcoj
// off + batch kernel — and requires byte-identical rendered results.
// Returns the wcoj-on text.
std::string ExpectPathInvariant(const PropertyGraph& g,
                                QueryLanguage language,
                                const std::string& text,
                                size_t* num_rows = nullptr) {
  QueryEngine engine{PropertyGraph(g)};
  QueryRequest wcoj_on = Req(language, text);
  wcoj_on.use_wcoj = true;
  QueryRequest wcoj_off = wcoj_on;
  wcoj_off.use_wcoj = false;
  QueryRequest textual = wcoj_off;
  textual.textual_join_order = true;
  QueryRequest batch = wcoj_off;
  batch.use_batch_kernel = true;
  Result<QueryResponse> on = engine.Execute(wcoj_on);
  Result<QueryResponse> off = engine.Execute(wcoj_off);
  Result<QueryResponse> tex = engine.Execute(textual);
  Result<QueryResponse> bat = engine.Execute(batch);
  EXPECT_TRUE(on.ok() && off.ok() && tex.ok() && bat.ok()) << text;
  if (!on.ok() || !off.ok() || !tex.ok() || !bat.ok()) return std::string();
  EXPECT_EQ(on.value().text, off.value().text) << text;
  EXPECT_EQ(on.value().text, tex.value().text) << text;
  EXPECT_EQ(on.value().text, bat.value().text) << text;
  EXPECT_EQ(on.value().num_rows, off.value().num_rows);
  if (num_rows != nullptr) *num_rows = on.value().num_rows;
  return on.value().text;
}

TEST(WcojEngineTest, TriangleByteIdenticalAcrossLanguages) {
  PropertyGraph g = ToPropertyGraph(TwoTriangles());
  size_t rows = 0;
  ExpectPathInvariant(g, QueryLanguage::kCrpq,
                      "q(x, y, z) :- a(x, y), b(y, z), c(x, z)", &rows);
  EXPECT_EQ(rows, 2u);
  ExpectPathInvariant(g, QueryLanguage::kDlCrpq,
                      "q(x, y, z) := [a] (x, y), [b] (y, z), [c] (x, z)",
                      &rows);
  EXPECT_EQ(rows, 2u);
  ExpectPathInvariant(
      g, QueryLanguage::kCoreGql,
      "MATCH (x)-[:a]->(y), (y)-[:b]->(z), (x)-[:c]->(z) RETURN x, y, z",
      &rows);
  EXPECT_EQ(rows, 2u);
}

TEST(WcojEngineTest, StarWithChordByteIdentical) {
  // Star h -> leaves with an extra chord between two leaves: the cyclic
  // core is the (h, l1, l2) triangle; the other spokes join binarily.
  EdgeLabeledGraph g;
  g.AddNode("h");
  for (int i = 1; i <= 5; ++i) g.AddNode("l" + std::to_string(i));
  for (uint32_t i = 1; i <= 5; ++i) g.AddEdge(0, i, "spoke");
  g.AddEdge(1, 2, "chord");
  g.AddEdge(3, 4, "chord");
  PropertyGraph pg = ToPropertyGraph(g);
  size_t rows = 0;
  ExpectPathInvariant(
      pg, QueryLanguage::kCrpq,
      "q(h, u, v) :- spoke(h, u), spoke(h, v), chord(u, v)", &rows);
  EXPECT_EQ(rows, 2u);  // (0,1,2) and (0,3,4)
}

TEST(WcojEngineTest, LargerCliquePatternsStayIdentical) {
  // Random-ish dense single-label graph; 4-clique and diamond patterns.
  EdgeLabeledGraph g;
  const uint32_t n = 24;
  for (uint32_t i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if ((i * 7 + j * 13) % 3 == 0) g.AddEdge(i, j, "e");
    }
  }
  PropertyGraph pg = ToPropertyGraph(g);
  ExpectPathInvariant(pg, QueryLanguage::kCrpq,
                      "q(w, x, y, z) :- e(w, x), e(w, y), e(w, z), "
                      "e(x, y), e(x, z), e(y, z)");
  ExpectPathInvariant(pg, QueryLanguage::kCrpq,
                      "q(x, y, z, w) :- e(x, y), e(y, w), e(x, z), e(z, w)");
}

TEST(WcojEngineTest, ExplainRendersWcojGroup) {
  QueryEngine engine(ToPropertyGraph(TwoTriangles()));
  QueryRequest request =
      Req(QueryLanguage::kCrpq, "q(x, y, z) :- a(x, y), b(y, z), c(x, z)");
  request.explain = true;
  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().text.find("wcoj("), std::string::npos) << r.value().text;
  EXPECT_NE(r.value().text.find("conjuncts=[0, 1, 2]"), std::string::npos)
      << r.value().text;
  EXPECT_EQ(engine.metrics().wcoj_plans.value(), 1u);
}

TEST(WcojEngineTest, AcyclicCoreDoesNotPickWcoj) {
  QueryEngine engine(ToPropertyGraph(TwoTriangles()));
  QueryRequest request =
      Req(QueryLanguage::kCrpq, "q(x, z) :- a(x, y), b(y, z)");
  request.explain = true;
  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().text.find("wcoj("), std::string::npos) << r.value().text;
  EXPECT_EQ(engine.metrics().wcoj_plans.value(), 0u);

  // Executing it is also wcoj-free: no per-language wcoj selection.
  request.explain = false;
  ASSERT_TRUE(engine.Execute(request).ok());
  EXPECT_EQ(engine.metrics()
                .wcoj_by_language[static_cast<size_t>(QueryLanguage::kCrpq)]
                .value(),
            0u);
}

TEST(WcojEngineTest, ClosureAtomsStayOnTheBinaryPath) {
  // A transitive-closure atom is not a single-label edge relation; a
  // "cycle" through it must not be claimed by the wcoj.
  QueryEngine engine(ToPropertyGraph(TwoTriangles()));
  QueryRequest request = Req(QueryLanguage::kCrpq,
                             "q(x, y, z) :- a+(x, y), b(y, z), c(x, z)");
  request.explain = true;
  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().text.find("wcoj("), std::string::npos) << r.value().text;
}

TEST(WcojEngineTest, MetricsCountSelectionsAndBatchRows) {
  QueryEngine engine(ToPropertyGraph(TwoTriangles()));
  QueryRequest request =
      Req(QueryLanguage::kCrpq, "q(x, y, z) :- a(x, y), b(y, z), c(x, z)");
  ASSERT_TRUE(engine.Execute(request).ok());  // engine default: wcoj on
  EXPECT_EQ(engine.metrics().wcoj_plans.value(), 1u);
  EXPECT_EQ(engine.metrics()
                .wcoj_by_language[static_cast<size_t>(QueryLanguage::kCrpq)]
                .value(),
            1u);
  EXPECT_EQ(engine.metrics().batch_rows.value(), 0u);
  QueryRequest batch = request;
  batch.use_batch_kernel = true;
  ASSERT_TRUE(engine.Execute(batch).ok());
  EXPECT_EQ(engine.metrics().batch_rows.value(), 2u);
  std::string report = engine.metrics().ReportText();
  EXPECT_NE(report.find("wcoj_plans"), std::string::npos);
  EXPECT_NE(report.find("batch_rows"), std::string::npos);
  EXPECT_NE(report.find("wcoj[crpq]"), std::string::npos) << report;
}

TEST(WcojEngineTest, EngineOptionCanDisableWcoj) {
  QueryEngine::Options options;
  options.use_wcoj = false;
  QueryEngine engine(ToPropertyGraph(TwoTriangles()), options);
  QueryRequest request =
      Req(QueryLanguage::kCrpq, "q(x, y, z) :- a(x, y), b(y, z), c(x, z)");
  Result<QueryResponse> r = engine.Execute(request);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows, 2u);
  EXPECT_EQ(engine.metrics()
                .wcoj_by_language[static_cast<size_t>(QueryLanguage::kCrpq)]
                .value(),
            0u);
  // The plan still carries the group (the metric counts compiles).
  EXPECT_EQ(engine.metrics().wcoj_plans.value(), 1u);
  // Per-request override re-enables it.
  QueryRequest forced = request;
  forced.use_wcoj = true;
  ASSERT_TRUE(engine.Execute(forced).ok());
  EXPECT_EQ(engine.metrics()
                .wcoj_by_language[static_cast<size_t>(QueryLanguage::kCrpq)]
                .value(),
            1u);
}

}  // namespace
}  // namespace gqzoo
