#include <gtest/gtest.h>

#include "src/automata/counting.h"
#include "src/automata/glushkov.h"
#include "src/automata/nfa.h"
#include "src/automata/operations.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace gqzoo {
namespace {

using testing_util::Rx;

// A graph whose labels define the test alphabet {a, b, c}.
EdgeLabeledGraph AlphabetGraph() {
  EdgeLabeledGraph g;
  NodeId u = g.AddNode();
  g.AddEdge(u, u, "a");
  g.AddEdge(u, u, "b");
  g.AddEdge(u, u, "c");
  return g;
}

// All words over {a, b, c, d} up to length `len` (d stands for "some label
// outside the mentioned alphabet", exercising the co-finite wildcard class).
std::vector<std::vector<LabelId>> AllWords(const EdgeLabeledGraph& g,
                                           size_t len) {
  std::vector<LabelId> alphabet;
  for (LabelId l = 0; l < g.NumLabels(); ++l) alphabet.push_back(l);
  std::vector<std::vector<LabelId>> words = {{}};
  std::vector<std::vector<LabelId>> frontier = {{}};
  for (size_t i = 0; i < len; ++i) {
    std::vector<std::vector<LabelId>> next;
    for (const auto& w : frontier) {
      for (LabelId l : alphabet) {
        std::vector<LabelId> w2 = w;
        w2.push_back(l);
        next.push_back(w2);
        words.push_back(std::move(w2));
      }
    }
    frontier = std::move(next);
  }
  return words;
}

// Reference recursive matcher for plain regexes on label words.
bool Matches(const Regex& r, const EdgeLabeledGraph& g,
             const std::vector<LabelId>& w, size_t lo, size_t hi);

bool AtomMatchesLabel(const Atom& a, const EdgeLabeledGraph& g, LabelId l) {
  switch (a.label_kind) {
    case Atom::LabelKind::kOne:
      return g.FindLabel(a.labels[0]) == std::optional<LabelId>(l);
    case Atom::LabelKind::kNegSet:
      for (const std::string& name : a.labels) {
        if (g.FindLabel(name) == std::optional<LabelId>(l)) return false;
      }
      return true;
    case Atom::LabelKind::kAny:
      return true;
    case Atom::LabelKind::kTest:
      return false;
  }
  return false;
}

bool Matches(const Regex& r, const EdgeLabeledGraph& g,
             const std::vector<LabelId>& w, size_t lo, size_t hi) {
  switch (r.op()) {
    case Regex::Op::kEpsilon:
      return lo == hi;
    case Regex::Op::kAtom:
      return hi == lo + 1 && AtomMatchesLabel(r.atom(), g, w[lo]);
    case Regex::Op::kConcat:
      for (size_t mid = lo; mid <= hi; ++mid) {
        if (Matches(*r.left(), g, w, lo, mid) &&
            Matches(*r.right(), g, w, mid, hi)) {
          return true;
        }
      }
      return false;
    case Regex::Op::kUnion:
      return Matches(*r.left(), g, w, lo, hi) ||
             Matches(*r.right(), g, w, lo, hi);
    case Regex::Op::kOptional:
      return lo == hi || Matches(*r.child(), g, w, lo, hi);
    case Regex::Op::kPlus:
    case Regex::Op::kStar: {
      if (lo == hi) return r.op() == Regex::Op::kStar ||
                           Matches(*r.child(), g, w, lo, hi);
      // Nonempty split: first chunk nonempty, recurse.
      for (size_t mid = lo + 1; mid <= hi; ++mid) {
        if (Matches(*r.child(), g, w, lo, mid)) {
          if (mid == hi) return true;
          // Remaining must match star (plus already satisfied once).
          RegexPtr star = Regex::Star(r.child());
          if (Matches(*star, g, w, mid, hi)) return true;
        }
      }
      return false;
    }
  }
  return false;
}

class GlushkovAgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GlushkovAgreementTest, AcceptsSameWordsAsReferenceMatcher) {
  EdgeLabeledGraph g = AlphabetGraph();
  g.InternLabel("d");  // a label no regex mentions
  RegexPtr r = Rx(GetParam());
  Nfa nfa = Nfa::FromRegex(*r, g);
  for (const auto& w : AllWords(g, 4)) {
    EXPECT_EQ(nfa.AcceptsWord(w), Matches(*r, g, w, 0, w.size()))
        << GetParam() << " on word of length " << w.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regexes, GlushkovAgreementTest,
    ::testing::Values("a", "a b", "a|b", "a*", "a+", "a?", "(a b)*",
                      "(a|b)* c", "a (b|c)+ a?", "eps", "(((a*)*)*)*",
                      "!{a} b", "_ _", "!{a,b}*", "a{2}", "a{1,3}",
                      "(a b){2,}", "(a|b)(a|b)(a|b)", "a* b* c*",
                      "((a|eps) b)*"));

TEST(GlushkovTest, PositionsAndEpsilon) {
  GlushkovAutomaton ga = BuildGlushkov(*Rx("(a b)* c"));
  EXPECT_EQ(ga.position_atoms.size(), 3u);
  EXPECT_FALSE(ga.initial_accepting);
  GlushkovAutomaton eps = BuildGlushkov(*Rx("a*"));
  EXPECT_TRUE(eps.initial_accepting);
}

TEST(NfaTest, UnknownLabelMatchesNothing) {
  EdgeLabeledGraph g = AlphabetGraph();
  Nfa nfa = Nfa::FromRegex(*Rx("zzz"), g);
  EXPECT_FALSE(nfa.AcceptsWord({*g.FindLabel("a")}));
  // But a negated set containing only unknown labels matches everything.
  Nfa neg = Nfa::FromRegex(*Rx("!{zzz}"), g);
  EXPECT_TRUE(neg.AcceptsWord({*g.FindLabel("a")}));
}

TEST(LabelPredTest, Conjunction) {
  LabelPred one = LabelPred::One(1);
  LabelPred neg = LabelPred::NegSet({2, 3});
  LabelPred any = LabelPred::Any();
  EXPECT_EQ(LabelPred::And(one, any), one);
  EXPECT_EQ(LabelPred::And(one, neg), one);
  EXPECT_EQ(LabelPred::And(one, LabelPred::NegSet({1})).kind,
            LabelPred::Kind::kNone);
  LabelPred both = LabelPred::And(neg, LabelPred::NegSet({3, 4}));
  EXPECT_EQ(both.kind, LabelPred::Kind::kNegSet);
  EXPECT_EQ(both.labels, (std::vector<LabelId>{2, 3, 4}));
  EXPECT_EQ(LabelPred::And(LabelPred::None(), any).kind,
            LabelPred::Kind::kNone);
}

struct EquivCase {
  const char* lhs;
  const char* rhs;
  bool equivalent;
};

class EquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(EquivalenceTest, MatchesExpectation) {
  EdgeLabeledGraph g = AlphabetGraph();
  Nfa lhs = Nfa::FromRegex(*Rx(GetParam().lhs), g);
  Nfa rhs = Nfa::FromRegex(*Rx(GetParam().rhs), g);
  EXPECT_EQ(AreEquivalent(lhs, rhs), GetParam().equivalent)
      << GetParam().lhs << " vs " << GetParam().rhs;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, EquivalenceTest,
    ::testing::Values(
        // The Section 6.1 rewriting: (((a*)*)*)* ≡ a*.
        EquivCase{"(((a*)*)*)*", "a*", true},
        EquivCase{"a{2}", "a a", true},
        EquivCase{"(a|b)*", "(a* b*)*", true},
        EquivCase{"a+", "a a*", true},
        EquivCase{"a?", "a|eps", true},
        EquivCase{"(a b)*", "(a b)* a b|eps", true},
        EquivCase{"a", "b", false},
        EquivCase{"(a a)*", "a*", false},
        EquivCase{"a*", "a+", false},
        EquivCase{"_", "a|b|c", false},  // wildcard covers unmentioned labels
        EquivCase{"!{a}", "b|c", false},
        EquivCase{"a b", "b a", false}));

TEST(OperationsTest, UnionIntersectionComplement) {
  EdgeLabeledGraph g = AlphabetGraph();
  Nfa a = Nfa::FromRegex(*Rx("a a*"), g);
  Nfa b = Nfa::FromRegex(*Rx("a"), g);
  // a ∩ ¬b = a a a*.
  Nfa diff = IntersectNfa(a, Complement(b));
  Nfa expect = Nfa::FromRegex(*Rx("a a a*"), g);
  EXPECT_TRUE(AreEquivalent(diff, expect));
  // a ∪ ε-language.
  Nfa u = UnionNfa(a, Nfa::FromRegex(*Rx("eps"), g));
  EXPECT_TRUE(AreEquivalent(u, Nfa::FromRegex(*Rx("a*"), g)));
  // Complement of everything is empty.
  Nfa everything = Nfa::FromRegex(*Rx("_*"), g);
  EXPECT_TRUE(IsEmptyLanguage(Complement(everything)));
  EXPECT_FALSE(IsEmptyLanguage(everything));
}

TEST(OperationsTest, DeterminizeIsDeterministicAndEquivalent) {
  EdgeLabeledGraph g = AlphabetGraph();
  Nfa n = Nfa::FromRegex(*Rx("(a|b)* a (a|b)"), g);
  Nfa d = Determinize(n);
  EXPECT_TRUE(AreEquivalent(n, d));
  EXPECT_FALSE(IsAmbiguous(d));
  // Each DFA state has exactly |mentioned|+1 outgoing transitions.
  for (uint32_t s = 0; s < d.num_states(); ++s) {
    EXPECT_EQ(d.Out(s).size(), n.MentionedLabels().size() + 1);
  }
}

TEST(AmbiguityTest, Examples) {
  EdgeLabeledGraph g = AlphabetGraph();
  EXPECT_FALSE(IsAmbiguous(Nfa::FromRegex(*Rx("a*"), g)));
  EXPECT_FALSE(IsAmbiguous(Nfa::FromRegex(*Rx("a b"), g)));
  EXPECT_TRUE(IsAmbiguous(Nfa::FromRegex(*Rx("a*a*"), g)));
  EXPECT_TRUE(IsAmbiguous(Nfa::FromRegex(*Rx("(a|a)"), g)));
  EXPECT_TRUE(IsAmbiguous(Nfa::FromRegex(*Rx("(a|_)"), g)));
  EXPECT_FALSE(IsAmbiguous(Nfa::FromRegex(*Rx("(a b|a c)"), g)));
  // (((a*)*)*)* is wildly ambiguous as a grammar, but its Glushkov
  // automaton has a single position and is deterministic — the automata
  // view collapses the ambiguity for free (Section 6.1's rewriting story).
  EXPECT_FALSE(IsAmbiguous(Nfa::FromRegex(*Rx("(((a*)*)*)*"), g)));
  // Union of disjoint languages is unambiguous.
  EXPECT_FALSE(IsAmbiguous(Nfa::FromRegex(*Rx("a|b"), g)));
}

TEST(CountingTest, RunsOnWords) {
  EdgeLabeledGraph g = AlphabetGraph();
  LabelId a = *g.FindLabel("a");
  Nfa ambiguous = Nfa::FromRegex(*Rx("a* a*"), g);
  // "aa" parses as (ε|aa), (a|a), (aa|ε): 3 runs.
  EXPECT_EQ(CountAcceptingRuns(ambiguous, {a, a}).ToString(), "3");
  Nfa unambiguous = Nfa::FromRegex(*Rx("a*"), g);
  EXPECT_EQ(CountAcceptingRuns(unambiguous, {a, a}).ToString(), "1");
  EXPECT_EQ(CountAcceptingRuns(unambiguous, {a, *g.FindLabel("b")}).ToString(),
            "0");
}

TEST(CountingTest, PathCountingOnParallelChain) {
  // ParallelChain(n) has exactly 2^n s→t paths of length n; the automaton
  // for a* is unambiguous, so run counting = path counting (Section 6.2).
  for (size_t n : {1u, 3u, 6u, 10u}) {
    EdgeLabeledGraph g = ParallelChain(n);
    Nfa nfa = Nfa::FromRegex(*Rx("a*"), g);
    ASSERT_FALSE(IsAmbiguous(nfa));
    BigUint count = CountRunsOnPaths(g, nfa, *g.FindNode("s"),
                                     *g.FindNode("t"), n + 5);
    EXPECT_EQ(count.ToString(), BigUint(uint64_t{1} << n).ToString())
        << "n=" << n;
  }
}

TEST(CountingTest, AmbiguousAutomatonOvercountsPaths) {
  EdgeLabeledGraph g = ParallelChain(3);
  Nfa ambiguous = Nfa::FromRegex(*Rx("a* a*"), g);
  ASSERT_TRUE(IsAmbiguous(ambiguous));
  BigUint runs = CountRunsOnPaths(g, ambiguous, *g.FindNode("s"),
                                  *g.FindNode("t"), 10);
  // 8 paths, each with 4 runs (split points 0..3).
  EXPECT_EQ(runs.ToString(), "32");
}

}  // namespace
}  // namespace gqzoo
