// E8 (Section 5.2, "Turning to Lists for Help"): the innocuous-looking
// query  p = ((x) →* (y)) ⟨reduce_{0,ι,+}(E(p)) = 0⟩  encodes SUBSET-SUM
// on a chain of parallel edges and is NP-complete in data complexity —
// "it can lead to evaluation issues even on tiny graphs with a few dozen
// nodes". The series shows the 2^n blow-up in instance size n.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "src/graph/generators.h"
#include "src/lists/list_functions.h"

namespace gqzoo {
namespace {

// Hard-ish instances: random values with no zero-sum subset except the
// trivial all-skip selection (values all positive), so the search must
// exhaust all 2^n selections.
std::vector<int64_t> PositiveValues(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(1, 1000000);
  std::vector<int64_t> values;
  for (size_t i = 0; i < n; ++i) values.push_back(dist(rng));
  return values;
}

void BM_SubsetSumReduce(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = SubsetSumChain(PositiveValues(n, 99));
  NodeId s = *g.FindNode("w0");
  NodeId t = *g.FindNode("w" + std::to_string(n));
  auto eq0 = [](const Value& v) { return v.is_int() && v.as_int() == 0; };
  size_t explored = 0;
  for (auto _ : state) {
    ReduceQueryStats stats;
    std::vector<Path> solutions = PathsWithReducePredicate(
        g, s, t, Value(0), PropertyIota(g, "k"), SumStep(g, "k"), eq0, {},
        &stats);
    explored = stats.paths_explored;
    benchmark::DoNotOptimize(solutions);
  }
  state.counters["paths_explored"] = static_cast<double>(explored);
  state.counters["graph_nodes"] = static_cast<double>(g.NumNodes());
}
BENCHMARK(BM_SubsetSumReduce)->DenseRange(4, 20, 2);

// Contrast: a PTIME query over the same graphs (plain shortest-style sum
// along one fixed path) stays flat.
void BM_SingleReduceEvaluation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = SubsetSumChain(PositiveValues(n, 99));
  // One fixed maximal path: always take the "value" edge (even edge ids).
  std::vector<ObjectRef> objs = {ObjectRef::Node(*g.FindNode("w0"))};
  for (size_t i = 0; i < n; ++i) {
    objs.push_back(ObjectRef::Edge(static_cast<EdgeId>(2 * i)));
    objs.push_back(
        ObjectRef::Node(*g.FindNode("w" + std::to_string(i + 1))));
  }
  Path p = Path::MakeUnchecked(objs);
  for (auto _ : state) {
    Value sum = SumOverEdges(g, p, "k");
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_SingleReduceEvaluation)->DenseRange(4, 20, 2);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  printf("E8: reduce-sum = 0 encodes SUBSET-SUM; expect ~2^n exploration "
         "growth (paper: NP-complete in data complexity, problematic on "
         "graphs with a few dozen nodes).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
