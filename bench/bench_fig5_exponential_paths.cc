// E3 (Figure 5 + Section 6.3): the graph with 2^n s→t paths. The paper's
// claim: the output of `q(z) := shortest (a^z)*(s, t)` consists of
// 2^Θ(n) lists, while a PMR represents all of them in O(n) space. The
// benchmark series shows enumeration cost growing exponentially while the
// PMR construction stays linear.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/graph/generators.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

Nfa AStarNfa(const EdgeLabeledGraph& g) {
  return Nfa::FromRegex(
      *ParseRegex("(a^z)*", RegexDialect::kPlain).ValueOrDie(), g);
}

void BM_Fig5_BuildPmr(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  Nfa nfa = AStarNfa(g);
  NodeId s = *g.FindNode("s");
  NodeId t = *g.FindNode("t");
  size_t pmr_nodes = 0, pmr_edges = 0;
  for (auto _ : state) {
    Pmr pmr = BuildPmrBetween(g, nfa, s, t);
    pmr_nodes = pmr.NumNodes();
    pmr_edges = pmr.NumEdges();
    benchmark::DoNotOptimize(pmr);
  }
  state.counters["pmr_nodes"] = static_cast<double>(pmr_nodes);
  state.counters["pmr_edges"] = static_cast<double>(pmr_edges);
  state.counters["paths_represented"] =
      static_cast<double>(uint64_t{1} << n);
}
BENCHMARK(BM_Fig5_BuildPmr)->DenseRange(4, 24, 4);

void BM_Fig5_CountWalks(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  Nfa nfa = AStarNfa(g);
  Pmr pmr = BuildPmrBetween(g, nfa, *g.FindNode("s"), *g.FindNode("t"));
  std::string count;
  for (auto _ : state) {
    count = CountPmrWalks(pmr)->ToString();
    benchmark::DoNotOptimize(count);
  }
  state.SetLabel("2^" + std::to_string(n) + " = " + count);
}
BENCHMARK(BM_Fig5_CountWalks)->DenseRange(4, 24, 4);

void BM_Fig5_EnumerateAll(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  Nfa nfa = AStarNfa(g);
  Pmr pmr = BuildPmrBetween(g, nfa, *g.FindNode("s"), *g.FindNode("t"));
  size_t results = 0;
  for (auto _ : state) {
    results = 0;
    EnumeratePathBindings(pmr, EnumerationLimits{},
                          [&results](const PathBinding&) {
                            ++results;
                            return true;
                          });
  }
  state.counters["paths"] = static_cast<double>(results);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Fig5_EnumerateAll)->DenseRange(4, 18, 2);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    printf("E3 / Figure 5: n-diamond chains; PMR size vs represented "
           "paths.\n");
    printf("%4s %12s %12s %20s\n", "n", "pmr_nodes", "pmr_edges", "paths");
    for (size_t n = 4; n <= 24; n += 4) {
      EdgeLabeledGraph g = ParallelChain(n);
      Nfa nfa = Nfa::FromRegex(
          *ParseRegex("(a^z)*", RegexDialect::kPlain).ValueOrDie(), g);
      Pmr pmr = BuildPmrBetween(g, nfa, *g.FindNode("s"), *g.FindNode("t"));
      printf("%4zu %12zu %12zu %20s\n", n, pmr.NumNodes(), pmr.NumEdges(),
             CountPmrWalks(pmr)->ToString().c_str());
    }
    printf("(paper: 2^Theta(n) lists, O(n) PMR — shapes must match)\n\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
