// E1 (Figure 2 + Examples 12, 13): RPQ and CRPQ evaluation on the paper's
// bank-transfer graph. The paper's claims are exact answer sets:
//   Transfer*  — complete on the accounts {a1..a6} (Example 12)
//   q1         — {(a3,a2,a4), (a6,a3,a5)} (Example 13)
//   q2         — contains (a4, Rebecca, no) (Example 13)
// Timings show the product-construction costs on the micro graph.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/rpq/rpq_eval.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

void BM_Fig2_TransferStar(benchmark::State& state) {
  EdgeLabeledGraph g = Figure2Graph();
  Nfa nfa = Nfa::FromRegex(*ParseRegex("Transfer*", RegexDialect::kPlain)
                                .ValueOrDie(),
                           g);
  size_t answers = 0;
  for (auto _ : state) {
    auto pairs = EvalRpq(g, nfa);
    answers = pairs.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Fig2_TransferStar);

void BM_Fig2_Example13_q1(benchmark::State& state) {
  EdgeLabeledGraph g = Figure2Graph();
  Crpq q = ParseCrpq("q1(x1, x2, x3) := Transfer(x1, x2), Transfer(x1, x3), "
                     "Transfer(x2, x3)")
               .ValueOrDie();
  size_t answers = 0;
  for (auto _ : state) {
    Result<CrpqResult> r = EvalCrpq(g, q);
    answers = r.value().rows.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);  // paper: 2
}
BENCHMARK(BM_Fig2_Example13_q1);

void BM_Fig2_Example13_q2(benchmark::State& state) {
  EdgeLabeledGraph g = Figure2Graph();
  Crpq q = ParseCrpq("q2(x, x1, x2) := owner(y, x1), isBlocked(y, x2), "
                     "(Transfer Transfer?)(x, y)")
               .ValueOrDie();
  size_t answers = 0;
  for (auto _ : state) {
    Result<CrpqResult> r = EvalCrpq(g, q);
    answers = r.value().rows.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Fig2_Example13_q2);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    EdgeLabeledGraph g = Figure2Graph();
    auto pairs = EvalRpq(
        g, *ParseRegex("Transfer*", RegexDialect::kPlain).ValueOrDie());
    printf("E1 / Figure 2. Transfer* answers: %zu "
           "(paper: all 36 account pairs + trivial self-pairs)\n",
           pairs.size());
    Crpq q1 = ParseCrpq("q1(x1, x2, x3) := Transfer(x1, x2), "
                        "Transfer(x1, x3), Transfer(x2, x3)")
                  .ValueOrDie();
    Result<CrpqResult> r1 = EvalCrpq(g, q1);
    printf("q1 answers (paper: {(a3,a2,a4), (a6,a3,a5)}):\n%s",
           r1.value().ToString(g).c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
