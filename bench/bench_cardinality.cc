// E17 (Section 7.1, "Relational Algebra over Pattern Matching"): the paper
// calls cardinality estimation for (C)RPQs a non-trivial open question.
// This bench measures the two baseline estimators against exact counts:
// estimation error (q-error) and cost, across graph sizes and queries.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "src/graph/generators.h"
#include "src/regex/parser.h"
#include "src/rpq/cardinality.h"
#include "src/rpq/rpq_eval.h"

namespace gqzoo {
namespace {

const char* kQueries[] = {"a", "a b", "(a|b) a", "a*", "a b*"};

double QError(double estimate, double exact) {
  if (estimate <= 0 || exact <= 0) return estimate == exact ? 1.0 : 1e9;
  return std::max(estimate / exact, exact / estimate);
}

void BM_SynopsisEstimate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t qi = static_cast<size_t>(state.range(1));
  EdgeLabeledGraph g = RandomGraph(n, 4 * n, 2, /*seed=*/41);
  GraphStatistics stats(g);
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex(kQueries[qi], RegexDialect::kPlain).ValueOrDie(), g);
  double estimate = 0;
  for (auto _ : state) {
    estimate = EstimateRpqCardinalitySynopsis(stats, nfa);
    benchmark::DoNotOptimize(estimate);
  }
  double exact = static_cast<double>(EvalRpq(g, nfa).size());
  state.counters["estimate"] = estimate;
  state.counters["exact"] = exact;
  state.counters["q_error"] = QError(estimate, exact);
  state.SetLabel(kQueries[qi]);
}
BENCHMARK(BM_SynopsisEstimate)
    ->ArgsProduct({{256, 1024}, {0, 1, 2, 3, 4}});

void BM_SamplingEstimate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t samples = static_cast<size_t>(state.range(1));
  EdgeLabeledGraph g = RandomGraph(n, 4 * n, 2, /*seed=*/41);
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("a b", RegexDialect::kPlain).ValueOrDie(), g);
  double estimate = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    estimate = EstimateRpqCardinalitySampling(g, nfa, samples, seed++);
    benchmark::DoNotOptimize(estimate);
  }
  double exact = static_cast<double>(EvalRpq(g, nfa).size());
  state.counters["estimate"] = estimate;
  state.counters["exact"] = exact;
  state.counters["q_error"] = QError(estimate, exact);
}
BENCHMARK(BM_SamplingEstimate)
    ->ArgsProduct({{256, 1024}, {4, 16, 64}});

void BM_ExactCountForReference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = RandomGraph(n, 4 * n, 2, /*seed=*/41);
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("a b", RegexDialect::kPlain).ValueOrDie(), g);
  for (auto _ : state) {
    auto pairs = EvalRpq(g, nfa);
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_ExactCountForReference)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  printf("E17: RPQ cardinality estimation (Section 7.1 open direction) — "
         "synopsis (independence) vs sampling vs exact.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
