// E2 (Figure 3 + Examples 16, 17): l-RPQ list-variable bindings and the
// shortest mode grouped by endpoint pairs. The paper's claims:
//   Example 16: (Transfer^z)* isBlocked yields µ(z) = list(), list(t3),
//               list(t2,t3), list(t5,t3), ... on Figure 2.
//   Example 17: shortest (Transfer^z)+ grouped per endpoint pair gives
//               Jay→Rebecca: list(t10) and Mike→Megan: list(t7,t4).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

void BM_Example16_Enumerate(benchmark::State& state) {
  EdgeLabeledGraph g = Figure2Graph();
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("(Transfer^z)* isBlocked", RegexDialect::kPlain)
           .ValueOrDie(),
      g);
  EnumerationLimits limits;
  limits.max_length = 12;
  size_t results = 0;
  for (auto _ : state) {
    Pmr pmr = BuildPmr(g, nfa, {}, {});
    std::vector<PathBinding> bindings = CollectPathBindings(pmr, limits);
    results = bindings.size();
    benchmark::DoNotOptimize(bindings);
  }
  state.counters["bindings_len_le_12"] = static_cast<double>(results);
}
BENCHMARK(BM_Example16_Enumerate);

void BM_Example17_ShortestGrouped(benchmark::State& state) {
  EdgeLabeledGraph g = Figure2Graph();
  Crpq q = ParseCrpq("q(x1, x2, z) := owner(y1, x1), owner(y2, x2), "
                     "shortest (Transfer^z)+ (y1, y2)")
               .ValueOrDie();
  size_t answers = 0;
  for (auto _ : state) {
    Result<CrpqResult> r = EvalCrpq(g, q);
    answers = r.value().rows.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_Example17_ShortestGrouped);

void BM_Example17_PerPairPmr(benchmark::State& state) {
  EdgeLabeledGraph g = Figure2Graph();
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("(Transfer^z)+", RegexDialect::kPlain).ValueOrDie(), g);
  NodeId a3 = *g.FindNode("a3");
  NodeId a1 = *g.FindNode("a1");
  for (auto _ : state) {
    Pmr pmr = BuildPmrBetween(g, nfa, a3, a1).ShortestRestriction();
    auto bindings = CollectPathBindings(pmr, EnumerationLimits{});
    benchmark::DoNotOptimize(bindings);
  }
}
BENCHMARK(BM_Example17_PerPairPmr);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    EdgeLabeledGraph g = Figure2Graph();
    Crpq q = ParseCrpq("q(x1, x2, z) := owner(y1, x1), owner(y2, x2), "
                       "shortest (Transfer^z)+ (y1, y2)")
                 .ValueOrDie();
    Result<CrpqResult> r = EvalCrpq(g, q);
    printf("E2 / Example 17 (shortest grouped by endpoint pair):\n%s",
           r.value().ToString(g).c_str());
    printf("(paper spotlights Jay,Rebecca -> list(t10) and "
           "Mike,Megan -> list(t7, t4))\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
