// E16 (Section 5.1, Proposition 22): the Cypher fragment cannot express
// (ℓℓ)*. We enumerate all unary languages the fragment can denote up to a
// given pattern size and verify that the even-length language never
// appears; the invariant behind the proof — every infinite fragment
// language is upward closed — is checked along the way. The timing series
// measures the exhaustive search itself plus fragment evaluation cost.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/coregql/pattern_eval.h"
#include "src/cypher/cypher_fragment.h"
#include "src/graph/generators.h"
#include "src/graph/graph_io.h"
#include "src/rpq/rpq_eval.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

void BM_EnumerateFragmentLanguages(benchmark::State& state) {
  const size_t max_atoms = static_cast<size_t>(state.range(0));
  size_t languages = 0;
  bool found_evens = false;
  for (auto _ : state) {
    std::vector<UnaryLanguage> langs =
        EnumerateFragmentUnaryLanguages(max_atoms);
    languages = langs.size();
    for (const UnaryLanguage& l : langs) {
      if (!l.IsInfinite()) continue;
      bool evens = true;
      for (size_t i = 0; i < 16; ++i) {
        if (l.Contains(i) != (i % 2 == 0)) {
          evens = false;
          break;
        }
      }
      found_evens = found_evens || evens;
    }
  }
  state.counters["distinct_languages"] = static_cast<double>(languages);
  state.counters["even_language_found"] = found_evens ? 1 : 0;  // must be 0
}
BENCHMARK(BM_EnumerateFragmentLanguages)->DenseRange(3, 11, 2);

void BM_FragmentEvaluation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = ToPropertyGraph(RandomGraph(n, 4 * n, 2, /*seed=*/31));
  CypherPatternPtr p =
      ParseCypherPattern("(x) -[:a*]-> () -[:b]-> (y)").ValueOrDie();
  CorePatternPtr core = p->ToCorePattern();
  size_t answers = 0;
  for (auto _ : state) {
    Result<std::vector<CorePairRow>> rows = EvalPatternPairs(g, *core);
    answers = rows.value().size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_FragmentEvaluation)->RangeMultiplier(4)->Range(64, 1024);

void BM_FullRpqForComparison(benchmark::State& state) {
  // The (aa)* query the fragment cannot express, evaluated by the RPQ
  // machinery — cheap and easy once patterns are automata-compatible.
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = RandomGraph(n, 4 * n, 2, /*seed=*/31);
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("(a a)*", RegexDialect::kPlain).ValueOrDie(), g);
  size_t answers = 0;
  for (auto _ : state) {
    auto pairs = EvalRpq(g, nfa);
    answers = pairs.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_FullRpqForComparison)->RangeMultiplier(4)->Range(64, 1024);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    printf("E16 / Proposition 22: exhaustive fragment language search.\n");
    printf("%6s %20s %22s\n", "atoms", "distinct languages",
           "(ll)* expressible?");
    for (size_t k = 3; k <= 11; k += 2) {
      std::vector<UnaryLanguage> langs = EnumerateFragmentUnaryLanguages(k);
      bool found = false;
      for (const UnaryLanguage& l : langs) {
        if (!l.IsInfinite()) continue;
        bool evens = true;
        for (size_t i = 0; i < 16; ++i) {
          if (l.Contains(i) != (i % 2 == 0)) {
            evens = false;
            break;
          }
        }
        found = found || evens;
      }
      printf("%6zu %20zu %22s\n", k, langs.size(), found ? "YES?!" : "no");
    }
    printf("(paper: not expressible — every row must say 'no')\n\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
