// E6 (Section 6.3, "Data Filters"): shortest paths under data filters must
// look beyond the unconstrained shortest path. Paper claims on Figure 3:
//   - shortest Mike→Rebecca transfer path with one amount < 4.5M is
//     path(a3, t6, a4, t9, a6, t10, a5) (length 3, vs 1 unconstrained);
//   - requiring two cheap transfers forces a cycle (t9 twice, length 6).
// The scaling series uses transfer rings where the only cheap edge sits
// k hops behind the target.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/datatest/dl_eval.h"
#include "src/graph/builtin_graphs.h"
#include "src/graph/generators.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

constexpr const char* kOneCheap =
    "( ()[Transfer] )* ()[Transfer][amount < 4500000] ( ()[Transfer] )* ()";

void BM_Fig3_OneCheap(benchmark::State& state) {
  PropertyGraph g = Figure3Graph();
  DlNfa nfa = DlNfa::FromRegex(
      *ParseRegex(kOneCheap, RegexDialect::kDl).ValueOrDie(), g);
  DlEvaluator evaluator(g, nfa);
  NodeId a3 = *g.FindNode("a3");
  NodeId a5 = *g.FindNode("a5");
  size_t len = 0;
  for (auto _ : state) {
    len = evaluator.ShortestLength(a3, a5);
    benchmark::DoNotOptimize(len);
  }
  state.counters["shortest_len"] = static_cast<double>(len);  // paper: 3
}
BENCHMARK(BM_Fig3_OneCheap);

void BM_Fig3_TwoCheap(benchmark::State& state) {
  PropertyGraph g = Figure3Graph();
  const std::string cheap = "()[Transfer][amount < 4500000]";
  const std::string query = "( ()[Transfer] )* " + cheap +
                            " ( ()[Transfer] )* " + cheap +
                            " ( ()[Transfer] )* ()";
  DlNfa nfa = DlNfa::FromRegex(
      *ParseRegex(query, RegexDialect::kDl).ValueOrDie(), g);
  DlEvaluator evaluator(g, nfa);
  NodeId a3 = *g.FindNode("a3");
  NodeId a5 = *g.FindNode("a5");
  size_t len = 0;
  for (auto _ : state) {
    len = evaluator.ShortestLength(a3, a5);
    benchmark::DoNotOptimize(len);
  }
  state.counters["shortest_len"] = static_cast<double>(len);  // paper: 6
}
BENCHMARK(BM_Fig3_TwoCheap);

void BM_Ring_ShortestWithFilter(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = TransferRing(n, /*num_cheap=*/1, /*threshold=*/4.5e6,
                                 /*seed=*/7);
  DlNfa nfa = DlNfa::FromRegex(
      *ParseRegex(kOneCheap, RegexDialect::kDl).ValueOrDie(), g);
  DlEvaluator evaluator(g, nfa);
  NodeId u = *g.FindNode("acct1");
  NodeId v = *g.FindNode("acct0");
  size_t len = 0;
  for (auto _ : state) {
    len = evaluator.ShortestLength(u, v);
    benchmark::DoNotOptimize(len);
  }
  state.counters["shortest_len"] = static_cast<double>(len);
}
BENCHMARK(BM_Ring_ShortestWithFilter)->RangeMultiplier(2)->Range(16, 1024);

void BM_Ring_ShortestNoFilter(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = TransferRing(n, 1, 4.5e6, 7);
  DlNfa nfa = DlNfa::FromRegex(
      *ParseRegex("( ()[Transfer] )* ()", RegexDialect::kDl).ValueOrDie(), g);
  DlEvaluator evaluator(g, nfa);
  NodeId u = *g.FindNode("acct1");
  NodeId v = *g.FindNode("acct0");
  for (auto _ : state) {
    size_t len = evaluator.ShortestLength(u, v);
    benchmark::DoNotOptimize(len);
  }
}
BENCHMARK(BM_Ring_ShortestNoFilter)->RangeMultiplier(2)->Range(16, 1024);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    PropertyGraph g = Figure3Graph();
    DlNfa nfa = DlNfa::FromRegex(
        *ParseRegex(kOneCheap, RegexDialect::kDl).ValueOrDie(), g);
    DlEvaluator evaluator(g, nfa);
    NodeId a3 = *g.FindNode("a3");
    NodeId a5 = *g.FindNode("a5");
    EnumerationLimits limits;
    limits.max_length = 16;
    auto paths = evaluator.CollectModePaths(a3, a5, PathMode::kShortest,
                                            limits);
    printf("E6 / Section 6.3 data filters on Figure 3.\n");
    printf("shortest Mike->Rebecca with one amount < 4.5M:\n");
    for (const PathBinding& pb : paths) {
      printf("  %s (length %zu)\n", pb.path.ToString(g.skeleton()).c_str(),
             pb.path.Length());
    }
    printf("(paper: path(a3, t6, a4, t9, a6, t10, a5), length 3; "
           "unconstrained shortest has length 1)\n\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
