// Label-indexed CSR snapshot benchmarks: seed scan-based RPQ evaluation vs
// GraphSnapshot slice-based evaluation, across the three graph families the
// paper's experiments use — label-rich sparse random graphs (where per-label
// slicing shrinks the inner loop by ~1/num_labels), cliques (single label,
// measures slicing overhead and parallel sharding), and the Figure-5
// parallel-chain family. Also measures snapshot build cost and parallel
// scaling at 1, 2, and 4 participating threads.
//
// `--smoke` (consumed before benchmark flags) shrinks every size so the CI
// Release job can execute each benchmark once as a correctness/latency
// smoke check. Full runs emit BENCH_csr.json via --benchmark_format=json.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/regex/parser.h"
#include "src/rpq/rpq_eval.h"
#include "src/util/thread_pool.h"

namespace gqzoo {
namespace {

Nfa Compile(const char* regex, const EdgeLabeledGraph& g) {
  return Nfa::FromRegex(
      *ParseRegex(regex, RegexDialect::kPlain).ValueOrDie(), g);
}

// Label-sparse workload: single-label transitions over a graph with many
// labels, so a slice touches ~deg(v)/num_labels hops where the seed scan
// filters all deg(v) edges.
constexpr const char* kSparseRegex = "a (b|c)* d";

void BM_Sparse_Seed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t labels = static_cast<size_t>(state.range(1));
  EdgeLabeledGraph g = RandomGraph(n, 32 * n, labels, /*seed=*/11);
  Nfa nfa = Compile(kSparseRegex, g);
  size_t answers = 0;
  for (auto _ : state) {
    auto pairs = EvalRpq(g, nfa);
    answers = pairs.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_Sparse_Snapshot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t labels = static_cast<size_t>(state.range(1));
  EdgeLabeledGraph g = RandomGraph(n, 32 * n, labels, /*seed=*/11);
  GraphSnapshot snap(g);
  Nfa nfa = Compile(kSparseRegex, g);
  size_t answers = 0;
  for (auto _ : state) {
    auto pairs = EvalRpq(snap, nfa);
    answers = pairs.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

// Clique: one label, so slicing gives no pruning — this isolates snapshot
// overhead (it should be ~neutral) and carries the parallel-scaling runs.
void BM_Clique_Seed(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = Clique(k);
  Nfa nfa = Compile("a a a", g);
  for (auto _ : state) {
    auto pairs = EvalRpq(g, nfa);
    benchmark::DoNotOptimize(pairs);
  }
}

void BM_Clique_Snapshot(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = Clique(k);
  GraphSnapshot snap(g);
  Nfa nfa = Compile("a a a", g);
  for (auto _ : state) {
    auto pairs = EvalRpq(snap, nfa);
    benchmark::DoNotOptimize(pairs);
  }
}

// Parallel sharding: `threads` = participating threads (caller + helpers).
void BM_Clique_Parallel(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  EdgeLabeledGraph g = Clique(k);
  GraphSnapshot snap(g);
  Nfa nfa = Compile("a a a", g);
  ThreadPool pool(threads > 1 ? threads - 1 : 1);
  ParallelRpqOptions options;
  options.pool = threads > 1 ? &pool : nullptr;
  for (auto _ : state) {
    auto pairs = EvalRpqParallel(snap, nfa, options);
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["threads"] = static_cast<double>(threads);
}

void BM_Fig5_Seed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  Nfa nfa = Compile("a*", g);
  for (auto _ : state) {
    auto pairs = EvalRpq(g, nfa);
    benchmark::DoNotOptimize(pairs);
  }
}

void BM_Fig5_Snapshot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  GraphSnapshot snap(g);
  Nfa nfa = Compile("a*", g);
  for (auto _ : state) {
    auto pairs = EvalRpq(snap, nfa);
    benchmark::DoNotOptimize(pairs);
  }
}

// Build cost: what SetGraph pays per epoch, amortized over every query
// until the next mutation.
void BM_SnapshotBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = RandomGraph(n, 32 * n, 8, /*seed=*/11);
  for (auto _ : state) {
    GraphSnapshot snap(g);
    benchmark::DoNotOptimize(snap.ApproxBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumEdges()));
}

void Register(bool smoke) {
  using benchmark::RegisterBenchmark;
  const int64_t sparse_n = smoke ? 256 : 2048;
  for (int64_t labels : {4, 8, 32}) {
    RegisterBenchmark("BM_Sparse_Seed", BM_Sparse_Seed)
        ->Args({sparse_n, labels});
    RegisterBenchmark("BM_Sparse_Snapshot", BM_Sparse_Snapshot)
        ->Args({sparse_n, labels});
  }
  const int64_t clique_k = smoke ? 48 : 192;
  RegisterBenchmark("BM_Clique_Seed", BM_Clique_Seed)->Arg(clique_k);
  RegisterBenchmark("BM_Clique_Snapshot", BM_Clique_Snapshot)->Arg(clique_k);
  for (int64_t threads : {1, 2, 4}) {
    RegisterBenchmark("BM_Clique_Parallel", BM_Clique_Parallel)
        ->Args({clique_k, threads})
        ->UseRealTime();
  }
  const int64_t fig5_n = smoke ? 512 : 8192;
  RegisterBenchmark("BM_Fig5_Seed", BM_Fig5_Seed)->Arg(fig5_n);
  RegisterBenchmark("BM_Fig5_Snapshot", BM_Fig5_Snapshot)->Arg(fig5_n);
  RegisterBenchmark("BM_SnapshotBuild", BM_SnapshotBuild)
      ->Arg(smoke ? 1024 : 16384);
}

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  // Smoke mode: tiny sizes plus a minimal repetition budget — one pass
  // that proves every benchmark still runs, not a measurement.
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time.data());
  int filtered_argc = static_cast<int>(args.size());
  gqzoo::Register(smoke);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
