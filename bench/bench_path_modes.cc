// E12 (Section 6.3, "Path Modes"): shortest stays polynomial (PMR-based),
// while simple/trail enumeration is NP-hard in the worst case — but
// practical on "well behaved" graphs, which is the PathFinder observation
// the paper cites. Adversarial workload: parallel chains (exponentially
// many trails); well-behaved workload: sparse random graphs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/crpq/modes.h"
#include "src/rpq/rpq_eval.h"
#include "src/graph/generators.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

Nfa AStar(const EdgeLabeledGraph& g) {
  return Nfa::FromRegex(
      *ParseRegex("a*", RegexDialect::kPlain).ValueOrDie(), g);
}

void RunMode(benchmark::State& state, const EdgeLabeledGraph& g, NodeId u,
             NodeId v, PathMode mode, size_t cap) {
  Nfa nfa = AStar(g);
  EnumerationLimits limits;
  limits.max_results = cap;
  limits.max_length = 64;
  size_t results = 0;
  bool truncated = false;
  for (auto _ : state) {
    EnumerationStats stats;
    auto paths = CollectModePaths(g, nfa, u, v, mode, limits, &stats);
    results = paths.size();
    truncated = stats.truncated;
    benchmark::DoNotOptimize(paths);
  }
  state.counters["paths"] = static_cast<double>(results);
  state.counters["truncated"] = truncated ? 1 : 0;
}

void BM_Adversarial_Shortest(benchmark::State& state) {
  EdgeLabeledGraph g = ParallelChain(static_cast<size_t>(state.range(0)));
  // Shortest of the diamond chain: all 2^n paths are shortest; cap the
  // enumeration — the *search* is poly, the output is what explodes.
  RunMode(state, g, *g.FindNode("s"), *g.FindNode("t"), PathMode::kShortest,
          1000);
}
BENCHMARK(BM_Adversarial_Shortest)->DenseRange(4, 16, 4);

void BM_Adversarial_Trail(benchmark::State& state) {
  EdgeLabeledGraph g = ParallelChain(static_cast<size_t>(state.range(0)));
  RunMode(state, g, *g.FindNode("s"), *g.FindNode("t"), PathMode::kTrail,
          1000);
}
BENCHMARK(BM_Adversarial_Trail)->DenseRange(4, 16, 4);

void BM_Adversarial_Simple(benchmark::State& state) {
  EdgeLabeledGraph g = ParallelChain(static_cast<size_t>(state.range(0)));
  RunMode(state, g, *g.FindNode("s"), *g.FindNode("t"), PathMode::kSimple,
          1000);
}
BENCHMARK(BM_Adversarial_Simple)->DenseRange(4, 16, 4);

void BM_WellBehaved_Modes(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const PathMode mode = static_cast<PathMode>(state.range(1));
  EdgeLabeledGraph g = RandomGraph(n, n + n / 2, 1, /*seed=*/23);  // sparse
  Nfa nfa = AStar(g);
  // Pick a target actually reachable from node 0 so the searches have
  // results to find (the PathFinder-style "well behaved" case).
  std::vector<NodeId> reachable = EvalRpqFrom(g, nfa, 0);
  NodeId target = reachable.empty() ? 0 : reachable[reachable.size() / 2];
  EnumerationLimits limits;
  limits.max_results = 1000;
  limits.max_length = 16;
  size_t results = 0;
  for (auto _ : state) {
    auto paths = CollectModePaths(g, nfa, 0, target, mode, limits);
    results = paths.size();
    benchmark::DoNotOptimize(paths);
  }
  state.counters["paths"] = static_cast<double>(results);
  state.SetLabel(PathModeName(mode));
}
BENCHMARK(BM_WellBehaved_Modes)
    ->ArgsProduct({{64, 256, 1024},
                   {static_cast<int>(PathMode::kShortest),
                    static_cast<int>(PathMode::kSimple),
                    static_cast<int>(PathMode::kTrail)}});

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  printf("E12: path modes — shortest (PMR, poly) vs simple/trail "
         "(backtracking, exponential worst case, fine on sparse graphs).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
