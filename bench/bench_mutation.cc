// Mutable-graph write path: what a small mutation costs before the next
// query can run, and what mixed read/write traffic does to read latency.
//
// BM_FirstQueryAfterMutation compares the two ways to make one added edge
// visible on an n-node / m-edge random graph:
//   mode=delta    ApplyMutation (overlay append) + first query over the
//                 spliced merged view — O(delta) write, merge-on-read.
//   mode=rebuild  what an immutable engine must do: clone the graph, apply
//                 the edge, SetGraph (epoch bump: CSR + stats rebuild, plan
//                 cache flushed) + first query (recompile).
// The acceptance bar for the delta subsystem is delta ≥5× faster to first
// query; BENCH_mutation.json records the measured ratio.
//
// BM_MixedReadWrite drives one engine with an interleaved stream at a
// fixed write percentage (1 / 10 / 50) — reads are RPQs over the current
// view, writes alternate add-edge / del-edge so the graph stays
// size-stable while background compaction churns underneath. Counters
// report read throughput and p50/p99 read latency.
//
// `--smoke` (consumed before benchmark flags) shrinks sizes for the CI
// bit-rot check. Full runs emit BENCH_mutation.json via
// --benchmark_format=json plus hand-reduced summary numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/graph/delta/delta.h"
#include "src/graph/generators.h"

namespace gqzoo {
namespace {

size_t g_nodes = 4096;
size_t g_edges = 65536;

/// The reads are point-ish lookups over the rare label, so the measurement
/// isolates write-to-visibility cost instead of an O(all-edges) scan.
QueryRequest ReadReq() {
  QueryRequest request;
  request.language = QueryLanguage::kRpq;
  request.text = "b";
  request.max_display_rows = 5;  // count all rows, render almost none
  return request;
}

/// Bulk `a` edges plus a sparse `b` label (1/1024 of the edges): mutating
/// and reading `b` is the realistic small-write shape — the stats patch
/// and plan invalidation stay scoped to the rare label while the bulk of
/// the graph rides along untouched. Objects carry Figure 3-shaped property
/// payloads (owner/flag on nodes, amount/date on edges): the overlay
/// borrows all of it from the base, while the rebuild path clones it.
PropertyGraph BenchGraph() {
  PropertyGraph g;
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<uint32_t> node_dist(
      0, static_cast<uint32_t>(g_nodes) - 1);
  std::uniform_int_distribution<int64_t> value_dist(0, 99);
  for (size_t i = 0; i < g_nodes; ++i) {
    NodeId node = g.AddNode("n" + std::to_string(i), "N");
    g.SetProperty(ObjectRef::Node(node), "k", Value(value_dist(rng)));
    g.SetProperty(ObjectRef::Node(node), "owner",
                  Value("acct" + std::to_string(i)));
    g.SetProperty(ObjectRef::Node(node), "flag", Value(i % 7 == 0));
  }
  for (size_t e = 0; e < g_edges; ++e) {
    const char* label = (e % 1024 == 0) ? "b" : "a";
    EdgeId edge = g.AddEdge(node_dist(rng), node_dist(rng), label);
    g.SetProperty(ObjectRef::Edge(edge), "amount", Value(value_dist(rng)));
    g.SetProperty(ObjectRef::Edge(edge), "date",
                  Value("2025-01-" + std::to_string(1 + e % 28)));
  }
  return g;
}

/// mode 0 = delta overlay, mode 1 = clone + SetGraph rebuild. One
/// iteration = make one new edge visible and run the first query that
/// sees it.
void BM_FirstQueryAfterMutation(benchmark::State& state) {
  const bool rebuild = state.range(0) != 0;
  QueryEngine::Options options;
  options.num_threads = 2;
  // The fold is driven explicitly (between timed iterations) so every
  // iteration measures the same thing: one op on an empty overlay.
  options.mutation.background_compaction = false;
  options.mutation.compact_min_ops = size_t{1} << 30;
  options.mutation.compact_ratio = 1e9;

  PropertyGraph base = BenchGraph();
  QueryEngine engine(BenchGraph(), options);
  QueryRequest read = ReadReq();
  // Warm: plan compiled, CSR built, first read done.
  benchmark::DoNotOptimize(engine.Execute(read));

  size_t serial = 0;
  for (auto _ : state) {
    const std::string edge_name = "bm" + std::to_string(serial++);
    if (rebuild) {
      // Clone-and-replace: what making this edge visible costs without a
      // write path. SetGraph bumps the epoch, so the first read also
      // recompiles its plan — that loss is part of the rebuild price.
      PropertyGraph next = base;
      next.AddEdge(0, 1, "b", edge_name);
      engine.SetGraph(std::move(next));
      benchmark::DoNotOptimize(engine.Execute(read));
    } else {
      MutationBatch batch;
      batch.AddEdge(edge_name, "n0", "n1", "b");
      benchmark::DoNotOptimize(engine.ApplyMutation(batch));
      benchmark::DoNotOptimize(engine.Execute(read));
      if (serial % 64 == 0) {
        // Fold occasionally (outside timing) so the overlay stays small;
        // folding every iteration would let the retired generation's
        // teardown bleed into the next timed read on small machines.
        state.PauseTiming();
        engine.CompactNow();
        state.ResumeTiming();
      }
    }
  }
  state.counters["edges"] = static_cast<double>(g_edges);
}

/// One engine, an interleaved read/write stream at `write_pct` percent
/// writes. One iteration = one operation (read or write, by schedule).
void BM_MixedReadWrite(benchmark::State& state) {
  const int write_pct = static_cast<int>(state.range(0));
  QueryEngine::Options options;
  options.num_threads = 2;
  QueryEngine engine(BenchGraph(), options);
  QueryRequest read = ReadReq();
  benchmark::DoNotOptimize(engine.Execute(read));

  std::vector<double> read_us;
  read_us.reserve(1 << 16);
  size_t op = 0, writes = 0, write_errors = 0;
  std::string pending_edge;
  for (auto _ : state) {
    const bool is_write = static_cast<int>(op % 100) < write_pct;
    if (is_write) {
      MutationBatch batch;
      if (pending_edge.empty()) {
        pending_edge = "w" + std::to_string(writes);
        batch.AddEdge(pending_edge, "n0", "n1", "b");
      } else {
        batch.RemoveEdge(pending_edge);
        pending_edge.clear();
      }
      ++writes;
      if (!engine.ApplyMutation(batch).ok()) ++write_errors;
    } else {
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(engine.Execute(read));
      const auto stop = std::chrono::steady_clock::now();
      read_us.push_back(
          std::chrono::duration<double, std::micro>(stop - start).count());
    }
    ++op;
  }

  std::sort(read_us.begin(), read_us.end());
  auto pct = [&read_us](double p) {
    if (read_us.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * (read_us.size() - 1));
    return read_us[idx];
  };
  state.counters["reads_per_sec"] = benchmark::Counter(
      static_cast<double>(read_us.size()), benchmark::Counter::kIsRate);
  state.counters["p50_read_us"] = pct(0.50);
  state.counters["p99_read_us"] = pct(0.99);
  state.counters["writes"] = static_cast<double>(writes);
  state.counters["write_errors"] = static_cast<double>(write_errors);
  state.counters["compactions"] =
      static_cast<double>(engine.delta_info().compactions);
}

void Register(bool smoke) {
  if (smoke) {
    g_nodes = 512;
    g_edges = 4096;
  }
  benchmark::RegisterBenchmark("BM_FirstQueryAfterMutation",
                               BM_FirstQueryAfterMutation)
      ->ArgsProduct({{0, 1}})
      ->ArgNames({"rebuild"})
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("BM_MixedReadWrite", BM_MixedReadWrite)
      ->ArgsProduct({{1, 10, 50}})
      ->ArgNames({"write_pct"})
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time.data());
  int filtered_argc = static_cast<int>(args.size());
  gqzoo::Register(smoke);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
