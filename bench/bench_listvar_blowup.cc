// E4 (Section 6.3): the l-RPQ (a a^z | a^z a)* binds z to 2^n different
// lists on a single path of 2n a-edges — exponentially many outputs on
// *one* matched path. We count distinct bindings by enumeration (small n)
// and count accepting runs via the PMR (large n).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "src/graph/generators.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

Nfa BlowupNfa(const EdgeLabeledGraph& g) {
  return Nfa::FromRegex(
      *ParseRegex("(a a^z | a^z a)*", RegexDialect::kPlain).ValueOrDie(), g);
}

void BM_ListVarBlowup_DistinctBindings(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = Chain(2 * n);
  Nfa nfa = BlowupNfa(g);
  NodeId u = *g.FindNode("u1");
  NodeId v = *g.FindNode("u" + std::to_string(2 * n + 1));
  size_t bindings = 0;
  for (auto _ : state) {
    Pmr pmr = BuildPmrBetween(g, nfa, u, v);
    std::set<Binding> distinct;
    EnumeratePathBindings(pmr, EnumerationLimits{},
                          [&distinct](const PathBinding& pb) {
                            distinct.insert(pb.mu);
                            return true;
                          });
    bindings = distinct.size();
  }
  state.counters["distinct_z_lists"] = static_cast<double>(bindings);
  state.counters["expected_2^n"] = static_cast<double>(uint64_t{1} << n);
}
BENCHMARK(BM_ListVarBlowup_DistinctBindings)->DenseRange(2, 14, 2);

void BM_ListVarBlowup_CountRuns(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = Chain(2 * n);
  Nfa nfa = BlowupNfa(g);
  NodeId u = *g.FindNode("u1");
  NodeId v = *g.FindNode("u" + std::to_string(2 * n + 1));
  std::string count;
  for (auto _ : state) {
    Pmr pmr = BuildPmrBetween(g, nfa, u, v);
    count = CountPmrWalks(pmr)->ToString();
  }
  state.SetLabel("runs = " + count);
}
BENCHMARK(BM_ListVarBlowup_CountRuns)->DenseRange(8, 64, 8);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    printf("E4: (a a^z | a^z a)* on the 2n-edge path — distinct z-lists.\n");
    printf("%4s %20s %20s\n", "n", "distinct z-lists", "paper (2^n)");
    for (size_t n = 2; n <= 12; n += 2) {
      EdgeLabeledGraph g = Chain(2 * n);
      Nfa nfa = Nfa::FromRegex(
          *ParseRegex("(a a^z | a^z a)*", RegexDialect::kPlain).ValueOrDie(),
          g);
      Pmr pmr = BuildPmrBetween(
          g, nfa, *g.FindNode("u1"),
          *g.FindNode("u" + std::to_string(2 * n + 1)));
      std::set<Binding> distinct;
      EnumeratePathBindings(pmr, EnumerationLimits{},
                            [&distinct](const PathBinding& pb) {
                              distinct.insert(pb.mu);
                              return true;
                            });
      printf("%4zu %20zu %20llu\n", n, distinct.size(),
             static_cast<unsigned long long>(uint64_t{1} << n));
    }
    printf("\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
