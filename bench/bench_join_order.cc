// Conjunct join-order benchmarks: planner (statistics-driven, smallest-
// first) vs textual order on the two CRPQ families of DESIGN.md's planner
// section.
//
//  * Star joins where the textual order is pessimal — two high-fanout
//    atoms listed before a rare one, so textual evaluation materializes a
//    centers·fanout² intermediate while the planner starts from the rare
//    atom and keeps every intermediate proportional to the answer.
//  * Chains on label-balanced random graphs, where textual order is
//    already reasonable — the planner must not regress it.
//
// Both variants run through `EvalCrpq` with precompiled atom automata, so
// the measured delta is purely the join order (atom evaluation and the
// Glushkov construction are outside the loop).
//
// `--smoke` (consumed before benchmark flags) shrinks every size so the CI
// Release job can execute each benchmark once as a correctness/latency
// smoke check. Full runs emit BENCH_join_order.json via
// --benchmark_format=json.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/planner/cost_model.h"
#include "src/planner/planner.h"
#include "src/planner/stats.h"

namespace gqzoo {
namespace {

/// The pessimal star family (see tests/planner_test.cc): `centers` hubs
/// fan out over `fanout` targets via big1/big2; only `rare_centers` hubs
/// carry a rare edge. Textual `big1, big2, rare` joins the two big atoms
/// first.
EdgeLabeledGraph StarJoinGraph(size_t centers, size_t fanout,
                               size_t rare_centers) {
  EdgeLabeledGraph g;
  std::vector<NodeId> hubs, t1, t2;
  for (size_t i = 0; i < centers; ++i) {
    hubs.push_back(g.AddNode("c" + std::to_string(i)));
  }
  for (size_t j = 0; j < fanout; ++j) {
    t1.push_back(g.AddNode("s" + std::to_string(j)));
    t2.push_back(g.AddNode("t" + std::to_string(j)));
  }
  for (size_t i = 0; i < centers; ++i) {
    for (size_t j = 0; j < fanout; ++j) {
      g.AddEdge(hubs[i], t1[j], "big1");
      g.AddEdge(hubs[i], t2[j], "big2");
    }
  }
  for (size_t i = 0; i < rare_centers; ++i) {
    NodeId w = g.AddNode("r" + std::to_string(i));
    g.AddEdge(hubs[i], w, "rare");
  }
  return g;
}

/// Shared fixture: a parsed query with precompiled automata and the
/// planner's order, evaluated with or without that order.
struct Workload {
  EdgeLabeledGraph g;
  GraphSnapshot snapshot;
  Crpq query;
  std::vector<Nfa> nfas;
  std::vector<size_t> order;

  Workload(EdgeLabeledGraph graph, const std::string& text)
      : g(std::move(graph)), snapshot(g), query(ParseCrpq(text).value()) {
    SnapshotStats stats(snapshot);
    std::vector<Conjunct> conjuncts;
    for (const CrpqAtom& atom : query.atoms) {
      nfas.push_back(Nfa::FromRegex(*atom.regex, g));
      Conjunct c;
      if (!atom.from.is_constant) c.vars.push_back(atom.from.name);
      if (!atom.to.is_constant) c.vars.push_back(atom.to.name);
      c.est_rows = EstimateCrpqAtom(stats, nfas.back(),
                                    atom.regex->Nullable(), atom)
                       .rows;
      conjuncts.push_back(std::move(c));
    }
    order = GreedyJoinOrder(conjuncts);
  }

  size_t Run(bool planned) const {
    CrpqEvalOptions options;
    options.snapshot = &snapshot;
    options.atom_nfas = &nfas;
    if (planned) options.join_order = &order;
    return EvalCrpq(g, query, options).value().rows.size();
  }
};

constexpr const char* kStarQuery =
    "q(x) := big1(x, y), big2(x, z), rare(x, w)";

void BM_Star_Textual(benchmark::State& state) {
  Workload w(StarJoinGraph(static_cast<size_t>(state.range(0)),
                           static_cast<size_t>(state.range(1)),
                           /*rare_centers=*/4),
             kStarQuery);
  size_t answers = 0;
  for (auto _ : state) {
    answers = w.Run(/*planned=*/false);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_Star_Planned(benchmark::State& state) {
  Workload w(StarJoinGraph(static_cast<size_t>(state.range(0)),
                           static_cast<size_t>(state.range(1)),
                           /*rare_centers=*/4),
             kStarQuery);
  size_t answers = 0;
  for (auto _ : state) {
    answers = w.Run(/*planned=*/true);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

// Chain family: a 3-atom chain over a label-balanced random graph. The
// textual order is already connected and near-optimal; planner and textual
// should be within noise of each other.
constexpr const char* kChainQuery = "q(x, w) := a(x, y), b(y, z), c(z, w)";

void BM_Chain_Textual(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Workload w(RandomGraph(n, 8 * n, 3, /*seed=*/17), kChainQuery);
  size_t answers = 0;
  for (auto _ : state) {
    answers = w.Run(/*planned=*/false);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_Chain_Planned(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Workload w(RandomGraph(n, 8 * n, 3, /*seed=*/17), kChainQuery);
  size_t answers = 0;
  for (auto _ : state) {
    answers = w.Run(/*planned=*/true);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void Register(bool smoke) {
  using benchmark::RegisterBenchmark;
  // {centers, fanout}: textual builds centers·fanout² join tuples, planner
  // rare_centers·fanout².
  const std::vector<std::vector<int64_t>> star_sizes =
      smoke ? std::vector<std::vector<int64_t>>{{40, 10}}
            : std::vector<std::vector<int64_t>>{{100, 20}, {200, 40}};
  for (const auto& args : star_sizes) {
    RegisterBenchmark("BM_Star_Textual", BM_Star_Textual)->Args(args);
    RegisterBenchmark("BM_Star_Planned", BM_Star_Planned)->Args(args);
  }
  const int64_t chain_n = smoke ? 64 : 256;
  RegisterBenchmark("BM_Chain_Textual", BM_Chain_Textual)->Arg(chain_n);
  RegisterBenchmark("BM_Chain_Planned", BM_Chain_Planned)->Arg(chain_n);
}

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  // Smoke mode: tiny sizes plus a minimal repetition budget — one pass
  // that proves every benchmark still runs, not a measurement.
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time.data());
  int filtered_argc = static_cast<int>(args.size());
  gqzoo::Register(smoke);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
