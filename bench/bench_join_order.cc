// Conjunct join-order benchmarks: planner (statistics-driven, smallest-
// first) vs textual order on the two CRPQ families of DESIGN.md's planner
// section.
//
//  * Star joins where the textual order is pessimal — two high-fanout
//    atoms listed before a rare one, so textual evaluation materializes a
//    centers·fanout² intermediate while the planner starts from the rare
//    atom and keeps every intermediate proportional to the answer.
//  * Chains on label-balanced random graphs, where textual order is
//    already reasonable — the planner must not regress it.
//  * Cyclic cores (triangle, 4-clique, star-with-chord) on the hub family
//    below, where *every* binary join order materializes a Θ(k²)
//    intermediate while only Θ(k) bindings close the cycle — the regime
//    the worst-case-optimal join exists for. These cells compare the best
//    binary plan (the planner's order) against the planner-selected wcoj
//    group at two densities.
//
// Both variants run through `EvalCrpq` with precompiled atom automata, so
// the measured delta is purely the join order (atom evaluation and the
// Glushkov construction are outside the loop).
//
// `--smoke` (consumed before benchmark flags) shrinks every size so the CI
// Release job can execute each benchmark once as a correctness/latency
// smoke check. Full runs emit BENCH_join_order.json via
// --benchmark_format=json.

#include <benchmark/benchmark.h>

#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/crpq/crpq_parser.h"
#include "src/crpq/eval.h"
#include "src/engine/plan.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/planner/cost_model.h"
#include "src/planner/planner.h"
#include "src/planner/stats.h"
#include "src/rel/wcoj.h"

namespace gqzoo {
namespace {

/// The pessimal star family (see tests/planner_test.cc): `centers` hubs
/// fan out over `fanout` targets via big1/big2; only `rare_centers` hubs
/// carry a rare edge. Textual `big1, big2, rare` joins the two big atoms
/// first.
EdgeLabeledGraph StarJoinGraph(size_t centers, size_t fanout,
                               size_t rare_centers) {
  EdgeLabeledGraph g;
  std::vector<NodeId> hubs, t1, t2;
  for (size_t i = 0; i < centers; ++i) {
    hubs.push_back(g.AddNode("c" + std::to_string(i)));
  }
  for (size_t j = 0; j < fanout; ++j) {
    t1.push_back(g.AddNode("s" + std::to_string(j)));
    t2.push_back(g.AddNode("t" + std::to_string(j)));
  }
  for (size_t i = 0; i < centers; ++i) {
    for (size_t j = 0; j < fanout; ++j) {
      g.AddEdge(hubs[i], t1[j], "big1");
      g.AddEdge(hubs[i], t2[j], "big2");
    }
  }
  for (size_t i = 0; i < rare_centers; ++i) {
    NodeId w = g.AddNode("r" + std::to_string(i));
    g.AddEdge(hubs[i], w, "rare");
  }
  return g;
}

/// Property-graph wrapper for CompilePlan. Everything downstream (NFAs,
/// snapshot, stats, the baked wcoj label ids) must resolve labels against
/// one skeleton, exactly as the engine does — the wrapper's skeleton is
/// that one graph (its node label "N" interns ahead of the edge labels).
PropertyGraph ToPropertyGraph(const EdgeLabeledGraph& g) {
  PropertyGraph pg;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    pg.AddNode(std::string(g.NodeName(v)), "N");
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    pg.AddEdge(g.Src(e), g.Tgt(e), std::string(g.LabelName(g.EdgeLabel(e))));
  }
  return pg;
}

/// Shared fixture: a parsed query with precompiled automata and the
/// planner's order, evaluated with or without that order. When the query
/// has a cyclic core, `wcoj` carries the planner-selected group compiled
/// exactly as the engine compiles it (label ids baked from the stats).
struct Workload {
  PropertyGraph pg;
  GraphSnapshot snapshot;
  Crpq query;
  std::vector<Nfa> nfas;
  std::vector<size_t> order;
  std::optional<rel::WcojSpec> wcoj;

  const EdgeLabeledGraph& g() const { return pg.skeleton(); }

  Workload(EdgeLabeledGraph graph, const std::string& text)
      : pg(ToPropertyGraph(graph)),
        snapshot(pg.skeleton()),
        query(ParseCrpq(text).value()) {
    SnapshotStats stats(snapshot);
    std::vector<Conjunct> conjuncts;
    for (const CrpqAtom& atom : query.atoms) {
      nfas.push_back(Nfa::FromRegex(*atom.regex, g()));
      Conjunct c;
      if (!atom.from.is_constant) c.vars.push_back(atom.from.name);
      if (!atom.to.is_constant) c.vars.push_back(atom.to.name);
      c.est_rows = EstimateCrpqAtom(stats, nfas.back(),
                                    atom.regex->Nullable(), atom)
                       .rows;
      conjuncts.push_back(std::move(c));
    }
    order = GreedyJoinOrder(conjuncts);

    Result<PlanPtr> plan =
        CompilePlan(QueryLanguage::kCrpq, text, pg, 0, {}, &stats);
    if (plan.ok()) {
      wcoj = std::get<CrpqPlan>(plan.value()->compiled).wcoj;
    }
  }

  size_t Run(bool planned, bool use_wcoj = false) const {
    CrpqEvalOptions options;
    options.snapshot = &snapshot;
    options.atom_nfas = &nfas;
    if (planned) options.join_order = &order;
    if (use_wcoj) options.wcoj = &*wcoj;
    return EvalCrpq(g(), query, options).value().rows.size();
  }
};

constexpr const char* kStarQuery =
    "q(x) := big1(x, y), big2(x, z), rare(x, w)";

void BM_Star_Textual(benchmark::State& state) {
  Workload w(StarJoinGraph(static_cast<size_t>(state.range(0)),
                           static_cast<size_t>(state.range(1)),
                           /*rare_centers=*/4),
             kStarQuery);
  size_t answers = 0;
  for (auto _ : state) {
    answers = w.Run(/*planned=*/false);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_Star_Planned(benchmark::State& state) {
  Workload w(StarJoinGraph(static_cast<size_t>(state.range(0)),
                           static_cast<size_t>(state.range(1)),
                           /*rare_centers=*/4),
             kStarQuery);
  size_t answers = 0;
  for (auto _ : state) {
    answers = w.Run(/*planned=*/true);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

// Chain family: a 3-atom chain over a label-balanced random graph. The
// textual order is already connected and near-optimal; planner and textual
// should be within noise of each other.
constexpr const char* kChainQuery = "q(x, w) := a(x, y), b(y, z), c(z, w)";

void BM_Chain_Textual(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Workload w(RandomGraph(n, 8 * n, 3, /*seed=*/17), kChainQuery);
  size_t answers = 0;
  for (auto _ : state) {
    answers = w.Run(/*planned=*/false);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_Chain_Planned(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Workload w(RandomGraph(n, 8 * n, 3, /*seed=*/17), kChainQuery);
  size_t answers = 0;
  for (auto _ : state) {
    answers = w.Run(/*planned=*/true);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

// --------------------------------------------------------------------------
// Cyclic cores: binary plan vs worst-case-optimal join.
// --------------------------------------------------------------------------

/// The hub family, a worst-case instance for binary join plans on cyclic
/// patterns. Per query variable v: `k` spoke nodes v_0..v_{k-1} plus one
/// hub h_v. Each atom (u, v, label) contributes three edge groups:
///   u_i -> h_v  (all i)      spokes into the target's hub
///   h_u -> v_j  (all j)      the source's hub onto every spoke
///   h_u -> h_v               hub-to-hub, closing the cycles
/// Any pairwise join routes through a hub and yields Θ(k²) tuples
/// (u_i -> h_mid -> w_j for all i, j), but only the Θ(k) bindings that
/// place every remaining variable on its hub close the full cycle. No
/// binary order avoids the quadratic intermediate; the wcoj intersection
/// discovers the hub collapse one variable at a time and stays near-linear.
EdgeLabeledGraph HubCoreGraph(
    size_t k, size_t num_vars,
    const std::vector<std::pair<size_t, size_t>>& atoms,
    const std::vector<std::string>& labels) {
  EdgeLabeledGraph g;
  std::vector<std::vector<NodeId>> spokes(num_vars);
  std::vector<NodeId> hub(num_vars);
  for (size_t v = 0; v < num_vars; ++v) {
    for (size_t i = 0; i < k; ++i) {
      spokes[v].push_back(
          g.AddNode("v" + std::to_string(v) + "_" + std::to_string(i)));
    }
    hub[v] = g.AddNode("h" + std::to_string(v));
  }
  for (size_t a = 0; a < atoms.size(); ++a) {
    const auto& [u, v] = atoms[a];
    const std::string& label = labels[a];
    for (NodeId s : spokes[u]) g.AddEdge(s, hub[v], label);
    for (NodeId t : spokes[v]) g.AddEdge(hub[u], t, label);
    g.AddEdge(hub[u], hub[v], label);
  }
  return g;
}

constexpr const char* kTriangleQuery =
    "q(x, y, z) := a(x, y), b(y, z), c(x, z)";
constexpr const char* kFourCliqueQuery =
    "q(x, y, z, w) := a(x, y), b(x, z), c(x, w), d(y, z), e(y, w), f(z, w)";
// Star out of x with the d-chord closing the {x, y, z} triangle; w stays a
// pendant, so the binary join still runs for it after the wcoj group.
constexpr const char* kStarChordQuery =
    "q(x, y, z, w) := a(x, y), b(x, z), c(x, w), d(y, z)";

Workload TriangleWorkload(size_t k) {
  return Workload(
      HubCoreGraph(k, 3, {{0, 1}, {1, 2}, {0, 2}}, {"a", "b", "c"}),
      kTriangleQuery);
}

Workload FourCliqueWorkload(size_t k) {
  return Workload(
      HubCoreGraph(k, 4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}},
                   {"a", "b", "c", "d", "e", "f"}),
      kFourCliqueQuery);
}

Workload StarChordWorkload(size_t k) {
  return Workload(
      HubCoreGraph(k, 4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}},
                   {"a", "b", "c", "d"}),
      kStarChordQuery);
}

/// Shared body for the cyclic cells: `make` builds the workload at the
/// density in range(0); the wcoj arm asserts the planner actually selected
/// a group (a silent fallback to the binary path would fake the ratio).
template <Workload (*make)(size_t)>
void BM_Cyclic_Binary(benchmark::State& state) {
  Workload w(make(static_cast<size_t>(state.range(0))));
  size_t answers = 0;
  for (auto _ : state) {
    answers = w.Run(/*planned=*/true);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

template <Workload (*make)(size_t)>
void BM_Cyclic_Wcoj(benchmark::State& state) {
  Workload w(make(static_cast<size_t>(state.range(0))));
  if (!w.wcoj.has_value()) {
    state.SkipWithError("planner selected no wcoj group");
    return;
  }
  size_t answers = 0;
  for (auto _ : state) {
    answers = w.Run(/*planned=*/true, /*use_wcoj=*/true);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void Register(bool smoke) {
  using benchmark::RegisterBenchmark;
  // {centers, fanout}: textual builds centers·fanout² join tuples, planner
  // rare_centers·fanout².
  const std::vector<std::vector<int64_t>> star_sizes =
      smoke ? std::vector<std::vector<int64_t>>{{40, 10}}
            : std::vector<std::vector<int64_t>>{{100, 20}, {200, 40}};
  for (const auto& args : star_sizes) {
    RegisterBenchmark("BM_Star_Textual", BM_Star_Textual)->Args(args);
    RegisterBenchmark("BM_Star_Planned", BM_Star_Planned)->Args(args);
  }
  const int64_t chain_n = smoke ? 64 : 256;
  RegisterBenchmark("BM_Chain_Textual", BM_Chain_Textual)->Arg(chain_n);
  RegisterBenchmark("BM_Chain_Planned", BM_Chain_Planned)->Arg(chain_n);
  // {k}: hub-family density — every pairwise join is Θ(k²), answers Θ(k).
  const std::vector<int64_t> cyclic_sizes =
      smoke ? std::vector<int64_t>{12} : std::vector<int64_t>{64, 192};
  for (int64_t k : cyclic_sizes) {
    RegisterBenchmark("BM_Triangle_Binary",
                      BM_Cyclic_Binary<TriangleWorkload>)->Arg(k);
    RegisterBenchmark("BM_Triangle_Wcoj",
                      BM_Cyclic_Wcoj<TriangleWorkload>)->Arg(k);
    RegisterBenchmark("BM_FourClique_Binary",
                      BM_Cyclic_Binary<FourCliqueWorkload>)->Arg(k);
    RegisterBenchmark("BM_FourClique_Wcoj",
                      BM_Cyclic_Wcoj<FourCliqueWorkload>)->Arg(k);
    RegisterBenchmark("BM_StarChord_Binary",
                      BM_Cyclic_Binary<StarChordWorkload>)->Arg(k);
    RegisterBenchmark("BM_StarChord_Wcoj",
                      BM_Cyclic_Wcoj<StarChordWorkload>)->Arg(k);
  }
}

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  // Smoke mode: tiny sizes plus a minimal repetition budget — one pass
  // that proves every benchmark still runs, not a measurement.
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time.data());
  int filtered_argc = static_cast<int>(args.size());
  gqzoo::Register(smoke);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
