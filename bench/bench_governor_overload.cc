// Admission control under overload: a burst of 4× the admission capacity
// in mixed-language submissions, drained through the pool, with shedding
// on (capacity = 32) vs off (unbounded queue). Shedding bounds the queue:
// the shed fraction comes back as instant kOverloaded errors instead of
// sitting in line, so burst drain time stays flat as offered load grows.
// The thread sweep (1/4/8) shows how much of the drain is execution vs
// queueing. Every query carries a small deadline and a memory budget, so
// the bench also exercises the governed (context-polling) hot paths rather
// than the ungoverned fast path.

#include <benchmark/benchmark.h>

#include <future>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/graph/builtin_graphs.h"

namespace gqzoo {
namespace {

QueryRequest Req(QueryLanguage language, const std::string& text) {
  QueryRequest request;
  request.language = language;
  request.text = text;
  request.timeout = std::chrono::milliseconds(100);
  request.memory_budget = 16ull << 20;
  return request;
}

std::vector<QueryRequest> MixedWorkload() {
  std::vector<QueryRequest> mix = {
      Req(QueryLanguage::kRpq, "Transfer+"),
      Req(QueryLanguage::kRpq, "~Transfer"),
      Req(QueryLanguage::kCrpq, "q(x, y) :- Transfer+(x, y)"),
      Req(QueryLanguage::kDlCrpq, "q(x, y) := ( ()[Transfer] )+ () (x, y)"),
      Req(QueryLanguage::kCoreGql, "MATCH (x)-[:Transfer]->(y) RETURN x, y"),
      Req(QueryLanguage::kGqlGroup, "(x) (-[t:Transfer]->(v)){1,2} (y)"),
  };
  QueryRequest paths = Req(QueryLanguage::kPaths, "Transfer+");
  paths.paths.from = "a2";
  paths.paths.to = "a4";
  mix.push_back(paths);
  return mix;
}

/// One iteration = a burst of `4 * capacity` submissions drained to
/// completion. state.range(0) = pool threads; state.range(1) = 1 enables
/// shedding at capacity 32, 0 disables admission control entirely.
void BM_GovernorOverloadBurst(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const bool shedding = state.range(1) != 0;
  constexpr size_t kCapacity = 32;
  constexpr size_t kBurst = 4 * kCapacity;

  QueryEngine::Options options;
  options.num_threads = threads;
  options.governor.admission_capacity = shedding ? kCapacity : 0;
  QueryEngine engine(Figure3Graph(), options);
  std::vector<QueryRequest> mix = MixedWorkload();

  // Warm the plan cache so the burst measures admission + execution, not
  // first-compile latency.
  for (const QueryRequest& request : mix) {
    benchmark::DoNotOptimize(engine.Execute(request));
  }

  size_t completed = 0, shed = 0;
  for (auto _ : state) {
    std::vector<std::future<Result<QueryResponse>>> futures;
    futures.reserve(kBurst);
    for (size_t i = 0; i < kBurst; ++i) {
      futures.push_back(engine.Submit(mix[i % mix.size()]));
    }
    for (auto& f : futures) {
      Result<QueryResponse> r = f.get();
      if (!r.ok() && r.error().code() == ErrorCode::kOverloaded) {
        ++shed;
      } else {
        ++completed;
      }
    }
  }
  state.counters["burst"] = static_cast<double>(kBurst);
  state.counters["completed_per_burst"] = benchmark::Counter(
      static_cast<double>(completed) / state.iterations());
  state.counters["shed_per_burst"] = benchmark::Counter(
      static_cast<double>(shed) / state.iterations());
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(completed), benchmark::Counter::kIsRate);
  state.counters["queue_high_water"] = static_cast<double>(
      engine.metrics().queue_depth_high_water.value());
}

BENCHMARK(BM_GovernorOverloadBurst)
    ->ArgsProduct({{1, 4, 8}, {0, 1}})
    ->ArgNames({"threads", "shedding"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace gqzoo

BENCHMARK_MAIN();
