// E13 (Section 6.4, "Path Variables"): output-sensitive evaluation. A PMR
// is built once (polynomial preprocessing) and then results stream with
// output-linear delay — constant-delay is impossible because paths grow.
// We measure (a) preprocessing cost, (b) delay per emitted path at several
// result-set prefixes, and (c) the cost of full materialization.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/graph/generators.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

Pmr BuildBenchPmr(const EdgeLabeledGraph& g) {
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("(a^z)*", RegexDialect::kPlain).ValueOrDie(), g);
  return BuildPmrBetween(g, nfa, *g.FindNode("s"), *g.FindNode("t"));
}

void BM_Preprocess_BuildAndTrim(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  for (auto _ : state) {
    Pmr pmr = BuildBenchPmr(g);
    benchmark::DoNotOptimize(pmr);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Preprocess_BuildAndTrim)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

void BM_EnumerateFirstK(benchmark::State& state) {
  const size_t n = 64;
  const size_t k = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  Pmr pmr = BuildBenchPmr(g);
  EnumerationLimits limits;
  limits.max_results = k;
  size_t emitted = 0;
  for (auto _ : state) {
    emitted = 0;
    EnumeratePathBindings(pmr, limits, [&emitted](const PathBinding&) {
      ++emitted;
      return true;
    });
  }
  state.counters["emitted"] = static_cast<double>(emitted);
  // time / emitted ≈ delay; with output-linear delay this stays ~constant
  // per path for fixed path length.
  state.counters["per_path_ns"] = benchmark::Counter(
      static_cast<double>(emitted),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_EnumerateFirstK)->RangeMultiplier(4)->Range(16, 16384);

void BM_FullMaterialization(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  Pmr pmr = BuildBenchPmr(g);
  size_t total = 0;
  for (auto _ : state) {
    std::vector<PathBinding> all =
        CollectPathBindings(pmr, EnumerationLimits{});
    total = all.size();
    benchmark::DoNotOptimize(all);
  }
  state.counters["paths"] = static_cast<double>(total);
}
BENCHMARK(BM_FullMaterialization)->DenseRange(4, 16, 4);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  printf("E13: PMR-backed enumeration — polynomial preprocessing, "
         "output-linear delay, vs full materialization (Section 6.4).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
