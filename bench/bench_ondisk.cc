// Instant restart and out-of-core serving: what the memory-mappable
// snapshot format buys at startup and under memory pressure.
//
// BM_RestartTTFQ measures time-to-first-query over a durable directory
// holding a ~1M-edge checkpoint (clean WAL, nothing to replay):
//   mode=mmap_cold   page cache dropped (posix_fadvise DONTNEED) before
//                    every open — a true cold restart. Startup pays the
//                    checksum verification pass and demand paging, never
//                    an O(|E|) rebuild.
//   mode=mmap_warm   same, cache warm — the steady-state restart.
//   mode=rebuild     map_checkpoints=false: the pre-format behavior
//                    (read + decode the checkpoint, rebuild the CSR).
// The acceptance bar is mmap_cold >= 5x faster than rebuild at the 1M
// edge point, recorded in BENCH_ondisk.json.
//
// BM_PagedColdQueries demonstrates larger-than-RSS serving: each
// iteration forks a child that caps its heap (setrlimit RLIMIT_DATA —
// file-backed mappings are exempt, heap is not) well below what the
// materialized graph needs, drops the page cache, opens the snapshot
// mapped and answers scattered adjacency queries; the pages stream in on
// demand. A companion probe confirms the rebuild path cannot run under
// the same cap (the decode allocates past it), pinning that mmap paging
// — not a smaller graph — is what makes the queries possible.
//
// `--smoke` (consumed before benchmark flags) shrinks the graph for the
// CI bit-rot check and skips the capped-RSS OOM probe (a small graph
// rebuilds fine under the cap). Full runs emit BENCH_ondisk.json via
// --benchmark_format=json plus hand-reduced summary numbers.

#include <benchmark/benchmark.h>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/graph/csr.h"
#include "src/storage/snapshot_format.h"
#include "src/storage/wal.h"

namespace gqzoo {
namespace {

int64_t g_edges = 1000000;
bool g_smoke = false;

constexpr uint64_t kRssCapBytes = 64ull << 20;

std::string FreshDir() {
  char tmpl[] = "/tmp/gqzoo_bench_ondisk.XXXXXX";
  char* dir = mkdtemp(tmpl);
  return dir == nullptr ? std::string() : std::string(dir);
}

uint64_t Lcg(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 33;
}

/// A scale-free-ish random graph: num_edges edges over num_edges/10 nodes
/// and 8 labels, biased toward low node ids so some adjacency lists are
/// long (scattered paging hits both hot and cold regions).
PropertyGraph BuildGraph(int64_t num_edges) {
  PropertyGraph g;
  const int64_t num_nodes = std::max<int64_t>(num_edges / 10, 16);
  for (int64_t i = 0; i < num_nodes; ++i) {
    g.AddNode("n" + std::to_string(i), "N");
  }
  uint64_t state = 0x2545f4914f6cdd1dull;
  for (int64_t i = 0; i < num_edges; ++i) {
    NodeId src = static_cast<NodeId>(
        Lcg(&state) % (Lcg(&state) % 4 == 0 ? num_nodes / 16 + 1 : num_nodes));
    NodeId tgt = static_cast<NodeId>(Lcg(&state) % num_nodes);
    g.AddEdge(src, tgt, "L" + std::to_string(Lcg(&state) % 8));
  }
  return g;
}

QueryEngine::Options BaseOptions() {
  QueryEngine::Options options;
  options.num_threads = 2;
  options.mutation.background_compaction = false;
  options.mutation.compact_min_ops = size_t{1} << 30;
  options.mutation.compact_ratio = 1e9;
  return options;
}

/// Builds (once) a clean durable directory whose checkpoint-0 holds the
/// benchmark graph — exactly what a clean shutdown leaves behind.
const std::string& TemplateDir() {
  static std::string dir = [] {
    std::string d = FreshDir();
    if (d.empty()) return d;
    QueryEngine::Options options = BaseOptions();
    options.durability.dir = d;
    auto opened =
        QueryEngine::RecoverFrom(BuildGraph(g_edges), std::move(options));
    if (!opened.ok()) return std::string();
    opened.value().reset();
    return d;
  }();
  return dir;
}

void DropPageCache(const std::string& path) {
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  fdatasync(fd);
  posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  close(fd);
}

/// The "first query": scattered label-constrained adjacency over random
/// nodes, touching hop arrays, run indexes and the by-label edge list.
uint64_t FirstQuery(const GraphSnapshot& s) {
  uint64_t sum = 0;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 256; ++i) {
    NodeId v = static_cast<NodeId>(Lcg(&state) % s.NumNodes());
    for (const GraphSnapshot::Hop& h : s.Out(v)) sum += h.node;
    for (const GraphSnapshot::Hop& h :
         s.In(v, static_cast<LabelId>(1 + Lcg(&state) % 8))) {
      sum += h.edge;
    }
  }
  sum += s.EdgesWithLabel(1).size();
  return sum;
}

// mode: 0 mmap_cold, 1 mmap_warm, 2 rebuild.
void BM_RestartTTFQ(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const std::string& dir = TemplateDir();
  if (dir.empty()) {
    state.SkipWithError("template directory setup failed");
    return;
  }
  const std::string ckpt = dir + "/checkpoint-0";
  bool mapped = false;
  for (auto _ : state) {
    if (mode == 0) DropPageCache(ckpt);
    QueryEngine::Options options = BaseOptions();
    options.durability.dir = dir;
    options.durability.map_checkpoints = mode != 2;
    const auto start = std::chrono::steady_clock::now();
    auto opened = QueryEngine::RecoverFrom(PropertyGraph(), std::move(options));
    if (!opened.ok()) {
      state.SkipWithError(opened.error().message().c_str());
      return;
    }
    uint64_t sum = FirstQuery(*opened.value()->csr_snapshot());
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sum);
    mapped = opened.value()->recovery_info().mapped;
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    opened.value().reset();
  }
  if ((mode != 2) != mapped) {
    state.SkipWithError("recovery path did not match the requested mode");
    return;
  }
  state.counters["file_mb"] =
      static_cast<double>(std::filesystem::file_size(ckpt)) / (1 << 20);
  state.counters["mapped"] = mapped ? 1 : 0;
}

/// Runs `fn` in a forked child with RLIMIT_DATA capped; returns the
/// child's elapsed seconds, or a negative exit status on failure.
template <typename Fn>
double InCappedChild(uint64_t cap_bytes, Fn&& fn) {
  int pipefd[2];
  if (pipe(pipefd) != 0) return -1000.0;
  pid_t pid = fork();
  if (pid < 0) {
    close(pipefd[0]);
    close(pipefd[1]);
    return -1000.0;
  }
  if (pid == 0) {
    close(pipefd[0]);
    rlimit lim{cap_bytes, cap_bytes};
    setrlimit(RLIMIT_DATA, &lim);
    double elapsed = -1.0;
    try {
      const auto start = std::chrono::steady_clock::now();
      if (!fn()) _exit(1);
      elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
    } catch (...) {
      _exit(2);  // allocation past the cap
    }
    ssize_t wrote = write(pipefd[1], &elapsed, sizeof(elapsed));
    _exit(wrote == sizeof(elapsed) ? 0 : 1);
  }
  close(pipefd[1]);
  double elapsed = -1.0;
  ssize_t got = read(pipefd[0], &elapsed, sizeof(elapsed));
  close(pipefd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  int code = WIFEXITED(status) ? WEXITSTATUS(status) : 100 + WTERMSIG(status);
  if (code != 0 || got != sizeof(elapsed)) return -static_cast<double>(code);
  return elapsed;
}

void BM_PagedColdQueries(benchmark::State& state) {
  const std::string& dir = TemplateDir();
  if (dir.empty()) {
    state.SkipWithError("template directory setup failed");
    return;
  }
  const std::string ckpt = dir + "/checkpoint-0";
  for (auto _ : state) {
    DropPageCache(ckpt);
    double elapsed = InCappedChild(kRssCapBytes, [&ckpt] {
      Result<storage::SnapshotFile> file =
          storage::SnapshotFile::OpenMapped(ckpt);
      if (!file.ok()) return false;
      Result<storage::MappedGraph> m =
          storage::SnapshotCodec::Open(std::move(file).value());
      if (!m.ok()) return false;
      benchmark::DoNotOptimize(FirstQuery(*m.value().snapshot));
      return true;
    });
    if (elapsed < 0) {
      state.SkipWithError("capped child failed — paging under the RSS cap "
                          "should succeed");
      return;
    }
    state.SetIterationTime(elapsed);
  }
  state.counters["file_mb"] =
      static_cast<double>(std::filesystem::file_size(ckpt)) / (1 << 20);
  state.counters["rss_cap_mb"] = static_cast<double>(kRssCapBytes) / (1 << 20);
  // The control: decoding the same checkpoint into a plain graph must
  // exceed the cap (exit 2 = allocation failure). Skipped in smoke runs —
  // a small graph genuinely fits.
  if (!g_smoke) {
    double rebuild = InCappedChild(kRssCapBytes, [&ckpt] {
      Result<std::string> bytes = storage::ReadFileBytes(ckpt);
      if (!bytes.ok()) return false;
      Result<storage::SnapshotCodec::DecodedSnapshot> plain =
          storage::SnapshotCodec::DecodeToPlain(bytes.value());
      if (!plain.ok()) return false;
      benchmark::DoNotOptimize(plain.value().graph.NumEdges());
      return true;
    });
    state.counters["rebuild_oom_under_cap"] = rebuild < 0 ? 1 : 0;
  }
}

void Register(bool smoke) {
  g_smoke = smoke;
  if (smoke) g_edges = 50000;
  benchmark::RegisterBenchmark("BM_RestartTTFQ", BM_RestartTTFQ)
      ->ArgsProduct({{0, 1, 2}})
      ->ArgNames({"mode"})
      ->Unit(benchmark::kMillisecond)
      ->UseManualTime();
  benchmark::RegisterBenchmark("BM_PagedColdQueries", BM_PagedColdQueries)
      ->Unit(benchmark::kMillisecond)
      ->UseManualTime();
}

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time.data());
  int filtered_argc = static_cast<int>(args.size());
  gqzoo::Register(smoke);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
