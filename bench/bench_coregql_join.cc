// E14 (Section 4.1.3): CoreGQL = pattern matching + relational algebra.
// The pipeline cost of the paper's example query
//   π_{x,x.s}(σ_{x1≠x2 ∧ x1.p=x2.p}(R^{π1} ⋈ R^{π2}))
// on growing random property graphs, plus a reachability-flavored block.

#include <benchmark/benchmark.h>

#include <cstdio>

#include <random>

#include "src/coregql/algebra.h"
#include "src/coregql/optimize.h"
#include "src/coregql/query.h"
#include "src/graph/generators.h"

namespace gqzoo {
namespace {

void BM_PaperJoinQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = RandomPropertyGraph(n, 4 * n, 16, /*seed=*/77);
  size_t answers = 0;
  for (auto _ : state) {
    Result<CoreQueryResult> q = RunCoreGql(
        g, "MATCH (x)->(x1), (x)->(x2) WHERE x1.k = x2.k RETURN x, x1, x2");
    const CoreRelation& rel = q.value().relation;
    size_t i1 = rel.AttrIndex("x1");
    size_t i2 = rel.AttrIndex("x2");
    CoreRelation distinct =
        Select(rel, [&](const std::vector<CoreCell>& row) {
          return !(row[i1] == row[i2]);
        });
    Result<CoreRelation> out = Project(distinct, {"x"});
    answers = out.value().NumRows();
    benchmark::DoNotOptimize(out);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_PaperJoinQuery)
    ->RangeMultiplier(2)
    ->Range(256, 4096)
    ->Complexity();

void BM_ReachabilityBlock(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = RandomPropertyGraph(n, 2 * n, 16, /*seed=*/78);
  size_t answers = 0;
  for (auto _ : state) {
    Result<CoreQueryResult> q =
        RunCoreGql(g, "MATCH (x) ->+ (y) WHERE x.k = 0 RETURN x, y");
    answers = q.value().relation.NumRows();
    benchmark::DoNotOptimize(q);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_ReachabilityBlock)->RangeMultiplier(4)->Range(64, 1024);

void BM_SetOperationPipeline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = RandomPropertyGraph(n, 4 * n, 8, /*seed=*/79);
  size_t answers = 0;
  for (auto _ : state) {
    Result<CoreQueryResult> q = RunCoreGql(
        g,
        "MATCH (x)->(y) RETURN x, y "
        "EXCEPT "
        "MATCH (x)->(y) WHERE x.k = y.k RETURN x, y");
    answers = q.value().relation.NumRows();
    benchmark::DoNotOptimize(q);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_SetOperationPipeline)->RangeMultiplier(4)->Range(64, 4096);

// Ablation (Section 7.1): pushing WHERE conjuncts into the pattern layer.
void PushdownCase(benchmark::State& state, bool optimize) {
  const size_t n = static_cast<size_t>(state.range(0));
  // Label-selective workload: only 1/8 of the nodes carry label "Hot".
  PropertyGraph g;
  std::mt19937_64 rng(4);
  for (size_t i = 0; i < n; ++i) {
    NodeId node = g.AddNode("n" + std::to_string(i),
                            i % 8 == 0 ? "Hot" : "Cold");
    g.SetProperty(ObjectRef::Node(node), "k",
                  Value(static_cast<int64_t>(rng() % 100)));
  }
  std::uniform_int_distribution<size_t> pick(0, n - 1);
  for (size_t e = 0; e < 4 * n; ++e) {
    g.AddEdge(static_cast<NodeId>(pick(rng)),
              static_cast<NodeId>(pick(rng)), "a");
  }
  CoreGqlQuery q = ParseCoreGqlQuery(
                       "MATCH (x)-[e]->(y), (y)-[f]->(w) "
                       "WHERE x:Hot AND w.k < 10 RETURN x, y, w")
                       .ValueOrDie();
  if (optimize) q = PushDownConditions(q);
  size_t answers = 0;
  for (auto _ : state) {
    Result<CoreQueryResult> r = EvalCoreGqlQuery(g, q);
    answers = r.value().relation.NumRows();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_WhereAfterJoin(benchmark::State& state) {
  PushdownCase(state, false);
}
BENCHMARK(BM_WhereAfterJoin)->RangeMultiplier(4)->Range(256, 4096);

void BM_WherePushedDown(benchmark::State& state) {
  PushdownCase(state, true);
}
BENCHMARK(BM_WherePushedDown)->RangeMultiplier(4)->Range(256, 4096);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  printf("E14: CoreGQL pattern-then-algebra pipelines (Section 4.1.3 "
         "example query and friends), plus the Section 7.1 WHERE-pushdown "
         "ablation.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
