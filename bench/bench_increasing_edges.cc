// E7 (Section 5.2 + Example 21): the increasing-edge-values query, three
// ways:
//   (1) dl-RPQ with registers — a single product-space search, made
//       possible by the symmetric node/edge treatment;
//   (2) the GQL workaround: all paths EXCEPT the paths with a violating
//       adjacent edge pair — compositional difference over enumerated path
//       sets, "which might lead to poor performance, which is indeed
//       observed in practice" (the paper's words);
//   (3) the Cypher list workaround via reduce.
// Workload: chains with increasing edge values plus a few dips.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/coregql/query.h"
#include "src/datatest/dl_eval.h"
#include "src/graph/generators.h"
#include "src/lists/list_functions.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

constexpr const char* kDlIncreasing =
    "()[a][x := k]( (_)[a][k > x][x := k] )*()";

size_t DlAnswerCount(const PropertyGraph& g) {
  DlNfa nfa = DlNfa::FromRegex(
      *ParseRegex(kDlIncreasing, RegexDialect::kDl).ValueOrDie(), g);
  DlEvaluator evaluator(g, nfa);
  return evaluator.AllPairs().size();
}

size_t ExceptAnswerCount(const PropertyGraph& g, size_t max_len,
                         bool* truncated) {
  CoreQueryEvalOptions options;
  options.path_options.max_path_length = max_len;
  // Bound the memory of the compositional evaluation; larger instances
  // truncate (and report it), which is itself the E7 story.
  options.path_options.max_results = 50000;
  Result<CoreQueryResult> r = RunCoreGql(
      g,
      "MATCH p = (s) ->+ (t) RETURN p "
      "EXCEPT "
      "MATCH p = (s) ->* ( ( ()-[u]->()-[v]->() ) WHERE u.k >= v.k ) ->* (t) "
      "RETURN p",
      options);
  if (!r.ok()) return 0;
  *truncated = *truncated || r.value().truncated;
  return r.value().relation.NumRows();
}

void BM_DlRegisterSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = IncreasingEdgeChain(n, n / 8, /*seed=*/3);
  size_t answers = 0;
  for (auto _ : state) {
    answers = DlAnswerCount(g);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answer_pairs"] = static_cast<double>(answers);
}
BENCHMARK(BM_DlRegisterSearch)->RangeMultiplier(2)->Range(8, 256);

void BM_ExceptComplement(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = IncreasingEdgeChain(n, n / 8, /*seed=*/3);
  size_t answers = 0;
  bool truncated = false;
  for (auto _ : state) {
    answers = ExceptAnswerCount(g, n + 1, &truncated);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answer_paths"] = static_cast<double>(answers);
  state.counters["truncated"] = truncated ? 1 : 0;
}
BENCHMARK(BM_ExceptComplement)->RangeMultiplier(2)->Range(8, 128);

void BM_ReduceWorkaround(benchmark::State& state) {
  // Same answer as the dl-RPQ: all endpoint pairs with an increasing-edge
  // path witness. The reduce formulation has no product structure to lean
  // on, so it enumerates per pair.
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = IncreasingEdgeChain(n, n / 8, /*seed=*/3);
  auto ge0 = [](const Value& v) {
    return v.is_numeric() && v.ToDouble() >= 0;
  };
  ReduceQueryOptions options;
  options.max_results = 1;  // existence per pair
  size_t answers = 0;
  for (auto _ : state) {
    answers = 0;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        std::vector<Path> witness = PathsWithReducePredicate(
            g, u, v, Value(0), PropertyIota(g, "k"), IncreasingStep(g, "k"),
            ge0, options);
        // The dl query requires at least one edge; drop the empty witness
        // (on a chain no nonempty u→u path exists, so nothing is missed).
        if (!witness.empty() && witness[0].Length() > 0) ++answers;
      }
    }
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answer_pairs"] = static_cast<double>(answers);
}
BENCHMARK(BM_ReduceWorkaround)->RangeMultiplier(2)->Range(8, 256);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    printf("E7: increasing edge values, dl-RPQ vs EXCEPT vs reduce.\n");
    printf("The dl-RPQ is Example 21's expression: %s\n\n",
           gqzoo::kDlIncreasing);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
