// E15 (Section 3.1.3 + Proposition 24): nesting (regular queries) gives
// the transitive closure over virtual edges that flat CRPQs/CoreGQL lack.
// We evaluate Example 15's two-way-transfer closure and show the flat
// Transfer* over-approximation, plus scaling of the stratified fixpoint.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/graph/generators.h"
#include "src/nested/regular_queries.h"

namespace gqzoo {
namespace {

const char* kTwoWayClosure =
    "twoWay(x, y) := Transfer(x, y), Transfer(y, x) ;"
    "q(u, v) := twoWay*(u, v)";

void BM_TwoWayClosure(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = TwoWayTransferChain(n);
  RegularQuery q = ParseRegularQuery(kTwoWayClosure).ValueOrDie();
  size_t answers = 0;
  for (auto _ : state) {
    Result<CrpqResult> r = EvalRegularQuery(g, q);
    answers = r.value().rows.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_TwoWayClosure)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_FlatOverApproximation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = TwoWayTransferChain(n);
  RegularQuery q = ParseRegularQuery("q(u, v) := Transfer*(u, v)")
                       .ValueOrDie();
  size_t answers = 0;
  for (auto _ : state) {
    Result<CrpqResult> r = EvalRegularQuery(g, q);
    answers = r.value().rows.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_FlatOverApproximation)->RangeMultiplier(2)->Range(8, 256);

void BM_ChainedStrata(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = TwoWayTransferChain(n);
  RegularQuery q = ParseRegularQuery(
                       "twoWay(x, y) := Transfer(x, y), Transfer(y, x) ;"
                       "twoHop(x, y) := (twoWay twoWay)(x, y) ;"
                       "q(u, v) := twoHop+(u, v)")
                       .ValueOrDie();
  size_t answers = 0;
  for (auto _ : state) {
    Result<CrpqResult> r = EvalRegularQuery(g, q);
    answers = r.value().rows.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_ChainedStrata)->RangeMultiplier(2)->Range(8, 128);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    EdgeLabeledGraph g = TwoWayTransferChain(3);
    RegularQuery q = ParseRegularQuery(kTwoWayClosure).ValueOrDie();
    Result<CrpqResult> closed = EvalRegularQuery(g, q);
    RegularQuery flat =
        ParseRegularQuery("q(u, v) := Transfer*(u, v)").ValueOrDie();
    Result<CrpqResult> over = EvalRegularQuery(g, flat);
    printf("E15 / Examples 14-15 on TwoWayTransferChain(3):\n");
    printf("  twoWay* answers: %zu (hub pairs + trivial self-pairs)\n",
           closed.value().rows.size());
    printf("  Transfer* answers: %zu (over-approximates: reaches decoys)\n\n",
           over.value().rows.size());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
