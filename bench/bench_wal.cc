// Durability cost and recovery speed: what logging a mutation batch costs
// on the write path, and how long WAL replay takes at startup.
//
// BM_AppendDurability drives one engine with single-op mutation batches
// (alternating add-edge / remove-edge so the graph stays size-stable) in
// four durability modes:
//   mode=nowal   RAM-only engine — the pre-durability baseline.
//   mode=nosync  WAL appended + flushed, fsync disabled (write() cost and
//                framing/CRC overhead, no disk barrier).
//   mode=fsync   fsync on every commit — the full per-batch durability
//                barrier, dominated by the disk sync.
//   mode=group   10 ms group-commit window — appends return once the
//                bytes are written; one fsync covers every batch in the
//                window. The acceptance bar is that group commit recovers
//                the bulk of the throughput that per-batch fsync gives up
//                (>=5x over fsync-each); BENCH_wal.json records the ratios
//                against both the fsync and no-WAL bars.
//
// BM_RecoveryReplay measures QueryEngine::RecoverFrom on a directory
// whose WAL holds N single-op batches past the checkpoint. Recovery
// itself re-checkpoints (so a second open replays nothing) — each timed
// iteration therefore copies a pristine template directory and manually
// times just the RecoverFrom call. The acceptance bar is bounded replay
// of a 10k-batch log, reported in BENCH_wal.json.
//
// `--smoke` (consumed before benchmark flags) shrinks sizes for the CI
// bit-rot check. Full runs emit BENCH_wal.json via
// --benchmark_format=json plus hand-reduced summary numbers.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/graph/delta/delta.h"

namespace gqzoo {
namespace {

std::vector<int64_t> g_replay_sizes = {1000, 10000};

std::string FreshDir() {
  char tmpl[] = "/tmp/gqzoo_bench_wal.XXXXXX";
  char* dir = mkdtemp(tmpl);
  return dir == nullptr ? std::string() : std::string(dir);
}

/// A deliberately small base graph: the measurements isolate the log
/// append / replay cost, not checkpoint serialization of a big graph.
PropertyGraph SeedGraph() {
  PropertyGraph g;
  for (int i = 0; i < 8; ++i) {
    g.AddNode("n" + std::to_string(i), "N");
  }
  g.AddEdge(0, 1, "a", "t0");
  return g;
}

/// Compaction off: nothing rotates the WAL or writes covering checkpoints
/// behind the benchmark's back, so the log length is exactly the batch
/// count the loop issued.
QueryEngine::Options BaseOptions() {
  QueryEngine::Options options;
  options.num_threads = 2;
  options.mutation.background_compaction = false;
  options.mutation.compact_min_ops = size_t{1} << 30;
  options.mutation.compact_ratio = 1e9;
  return options;
}

/// One iteration = one acked single-op batch. mode: 0 nowal, 1 nosync,
/// 2 fsync-each, 3 group commit (10 ms window).
void BM_AppendDurability(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  QueryEngine::Options options = BaseOptions();
  std::string dir;
  if (mode != 0) {
    dir = FreshDir();
    options.durability.dir = dir;
    options.durability.fsync = mode == 2;
    options.durability.group_commit_window_ms = mode == 3 ? 10 : 0;
  }
  auto opened = QueryEngine::RecoverFrom(SeedGraph(), std::move(options));
  if (!opened.ok()) {
    state.SkipWithError(opened.error().message().c_str());
    return;
  }
  QueryEngine& engine = *opened.value();

  size_t serial = 0;
  bool have_edge = false;
  size_t errors = 0;
  for (auto _ : state) {
    MutationBatch batch;
    if (have_edge) {
      batch.RemoveEdge("bw" + std::to_string(serial));
      ++serial;
    } else {
      batch.AddEdge("bw" + std::to_string(serial), "n0", "n1", "a");
    }
    have_edge = !have_edge;
    if (!engine.ApplyMutation(batch).ok()) ++errors;
  }
  // Make the tail durable before the counters are read; the drain is
  // outside the timed region, matching "acked" semantics per mode.
  (void)engine.FlushWal();
  state.counters["batches_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["errors"] = static_cast<double>(errors);
  opened.value().reset();
  if (!dir.empty()) std::filesystem::remove_all(dir);
}

/// Builds (once per size) a durable directory whose WAL holds `batches`
/// single-op records past a near-empty checkpoint.
const std::string& TemplateDir(int64_t batches) {
  static std::map<int64_t, std::string> cache;
  auto it = cache.find(batches);
  if (it != cache.end()) return it->second;

  std::string dir = FreshDir();
  QueryEngine::Options options = BaseOptions();
  options.durability.dir = dir;
  options.durability.fsync = false;  // setup speed; the bytes still land
  auto opened = QueryEngine::RecoverFrom(SeedGraph(), std::move(options));
  QueryEngine& engine = *opened.value();
  for (int64_t i = 0; i < batches; ++i) {
    MutationBatch batch;
    if (i % 2 == 0) {
      batch.AddEdge("rw" + std::to_string(i), "n0", "n1", "a");
    } else {
      batch.RemoveEdge("rw" + std::to_string(i - 1));
    }
    (void)engine.ApplyMutation(batch);
  }
  (void)engine.FlushWal();
  opened.value().reset();  // close cleanly; WAL keeps all `batches` records
  return cache.emplace(batches, std::move(dir)).first->second;
}

/// Manually times RecoverFrom over a fresh copy of the template directory
/// each iteration (recovery re-checkpoints, so the copy is mandatory —
/// reopening in place would replay an empty tail).
void BM_RecoveryReplay(benchmark::State& state) {
  const int64_t batches = state.range(0);
  const std::string& tmpl = TemplateDir(batches);
  if (tmpl.empty()) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  uint64_t replayed = 0;
  for (auto _ : state) {
    std::string work = FreshDir();
    std::filesystem::copy(tmpl, work,
                          std::filesystem::copy_options::recursive |
                              std::filesystem::copy_options::overwrite_existing);
    QueryEngine::Options options = BaseOptions();
    options.durability.dir = work;
    const auto start = std::chrono::steady_clock::now();
    auto opened = QueryEngine::RecoverFrom(PropertyGraph(), std::move(options));
    const auto stop = std::chrono::steady_clock::now();
    if (!opened.ok()) {
      state.SkipWithError(opened.error().message().c_str());
      return;
    }
    replayed = opened.value()->recovery_info().batches_replayed;
    state.SetIterationTime(
        std::chrono::duration<double>(stop - start).count());
    opened.value().reset();
    std::filesystem::remove_all(work);
  }
  state.counters["batches_replayed"] = static_cast<double>(replayed);
  state.counters["replay_batches_per_sec"] = benchmark::Counter(
      static_cast<double>(replayed) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void Register(bool smoke) {
  if (smoke) g_replay_sizes = {128};
  benchmark::RegisterBenchmark("BM_AppendDurability", BM_AppendDurability)
      ->ArgsProduct({{0, 1, 2, 3}})
      ->ArgNames({"mode"})
      ->Unit(benchmark::kMicrosecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("BM_RecoveryReplay", BM_RecoveryReplay)
      ->ArgsProduct({g_replay_sizes})
      ->ArgNames({"log_batches"})
      ->Unit(benchmark::kMillisecond)
      ->UseManualTime();
}

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time.data());
  int filtered_argc = static_cast<int>(args.size());
  gqzoo::Register(smoke);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
