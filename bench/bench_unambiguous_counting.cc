// E11 (Section 6.2): "If we want to count the number of matching paths, it
// is important that N_R is unambiguous." Run counting with an ambiguous
// automaton overcounts; determinizing restores path counts at some state
// blow-up cost. (The paper also cites the SPARQL-log study [62]: real
// queries rarely need a larger unambiguous automaton.)

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/automata/counting.h"
#include "src/automata/operations.h"
#include "src/graph/generators.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

void BM_CountWithUnambiguous(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("a*", RegexDialect::kPlain).ValueOrDie(), g);
  std::string count;
  for (auto _ : state) {
    BigUint c = CountRunsOnPaths(g, nfa, *g.FindNode("s"), *g.FindNode("t"),
                                 n + 2);
    count = c.ToString();
    benchmark::DoNotOptimize(c);
  }
  state.SetLabel("paths = " + count);
}
BENCHMARK(BM_CountWithUnambiguous)->DenseRange(8, 32, 8);

void BM_CountWithAmbiguous(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("a* a* a*", RegexDialect::kPlain).ValueOrDie(), g);
  std::string count;
  for (auto _ : state) {
    BigUint c = CountRunsOnPaths(g, nfa, *g.FindNode("s"), *g.FindNode("t"),
                                 n + 2);
    count = c.ToString();
    benchmark::DoNotOptimize(c);
  }
  state.SetLabel("runs  = " + count + " (overcounted)");
}
BENCHMARK(BM_CountWithAmbiguous)->DenseRange(8, 32, 8);

void BM_DisambiguateByDeterminization(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = ParallelChain(n);
  Nfa ambiguous = Nfa::FromRegex(
      *ParseRegex("a* a* a*", RegexDialect::kPlain).ValueOrDie(), g);
  std::string count;
  size_t dfa_states = 0;
  for (auto _ : state) {
    Nfa dfa = Determinize(ambiguous);
    dfa_states = dfa.num_states();
    BigUint c = CountRunsOnPaths(g, dfa, *g.FindNode("s"), *g.FindNode("t"),
                                 n + 2);
    count = c.ToString();
    benchmark::DoNotOptimize(c);
  }
  state.counters["dfa_states"] = static_cast<double>(dfa_states);
  state.SetLabel("paths = " + count);
}
BENCHMARK(BM_DisambiguateByDeterminization)->DenseRange(8, 32, 8);

void BM_AmbiguityCheck(benchmark::State& state) {
  const size_t qi = static_cast<size_t>(state.range(0));
  const char* queries[] = {"a*", "a* a*", "(a|b)* a (a|b)*", "(a b)* (b a)?"};
  EdgeLabeledGraph g = Clique(2);
  g.InternLabel("b");
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex(queries[qi], RegexDialect::kPlain).ValueOrDie(), g);
  bool ambiguous = false;
  for (auto _ : state) {
    ambiguous = IsAmbiguous(nfa);
    benchmark::DoNotOptimize(ambiguous);
  }
  state.SetLabel(std::string(queries[qi]) +
                 (ambiguous ? " [ambiguous]" : " [unambiguous]"));
}
BENCHMARK(BM_AmbiguityCheck)->DenseRange(0, 3, 1);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    EdgeLabeledGraph g = ParallelChain(8);
    Nfa plain = Nfa::FromRegex(
        *ParseRegex("a*", RegexDialect::kPlain).ValueOrDie(), g);
    Nfa amb = Nfa::FromRegex(
        *ParseRegex("a* a* a*", RegexDialect::kPlain).ValueOrDie(), g);
    printf("E11: path counting needs unambiguity (Section 6.2).\n");
    printf("ParallelChain(8): true path count 2^8 = 256\n");
    printf("  a*        (unambiguous: %s) counts %s\n",
           IsAmbiguous(plain) ? "no" : "yes",
           CountRunsOnPaths(g, plain, 0, 8, 10).ToString().c_str());
    printf("  a* a* a*  (unambiguous: %s) counts %s\n",
           IsAmbiguous(amb) ? "no" : "yes",
           CountRunsOnPaths(g, amb, 0, 8, 10).ToString().c_str());
    printf("  after determinization:     counts %s\n\n",
           CountRunsOnPaths(g, Determinize(amb), 0, 8, 10)
               .ToString()
               .c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
