// Network front-end under open-loop load: what the server sustains when
// requests arrive on a fixed schedule regardless of how fast responses
// come back (no coordinated omission — latency is measured from each
// request's *scheduled* arrival, so queueing behind a slow neighbour
// counts against the tail).
//
// BM_ServerOpenLoop drives a mixed-language workload (RPQ, CRPQ, CoreGQL,
// GQL group patterns, paths) over real loopback sockets: `conns` client
// threads share one arrival schedule at `offered_qps` and each request is
// a full wire round trip — QUERY frame out, ROWS chunks streamed back,
// DONE with status and row count. Reported counters:
//   qps_achieved   completed requests / wall time
//   p50_us/p99_us  open-loop latency percentiles across all requests
//   rows_per_req   mean result rows (sanity: the workload really ran)
//   errors         DONEs with ok == false (must be 0 — no quotas here)
//
// Before the timed runs, every workload query is executed once through a
// streaming client *and* once in-process, and the concatenated ROWS chunks
// must be byte-identical to the in-process response text — the
// zero-result-corruption bar from the acceptance criteria. A mismatch
// fails the benchmark rather than producing numbers.
//
// `--smoke` (consumed before benchmark flags) shrinks the request count
// and rate for the CI bit-rot check. Full runs emit BENCH_server.json via
// --benchmark_format=json plus hand-reduced summary numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/graph/generators.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace gqzoo {
namespace {

size_t g_requests = 512;
std::vector<int64_t> g_offered_qps = {25, 50, 75};

/// One workload entry: the wire-side request and its in-process mirror
/// (same language, text, and options) for the byte-identity check.
struct WorkItem {
  std::string text;
  server::ClientQueryOptions wire;
  QueryRequest local;
};

WorkItem Item(QueryLanguage language, const std::string& text) {
  WorkItem item;
  item.text = text;
  item.wire.language = QueryLanguageName(language);
  item.wire.timeout_ms = 10000;
  item.wire.max_display_rows = 100000;
  item.local.language = language;
  item.local.text = text;
  item.local.timeout = std::chrono::milliseconds(10000);
  item.local.max_display_rows = 100000;
  return item;
}

/// The mixed-language mix over a 64-account Transfer ring. `Transfer+`
/// (all-pairs reachability, 4096 rows) dominates the tail and streams
/// across many 4 KiB chunks; the rest are single-step lookups and joins.
std::vector<WorkItem> Workload() {
  std::vector<WorkItem> mix = {
      Item(QueryLanguage::kRpq, "Transfer"),
      Item(QueryLanguage::kRpq, "~Transfer"),
      Item(QueryLanguage::kRpq, "Transfer+"),
      Item(QueryLanguage::kCrpq, "q(x, z) :- Transfer(x, y), Transfer(y, z)"),
      Item(QueryLanguage::kCoreGql,
           "MATCH (x)-[:Transfer]->(y) RETURN x, y"),
      Item(QueryLanguage::kGqlGroup, "(x) (-[t:Transfer]->(v)){1,2} (y)"),
  };
  WorkItem paths = Item(QueryLanguage::kPaths, "Transfer+");
  paths.wire.paths_from = "acct2";
  paths.wire.paths_to = "acct9";
  paths.wire.paths_mode = 1;  // shortest
  paths.local.paths.from = "acct2";
  paths.local.paths.to = "acct9";
  paths.local.paths.mode = PathMode::kShortest;
  mix.push_back(paths);
  return mix;
}

PropertyGraph BenchGraph() { return TransferRing(64, 8, 10.0, 7); }

/// Streams every workload query through the wire and diffs the chunk
/// concatenation against the in-process engine — byte-identical or bust.
bool CheckByteIdentity(QueryEngine* engine, const server::GraphServer& server,
                       std::string* detail) {
  Result<server::Client> connected =
      server::Client::Connect("127.0.0.1", server.port());
  if (!connected.ok()) {
    *detail = "connect: " + connected.error().message();
    return false;
  }
  server::Client client = std::move(connected).value();
  if (Result<bool> hello = client.Hello("bench"); !hello.ok()) {
    *detail = "hello: " + hello.error().message();
    return false;
  }
  for (const WorkItem& item : Workload()) {
    std::string streamed;
    Result<server::DoneStatus> done =
        client.Query(item.text, item.wire, [&](std::string_view chunk) {
          streamed += chunk;
          return true;
        });
    if (!done.ok() || !done.value().ok) {
      *detail = "wire query '" + item.text + "' failed: " +
                (done.ok() ? done.value().message : done.error().message());
      return false;
    }
    Result<QueryResponse> local = engine->Execute(item.local);
    if (!local.ok()) {
      *detail = "local query '" + item.text + "' failed: " +
                local.error().message();
      return false;
    }
    if (streamed != local.value().text ||
        done.value().num_rows != local.value().num_rows) {
      *detail = "result corruption on '" + item.text +
                "': streamed bytes differ from in-process text";
      return false;
    }
  }
  return true;
}

/// One iteration = `g_requests` arrivals at `offered_qps`, spread over
/// `conns` connections. state.range(0) = offered QPS, state.range(1) =
/// connections.
void BM_ServerOpenLoop(benchmark::State& state) {
  const double offered_qps = static_cast<double>(state.range(0));
  const size_t conns = static_cast<size_t>(state.range(1));

  QueryEngine::Options options;
  options.num_threads = 4;
  QueryEngine engine(BenchGraph(), options);
  server::GraphServer server(&engine, server::ServerOptions{});
  if (Result<bool> started = server.Start(); !started.ok()) {
    state.SkipWithError(started.error().message().c_str());
    return;
  }
  std::string detail;
  if (!CheckByteIdentity(&engine, server, &detail)) {
    state.SkipWithError(detail.c_str());
    return;
  }

  const std::vector<WorkItem> mix = Workload();
  std::vector<server::Client> clients;
  for (size_t c = 0; c < conns; ++c) {
    Result<server::Client> connected =
        server::Client::Connect("127.0.0.1", server.port());
    if (!connected.ok() || !connected.value().Hello("bench").ok()) {
      state.SkipWithError("client setup failed");
      return;
    }
    clients.push_back(std::move(connected).value());
  }

  const auto period = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(1.0 / offered_qps));
  double total_seconds = 0;
  size_t total_errors = 0;
  uint64_t total_rows = 0;
  std::vector<double> latencies_us;
  for (auto _ : state) {
    std::atomic<size_t> next{0};
    std::atomic<size_t> errors{0};
    std::atomic<uint64_t> rows{0};
    std::vector<std::vector<double>> per_conn(conns);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (size_t c = 0; c < conns; ++c) {
      workers.emplace_back([&, c] {
        per_conn[c].reserve(g_requests / conns + 1);
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= g_requests) break;
          const auto scheduled = start + period * static_cast<int64_t>(i);
          std::this_thread::sleep_until(scheduled);
          const WorkItem& item = mix[i % mix.size()];
          Result<server::DoneStatus> done =
              clients[c].Query(item.text, item.wire);
          const auto finished = std::chrono::steady_clock::now();
          if (!done.ok() || !done.value().ok) {
            errors.fetch_add(1);
          } else {
            rows.fetch_add(done.value().num_rows);
          }
          per_conn[c].push_back(
              std::chrono::duration<double, std::micro>(finished - scheduled)
                  .count());
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    state.SetIterationTime(seconds);
    total_seconds += seconds;
    total_errors += errors.load();
    total_rows += rows.load();
    for (std::vector<double>& v : per_conn) {
      latencies_us.insert(latencies_us.end(), v.begin(), v.end());
    }
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  auto percentile = [&](double p) {
    if (latencies_us.empty()) return 0.0;
    const size_t idx = std::min(
        latencies_us.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_us.size())));
    return latencies_us[idx];
  };
  const double completed =
      static_cast<double>(g_requests) * static_cast<double>(state.iterations());
  state.counters["qps_achieved"] =
      total_seconds > 0 ? completed / total_seconds : 0;
  state.counters["p50_us"] = percentile(0.50);
  state.counters["p99_us"] = percentile(0.99);
  state.counters["rows_per_req"] =
      completed > 0 ? static_cast<double>(total_rows) / completed : 0;
  state.counters["errors"] = static_cast<double>(total_errors);
}

void Register(bool smoke) {
  if (smoke) {
    g_requests = 32;
    g_offered_qps = {200};
  }
  std::vector<int64_t> conns = {4};
  benchmark::RegisterBenchmark("BM_ServerOpenLoop", BM_ServerOpenLoop)
      ->ArgsProduct({g_offered_qps, conns})
      ->ArgNames({"offered_qps", "conns"})
      ->Unit(benchmark::kMillisecond)
      ->UseManualTime()
      ->Iterations(1);
}

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  gqzoo::Register(smoke);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
