// Engine throughput: queries/sec for a mixed-language workload dispatched
// through the QueryEngine, cold cache vs warm cache, at 1/4/8 pool
// threads. The warm-cache numbers show what the compiled-plan cache buys
// (parsing + Glushkov construction amortized away); the thread sweep shows
// executor scaling on concurrent submissions.

#include <benchmark/benchmark.h>

#include <future>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/graph/builtin_graphs.h"

namespace gqzoo {
namespace {

QueryRequest Req(QueryLanguage language, const std::string& text) {
  QueryRequest request;
  request.language = language;
  request.text = text;
  return request;
}

std::vector<QueryRequest> MixedWorkload() {
  std::vector<QueryRequest> mix = {
      Req(QueryLanguage::kRpq, "Transfer+"),
      Req(QueryLanguage::kRpq, "Transfer (Transfer|owner)?"),
      Req(QueryLanguage::kRpq, "~Transfer"),
      Req(QueryLanguage::kCrpq, "q(x, y) :- Transfer+(x, y)"),
      Req(QueryLanguage::kCrpq,
          "q(x, y) :- Transfer+(x, y), isBlocked(y, b)"),
      Req(QueryLanguage::kDlCrpq, "q(x, y) := ( ()[Transfer] )+ () (x, y)"),
      Req(QueryLanguage::kCoreGql, "MATCH (x)-[:Transfer]->(y) RETURN x, y"),
      Req(QueryLanguage::kCoreGql,
          "MATCH (x)-[:Transfer]->(y)-[:isBlocked]->(b) RETURN x, b"),
      Req(QueryLanguage::kGqlGroup, "(x) (-[t:Transfer]->(v)){1,2} (y)"),
      Req(QueryLanguage::kRegular,
          "two(x, y) := Transfer(x, y), Transfer(y, x) ; "
          "q(u, v) := two*(u, v)"),
  };
  QueryRequest paths = Req(QueryLanguage::kPaths, "Transfer+");
  paths.paths.from = "a2";
  paths.paths.to = "a4";
  mix.push_back(paths);
  return mix;
}

/// One iteration = the full mixed workload submitted to the pool and
/// drained. state.range(0) = pool threads; state.range(1) = 1 keeps the
/// plan cache warm across iterations, 0 clears it each time (every query
/// recompiles: parse + automaton construction on the hot path).
void BM_EngineMixedThroughput(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const bool warm = state.range(1) != 0;
  QueryEngine::Options options;
  options.num_threads = threads;
  QueryEngine engine(Figure3Graph(), options);
  std::vector<QueryRequest> mix = MixedWorkload();

  size_t queries = 0;
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      engine.ClearPlanCache();
      state.ResumeTiming();
    }
    std::vector<std::future<Result<QueryResponse>>> futures;
    futures.reserve(mix.size());
    for (const QueryRequest& request : mix) {
      futures.push_back(engine.Submit(request));
    }
    for (auto& f : futures) {
      Result<QueryResponse> r = f.get();
      if (r.ok()) ++queries;
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(queries));
  const auto stats = engine.plan_cache().GetStats();
  state.counters["cache_hit_pct"] =
      stats.hits + stats.misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(stats.hits) /
                static_cast<double>(stats.hits + stats.misses);
}
BENCHMARK(BM_EngineMixedThroughput)
    ->ArgsProduct({{1, 4, 8}, {0, 1}})
    ->ArgNames({"threads", "warm"})
    ->UseRealTime();

/// Compile-vs-cache in isolation, single-threaded Execute on the caller:
/// the same CoreGQL query repeatedly, either recompiled every time or
/// served from the plan cache.
void BM_EngineSingleQuery(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  QueryEngine engine(Figure3Graph());
  QueryRequest request = Req(
      QueryLanguage::kCoreGql,
      "MATCH (x)-[:Transfer]->(y)-[:isBlocked]->(b) RETURN x, b");

  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      engine.ClearPlanCache();
      state.ResumeTiming();
    }
    Result<QueryResponse> r = engine.Execute(request);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineSingleQuery)->Arg(0)->Arg(1)->ArgNames({"warm"});

}  // namespace
}  // namespace gqzoo

BENCHMARK_MAIN();
