// E9 (Section 5.2, "Matching on Matched Paths"): the ∀π' ⇒ θ conditions
// advocated at the GQL committee. With the two-consecutive-edges
// subpattern, the check per path is linear; with the (u) →* (v)
// subpattern ("all property values along the path differ") the underlying
// query is NP-hard in data complexity — per-path checking is quadratic,
// and the number of candidate paths explodes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/coregql/pattern_parser.h"
#include "src/graph/generators.h"
#include "src/lists/forall_subpattern.h"
#include "src/pmr/build.h"
#include "src/pmr/enumerate.h"
#include "src/regex/parser.h"

namespace gqzoo {
namespace {

std::vector<Path> CandidatePaths(const PropertyGraph& g, size_t max_len,
                                 size_t max_paths) {
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("_+", RegexDialect::kPlain).ValueOrDie(), g.skeleton());
  Pmr pmr = BuildPmr(g.skeleton(), nfa, {}, {});
  EnumerationLimits limits;
  limits.max_length = max_len;
  limits.max_results = max_paths;
  std::vector<Path> paths;
  EnumeratePathBindings(pmr, limits, [&paths](const PathBinding& pb) {
    paths.push_back(pb.path);
    return true;
  });
  return paths;
}

void BM_SafeWindowCondition(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = RandomPropertyGraph(n, 2 * n, 100, /*seed=*/5);
  std::vector<Path> paths = CandidatePaths(g, 6, 2000);
  CorePatternPtr sub = ParseCorePattern("()-[u]->()-[v]->()").ValueOrDie();
  CoreCondPtr cond = ParseCoreCondition("u.k < v.k").ValueOrDie();
  size_t kept = 0;
  for (auto _ : state) {
    Result<std::vector<Path>> out =
        FilterForAllSubpattern(g, paths, *sub, *cond);
    kept = out.value().size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["candidates"] = static_cast<double>(paths.size());
  state.counters["kept"] = static_cast<double>(kept);
}
BENCHMARK(BM_SafeWindowCondition)->RangeMultiplier(2)->Range(8, 64);

void BM_AllDistinctCondition(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph g = RandomPropertyGraph(n, 2 * n, 4, /*seed=*/5);
  std::vector<Path> paths = CandidatePaths(g, 6, 2000);
  CorePatternPtr sub = ParseCorePattern("(u) ->+ (v)").ValueOrDie();
  CoreCondPtr cond = ParseCoreCondition("u.k != v.k").ValueOrDie();
  size_t kept = 0;
  for (auto _ : state) {
    Result<std::vector<Path>> out =
        FilterForAllSubpattern(g, paths, *sub, *cond);
    kept = out.value().size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["candidates"] = static_cast<double>(paths.size());
  state.counters["kept"] = static_cast<double>(kept);
}
BENCHMARK(BM_AllDistinctCondition)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  printf("E9: forall-subpattern conditions — the safe two-edge window vs "
         "the NP-hard all-distinct variant (paper, Section 5.2).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
