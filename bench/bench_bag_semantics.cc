// E5 (Section 6.1): bag semantics + Kleene star = blow-up. The paper's
// claim: evaluating (((a*)*)*)* on a 6-clique under the 2012 SPARQL draft
// semantics "gave more answers than the number of protons in the
// observable universe" (~10^80), while the automata view rewrites the
// expression to a* and returns 36 set answers.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/automata/operations.h"
#include "src/graph/generators.h"
#include "src/regex/parser.h"
#include "src/rpq/bag_semantics.h"
#include "src/rpq/rpq_eval.h"

namespace gqzoo {
namespace {

RegexPtr NestedStar(size_t depth) {
  RegexPtr r = ParseRegex("a", RegexDialect::kPlain).ValueOrDie();
  for (size_t i = 0; i < depth; ++i) r = Regex::Star(r);
  return r;
}

void BM_BagCount(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t depth = static_cast<size_t>(state.range(1));
  EdgeLabeledGraph g = Clique(k);
  RegexPtr regex = NestedStar(depth);
  size_t digits = 0;
  for (auto _ : state) {
    BigUint total = BagCountTotal(*regex, g);
    digits = total.NumDecimalDigits();
    benchmark::DoNotOptimize(total);
  }
  state.counters["decimal_digits"] = static_cast<double>(digits);
}
BENCHMARK(BM_BagCount)
    ->ArgsProduct({{2, 3, 4, 5, 6}, {1, 2, 3, 4}});

void BM_SetSemanticsViaAutomata(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = Clique(k);
  RegexPtr regex = NestedStar(4);
  Nfa nfa = Nfa::FromRegex(*regex, g);
  size_t answers = 0;
  for (auto _ : state) {
    auto pairs = EvalRpq(g, nfa);
    answers = pairs.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_SetSemanticsViaAutomata)->DenseRange(2, 6, 1);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    printf("E5 / Section 6.1: (((a*)*)*)* on k-cliques.\n");
    printf("%3s %14s %45s\n", "k", "set answers", "bag multiplicity (digits)");
    for (size_t k = 2; k <= 6; ++k) {
      EdgeLabeledGraph g = Clique(k);
      RegexPtr regex =
          ParseRegex("(((a*)*)*)*", RegexDialect::kPlain).ValueOrDie();
      auto pairs = EvalRpq(g, *regex);
      BigUint total = BagCountTotal(*regex, g);
      std::string digits = std::to_string(total.NumDecimalDigits());
      std::string shown = total.NumDecimalDigits() <= 40
                              ? total.ToString()
                              : total.ToString().substr(0, 20) + "... (" +
                                    digits + " digits)";
      printf("%3zu %14zu %45s\n", k, pairs.size(), shown.c_str());
    }
    EdgeLabeledGraph g6 = Clique(6);
    BigUint total = BagCountTotal(
        *ParseRegex("(((a*)*)*)*", RegexDialect::kPlain).ValueOrDie(), g6);
    printf("K6 bag multiplicity has %zu decimal digits; protons in the "
           "observable universe ~ 10^80 -> claim %s\n",
           total.NumDecimalDigits(),
           total > BigUint::PowerOfTen(80) ? "REPRODUCED" : "NOT reproduced");
    // And the rewriting story: (((a*)*)*)* ≡ a*.
    EdgeLabeledGraph alphabet = Clique(2);
    bool equivalent = AreEquivalent(
        Nfa::FromRegex(
            *ParseRegex("(((a*)*)*)*", RegexDialect::kPlain).ValueOrDie(),
            alphabet),
        Nfa::FromRegex(*ParseRegex("a*", RegexDialect::kPlain).ValueOrDie(),
                       alphabet));
    printf("automata check (((a*)*)*)* == a*: %s\n\n",
           equivalent ? "yes" : "no");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
