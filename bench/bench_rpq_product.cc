// E10 (Section 6.2): RPQ evaluation by product-graph reachability is
// polynomial: linear-ish in graph size for fixed query, and scaling with
// automaton size. Also compares single-pair lazy BFS against all-pairs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/graph/generators.h"
#include "src/regex/parser.h"
#include "src/rpq/product_graph.h"
#include "src/rpq/rpq_eval.h"

namespace gqzoo {
namespace {

const char* kQueries[] = {
    "a",                 // 2 states
    "a b",               // 3 states
    "(a b)* c",          // 4 states
    "(a|b)* a (a|b)",    // 5 states
    "a (b|c)* a (b|c)* a",  // 7-ish states
};

void BM_AllPairs_GraphScaling(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = RandomGraph(n, 4 * n, 3, /*seed=*/11);
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("(a b)* c", RegexDialect::kPlain).ValueOrDie(), g);
  size_t answers = 0;
  for (auto _ : state) {
    auto pairs = EvalRpq(g, nfa);
    answers = pairs.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_AllPairs_GraphScaling)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity();

void BM_SinglePair_GraphScaling(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = RandomGraph(n, 4 * n, 3, /*seed=*/11);
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("(a b)* c", RegexDialect::kPlain).ValueOrDie(), g);
  for (auto _ : state) {
    bool hit = EvalRpqPair(g, nfa, 0, static_cast<NodeId>(n - 1));
    benchmark::DoNotOptimize(hit);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SinglePair_GraphScaling)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity();

void BM_AutomatonScaling(benchmark::State& state) {
  const size_t qi = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = RandomGraph(512, 2048, 3, /*seed=*/11);
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex(kQueries[qi], RegexDialect::kPlain).ValueOrDie(), g);
  for (auto _ : state) {
    auto pairs = EvalRpq(g, nfa);
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["nfa_states"] = static_cast<double>(nfa.num_states());
  state.SetLabel(kQueries[qi]);
}
BENCHMARK(BM_AutomatonScaling)->DenseRange(0, 4, 1);

void BM_MaterializedProductConstruction(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EdgeLabeledGraph g = RandomGraph(n, 4 * n, 3, /*seed=*/11);
  Nfa nfa = Nfa::FromRegex(
      *ParseRegex("(a|b)* a (a|b)", RegexDialect::kPlain).ValueOrDie(), g);
  size_t arcs = 0;
  for (auto _ : state) {
    ProductGraph product(g, nfa);
    arcs = product.NumArcs();
    benchmark::DoNotOptimize(product);
  }
  state.counters["product_arcs"] = static_cast<double>(arcs);
}
BENCHMARK(BM_MaterializedProductConstruction)
    ->RangeMultiplier(4)
    ->Range(64, 4096);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  printf("E10: product-graph RPQ evaluation (Section 6.2) — polynomial "
         "scaling in |G| and |N_R|.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
