// E18 (ablation; Sections 6.1-6.2): the automata-compatible design lets a
// query compiler rewrite expressions before evaluation — "(((a*)*)*)* can
// be equivalently rewritten to a*". This bench measures the rewriter
// itself, and the downstream effect on automaton size and evaluation time
// for bloated-but-equivalent queries.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/graph/generators.h"
#include "src/regex/parser.h"
#include "src/regex/printer.h"
#include "src/regex/rewrite.h"
#include "src/rpq/rpq_eval.h"

namespace gqzoo {
namespace {

// Equivalent pairs: pathological formulation vs what the rewriter yields.
const char* kBloated[] = {
    "(((a*)*)*)*",
    "((a|a)|(a|a)) ((b?)?)* ((a+)+)?",
    "(eps|a)(eps|a)(eps|a)(eps|a)",
    "((a*)* (a*)*)*",
};

void BM_SimplifyRegex(benchmark::State& state) {
  RegexPtr r = ParseRegex(kBloated[state.range(0)], RegexDialect::kPlain)
                   .ValueOrDie();
  RegexPtr out;
  for (auto _ : state) {
    out = SimplifyRegex(r);
    benchmark::DoNotOptimize(out);
  }
  state.counters["size_before"] = static_cast<double>(RegexSize(*r));
  state.counters["size_after"] = static_cast<double>(RegexSize(*out));
  state.SetLabel(RegexToString(*out, RegexDialect::kPlain));
}
BENCHMARK(BM_SimplifyRegex)->DenseRange(0, 3, 1);

void EvalCase(benchmark::State& state, bool simplified) {
  RegexPtr r = ParseRegex(kBloated[state.range(0)], RegexDialect::kPlain)
                   .ValueOrDie();
  if (simplified) r = SimplifyRegex(r);
  EdgeLabeledGraph g = RandomGraph(512, 2048, 2, /*seed=*/13);
  Nfa nfa = Nfa::FromRegex(*r, g);
  size_t answers = 0;
  for (auto _ : state) {
    auto pairs = EvalRpq(g, nfa);
    answers = pairs.size();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["nfa_states"] = static_cast<double>(nfa.num_states());
  state.counters["nfa_transitions"] =
      static_cast<double>(nfa.NumTransitions());
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_EvalBloated(benchmark::State& state) { EvalCase(state, false); }
BENCHMARK(BM_EvalBloated)->DenseRange(0, 3, 1);

void BM_EvalSimplified(benchmark::State& state) { EvalCase(state, true); }
BENCHMARK(BM_EvalSimplified)->DenseRange(0, 3, 1);

}  // namespace
}  // namespace gqzoo

int main(int argc, char** argv) {
  {
    using namespace gqzoo;
    printf("E18 (ablation): regex rewriting before evaluation.\n");
    for (const char* text : kBloated) {
      RegexPtr r = ParseRegex(text, RegexDialect::kPlain).ValueOrDie();
      RegexPtr s = SimplifyRegex(r);
      printf("  %-38s ->  %s   (size %zu -> %zu)\n", text,
             RegexToString(*s, RegexDialect::kPlain).c_str(), RegexSize(*r),
             RegexSize(*s));
    }
    printf("\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
