#ifndef GQZOO_UTIL_SPAN_H_
#define GQZOO_UTIL_SPAN_H_

#include <cstddef>
#include <vector>

namespace gqzoo {

/// A borrowed, read-only view of a contiguous array — the one pointer+size
/// shape both storage modes of the snapshot substrate produce. Owned
/// snapshots point spans at their vectors; memory-mapped snapshots point
/// them straight into the mapped file. Everything downstream (slices,
/// evaluators, stats) reads through spans and cannot tell the difference.
///
/// Deliberately minimal (no std::span dependency in public graph headers,
/// and trivially copyable so views of views stay cheap). The viewed storage
/// must outlive the span; owners pin mapped files via shared_ptr.
template <typename T>
class ConstSpan {
 public:
  ConstSpan() : data_(nullptr), size_(0) {}
  ConstSpan(const T* data, size_t size) : data_(data), size_(size) {}
  ConstSpan(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

 private:
  const T* data_;
  size_t size_;
};

}  // namespace gqzoo

#endif  // GQZOO_UTIL_SPAN_H_
