#ifndef GQZOO_UTIL_RESULT_H_
#define GQZOO_UTIL_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace gqzoo {

/// A lightweight error type carrying a human-readable message.
///
/// The library does not use exceptions (see DESIGN.md); every operation that
/// can fail — parsing, lookups by name, ill-formed path construction —
/// returns `Result<T>` instead.
class Error {
 public:
  explicit Error(std::string message) : message_(std::move(message)) {}

  const std::string& message() const { return message_; }

 private:
  std::string message_;
};

/// Either a value of type `T` or an `Error`.
///
/// Usage:
///
///     Result<Path> p = Path::Make(...);
///     if (!p.ok()) return p.error();
///     Use(p.value());
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, mirrors
  // absl::StatusOr so call sites can `return value;` / `return Error(...);`.
  Result(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Returns the contained value or aborts with the error message. Intended
  /// for tests, examples, and benchmarks where failure is a programming bug.
  T ValueOrDie() && {
    if (!ok()) {
      // Deliberately crash loudly; library code never calls this.
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              error().message().c_str());
      abort();
    }
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace gqzoo

#endif  // GQZOO_UTIL_RESULT_H_
