#ifndef GQZOO_UTIL_RESULT_H_
#define GQZOO_UTIL_RESULT_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace gqzoo {

/// Machine-readable classification of an `Error`. Most library errors are
/// `kGeneric`; the query engine uses the finer codes to route outcomes
/// (e.g. counting parse errors vs. deadline hits separately in metrics).
enum class ErrorCode : uint8_t {
  kGeneric = 0,
  kParse,             // query text failed to parse / validate
  kNotFound,          // a named node/label/file does not exist
  kInvalidArgument,   // malformed request (bad language, bad parameters)
  kDeadlineExceeded,  // cooperative cancellation tripped by a deadline
  kCancelled,         // cooperative cancellation tripped explicitly
  kResourceExhausted,  // a per-query budget (memory/rows/steps) ran out
  kOverloaded,         // admission control shed the query; retry later
  kUnavailable,        // the engine is shutting down; don't retry here
  kDataLoss,           // durable state is corrupt; refuse to serve it
};

const char* ErrorCodeName(ErrorCode code);

/// A lightweight error type carrying a human-readable message and an
/// optional machine-readable code.
///
/// The library does not use exceptions (see DESIGN.md); every operation that
/// can fail — parsing, lookups by name, ill-formed path construction —
/// returns `Result<T>` instead.
class Error {
 public:
  explicit Error(std::string message)
      : message_(std::move(message)) {}
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  const std::string& message() const { return message_; }
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_ = ErrorCode::kGeneric;
  std::string message_;
};

inline const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric: return "GENERIC";
    case ErrorCode::kParse: return "PARSE";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kOverloaded: return "OVERLOADED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

/// Either a value of type `T` or an `Error`.
///
/// Usage:
///
///     Result<Path> p = Path::Make(...);
///     if (!p.ok()) return p.error();
///     Use(p.value());
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, mirrors
  // absl::StatusOr so call sites can `return value;` / `return Error(...);`.
  Result(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Returns the contained value or aborts with the error message. Intended
  /// for tests, examples, and benchmarks where failure is a programming bug.
  T ValueOrDie() && {
    if (!ok()) {
      // Deliberately crash loudly; library code never calls this.
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              error().message().c_str());
      abort();
    }
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace gqzoo

#endif  // GQZOO_UTIL_RESULT_H_
