#include "src/util/thread_pool.h"

#include <utility>

namespace gqzoo {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  // Joining is serialized through joined_: Shutdown() may be called both
  // explicitly and from the destructor, and must not double-join.
  std::call_once(joined_, [this] {
    for (std::thread& t : workers_) t.join();
  });
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
  return true;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace gqzoo
