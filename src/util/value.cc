#include "src/util/value.h"

#include <cmath>
#include <cstdio>

namespace gqzoo {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string EscapeStringLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string UnescapeStringLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) break;  // trailing lone backslash
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      default: out += s[i]; break;  // covers \\ and \" too
    }
  }
  return out;
}

bool Value::operator<(const Value& other) const {
  if (data_.index() != other.data_.index()) {
    return data_.index() < other.data_.index();
  }
  return data_ < other.data_;
}

namespace {

// Applies `op` to an ordering result: neg<0 means lhs<rhs, 0 equal, >0
// greater.
bool ApplyOrder(int cmp, CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace

bool Value::Compare(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.is_numeric() && rhs.is_numeric()) {
    if (lhs.is_int() && rhs.is_int()) {
      int64_t a = lhs.as_int(), b = rhs.as_int();
      return ApplyOrder(a < b ? -1 : (a > b ? 1 : 0), op);
    }
    double a = lhs.ToDouble(), b = rhs.ToDouble();
    if (std::isnan(a) || std::isnan(b)) return op == CompareOp::kNe;
    return ApplyOrder(a < b ? -1 : (a > b ? 1 : 0), op);
  }
  if (lhs.is_string() && rhs.is_string()) {
    int cmp = lhs.as_string().compare(rhs.as_string());
    return ApplyOrder(cmp < 0 ? -1 : (cmp > 0 ? 1 : 0), op);
  }
  if (lhs.is_bool() && rhs.is_bool()) {
    int a = lhs.as_bool() ? 1 : 0, b = rhs.as_bool() ? 1 : 0;
    return ApplyOrder(a - b, op);
  }
  // Incomparable types: only `!=` holds.
  return op == CompareOp::kNe;
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%g", as_double());
    return buf;
  }
  if (is_bool()) return as_bool() ? "true" : "false";
  return "\"" + EscapeStringLiteral(as_string()) + "\"";
}

size_t Value::Hash() const {
  size_t seed = data_.index() * 0x9e3779b97f4a7c15ULL;
  size_t h = 0;
  if (is_int()) {
    h = std::hash<int64_t>()(as_int());
  } else if (is_double()) {
    h = std::hash<double>()(as_double());
  } else if (is_bool()) {
    h = std::hash<bool>()(as_bool());
  } else {
    h = std::hash<std::string>()(as_string());
  }
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace gqzoo
