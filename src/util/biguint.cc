#include "src/util/biguint.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gqzoo {

BigUint::BigUint(uint64_t v) {
  while (v > 0) {
    digits_.push_back(static_cast<uint32_t>(v % kBase));
    v /= kBase;
  }
}

BigUint BigUint::FromDecimal(const std::string& s) {
  BigUint result;
  BigUint ten(10);
  for (char c : s) {
    if (c < '0' || c > '9') {
      fprintf(stderr, "BigUint::FromDecimal: bad digit '%c'\n", c);
      abort();
    }
    result *= ten;
    result += BigUint(static_cast<uint64_t>(c - '0'));
  }
  return result;
}

void BigUint::Trim() {
  while (!digits_.empty() && digits_.back() == 0) digits_.pop_back();
}

BigUint& BigUint::operator+=(const BigUint& other) {
  const size_t n = std::max(digits_.size(), other.digits_.size());
  digits_.resize(n, 0);
  uint32_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = static_cast<uint64_t>(digits_[i]) + carry +
                   (i < other.digits_.size() ? other.digits_[i] : 0);
    digits_[i] = static_cast<uint32_t>(sum % kBase);
    carry = static_cast<uint32_t>(sum / kBase);
  }
  if (carry != 0) digits_.push_back(carry);
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& other) {
  *this = *this * other;
  return *this;
}

BigUint BigUint::operator+(const BigUint& other) const {
  BigUint result = *this;
  result += other;
  return result;
}

BigUint BigUint::operator*(const BigUint& other) const {
  if (is_zero() || other.is_zero()) return BigUint();
  BigUint result;
  result.digits_.assign(digits_.size() + other.digits_.size(), 0);
  for (size_t i = 0; i < digits_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.digits_.size() || carry != 0; ++j) {
      uint64_t cur = result.digits_[i + j] + carry;
      if (j < other.digits_.size()) {
        cur += static_cast<uint64_t>(digits_[i]) * other.digits_[j];
      }
      result.digits_[i + j] = static_cast<uint32_t>(cur % kBase);
      carry = cur / kBase;
    }
  }
  result.Trim();
  return result;
}

bool BigUint::operator<(const BigUint& other) const {
  if (digits_.size() != other.digits_.size()) {
    return digits_.size() < other.digits_.size();
  }
  for (size_t i = digits_.size(); i-- > 0;) {
    if (digits_[i] != other.digits_[i]) return digits_[i] < other.digits_[i];
  }
  return false;
}

size_t BigUint::NumDecimalDigits() const {
  if (digits_.empty()) return 1;
  size_t count = (digits_.size() - 1) * 9;
  uint32_t top = digits_.back();
  while (top > 0) {
    ++count;
    top /= 10;
  }
  return count;
}

BigUint BigUint::PowerOfTen(unsigned exp) {
  BigUint result(1);
  BigUint ten(10);
  for (unsigned i = 0; i < exp; ++i) result *= ten;
  return result;
}

std::string BigUint::ToString() const {
  if (digits_.empty()) return "0";
  std::string out = std::to_string(digits_.back());
  char buf[16];
  for (size_t i = digits_.size() - 1; i-- > 0;) {
    snprintf(buf, sizeof(buf), "%09u", digits_[i]);
    out += buf;
  }
  return out;
}

double BigUint::ToDouble() const {
  double result = 0;
  for (size_t i = digits_.size(); i-- > 0;) {
    result = result * kBase + digits_[i];
    if (std::isinf(result)) return result;
  }
  return result;
}

}  // namespace gqzoo
