#ifndef GQZOO_UTIL_CANCELLATION_H_
#define GQZOO_UTIL_CANCELLATION_H_

#include "src/util/query_context.h"

namespace gqzoo {

/// The PR-1 `CancellationToken` (deadline + cooperative cancel) grew
/// resource budgets and became `QueryContext`. The alias keeps the
/// original spelling — and the `cancel` field name in every evaluator
/// option struct — working unchanged; see query_context.h for the full
/// story.
using CancellationToken = QueryContext;

}  // namespace gqzoo

#endif  // GQZOO_UTIL_CANCELLATION_H_
