#ifndef GQZOO_UTIL_CANCELLATION_H_
#define GQZOO_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <optional>

namespace gqzoo {

/// Cooperative cancellation for long-running evaluations.
///
/// Several of the paper's languages have provably exponential worst cases
/// (Figure 5 path enumeration, the subset-sum `reduce` query, simple/trail
/// search), so a serving engine must be able to bound a query's runtime.
/// Evaluators cannot be preempted; instead the hot loops poll a token and
/// unwind early when it trips. A token trips either because a deadline
/// passed or because `RequestCancel()` was called (possibly from another
/// thread — all state is atomic).
///
/// `ShouldStop()` is designed for tight loops: it only probes the clock
/// every `kProbeInterval` calls, so the steady-state cost is one relaxed
/// atomic increment.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;

  /// A token that trips `timeout` from now.
  static CancellationToken WithTimeout(Clock::duration timeout) {
    CancellationToken token;
    token.deadline_ = Clock::now() + timeout;
    return token;
  }

  /// Tokens are passed by pointer into evaluators; moving one while an
  /// evaluation holds a pointer to it is a bug, so copies/moves rebuild the
  /// atomics instead of being defaulted.
  CancellationToken(const CancellationToken& o)
      : deadline_(o.deadline_),
        cancelled_(o.cancelled_.load(std::memory_order_relaxed)) {}
  CancellationToken& operator=(const CancellationToken& o) {
    deadline_ = o.deadline_;
    cancelled_.store(o.cancelled_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    probe_count_.store(0, std::memory_order_relaxed);
    return *this;
  }

  /// Trips the token (thread-safe, idempotent).
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once the token has tripped: explicit cancel or deadline passed.
  /// Always probes the clock; use from non-hot paths.
  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_.has_value() && Clock::now() >= *deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Hot-loop check: like `Cancelled()` but only probes the clock every
  /// `kProbeInterval` calls, so cancellation lags by at most that many loop
  /// iterations.
  bool ShouldStop() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!deadline_.has_value()) return false;
    uint32_t n = probe_count_.fetch_add(1, std::memory_order_relaxed);
    if ((n & (kProbeInterval - 1)) != 0) return false;
    return Cancelled();
  }

  std::optional<Clock::time_point> deadline() const { return deadline_; }

 private:
  static constexpr uint32_t kProbeInterval = 64;  // must be a power of two

  std::optional<Clock::time_point> deadline_;
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<uint32_t> probe_count_{0};
};

/// Null-safe helper for evaluators that take an optional token pointer.
inline bool ShouldStop(const CancellationToken* token) {
  return token != nullptr && token->ShouldStop();
}

}  // namespace gqzoo

#endif  // GQZOO_UTIL_CANCELLATION_H_
