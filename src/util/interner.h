#ifndef GQZOO_UTIL_INTERNER_H_
#define GQZOO_UTIL_INTERNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gqzoo {

/// Interns strings to dense `uint32_t` ids.
///
/// Used for the countable sets of the data model (Section 2): `Labels`,
/// `Properties`, and display names of nodes/edges. Dense ids let the
/// automata and product-graph layers index by label in O(1).
class Interner {
 public:
  static constexpr uint32_t kInvalid = UINT32_MAX;

  /// Returns the id of `name`, interning it if new.
  uint32_t Intern(const std::string& name);

  /// Returns the id of `name` if already interned.
  std::optional<uint32_t> Find(const std::string& name) const;

  /// Returns the string for `id`; `id` must be valid.
  const std::string& NameOf(uint32_t id) const;

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

/// Combines a hash into a seed (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace gqzoo

#endif  // GQZOO_UTIL_INTERNER_H_
