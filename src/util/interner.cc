#include "src/util/interner.h"

#include <cassert>

namespace gqzoo {

uint32_t Interner::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::optional<uint32_t> Interner::Find(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Interner::NameOf(uint32_t id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace gqzoo
