#include "src/util/query_context.h"

#include <cstdio>

namespace gqzoo {

namespace {

// "12345678" or "unlimited" for a budget of 0.
std::string BudgetToString(uint64_t budget) {
  if (budget == 0) return "unlimited";
  char buf[32];
  snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(budget));
  return buf;
}

}  // namespace

std::string BudgetReport::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "cause=%s memory=%llu/%s bytes (peak %llu) rows=%llu/%s "
           "steps=%llu/%s",
           StopCauseName(cause),
           static_cast<unsigned long long>(memory_bytes),
           BudgetToString(budgets.memory_bytes).c_str(),
           static_cast<unsigned long long>(memory_peak_bytes),
           static_cast<unsigned long long>(result_rows),
           BudgetToString(budgets.result_rows).c_str(),
           static_cast<unsigned long long>(steps),
           BudgetToString(budgets.steps).c_str());
  return buf;
}

}  // namespace gqzoo
