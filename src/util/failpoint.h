#ifndef GQZOO_UTIL_FAILPOINT_H_
#define GQZOO_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace gqzoo {

/// Deterministic fault injection at named sites.
///
/// Graceful-degradation paths (budget exhaustion, cancellation, simulated
/// allocation failure) are hard to hit on demand from the outside — a test
/// either over-sizes the workload (slow, fragile) or never exercises the
/// unwind at all. A fail-point is a named hook compiled into the hot path;
/// tests arm it with `Failpoint::Arm("crpq.join.alloc", after_n)` and the
/// site fires exactly once on its `after_n`-th pass, then disarms itself.
///
/// The disarmed fast path is one relaxed atomic load of a global counter,
/// so production code pays essentially nothing for carrying the hooks.
///
/// Named sites in this codebase (grep for `Failpoint::ShouldFail`):
///   "rpq.product.bfs"     product-graph BFS setup    → memory exhaustion
///   "crpq.join.alloc"     join output-tuple alloc    → memory exhaustion
///   "crpq.wcoj.alloc"     wcoj result-tuple alloc    → memory exhaustion
///                         (crpq, dl-crpq, and coregql wcoj groups)
///   "coregql.frontier"    group-repeat frontier round → memory exhaustion
///   "pmr.enumerate.emit"  path-binding emission      → cancellation
///   "datatest.recurse"    dl-RPQ configuration step  → step-budget trip
///   "engine.submit"       engine admission           → forced shed
///   "engine.apply_mutation" write-batch admission    → forced write shed
///
/// Durability crash sites (see src/storage): these points are armed with
/// `ArmCrash` (or `ArmFromEnv` in a child process) and kill the process
/// mid-operation instead of returning an error, so recovery can be tested
/// against every interesting interleaving of write/fsync/rename:
///   "storage.wal.append.before"       before the record hits the file
///   "storage.wal.append.torn"         after `arg` bytes of the record
///   "storage.wal.append.before_sync"  record written, not yet fsynced
///   "storage.wal.append.after_sync"   record durable, ack not returned
///   "storage.ckpt.write.torn"         after `arg` bytes of the temp file
///   "storage.ckpt.before_rename"      temp durable, not yet visible
///   "storage.ckpt.after_rename"       checkpoint visible, WAL not rotated
///   "storage.wal.rotate.torn"         after `arg` bytes of the new WAL
///   "storage.wal.rotate.before_rename" new WAL durable, not yet visible
///   "storage.wal.rotate.after_rename" rotated, old checkpoints not pruned
class Failpoint {
 public:
  /// How a crash-armed point takes the process down when it fires.
  enum class CrashMode : uint8_t {
    kNone = 0,  // soft failure: ShouldFail returns true, process survives
    kExit,      // _exit(42): no destructors, no atexit, buffers dropped
    kKill,      // raise(SIGKILL): the kernel reaps us mid-instruction
  };

  /// Arms `name`: `ShouldFail(name)` returns false for the first `after_n`
  /// passes, fires (returns true) exactly once on the next pass, then the
  /// point disarms itself. Re-arming an armed point resets its pass count.
  static void Arm(const std::string& name, uint64_t after_n = 0);

  /// Arms `name` like `Arm`, additionally recording a crash mode and an
  /// integer argument (torn-write sites read it as "bytes to keep"). The
  /// mode and argument survive the point's fire-once self-disarm so the
  /// site can still consult them on its way down.
  static void ArmCrash(const std::string& name, CrashMode mode,
                       uint64_t after_n = 0, uint64_t arg = 0);

  /// The crash mode `name` was last armed with (kNone when never
  /// crash-armed). Readable after the point fired.
  static CrashMode CrashModeFor(const char* name);

  /// The integer argument `name` was last armed with (0 by default).
  static uint64_t ArgFor(const char* name);

  /// Kills the process via `name`'s armed crash mode (kExit semantics when
  /// the mode is kNone — callers use this for sites that always crash,
  /// e.g. simulated torn writes). Never returns.
  [[noreturn]] static void CrashNow(const char* name);

  /// CrashNow when `name` is crash-armed (mode != kNone); returns
  /// otherwise. The standard follow-up to a fired ShouldFail at sites that
  /// support both soft-error and crash injection.
  static void MaybeCrash(const char* name);

  /// Arms points from `getenv(env_var)`, a comma-separated list of
  /// `site[:mode[:after_n[:arg]]]` clauses with mode ∈ {exit, kill, fail}
  /// (default exit). Returns the number of points armed. The crash harness
  /// arms child processes this way (e.g.
  /// `GQZOO_FAILPOINTS=storage.wal.append.torn:exit:3:17`).
  static size_t ArmFromEnv(const char* env_var = "GQZOO_FAILPOINTS");

  /// Disarms `name` (no-op when not armed). Fire counts are retained.
  static void Disarm(const std::string& name);

  /// Disarms every point. Call from test teardown.
  static void DisarmAll();

  /// How many times `name` has fired since the process started.
  static uint64_t FireCount(const std::string& name);

  /// The injection site hook. `name` should be a string literal.
  static bool ShouldFail(const char* name) {
    if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
    return ShouldFailSlow(name);
  }

 private:
  static bool ShouldFailSlow(const char* name);

  // Number of currently armed points; the fast-path gate.
  static inline std::atomic<int> armed_count_{0};
};

/// Test helper: arms a point for the current scope, disarms on exit.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string name, uint64_t after_n = 0)
      : name_(std::move(name)) {
    Failpoint::Arm(name_, after_n);
  }
  ~ScopedFailpoint() { Failpoint::Disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace gqzoo

#endif  // GQZOO_UTIL_FAILPOINT_H_
