#ifndef GQZOO_UTIL_FAILPOINT_H_
#define GQZOO_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace gqzoo {

/// Deterministic fault injection at named sites.
///
/// Graceful-degradation paths (budget exhaustion, cancellation, simulated
/// allocation failure) are hard to hit on demand from the outside — a test
/// either over-sizes the workload (slow, fragile) or never exercises the
/// unwind at all. A fail-point is a named hook compiled into the hot path;
/// tests arm it with `Failpoint::Arm("crpq.join.alloc", after_n)` and the
/// site fires exactly once on its `after_n`-th pass, then disarms itself.
///
/// The disarmed fast path is one relaxed atomic load of a global counter,
/// so production code pays essentially nothing for carrying the hooks.
///
/// Named sites in this codebase (grep for `Failpoint::ShouldFail`):
///   "rpq.product.bfs"     product-graph BFS setup    → memory exhaustion
///   "crpq.join.alloc"     join output-tuple alloc    → memory exhaustion
///   "coregql.frontier"    group-repeat frontier round → memory exhaustion
///   "pmr.enumerate.emit"  path-binding emission      → cancellation
///   "datatest.recurse"    dl-RPQ configuration step  → step-budget trip
///   "engine.submit"       engine admission           → forced shed
///   "engine.apply_mutation" write-batch admission    → forced write shed
class Failpoint {
 public:
  /// Arms `name`: `ShouldFail(name)` returns false for the first `after_n`
  /// passes, fires (returns true) exactly once on the next pass, then the
  /// point disarms itself. Re-arming an armed point resets its pass count.
  static void Arm(const std::string& name, uint64_t after_n = 0);

  /// Disarms `name` (no-op when not armed). Fire counts are retained.
  static void Disarm(const std::string& name);

  /// Disarms every point. Call from test teardown.
  static void DisarmAll();

  /// How many times `name` has fired since the process started.
  static uint64_t FireCount(const std::string& name);

  /// The injection site hook. `name` should be a string literal.
  static bool ShouldFail(const char* name) {
    if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
    return ShouldFailSlow(name);
  }

 private:
  static bool ShouldFailSlow(const char* name);

  // Number of currently armed points; the fast-path gate.
  static inline std::atomic<int> armed_count_{0};
};

/// Test helper: arms a point for the current scope, disarms on exit.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string name, uint64_t after_n = 0)
      : name_(std::move(name)) {
    Failpoint::Arm(name_, after_n);
  }
  ~ScopedFailpoint() { Failpoint::Disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace gqzoo

#endif  // GQZOO_UTIL_FAILPOINT_H_
