#ifndef GQZOO_UTIL_VALUE_H_
#define GQZOO_UTIL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace gqzoo {

/// Comparison operators of the element-test grammar of Section 3.2.1
/// (`op ∈ {=, ≠, <, >}`), extended with `<=` and `>=` for usability in the
/// concrete syntax (they are expressible as disjunctions, Remark 20).
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
};

/// Returns the textual spelling of `op` ("=", "!=", "<", ">", "<=", ">=").
const char* CompareOpName(CompareOp op);

/// Escapes `s` for embedding inside a double-quoted literal of the text
/// formats (graph files, shell mutations, WAL payloads): `\` → `\\`,
/// `"` → `\"`, and newline/tab/CR → `\n`/`\t`/`\r`. Inverse of
/// `UnescapeStringLiteral`, so any byte string survives a quote →
/// re-lex round trip.
std::string EscapeStringLiteral(const std::string& s);

/// Resolves the escape sequences produced by `EscapeStringLiteral`. An
/// unknown escape `\x` yields `x` and a trailing lone `\` is dropped
/// (matching the historical lexer behavior for hand-written files).
std::string UnescapeStringLiteral(const std::string& s);

/// A property value (the set `Values` of the paper).
///
/// Values are atomic: 64-bit integers, doubles, strings, or booleans.
/// Ordered comparisons are defined within numeric types (ints and doubles
/// compare numerically with each other) and within strings (lexicographic);
/// any other cross-type ordered comparison is false, and equality across
/// non-numeric types is false rather than an error, matching the paper's
/// use of values purely inside filter predicates (Remark 19).
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(int v) : data_(int64_t{v}) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}
  explicit Value(bool v) : data_(v) {}

  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  bool as_bool() const { return std::get<bool>(data_); }

  /// Numeric view (valid only when is_numeric()).
  double ToDouble() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// Strict structural equality (same type, same value). Used for
  /// deduplication and hashing, *not* for query predicates.
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total structural order (by type index, then value). Used for sorting
  /// and set containers, *not* for query predicates.
  bool operator<(const Value& other) const;

  /// Query-level comparison per the semantics above. Returns false for
  /// incomparable combinations.
  static bool Compare(const Value& lhs, CompareOp op, const Value& rhs);

  /// Renders the value for output ("42", "3.5", "\"abc\"", "true").
  std::string ToString() const;

  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::string, bool> data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace gqzoo

#endif  // GQZOO_UTIL_VALUE_H_
