#ifndef GQZOO_UTIL_BIGUINT_H_
#define GQZOO_UTIL_BIGUINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gqzoo {

/// Arbitrary-precision unsigned integer.
///
/// Needed by the bag-semantics experiment (E5 in DESIGN.md): the paper's
/// Section 6.1 claims that evaluating `(((a*)*)*)*` on a 6-clique under
/// SPARQL-2012 bag semantics produces more answers than the number of
/// protons in the observable universe (~10^80). We reproduce the exact
/// count, which does not fit in any machine integer.
///
/// Digits are stored little-endian in base 10^9.
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(uint64_t v);

  /// Parses a decimal string; aborts on non-digit input (programmer error).
  static BigUint FromDecimal(const std::string& s);

  bool is_zero() const { return digits_.empty(); }

  BigUint& operator+=(const BigUint& other);
  BigUint& operator*=(const BigUint& other);
  BigUint operator+(const BigUint& other) const;
  BigUint operator*(const BigUint& other) const;

  bool operator==(const BigUint& other) const { return digits_ == other.digits_; }
  bool operator!=(const BigUint& other) const { return !(*this == other); }
  bool operator<(const BigUint& other) const;
  bool operator>(const BigUint& other) const { return other < *this; }
  bool operator<=(const BigUint& other) const { return !(other < *this); }
  bool operator>=(const BigUint& other) const { return !(*this < other); }

  /// Number of decimal digits (0 has one digit).
  size_t NumDecimalDigits() const;

  /// 10^exp.
  static BigUint PowerOfTen(unsigned exp);

  std::string ToString() const;

  /// Approximate double value; +inf when out of range.
  double ToDouble() const;

 private:
  static constexpr uint32_t kBase = 1000000000;  // 10^9

  void Trim();

  std::vector<uint32_t> digits_;  // little-endian base-10^9; empty == 0
};

}  // namespace gqzoo

#endif  // GQZOO_UTIL_BIGUINT_H_
