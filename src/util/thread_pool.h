#ifndef GQZOO_UTIL_THREAD_POOL_H_
#define GQZOO_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gqzoo {

/// A fixed-size thread pool with a FIFO task queue — the execution
/// substrate of the query engine. Deliberately minimal: deadlines and
/// cancellation are handled cooperatively inside tasks (CancellationToken),
/// never by killing threads, so a pool thread is always safe to reuse.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1; 0 means
  /// hardware_concurrency).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains: waits for queued and running tasks to finish, then joins.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not block indefinitely on other queued
  /// tasks (the pool is fixed-size and has no work stealing).
  ///
  /// Returns false — and drops the task — once `Shutdown()` has begun.
  /// Submitting to a shutting-down pool used to race silently (the task
  /// could be queued and never run); now it is a visible, testable error
  /// the caller must handle.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued, and joins the
  /// workers. Idempotent and thread-safe; invoked by the destructor.
  void Shutdown();

  /// Blocks until the queue is empty and all workers are idle.
  void Drain();

  size_t num_threads() const { return workers_.size(); }
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable wake_;   // workers wait for tasks / shutdown
  std::condition_variable idle_;   // Drain() waits for quiescence
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::once_flag joined_;
  std::vector<std::thread> workers_;
};

}  // namespace gqzoo

#endif  // GQZOO_UTIL_THREAD_POOL_H_
