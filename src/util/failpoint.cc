#include "src/util/failpoint.h"

#include <map>
#include <mutex>

namespace gqzoo {

namespace {

struct PointState {
  bool armed = false;
  uint64_t after_n = 0;  // passes to skip before firing
  uint64_t passes = 0;   // passes seen since (re-)arming
  uint64_t fired = 0;    // lifetime fire count
};

std::mutex* RegistryMutex() {
  static std::mutex* mu = new std::mutex;
  return mu;
}

std::map<std::string, PointState>* Registry() {
  static auto* registry = new std::map<std::string, PointState>;
  return registry;
}

}  // namespace

void Failpoint::Arm(const std::string& name, uint64_t after_n) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  PointState& state = (*Registry())[name];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.after_n = after_n;
  state.passes = 0;
}

void Failpoint::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  auto it = Registry()->find(name);
  if (it == Registry()->end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void Failpoint::DisarmAll() {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  for (auto& [name, state] : *Registry()) {
    if (state.armed) {
      state.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t Failpoint::FireCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  auto it = Registry()->find(name);
  return it == Registry()->end() ? 0 : it->second.fired;
}

bool Failpoint::ShouldFailSlow(const char* name) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  auto it = Registry()->find(name);
  if (it == Registry()->end() || !it->second.armed) return false;
  PointState& state = it->second;
  if (state.passes++ < state.after_n) return false;
  // Fire once, then disarm so the unwind path isn't re-injected.
  state.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  ++state.fired;
  return true;
}

}  // namespace gqzoo
