#include "src/util/failpoint.h"

#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>
#include <unistd.h>

namespace gqzoo {

namespace {

struct PointState {
  bool armed = false;
  uint64_t after_n = 0;  // passes to skip before firing
  uint64_t passes = 0;   // passes seen since (re-)arming
  uint64_t fired = 0;    // lifetime fire count
  // Crash-arming extras; retained across the fire-once self-disarm so the
  // site can read them while going down.
  Failpoint::CrashMode crash = Failpoint::CrashMode::kNone;
  uint64_t arg = 0;
};

std::mutex* RegistryMutex() {
  static std::mutex* mu = new std::mutex;
  return mu;
}

std::map<std::string, PointState>* Registry() {
  static auto* registry = new std::map<std::string, PointState>;
  return registry;
}

}  // namespace

void Failpoint::Arm(const std::string& name, uint64_t after_n) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  PointState& state = (*Registry())[name];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.after_n = after_n;
  state.passes = 0;
  state.crash = CrashMode::kNone;  // soft arm overrides a stale crash arm
  state.arg = 0;
}

void Failpoint::ArmCrash(const std::string& name, CrashMode mode,
                         uint64_t after_n, uint64_t arg) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  PointState& state = (*Registry())[name];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.after_n = after_n;
  state.passes = 0;
  state.crash = mode;
  state.arg = arg;
}

Failpoint::CrashMode Failpoint::CrashModeFor(const char* name) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  auto it = Registry()->find(name);
  return it == Registry()->end() ? CrashMode::kNone : it->second.crash;
}

uint64_t Failpoint::ArgFor(const char* name) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  auto it = Registry()->find(name);
  return it == Registry()->end() ? 0 : it->second.arg;
}

void Failpoint::CrashNow(const char* name) {
  CrashMode mode = CrashModeFor(name);
  if (mode == CrashMode::kKill) {
    ::raise(SIGKILL);
  }
  // kExit, kNone (always-crash sites), or a SIGKILL that somehow returned.
  ::_exit(42);
}

void Failpoint::MaybeCrash(const char* name) {
  if (CrashModeFor(name) != CrashMode::kNone) CrashNow(name);
}

size_t Failpoint::ArmFromEnv(const char* env_var) {
  const char* spec = std::getenv(env_var);
  if (spec == nullptr || *spec == '\0') return 0;
  size_t armed = 0;
  std::string s(spec);
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string clause = s.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) continue;
    // site[:mode[:after_n[:arg]]]
    std::string fields[4];
    size_t nfields = 0, fpos = 0;
    while (nfields < 4) {
      size_t colon = clause.find(':', fpos);
      if (colon == std::string::npos) {
        fields[nfields++] = clause.substr(fpos);
        break;
      }
      fields[nfields++] = clause.substr(fpos, colon - fpos);
      fpos = colon + 1;
    }
    if (fields[0].empty()) continue;
    CrashMode mode = CrashMode::kExit;
    if (fields[1] == "kill") {
      mode = CrashMode::kKill;
    } else if (fields[1] == "fail") {
      mode = CrashMode::kNone;
    }
    uint64_t after_n = fields[2].empty() ? 0 : std::strtoull(fields[2].c_str(), nullptr, 10);
    uint64_t arg = fields[3].empty() ? 0 : std::strtoull(fields[3].c_str(), nullptr, 10);
    ArmCrash(fields[0], mode, after_n, arg);
    ++armed;
  }
  return armed;
}

void Failpoint::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  auto it = Registry()->find(name);
  if (it == Registry()->end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void Failpoint::DisarmAll() {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  for (auto& [name, state] : *Registry()) {
    if (state.armed) {
      state.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t Failpoint::FireCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  auto it = Registry()->find(name);
  return it == Registry()->end() ? 0 : it->second.fired;
}

bool Failpoint::ShouldFailSlow(const char* name) {
  std::lock_guard<std::mutex> lock(*RegistryMutex());
  auto it = Registry()->find(name);
  if (it == Registry()->end() || !it->second.armed) return false;
  PointState& state = it->second;
  if (state.passes++ < state.after_n) return false;
  // Fire once, then disarm so the unwind path isn't re-injected.
  state.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
  ++state.fired;
  return true;
}

}  // namespace gqzoo
