#ifndef GQZOO_UTIL_QUERY_CONTEXT_H_
#define GQZOO_UTIL_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace gqzoo {

/// Why a `QueryContext` tripped. The first cause to fire wins; later trips
/// are ignored so the report names the budget that actually stopped the
/// query.
enum class StopCause : uint8_t {
  kNone = 0,
  kCancelled,     // RequestCancel() was called
  kDeadline,      // the deadline passed
  kMemoryBudget,  // accounted bytes exceeded the memory budget
  kRowBudget,     // emitted rows exceeded the result-row budget
  kStepBudget,    // hot-loop iterations exceeded the step (fuel) budget
};

inline const char* StopCauseName(StopCause cause) {
  switch (cause) {
    case StopCause::kNone: return "NONE";
    case StopCause::kCancelled: return "CANCELLED";
    case StopCause::kDeadline: return "DEADLINE";
    case StopCause::kMemoryBudget: return "MEMORY_BUDGET";
    case StopCause::kRowBudget: return "ROW_BUDGET";
    case StopCause::kStepBudget: return "STEP_BUDGET";
  }
  return "UNKNOWN";
}

/// Per-query resource ceilings. 0 means unlimited. Memory is *accounted*,
/// not measured: evaluators charge approximate sizes for the structures
/// whose growth the paper's adversarial instances drive to blow up
/// (BFS/DFS frontiers, join tuples × row width, product-automaton state
/// bitmaps, PMR nodes, emitted path bindings).
struct ResourceBudgets {
  uint64_t memory_bytes = 0;
  uint64_t result_rows = 0;
  uint64_t steps = 0;

  bool any() const {
    return memory_bytes != 0 || result_rows != 0 || steps != 0;
  }
};

/// Structured snapshot of a query's resource consumption — which budget
/// tripped (if any), how much of each resource was consumed, and how far
/// the evaluation got. Returned verbatim in `kResourceExhausted` messages.
struct BudgetReport {
  StopCause cause = StopCause::kNone;
  ResourceBudgets budgets;
  uint64_t memory_bytes = 0;       // currently accounted
  uint64_t memory_peak_bytes = 0;  // high-water mark
  uint64_t result_rows = 0;        // rows emitted before the stop
  uint64_t steps = 0;              // hot-loop iterations executed

  std::string ToString() const;
};

/// Everything an evaluator needs to run *governed*: a deadline, a
/// cancellation flag, and resource budgets, polled cooperatively from the
/// same hot loops.
///
/// This generalizes the PR-1 `CancellationToken` (which only carried
/// deadline + cancel); that name survives as an alias, so existing call
/// sites and the `cancel` field in evaluator option structs are unchanged.
/// Several of the paper's languages have provably exponential worst cases
/// in *space* as well as time (Figure 5 path enumeration holds 2^n paths,
/// the 6-clique bag-semantics query counts ~10^80 walks), so a deadline
/// alone cannot keep a hostile query from taking the process down — the
/// budgets bound space and fuel cooperatively the same way the deadline
/// bounds time.
///
/// All mutation is on `mutable` relaxed atomics so a `const QueryContext*`
/// can be shared across threads; `ShouldStop()` stays one relaxed
/// fetch_add in the steady state (the step counter doubles as the clock
/// probe throttle).
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  QueryContext() = default;

  /// A context whose deadline trips `timeout` from now.
  static QueryContext WithTimeout(Clock::duration timeout) {
    return WithDeadline(Clock::now() + timeout);
  }

  /// A context with an absolute deadline — used by the engine to anchor
  /// the clock at admission time, so queue wait counts against the query.
  static QueryContext WithDeadline(Clock::time_point deadline) {
    QueryContext ctx;
    ctx.deadline_ = deadline;
    return ctx;
  }

  /// Contexts are passed by pointer into evaluators; moving one while an
  /// evaluation holds a pointer to it is a bug, so copies/moves rebuild
  /// the atomics instead of being defaulted.
  QueryContext(const QueryContext& o)
      : deadline_(o.deadline_),
        budgets_(o.budgets_),
        external_cancel_(o.external_cancel_),
        cause_(o.cause_.load(std::memory_order_relaxed)),
        steps_(o.steps_.load(std::memory_order_relaxed)),
        memory_(o.memory_.load(std::memory_order_relaxed)),
        memory_peak_(o.memory_peak_.load(std::memory_order_relaxed)),
        rows_(o.rows_.load(std::memory_order_relaxed)) {}
  QueryContext& operator=(const QueryContext& o) {
    deadline_ = o.deadline_;
    budgets_ = o.budgets_;
    external_cancel_ = o.external_cancel_;
    cause_.store(o.cause_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    steps_.store(o.steps_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    memory_.store(o.memory_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    memory_peak_.store(o.memory_peak_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    rows_.store(o.rows_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  /// Installs budgets. Call before handing the context to an evaluator;
  /// budgets are plain fields, not atomics.
  void set_budgets(const ResourceBudgets& budgets) { budgets_ = budgets; }
  const ResourceBudgets& budgets() const { return budgets_; }

  /// Attaches an external cancellation flag owned by the caller (the
  /// network server's per-connection disconnect/cancel signal). The flag is
  /// polled wherever the deadline is probed; once it reads true the context
  /// trips with `kCancelled`. The flag must outlive every evaluation that
  /// holds this context. Plain field, not atomic: install before handing
  /// the context to an evaluator, like budgets.
  void set_external_cancel(const std::atomic<bool>* flag) {
    external_cancel_ = flag;
  }
  const std::atomic<bool>* external_cancel() const { return external_cancel_; }

  /// Trips the context (thread-safe, idempotent).
  void RequestCancel() const { Trip(StopCause::kCancelled); }

  /// Records `cause` as the stop reason if nothing tripped yet. Public so
  /// fail-points can inject any failure mode at a named site.
  void Trip(StopCause cause) const {
    uint8_t expected = 0;
    cause_.compare_exchange_strong(expected, static_cast<uint8_t>(cause),
                                   std::memory_order_relaxed);
  }

  /// True once the context has tripped for any reason. Always probes the
  /// clock (and the external cancel flag); use from non-hot paths.
  bool Cancelled() const {
    if (cause_.load(std::memory_order_relaxed) != 0) return true;
    if (external_cancel_ != nullptr &&
        external_cancel_->load(std::memory_order_acquire)) {
      Trip(StopCause::kCancelled);
      return true;
    }
    if (deadline_.has_value() && Clock::now() >= *deadline_) {
      Trip(StopCause::kDeadline);
      return true;
    }
    return false;
  }

  /// Hot-loop check: one relaxed fetch_add in the steady state. Each call
  /// burns one unit of the step budget; the clock is only probed every
  /// `kProbeInterval` calls, so deadline detection lags by at most that
  /// many loop iterations.
  bool ShouldStop() const {
    if (cause_.load(std::memory_order_relaxed) != 0) return true;
    uint64_t n = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (budgets_.steps != 0 && n > budgets_.steps) {
      Trip(StopCause::kStepBudget);
      return true;
    }
    if ((deadline_.has_value() || external_cancel_ != nullptr) &&
        (n & (kProbeInterval - 1)) == 0) {
      return Cancelled();
    }
    return false;
  }

  /// Accounts `bytes` against the memory budget. Returns false (and trips
  /// the context) when the budget is exceeded; the caller should unwind,
  /// keeping whatever partial state it has. Charges are approximate by
  /// design — they track the dominant growth terms, not every allocation.
  bool ChargeMemory(uint64_t bytes) const {
    uint64_t now = memory_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t peak = memory_peak_.load(std::memory_order_relaxed);
    while (peak < now &&
           !memory_peak_.compare_exchange_weak(peak, now,
                                               std::memory_order_relaxed)) {
    }
    if (budgets_.memory_bytes != 0 && now > budgets_.memory_bytes) {
      Trip(StopCause::kMemoryBudget);
      return false;
    }
    return true;
  }

  /// Returns a previous charge (e.g. a frontier round that was dropped).
  void ReleaseMemory(uint64_t bytes) const {
    memory_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Accounts `n` result rows. Returns false (and trips) over budget.
  bool ChargeRows(uint64_t n = 1) const {
    uint64_t now = rows_.fetch_add(n, std::memory_order_relaxed) + n;
    if (budgets_.result_rows != 0 && now > budgets_.result_rows) {
      Trip(StopCause::kRowBudget);
      return false;
    }
    return true;
  }

  /// Fork/merge support for source-sharded evaluation. A shard runs
  /// against its own *copy* of the parent context (same deadline and
  /// budgets; counters snapshotted as a base), so the hot-loop atomics
  /// stay core-local instead of ping-ponging one cache line between
  /// shards. When a shard finishes (or trips), the parent absorbs the
  /// shard's consumption *delta* relative to `base` plus its stop cause;
  /// `Trip`'s compare-exchange makes the first merged cause win. Budget
  /// enforcement during the run is per-shard (each shard is bounded by the
  /// full remaining budget — approximate by design, like all accounting
  /// here); the merged totals are re-checked so the parent trips once the
  /// combined consumption exceeds a budget.
  void MergeShard(const QueryContext& shard, const BudgetReport& base) const {
    steps_.fetch_add(shard.steps() - base.steps, std::memory_order_relaxed);
    rows_.fetch_add(shard.result_rows() - base.result_rows,
                    std::memory_order_relaxed);
    memory_.fetch_add(shard.memory_bytes() - base.memory_bytes,
                      std::memory_order_relaxed);
    uint64_t shard_peak = shard.memory_peak_bytes();
    uint64_t peak = memory_peak_.load(std::memory_order_relaxed);
    while (peak < shard_peak &&
           !memory_peak_.compare_exchange_weak(peak, shard_peak,
                                               std::memory_order_relaxed)) {
    }
    StopCause cause = shard.stop_cause();
    if (cause != StopCause::kNone) Trip(cause);
    if (budgets_.steps != 0 && steps() > budgets_.steps) {
      Trip(StopCause::kStepBudget);
    }
    if (budgets_.memory_bytes != 0 && memory_bytes() > budgets_.memory_bytes) {
      Trip(StopCause::kMemoryBudget);
    }
    if (budgets_.result_rows != 0 && result_rows() > budgets_.result_rows) {
      Trip(StopCause::kRowBudget);
    }
  }

  StopCause stop_cause() const {
    return static_cast<StopCause>(cause_.load(std::memory_order_relaxed));
  }
  std::optional<Clock::time_point> deadline() const { return deadline_; }
  uint64_t memory_bytes() const {
    return memory_.load(std::memory_order_relaxed);
  }
  uint64_t memory_peak_bytes() const {
    return memory_peak_.load(std::memory_order_relaxed);
  }
  uint64_t result_rows() const { return rows_.load(std::memory_order_relaxed); }
  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }

  /// Snapshot for error reporting and metrics.
  BudgetReport Report() const {
    BudgetReport report;
    report.cause = stop_cause();
    report.budgets = budgets_;
    report.memory_bytes = memory_bytes();
    report.memory_peak_bytes = memory_peak_bytes();
    report.result_rows = result_rows();
    report.steps = steps();
    return report;
  }

 private:
  static constexpr uint64_t kProbeInterval = 64;  // must be a power of two

  std::optional<Clock::time_point> deadline_;
  ResourceBudgets budgets_;
  /// Owned by the caller (e.g. a server connection); null for in-process
  /// queries. Read-only here — the owner stores, we load.
  const std::atomic<bool>* external_cancel_ = nullptr;
  mutable std::atomic<uint8_t> cause_{0};  // StopCause; first trip wins
  mutable std::atomic<uint64_t> steps_{0};
  mutable std::atomic<uint64_t> memory_{0};
  mutable std::atomic<uint64_t> memory_peak_{0};
  mutable std::atomic<uint64_t> rows_{0};
};

/// Null-safe helpers for evaluators that take an optional context pointer.
/// An ungoverned evaluation (null context) never stops and never runs out.
inline bool ShouldStop(const QueryContext* ctx) {
  return ctx != nullptr && ctx->ShouldStop();
}
/// Has the context already tripped? Unlike `ShouldStop` this burns no step
/// budget and never probes the clock — the right check for "did we stop?"
/// decisions after a loop, e.g. skipping the final sort of a partial
/// result that the caller is about to discard.
inline bool HasStopped(const QueryContext* ctx) {
  return ctx != nullptr && ctx->stop_cause() != StopCause::kNone;
}
inline bool ChargeMemory(const QueryContext* ctx, uint64_t bytes) {
  return ctx == nullptr || ctx->ChargeMemory(bytes);
}
inline bool ChargeRows(const QueryContext* ctx, uint64_t n = 1) {
  return ctx == nullptr || ctx->ChargeRows(n);
}

/// RAII accumulator for *transient* structures (frontiers, visited sets,
/// join indexes): charges are summed and returned to the context when the
/// scope ends, so back-to-back evaluations inside one query don't leak
/// accounted bytes. Null-safe like the free helpers.
class ScopedMemoryCharge {
 public:
  explicit ScopedMemoryCharge(const QueryContext* ctx) : ctx_(ctx) {}
  ~ScopedMemoryCharge() {
    if (ctx_ != nullptr && total_ != 0) ctx_->ReleaseMemory(total_);
  }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  /// Charges `bytes`; false when the memory budget tripped.
  bool Charge(uint64_t bytes) {
    total_ += bytes;
    return ctx_ == nullptr || ctx_->ChargeMemory(bytes);
  }

  /// Returns part of the accumulated charge early (e.g. a popped frontier
  /// entry or a dropped round).
  void Release(uint64_t bytes) {
    total_ -= bytes;
    if (ctx_ != nullptr) ctx_->ReleaseMemory(bytes);
  }

  uint64_t total() const { return total_; }

 private:
  const QueryContext* ctx_;
  uint64_t total_ = 0;
};

}  // namespace gqzoo

#endif  // GQZOO_UTIL_QUERY_CONTEXT_H_
