#ifndef GQZOO_UTIL_CLI_FLAGS_H_
#define GQZOO_UTIL_CLI_FLAGS_H_

#include <errno.h>
#include <stdio.h>
#include <stdlib.h>

namespace gqzoo {

/// Checked integer flag parsing for the example drivers, replacing the
/// bare `atoi(argv[++i])` pattern: that accepted `--threads banana` as 0
/// and silently wrapped out-of-range values. Parses `value` as a base-10
/// integer, validates it against [min, max], and on any failure prints a
/// usage-style diagnostic to stderr and returns false (callers exit with
/// a usage error). `value` may be null (flag given without an argument).
inline bool ParseFlagInt(const char* flag, const char* value, long long min,
                         long long max, long long* out) {
  if (value == nullptr) {
    fprintf(stderr, "%s needs an integer argument\n", flag);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  long long parsed = strtoll(value, &end, 10);
  if (end == value || *end != '\0') {
    fprintf(stderr, "%s: '%s' is not an integer\n", flag, value);
    return false;
  }
  if (errno == ERANGE || parsed < min || parsed > max) {
    fprintf(stderr, "%s: %s out of range [%lld, %lld]\n", flag, value, min,
            max);
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace gqzoo

#endif  // GQZOO_UTIL_CLI_FLAGS_H_
