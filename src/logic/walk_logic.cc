#include "src/logic/walk_logic.h"

#include <functional>
#include <map>

namespace gqzoo {

namespace {

struct Access : WlFormula {};

std::shared_ptr<Access> Make() { return std::make_shared<Access>(); }

}  // namespace

WlFormulaPtr WlFormula::ExistsNode(std::string x, WlFormulaPtr body) {
  auto f = Make();
  f->kind_ = Kind::kExistsNode;
  f->var1_ = std::move(x);
  f->children_ = {std::move(body)};
  return f;
}

WlFormulaPtr WlFormula::ForallNode(std::string x, WlFormulaPtr body) {
  auto f = Make();
  f->kind_ = Kind::kForallNode;
  f->var1_ = std::move(x);
  f->children_ = {std::move(body)};
  return f;
}

WlFormulaPtr WlFormula::ExistsWalk(std::string walk, std::string x,
                                   std::string y, WlFormulaPtr body) {
  auto f = Make();
  f->kind_ = Kind::kExistsWalk;
  f->var1_ = std::move(walk);
  f->var2_ = std::move(x);
  f->var3_ = std::move(y);
  f->children_ = {std::move(body)};
  return f;
}

WlFormulaPtr WlFormula::ForallWalk(std::string walk, std::string x,
                                   std::string y, WlFormulaPtr body) {
  auto f = Make();
  f->kind_ = Kind::kForallWalk;
  f->var1_ = std::move(walk);
  f->var2_ = std::move(x);
  f->var3_ = std::move(y);
  f->children_ = {std::move(body)};
  return f;
}

WlFormulaPtr WlFormula::ExistsPos(std::string p, std::string walk,
                                  WlFormulaPtr body) {
  auto f = Make();
  f->kind_ = Kind::kExistsPos;
  f->var1_ = std::move(p);
  f->var2_ = std::move(walk);
  f->children_ = {std::move(body)};
  return f;
}

WlFormulaPtr WlFormula::ForallPos(std::string p, std::string walk,
                                  WlFormulaPtr body) {
  auto f = Make();
  f->kind_ = Kind::kForallPos;
  f->var1_ = std::move(p);
  f->var2_ = std::move(walk);
  f->children_ = {std::move(body)};
  return f;
}

WlFormulaPtr WlFormula::PosLess(std::string p, std::string q) {
  auto f = Make();
  f->kind_ = Kind::kPosLess;
  f->var1_ = std::move(p);
  f->var2_ = std::move(q);
  return f;
}

WlFormulaPtr WlFormula::EdgeLabel(std::string p, std::string label) {
  auto f = Make();
  f->kind_ = Kind::kEdgeLabel;
  f->var1_ = std::move(p);
  f->label_ = std::move(label);
  return f;
}

WlFormulaPtr WlFormula::PropCompare(std::string p, std::string k,
                                    CompareOp op, std::string q,
                                    std::string k2) {
  auto f = Make();
  f->kind_ = Kind::kPropCompare;
  f->var1_ = std::move(p);
  f->key1_ = std::move(k);
  f->op_ = op;
  f->var2_ = std::move(q);
  f->key2_ = std::move(k2);
  return f;
}

WlFormulaPtr WlFormula::PropCompareConst(std::string p, std::string k,
                                         CompareOp op, Value c) {
  auto f = Make();
  f->kind_ = Kind::kPropCompareConst;
  f->var1_ = std::move(p);
  f->key1_ = std::move(k);
  f->op_ = op;
  f->constant_ = std::move(c);
  return f;
}

WlFormulaPtr WlFormula::SrcIs(std::string p, std::string x) {
  auto f = Make();
  f->kind_ = Kind::kSrcIs;
  f->var1_ = std::move(p);
  f->var2_ = std::move(x);
  return f;
}

WlFormulaPtr WlFormula::TgtIs(std::string p, std::string x) {
  auto f = Make();
  f->kind_ = Kind::kTgtIs;
  f->var1_ = std::move(p);
  f->var2_ = std::move(x);
  return f;
}

WlFormulaPtr WlFormula::NodeEq(std::string x, std::string y) {
  auto f = Make();
  f->kind_ = Kind::kNodeEq;
  f->var1_ = std::move(x);
  f->var2_ = std::move(y);
  return f;
}

WlFormulaPtr WlFormula::And(WlFormulaPtr a, WlFormulaPtr b) {
  auto f = Make();
  f->kind_ = Kind::kAnd;
  f->children_ = {std::move(a), std::move(b)};
  return f;
}

WlFormulaPtr WlFormula::Or(WlFormulaPtr a, WlFormulaPtr b) {
  auto f = Make();
  f->kind_ = Kind::kOr;
  f->children_ = {std::move(a), std::move(b)};
  return f;
}

WlFormulaPtr WlFormula::Not(WlFormulaPtr a) {
  auto f = Make();
  f->kind_ = Kind::kNot;
  f->children_ = {std::move(a)};
  return f;
}

std::string WlFormula::ToString() const {
  switch (kind_) {
    case Kind::kExistsNode:
      return "exists " + var1_ + ". " + child()->ToString();
    case Kind::kForallNode:
      return "forall " + var1_ + ". " + child()->ToString();
    case Kind::kExistsWalk:
      return "exists walk " + var1_ + "(" + var2_ + ", " + var3_ + "). " +
             child()->ToString();
    case Kind::kForallWalk:
      return "forall walk " + var1_ + "(" + var2_ + ", " + var3_ + "). " +
             child()->ToString();
    case Kind::kExistsPos:
      return "exists " + var1_ + " in " + var2_ + ". " + child()->ToString();
    case Kind::kForallPos:
      return "forall " + var1_ + " in " + var2_ + ". " + child()->ToString();
    case Kind::kPosLess:
      return var1_ + " < " + var2_;
    case Kind::kEdgeLabel:
      return "edge_" + label_ + "(" + var1_ + ")";
    case Kind::kPropCompare:
      return "prop(" + var1_ + ")." + key1_ + " " + CompareOpName(op_) +
             " prop(" + var2_ + ")." + key2_;
    case Kind::kPropCompareConst:
      return "prop(" + var1_ + ")." + key1_ + " " + CompareOpName(op_) + " " +
             constant_.ToString();
    case Kind::kSrcIs:
      return "src(" + var1_ + ") = " + var2_;
    case Kind::kTgtIs:
      return "tgt(" + var1_ + ") = " + var2_;
    case Kind::kNodeEq:
      return var1_ + " = " + var2_;
    case Kind::kAnd:
      return "(" + left()->ToString() + " and " + right()->ToString() + ")";
    case Kind::kOr:
      return "(" + left()->ToString() + " or " + right()->ToString() + ")";
    case Kind::kNot:
      return "not (" + child()->ToString() + ")";
  }
  return "?";
}

namespace {

struct Env {
  std::map<std::string, NodeId> nodes;
  std::map<std::string, std::vector<EdgeId>> walks;  // walk -> edge sequence
  std::map<std::string, std::pair<std::string, size_t>> positions;
  // position var -> (walk var, index)
};

class Checker {
 public:
  Checker(const PropertyGraph& g, const WalkLogicOptions& options)
      : g_(g), options_(options) {}

  Result<bool> Eval(const WlFormula& f, Env* env) {
    switch (f.kind()) {
      case WlFormula::Kind::kExistsNode:
      case WlFormula::Kind::kForallNode: {
        const bool exists = f.kind() == WlFormula::Kind::kExistsNode;
        for (NodeId n = 0; n < g_.NumNodes(); ++n) {
          env->nodes[f.var1()] = n;
          Result<bool> v = Eval(*f.child(), env);
          if (!v.ok()) return v;
          if (v.value() == exists) {
            env->nodes.erase(f.var1());
            return exists;
          }
        }
        env->nodes.erase(f.var1());
        return !exists;
      }
      case WlFormula::Kind::kExistsWalk:
      case WlFormula::Kind::kForallWalk: {
        const bool exists = f.kind() == WlFormula::Kind::kExistsWalk;
        auto from = env->nodes.find(f.var2());
        auto to = env->nodes.find(f.var3());
        if (from == env->nodes.end() || to == env->nodes.end()) {
          return Error("walk endpoints '" + f.var2() + "', '" + f.var3() +
                       "' must be bound node variables");
        }
        NodeId target = to->second;
        bool verdict = !exists;
        bool done = false;
        std::vector<EdgeId> edges;
        // DFS over all walks from `from` up to the bound; evaluate the body
        // whenever the walk ends at `target` (including the empty walk).
        std::function<Result<bool>(NodeId)> dfs =
            [&](NodeId at) -> Result<bool> {
          if (done) return true;
          if (at == target) {
            env->walks[f.var1()] = edges;
            Result<bool> v = Eval(*f.child(), env);
            env->walks.erase(f.var1());
            if (!v.ok()) return v;
            if (v.value() == exists) {
              verdict = exists;
              done = true;
              return true;
            }
          }
          if (edges.size() >= options_.max_walk_length) return true;
          for (EdgeId e : g_.OutEdges(at)) {
            edges.push_back(e);
            Result<bool> sub = dfs(g_.Tgt(e));
            edges.pop_back();
            if (!sub.ok()) return sub;
            if (done) return true;
          }
          return true;
        };
        Result<bool> run = dfs(from->second);
        if (!run.ok()) return run;
        return verdict;
      }
      case WlFormula::Kind::kExistsPos:
      case WlFormula::Kind::kForallPos: {
        const bool exists = f.kind() == WlFormula::Kind::kExistsPos;
        auto walk = env->walks.find(f.var2());
        if (walk == env->walks.end()) {
          return Error("position quantifier over unbound walk '" + f.var2() +
                       "'");
        }
        const size_t len = walk->second.size();
        for (size_t i = 0; i < len; ++i) {
          env->positions[f.var1()] = {f.var2(), i};
          Result<bool> v = Eval(*f.child(), env);
          if (!v.ok()) return v;
          if (v.value() == exists) {
            env->positions.erase(f.var1());
            return exists;
          }
        }
        env->positions.erase(f.var1());
        return !exists;
      }
      case WlFormula::Kind::kPosLess: {
        Result<std::pair<std::string, size_t>> p = Pos(f.var1(), *env);
        if (!p.ok()) return p.error();
        Result<std::pair<std::string, size_t>> q = Pos(f.var2(), *env);
        if (!q.ok()) return q.error();
        return p.value().second < q.value().second;
      }
      case WlFormula::Kind::kEdgeLabel: {
        Result<EdgeId> e = EdgeAt(f.var1(), *env);
        if (!e.ok()) return e.error();
        std::optional<LabelId> l = g_.FindLabel(f.label());
        return l.has_value() && g_.EdgeLabel(e.value()) == *l;
      }
      case WlFormula::Kind::kPropCompare: {
        Result<EdgeId> e1 = EdgeAt(f.var1(), *env);
        if (!e1.ok()) return e1.error();
        Result<EdgeId> e2 = EdgeAt(f.var2(), *env);
        if (!e2.ok()) return e2.error();
        std::optional<Value> a =
            g_.GetProperty(ObjectRef::Edge(e1.value()), f.key1());
        std::optional<Value> b =
            g_.GetProperty(ObjectRef::Edge(e2.value()), f.key2());
        if (!a.has_value() || !b.has_value()) return false;
        return Value::Compare(*a, f.op(), *b);
      }
      case WlFormula::Kind::kPropCompareConst: {
        Result<EdgeId> e = EdgeAt(f.var1(), *env);
        if (!e.ok()) return e.error();
        std::optional<Value> a =
            g_.GetProperty(ObjectRef::Edge(e.value()), f.key1());
        if (!a.has_value()) return false;
        return Value::Compare(*a, f.op(), f.constant());
      }
      case WlFormula::Kind::kSrcIs:
      case WlFormula::Kind::kTgtIs: {
        Result<EdgeId> e = EdgeAt(f.var1(), *env);
        if (!e.ok()) return e.error();
        auto x = env->nodes.find(f.var2());
        if (x == env->nodes.end()) {
          return Error("unbound node variable '" + f.var2() + "'");
        }
        NodeId endpoint = f.kind() == WlFormula::Kind::kSrcIs
                              ? g_.Src(e.value())
                              : g_.Tgt(e.value());
        return endpoint == x->second;
      }
      case WlFormula::Kind::kNodeEq: {
        auto x = env->nodes.find(f.var1());
        auto y = env->nodes.find(f.var2());
        if (x == env->nodes.end() || y == env->nodes.end()) {
          return Error("unbound node variable in equality");
        }
        return x->second == y->second;
      }
      case WlFormula::Kind::kAnd: {
        Result<bool> l = Eval(*f.left(), env);
        if (!l.ok() || !l.value()) return l;
        return Eval(*f.right(), env);
      }
      case WlFormula::Kind::kOr: {
        Result<bool> l = Eval(*f.left(), env);
        if (!l.ok() || l.value()) return l;
        return Eval(*f.right(), env);
      }
      case WlFormula::Kind::kNot: {
        Result<bool> v = Eval(*f.child(), env);
        if (!v.ok()) return v;
        return !v.value();
      }
    }
    return Error("unknown formula kind");
  }

 private:
  Result<std::pair<std::string, size_t>> Pos(const std::string& var,
                                             const Env& env) {
    auto it = env.positions.find(var);
    if (it == env.positions.end()) {
      return Error("unbound position variable '" + var + "'");
    }
    return it->second;
  }

  Result<EdgeId> EdgeAt(const std::string& var, const Env& env) {
    Result<std::pair<std::string, size_t>> pos = Pos(var, env);
    if (!pos.ok()) return pos.error();
    auto walk = env.walks.find(pos.value().first);
    if (walk == env.walks.end()) {
      return Error("position '" + var + "' refers to unbound walk");
    }
    return walk->second[pos.value().second];
  }

  const PropertyGraph& g_;
  const WalkLogicOptions& options_;
};

}  // namespace

Result<bool> CheckWalkLogic(const PropertyGraph& g, const WlFormula& formula,
                            const WalkLogicOptions& options,
                            const std::map<std::string, NodeId>& bindings) {
  Checker checker(g, options);
  Env env;
  env.nodes = bindings;
  return checker.Eval(formula, &env);
}

}  // namespace gqzoo
