#ifndef GQZOO_LOGIC_WALK_LOGIC_H_
#define GQZOO_LOGIC_WALK_LOGIC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/path.h"
#include "src/util/result.h"
#include "src/util/value.h"

namespace gqzoo {

/// A bounded model checker for (a fragment of) *walk logic* — Section
/// 7.1's "A Logic for Graphs" names Hellings et al.'s walk logic as a
/// starting point for a logic in which paths are first-class citizens.
///
/// The fragment:
///   φ := ∃x φ | ∀x φ                    node quantifiers (x over N)
///      | ∃π(x, y) φ | ∀π(x, y) φ        walk quantifiers: π ranges over
///                                        node-to-node walks from x to y
///      | ∃p∈π φ | ∀p∈π φ                position quantifiers: p ranges
///                                        over the *edge positions* of π
///      | p < q                           position order (same walk or not;
///                                        compares indices)
///      | edge_a(p)                       the edge at position p has label a
///      | prop(p).k op prop(q).k'         property comparison between the
///                                        edges at two positions
///      | prop(p).k op c                  comparison against a constant
///      | node(x) = src(p) / tgt(p)       endpoint/incidence tests
///      | x = y                           node equality
///      | φ ∧ φ | φ ∨ φ | ¬φ
///
/// Walk quantifiers are *bounded* by `WalkLogicOptions::max_walk_length`:
/// this is the pragmatic finite-model counterpart the paper reaches for
/// (the unrestricted theory is undecidable — walk logic subsumes the
/// NP-hard "all values distinct" query, and the theory of concatenation
/// is undecidable). ∀π means "for all walks up to the bound".
class WlFormula;
using WlFormulaPtr = std::shared_ptr<const WlFormula>;

class WlFormula {
 public:
  enum class Kind : uint8_t {
    kExistsNode,
    kForallNode,
    kExistsWalk,
    kForallWalk,
    kExistsPos,
    kForallPos,
    kPosLess,
    kEdgeLabel,
    kPropCompare,       // prop(p).k op prop(q).k'
    kPropCompareConst,  // prop(p).k op c
    kSrcIs,             // src(p) = x   (source node of the edge at p)
    kTgtIs,             // tgt(p) = x
    kNodeEq,            // x = y
    kAnd,
    kOr,
    kNot,
  };

  // --- Quantifiers ---
  static WlFormulaPtr ExistsNode(std::string x, WlFormulaPtr body);
  static WlFormulaPtr ForallNode(std::string x, WlFormulaPtr body);
  /// Walks from the node bound to `x` to the node bound to `y`.
  static WlFormulaPtr ExistsWalk(std::string walk, std::string x,
                                 std::string y, WlFormulaPtr body);
  static WlFormulaPtr ForallWalk(std::string walk, std::string x,
                                 std::string y, WlFormulaPtr body);
  /// Positions 0..len(π)-1 (edge positions of the walk bound to `walk`).
  static WlFormulaPtr ExistsPos(std::string p, std::string walk,
                                WlFormulaPtr body);
  static WlFormulaPtr ForallPos(std::string p, std::string walk,
                                WlFormulaPtr body);

  // --- Atoms ---
  static WlFormulaPtr PosLess(std::string p, std::string q);
  static WlFormulaPtr EdgeLabel(std::string p, std::string label);
  static WlFormulaPtr PropCompare(std::string p, std::string k, CompareOp op,
                                  std::string q, std::string k2);
  static WlFormulaPtr PropCompareConst(std::string p, std::string k,
                                       CompareOp op, Value c);
  static WlFormulaPtr SrcIs(std::string p, std::string x);
  static WlFormulaPtr TgtIs(std::string p, std::string x);
  static WlFormulaPtr NodeEq(std::string x, std::string y);

  // --- Connectives ---
  static WlFormulaPtr And(WlFormulaPtr a, WlFormulaPtr b);
  static WlFormulaPtr Or(WlFormulaPtr a, WlFormulaPtr b);
  static WlFormulaPtr Not(WlFormulaPtr a);

  Kind kind() const { return kind_; }
  const std::string& var1() const { return var1_; }
  const std::string& var2() const { return var2_; }
  const std::string& var3() const { return var3_; }
  const std::string& key1() const { return key1_; }
  const std::string& key2() const { return key2_; }
  const std::string& label() const { return label_; }
  CompareOp op() const { return op_; }
  const Value& constant() const { return constant_; }
  const WlFormulaPtr& left() const { return children_[0]; }
  const WlFormulaPtr& right() const { return children_[1]; }
  const WlFormulaPtr& child() const { return children_[0]; }

  std::string ToString() const;

 protected:
  WlFormula() = default;

 private:
  Kind kind_ = Kind::kAnd;
  std::string var1_, var2_, var3_;
  std::string key1_, key2_;
  std::string label_;
  CompareOp op_ = CompareOp::kEq;
  Value constant_;
  std::vector<WlFormulaPtr> children_;
};

struct WalkLogicOptions {
  /// Walk quantifiers range over walks with at most this many edges.
  size_t max_walk_length = 6;
};

/// Bounded model checking: is the formula true on `g`? Node variables may
/// be pre-bound via `bindings` (anchoring endpoints to concrete nodes);
/// any other free variable is an error.
Result<bool> CheckWalkLogic(const PropertyGraph& g, const WlFormula& formula,
                            const WalkLogicOptions& options = {},
                            const std::map<std::string, NodeId>& bindings = {});

}  // namespace gqzoo

#endif  // GQZOO_LOGIC_WALK_LOGIC_H_
