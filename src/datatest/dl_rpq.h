#ifndef GQZOO_DATATEST_DL_RPQ_H_
#define GQZOO_DATATEST_DL_RPQ_H_

#include <optional>
#include <string>
#include <vector>

#include "src/automata/nfa.h"
#include "src/graph/graph.h"
#include "src/regex/ast.h"

namespace gqzoo {

/// A value assignment ν : DataVar → Values (Section 3.2.1), with data
/// variables resolved to dense indices. `std::nullopt` = undefined.
using Valuation = std::vector<std::optional<Value>>;

/// An atom of a dl-RPQ resolved against a property graph: node/edge target,
/// label predicate (for label atoms), and element test (for test atoms).
struct DlAtom {
  Atom::Target target = Atom::Target::kEdge;
  bool is_test = false;

  // Label atoms.
  LabelPred pred;                         // kNone if the label is unknown
  uint32_t capture = UINT32_MAX;          // capture index or kNoCapture

  // Test atoms.
  ElementTest::Kind test_kind = ElementTest::Kind::kAssign;
  PropertyId property = kInvalidId;       // kInvalidId: property not in graph
  uint32_t data_var = UINT32_MAX;         // index into data_var_names
  CompareOp op = CompareOp::kEq;
  Value constant;

  /// Does this atom match object `o` under valuation `nu`? On success,
  /// writes the successor valuation to `*nu_out` (a copy of `nu` with any
  /// `x := pname` effect applied; `nu_out` must not alias `nu`).
  /// Undefined property values make tests fail, and an assignment
  /// from an undefined property does not match (ρ is partial; Remark 19
  /// uses ν only for filtering, so refusing the match is the conservative
  /// reading).
  bool Matches(const PropertyGraph& g, ObjectRef o, const Valuation& nu,
               Valuation* nu_out) const;
};

/// An ε-free NFA over dl atoms (Glushkov of a dl-RPQ, resolved against a
/// property graph). This is the symmetric register-automaton of Section
/// 6.4's "Data Filters" discussion: states × current object × valuation
/// form the configuration space the evaluator explores.
class DlNfa {
 public:
  static constexpr uint32_t kNoCapture = UINT32_MAX;

  struct Transition {
    uint32_t to;
    DlAtom atom;
  };

  /// Compiles a dl-dialect regex. Labels/properties absent from `g`
  /// resolve to match-nothing predicates / always-failing tests.
  static DlNfa FromRegex(const Regex& regex, const PropertyGraph& g);

  /// Number of FromRegex calls since process start (monotone; thread-safe).
  /// Lets tests assert that cached plans do not recompile their automata.
  static uint64_t CompileCount();

  uint32_t num_states() const { return static_cast<uint32_t>(out_.size()); }
  uint32_t initial() const { return 0; }
  bool accepting(uint32_t s) const { return accepting_[s]; }
  const std::vector<Transition>& Out(uint32_t s) const { return out_[s]; }

  const std::vector<std::string>& capture_names() const {
    return capture_names_;
  }
  const std::vector<std::string>& data_var_names() const {
    return data_var_names_;
  }

  /// An all-undefined valuation of the right arity (ν0).
  Valuation InitialValuation() const {
    return Valuation(data_var_names_.size());
  }

 private:
  std::vector<std::vector<Transition>> out_;
  std::vector<bool> accepting_;
  std::vector<std::string> capture_names_;
  std::vector<std::string> data_var_names_;
};

}  // namespace gqzoo

#endif  // GQZOO_DATATEST_DL_RPQ_H_
