#include "src/datatest/dl_eval.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>

#include "src/crpq/join.h"
#include "src/util/failpoint.h"

namespace gqzoo {

namespace {

// Interns valuations so configurations hash/compare by a small id.
class ValuationInterner {
 public:
  uint32_t Intern(const Valuation& nu) {
    auto [it, inserted] = ids_.try_emplace(nu, vals_.size());
    if (inserted) vals_.push_back(nu);
    return it->second;
  }
  const Valuation& Get(uint32_t id) const { return vals_[id]; }

 private:
  std::map<Valuation, uint32_t> ids_;
  std::vector<Valuation> vals_;
};

struct Config {
  uint32_t state;
  ObjectRef obj;
  uint32_t nu;

  bool operator<(const Config& o) const {
    return std::tie(state, obj, nu) < std::tie(o.state, o.obj, o.nu);
  }
};

// Calls `fn(candidate, is_edge_append)` for each object that may extend a
// path whose last object is `last` — the collapse candidate (`last`
// itself) and the append candidates — restricted to objects transition
// atom `atom` can possibly match: an atom only matches objects of its
// target kind (DlAtom::Matches rejects the rest), and an edge-targeting
// *label* atom only edges satisfying its predicate. With a snapshot the
// label case iterates exactly its label slice; without one (or for test
// atoms, whose properties any label may carry) the full adjacency list is
// scanned. The match set is identical either way.
template <typename Fn>
void ForEachSuccessor(const PropertyGraph& g, const GraphSnapshot* snap,
                      const DlAtom& atom, ObjectRef last, Fn fn) {
  fn(last, /*edge_append=*/false);  // collapse: p · path(o) = p
  if (last.is_node()) {
    if (atom.target != Atom::Target::kEdge) return;
    if (snap != nullptr && !atom.is_test) {
      snap->ForEachMatch(last.id, atom.pred, /*inverse=*/false,
                         [&](const GraphSnapshot::Hop& hop) {
                           fn(ObjectRef::Edge(hop.edge), /*edge_append=*/true);
                         });
    } else {
      for (EdgeId e : g.OutEdges(last.id)) {
        fn(ObjectRef::Edge(e), /*edge_append=*/true);
      }
    }
  } else {
    if (atom.target != Atom::Target::kNode) return;
    fn(ObjectRef::Node(g.Tgt(last.id)), /*edge_append=*/false);
  }
}

// Calls `fn(candidate, is_edge)` for each object that can start a path with
// src = u — the node u itself or an out-edge of u — restricted like
// ForEachSuccessor by the transition atom taken first.
template <typename Fn>
void ForEachStart(const PropertyGraph& g, const GraphSnapshot* snap,
                  const DlAtom& atom, NodeId u, Fn fn) {
  if (atom.target == Atom::Target::kNode) {
    fn(ObjectRef::Node(u), /*edge_append=*/false);
    return;
  }
  if (snap != nullptr && !atom.is_test) {
    snap->ForEachMatch(u, atom.pred, /*inverse=*/false,
                       [&](const GraphSnapshot::Hop& hop) {
                         fn(ObjectRef::Edge(hop.edge), /*edge_append=*/true);
                       });
  } else {
    for (EdgeId e : g.OutEdges(u)) {
      fn(ObjectRef::Edge(e), /*edge_append=*/true);
    }
  }
}

NodeId TgtOf(const PropertyGraph& g, ObjectRef o) {
  return o.is_node() ? o.id : g.Tgt(o.id);
}

// Depth-first enumeration of matching (path, µ), with optional
// simple/trail restriction and optional exact-length filter (for
// `shortest`).
class DlDfs {
 public:
  DlDfs(const PropertyGraph& g, const GraphSnapshot* snap, const DlNfa& nfa,
        NodeId target, PathMode mode, const EnumerationLimits& limits,
        size_t exact_length, std::vector<PathBinding>* out)
      : g_(g),
        snap_(snap),
        nfa_(nfa),
        target_(target),
        mode_(mode),
        limits_(limits),
        exact_length_(exact_length),
        out_(out),
        used_nodes_(g.NumNodes(), false),
        used_edges_(g.NumEdges(), false) {}

  EnumerationStats Run(NodeId start) {
    uint32_t nu0 = interner_.Intern(nfa_.InitialValuation());
    for (const DlNfa::Transition& t : nfa_.Out(nfa_.initial())) {
      if (stopped_) break;
      ForEachStart(g_, snap_, t.atom, start, [&](ObjectRef o, bool edge_append) {
        if (stopped_) return;
        TryStep(nfa_.initial(), o, nu0, t, /*collapse=*/false, edge_append,
                /*is_start=*/true);
      });
    }
    return stats_;
  }

 private:
  // Attempts transition `t` onto object `o` from valuation `nu_id`; on
  // match, recurses.
  void TryStep(uint32_t /*from_state*/, ObjectRef o, uint32_t nu_id,
               const DlNfa::Transition& t, bool collapse, bool edge_append,
               bool is_start) {
    Valuation next_nu;
    if (!t.atom.Matches(g_, o, interner_.Get(nu_id), &next_nu)) return;
    size_t new_len = path_len_ + (edge_append ? 1 : 0);
    if (new_len > limits_.max_length ||
        (exact_length_ != SIZE_MAX && new_len > exact_length_)) {
      stats_.truncated = stats_.truncated || exact_length_ == SIZE_MAX;
      return;
    }
    if (!collapse) {
      // Mode restrictions apply to the appended object.
      if (mode_ == PathMode::kSimple && o.is_node() && used_nodes_[o.id]) {
        return;
      }
      if (mode_ == PathMode::kTrail && o.is_edge() && used_edges_[o.id]) {
        return;
      }
    }
    uint32_t next_nu_id = interner_.Intern(next_nu);
    Config config{t.to, o, next_nu_id};
    auto stack_key = std::make_pair(config, new_len);
    if (on_stack_.count(stack_key) > 0) {
      // A zero-progress cycle: the same configuration at the same path
      // length. Continuing can only repeat the same (p, µ) — except when
      // captures fire on collapse steps (e.g. `([a^z])*` pumping one edge
      // into µ(z) forever), in which case the result set is infinite and we
      // truncate it here.
      if (!nfa_.capture_names().empty()) stats_.truncated = true;
      return;
    }
    on_stack_.insert(stack_key);

    // Apply the step.
    size_t saved_len = path_len_;
    path_len_ = new_len;
    bool appended = !collapse;
    if (appended) {
      path_objects_.push_back(o);
      if (o.is_node()) used_nodes_[o.id] = true;
      if (o.is_edge()) used_edges_[o.id] = true;
      if (!t.atom.is_test && t.atom.capture != DlNfa::kNoCapture) {
        mu_.Append(nfa_.capture_names()[t.atom.capture], o);
      }
    } else if (!t.atom.is_test && t.atom.capture != DlNfa::kNoCapture) {
      // A collapse step can still capture: [a^z][a^z] appends the same
      // edge twice to z (the µ concatenation semantics of Section 3.2.1).
      mu_.Append(nfa_.capture_names()[t.atom.capture], o);
    }

    Recurse(config, is_start);

    // Undo.
    if (appended) {
      if (!t.atom.is_test && t.atom.capture != DlNfa::kNoCapture) {
        PopCapture(t.atom.capture);
      }
      path_objects_.pop_back();
      if (o.is_node() && mode_ == PathMode::kSimple) used_nodes_[o.id] = false;
      if (o.is_edge()) used_edges_[o.id] = false;
    } else if (!t.atom.is_test && t.atom.capture != DlNfa::kNoCapture) {
      PopCapture(t.atom.capture);
    }
    path_len_ = saved_len;
    on_stack_.erase(stack_key);
  }

  void PopCapture(uint32_t capture) {
    const std::string& var = nfa_.capture_names()[capture];
    ObjectList& list = mu_.lists[var];
    list.pop_back();
    if (list.empty()) mu_.lists.erase(var);
  }

  void Recurse(const Config& config, bool /*is_start*/) {
    if (stopped_) return;
    if (limits_.cancel != nullptr && Failpoint::ShouldFail("datatest.recurse")) {
      limits_.cancel->Trip(StopCause::kStepBudget);
    }
    if (ShouldStop(limits_.cancel)) {
      stats_.cancelled = true;
      stats_.truncated = true;
      stopped_ = true;
      return;
    }
    // Emit if accepting at the target with the right length.
    if (nfa_.accepting(config.state) && TgtOf(g_, config.obj) == target_ &&
        (exact_length_ == SIZE_MAX || path_len_ == exact_length_)) {
      PathBinding binding{Path::MakeUnchecked(path_objects_), mu_};
      if (!ChargeRows(limits_.cancel) ||
          !ChargeMemory(limits_.cancel, ApproxBytes(binding))) {
        stats_.cancelled = true;
        stats_.truncated = true;
        stopped_ = true;
        return;
      }
      out_->push_back(std::move(binding));
      ++stats_.emitted;
      if (stats_.emitted >= limits_.max_results) {
        stats_.truncated = true;
        stopped_ = true;
        return;
      }
    }
    for (const DlNfa::Transition& t : nfa_.Out(config.state)) {
      if (stopped_) return;
      ForEachSuccessor(g_, snap_, t.atom, config.obj,
                       [&](ObjectRef o, bool edge_append) {
                         if (stopped_) return;
                         bool collapse = o == config.obj;
                         TryStep(config.state, o, config.nu, t, collapse,
                                 edge_append, /*is_start=*/false);
                       });
    }
  }

  const PropertyGraph& g_;
  const GraphSnapshot* snap_;
  const DlNfa& nfa_;
  NodeId target_;
  PathMode mode_;
  const EnumerationLimits& limits_;
  size_t exact_length_;
  std::vector<PathBinding>* out_;
  std::vector<bool> used_nodes_;
  std::vector<bool> used_edges_;
  ValuationInterner interner_;
  std::vector<ObjectRef> path_objects_;
  Binding mu_;
  size_t path_len_ = 0;
  std::set<std::pair<Config, size_t>> on_stack_;
  EnumerationStats stats_;
  bool stopped_ = false;
};

}  // namespace

std::vector<NodeId> DlEvaluator::ReachableFrom(
    NodeId u, const CancellationToken* cancel) const {
  ValuationInterner interner;
  uint32_t nu0 = interner.Intern(nfa_->InitialValuation());
  std::set<Config> visited;
  std::deque<Config> queue;
  std::set<NodeId> reached;

  // The configuration space (state × object × valuation) is the working
  // set of this product reachability; ~48 B per visited entry (set node +
  // Config + the queue slot it transits through).
  ScopedMemoryCharge visited_bytes(cancel);
  bool out_of_budget = false;

  auto try_push = [&](const DlNfa::Transition& t, ObjectRef o,
                      uint32_t nu_id) {
    if (out_of_budget) return;
    Valuation next;
    if (!t.atom.Matches(*g_, o, interner.Get(nu_id), &next)) return;
    Config c{t.to, o, interner.Intern(next)};
    if (visited.insert(c).second) {
      if (!visited_bytes.Charge(48)) {
        out_of_budget = true;
        return;
      }
      queue.push_back(c);
    }
  };

  // Transition-major expansion: each transition enumerates only the
  // candidates its atom can match (its label slice, given a snapshot).
  for (const DlNfa::Transition& t : nfa_->Out(nfa_->initial())) {
    ForEachStart(*g_, snapshot_, t.atom, u,
                 [&](ObjectRef o, bool) { try_push(t, o, nu0); });
  }
  while (!queue.empty() && !out_of_budget) {
    if (ShouldStop(cancel)) break;
    Config c = queue.front();
    queue.pop_front();
    if (nfa_->accepting(c.state)) reached.insert(TgtOf(*g_, c.obj));
    for (const DlNfa::Transition& t : nfa_->Out(c.state)) {
      ForEachSuccessor(*g_, snapshot_, t.atom, c.obj,
                       [&](ObjectRef o, bool) { try_push(t, o, c.nu); });
    }
  }
  return std::vector<NodeId>(reached.begin(), reached.end());
}

std::vector<std::pair<NodeId, NodeId>> DlEvaluator::AllPairs(
    const CancellationToken* cancel) const {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = 0; u < g_->NumNodes(); ++u) {
    if (ShouldStop(cancel)) break;
    for (NodeId v : ReachableFrom(u, cancel)) pairs.emplace_back(u, v);
  }
  return pairs;
}

size_t DlEvaluator::ShortestLength(NodeId u, NodeId v,
                                   const CancellationToken* cancel) const {
  ValuationInterner interner;
  uint32_t nu0 = interner.Intern(nfa_->InitialValuation());
  std::map<Config, size_t> dist;
  std::deque<std::pair<Config, size_t>> queue;  // 0/1-weighted BFS

  // ~64 B per distinct configuration in the distance map.
  ScopedMemoryCharge dist_bytes(cancel);
  bool out_of_budget = false;

  auto relax = [&](const Config& c, size_t d, bool front) {
    if (out_of_budget) return;
    auto it = dist.find(c);
    if (it != dist.end() && it->second <= d) return;
    if (it == dist.end() && !dist_bytes.Charge(64)) {
      out_of_budget = true;
      return;
    }
    dist[c] = d;
    if (front) {
      queue.emplace_front(c, d);
    } else {
      queue.emplace_back(c, d);
    }
  };

  auto expand = [&](const DlNfa::Transition& t, ObjectRef o, uint32_t nu_id,
                    size_t d, bool edge_append) {
    Valuation next;
    if (!t.atom.Matches(*g_, o, interner.Get(nu_id), &next)) return;
    Config c{t.to, o, interner.Intern(next)};
    relax(c, d + (edge_append ? 1 : 0), !edge_append);
  };

  for (const DlNfa::Transition& t : nfa_->Out(nfa_->initial())) {
    ForEachStart(*g_, snapshot_, t.atom, u, [&](ObjectRef o, bool edge_append) {
      expand(t, o, nu0, 0, edge_append);
    });
  }
  size_t best = SIZE_MAX;
  while (!queue.empty() && !out_of_budget) {
    if (ShouldStop(cancel)) break;
    auto [c, d] = queue.front();
    queue.pop_front();
    if (dist[c] != d) continue;  // stale entry
    if (d >= best) continue;
    if (nfa_->accepting(c.state) && TgtOf(*g_, c.obj) == v) {
      best = std::min(best, d);
      continue;
    }
    for (const DlNfa::Transition& t : nfa_->Out(c.state)) {
      ForEachSuccessor(*g_, snapshot_, t.atom, c.obj,
                       [&](ObjectRef o, bool edge_append) {
                         bool is_edge_append = edge_append && !(o == c.obj);
                         expand(t, o, c.nu, d, is_edge_append);
                       });
    }
  }
  return best;
}

std::vector<PathBinding> DlEvaluator::CollectModePaths(
    NodeId u, NodeId v, PathMode mode, const EnumerationLimits& limits,
    EnumerationStats* stats) const {
  std::vector<PathBinding> results;
  EnumerationStats local;
  if (mode == PathMode::kShortest) {
    size_t best = ShortestLength(u, v, limits.cancel);
    if (best != SIZE_MAX) {
      EnumerationLimits bounded = limits;
      bounded.max_length = std::min(bounded.max_length, best);
      DlDfs dfs(*g_, snapshot_, *nfa_, v, PathMode::kAll, bounded, best,
                &results);
      local = dfs.Run(u);
    }
  } else {
    DlDfs dfs(*g_, snapshot_, *nfa_, v, mode, limits, SIZE_MAX, &results);
    local = dfs.Run(u);
  }
  // Skip ordering cancelled (partial, to-be-discarded) results so
  // deadlines stay prompt.
  if (!local.cancelled) {
    std::sort(results.begin(), results.end());
    results.erase(std::unique(results.begin(), results.end()), results.end());
  }
  if (stats != nullptr) *stats = local;
  return results;
}

Result<CrpqResult> EvalDlCrpq(const PropertyGraph& g, const Crpq& q,
                              const DlCrpqEvalOptions& options) {
  using crpq_internal::Dedupe;
  using crpq_internal::NaturalJoin;
  using crpq_internal::ProjectHead;
  using crpq_internal::Relation;

  Result<bool> valid = q.Validate();
  if (!valid.ok()) return valid.error();
  if (q.atoms.empty()) return Error("dl-CRPQ has no atoms");

  // Compile (or borrow from the plan) every atom's automaton up front, and
  // validate constants in textual order so errors are independent of the
  // planner's join order.
  std::vector<DlNfa> local_nfas;
  const std::vector<DlNfa>* nfas = options.atom_nfas;
  if (nfas == nullptr || nfas->size() != q.atoms.size()) {
    local_nfas.reserve(q.atoms.size());
    for (const CrpqAtom& atom : q.atoms) {
      local_nfas.push_back(DlNfa::FromRegex(*atom.regex, g));
    }
    nfas = &local_nfas;
  }
  for (const CrpqAtom& atom : q.atoms) {
    for (const CrpqTerm* t : {&atom.from, &atom.to}) {
      if (t->is_constant && !g.FindNode(t->name).has_value()) {
        return Error("unknown node constant '@" + t->name + "'");
      }
    }
  }

  const std::vector<size_t>* order = options.join_order;
  const bool use_order =
      order != nullptr && order->size() == q.atoms.size();

  // A planned wcoj group needs the snapshot's label slices; without one
  // the binary path silently serves the whole query.
  const rel::WcojSpec* wcoj =
      options.snapshot != nullptr ? options.wcoj : nullptr;
  std::vector<bool> in_core(q.atoms.size(), false);
  if (wcoj != nullptr) {
    for (size_t i : wcoj->conjuncts) {
      if (i < q.atoms.size()) in_core[i] = true;
    }
  }

  bool truncated = false;
  Relation joined;
  bool first = true;
  if (wcoj != nullptr) {
    joined = crpq_internal::WcojRelation(*options.snapshot, *wcoj,
                                         options.cancel);
    first = false;
  }
  for (size_t step = 0; step < q.atoms.size(); ++step) {
    const size_t atom_idx = use_order ? (*order)[step] : step;
    if (wcoj != nullptr && in_core[atom_idx]) continue;  // wcoj serves it
    const CrpqAtom& atom = q.atoms[atom_idx];
    if (ShouldStop(options.cancel)) {
      truncated = true;
      break;
    }
    if (!first && joined.rows.empty()) break;  // conjunction is empty
    const DlNfa& nfa = (*nfas)[atom_idx];
    DlEvaluator evaluator(g, nfa, options.snapshot);
    std::vector<std::string> list_vars = atom.regex->CaptureVariables();

    auto resolve = [&](const CrpqTerm& t) -> std::optional<NodeId> {
      return t.is_constant ? g.FindNode(t.name) : std::nullopt;
    };
    std::optional<NodeId> from_const = resolve(atom.from);
    std::optional<NodeId> to_const = resolve(atom.to);

    std::vector<std::pair<NodeId, NodeId>> pairs;
    if (from_const.has_value()) {
      NodeId u = *from_const;
      for (NodeId v : evaluator.ReachableFrom(u, options.cancel)) {
        pairs.emplace_back(u, v);
      }
    } else {
      pairs = evaluator.AllPairs(options.cancel);
    }
    if (to_const.has_value()) {
      NodeId v = *to_const;
      std::erase_if(pairs, [v](const auto& p) { return p.second != v; });
    }
    const bool same_var = !atom.from.is_constant && !atom.to.is_constant &&
                          atom.from.name == atom.to.name;
    if (same_var) {
      std::erase_if(pairs, [](const auto& p) { return p.first != p.second; });
    }

    Relation rel;
    if (!atom.from.is_constant) rel.schema.push_back(atom.from.name);
    if (!atom.to.is_constant && !same_var) rel.schema.push_back(atom.to.name);
    for (const std::string& z : list_vars) rel.schema.push_back(z);

    EnumerationLimits limits;
    limits.max_results = options.max_bindings_per_pair;
    limits.max_length = options.max_path_length;
    limits.cancel = options.cancel;

    for (const auto& [u, v] : pairs) {
      if (ShouldStop(options.cancel)) {
        truncated = true;
        break;
      }
      std::vector<CrpqValue> prefix;
      if (!atom.from.is_constant) prefix.push_back(u);
      if (!atom.to.is_constant && !same_var) prefix.push_back(v);
      if (list_vars.empty()) {
        if (!ChargeMemory(options.cancel,
                          prefix.size() * sizeof(CrpqValue) + 32)) {
          truncated = true;
          break;
        }
        rel.rows.push_back(std::move(prefix));
        continue;
      }
      EnumerationStats stats;
      std::vector<PathBinding> bindings =
          evaluator.CollectModePaths(u, v, atom.mode, limits, &stats);
      if (stats.truncated) truncated = true;
      if (stats.cancelled) break;
      std::set<std::vector<CrpqValue>> seen;
      for (const PathBinding& pb : bindings) {
        std::vector<CrpqValue> row = prefix;
        for (const std::string& z : list_vars) row.push_back(pb.mu.Get(z));
        if (seen.insert(row).second) {
          if (!ChargeMemory(options.cancel,
                            row.size() * sizeof(CrpqValue) + 32)) {
            truncated = true;
            break;
          }
          rel.rows.push_back(std::move(row));
        }
      }
      if (ShouldStop(options.cancel)) {
        truncated = true;
        break;
      }
    }
    // A relation left partial by a trip is about to be thrown away by the
    // engine; don't burn time sorting it (same contract as the RPQ path).
    Dedupe(&rel, options.cancel);

    if (first) {
      joined = std::move(rel);
      first = false;
    } else {
      joined = NaturalJoin(joined, rel, options.cancel, options.use_batch);
    }
    if (joined.rows.empty()) break;
  }

  CrpqResult result;
  result.head = q.head;
  result.truncated = truncated;
  if (!joined.rows.empty()) {
    ProjectHead(joined, q.head, &result.rows, options.cancel,
                options.use_batch);
  }
  return result;
}

}  // namespace gqzoo
