#ifndef GQZOO_DATATEST_DL_EVAL_H_
#define GQZOO_DATATEST_DL_EVAL_H_

#include <utility>
#include <vector>

#include "src/crpq/crpq.h"
#include "src/datatest/dl_rpq.h"
#include "src/graph/csr.h"
#include "src/graph/path_binding.h"
#include "src/pmr/enumerate.h"
#include "src/rel/wcoj.h"

namespace gqzoo {

/// Evaluator for dl-RPQs (Section 3.2.1) over property graphs.
///
/// Runs are explored over *configurations* (NFA state, last path object,
/// valuation ν) — the register-automaton product of Section 6.4's "Data
/// Filters" discussion, generalized to treat nodes and edges symmetrically.
/// A step either *appends* an object (node → one of its out-edges; edge →
/// its target node) or *collapses* (re-matches the current last object,
/// using the paper's `p · path(o) = p` rule), which is how multi-atom
/// constraints like `[a^z][date > x][x := date]` apply to a single edge.
///
/// The configuration space is finite (valuations only hold values copied
/// from the graph), so pair reachability is decidable in polynomial time
/// for a fixed number of data variables — matching the NLOGSPACE data
/// complexity of [Libkin, Martens, Vrgoč 2016].
class DlEvaluator {
 public:
  /// `snapshot` (optional, not owned, must be over the same graph) routes
  /// configuration expansion through per-label adjacency slices: an
  /// edge-targeting label atom enumerates only the out-edges its predicate
  /// matches instead of the node's full adjacency list. Result sets are
  /// unchanged.
  DlEvaluator(const PropertyGraph& g, const DlNfa& nfa,
              const GraphSnapshot* snapshot = nullptr)
      : g_(&g), nfa_(&nfa), snapshot_(snapshot) {}

  /// All nodes `v` such that some non-empty-endpoint path from `u` to `v`
  /// satisfies the dl-RPQ (σ endpoints: src(p) = u, tgt(p) = v; paths may
  /// start/end with edges). Stops early (partial result) when `cancel`
  /// trips.
  std::vector<NodeId> ReachableFrom(
      NodeId u, const CancellationToken* cancel = nullptr) const;

  /// All endpoint pairs ([[R]] projected to (src, tgt)).
  std::vector<std::pair<NodeId, NodeId>> AllPairs(
      const CancellationToken* cancel = nullptr) const;

  /// Enumerates `mode(σ_{u,v}([[R]]_G))`, deduplicated. `shortest` is
  /// computed by first finding the optimal length via 0/1-weighted BFS on
  /// configurations (edge appends cost 1), then enumerating at that depth.
  std::vector<PathBinding> CollectModePaths(NodeId u, NodeId v, PathMode mode,
                                            const EnumerationLimits& limits,
                                            EnumerationStats* stats = nullptr) const;

  /// Length of the shortest path from `u` to `v` satisfying the dl-RPQ, or
  /// SIZE_MAX if none exists.
  size_t ShortestLength(NodeId u, NodeId v,
                        const CancellationToken* cancel = nullptr) const;

 private:
  const PropertyGraph* g_;
  const DlNfa* nfa_;
  const GraphSnapshot* snapshot_;
};

/// Evaluates a dl-CRPQ (Section 3.2.2): the Crpq structure with dl-dialect
/// regexes, over a property graph. Semantics and options mirror EvalCrpq.
struct DlCrpqEvalOptions {
  size_t max_bindings_per_pair = 100000;
  size_t max_path_length = 1000;
  /// Optional cooperative cancellation (deadlines). Not owned.
  const CancellationToken* cancel = nullptr;
  /// Optional label-partitioned view of the same graph (not owned); see
  /// DlEvaluator.
  const GraphSnapshot* snapshot = nullptr;
  /// Precompiled per-atom automata, parallel to the query's atoms (not
  /// owned). Null = compile per call; see CrpqEvalOptions::atom_nfas.
  const std::vector<DlNfa>* atom_nfas = nullptr;
  /// Planner execution order over atom indices; null (or wrong size) =
  /// textual order. Result sets are identical either way.
  const std::vector<size_t>* join_order = nullptr;
  /// Planned worst-case-optimal join group for a cyclic core of
  /// single-label atoms; see CrpqEvalOptions::wcoj. Honored only when
  /// `snapshot` is set.
  const rel::WcojSpec* wcoj = nullptr;
  /// Route joins/projection through the columnar batch kernel; see
  /// CrpqEvalOptions::use_batch.
  bool use_batch = false;
};

Result<CrpqResult> EvalDlCrpq(const PropertyGraph& g, const Crpq& q,
                              const DlCrpqEvalOptions& options = {});

}  // namespace gqzoo

#endif  // GQZOO_DATATEST_DL_EVAL_H_
