#include "src/datatest/dl_rpq.h"

#include <atomic>

#include "src/automata/glushkov.h"

namespace gqzoo {

bool DlAtom::Matches(const PropertyGraph& g, ObjectRef o, const Valuation& nu,
                     Valuation* nu_out) const {
  if ((target == Atom::Target::kNode) != o.is_node()) return false;
  if (!is_test) {
    if (!pred.Matches(g.ObjectLabel(o))) return false;
    *nu_out = nu;
    return true;
  }
  if (property == kInvalidId) return false;
  std::optional<Value> value = g.GetProperty(o, property);
  if (!value.has_value()) return false;
  switch (test_kind) {
    case ElementTest::Kind::kAssign:
      *nu_out = nu;
      (*nu_out)[data_var] = std::move(*value);
      return true;
    case ElementTest::Kind::kCompareConst:
      if (!Value::Compare(*value, op, constant)) return false;
      *nu_out = nu;
      return true;
    case ElementTest::Kind::kCompareVar: {
      const std::optional<Value>& bound = nu[data_var];
      if (!bound.has_value()) return false;
      if (!Value::Compare(*value, op, *bound)) return false;
      *nu_out = nu;
      return true;
    }
  }
  return false;
}

namespace {
std::atomic<uint64_t> dl_nfa_compile_count{0};
}  // namespace

uint64_t DlNfa::CompileCount() {
  return dl_nfa_compile_count.load(std::memory_order_relaxed);
}

DlNfa DlNfa::FromRegex(const Regex& regex, const PropertyGraph& g) {
  dl_nfa_compile_count.fetch_add(1, std::memory_order_relaxed);
  GlushkovAutomaton glushkov = BuildGlushkov(regex);
  DlNfa nfa;
  nfa.out_.assign(glushkov.position_atoms.size() + 1, {});
  nfa.accepting_.assign(glushkov.position_atoms.size() + 1, false);
  nfa.accepting_[0] = glushkov.initial_accepting;
  for (uint32_t p : glushkov.accepting_positions) nfa.accepting_[p] = true;

  auto intern = [](std::vector<std::string>* names, const std::string& name) {
    for (uint32_t i = 0; i < names->size(); ++i) {
      if ((*names)[i] == name) return i;
    }
    names->push_back(name);
    return static_cast<uint32_t>(names->size() - 1);
  };

  // Resolve each position's atom once.
  std::vector<DlAtom> resolved;
  for (const Atom& atom : glushkov.position_atoms) {
    DlAtom r;
    r.target = atom.target;
    if (atom.is_test()) {
      r.is_test = true;
      const ElementTest& test = *atom.test;
      r.test_kind = test.kind;
      std::optional<PropertyId> prop = g.FindProperty(test.property);
      r.property = prop.value_or(kInvalidId);
      r.op = test.op;
      r.constant = test.constant;
      if (!test.data_var.empty()) {
        r.data_var = intern(&nfa.data_var_names_, test.data_var);
      }
    } else {
      switch (atom.label_kind) {
        case Atom::LabelKind::kOne: {
          std::optional<LabelId> l = g.FindLabel(atom.labels[0]);
          r.pred = l.has_value() ? LabelPred::One(*l) : LabelPred::None();
          break;
        }
        case Atom::LabelKind::kNegSet: {
          std::vector<LabelId> ids;
          for (const std::string& name : atom.labels) {
            std::optional<LabelId> l = g.FindLabel(name);
            if (l.has_value()) ids.push_back(*l);
          }
          r.pred = LabelPred::NegSet(std::move(ids));
          break;
        }
        case Atom::LabelKind::kAny:
          r.pred = LabelPred::Any();
          break;
        case Atom::LabelKind::kTest:
          r.pred = LabelPred::None();
          break;
      }
      if (atom.capture.has_value()) {
        r.capture = intern(&nfa.capture_names_, *atom.capture);
      }
    }
    resolved.push_back(std::move(r));
  }

  for (uint32_t from = 0; from < glushkov.transitions.size(); ++from) {
    for (uint32_t to : glushkov.transitions[from]) {
      nfa.out_[from].push_back({to, resolved[to - 1]});
    }
  }
  return nfa;
}

}  // namespace gqzoo
