#ifndef GQZOO_GRAPH_CSR_H_
#define GQZOO_GRAPH_CSR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/span.h"

namespace gqzoo {

struct LabelPred;  // automata/nfa.h; only ForEachMatch below needs it

namespace storage {
class SnapshotCodec;  // serializes/maps snapshots (storage/snapshot_format.h)
}

/// An immutable, label-partitioned CSR view of a graph — the adjacency
/// substrate every regular-path evaluator iterates.
///
/// Every practical engine surveyed in Angles et al. keeps adjacency
/// partitioned by edge label, because the inner loop of product-automaton
/// evaluation asks "successors of v via label a", not "successors of v".
/// The seed `EdgeLabeledGraph` answers that in O(deg(v)) by filtering;
/// this snapshot answers it in O(deg_a(v)) by slicing:
///
///  * `hops` — one entry per edge per direction, grouped by node, then by
///    label within the node, then by edge id (deterministic order);
///  * `node_begin` — per-node extents into `hops` (the wildcard slice);
///  * label runs — per-node directories of (label, begin, end) runs, so a
///    single-label slice is a binary search over the labels *present at
///    that node* (memory stays O(|E|), unlike a dense |N|x|L| offset
///    table, and degenerate graphs with thousands of labels cost nothing).
///
/// Snapshots are immutable: build once per graph epoch, share freely
/// across threads (all reads, no synchronization). The `QueryEngine`
/// caches one next to its plan cache and in-flight queries pin the
/// snapshot they started with. A snapshot borrows the graph it was built
/// from — the owner must keep that graph alive (the engine pairs the two
/// behind one lock).
///
/// Storage comes in two flavors behind one set of read accessors: built
/// snapshots own their arrays (vectors), while snapshots opened from the
/// on-disk format (storage/snapshot_format.h) view arrays living in a
/// memory-mapped file pinned by `pin_`. Every accessor reads through
/// `ConstSpan` views, so the two modes share one code path and answer
/// byte-identically.
class GraphSnapshot {
 public:
  /// One adjacency entry: the traversed edge and the node on its far side
  /// (target for out-hops, source for in-hops).
  struct Hop {
    EdgeId edge;
    NodeId node;
  };
  static_assert(sizeof(Hop) == 8, "Hop is serialized raw");

  /// A contiguous run of hops; iterable and random-accessible.
  class Slice {
   public:
    Slice() : begin_(nullptr), end_(nullptr) {}
    Slice(const Hop* begin, const Hop* end) : begin_(begin), end_(end) {}
    const Hop* begin() const { return begin_; }
    const Hop* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }
    const Hop& operator[](size_t i) const { return begin_[i]; }

   private:
    const Hop* begin_;
    const Hop* end_;
  };

  explicit GraphSnapshot(const EdgeLabeledGraph& g);
  /// Also indexes nodes by node label (`NodesWithLabel`), which the
  /// CoreGQL pattern evaluator uses for label-filtered node atoms.
  explicit GraphSnapshot(const PropertyGraph& g);

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  const EdgeLabeledGraph& graph() const { return *g_; }
  size_t NumNodes() const { return num_nodes_; }
  size_t NumEdges() const { return g_->NumEdges(); }
  size_t NumLabels() const { return num_labels_; }

  /// All out/in hops of `v` (the wildcard slice).
  Slice Out(NodeId v) const { return NodeSlice(out_, v); }
  Slice In(NodeId v) const { return NodeSlice(in_, v); }

  /// Hops of `v` whose edge carries label `l` — O(log #labels-at-v) lookup,
  /// then a dense scan of exactly deg_l(v) entries.
  Slice Out(NodeId v, LabelId l) const { return LabelSlice(out_, v, l); }
  Slice In(NodeId v, LabelId l) const { return LabelSlice(in_, v, l); }

  /// All edges carrying label `l`, graph-wide and sorted by edge id (the
  /// CoreGQL edge-atom and product-graph construction slices).
  Slice EdgesWithLabel(LabelId l) const;

  /// All nodes with node label `l`; empty unless built from a
  /// `PropertyGraph`. Sorted by node id.
  ConstSpan<NodeId> NodesWithLabel(LabelId l) const;
  bool has_node_labels() const { return has_node_labels_; }

  /// Calls `fn(const Hop&)` for every out (or, when `inverse`, in) hop of
  /// `v` whose edge label satisfies `pred`. Single-label predicates touch
  /// only their label slice; negated sets iterate per label *run* and skip
  /// excluded runs wholesale, so no per-edge label test ever runs.
  template <typename Fn>
  void ForEachMatch(NodeId v, const LabelPred& pred, bool inverse,
                    Fn&& fn) const;

  /// Approximate resident size, for memory accounting. For mapped
  /// snapshots this is the mapped extent, not resident pages.
  size_t ApproxBytes() const;

 private:
  /// The delta merger splice-builds snapshots of merged overlay views from
  /// a base snapshot plus the overlay, without the per-node re-sort of the
  /// public constructors (src/graph/delta/merge.cc). The snapshot codec
  /// serializes the views raw and reconstitutes snapshots whose views
  /// point into a mapped or copied file image.
  friend class GraphDeltaMerger;
  friend class storage::SnapshotCodec;
  GraphSnapshot() = default;

  /// Per-node run of same-label hops: hops[begin, end) all carry `label`.
  struct LabelRun {
    LabelId label;
    uint32_t begin;
    uint32_t end;
  };
  static_assert(sizeof(LabelRun) == 12, "LabelRun is serialized raw");

  /// One direction of adjacency, as read by every accessor. Points either
  /// at `owned_` or at a mapped file image.
  struct CsrView {
    ConstSpan<Hop> hops;             // grouped by node, then label, then edge
    ConstSpan<uint32_t> node_begin;  // size num_nodes + 1, extents in hops
    ConstSpan<LabelRun> runs;        // per-node label directories
    ConstSpan<uint32_t> runs_begin;  // size num_nodes + 1, extents in runs
  };

  /// One direction of adjacency, owning flavor (build target).
  struct OwnedCsr {
    std::vector<Hop> hops;
    std::vector<uint32_t> node_begin;
    std::vector<LabelRun> runs;
    std::vector<uint32_t> runs_begin;
  };

  /// Backing arrays for snapshots built in RAM. Null for mapped snapshots,
  /// whose views alias the file image pinned by `pin_`.
  struct Owned {
    OwnedCsr out;
    OwnedCsr in;
    std::vector<Hop> label_edges;
    std::vector<uint32_t> label_begin;
    std::vector<NodeId> nodes_by_label;
    std::vector<uint32_t> nodes_by_label_begin;
  };

  void Build(const EdgeLabeledGraph& g);
  static void BuildDirection(const EdgeLabeledGraph& g, bool inverse,
                             OwnedCsr* csr);
  /// Points every view at `owned_`'s vectors. Must run after any change to
  /// the owned storage (vectors may reallocate while being filled).
  void FinalizeViews();

  Slice NodeSlice(const CsrView& csr, NodeId v) const {
    const Hop* base = csr.hops.data();
    return Slice(base + csr.node_begin[v], base + csr.node_begin[v + 1]);
  }
  Slice LabelSlice(const CsrView& csr, NodeId v, LabelId l) const;

  const EdgeLabeledGraph* g_ = nullptr;
  size_t num_nodes_ = 0;
  size_t num_labels_ = 0;
  CsrView out_;
  CsrView in_;
  ConstSpan<Hop> label_edges_;       // all edges grouped by label
  ConstSpan<uint32_t> label_begin_;  // size num_labels + 1
  bool has_node_labels_ = false;
  /// Flat nodes-by-label index: nodes_by_label_[nodes_by_label_begin_[l]
  /// .. nodes_by_label_begin_[l+1]) are the nodes labeled `l`, sorted by
  /// id. Empty (and begin empty) when !has_node_labels_.
  ConstSpan<NodeId> nodes_by_label_;
  ConstSpan<uint32_t> nodes_by_label_begin_;  // size num_labels + 1

  std::unique_ptr<Owned> owned_;
  /// Keeps a mapped file image alive for view-mode snapshots.
  std::shared_ptr<const void> pin_;
};

}  // namespace gqzoo

// ForEachMatch needs LabelPred's definition; nfa.h includes graph.h, so
// the template lives in a trailer included after both.
#include "src/automata/nfa.h"

namespace gqzoo {

template <typename Fn>
void GraphSnapshot::ForEachMatch(NodeId v, const LabelPred& pred, bool inverse,
                                 Fn&& fn) const {
  const CsrView& csr = inverse ? in_ : out_;
  switch (pred.kind) {
    case LabelPred::Kind::kNone:
      return;
    case LabelPred::Kind::kOne:
      for (const Hop& hop : LabelSlice(csr, v, pred.labels[0])) fn(hop);
      return;
    case LabelPred::Kind::kAny:
      for (const Hop& hop : NodeSlice(csr, v)) fn(hop);
      return;
    case LabelPred::Kind::kNegSet: {
      const Hop* base = csr.hops.data();
      for (uint32_t r = csr.runs_begin[v]; r < csr.runs_begin[v + 1]; ++r) {
        const LabelRun& run = csr.runs[r];
        if (pred.Matches(run.label)) {
          for (uint32_t i = run.begin; i < run.end; ++i) fn(base[i]);
        }
      }
      return;
    }
  }
}

}  // namespace gqzoo

#endif  // GQZOO_GRAPH_CSR_H_
