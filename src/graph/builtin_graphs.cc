#include "src/graph/builtin_graphs.h"

#include <array>

namespace gqzoo {

namespace {

struct TransferSpec {
  const char* name;
  const char* src;
  const char* tgt;
  double amount;    // used only by Figure3Graph
  const char* date;  // used only by Figure3Graph
};

// Shared transfer topology of Figures 2 and 3 (see header for provenance).
// Amounts: only t9 is below the 4.5M threshold of Section 6.3.
constexpr std::array<TransferSpec, 10> kTransfers = {{
    {"t1", "a1", "a3", 8.3e6, "2025-01-01"},
    {"t2", "a3", "a2", 6.0e6, "2025-01-02"},
    {"t3", "a2", "a4", 7.2e6, "2025-01-03"},
    {"t4", "a5", "a1", 5.5e6, "2025-01-04"},
    {"t5", "a3", "a2", 9.1e6, "2025-01-05"},
    {"t6", "a3", "a4", 4.5e6, "2025-01-06"},
    {"t7", "a3", "a5", 1.0e7, "2025-01-07"},
    {"t8", "a6", "a3", 6.6e6, "2025-01-08"},
    {"t9", "a4", "a6", 1.0e6, "2025-01-09"},
    {"t10", "a6", "a5", 4.8e6, "2025-01-10"},
}};

struct AccountSpec {
  const char* name;
  const char* owner;
  bool blocked;
};

constexpr std::array<AccountSpec, 6> kAccounts = {{
    {"a1", "Megan", false},
    {"a2", "Carol", false},
    {"a3", "Mike", false},
    {"a4", "Dave", true},
    {"a5", "Rebecca", false},
    {"a6", "Jay", false},
}};

}  // namespace

EdgeLabeledGraph Figure2Graph() {
  EdgeLabeledGraph g;
  for (const AccountSpec& a : kAccounts) g.AddNode(a.name);
  // Entity nodes.
  NodeId account_type = g.AddNode("Account");
  NodeId yes = g.AddNode("yes");
  NodeId no = g.AddNode("no");
  for (const AccountSpec& a : kAccounts) {
    if (g.FindNode(a.owner) == std::nullopt) g.AddNode(a.owner);
  }

  for (const TransferSpec& t : kTransfers) {
    g.AddEdge(*g.FindNode(t.src), *g.FindNode(t.tgt), "Transfer", t.name);
  }
  // Owner edges r1–r4 for the accounts whose owners the text names.
  g.AddEdge(*g.FindNode("a1"), *g.FindNode("Megan"), "owner", "r1");
  g.AddEdge(*g.FindNode("a3"), *g.FindNode("Mike"), "owner", "r2");
  g.AddEdge(*g.FindNode("a5"), *g.FindNode("Rebecca"), "owner", "r3");
  g.AddEdge(*g.FindNode("a6"), *g.FindNode("Jay"), "owner", "r4");
  // isBlocked edges r5–r10; r9 (a3→no) and r10 (a4→yes) are named in
  // Example 16.
  g.AddEdge(*g.FindNode("a1"), no, "isBlocked", "r5");
  g.AddEdge(*g.FindNode("a2"), no, "isBlocked", "r6");
  g.AddEdge(*g.FindNode("a5"), no, "isBlocked", "r7");
  g.AddEdge(*g.FindNode("a6"), no, "isBlocked", "r8");
  g.AddEdge(*g.FindNode("a3"), no, "isBlocked", "r9");
  g.AddEdge(*g.FindNode("a4"), yes, "isBlocked", "r10");
  // type edges.
  for (size_t i = 0; i < kAccounts.size(); ++i) {
    g.AddEdge(*g.FindNode(kAccounts[i].name), account_type, "type",
              "u" + std::to_string(i + 1));
  }
  return g;
}

PropertyGraph Figure3Graph() {
  PropertyGraph g;
  for (const AccountSpec& a : kAccounts) {
    NodeId n = g.AddNode(a.name, "Account");
    g.SetProperty(ObjectRef::Node(n), "owner", Value(a.owner));
    g.SetProperty(ObjectRef::Node(n), "isBlocked",
                  Value(a.blocked ? "yes" : "no"));
  }
  for (const TransferSpec& t : kTransfers) {
    EdgeId e = g.AddEdge(*g.FindNode(t.src), *g.FindNode(t.tgt), "Transfer",
                         t.name);
    g.SetProperty(ObjectRef::Edge(e), "amount", Value(t.amount));
    g.SetProperty(ObjectRef::Edge(e), "date", Value(t.date));
  }
  return g;
}

}  // namespace gqzoo
