#ifndef GQZOO_GRAPH_GRAPH_H_
#define GQZOO_GRAPH_GRAPH_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/interner.h"
#include "src/util/result.h"
#include "src/util/span.h"
#include "src/util/value.h"

namespace gqzoo {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using LabelId = uint32_t;
using PropertyId = uint32_t;

inline constexpr uint32_t kInvalidId = UINT32_MAX;

class GraphDeltaMerger;
class PropertyGraph;

namespace storage {
class SnapshotCodec;  // storage/snapshot_format.h: serializes/maps graphs
}

/// Whether a path object is a node or an edge ("objects" in the paper's
/// terminology, "elements" in GQL/SQL-PGQ).
enum class ObjectKind : uint8_t { kNode = 0, kEdge = 1 };

/// A reference to a node or edge of some graph.
struct ObjectRef {
  ObjectKind kind;
  uint32_t id;

  static ObjectRef Node(NodeId n) { return {ObjectKind::kNode, n}; }
  static ObjectRef Edge(EdgeId e) { return {ObjectKind::kEdge, e}; }

  bool is_node() const { return kind == ObjectKind::kNode; }
  bool is_edge() const { return kind == ObjectKind::kEdge; }

  bool operator==(const ObjectRef& o) const {
    return kind == o.kind && id == o.id;
  }
  bool operator!=(const ObjectRef& o) const { return !(*this == o); }
  bool operator<(const ObjectRef& o) const {
    if (kind != o.kind) return kind < o.kind;
    return id < o.id;
  }
};

struct ObjectRefHash {
  size_t operator()(const ObjectRef& o) const {
    return HashCombine(static_cast<size_t>(o.kind), o.id);
  }
};

/// One property assignment in the on-disk snapshot format, sorted by
/// (object id, pid) within each object class. Mapped graphs answer
/// property lookups by binary-searching these entries in place.
struct SnapshotPropEntry {
  uint32_t pid;
  uint32_t tag;     // Value alternative: 0 int64, 1 double, 2 string, 3 bool
  uint64_t payload;  // raw bits; string: low 32 offset, high 32 length
};
static_assert(sizeof(SnapshotPropEntry) == 16, "serialized raw");

/// An edge-labeled graph (Definition 4): `(N, E, src, tgt, λ)` with edge
/// identity, so two parallel edges with the same label are distinct (the
/// paper's t2 and t5 in Figure 2).
///
/// Nodes and edges additionally carry display names (e.g. "a1", "t1") so
/// query answers can be printed like the paper's examples; names play no
/// semantic role.
///
/// A graph lives in one of three storage modes:
///  * *plain* — built by AddNode/AddEdge, owns every array (mutable);
///  * *overlay* — a merged delta view (src/graph/delta): numeric hot-path
///    arrays are materialized in the merged id space, strings and name→id
///    maps are borrowed from the immutable base generation through
///    translation tables;
///  * *mapped* — opened from the on-disk snapshot format
///    (storage/snapshot_format.h): edges and name tables are read in place
///    from a memory-mapped file; label text is interned eagerly (small).
/// Overlay and mapped graphs are immutable; the mutators assert.
class EdgeLabeledGraph {
 public:
  struct EdgeData {
    NodeId src;
    NodeId tgt;
    LabelId label;
  };
  static_assert(sizeof(EdgeData) == 12, "serialized raw");

  EdgeLabeledGraph() = default;

  /// Adds a node named `name` (auto-generated "n<k>" when empty).
  /// Names must be unique within the graph.
  NodeId AddNode(const std::string& name = "");

  /// Adds an edge from `src` to `tgt` with label `label` and optional
  /// display name (auto-generated "e<k>" when empty).
  EdgeId AddEdge(NodeId src, NodeId tgt, const std::string& label,
                 const std::string& name = "");
  EdgeId AddEdge(NodeId src, NodeId tgt, LabelId label,
                 const std::string& name = "");

  // out_ is materialized in overlay views too, unlike node_names_.
  size_t NumNodes() const {
    return mapped_ != nullptr ? mapped_->num_nodes : out_.size();
  }
  size_t NumEdges() const {
    return mapped_ != nullptr ? mapped_->edges.size() : edges_.size();
  }

  NodeId Src(EdgeId e) const { return EdgeAt(e).src; }
  NodeId Tgt(EdgeId e) const { return EdgeAt(e).tgt; }
  LabelId EdgeLabel(EdgeId e) const { return EdgeAt(e).label; }

  /// Per-node edge-id adjacency. Evaluators prefer `GraphSnapshot` slices;
  /// these lists back the snapshot-less fallback paths. Mapped graphs
  /// build them lazily on first use (the mapped file stores the snapshot's
  /// CSR instead).
  const std::vector<EdgeId>& OutEdges(NodeId n) const {
    if (mapped_ != nullptr) {
      EnsureMappedAdjacency();
      return mapped_->out[n];
    }
    return out_[n];
  }
  const std::vector<EdgeId>& InEdges(NodeId n) const {
    if (mapped_ != nullptr) {
      EnsureMappedAdjacency();
      return mapped_->in[n];
    }
    return in_[n];
  }

  /// Label interning. Labels are shared between this graph's edges and, when
  /// this graph is the skeleton of a `PropertyGraph`, its node labels too.
  LabelId InternLabel(const std::string& label) {
    assert(overlay_ == nullptr && mapped_ == nullptr &&
           "overlay/mapped graphs are immutable");
    return labels_.Intern(label);
  }
  std::optional<LabelId> FindLabel(const std::string& label) const;
  const std::string& LabelName(LabelId l) const;
  size_t NumLabels() const {
    if (overlay_ == nullptr) return labels_.size();
    return overlay_->base_labels + overlay_->added_labels.size();
  }

  /// Display names. Plain/overlay graphs return views of owned strings;
  /// mapped graphs return views straight into the mapped name heap —
  /// valid as long as the graph (which pins the mapping) is.
  std::string_view NodeName(NodeId n) const;
  std::string_view EdgeName(EdgeId e) const;
  std::optional<NodeId> FindNode(const std::string& name) const;
  std::optional<EdgeId> FindEdge(const std::string& name) const;

  /// Name of an object ("a1" / "t3"), for printing.
  std::string_view ObjectName(ObjectRef o) const {
    return o.is_node() ? NodeName(o.id) : EdgeName(o.id);
  }

  /// True when this graph is a merged delta view over a base generation.
  bool is_overlay() const { return overlay_ != nullptr; }
  /// True when this graph reads from a mapped snapshot file.
  bool is_mapped() const { return mapped_ != nullptr; }

  /// A plain, mutable, id-faithful copy of this graph (labels, nodes,
  /// edges interned in id order). The working-copy escape hatch for code
  /// that mutates a skeleton (regular queries) when the source is an
  /// immutable overlay or mapped graph. Plain graphs copy directly.
  EdgeLabeledGraph MaterializePlain() const;

 private:
  friend class GraphDeltaMerger;
  friend class PropertyGraph;
  friend class storage::SnapshotCodec;

  /// Borrowed-string tables of an overlay view. Ids below the `base_*`
  /// counts are base ids ("old space"); a merged ("new space") id maps to
  /// its old-space origin through `node_origin`/`edge_origin`, and base
  /// ids map forward through `base_*_to_new` (kInvalidId = removed).
  struct OverlayNames {
    std::shared_ptr<const void> base_owner;  // pins the base generation
    const EdgeLabeledGraph* base = nullptr;
    uint32_t base_nodes = 0;
    uint32_t base_edges = 0;
    uint32_t base_labels = 0;
    std::vector<uint32_t> node_origin;       // new id -> old-space id
    std::vector<uint32_t> edge_origin;
    std::vector<uint32_t> base_node_to_new;  // base id -> new id
    std::vector<uint32_t> base_edge_to_new;
    std::vector<std::string> added_node_names;  // by added ordinal
    std::vector<std::string> added_edge_names;
    std::unordered_map<std::string, NodeId> added_node_by_name;  // -> new id
    std::unordered_map<std::string, EdgeId> added_edge_by_name;
    std::vector<std::string> added_labels;  // ids base_labels + index
    std::unordered_map<std::string, LabelId> added_label_by_name;
  };

  /// In-place views of a mapped snapshot file (storage/snapshot_format.h).
  /// Immutable except the lazily built adjacency lists, which are guarded
  /// by `adj_once` and therefore safe to share across graph copies.
  struct MappedSkeleton {
    std::shared_ptr<const void> pin;  // the mapped file image
    size_t num_nodes = 0;
    ConstSpan<EdgeData> edges;
    ConstSpan<uint64_t> node_name_offsets;  // size num_nodes + 1
    ConstSpan<char> node_name_heap;
    ConstSpan<NodeId> nodes_by_name;  // node ids sorted by display name
    ConstSpan<uint64_t> edge_name_offsets;  // size num_edges + 1
    ConstSpan<char> edge_name_heap;
    ConstSpan<EdgeId> edges_by_name;  // edge ids sorted by display name
    mutable std::once_flag adj_once;
    mutable std::vector<std::vector<EdgeId>> out;
    mutable std::vector<std::vector<EdgeId>> in;
  };

  const EdgeData& EdgeAt(EdgeId e) const {
    return mapped_ != nullptr ? mapped_->edges[e] : edges_[e];
  }
  static std::string_view HeapName(const ConstSpan<uint64_t>& offsets,
                                   const ConstSpan<char>& heap, uint32_t i) {
    return std::string_view(heap.data() + offsets[i],
                            static_cast<size_t>(offsets[i + 1] - offsets[i]));
  }
  void EnsureMappedAdjacency() const;

  std::vector<EdgeData> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<std::string> node_names_;
  std::vector<std::string> edge_names_;
  std::unordered_map<std::string, NodeId> node_by_name_;
  std::unordered_map<std::string, EdgeId> edge_by_name_;
  Interner labels_;
  std::shared_ptr<const OverlayNames> overlay_;  // null for plain graphs
  std::shared_ptr<const MappedSkeleton> mapped_;  // null unless mapped
};

inline std::string_view EdgeLabeledGraph::NodeName(NodeId n) const {
  if (overlay_ != nullptr) {
    uint32_t old = overlay_->node_origin[n];
    return old < overlay_->base_nodes
               ? overlay_->base->NodeName(old)
               : std::string_view(
                     overlay_->added_node_names[old - overlay_->base_nodes]);
  }
  if (mapped_ != nullptr) {
    return HeapName(mapped_->node_name_offsets, mapped_->node_name_heap, n);
  }
  return node_names_[n];
}

inline std::string_view EdgeLabeledGraph::EdgeName(EdgeId e) const {
  if (overlay_ != nullptr) {
    uint32_t old = overlay_->edge_origin[e];
    return old < overlay_->base_edges
               ? overlay_->base->EdgeName(old)
               : std::string_view(
                     overlay_->added_edge_names[old - overlay_->base_edges]);
  }
  if (mapped_ != nullptr) {
    return HeapName(mapped_->edge_name_offsets, mapped_->edge_name_heap, e);
  }
  return edge_names_[e];
}

inline const std::string& EdgeLabeledGraph::LabelName(LabelId l) const {
  if (overlay_ == nullptr) return labels_.NameOf(l);
  return l < overlay_->base_labels
             ? overlay_->base->LabelName(l)
             : overlay_->added_labels[l - overlay_->base_labels];
}

inline std::optional<LabelId> EdgeLabeledGraph::FindLabel(
    const std::string& label) const {
  if (overlay_ == nullptr) return labels_.Find(label);
  std::optional<LabelId> base_id = overlay_->base->FindLabel(label);
  if (base_id.has_value()) return base_id;
  auto it = overlay_->added_label_by_name.find(label);
  if (it == overlay_->added_label_by_name.end()) return std::nullopt;
  return it->second;
}

/// A labeled property graph (Definition 6): extends the edge-labeled model
/// with a label on every node and a partial property map
/// `ρ : (N ∪ E) × Properties → Values`.
///
/// Per Remark 7 each element has exactly one label. The underlying
/// edge-labeled graph (`skeleton()`) is the restriction `λ|_E` of Section 2.
///
/// Like the skeleton, a property graph is plain, an overlay view, or
/// mapped: overlay property lookups consult the view's own (small)
/// override map first, then fall through to the base generation's map via
/// the skeleton's id-translation tables; mapped lookups binary-search the
/// file's sorted property entries in place.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  NodeId AddNode(const std::string& name, const std::string& label);
  EdgeId AddEdge(NodeId src, NodeId tgt, const std::string& label,
                 const std::string& name = "");

  void SetProperty(ObjectRef o, const std::string& prop, Value v);

  /// `ρ(o, prop)`; nullopt when the partial function is undefined here.
  std::optional<Value> GetProperty(ObjectRef o, PropertyId prop) const;
  std::optional<Value> GetProperty(ObjectRef o, const std::string& prop) const;

  LabelId NodeLabel(NodeId n) const {
    return mapped_ != nullptr ? mapped_->node_labels[n] : node_labels_[n];
  }
  LabelId EdgeLabel(EdgeId e) const { return skeleton_.EdgeLabel(e); }
  LabelId ObjectLabel(ObjectRef o) const {
    return o.is_node() ? NodeLabel(o.id) : EdgeLabel(o.id);
  }

  PropertyId InternProperty(const std::string& prop) {
    assert(overlay_ == nullptr && mapped_ == nullptr &&
           "overlay/mapped graphs are immutable");
    return properties_.Intern(prop);
  }
  std::optional<PropertyId> FindProperty(const std::string& prop) const;
  const std::string& PropertyName(PropertyId p) const;
  size_t NumProperties() const {
    if (overlay_ == nullptr) return properties_.size();
    return overlay_->base_props + overlay_->added_props.size();
  }

  /// The edge-labeled graph `(N, E, src, tgt, λ|_E)`.
  const EdgeLabeledGraph& skeleton() const { return skeleton_; }
  EdgeLabeledGraph& mutable_skeleton() { return skeleton_; }

  // Convenience forwarders.
  size_t NumNodes() const { return skeleton_.NumNodes(); }
  size_t NumEdges() const { return skeleton_.NumEdges(); }
  NodeId Src(EdgeId e) const { return skeleton_.Src(e); }
  NodeId Tgt(EdgeId e) const { return skeleton_.Tgt(e); }
  const std::vector<EdgeId>& OutEdges(NodeId n) const {
    return skeleton_.OutEdges(n);
  }
  const std::vector<EdgeId>& InEdges(NodeId n) const {
    return skeleton_.InEdges(n);
  }
  std::optional<NodeId> FindNode(const std::string& name) const {
    return skeleton_.FindNode(name);
  }
  std::optional<EdgeId> FindEdge(const std::string& name) const {
    return skeleton_.FindEdge(name);
  }
  LabelId InternLabel(const std::string& label) {
    return skeleton_.InternLabel(label);
  }
  std::optional<LabelId> FindLabel(const std::string& label) const {
    return skeleton_.FindLabel(label);
  }
  const std::string& LabelName(LabelId l) const {
    return skeleton_.LabelName(l);
  }
  std::string_view NodeName(NodeId n) const { return skeleton_.NodeName(n); }
  std::string_view EdgeName(EdgeId e) const { return skeleton_.EdgeName(e); }
  std::string_view ObjectName(ObjectRef o) const {
    return skeleton_.ObjectName(o);
  }

  bool is_overlay() const { return overlay_ != nullptr; }
  bool is_mapped() const { return mapped_ != nullptr; }

  /// All properties defined on `o`, for printing/serialization. Sorted by
  /// property id.
  std::vector<std::pair<PropertyId, Value>> PropertiesOf(ObjectRef o) const;

  /// Calls `fn(ObjectRef, PropertyId, const Value&)` for every property
  /// assignment of the graph, in unspecified order — the bulk accessor the
  /// delta compactor uses to copy a base generation's properties without
  /// one whole-map scan per object. Overlay views enumerate their override
  /// map plus the surviving, non-overridden base assignments; mapped
  /// graphs walk the file's entry table.
  void ForEachProperty(
      const std::function<void(ObjectRef, PropertyId, const Value&)>& fn)
      const;

 private:
  friend class GraphDeltaMerger;
  friend class storage::SnapshotCodec;

  struct PropKeyHash {
    size_t operator()(const std::pair<ObjectRef, PropertyId>& k) const {
      return HashCombine(ObjectRefHash()(k.first), k.second);
    }
  };

  /// Borrowed property universe of an overlay view; the value overrides
  /// themselves live in `props_` keyed by new-space ids.
  struct OverlayProps {
    std::shared_ptr<const PropertyGraph> base;
    uint32_t base_props = 0;
    std::vector<std::string> added_props;  // ids base_props + index
    std::unordered_map<std::string, PropertyId> added_prop_by_name;
  };

  /// In-place views of a mapped snapshot file's property tables. Entries
  /// hold the node entries first (indexed by `node_prop_begin`), then the
  /// edge entries (indexed by `edge_prop_begin`; offsets are global).
  struct MappedProps {
    std::shared_ptr<const void> pin;
    ConstSpan<LabelId> node_labels;       // size num_nodes
    ConstSpan<uint64_t> node_prop_begin;  // size num_nodes + 1
    ConstSpan<uint64_t> edge_prop_begin;  // size num_edges + 1
    ConstSpan<SnapshotPropEntry> entries;
    ConstSpan<char> value_heap;
  };

  /// Maps a new-space object of an overlay view to its base-generation ref;
  /// nullopt for objects added by the delta.
  std::optional<ObjectRef> BaseRef(ObjectRef o) const;
  /// Maps a base-generation object to its new-space ref; nullopt when the
  /// delta removed it.
  std::optional<ObjectRef> NewRef(ObjectRef base_ref) const;

  ConstSpan<SnapshotPropEntry> MappedEntriesOf(ObjectRef o) const;

  EdgeLabeledGraph skeleton_;
  std::vector<LabelId> node_labels_;
  Interner properties_;
  std::unordered_map<std::pair<ObjectRef, PropertyId>, Value, PropKeyHash>
      props_;
  std::shared_ptr<const OverlayProps> overlay_;  // null for plain graphs
  std::shared_ptr<const MappedProps> mapped_;    // null unless mapped
};

/// Decodes one snapshot property entry against its value heap.
Value DecodeSnapshotValue(const SnapshotPropEntry& e,
                          const ConstSpan<char>& heap);

}  // namespace gqzoo

#endif  // GQZOO_GRAPH_GRAPH_H_
