#ifndef GQZOO_GRAPH_GRAPH_H_
#define GQZOO_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/interner.h"
#include "src/util/result.h"
#include "src/util/value.h"

namespace gqzoo {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using LabelId = uint32_t;
using PropertyId = uint32_t;

inline constexpr uint32_t kInvalidId = UINT32_MAX;

/// Whether a path object is a node or an edge ("objects" in the paper's
/// terminology, "elements" in GQL/SQL-PGQ).
enum class ObjectKind : uint8_t { kNode = 0, kEdge = 1 };

/// A reference to a node or edge of some graph.
struct ObjectRef {
  ObjectKind kind;
  uint32_t id;

  static ObjectRef Node(NodeId n) { return {ObjectKind::kNode, n}; }
  static ObjectRef Edge(EdgeId e) { return {ObjectKind::kEdge, e}; }

  bool is_node() const { return kind == ObjectKind::kNode; }
  bool is_edge() const { return kind == ObjectKind::kEdge; }

  bool operator==(const ObjectRef& o) const {
    return kind == o.kind && id == o.id;
  }
  bool operator!=(const ObjectRef& o) const { return !(*this == o); }
  bool operator<(const ObjectRef& o) const {
    if (kind != o.kind) return kind < o.kind;
    return id < o.id;
  }
};

struct ObjectRefHash {
  size_t operator()(const ObjectRef& o) const {
    return HashCombine(static_cast<size_t>(o.kind), o.id);
  }
};

/// An edge-labeled graph (Definition 4): `(N, E, src, tgt, λ)` with edge
/// identity, so two parallel edges with the same label are distinct (the
/// paper's t2 and t5 in Figure 2).
///
/// Nodes and edges additionally carry display names (e.g. "a1", "t1") so
/// query answers can be printed like the paper's examples; names play no
/// semantic role.
class EdgeLabeledGraph {
 public:
  struct EdgeData {
    NodeId src;
    NodeId tgt;
    LabelId label;
  };

  EdgeLabeledGraph() = default;

  /// Adds a node named `name` (auto-generated "n<k>" when empty).
  /// Names must be unique within the graph.
  NodeId AddNode(const std::string& name = "");

  /// Adds an edge from `src` to `tgt` with label `label` and optional
  /// display name (auto-generated "e<k>" when empty).
  EdgeId AddEdge(NodeId src, NodeId tgt, const std::string& label,
                 const std::string& name = "");
  EdgeId AddEdge(NodeId src, NodeId tgt, LabelId label,
                 const std::string& name = "");

  size_t NumNodes() const { return node_names_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  NodeId Src(EdgeId e) const { return edges_[e].src; }
  NodeId Tgt(EdgeId e) const { return edges_[e].tgt; }
  LabelId EdgeLabel(EdgeId e) const { return edges_[e].label; }

  const std::vector<EdgeId>& OutEdges(NodeId n) const { return out_[n]; }
  const std::vector<EdgeId>& InEdges(NodeId n) const { return in_[n]; }

  /// Label interning. Labels are shared between this graph's edges and, when
  /// this graph is the skeleton of a `PropertyGraph`, its node labels too.
  LabelId InternLabel(const std::string& label) { return labels_.Intern(label); }
  std::optional<LabelId> FindLabel(const std::string& label) const {
    return labels_.Find(label);
  }
  const std::string& LabelName(LabelId l) const { return labels_.NameOf(l); }
  size_t NumLabels() const { return labels_.size(); }

  const std::string& NodeName(NodeId n) const { return node_names_[n]; }
  const std::string& EdgeName(EdgeId e) const { return edge_names_[e]; }
  std::optional<NodeId> FindNode(const std::string& name) const;
  std::optional<EdgeId> FindEdge(const std::string& name) const;

  /// Name of an object ("a1" / "t3"), for printing.
  const std::string& ObjectName(ObjectRef o) const {
    return o.is_node() ? NodeName(o.id) : EdgeName(o.id);
  }

 private:
  std::vector<EdgeData> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<std::string> node_names_;
  std::vector<std::string> edge_names_;
  std::unordered_map<std::string, NodeId> node_by_name_;
  std::unordered_map<std::string, EdgeId> edge_by_name_;
  Interner labels_;
};

/// A labeled property graph (Definition 6): extends the edge-labeled model
/// with a label on every node and a partial property map
/// `ρ : (N ∪ E) × Properties → Values`.
///
/// Per Remark 7 each element has exactly one label. The underlying
/// edge-labeled graph (`skeleton()`) is the restriction `λ|_E` of Section 2.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  NodeId AddNode(const std::string& name, const std::string& label);
  EdgeId AddEdge(NodeId src, NodeId tgt, const std::string& label,
                 const std::string& name = "");

  void SetProperty(ObjectRef o, const std::string& prop, Value v);

  /// `ρ(o, prop)`; nullopt when the partial function is undefined here.
  std::optional<Value> GetProperty(ObjectRef o, PropertyId prop) const;
  std::optional<Value> GetProperty(ObjectRef o, const std::string& prop) const;

  LabelId NodeLabel(NodeId n) const { return node_labels_[n]; }
  LabelId EdgeLabel(EdgeId e) const { return skeleton_.EdgeLabel(e); }
  LabelId ObjectLabel(ObjectRef o) const {
    return o.is_node() ? NodeLabel(o.id) : EdgeLabel(o.id);
  }

  PropertyId InternProperty(const std::string& prop) {
    return properties_.Intern(prop);
  }
  std::optional<PropertyId> FindProperty(const std::string& prop) const {
    return properties_.Find(prop);
  }
  const std::string& PropertyName(PropertyId p) const {
    return properties_.NameOf(p);
  }
  size_t NumProperties() const { return properties_.size(); }

  /// The edge-labeled graph `(N, E, src, tgt, λ|_E)`.
  const EdgeLabeledGraph& skeleton() const { return skeleton_; }
  EdgeLabeledGraph& mutable_skeleton() { return skeleton_; }

  // Convenience forwarders.
  size_t NumNodes() const { return skeleton_.NumNodes(); }
  size_t NumEdges() const { return skeleton_.NumEdges(); }
  NodeId Src(EdgeId e) const { return skeleton_.Src(e); }
  NodeId Tgt(EdgeId e) const { return skeleton_.Tgt(e); }
  const std::vector<EdgeId>& OutEdges(NodeId n) const {
    return skeleton_.OutEdges(n);
  }
  const std::vector<EdgeId>& InEdges(NodeId n) const {
    return skeleton_.InEdges(n);
  }
  std::optional<NodeId> FindNode(const std::string& name) const {
    return skeleton_.FindNode(name);
  }
  std::optional<EdgeId> FindEdge(const std::string& name) const {
    return skeleton_.FindEdge(name);
  }
  LabelId InternLabel(const std::string& label) {
    return skeleton_.InternLabel(label);
  }
  std::optional<LabelId> FindLabel(const std::string& label) const {
    return skeleton_.FindLabel(label);
  }
  const std::string& LabelName(LabelId l) const {
    return skeleton_.LabelName(l);
  }
  const std::string& NodeName(NodeId n) const { return skeleton_.NodeName(n); }
  const std::string& EdgeName(EdgeId e) const { return skeleton_.EdgeName(e); }
  const std::string& ObjectName(ObjectRef o) const {
    return skeleton_.ObjectName(o);
  }

  /// All properties defined on `o`, for printing/serialization.
  std::vector<std::pair<PropertyId, Value>> PropertiesOf(ObjectRef o) const;

 private:
  struct PropKeyHash {
    size_t operator()(const std::pair<ObjectRef, PropertyId>& k) const {
      return HashCombine(ObjectRefHash()(k.first), k.second);
    }
  };

  EdgeLabeledGraph skeleton_;
  std::vector<LabelId> node_labels_;
  Interner properties_;
  std::unordered_map<std::pair<ObjectRef, PropertyId>, Value, PropKeyHash>
      props_;
};

}  // namespace gqzoo

#endif  // GQZOO_GRAPH_GRAPH_H_
