#ifndef GQZOO_GRAPH_DELTA_MERGE_H_
#define GQZOO_GRAPH_DELTA_MERGE_H_

#include <memory>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/delta/delta.h"
#include "src/graph/graph.h"

namespace gqzoo {

/// A merged read view: an overlay-mode `PropertyGraph` layering a delta
/// over its immutable base, plus a CSR snapshot splice-built for it. The
/// snapshot's shared_ptr pins the view graph, which in turn pins the base
/// generation — a reader holding these sees one consistent
/// `(base generation, delta sequence)` pair no matter what writers and the
/// compactor do meanwhile.
struct MergedGraph {
  std::shared_ptr<const PropertyGraph> graph;
  std::shared_ptr<const GraphSnapshot> snapshot;
  /// Label ids whose edge/node membership the delta changed — exactly the
  /// statistics the engine must recompute (`SnapshotStats` patch ctor).
  std::vector<LabelId> touched_labels;
};

/// Builds merged views and compacted base generations from a
/// `DeltaOverlay`. Both paths assign *compacted* ids — surviving base
/// elements keep their relative order, added elements follow in insertion
/// order — and pre-seed the label/property universes in base-id order, so
/// a merged view, the compacted graph it folds into, and a from-scratch
/// replay of the op log are all byte-identical when rendered (the delta
/// fuzzer's differential oracle) and cached plans' interned ids stay valid
/// across compaction.
class GraphDeltaMerger {
 public:
  /// Layers `overlay` over its base: materializes the numeric adjacency in
  /// the merged id space, borrows strings from the base, and splices the
  /// base CSR with the overlay's additions per node — no global re-sort, so
  /// the first read after a small mutation costs far less than a rebuild.
  /// `base_snapshot` must describe `overlay.base()`.
  static MergedGraph Merge(const GraphSnapshot& base_snapshot,
                           const DeltaOverlay& overlay);

  /// Folds `overlay` into a plain, self-contained `PropertyGraph` — the
  /// compactor's output, id-compatible with `Merge`'s view.
  static PropertyGraph Materialize(const DeltaOverlay& overlay);

  /// Replays `log` against `base` from scratch (validated ops only; an
  /// invalid op asserts). Reference semantics for the differential oracle
  /// and the off-lock phase of compaction. Does not retain `base`.
  static PropertyGraph Replay(const PropertyGraph& base,
                              const std::vector<MutationOp>& log);

 private:
  struct IdMap;
  static IdMap BuildIdMap(const DeltaOverlay& overlay);
};

}  // namespace gqzoo

#endif  // GQZOO_GRAPH_DELTA_MERGE_H_
