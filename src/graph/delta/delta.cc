#include "src/graph/delta/delta.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace gqzoo {

MutationOp MutationOp::AddNode(std::string name, std::string label) {
  MutationOp op;
  op.kind = Kind::kAddNode;
  op.name = std::move(name);
  op.label = std::move(label);
  return op;
}

MutationOp MutationOp::RemoveNode(std::string name) {
  MutationOp op;
  op.kind = Kind::kRemoveNode;
  op.name = std::move(name);
  return op;
}

MutationOp MutationOp::AddEdge(std::string name, std::string src,
                               std::string tgt, std::string label) {
  MutationOp op;
  op.kind = Kind::kAddEdge;
  op.name = std::move(name);
  op.src = std::move(src);
  op.tgt = std::move(tgt);
  op.label = std::move(label);
  return op;
}

MutationOp MutationOp::RemoveEdge(std::string name) {
  MutationOp op;
  op.kind = Kind::kRemoveEdge;
  op.name = std::move(name);
  return op;
}

MutationOp MutationOp::SetLabel(std::string node, std::string label) {
  MutationOp op;
  op.kind = Kind::kSetLabel;
  op.name = std::move(node);
  op.label = std::move(label);
  return op;
}

MutationOp MutationOp::SetNodeProperty(std::string node, std::string property,
                                       Value v) {
  MutationOp op;
  op.kind = Kind::kSetProperty;
  op.name = std::move(node);
  op.property = std::move(property);
  op.value = std::move(v);
  return op;
}

MutationOp MutationOp::SetEdgeProperty(std::string edge, std::string property,
                                       Value v) {
  MutationOp op = SetNodeProperty(std::move(edge), std::move(property),
                                  std::move(v));
  op.on_edge = true;
  return op;
}

std::string MutationOp::ToString() const {
  switch (kind) {
    case Kind::kAddNode:
      return "add-node " + name + " " + label;
    case Kind::kRemoveNode:
      return "del-node " + name;
    case Kind::kAddEdge:
      return "add-edge " + name + " " + src + " " + tgt + " " + label;
    case Kind::kRemoveEdge:
      return "del-edge " + name;
    case Kind::kSetLabel:
      return "set-label " + name + " " + label;
    case Kind::kSetProperty:
      return std::string("set-prop ") + (on_edge ? "edge " : "node ") + name +
             " " + property + " " + value.ToString();
  }
  return "";
}

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    if (line[i] == '"') {
      // A quoted string token keeps its quotes (and escapes) for the value
      // parser; an escaped quote does not terminate the token.
      size_t j = i + 1;
      while (j < line.size() && line[j] != '"') {
        j += (line[j] == '\\' && j + 1 < line.size()) ? 2 : 1;
      }
      if (j < line.size()) ++j;  // include closing quote
      out.push_back(line.substr(i, j - i));
      i = j;
    } else {
      size_t j = i;
      while (j < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
      out.push_back(line.substr(i, j - i));
      i = j;
    }
  }
  return out;
}

Result<Value> ParseValueToken(const std::string& token) {
  if (token.empty()) {
    return Error(ErrorCode::kParse, "empty property value");
  }
  if (token == "true") return Value(true);
  if (token == "false") return Value(false);
  if (token.front() == '"') {
    if (token.size() < 2 || token.back() != '"') {
      return Error(ErrorCode::kParse, "unterminated string value: " + token);
    }
    return Value(UnescapeStringLiteral(token.substr(1, token.size() - 2)));
  }
  // Integer first; fall back to double.
  char* end = nullptr;
  long long i = std::strtoll(token.c_str(), &end, 10);
  if (end != nullptr && *end == '\0') return Value(static_cast<int64_t>(i));
  end = nullptr;
  double d = std::strtod(token.c_str(), &end);
  if (end != nullptr && *end == '\0') return Value(d);
  return Error(ErrorCode::kParse, "bad property value: " + token);
}

}  // namespace

bool IsMutationCommand(const std::string& word) {
  return word == "add-node" || word == "add-edge" || word == "del-node" ||
         word == "del-edge" || word == "set-label" || word == "set-prop";
}

bool IsValidMutationName(const std::string& s) {
  if (s.empty() || s.size() > kMaxMutationNameLen) return false;
  unsigned char first = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(first) && s[0] != '_') return false;
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_') return false;
  }
  return true;
}

Result<bool> ValidateMutationNames(const MutationOp& op) {
  auto bad = [](const char* what, const std::string& s) {
    const std::string shown = s.size() > 64 ? s.substr(0, 64) + "..." : s;
    return Error(ErrorCode::kInvalidArgument,
                 std::string(what) + " '" + shown +
                     "' is not a valid identifier ([A-Za-z_][A-Za-z0-9_]*, "
                     "at most " + std::to_string(kMaxMutationNameLen) +
                     " chars)");
  };
  if (!IsValidMutationName(op.name)) return bad("subject name", op.name);
  switch (op.kind) {
    case MutationOp::Kind::kAddNode:
    case MutationOp::Kind::kSetLabel:
      if (!IsValidMutationName(op.label)) return bad("label", op.label);
      break;
    case MutationOp::Kind::kAddEdge:
      if (!IsValidMutationName(op.label)) return bad("label", op.label);
      if (!IsValidMutationName(op.src)) return bad("source node", op.src);
      if (!IsValidMutationName(op.tgt)) return bad("target node", op.tgt);
      break;
    case MutationOp::Kind::kSetProperty:
      if (!IsValidMutationName(op.property)) {
        return bad("property", op.property);
      }
      if (op.value.is_string() &&
          op.value.as_string().size() > kMaxMutationValueLen) {
        return Error(ErrorCode::kInvalidArgument,
                     "string value of " +
                         std::to_string(op.value.as_string().size()) +
                         " bytes exceeds the write path's cap of " +
                         std::to_string(kMaxMutationValueLen));
      }
      break;
    case MutationOp::Kind::kRemoveNode:
    case MutationOp::Kind::kRemoveEdge:
      break;
  }
  return true;
}

Result<MutationOp> ParseMutationOp(const std::string& line) {
  std::vector<std::string> t = Tokenize(line);
  if (t.empty()) return Error(ErrorCode::kParse, "empty mutation");
  const std::string& verb = t[0];
  auto arity = [&](size_t n) -> bool { return t.size() == n; };
  if (verb == "add-node") {
    if (!arity(3)) {
      return Error(ErrorCode::kParse, "usage: add-node <name> <label>");
    }
    return MutationOp::AddNode(t[1], t[2]);
  }
  if (verb == "del-node") {
    if (!arity(2)) return Error(ErrorCode::kParse, "usage: del-node <name>");
    return MutationOp::RemoveNode(t[1]);
  }
  if (verb == "add-edge") {
    if (!arity(5)) {
      return Error(ErrorCode::kParse,
                   "usage: add-edge <name> <src> <tgt> <label>");
    }
    return MutationOp::AddEdge(t[1], t[2], t[3], t[4]);
  }
  if (verb == "del-edge") {
    if (!arity(2)) return Error(ErrorCode::kParse, "usage: del-edge <name>");
    return MutationOp::RemoveEdge(t[1]);
  }
  if (verb == "set-label") {
    if (!arity(3)) {
      return Error(ErrorCode::kParse, "usage: set-label <node> <label>");
    }
    return MutationOp::SetLabel(t[1], t[2]);
  }
  if (verb == "set-prop") {
    if (!arity(5) || (t[1] != "node" && t[1] != "edge")) {
      return Error(ErrorCode::kParse,
                   "usage: set-prop node|edge <name> <property> <value>");
    }
    Result<Value> v = ParseValueToken(t[4]);
    if (!v.ok()) return v.error();
    return t[1] == "edge"
               ? MutationOp::SetEdgeProperty(t[2], t[3], std::move(v).value())
               : MutationOp::SetNodeProperty(t[2], t[3], std::move(v).value());
  }
  return Error(ErrorCode::kParse, "unknown mutation command: " + verb);
}

MutationBatch& MutationBatch::AddNode(std::string name, std::string label) {
  ops.push_back(MutationOp::AddNode(std::move(name), std::move(label)));
  return *this;
}
MutationBatch& MutationBatch::RemoveNode(std::string name) {
  ops.push_back(MutationOp::RemoveNode(std::move(name)));
  return *this;
}
MutationBatch& MutationBatch::AddEdge(std::string name, std::string src,
                                      std::string tgt, std::string label) {
  ops.push_back(MutationOp::AddEdge(std::move(name), std::move(src),
                                    std::move(tgt), std::move(label)));
  return *this;
}
MutationBatch& MutationBatch::RemoveEdge(std::string name) {
  ops.push_back(MutationOp::RemoveEdge(std::move(name)));
  return *this;
}
MutationBatch& MutationBatch::SetLabel(std::string node, std::string label) {
  ops.push_back(MutationOp::SetLabel(std::move(node), std::move(label)));
  return *this;
}
MutationBatch& MutationBatch::SetNodeProperty(std::string node,
                                              std::string property, Value v) {
  ops.push_back(MutationOp::SetNodeProperty(std::move(node),
                                            std::move(property), std::move(v)));
  return *this;
}
MutationBatch& MutationBatch::SetEdgeProperty(std::string edge,
                                              std::string property, Value v) {
  ops.push_back(MutationOp::SetEdgeProperty(std::move(edge),
                                            std::move(property), std::move(v)));
  return *this;
}

DeltaOverlay::DeltaOverlay(std::shared_ptr<const PropertyGraph> base)
    : base_nodes_(static_cast<uint32_t>(base->NumNodes())),
      base_edges_(static_cast<uint32_t>(base->NumEdges())),
      base_labels_(static_cast<uint32_t>(base->skeleton().NumLabels())),
      base_props_(static_cast<uint32_t>(base->NumProperties())),
      base_(std::move(base)) {}

std::optional<uint32_t> DeltaOverlay::ResolveNode(
    const std::string& name) const {
  auto it = added_node_by_name_.find(name);
  if (it != added_node_by_name_.end()) {
    // The latest claimant among added nodes; when dead the name is free
    // (its base holder, if any, was already dead when the add succeeded).
    if (!added_nodes_[it->second].alive) return std::nullopt;
    return base_nodes_ + it->second;
  }
  std::optional<NodeId> base_id = base_->FindNode(name);
  if (!base_id.has_value() || !NodeAlive(*base_id)) return std::nullopt;
  return *base_id;
}

std::optional<uint32_t> DeltaOverlay::ResolveEdge(
    const std::string& name) const {
  auto it = added_edge_by_name_.find(name);
  if (it != added_edge_by_name_.end()) {
    if (!added_edges_[it->second].alive) return std::nullopt;
    return base_edges_ + it->second;
  }
  std::optional<EdgeId> base_id = base_->FindEdge(name);
  if (!base_id.has_value() || !EdgeAlive(*base_id)) return std::nullopt;
  return *base_id;
}

bool DeltaOverlay::NodeAlive(uint32_t old_id) const {
  if (old_id < base_nodes_) {
    return base_node_dead_.empty() || !base_node_dead_[old_id];
  }
  return added_nodes_[old_id - base_nodes_].alive;
}

bool DeltaOverlay::EdgeAlive(uint32_t old_id) const {
  if (old_id < base_edges_) {
    return base_edge_dead_.empty() || !base_edge_dead_[old_id];
  }
  return added_edges_[old_id - base_edges_].alive;
}

LabelId DeltaOverlay::NodeLabelOf(uint32_t old_id) const {
  if (old_id >= base_nodes_) return added_nodes_[old_id - base_nodes_].label;
  auto it = node_label_override_.find(old_id);
  if (it != node_label_override_.end()) return it->second;
  return base_->NodeLabel(old_id);
}

LabelId DeltaOverlay::EdgeLabelOf(uint32_t old_id) const {
  if (old_id >= base_edges_) return added_edges_[old_id - base_edges_].label;
  return base_->EdgeLabel(old_id);
}

LabelId DeltaOverlay::InternLabelName(const std::string& name) {
  std::optional<LabelId> base_id = base_->FindLabel(name);
  if (base_id.has_value()) return *base_id;
  auto it = added_label_by_name_.find(name);
  if (it != added_label_by_name_.end()) return it->second;
  LabelId id = base_labels_ + static_cast<LabelId>(added_labels_.size());
  added_labels_.push_back(name);
  added_label_by_name_.emplace(name, id);
  return id;
}

PropertyId DeltaOverlay::InternPropertyName(const std::string& name,
                                            bool* is_new) {
  *is_new = false;
  std::optional<PropertyId> base_id = base_->FindProperty(name);
  if (base_id.has_value()) return *base_id;
  auto it = added_prop_by_name_.find(name);
  if (it != added_prop_by_name_.end()) return it->second;
  PropertyId id = base_props_ + static_cast<PropertyId>(added_props_.size());
  added_props_.push_back(name);
  added_prop_by_name_.emplace(name, id);
  *is_new = true;
  return id;
}

const std::string& DeltaOverlay::LabelNameOf(LabelId l) const {
  if (l < base_labels_) return base_->LabelName(l);
  return added_labels_[l - base_labels_];
}

void DeltaOverlay::TouchLabel(LabelId l, std::vector<std::string>* out) {
  touched_label_ids_.insert(l);
  if (out != nullptr) out->push_back(LabelNameOf(l));
}

void DeltaOverlay::RemoveEdgeInternal(uint32_t old_id,
                                      std::vector<std::string>* touched) {
  TouchLabel(EdgeLabelOf(old_id), touched);
  if (old_id < base_edges_) {
    if (base_edge_dead_.empty()) base_edge_dead_.assign(base_edges_, 0);
    base_edge_dead_[old_id] = 1;
    ++removed_base_edges_;
  } else {
    added_edges_[old_id - base_edges_].alive = false;
    --alive_added_edges_;
  }
}

Result<bool> DeltaOverlay::ApplyOne(
    const MutationOp& op, std::vector<std::string>* touched_labels,
    std::vector<std::string>* touched_properties) {
  // Identifier validation up front (before any interning or resolution):
  // rejected ops must leave zero state behind, and accepted ops must be
  // WAL-payload round-trip safe.
  Result<bool> valid = ValidateMutationNames(op);
  if (!valid.ok()) return valid;
  switch (op.kind) {
    case MutationOp::Kind::kAddNode: {
      if (ResolveNode(op.name).has_value()) {
        return Error(ErrorCode::kInvalidArgument,
                     "node '" + op.name + "' already exists");
      }
      LabelId l = InternLabelName(op.label);
      uint32_t ordinal = static_cast<uint32_t>(added_nodes_.size());
      added_nodes_.push_back(AddedNode{op.name, l, true});
      added_node_by_name_[op.name] = ordinal;
      ++alive_added_nodes_;
      TouchLabel(l, touched_labels);
      return true;
    }
    case MutationOp::Kind::kRemoveNode: {
      std::optional<uint32_t> id = ResolveNode(op.name);
      if (!id.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown node '" + op.name + "'");
      }
      // Cascade: drop every alive incident edge first (base + added).
      if (*id < base_nodes_) {
        for (EdgeId e : base_->OutEdges(*id)) {
          if (EdgeAlive(e)) RemoveEdgeInternal(e, touched_labels);
        }
        for (EdgeId e : base_->InEdges(*id)) {
          if (EdgeAlive(e)) RemoveEdgeInternal(e, touched_labels);
        }
      }
      auto drop_added = [&](std::unordered_map<uint32_t,
                                               std::vector<uint32_t>>& adj) {
        auto it = adj.find(*id);
        if (it == adj.end()) return;
        for (uint32_t ordinal : it->second) {
          if (added_edges_[ordinal].alive) {
            RemoveEdgeInternal(base_edges_ + ordinal, touched_labels);
          }
        }
      };
      drop_added(added_out_);
      drop_added(added_in_);
      TouchLabel(NodeLabelOf(*id), touched_labels);
      if (*id < base_nodes_) {
        if (base_node_dead_.empty()) base_node_dead_.assign(base_nodes_, 0);
        base_node_dead_[*id] = 1;
        ++removed_base_nodes_;
      } else {
        added_nodes_[*id - base_nodes_].alive = false;
        --alive_added_nodes_;
      }
      return true;
    }
    case MutationOp::Kind::kAddEdge: {
      if (ResolveEdge(op.name).has_value()) {
        return Error(ErrorCode::kInvalidArgument,
                     "edge '" + op.name + "' already exists");
      }
      std::optional<uint32_t> src = ResolveNode(op.src);
      if (!src.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown node '" + op.src + "'");
      }
      std::optional<uint32_t> tgt = ResolveNode(op.tgt);
      if (!tgt.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown node '" + op.tgt + "'");
      }
      LabelId l = InternLabelName(op.label);
      uint32_t ordinal = static_cast<uint32_t>(added_edges_.size());
      added_edges_.push_back(AddedEdge{op.name, *src, *tgt, l, true});
      added_edge_by_name_[op.name] = ordinal;
      added_out_[*src].push_back(ordinal);
      added_in_[*tgt].push_back(ordinal);
      ++alive_added_edges_;
      TouchLabel(l, touched_labels);
      return true;
    }
    case MutationOp::Kind::kRemoveEdge: {
      std::optional<uint32_t> id = ResolveEdge(op.name);
      if (!id.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown edge '" + op.name + "'");
      }
      RemoveEdgeInternal(*id, touched_labels);
      return true;
    }
    case MutationOp::Kind::kSetLabel: {
      std::optional<uint32_t> id = ResolveNode(op.name);
      if (!id.has_value()) {
        return Error(ErrorCode::kNotFound, "unknown node '" + op.name + "'");
      }
      LabelId next = InternLabelName(op.label);
      LabelId prev = NodeLabelOf(*id);
      if (next == prev) return true;
      TouchLabel(prev, touched_labels);
      TouchLabel(next, touched_labels);
      if (*id < base_nodes_) {
        node_label_override_[*id] = next;
      } else {
        added_nodes_[*id - base_nodes_].label = next;
      }
      return true;
    }
    case MutationOp::Kind::kSetProperty: {
      std::optional<uint32_t> id =
          op.on_edge ? ResolveEdge(op.name) : ResolveNode(op.name);
      if (!id.has_value()) {
        return Error(ErrorCode::kNotFound,
                     std::string("unknown ") + (op.on_edge ? "edge" : "node") +
                         " '" + op.name + "'");
      }
      bool is_new = false;
      PropertyId p = InternPropertyName(op.property, &is_new);
      if (is_new && touched_properties != nullptr) {
        touched_properties->push_back(op.property);
      }
      prop_overrides_[PropKey(op.on_edge, *id, p)] = op.value;
      return true;
    }
  }
  return Error(ErrorCode::kInvalidArgument, "unknown mutation kind");
}

Result<size_t> DeltaOverlay::Apply(const MutationBatch& batch,
                                   std::vector<std::string>* touched_labels,
                                   std::vector<std::string>* touched_properties,
                                   const QueryContext* ctx) {
  size_t applied = 0;
  for (const MutationOp& op : batch.ops) {
    if (ctx != nullptr) {
      if (ShouldStop(ctx) ||
          !ChargeMemory(ctx, sizeof(MutationOp) + op.name.size() +
                                op.label.size() + 64)) {
        return Error(ErrorCode::kResourceExhausted,
                     "write budget exhausted after " +
                         std::to_string(applied) + " ops: " +
                         ctx->Report().ToString());
      }
    }
    Result<bool> r = ApplyOne(op, touched_labels, touched_properties);
    if (!r.ok()) {
      return Error(r.error().code(),
                   "op " + std::to_string(applied) + " (" + op.ToString() +
                       "): " + r.error().message());
    }
    log_.push_back(op);
    ++applied;
  }
  return applied;
}

size_t DeltaOverlay::ApproxBytes() const {
  size_t bytes = log_.size() * sizeof(MutationOp) +
                 added_nodes_.size() * sizeof(AddedNode) +
                 added_edges_.size() * sizeof(AddedEdge) +
                 base_node_dead_.size() + base_edge_dead_.size();
  bytes += prop_overrides_.size() * (sizeof(uint64_t) + sizeof(Value));
  bytes += (added_out_.size() + added_in_.size()) * 48;
  return bytes;
}

}  // namespace gqzoo
