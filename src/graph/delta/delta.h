#ifndef GQZOO_GRAPH_DELTA_DELTA_H_
#define GQZOO_GRAPH_DELTA_DELTA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/query_context.h"
#include "src/util/result.h"

namespace gqzoo {

/// One graph mutation. All subjects are identified by display name, never
/// by id: ids are an artifact of a particular base generation and change
/// when the compactor renumbers, while names are stable across the whole
/// overlay → merge → compact lifecycle (replaying the same op log against
/// the base always reproduces the same graph, byte for byte).
struct MutationOp {
  enum class Kind : uint8_t {
    kAddNode,      // name, label
    kRemoveNode,   // name (removes incident edges too)
    kAddEdge,      // name, src, tgt, label
    kRemoveEdge,   // name
    kSetLabel,     // name (a node), label
    kSetProperty,  // name, on_edge, property, value
  };

  Kind kind = Kind::kAddNode;
  std::string name;      // subject node/edge display name (required)
  std::string label;     // kAddNode, kAddEdge, kSetLabel
  std::string src, tgt;  // kAddEdge endpoint node names
  bool on_edge = false;  // kSetProperty: subject is an edge
  std::string property;  // kSetProperty
  Value value;           // kSetProperty

  static MutationOp AddNode(std::string name, std::string label);
  static MutationOp RemoveNode(std::string name);
  static MutationOp AddEdge(std::string name, std::string src, std::string tgt,
                            std::string label);
  static MutationOp RemoveEdge(std::string name);
  static MutationOp SetLabel(std::string node, std::string label);
  static MutationOp SetNodeProperty(std::string node, std::string property,
                                    Value v);
  static MutationOp SetEdgeProperty(std::string edge, std::string property,
                                    Value v);

  /// Shell-command syntax, e.g. `add-edge t9 a1 a3 Transfer`; round-trips
  /// with `ParseMutationOp`.
  std::string ToString() const;
};

/// Parses the shell mutation syntax:
///
///     add-node <name> <label>
///     add-edge <name> <src> <tgt> <label>
///     del-node <name>
///     del-edge <name>
///     set-label <node> <label>
///     set-prop node|edge <name> <property> <value>
///
/// Values are integers, doubles, double-quoted strings, or true/false (the
/// graph text format's value grammar).
Result<MutationOp> ParseMutationOp(const std::string& line);

/// Whether `word` is one of the mutation command verbs above.
bool IsMutationCommand(const std::string& word);

/// Longest name/label/property identifier the write path accepts.
inline constexpr size_t kMaxMutationNameLen = 1024;
/// Longest string property value the write path accepts.
inline constexpr size_t kMaxMutationValueLen = size_t{64} << 10;

/// Whether `s` is a valid subject/label/property identifier for the write
/// path: non-empty, at most `kMaxMutationNameLen` chars, first char
/// alphabetic or '_', rest alphanumeric or '_'. This is exactly the graph
/// text format's bare-identifier charset, so every op the overlay accepts
/// round-trips losslessly through the WAL's line-oriented textual payload
/// and through `PropertyGraphToText` — durability-safety by construction
/// rather than by escaping names everywhere they are rendered. The
/// reference simulator (`GraphSim`) enforces the identical rule.
bool IsValidMutationName(const std::string& s);

/// Checks every identifier `op` carries (subject, label, endpoints,
/// property) against `IsValidMutationName`, and string values against
/// `kMaxMutationValueLen`; `kInvalidArgument` on violation. Runs before any
/// state change in both `DeltaOverlay::ApplyOne` and the fuzzer's
/// reference simulator, so the two reject identically.
Result<bool> ValidateMutationNames(const MutationOp& op);

/// An ordered group of mutations applied as one write. Grouping amortizes
/// admission and invalidation; it is not a transaction — on a mid-batch
/// error the already-applied prefix stays (and only that prefix enters the
/// replay log, so delta and rebuild views never diverge).
struct MutationBatch {
  std::vector<MutationOp> ops;

  MutationBatch& AddNode(std::string name, std::string label);
  MutationBatch& RemoveNode(std::string name);
  MutationBatch& AddEdge(std::string name, std::string src, std::string tgt,
                         std::string label);
  MutationBatch& RemoveEdge(std::string name);
  MutationBatch& SetLabel(std::string node, std::string label);
  MutationBatch& SetNodeProperty(std::string node, std::string property,
                                 Value v);
  MutationBatch& SetEdgeProperty(std::string edge, std::string property,
                                 Value v);

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }
};

/// The pending write set layered over one immutable base `PropertyGraph`:
/// added nodes/edges, tombstone bitmaps for removed base elements, label
/// overrides, and property overrides — everything keyed in "old space"
/// (base ids, with added elements numbered past the base counts) so no
/// renumbering happens until a merge or compaction materializes a view.
///
/// Not thread-safe: the engine serializes writers (and the merger, which
/// reads this state) behind its write lock. The base graph is pinned by
/// shared_ptr and never modified.
class DeltaOverlay {
 public:
  explicit DeltaOverlay(std::shared_ptr<const PropertyGraph> base);

  /// Applies `batch` op by op, stopping at the first invalid op (the error
  /// names the op and its index; prior ops stay applied). Appends label
  /// names whose edge/node membership changed to `touched_labels` and
  /// newly interned property names to `touched_properties` (both may be
  /// null). `ctx`, when set, charges one step per op plus the overlay
  /// growth in bytes — the write path's budget admission.
  Result<size_t> Apply(const MutationBatch& batch,
                       std::vector<std::string>* touched_labels,
                       std::vector<std::string>* touched_properties,
                       const QueryContext* ctx = nullptr);

  const std::shared_ptr<const PropertyGraph>& base() const { return base_; }

  /// Number of ops applied since construction == log().size(). The engine
  /// publishes this as the overlay's delta sequence number.
  uint64_t seq() const { return log_.size(); }
  const std::vector<MutationOp>& log() const { return log_; }

  size_t alive_added_nodes() const { return alive_added_nodes_; }
  size_t alive_added_edges() const { return alive_added_edges_; }
  size_t removed_base_nodes() const { return removed_base_nodes_; }
  size_t removed_base_edges() const { return removed_base_edges_; }

  /// Labels (ids in the overlay's layered universe) whose membership any
  /// applied op changed since construction — the merger recomputes exactly
  /// these labels' statistics.
  const std::unordered_set<LabelId>& touched_label_ids() const {
    return touched_label_ids_;
  }

  size_t ApproxBytes() const;

 private:
  friend class GraphDeltaMerger;

  struct AddedNode {
    std::string name;
    LabelId label;
    bool alive;
  };
  struct AddedEdge {
    std::string name;
    uint32_t src, tgt;  // old-space node ids
    LabelId label;
    bool alive;
  };

  // Old-space ids: values below the base count are base ids; the rest are
  // added ordinals offset by the base count.
  uint32_t base_nodes_ = 0;
  uint32_t base_edges_ = 0;
  uint32_t base_labels_ = 0;
  uint32_t base_props_ = 0;

  std::optional<uint32_t> ResolveNode(const std::string& name) const;
  std::optional<uint32_t> ResolveEdge(const std::string& name) const;
  bool NodeAlive(uint32_t old_id) const;
  bool EdgeAlive(uint32_t old_id) const;
  LabelId NodeLabelOf(uint32_t old_id) const;
  LabelId EdgeLabelOf(uint32_t old_id) const;
  /// Interns into the layered label universe; records newly created names.
  LabelId InternLabelName(const std::string& name);
  PropertyId InternPropertyName(const std::string& name, bool* is_new);
  const std::string& LabelNameOf(LabelId l) const;
  void TouchLabel(LabelId l, std::vector<std::string>* out);
  void RemoveEdgeInternal(uint32_t old_id, std::vector<std::string>* touched);

  Result<bool> ApplyOne(const MutationOp& op,
                        std::vector<std::string>* touched_labels,
                        std::vector<std::string>* touched_properties);

  std::shared_ptr<const PropertyGraph> base_;
  std::vector<MutationOp> log_;

  std::vector<AddedNode> added_nodes_;
  std::vector<AddedEdge> added_edges_;
  // Latest claimant of a name among added elements (may be dead; a dead
  // entry means the name is free — its base holder, if any, died first).
  std::unordered_map<std::string, uint32_t> added_node_by_name_;
  std::unordered_map<std::string, uint32_t> added_edge_by_name_;

  std::vector<uint8_t> base_node_dead_;  // sized lazily on first removal
  std::vector<uint8_t> base_edge_dead_;
  std::unordered_map<uint32_t, LabelId> node_label_override_;  // base ids only

  // Old-space incident added edges, for cascade removal.
  std::unordered_map<uint32_t, std::vector<uint32_t>> added_out_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> added_in_;

  // (old-space object, property) -> value. Packs kind|id|property.
  std::unordered_map<uint64_t, Value> prop_overrides_;
  static uint64_t PropKey(bool edge, uint32_t old_id, PropertyId p) {
    return (uint64_t{edge} << 63) | (uint64_t{old_id} << 31) | p;
  }

  std::vector<std::string> added_labels_;  // ids base_labels_ + index
  std::unordered_map<std::string, LabelId> added_label_by_name_;
  std::vector<std::string> added_props_;
  std::unordered_map<std::string, PropertyId> added_prop_by_name_;

  std::unordered_set<LabelId> touched_label_ids_;

  size_t alive_added_nodes_ = 0;
  size_t alive_added_edges_ = 0;
  size_t removed_base_nodes_ = 0;
  size_t removed_base_edges_ = 0;
};

}  // namespace gqzoo

#endif  // GQZOO_GRAPH_DELTA_DELTA_H_
