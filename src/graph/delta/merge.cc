#include "src/graph/delta/merge.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace gqzoo {

/// New-space id assignment shared by Merge and Materialize: surviving base
/// elements first, in base-id order, then alive added elements in insertion
/// order. Added new ids therefore always exceed surviving base new ids, and
/// both mappings are monotone — the splice below leans on that.
struct GraphDeltaMerger::IdMap {
  std::vector<uint32_t> node_origin;       // new id -> old-space id
  std::vector<uint32_t> edge_origin;
  std::vector<uint32_t> base_node_to_new;  // base id -> new id / kInvalidId
  std::vector<uint32_t> base_edge_to_new;
  std::vector<uint32_t> added_node_to_new;  // added ordinal -> new id
  std::vector<uint32_t> added_edge_to_new;
};

GraphDeltaMerger::IdMap GraphDeltaMerger::BuildIdMap(
    const DeltaOverlay& overlay) {
  IdMap ids;
  const uint32_t bn = overlay.base_nodes_;
  const uint32_t be = overlay.base_edges_;

  ids.base_node_to_new.assign(bn, kInvalidId);
  ids.node_origin.reserve(bn - overlay.removed_base_nodes_ +
                          overlay.alive_added_nodes_);
  for (uint32_t b = 0; b < bn; ++b) {
    if (!overlay.NodeAlive(b)) continue;
    ids.base_node_to_new[b] = static_cast<uint32_t>(ids.node_origin.size());
    ids.node_origin.push_back(b);
  }
  ids.added_node_to_new.assign(overlay.added_nodes_.size(), kInvalidId);
  for (size_t i = 0; i < overlay.added_nodes_.size(); ++i) {
    if (!overlay.added_nodes_[i].alive) continue;
    ids.added_node_to_new[i] = static_cast<uint32_t>(ids.node_origin.size());
    ids.node_origin.push_back(bn + static_cast<uint32_t>(i));
  }

  ids.base_edge_to_new.assign(be, kInvalidId);
  ids.edge_origin.reserve(be - overlay.removed_base_edges_ +
                          overlay.alive_added_edges_);
  for (uint32_t b = 0; b < be; ++b) {
    if (!overlay.EdgeAlive(b)) continue;
    ids.base_edge_to_new[b] = static_cast<uint32_t>(ids.edge_origin.size());
    ids.edge_origin.push_back(b);
  }
  ids.added_edge_to_new.assign(overlay.added_edges_.size(), kInvalidId);
  for (size_t i = 0; i < overlay.added_edges_.size(); ++i) {
    if (!overlay.added_edges_[i].alive) continue;
    ids.added_edge_to_new[i] = static_cast<uint32_t>(ids.edge_origin.size());
    ids.edge_origin.push_back(be + static_cast<uint32_t>(i));
  }
  return ids;
}

MergedGraph GraphDeltaMerger::Merge(const GraphSnapshot& base_snapshot,
                                    const DeltaOverlay& overlay) {
  const std::shared_ptr<const PropertyGraph>& base_sp = overlay.base();
  const PropertyGraph& base = *base_sp;
  const EdgeLabeledGraph& bs = base.skeleton();
  const uint32_t bn = overlay.base_nodes_;
  const uint32_t be = overlay.base_edges_;
  const uint32_t bl = overlay.base_labels_;
  assert(base_snapshot.has_node_labels_ &&
         "merge needs a snapshot built from the base PropertyGraph");
  assert(base_snapshot.NumNodes() == bn && base_snapshot.NumEdges() == be);

  IdMap ids = BuildIdMap(overlay);
  const size_t n_new = ids.node_origin.size();
  const size_t m_new = ids.edge_origin.size();
  const size_t num_labels = bl + overlay.added_labels_.size();

  auto node_new = [&](uint32_t old) {
    return old < bn ? ids.base_node_to_new[old]
                    : ids.added_node_to_new[old - bn];
  };
  auto edge_new = [&](uint32_t old) {
    return old < be ? ids.base_edge_to_new[old]
                    : ids.added_edge_to_new[old - be];
  };

  auto merged = std::make_shared<PropertyGraph>();
  PropertyGraph& g = *merged;

  // Numeric hot-path arrays, fully materialized in the merged id space.
  // Edges are visited in new-id order, so the per-node out_/in_ lists come
  // out exactly as a from-scratch AddEdge sequence would build them.
  g.skeleton_.edges_.reserve(m_new);
  g.skeleton_.out_.assign(n_new, {});
  g.skeleton_.in_.assign(n_new, {});
  for (EdgeId e = 0; e < m_new; ++e) {
    uint32_t old = ids.edge_origin[e];
    uint32_t src_old, tgt_old;
    LabelId label;
    if (old < be) {
      src_old = bs.Src(old);
      tgt_old = bs.Tgt(old);
      label = bs.EdgeLabel(old);
    } else {
      const DeltaOverlay::AddedEdge& ae = overlay.added_edges_[old - be];
      src_old = ae.src;
      tgt_old = ae.tgt;
      label = ae.label;
    }
    NodeId s = node_new(src_old);
    NodeId t = node_new(tgt_old);
    g.skeleton_.edges_.push_back({s, t, label});
    g.skeleton_.out_[s].push_back(e);
    g.skeleton_.in_[t].push_back(e);
  }
  g.node_labels_.resize(n_new);
  for (NodeId v = 0; v < static_cast<NodeId>(n_new); ++v) {
    g.node_labels_[v] = overlay.NodeLabelOf(ids.node_origin[v]);
  }

  // Property overrides (and added-object properties) keyed in new space;
  // everything else falls through to the base map at read time.
  auto props = std::make_shared<PropertyGraph::OverlayProps>();
  props->base = base_sp;
  props->base_props = overlay.base_props_;
  props->added_props = overlay.added_props_;
  props->added_prop_by_name = overlay.added_prop_by_name_;
  for (const auto& [key, value] : overlay.prop_overrides_) {
    bool on_edge = (key >> 63) != 0;
    uint32_t old = static_cast<uint32_t>((key >> 31) & 0xFFFFFFFFu);
    PropertyId p = static_cast<PropertyId>(key & 0x7FFFFFFFu);
    if (on_edge) {
      if (!overlay.EdgeAlive(old)) continue;
      g.props_[{ObjectRef::Edge(edge_new(old)), p}] = value;
    } else {
      if (!overlay.NodeAlive(old)) continue;
      g.props_[{ObjectRef::Node(node_new(old)), p}] = value;
    }
  }

  // --- CSR splice: per-node two-pointer merge of the (filtered,
  // translated) base slice with the node's sorted added hops. The base
  // slice is already (label, edge)-sorted, translation is monotone, and
  // added new ids exceed every surviving base id — so equal labels need no
  // tie-break and no global re-sort happens anywhere.
  auto snap_owner = std::unique_ptr<GraphSnapshot>(new GraphSnapshot());
  GraphSnapshot& snap = *snap_owner;
  snap.g_ = &g.skeleton_;
  snap.num_nodes_ = n_new;
  snap.num_labels_ = num_labels;
  snap.owned_ = std::make_unique<GraphSnapshot::Owned>();

  auto splice_direction = [&](bool inverse, GraphSnapshot::OwnedCsr* csr) {
    csr->node_begin.assign(n_new + 1, 0);
    csr->runs_begin.assign(n_new + 1, 0);
    csr->hops.clear();
    csr->hops.reserve(m_new);
    csr->runs.clear();
    struct LabeledHop {
      LabelId label;
      GraphSnapshot::Hop hop;
    };
    std::vector<LabeledHop> added;
    const std::unordered_map<uint32_t, std::vector<uint32_t>>& added_adj =
        inverse ? overlay.added_in_ : overlay.added_out_;
    for (NodeId v = 0; v < static_cast<NodeId>(n_new); ++v) {
      uint32_t old = ids.node_origin[v];
      const uint32_t hops_start = static_cast<uint32_t>(csr->hops.size());
      added.clear();
      auto adj_it = added_adj.find(old);
      if (adj_it != added_adj.end()) {
        for (uint32_t ord : adj_it->second) {
          const DeltaOverlay::AddedEdge& ae = overlay.added_edges_[ord];
          if (!ae.alive) continue;
          uint32_t other_old = inverse ? ae.src : ae.tgt;
          added.push_back({ae.label,
                           {ids.added_edge_to_new[ord], node_new(other_old)}});
        }
        std::sort(added.begin(), added.end(),
                  [](const LabeledHop& a, const LabeledHop& b) {
                    if (a.label != b.label) return a.label < b.label;
                    return a.hop.edge < b.hop.edge;
                  });
      }
      size_t ai = 0;
      if (old < bn) {
        GraphSnapshot::Slice slice =
            inverse ? base_snapshot.In(old) : base_snapshot.Out(old);
        for (const GraphSnapshot::Hop& h : slice) {
          if (!overlay.EdgeAlive(h.edge)) continue;
          LabelId label = bs.EdgeLabel(h.edge);
          while (ai < added.size() && added[ai].label < label) {
            csr->hops.push_back(added[ai++].hop);
          }
          csr->hops.push_back(
              {ids.base_edge_to_new[h.edge], ids.base_node_to_new[h.node]});
        }
      }
      while (ai < added.size()) csr->hops.push_back(added[ai++].hop);
      const uint32_t hops_end = static_cast<uint32_t>(csr->hops.size());
      csr->node_begin[v + 1] = hops_end;
      uint32_t i = hops_start;
      while (i < hops_end) {
        LabelId label = g.skeleton_.edges_[csr->hops[i].edge].label;
        uint32_t j = i + 1;
        while (j < hops_end &&
               g.skeleton_.edges_[csr->hops[j].edge].label == label) {
          ++j;
        }
        csr->runs.push_back({label, i, j});
        i = j;
      }
      csr->runs_begin[v + 1] = static_cast<uint32_t>(csr->runs.size());
    }
  };
  splice_direction(/*inverse=*/false, &snap.owned_->out);
  splice_direction(/*inverse=*/true, &snap.owned_->in);

  // Graph-wide per-label edge lists: surviving base slice (translated, edge
  // ids stay ascending), then added edges of the label in ordinal order
  // (their new ids are larger and also ascending).
  std::vector<std::vector<GraphSnapshot::Hop>> added_by_label(num_labels);
  for (size_t ord = 0; ord < overlay.added_edges_.size(); ++ord) {
    const DeltaOverlay::AddedEdge& ae = overlay.added_edges_[ord];
    if (!ae.alive) continue;
    added_by_label[ae.label].push_back(
        {ids.added_edge_to_new[ord], node_new(ae.tgt)});
  }
  snap.owned_->label_begin.assign(num_labels + 1, 0);
  snap.owned_->label_edges.clear();
  snap.owned_->label_edges.reserve(m_new);
  for (LabelId l = 0; l < static_cast<LabelId>(num_labels); ++l) {
    if (l < bl) {
      for (const GraphSnapshot::Hop& h : base_snapshot.EdgesWithLabel(l)) {
        if (!overlay.EdgeAlive(h.edge)) continue;
        snap.owned_->label_edges.push_back(
            {ids.base_edge_to_new[h.edge], ids.base_node_to_new[h.node]});
      }
    }
    for (const GraphSnapshot::Hop& h : added_by_label[l]) {
      snap.owned_->label_edges.push_back(h);
    }
    snap.owned_->label_begin[l + 1] =
        static_cast<uint32_t>(snap.owned_->label_edges.size());
  }

  // Node-label index (flat CSR layout): filter the base list (a node
  // leaves it when removed or relabeled), then merge-insert relabeled and
  // added nodes, appending each label's run to the flat array.
  snap.has_node_labels_ = true;
  snap.owned_->nodes_by_label_begin.assign(num_labels + 1, 0);
  snap.owned_->nodes_by_label.clear();
  std::vector<std::vector<NodeId>> inserts(num_labels);
  for (const auto& [b, lab] : overlay.node_label_override_) {
    if (!overlay.NodeAlive(b)) continue;
    if (base.NodeLabel(b) == lab) continue;  // overridden back to base label
    inserts[lab].push_back(ids.base_node_to_new[b]);
  }
  for (size_t i = 0; i < overlay.added_nodes_.size(); ++i) {
    const DeltaOverlay::AddedNode& an = overlay.added_nodes_[i];
    if (an.alive) inserts[an.label].push_back(ids.added_node_to_new[i]);
  }
  std::vector<NodeId> kept;
  for (LabelId l = 0; l < static_cast<LabelId>(num_labels); ++l) {
    kept.clear();
    if (l < bl) {
      for (NodeId b : base_snapshot.NodesWithLabel(l)) {
        if (overlay.NodeAlive(b) && overlay.NodeLabelOf(b) == l) {
          kept.push_back(ids.base_node_to_new[b]);
        }
      }
    }
    std::sort(inserts[l].begin(), inserts[l].end());
    const size_t at = snap.owned_->nodes_by_label.size();
    snap.owned_->nodes_by_label.resize(at + kept.size() + inserts[l].size());
    std::merge(kept.begin(), kept.end(), inserts[l].begin(), inserts[l].end(),
               snap.owned_->nodes_by_label.begin() + at);
    snap.owned_->nodes_by_label_begin[l + 1] =
        static_cast<uint32_t>(snap.owned_->nodes_by_label.size());
  }
  snap.FinalizeViews();

  // Borrowed-name tables — filled last so the id maps can be moved in.
  auto names = std::make_shared<EdgeLabeledGraph::OverlayNames>();
  names->base_owner = base_sp;
  names->base = &bs;
  names->base_nodes = bn;
  names->base_edges = be;
  names->base_labels = bl;
  names->added_node_names.reserve(overlay.added_nodes_.size());
  for (size_t i = 0; i < overlay.added_nodes_.size(); ++i) {
    const DeltaOverlay::AddedNode& an = overlay.added_nodes_[i];
    names->added_node_names.push_back(an.name);
    if (an.alive) {
      names->added_node_by_name.emplace(an.name, ids.added_node_to_new[i]);
    }
  }
  names->added_edge_names.reserve(overlay.added_edges_.size());
  for (size_t i = 0; i < overlay.added_edges_.size(); ++i) {
    const DeltaOverlay::AddedEdge& ae = overlay.added_edges_[i];
    names->added_edge_names.push_back(ae.name);
    if (ae.alive) {
      names->added_edge_by_name.emplace(ae.name, ids.added_edge_to_new[i]);
    }
  }
  names->added_labels = overlay.added_labels_;
  names->added_label_by_name = overlay.added_label_by_name_;
  names->node_origin = std::move(ids.node_origin);
  names->edge_origin = std::move(ids.edge_origin);
  names->base_node_to_new = std::move(ids.base_node_to_new);
  names->base_edge_to_new = std::move(ids.base_edge_to_new);
  g.skeleton_.overlay_ = std::move(names);
  g.overlay_ = std::move(props);

  MergedGraph out;
  out.graph = merged;
  // The snapshot pins the merged view, which pins the base generation.
  out.snapshot = std::shared_ptr<const GraphSnapshot>(
      snap_owner.release(), [merged](const GraphSnapshot* s) { delete s; });
  out.touched_labels.assign(overlay.touched_label_ids_.begin(),
                            overlay.touched_label_ids_.end());
  std::sort(out.touched_labels.begin(), out.touched_labels.end());
  return out;
}

PropertyGraph GraphDeltaMerger::Materialize(const DeltaOverlay& overlay) {
  const PropertyGraph& base = *overlay.base();
  const EdgeLabeledGraph& bs = base.skeleton();
  const uint32_t bn = overlay.base_nodes_;
  const uint32_t be = overlay.base_edges_;
  const uint32_t bl = overlay.base_labels_;
  const uint32_t bp = overlay.base_props_;

  PropertyGraph g;
  // Pre-seed the interners in id order: merged views, the compacted base
  // they fold into, and from-scratch replays all share one label/property
  // id space, so cached plans survive compaction and the overlay's
  // old-space ids keep their meaning across generations.
  for (LabelId l = 0; l < bl; ++l) g.InternLabel(bs.LabelName(l));
  for (const std::string& name : overlay.added_labels_) g.InternLabel(name);
  for (PropertyId p = 0; p < bp; ++p) g.InternProperty(base.PropertyName(p));
  for (const std::string& name : overlay.added_props_) g.InternProperty(name);

  IdMap ids = BuildIdMap(overlay);
  auto node_new = [&](uint32_t old) {
    return old < bn ? ids.base_node_to_new[old]
                    : ids.added_node_to_new[old - bn];
  };
  auto edge_new = [&](uint32_t old) {
    return old < be ? ids.base_edge_to_new[old]
                    : ids.added_edge_to_new[old - be];
  };

  for (uint32_t old : ids.node_origin) {
    std::string name = old < bn ? std::string(bs.NodeName(old))
                                : overlay.added_nodes_[old - bn].name;
    g.AddNode(name, overlay.LabelNameOf(overlay.NodeLabelOf(old)));
  }
  for (uint32_t old : ids.edge_origin) {
    uint32_t src_old, tgt_old;
    if (old < be) {
      src_old = bs.Src(old);
      tgt_old = bs.Tgt(old);
    } else {
      src_old = overlay.added_edges_[old - be].src;
      tgt_old = overlay.added_edges_[old - be].tgt;
    }
    std::string name = old < be ? std::string(bs.EdgeName(old))
                                : overlay.added_edges_[old - be].name;
    g.AddEdge(node_new(src_old), node_new(tgt_old),
              overlay.LabelNameOf(overlay.EdgeLabelOf(old)), name);
  }

  // Base properties of surviving objects, unless overridden; then the
  // overlay's overrides. Insertion order does not matter — properties
  // render sorted by id, and the ids were pre-seeded above.
  base.ForEachProperty([&](ObjectRef o, PropertyId p, const Value& v) {
    if (o.is_node() ? !overlay.NodeAlive(o.id) : !overlay.EdgeAlive(o.id)) {
      return;
    }
    if (overlay.prop_overrides_.count(
            DeltaOverlay::PropKey(o.is_edge(), o.id, p)) != 0) {
      return;
    }
    ObjectRef here = o.is_node() ? ObjectRef::Node(node_new(o.id))
                                 : ObjectRef::Edge(edge_new(o.id));
    g.SetProperty(here, base.PropertyName(p), v);
  });
  for (const auto& [key, value] : overlay.prop_overrides_) {
    bool on_edge = (key >> 63) != 0;
    uint32_t old = static_cast<uint32_t>((key >> 31) & 0xFFFFFFFFu);
    PropertyId p = static_cast<PropertyId>(key & 0x7FFFFFFFu);
    if (on_edge ? !overlay.EdgeAlive(old) : !overlay.NodeAlive(old)) continue;
    const std::string& pname =
        p < bp ? base.PropertyName(p) : overlay.added_props_[p - bp];
    ObjectRef here = on_edge ? ObjectRef::Edge(edge_new(old))
                             : ObjectRef::Node(node_new(old));
    g.SetProperty(here, pname, value);
  }
  return g;
}

PropertyGraph GraphDeltaMerger::Replay(const PropertyGraph& base,
                                       const std::vector<MutationOp>& log) {
  // Non-owning alias: the scratch overlay borrows `base` for the duration
  // of this call only.
  std::shared_ptr<const PropertyGraph> alias(std::shared_ptr<const void>(),
                                             &base);
  DeltaOverlay scratch(std::move(alias));
  MutationBatch batch;
  batch.ops = log;
  Result<size_t> applied =
      scratch.Apply(batch, /*touched_labels=*/nullptr,
                    /*touched_properties=*/nullptr);
  (void)applied;
  assert(applied.ok() && "replaying a validated op log cannot fail");
  return Materialize(scratch);
}

}  // namespace gqzoo
