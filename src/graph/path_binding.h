#ifndef GQZOO_GRAPH_PATH_BINDING_H_
#define GQZOO_GRAPH_PATH_BINDING_H_

#include <map>
#include <string>

#include "src/graph/path.h"

namespace gqzoo {

/// A binding µ mapping list variables to lists of graph objects
/// (Section 3.1.4). Only variables with non-empty lists are stored; absent
/// variables implicitly map to `list()`, matching the paper's convention
/// that µ is total but almost-everywhere empty.
struct Binding {
  std::map<std::string, ObjectList> lists;

  /// µ(z); `list()` when absent.
  const ObjectList& Get(const std::string& var) const {
    static const ObjectList kEmpty;
    auto it = lists.find(var);
    return it == lists.end() ? kEmpty : it->second;
  }

  /// Appends `o` to µ(var).
  void Append(const std::string& var, ObjectRef o) {
    lists[var].push_back(o);
  }

  /// µ1 · µ2: concatenates all lists pointwise.
  static Binding Concat(const Binding& a, const Binding& b) {
    Binding out = a;
    for (const auto& [var, list] : b.lists) {
      ObjectList& dst = out.lists[var];
      dst.insert(dst.end(), list.begin(), list.end());
    }
    return out;
  }

  bool operator==(const Binding& o) const { return lists == o.lists; }
  bool operator<(const Binding& o) const { return lists < o.lists; }

  std::string ToString(const EdgeLabeledGraph& g) const {
    std::string out = "{";
    bool first = true;
    for (const auto& [var, list] : lists) {
      if (!first) out += ", ";
      first = false;
      out += var + " -> " + ListToString(g, list);
    }
    return out + "}";
  }
};

/// A path binding (p, µ): the semantic objects of l-RPQs and dl-RPQs.
struct PathBinding {
  Path path;
  Binding mu;

  bool operator==(const PathBinding& o) const {
    return path == o.path && mu == o.mu;
  }
  bool operator<(const PathBinding& o) const {
    if (path != o.path) return path < o.path;
    return mu < o.mu;
  }
};

/// Approximate resident footprint of a path binding, for the query
/// engine's budget accounting (QueryContext::ChargeMemory). Dominant terms
/// only: the object sequence plus per-variable list storage and overhead.
inline uint64_t ApproxBytes(const PathBinding& pb) {
  uint64_t bytes = 64 + pb.path.objects().size() * sizeof(ObjectRef);
  for (const auto& [var, list] : pb.mu.lists) {
    bytes += 48 + var.size() + list.size() * sizeof(ObjectRef);
  }
  return bytes;
}

}  // namespace gqzoo

#endif  // GQZOO_GRAPH_PATH_BINDING_H_
