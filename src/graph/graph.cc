#include "src/graph/graph.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace gqzoo {

NodeId EdgeLabeledGraph::AddNode(const std::string& name) {
  assert(overlay_ == nullptr && mapped_ == nullptr &&
         "overlay/mapped graphs are immutable");
  NodeId id = static_cast<NodeId>(node_names_.size());
  std::string effective = name.empty() ? "n" + std::to_string(id) : name;
  assert(node_by_name_.find(effective) == node_by_name_.end() &&
         "duplicate node name");
  node_names_.push_back(effective);
  node_by_name_.emplace(std::move(effective), id);
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

EdgeId EdgeLabeledGraph::AddEdge(NodeId src, NodeId tgt,
                                 const std::string& label,
                                 const std::string& name) {
  return AddEdge(src, tgt, labels_.Intern(label), name);
}

EdgeId EdgeLabeledGraph::AddEdge(NodeId src, NodeId tgt, LabelId label,
                                 const std::string& name) {
  assert(overlay_ == nullptr && mapped_ == nullptr &&
         "overlay/mapped graphs are immutable");
  assert(src < NumNodes() && tgt < NumNodes());
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({src, tgt, label});
  std::string effective = name.empty() ? "e" + std::to_string(id) : name;
  assert(edge_by_name_.find(effective) == edge_by_name_.end() &&
         "duplicate edge name");
  edge_names_.push_back(effective);
  edge_by_name_.emplace(std::move(effective), id);
  out_[src].push_back(id);
  in_[tgt].push_back(id);
  return id;
}

void EdgeLabeledGraph::EnsureMappedAdjacency() const {
  const MappedSkeleton& m = *mapped_;
  std::call_once(m.adj_once, [&m] {
    m.out.assign(m.num_nodes, {});
    m.in.assign(m.num_nodes, {});
    for (EdgeId e = 0; e < m.edges.size(); ++e) {
      m.out[m.edges[e].src].push_back(e);
      m.in[m.edges[e].tgt].push_back(e);
    }
  });
}

std::optional<NodeId> EdgeLabeledGraph::FindNode(
    const std::string& name) const {
  if (overlay_ != nullptr) {
    // Added elements claim a name before the base holder is consulted; a
    // delta only adds a name when its base holder (if any) is removed.
    auto added = overlay_->added_node_by_name.find(name);
    if (added != overlay_->added_node_by_name.end()) return added->second;
    std::optional<NodeId> base_id = overlay_->base->FindNode(name);
    if (!base_id.has_value()) return std::nullopt;
    uint32_t here = overlay_->base_node_to_new[*base_id];
    if (here == kInvalidId) return std::nullopt;
    return here;
  }
  if (mapped_ != nullptr) {
    const MappedSkeleton& m = *mapped_;
    const NodeId* it = std::lower_bound(
        m.nodes_by_name.begin(), m.nodes_by_name.end(),
        std::string_view(name), [this](NodeId id, std::string_view needle) {
          return NodeName(id) < needle;
        });
    if (it == m.nodes_by_name.end() || NodeName(*it) != name) {
      return std::nullopt;
    }
    return *it;
  }
  auto it = node_by_name_.find(name);
  if (it == node_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeId> EdgeLabeledGraph::FindEdge(
    const std::string& name) const {
  if (overlay_ != nullptr) {
    auto added = overlay_->added_edge_by_name.find(name);
    if (added != overlay_->added_edge_by_name.end()) return added->second;
    std::optional<EdgeId> base_id = overlay_->base->FindEdge(name);
    if (!base_id.has_value()) return std::nullopt;
    uint32_t here = overlay_->base_edge_to_new[*base_id];
    if (here == kInvalidId) return std::nullopt;
    return here;
  }
  if (mapped_ != nullptr) {
    const MappedSkeleton& m = *mapped_;
    const EdgeId* it = std::lower_bound(
        m.edges_by_name.begin(), m.edges_by_name.end(),
        std::string_view(name), [this](EdgeId id, std::string_view needle) {
          return EdgeName(id) < needle;
        });
    if (it == m.edges_by_name.end() || EdgeName(*it) != name) {
      return std::nullopt;
    }
    return *it;
  }
  auto it = edge_by_name_.find(name);
  if (it == edge_by_name_.end()) return std::nullopt;
  return it->second;
}

EdgeLabeledGraph EdgeLabeledGraph::MaterializePlain() const {
  if (overlay_ == nullptr && mapped_ == nullptr) return *this;
  EdgeLabeledGraph g;
  // Id-faithful rebuild: labels, nodes, edges interned in id order, so the
  // copy answers every id-based accessor identically to the source.
  for (LabelId l = 0; l < static_cast<LabelId>(NumLabels()); ++l) {
    g.labels_.Intern(std::string(LabelName(l)));
  }
  for (NodeId n = 0; n < static_cast<NodeId>(NumNodes()); ++n) {
    g.AddNode(std::string(NodeName(n)));
  }
  for (EdgeId e = 0; e < static_cast<EdgeId>(NumEdges()); ++e) {
    g.AddEdge(Src(e), Tgt(e), EdgeLabel(e), std::string(EdgeName(e)));
  }
  return g;
}

NodeId PropertyGraph::AddNode(const std::string& name,
                              const std::string& label) {
  NodeId id = skeleton_.AddNode(name);
  node_labels_.push_back(skeleton_.InternLabel(label));
  return id;
}

EdgeId PropertyGraph::AddEdge(NodeId src, NodeId tgt, const std::string& label,
                              const std::string& name) {
  return skeleton_.AddEdge(src, tgt, label, name);
}

void PropertyGraph::SetProperty(ObjectRef o, const std::string& prop,
                                Value v) {
  assert(overlay_ == nullptr && mapped_ == nullptr &&
         "overlay/mapped graphs are immutable");
  PropertyId pid = properties_.Intern(prop);
  props_[{o, pid}] = std::move(v);
}

std::optional<ObjectRef> PropertyGraph::BaseRef(ObjectRef o) const {
  const EdgeLabeledGraph::OverlayNames& names = *skeleton_.overlay_;
  if (o.is_node()) {
    uint32_t old = names.node_origin[o.id];
    if (old >= names.base_nodes) return std::nullopt;
    return ObjectRef::Node(old);
  }
  uint32_t old = names.edge_origin[o.id];
  if (old >= names.base_edges) return std::nullopt;
  return ObjectRef::Edge(old);
}

std::optional<ObjectRef> PropertyGraph::NewRef(ObjectRef base_ref) const {
  const EdgeLabeledGraph::OverlayNames& names = *skeleton_.overlay_;
  uint32_t here = base_ref.is_node() ? names.base_node_to_new[base_ref.id]
                                     : names.base_edge_to_new[base_ref.id];
  if (here == kInvalidId) return std::nullopt;
  return ObjectRef{base_ref.kind, here};
}

ConstSpan<SnapshotPropEntry> PropertyGraph::MappedEntriesOf(
    ObjectRef o) const {
  const MappedProps& m = *mapped_;
  const ConstSpan<uint64_t>& begin =
      o.is_node() ? m.node_prop_begin : m.edge_prop_begin;
  const uint64_t from = begin[o.id];
  const uint64_t to = begin[o.id + 1];
  return ConstSpan<SnapshotPropEntry>(m.entries.data() + from,
                                      static_cast<size_t>(to - from));
}

Value DecodeSnapshotValue(const SnapshotPropEntry& e,
                          const ConstSpan<char>& heap) {
  switch (e.tag) {
    case 0:
      return Value(static_cast<int64_t>(e.payload));
    case 1: {
      double d;
      static_assert(sizeof(d) == sizeof(e.payload));
      std::memcpy(&d, &e.payload, sizeof(d));
      return Value(d);
    }
    case 2: {
      const uint64_t offset = e.payload & 0xFFFFFFFFu;
      const uint64_t length = e.payload >> 32;
      return Value(std::string(heap.data() + offset,
                               static_cast<size_t>(length)));
    }
    default:
      return Value(e.payload != 0);
  }
}

std::optional<Value> PropertyGraph::GetProperty(ObjectRef o,
                                                PropertyId prop) const {
  if (mapped_ != nullptr) {
    ConstSpan<SnapshotPropEntry> entries = MappedEntriesOf(o);
    const SnapshotPropEntry* it = std::lower_bound(
        entries.begin(), entries.end(), prop,
        [](const SnapshotPropEntry& e, PropertyId needle) {
          return e.pid < needle;
        });
    if (it == entries.end() || it->pid != prop) return std::nullopt;
    return DecodeSnapshotValue(*it, mapped_->value_heap);
  }
  auto it = props_.find({o, prop});
  if (it != props_.end()) return it->second;
  if (overlay_ == nullptr) return std::nullopt;
  std::optional<ObjectRef> base_ref = BaseRef(o);
  if (!base_ref.has_value()) return std::nullopt;  // added by the delta
  return overlay_->base->GetProperty(*base_ref, prop);
}

std::optional<Value> PropertyGraph::GetProperty(
    ObjectRef o, const std::string& prop) const {
  std::optional<PropertyId> pid = FindProperty(prop);
  if (!pid.has_value()) return std::nullopt;
  return GetProperty(o, *pid);
}

std::optional<PropertyId> PropertyGraph::FindProperty(
    const std::string& prop) const {
  if (overlay_ == nullptr) return properties_.Find(prop);
  std::optional<PropertyId> base_id = overlay_->base->FindProperty(prop);
  if (base_id.has_value()) return base_id;
  auto it = overlay_->added_prop_by_name.find(prop);
  if (it == overlay_->added_prop_by_name.end()) return std::nullopt;
  return it->second;
}

const std::string& PropertyGraph::PropertyName(PropertyId p) const {
  if (overlay_ == nullptr) return properties_.NameOf(p);
  return p < overlay_->base_props
             ? overlay_->base->PropertyName(p)
             : overlay_->added_props[p - overlay_->base_props];
}

std::vector<std::pair<PropertyId, Value>> PropertyGraph::PropertiesOf(
    ObjectRef o) const {
  std::vector<std::pair<PropertyId, Value>> result;
  if (mapped_ != nullptr) {
    for (const SnapshotPropEntry& e : MappedEntriesOf(o)) {
      result.emplace_back(e.pid, DecodeSnapshotValue(e, mapped_->value_heap));
    }
    return result;  // file entries are already sorted by pid
  }
  for (const auto& [key, value] : props_) {
    if (key.first == o) result.emplace_back(key.second, value);
  }
  if (overlay_ != nullptr) {
    std::optional<ObjectRef> base_ref = BaseRef(o);
    if (base_ref.has_value()) {
      for (auto& [pid, value] : overlay_->base->PropertiesOf(*base_ref)) {
        if (props_.count({o, pid}) == 0) {
          result.emplace_back(pid, std::move(value));
        }
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return result;
}

void PropertyGraph::ForEachProperty(
    const std::function<void(ObjectRef, PropertyId, const Value&)>& fn) const {
  if (mapped_ != nullptr) {
    for (NodeId n = 0; n < static_cast<NodeId>(NumNodes()); ++n) {
      for (const SnapshotPropEntry& e : MappedEntriesOf(ObjectRef::Node(n))) {
        fn(ObjectRef::Node(n), e.pid,
           DecodeSnapshotValue(e, mapped_->value_heap));
      }
    }
    for (EdgeId ed = 0; ed < static_cast<EdgeId>(NumEdges()); ++ed) {
      for (const SnapshotPropEntry& e : MappedEntriesOf(ObjectRef::Edge(ed))) {
        fn(ObjectRef::Edge(ed), e.pid,
           DecodeSnapshotValue(e, mapped_->value_heap));
      }
    }
    return;
  }
  for (const auto& [key, value] : props_) fn(key.first, key.second, value);
  if (overlay_ == nullptr) return;
  overlay_->base->ForEachProperty(
      [&](ObjectRef base_ref, PropertyId p, const Value& v) {
        std::optional<ObjectRef> here = NewRef(base_ref);
        if (!here.has_value()) return;              // removed object
        if (props_.count({*here, p}) != 0) return;  // overridden
        fn(*here, p, v);
      });
}

}  // namespace gqzoo
