#include "src/graph/graph.h"

#include <cassert>

namespace gqzoo {

NodeId EdgeLabeledGraph::AddNode(const std::string& name) {
  NodeId id = static_cast<NodeId>(node_names_.size());
  std::string effective = name.empty() ? "n" + std::to_string(id) : name;
  assert(node_by_name_.find(effective) == node_by_name_.end() &&
         "duplicate node name");
  node_names_.push_back(effective);
  node_by_name_.emplace(std::move(effective), id);
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

EdgeId EdgeLabeledGraph::AddEdge(NodeId src, NodeId tgt,
                                 const std::string& label,
                                 const std::string& name) {
  return AddEdge(src, tgt, labels_.Intern(label), name);
}

EdgeId EdgeLabeledGraph::AddEdge(NodeId src, NodeId tgt, LabelId label,
                                 const std::string& name) {
  assert(src < NumNodes() && tgt < NumNodes());
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({src, tgt, label});
  std::string effective = name.empty() ? "e" + std::to_string(id) : name;
  assert(edge_by_name_.find(effective) == edge_by_name_.end() &&
         "duplicate edge name");
  edge_names_.push_back(effective);
  edge_by_name_.emplace(std::move(effective), id);
  out_[src].push_back(id);
  in_[tgt].push_back(id);
  return id;
}

std::optional<NodeId> EdgeLabeledGraph::FindNode(
    const std::string& name) const {
  auto it = node_by_name_.find(name);
  if (it == node_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeId> EdgeLabeledGraph::FindEdge(
    const std::string& name) const {
  auto it = edge_by_name_.find(name);
  if (it == edge_by_name_.end()) return std::nullopt;
  return it->second;
}

NodeId PropertyGraph::AddNode(const std::string& name,
                              const std::string& label) {
  NodeId id = skeleton_.AddNode(name);
  node_labels_.push_back(skeleton_.InternLabel(label));
  return id;
}

EdgeId PropertyGraph::AddEdge(NodeId src, NodeId tgt, const std::string& label,
                              const std::string& name) {
  return skeleton_.AddEdge(src, tgt, label, name);
}

void PropertyGraph::SetProperty(ObjectRef o, const std::string& prop,
                                Value v) {
  PropertyId pid = properties_.Intern(prop);
  props_[{o, pid}] = std::move(v);
}

std::optional<Value> PropertyGraph::GetProperty(ObjectRef o,
                                                PropertyId prop) const {
  auto it = props_.find({o, prop});
  if (it == props_.end()) return std::nullopt;
  return it->second;
}

std::optional<Value> PropertyGraph::GetProperty(
    ObjectRef o, const std::string& prop) const {
  std::optional<PropertyId> pid = properties_.Find(prop);
  if (!pid.has_value()) return std::nullopt;
  return GetProperty(o, *pid);
}

std::vector<std::pair<PropertyId, Value>> PropertyGraph::PropertiesOf(
    ObjectRef o) const {
  std::vector<std::pair<PropertyId, Value>> result;
  for (const auto& [key, value] : props_) {
    if (key.first == o) result.emplace_back(key.second, value);
  }
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return result;
}

}  // namespace gqzoo
