#include "src/graph/csr.h"

#include <algorithm>

namespace gqzoo {

GraphSnapshot::GraphSnapshot(const EdgeLabeledGraph& g) : g_(&g) {
  Build(g);
  FinalizeViews();
}

GraphSnapshot::GraphSnapshot(const PropertyGraph& g) : g_(&g.skeleton()) {
  Build(g.skeleton());
  has_node_labels_ = true;
  // Flat CSR-style index: counting sort of nodes by label (node ids stay
  // ascending within a label because nodes are visited in id order).
  owned_->nodes_by_label_begin.assign(num_labels_ + 1, 0);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    LabelId l = g.NodeLabel(n);
    if (l < num_labels_) ++owned_->nodes_by_label_begin[l + 1];
  }
  for (size_t l = 0; l < num_labels_; ++l) {
    owned_->nodes_by_label_begin[l + 1] += owned_->nodes_by_label_begin[l];
  }
  owned_->nodes_by_label.resize(owned_->nodes_by_label_begin[num_labels_]);
  std::vector<uint32_t> cursor(owned_->nodes_by_label_begin.begin(),
                               owned_->nodes_by_label_begin.end() - 1);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    LabelId l = g.NodeLabel(n);
    if (l < num_labels_) owned_->nodes_by_label[cursor[l]++] = n;
  }
  FinalizeViews();
}

void GraphSnapshot::Build(const EdgeLabeledGraph& g) {
  owned_ = std::make_unique<Owned>();
  num_nodes_ = g.NumNodes();
  num_labels_ = g.NumLabels();
  BuildDirection(g, /*inverse=*/false, &owned_->out);
  BuildDirection(g, /*inverse=*/true, &owned_->in);

  // Graph-wide per-label edge lists (counting sort by label; edge ids stay
  // ascending within a label because edges are visited in id order).
  owned_->label_begin.assign(num_labels_ + 1, 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    ++owned_->label_begin[g.EdgeLabel(e) + 1];
  }
  for (size_t l = 0; l < num_labels_; ++l) {
    owned_->label_begin[l + 1] += owned_->label_begin[l];
  }
  owned_->label_edges.resize(g.NumEdges());
  std::vector<uint32_t> cursor(owned_->label_begin.begin(),
                               owned_->label_begin.end() - 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    owned_->label_edges[cursor[g.EdgeLabel(e)]++] = Hop{e, g.Tgt(e)};
  }
}

void GraphSnapshot::BuildDirection(const EdgeLabeledGraph& g, bool inverse,
                                   OwnedCsr* csr) {
  const size_t n = g.NumNodes();
  const size_t m = g.NumEdges();

  // Pass 1: per-node degrees -> node extents.
  csr->node_begin.assign(n + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    NodeId at = inverse ? g.Tgt(e) : g.Src(e);
    ++csr->node_begin[at + 1];
  }
  for (size_t v = 0; v < n; ++v) csr->node_begin[v + 1] += csr->node_begin[v];

  // Pass 2: scatter hops into node slices, then sort each slice by
  // (label, edge) so same-label hops form contiguous runs and the overall
  // order is deterministic.
  csr->hops.resize(m);
  std::vector<uint32_t> cursor(csr->node_begin.begin(),
                               csr->node_begin.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    NodeId at = inverse ? g.Tgt(e) : g.Src(e);
    NodeId other = inverse ? g.Src(e) : g.Tgt(e);
    csr->hops[cursor[at]++] = Hop{e, other};
  }
  for (size_t v = 0; v < n; ++v) {
    std::sort(csr->hops.begin() + csr->node_begin[v],
              csr->hops.begin() + csr->node_begin[v + 1],
              [&g](const Hop& a, const Hop& b) {
                LabelId la = g.EdgeLabel(a.edge), lb = g.EdgeLabel(b.edge);
                if (la != lb) return la < lb;
                return a.edge < b.edge;
              });
  }

  // Pass 3: label run directories (one entry per distinct label per node).
  csr->runs_begin.assign(n + 1, 0);
  csr->runs.clear();
  for (size_t v = 0; v < n; ++v) {
    uint32_t i = csr->node_begin[v];
    const uint32_t end = csr->node_begin[v + 1];
    while (i < end) {
      LabelId l = g.EdgeLabel(csr->hops[i].edge);
      uint32_t j = i + 1;
      while (j < end && g.EdgeLabel(csr->hops[j].edge) == l) ++j;
      csr->runs.push_back(LabelRun{l, i, j});
      i = j;
    }
    csr->runs_begin[v + 1] = static_cast<uint32_t>(csr->runs.size());
  }
}

void GraphSnapshot::FinalizeViews() {
  out_ = CsrView{owned_->out.hops, owned_->out.node_begin, owned_->out.runs,
                 owned_->out.runs_begin};
  in_ = CsrView{owned_->in.hops, owned_->in.node_begin, owned_->in.runs,
                owned_->in.runs_begin};
  label_edges_ = owned_->label_edges;
  label_begin_ = owned_->label_begin;
  nodes_by_label_ = owned_->nodes_by_label;
  nodes_by_label_begin_ = owned_->nodes_by_label_begin;
}

GraphSnapshot::Slice GraphSnapshot::LabelSlice(const CsrView& csr, NodeId v,
                                               LabelId l) const {
  const LabelRun* first = csr.runs.data() + csr.runs_begin[v];
  const LabelRun* last = csr.runs.data() + csr.runs_begin[v + 1];
  const LabelRun* run = std::lower_bound(
      first, last, l,
      [](const LabelRun& r, LabelId needle) { return r.label < needle; });
  if (run == last || run->label != l) return Slice();
  const Hop* base = csr.hops.data();
  return Slice(base + run->begin, base + run->end);
}

GraphSnapshot::Slice GraphSnapshot::EdgesWithLabel(LabelId l) const {
  if (l >= num_labels_) return Slice();
  const Hop* base = label_edges_.data();
  return Slice(base + label_begin_[l], base + label_begin_[l + 1]);
}

ConstSpan<NodeId> GraphSnapshot::NodesWithLabel(LabelId l) const {
  if (!has_node_labels_ || l >= num_labels_ ||
      l + 1 >= nodes_by_label_begin_.size()) {
    return ConstSpan<NodeId>();
  }
  return ConstSpan<NodeId>(
      nodes_by_label_.data() + nodes_by_label_begin_[l],
      nodes_by_label_begin_[l + 1] - nodes_by_label_begin_[l]);
}

size_t GraphSnapshot::ApproxBytes() const {
  auto csr_bytes = [](const CsrView& c) {
    return c.hops.size() * sizeof(Hop) +
           c.node_begin.size() * sizeof(uint32_t) +
           c.runs.size() * sizeof(LabelRun) +
           c.runs_begin.size() * sizeof(uint32_t);
  };
  return csr_bytes(out_) + csr_bytes(in_) +
         label_edges_.size() * sizeof(Hop) +
         label_begin_.size() * sizeof(uint32_t) +
         nodes_by_label_.size() * sizeof(NodeId) +
         nodes_by_label_begin_.size() * sizeof(uint32_t);
}

}  // namespace gqzoo
