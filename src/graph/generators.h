#ifndef GQZOO_GRAPH_GENERATORS_H_
#define GQZOO_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace gqzoo {

/// Synthetic graph families used by the paper's experiments (DESIGN.md E3,
/// E4, E5, E7, E8, E10, E12).

/// The Figure 5 graph: a chain of `n + 1` nodes `s = v0, v1, ..., vn = t`
/// with `parallel` (default 2) a-labeled edges between consecutive nodes.
/// Has `parallel^n` distinct s→t paths, all shortest — the paper's
/// 2^Θ(n)-lists example.
EdgeLabeledGraph ParallelChain(size_t n, size_t parallel = 2,
                               const std::string& label = "a");

/// A simple a-labeled chain of `n` edges: `u_1 → u_2 → ... → u_{n+1}`
/// (Section 6.3's path for the `(aa^z + a^z a)*` blow-up).
EdgeLabeledGraph Chain(size_t n, const std::string& label = "a");

/// A directed a-labeled cycle of `n` nodes.
EdgeLabeledGraph Cycle(size_t n, const std::string& label = "a");

/// Complete directed graph on `k` nodes (no self-loops): the Section 6.1
/// 6-clique on which `(((a*)*)*)*` explodes under bag semantics.
EdgeLabeledGraph Clique(size_t k, const std::string& label = "a");

/// G(n, p)-style random graph with `num_labels` labels, deterministic in
/// `seed`. Expected `n * n * p` edges.
EdgeLabeledGraph ErdosRenyi(size_t n, double p, size_t num_labels,
                            uint64_t seed);

/// Random graph by edge count: exactly `m` edges with endpoints and labels
/// chosen uniformly (may create parallel edges, as the model allows).
EdgeLabeledGraph RandomGraph(size_t n, size_t m, size_t num_labels,
                             uint64_t seed);

/// Property-graph version of `RandomGraph`: every node gets label "N" with
/// integer property "k", every edge gets label "a" with integer property
/// "k", both drawn uniformly from [0, value_range).
PropertyGraph RandomPropertyGraph(size_t n, size_t m, int64_t value_range,
                                  uint64_t seed);

/// The SUBSET-SUM gadget of Section 5.2: a chain of `values.size() + 1`
/// nodes where consecutive nodes are connected by two parallel edges, one
/// carrying `k = values[i]` and one carrying `k = 0`. Paths s→t correspond
/// to subsets; the reduce-sum query asks whether some subset sums to 0
/// (use positive and negative values).
PropertyGraph SubsetSumChain(const std::vector<int64_t>& values);

/// A chain of `n` a-labeled edges whose edge property `k` increases along
/// the chain except for `violations` positions where it dips — workload for
/// the increasing-edge-values experiment (E7).
PropertyGraph IncreasingEdgeChain(size_t n, size_t violations, uint64_t seed);

/// Transfer network for the data-filter experiments (E6 at scale): a ring
/// of `n` accounts with Transfer edges carrying `amount`; exactly
/// `num_cheap` edges have amount below `threshold`.
PropertyGraph TransferRing(size_t n, size_t num_cheap, double threshold,
                           uint64_t seed);

/// Pairs of nodes connected by Transfer edges in both directions arranged
/// in a chain — the virtual-edge reachability workload of Example 14/15
/// (E15). Between consecutive "hub" nodes h_i, h_{i+1} there are edges in
/// both directions; decoy one-way edges are added so that flat reachability
/// over-approximates.
EdgeLabeledGraph TwoWayTransferChain(size_t n);

}  // namespace gqzoo

#endif  // GQZOO_GRAPH_GENERATORS_H_
