#include "src/graph/generators.h"

#include <random>

namespace gqzoo {

namespace {

// "a", "b", ..., "z", "a1", "b1", ... for generated label alphabets.
std::string GeneratedLabelName(size_t l) {
  std::string name(1, static_cast<char>('a' + l % 26));
  if (l >= 26) name += std::to_string(l / 26);
  return name;
}

}  // namespace

EdgeLabeledGraph ParallelChain(size_t n, size_t parallel,
                               const std::string& label) {
  EdgeLabeledGraph g;
  std::vector<NodeId> nodes;
  nodes.push_back(g.AddNode("s"));
  for (size_t i = 1; i < n; ++i) {
    nodes.push_back(g.AddNode("v" + std::to_string(i)));
  }
  nodes.push_back(g.AddNode("t"));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < parallel; ++j) {
      g.AddEdge(nodes[i], nodes[i + 1], label);
    }
  }
  return g;
}

EdgeLabeledGraph Chain(size_t n, const std::string& label) {
  EdgeLabeledGraph g;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i <= n; ++i) {
    nodes.push_back(g.AddNode("u" + std::to_string(i + 1)));
  }
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(nodes[i], nodes[i + 1], label);
  }
  return g;
}

EdgeLabeledGraph Cycle(size_t n, const std::string& label) {
  EdgeLabeledGraph g;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(g.AddNode("c" + std::to_string(i)));
  }
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(nodes[i], nodes[(i + 1) % n], label);
  }
  return g;
}

EdgeLabeledGraph Clique(size_t k, const std::string& label) {
  EdgeLabeledGraph g;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < k; ++i) {
    nodes.push_back(g.AddNode("q" + std::to_string(i)));
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (i != j) g.AddEdge(nodes[i], nodes[j], label);
    }
  }
  return g;
}

EdgeLabeledGraph ErdosRenyi(size_t n, double p, size_t num_labels,
                            uint64_t seed) {
  EdgeLabeledGraph g;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<size_t> label_dist(0, num_labels - 1);
  std::vector<LabelId> labels;
  for (size_t l = 0; l < num_labels; ++l) {
    labels.push_back(g.InternLabel(GeneratedLabelName(l)));
  }
  for (size_t i = 0; i < n; ++i) g.AddNode();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && coin(rng) < p) {
        g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                  labels[label_dist(rng)]);
      }
    }
  }
  return g;
}

EdgeLabeledGraph RandomGraph(size_t n, size_t m, size_t num_labels,
                             uint64_t seed) {
  EdgeLabeledGraph g;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<size_t> node_dist(0, n - 1);
  std::uniform_int_distribution<size_t> label_dist(0, num_labels - 1);
  std::vector<LabelId> labels;
  for (size_t l = 0; l < num_labels; ++l) {
    labels.push_back(g.InternLabel(GeneratedLabelName(l)));
  }
  for (size_t i = 0; i < n; ++i) g.AddNode();
  for (size_t e = 0; e < m; ++e) {
    g.AddEdge(static_cast<NodeId>(node_dist(rng)),
              static_cast<NodeId>(node_dist(rng)), labels[label_dist(rng)]);
  }
  return g;
}

PropertyGraph RandomPropertyGraph(size_t n, size_t m, int64_t value_range,
                                  uint64_t seed) {
  PropertyGraph g;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<size_t> node_dist(0, n - 1);
  std::uniform_int_distribution<int64_t> value_dist(0, value_range - 1);
  for (size_t i = 0; i < n; ++i) {
    NodeId node = g.AddNode("n" + std::to_string(i), "N");
    g.SetProperty(ObjectRef::Node(node), "k", Value(value_dist(rng)));
  }
  for (size_t e = 0; e < m; ++e) {
    EdgeId edge = g.AddEdge(static_cast<NodeId>(node_dist(rng)),
                            static_cast<NodeId>(node_dist(rng)), "a");
    g.SetProperty(ObjectRef::Edge(edge), "k", Value(value_dist(rng)));
  }
  return g;
}

PropertyGraph SubsetSumChain(const std::vector<int64_t>& values) {
  PropertyGraph g;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i <= values.size(); ++i) {
    nodes.push_back(g.AddNode("w" + std::to_string(i), "N"));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    EdgeId taken = g.AddEdge(nodes[i], nodes[i + 1], "a");
    g.SetProperty(ObjectRef::Edge(taken), "k", Value(values[i]));
    EdgeId skipped = g.AddEdge(nodes[i], nodes[i + 1], "a");
    g.SetProperty(ObjectRef::Edge(skipped), "k", Value(int64_t{0}));
  }
  return g;
}

PropertyGraph IncreasingEdgeChain(size_t n, size_t violations, uint64_t seed) {
  PropertyGraph g;
  std::mt19937_64 rng(seed);
  std::vector<NodeId> nodes;
  for (size_t i = 0; i <= n; ++i) {
    nodes.push_back(g.AddNode("v" + std::to_string(i), "N"));
  }
  // Choose violation positions.
  std::vector<bool> dip(n, false);
  if (violations > 0 && n > 1) {
    std::uniform_int_distribution<size_t> pos_dist(1, n - 1);
    for (size_t v = 0; v < violations; ++v) dip[pos_dist(rng)] = true;
  }
  int64_t value = 0;
  for (size_t i = 0; i < n; ++i) {
    value = dip[i] ? value - 1 : value + 2;
    EdgeId e = g.AddEdge(nodes[i], nodes[i + 1], "a");
    g.SetProperty(ObjectRef::Edge(e), "k", Value(value));
  }
  return g;
}

PropertyGraph TransferRing(size_t n, size_t num_cheap, double threshold,
                           uint64_t seed) {
  PropertyGraph g;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> expensive(threshold, threshold * 4);
  std::uniform_real_distribution<double> cheap(0.0, threshold * 0.9);
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < n; ++i) {
    NodeId node = g.AddNode("acct" + std::to_string(i), "Account");
    g.SetProperty(ObjectRef::Node(node), "owner",
                  Value("Owner" + std::to_string(i)));
    nodes.push_back(node);
  }
  // Cheap edges are spread evenly around the ring.
  std::vector<bool> is_cheap(n, false);
  for (size_t c = 0; c < num_cheap && n > 0; ++c) {
    is_cheap[(c * n) / std::max<size_t>(num_cheap, 1)] = true;
  }
  for (size_t i = 0; i < n; ++i) {
    EdgeId e = g.AddEdge(nodes[i], nodes[(i + 1) % n], "Transfer",
                         "tr" + std::to_string(i));
    g.SetProperty(ObjectRef::Edge(e), "amount",
                  Value(is_cheap[i] ? cheap(rng) : expensive(rng)));
  }
  return g;
}

EdgeLabeledGraph TwoWayTransferChain(size_t n) {
  EdgeLabeledGraph g;
  std::vector<NodeId> hubs;
  for (size_t i = 0; i <= n; ++i) {
    hubs.push_back(g.AddNode("h" + std::to_string(i)));
  }
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(hubs[i], hubs[i + 1], "Transfer");
    g.AddEdge(hubs[i + 1], hubs[i], "Transfer");
  }
  // Decoys: one-way transfers off the chain that make plain reachability
  // strictly larger than two-way-step reachability.
  for (size_t i = 0; i <= n; ++i) {
    NodeId decoy = g.AddNode("d" + std::to_string(i));
    g.AddEdge(hubs[i], decoy, "Transfer");
  }
  return g;
}

}  // namespace gqzoo
