#ifndef GQZOO_GRAPH_BUILTIN_GRAPHS_H_
#define GQZOO_GRAPH_BUILTIN_GRAPHS_H_

#include "src/graph/graph.h"

namespace gqzoo {

/// The edge-labeled graph of Figure 2: bank accounts a1–a6, transfer edges
/// t1–t10, plus owner / isBlocked / type edges to entity nodes.
///
/// The figure in the paper is explicitly partial; the transfer topology is
/// reconstructed exactly from the constraints the text states:
///   t1: a1→a3   (Example 10: path(a1, t1, a3, t2) is valid)
///   t2: a3→a2, t5: a3→a2 (Example 5: parallel Transfer edges)
///   t3: a2→a4   (Example 16: µ3(z) = list(t2, t3) ending at a4)
///   t4: a5→a1, t7: a3→a5 (Example 17: shortest a3⇝a1 is list(t7, t4);
///                          Section 6.4: cycle through t7, t4, t1)
///   t6: a3→a4, t9: a4→a6, t10: a6→a5 (Section 6.3: the data-filter detour
///                          path(a3, t6, a4, t9, a6, t10, a5))
///   t8: a6→a3   (Example 13: q1 answer (a6, a3, a5) needs Transfer(a6,a3);
///                also makes Transfer* complete on a1..a6, Example 12)
/// Owner edges r1–r4 (a1→Megan, a3→Mike, a5→Rebecca, a6→Jay; the last per
/// Example 17's assumption), isBlocked edges r5–r10 (a4→yes, others→no;
/// Example 13 needs isBlocked(a5) = no, Example 16 needs r9: a3→no and
/// r10: a4→yes), and type edges u1–u6 to the Account node.
EdgeLabeledGraph Figure2Graph();

/// The property graph of Figure 3: accounts a1–a6 with `owner` and
/// `isBlocked` properties, Transfer edges t1–t10 (same topology as
/// Figure 2) with `amount` and `date` properties.
///
/// Property values are reconstructed from the text where stated
/// (ρ(a1, owner) = Megan, etc.; Section 6.3 fixes amounts so that the only
/// transfer under 4.5M is t9, making path(a3, t6, a4, t9, a6, t10, a5) the
/// shortest Mike→Rebecca path with a cheap transfer, and forcing a cycle
/// when two cheap transfers are required). Owners of a2/a4 and all dates
/// are free choices, documented in DESIGN.md; dates are ISO strings chosen
/// so that t1 < t2 < ... < t10 chronologically (so increasing-date examples
/// have witnesses).
PropertyGraph Figure3Graph();

}  // namespace gqzoo

#endif  // GQZOO_GRAPH_BUILTIN_GRAPHS_H_
