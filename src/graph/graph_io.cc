#include "src/graph/graph_io.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace gqzoo {

namespace {

// Minimal tokenizer for the graph text format.
class GraphLexer {
 public:
  enum class Kind {
    kIdent,   // bare identifier (names, labels, keywords)
    kString,  // double-quoted
    kNumber,  // integer or double literal text
    kPunct,   // one of : { } , = ->
    kEnd,
  };

  struct Token {
    Kind kind;
    std::string text;
    size_t line;
  };

  explicit GraphLexer(const std::string& text) : text_(text) {}

  Result<Token> Next() {
    SkipSpaceAndComments();
    if (pos_ >= text_.size()) return Token{Kind::kEnd, "", line_};
    char c = text_[pos_];
    if (c == '"') return LexString();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      return LexNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdent();
    }
    if (c == '-' || c == ':' || c == '{' || c == '}' || c == ',' || c == '=') {
      return LexPunct();
    }
    return LexPunct();
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Token> LexString() {
    size_t start_line = line_;
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        // Escape sequences per EscapeStringLiteral; an unknown escape
        // yields the escaped character itself.
        ++pos_;
        switch (text_[pos_]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: out += text_[pos_]; break;
        }
        ++pos_;
        continue;
      }
      if (text_[pos_] == '\n') ++line_;
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) {
      return Error(ErrorCode::kInvalidArgument,
                   "line " + std::to_string(start_line) +
                       ": unterminated string literal");
    }
    ++pos_;  // closing quote
    return Token{Kind::kString, out, start_line};
  }

  Result<Token> LexNumber() {
    size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      any = true;
      ++pos_;
    }
    if (!any) {
      // A lone '-' is punctuation (start of '->').
      pos_ = start;
      return LexPunct();
    }
    return Token{Kind::kNumber, text_.substr(start, pos_ - start), line_};
  }

  Result<Token> LexIdent() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return Token{Kind::kIdent, text_.substr(start, pos_ - start), line_};
  }

  Result<Token> LexPunct() {
    if (text_.compare(pos_, 2, "->") == 0) {
      pos_ += 2;
      return Token{Kind::kPunct, "->", line_};
    }
    char c = text_[pos_];
    if (c == ':' || c == '{' || c == '}' || c == ',' || c == '=') {
      ++pos_;
      return Token{Kind::kPunct, std::string(1, c), line_};
    }
    return Error(ErrorCode::kInvalidArgument,
                 "line " + std::to_string(line_) +
                     ": unexpected character '" + std::string(1, c) + "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

class GraphParser {
 public:
  explicit GraphParser(const std::string& text) : lexer_(text) {}

  Result<PropertyGraph> Parse() {
    PropertyGraph g;
    if (!Advance()) return Error(ErrorCode::kInvalidArgument, error_);
    while (current_.kind != GraphLexer::Kind::kEnd) {
      if (current_.kind != GraphLexer::Kind::kIdent) {
        return Err("expected 'node' or 'edge'");
      }
      if (current_.text == "node") {
        if (!ParseNode(&g)) return Error(ErrorCode::kInvalidArgument, error_);
      } else if (current_.text == "edge") {
        if (!ParseEdge(&g)) return Error(ErrorCode::kInvalidArgument, error_);
      } else {
        return Err("expected 'node' or 'edge', got '" + current_.text + "'");
      }
    }
    return g;
  }

 private:
  bool ParseNode(PropertyGraph* g) {
    if (!Advance()) return false;  // consume 'node'
    if (current_.kind != GraphLexer::Kind::kIdent) {
      return Fail("expected node name");
    }
    std::string name = current_.text;
    if (!Advance()) return false;
    if (!ExpectPunct(":")) return false;
    if (current_.kind != GraphLexer::Kind::kIdent) {
      return Fail("expected node label");
    }
    std::string label = current_.text;
    if (!Advance()) return false;
    if (g->FindNode(name).has_value()) {
      return Fail("duplicate node name '" + name + "'");
    }
    NodeId n = g->AddNode(name, label);
    return ParseProps(g, ObjectRef::Node(n));
  }

  bool ParseEdge(PropertyGraph* g) {
    if (!Advance()) return false;  // consume 'edge'
    std::string name;
    if (current_.kind == GraphLexer::Kind::kIdent) {
      name = current_.text;
      if (!Advance()) return false;
    }
    if (!ExpectPunct(":")) return false;
    if (current_.kind != GraphLexer::Kind::kIdent) {
      return Fail("expected edge label");
    }
    std::string label = current_.text;
    if (!Advance()) return false;
    if (current_.kind != GraphLexer::Kind::kIdent) {
      return Fail("expected source node name");
    }
    std::optional<NodeId> src = g->FindNode(current_.text);
    if (!src.has_value()) return Fail("unknown node '" + current_.text + "'");
    if (!Advance()) return false;
    if (!ExpectPunct("->")) return false;
    if (current_.kind != GraphLexer::Kind::kIdent) {
      return Fail("expected target node name");
    }
    std::optional<NodeId> tgt = g->FindNode(current_.text);
    if (!tgt.has_value()) return Fail("unknown node '" + current_.text + "'");
    if (!Advance()) return false;
    if (!name.empty() && g->FindEdge(name).has_value()) {
      return Fail("duplicate edge name '" + name + "'");
    }
    EdgeId e = g->AddEdge(*src, *tgt, label, name);
    return ParseProps(g, ObjectRef::Edge(e));
  }

  bool ParseProps(PropertyGraph* g, ObjectRef obj) {
    if (!(current_.kind == GraphLexer::Kind::kPunct && current_.text == "{")) {
      return true;  // properties are optional
    }
    if (!Advance()) return false;  // consume '{'
    bool first = true;
    while (!(current_.kind == GraphLexer::Kind::kPunct &&
             current_.text == "}")) {
      if (!first) {
        if (!ExpectPunct(",")) return false;
      }
      first = false;
      if (current_.kind != GraphLexer::Kind::kIdent) {
        return Fail("expected property name");
      }
      std::string prop = current_.text;
      if (!Advance()) return false;
      if (!ExpectPunct("=")) return false;
      Value v;
      if (current_.kind == GraphLexer::Kind::kString) {
        v = Value(current_.text);
      } else if (current_.kind == GraphLexer::Kind::kNumber) {
        const std::string& t = current_.text;
        if (t.find('.') != std::string::npos ||
            t.find('e') != std::string::npos ||
            t.find('E') != std::string::npos) {
          v = Value(std::strtod(t.c_str(), nullptr));
        } else {
          v = Value(static_cast<int64_t>(std::strtoll(t.c_str(), nullptr, 10)));
        }
      } else if (current_.kind == GraphLexer::Kind::kIdent &&
                 (current_.text == "true" || current_.text == "false")) {
        v = Value(current_.text == "true");
      } else {
        return Fail("expected property value");
      }
      if (!Advance()) return false;
      g->SetProperty(obj, prop, std::move(v));
    }
    return Advance();  // consume '}'
  }

  bool ExpectPunct(const std::string& p) {
    if (current_.kind != GraphLexer::Kind::kPunct || current_.text != p) {
      return Fail("expected '" + p + "', got '" + current_.text + "'");
    }
    return Advance();
  }

  bool Advance() {
    Result<GraphLexer::Token> tok = lexer_.Next();
    if (!tok.ok()) {
      error_ = tok.error().message();
      return false;
    }
    current_ = tok.value();
    return true;
  }

  bool Fail(const std::string& message) {
    error_ = "line " + std::to_string(current_.line) + ": " + message;
    return false;
  }

  Error Err(const std::string& message) {
    Fail(message);
    return Error(ErrorCode::kInvalidArgument, error_);
  }

  GraphLexer lexer_;
  GraphLexer::Token current_{GraphLexer::Kind::kEnd, "", 0};
  std::string error_;
};

std::string ValueToText(const Value& v) {
  // Value::ToString already quotes strings and renders numbers/bools in a
  // re-parseable way.
  return v.ToString();
}

}  // namespace

Result<PropertyGraph> ParsePropertyGraph(const std::string& text) {
  if (text.size() > kMaxGraphTextBytes) {
    return Error(ErrorCode::kInvalidArgument,
                 "graph text is " + std::to_string(text.size()) +
                     " bytes; the loader caps inputs at " +
                     std::to_string(kMaxGraphTextBytes) +
                     " (truncated or runaway file?)");
  }
  GraphParser parser(text);
  return parser.Parse();
}

std::string PropertyGraphToText(const PropertyGraph& g) {
  std::ostringstream out;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    out << "node " << g.NodeName(n) << " :" << g.LabelName(g.NodeLabel(n));
    auto props = g.PropertiesOf(ObjectRef::Node(n));
    if (!props.empty()) {
      out << " { ";
      for (size_t i = 0; i < props.size(); ++i) {
        if (i > 0) out << ", ";
        out << g.PropertyName(props[i].first) << " = "
            << ValueToText(props[i].second);
      }
      out << " }";
    }
    out << "\n";
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    out << "edge " << g.EdgeName(e) << " :" << g.LabelName(g.EdgeLabel(e))
        << " " << g.NodeName(g.Src(e)) << " -> " << g.NodeName(g.Tgt(e));
    auto props = g.PropertiesOf(ObjectRef::Edge(e));
    if (!props.empty()) {
      out << " { ";
      for (size_t i = 0; i < props.size(); ++i) {
        if (i > 0) out << ", ";
        out << g.PropertyName(props[i].first) << " = "
            << ValueToText(props[i].second);
      }
      out << " }";
    }
    out << "\n";
  }
  return out.str();
}

PropertyGraph ToPropertyGraph(const EdgeLabeledGraph& g,
                              const std::string& node_label) {
  PropertyGraph pg;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    pg.AddNode(std::string(g.NodeName(n)), node_label);
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    pg.AddEdge(g.Src(e), g.Tgt(e), g.LabelName(g.EdgeLabel(e)),
               std::string(g.EdgeName(e)));
  }
  return pg;
}

}  // namespace gqzoo
