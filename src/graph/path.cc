#include "src/graph/path.h"

#include <cassert>
#include <unordered_set>

namespace gqzoo {

namespace {

// Can `o2` directly follow `o1` in a path of `g`?
//
// Valid successions: node -> outgoing edge, edge -> its target node.
// (Two consecutive nodes or two consecutive edges never appear in a valid
// path; the collapse rule of concatenation is handled separately.)
bool CanFollow(const EdgeLabeledGraph& g, ObjectRef o1, ObjectRef o2) {
  if (o1.is_node() && o2.is_edge()) return g.Src(o2.id) == o1.id;
  if (o1.is_edge() && o2.is_node()) return g.Tgt(o1.id) == o2.id;
  return false;
}

}  // namespace

Result<Path> Path::Make(const EdgeLabeledGraph& g,
                        std::vector<ObjectRef> objects) {
  for (size_t i = 0; i + 1 < objects.size(); ++i) {
    if (!CanFollow(g, objects[i], objects[i + 1])) {
      return Error("invalid path: object " + std::to_string(i + 1) +
                   " does not follow object " + std::to_string(i));
    }
  }
  for (const ObjectRef& o : objects) {
    if (o.is_node() && o.id >= g.NumNodes()) return Error("node id out of range");
    if (o.is_edge() && o.id >= g.NumEdges()) return Error("edge id out of range");
  }
  return MakeUnchecked(std::move(objects));
}

size_t Path::Length() const {
  size_t len = 0;
  for (const ObjectRef& o : objects_) {
    if (o.is_edge()) ++len;
  }
  return len;
}

NodeId Path::Src(const EdgeLabeledGraph& g) const {
  assert(!empty());
  return front().is_node() ? front().id : g.Src(front().id);
}

NodeId Path::Tgt(const EdgeLabeledGraph& g) const {
  assert(!empty());
  return back().is_node() ? back().id : g.Tgt(back().id);
}

bool Path::IsValidIn(const EdgeLabeledGraph& g) const {
  for (const ObjectRef& o : objects_) {
    if (o.is_node() && o.id >= g.NumNodes()) return false;
    if (o.is_edge() && o.id >= g.NumEdges()) return false;
  }
  for (size_t i = 0; i + 1 < objects_.size(); ++i) {
    if (!CanFollow(g, objects_[i], objects_[i + 1])) return false;
  }
  return true;
}

std::vector<LabelId> Path::ELab(const EdgeLabeledGraph& g) const {
  std::vector<LabelId> labels;
  for (const ObjectRef& o : objects_) {
    if (o.is_edge()) labels.push_back(g.EdgeLabel(o.id));
  }
  return labels;
}

bool Path::Concatenable(const EdgeLabeledGraph& g, const Path& p1,
                        const Path& p2) {
  if (p1.empty() || p2.empty()) return true;
  ObjectRef last = p1.back();
  ObjectRef first = p2.front();
  if (last == first) return true;  // collapse rule
  return CanFollow(g, last, first);
}

Result<Path> Path::Concat(const EdgeLabeledGraph& g, const Path& p1,
                          const Path& p2) {
  if (p1.empty()) return p2;
  if (p2.empty()) return p1;
  ObjectRef last = p1.back();
  ObjectRef first = p2.front();
  std::vector<ObjectRef> objects = p1.objects_;
  if (last == first) {
    // Collapse: path(..., o) · path(o, ...) = path(..., o, ...).
    objects.insert(objects.end(), p2.objects_.begin() + 1, p2.objects_.end());
    return MakeUnchecked(std::move(objects));
  }
  if (CanFollow(g, last, first)) {
    objects.insert(objects.end(), p2.objects_.begin(), p2.objects_.end());
    return MakeUnchecked(std::move(objects));
  }
  return Error("paths are not concatenable");
}

bool Path::AppendObject(const EdgeLabeledGraph& g, ObjectRef o) {
  if (empty()) {
    objects_.push_back(o);
    return true;
  }
  if (back() == o) return true;  // collapse
  if (CanFollow(g, back(), o)) {
    objects_.push_back(o);
    return true;
  }
  return false;
}

bool Path::IsSimple() const {
  std::unordered_set<uint32_t> seen;
  for (const ObjectRef& o : objects_) {
    if (o.is_node() && !seen.insert(o.id).second) return false;
  }
  return true;
}

bool Path::IsTrail() const {
  std::unordered_set<uint32_t> seen;
  for (const ObjectRef& o : objects_) {
    if (o.is_edge() && !seen.insert(o.id).second) return false;
  }
  return true;
}

std::vector<NodeId> Path::Nodes() const {
  std::vector<NodeId> nodes;
  for (const ObjectRef& o : objects_) {
    if (o.is_node()) nodes.push_back(o.id);
  }
  return nodes;
}

std::vector<EdgeId> Path::Edges() const {
  std::vector<EdgeId> edges;
  for (const ObjectRef& o : objects_) {
    if (o.is_edge()) edges.push_back(o.id);
  }
  return edges;
}

std::string Path::ToString(const EdgeLabeledGraph& g) const {
  std::string out = "path(";
  for (size_t i = 0; i < objects_.size(); ++i) {
    if (i > 0) out += ", ";
    out += g.ObjectName(objects_[i]);
  }
  out += ")";
  return out;
}

size_t Path::Hash() const {
  size_t seed = 0x517cc1b727220a95ULL;
  for (const ObjectRef& o : objects_) {
    seed = HashCombine(seed, ObjectRefHash()(o));
  }
  return seed;
}

std::string ListToString(const EdgeLabeledGraph& g, const ObjectList& list) {
  std::string out = "list(";
  for (size_t i = 0; i < list.size(); ++i) {
    if (i > 0) out += ", ";
    out += g.ObjectName(list[i]);
  }
  out += ")";
  return out;
}

}  // namespace gqzoo
