#ifndef GQZOO_GRAPH_PATH_H_
#define GQZOO_GRAPH_PATH_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/result.h"

namespace gqzoo {

/// A path in a graph (Section 2, "Paths and Lists"): an alternating sequence
/// of nodes and edges where consecutive elements are incident. Unlike
/// Cypher/GQL paths, a path may begin and end with either a node or an edge
/// (the paper's four path kinds), which is what makes the symmetric
/// node/edge treatment of dl-RPQs possible.
///
/// A `Path` does not hold a reference to its graph; operations that need
/// incidence information (`Src`, `Tgt`, validity, concatenation, `ELab`)
/// take the graph as a parameter.
class Path {
 public:
  /// The empty path `path()`.
  Path() = default;

  /// Builds a path after validating alternation and incidence in `g`
  /// (conditions (a) and (b) of Section 2).
  static Result<Path> Make(const EdgeLabeledGraph& g,
                           std::vector<ObjectRef> objects);

  /// Builds a path without validation. Callers must guarantee validity;
  /// the evaluators use this on sequences that are valid by construction.
  static Path MakeUnchecked(std::vector<ObjectRef> objects) {
    Path p;
    p.objects_ = std::move(objects);
    return p;
  }

  /// `path(o)` for a single object.
  static Path Singleton(ObjectRef o) { return MakeUnchecked({o}); }
  static Path OfNode(NodeId n) { return Singleton(ObjectRef::Node(n)); }

  bool empty() const { return objects_.empty(); }
  size_t NumObjects() const { return objects_.size(); }
  const std::vector<ObjectRef>& objects() const { return objects_; }
  ObjectRef front() const { return objects_.front(); }
  ObjectRef back() const { return objects_.back(); }

  bool StartsWithNode() const { return !empty() && front().is_node(); }
  bool EndsWithNode() const { return !empty() && back().is_node(); }

  /// `len(p)`: the number of edge occurrences (multiplicities count).
  size_t Length() const;

  /// `src(p)` / `tgt(p)`. Undefined on the empty path (asserts).
  NodeId Src(const EdgeLabeledGraph& g) const;
  NodeId Tgt(const EdgeLabeledGraph& g) const;

  /// Checks conditions (a) and (b) of Section 2 against `g`.
  bool IsValidIn(const EdgeLabeledGraph& g) const;

  /// `elab(p)`: the sequence of edge labels (nodes contribute ε).
  std::vector<LabelId> ELab(const EdgeLabeledGraph& g) const;

  /// Path concatenation `p · p'` per Section 2, including the collapse rule
  /// `path(..., o) · path(o, ...) = path(..., o, ...)`. Returns an error
  /// when the two paths are not concatenable in `g`.
  static Result<Path> Concat(const EdgeLabeledGraph& g, const Path& p1,
                             const Path& p2);

  /// True iff `Concat(g, p1, p2)` would succeed.
  static bool Concatenable(const EdgeLabeledGraph& g, const Path& p1,
                           const Path& p2);

  /// Appends a single object, applying the collapse rule. Returns false if
  /// `path(o)` is not concatenable onto this path. Mutates in place (the
  /// hot operation of every evaluator).
  bool AppendObject(const EdgeLabeledGraph& g, ObjectRef o);

  /// No node occurs twice.
  bool IsSimple() const;
  /// No edge occurs twice.
  bool IsTrail() const;

  /// The nodes on the path, in order — Cypher's `nodes(p)` (Section 5.2).
  std::vector<NodeId> Nodes() const;
  /// The edges on the path, in order — Cypher's `relationships(p)`.
  std::vector<EdgeId> Edges() const;

  /// "path(a1, t1, a3)" using the graph's display names.
  std::string ToString(const EdgeLabeledGraph& g) const;

  bool operator==(const Path& o) const { return objects_ == o.objects_; }
  bool operator!=(const Path& o) const { return !(*this == o); }
  bool operator<(const Path& o) const { return objects_ < o.objects_; }

  size_t Hash() const;

 private:
  std::vector<ObjectRef> objects_;
};

struct PathHash {
  size_t operator()(const Path& p) const { return p.Hash(); }
};

/// A list of graph objects (`list(o1, ..., on)` of Section 2). Unlike paths,
/// lists have no incidence requirements and concatenate freely.
using ObjectList = std::vector<ObjectRef>;

/// Renders "list(t2, t3)".
std::string ListToString(const EdgeLabeledGraph& g, const ObjectList& list);

}  // namespace gqzoo

#endif  // GQZOO_GRAPH_PATH_H_
