#ifndef GQZOO_GRAPH_GRAPH_IO_H_
#define GQZOO_GRAPH_GRAPH_IO_H_

#include <string>

#include "src/graph/graph.h"
#include "src/util/result.h"

namespace gqzoo {

/// Parses a property graph from the gqzoo text format:
///
///     # comment
///     node a1 :Account { owner = "Megan", isBlocked = "no" }
///     edge t1 :Transfer a1 -> a3 { amount = 8.3e6, date = "2025-01-01" }
///     edge :Transfer a3 -> a2            # anonymous edge, no properties
///
/// Node declarations must precede the edges that use them. Values are
/// integers, doubles, double-quoted strings, or `true`/`false`.
///
/// Truncated, garbled, or oversized inputs (> `kMaxGraphTextBytes`) are
/// rejected with `kInvalidArgument`; the returned Result carries no
/// partially-populated graph.
Result<PropertyGraph> ParsePropertyGraph(const std::string& text);

/// Upper bound on the text accepted by `ParsePropertyGraph` (a truncation /
/// corruption guard for file-fed inputs, not a semantic limit).
inline constexpr size_t kMaxGraphTextBytes = size_t{64} << 20;

/// Serializes `g` to the text format above (round-trips with
/// `ParsePropertyGraph`).
std::string PropertyGraphToText(const PropertyGraph& g);

/// Lifts an edge-labeled graph to a property graph by giving every node the
/// label `node_label` and no properties (the converse of `skeleton()`).
PropertyGraph ToPropertyGraph(const EdgeLabeledGraph& g,
                              const std::string& node_label = "N");

}  // namespace gqzoo

#endif  // GQZOO_GRAPH_GRAPH_IO_H_
