#ifndef GQZOO_CRPQ_MODES_H_
#define GQZOO_CRPQ_MODES_H_

#include <functional>
#include <vector>

#include "src/automata/nfa.h"
#include "src/crpq/crpq.h"
#include "src/graph/csr.h"
#include "src/graph/path_binding.h"
#include "src/pmr/enumerate.h"

namespace gqzoo {

/// The mode functions of Section 3.1.5 applied to an explicit set of path
/// bindings: `shortest` keeps the bindings whose path length is minimal in
/// the set, `simple` keeps simple paths, `trail` keeps trails, `all` is the
/// identity. This is the reference (oracle) implementation; the evaluator
/// uses the PMR- and search-based implementations below.
std::vector<PathBinding> ApplyMode(PathMode mode,
                                   std::vector<PathBinding> bindings);

/// Enumerates `mode(σ_{u,v}([[R]]_G))` for the l-RPQ compiled into `nfa`:
///  * kAll — DFS over the trimmed per-pair PMR (infinite sets truncate at
///    the limits);
///  * kShortest — DFS over the shortest-restricted PMR (finite; Example
///    17's grouping-by-endpoint-pair semantics since the PMR is per-pair);
///  * kSimple / kTrail — backtracking search over graph × NFA carrying the
///    set of used nodes/edges (worst-case exponential; the NP-hardness of
///    Section 6.3 lives here).
/// Results are deduplicated (set semantics).
std::vector<PathBinding> CollectModePaths(const EdgeLabeledGraph& g,
                                          const Nfa& nfa, NodeId u, NodeId v,
                                          PathMode mode,
                                          const EnumerationLimits& limits,
                                          EnumerationStats* stats = nullptr);

/// Label-sliced variant: the PMR modes build their product graph from the
/// snapshot's per-label edge lists, and the simple/trail backtracking
/// search expands each NFA transition over exactly its label slice instead
/// of filtering the node's full adjacency. Same path sets; a `max_results`
/// truncation may keep a different (equally arbitrary) subset under
/// kSimple/kTrail because the search visits successors in slice order.
std::vector<PathBinding> CollectModePaths(const GraphSnapshot& s,
                                          const Nfa& nfa, NodeId u, NodeId v,
                                          PathMode mode,
                                          const EnumerationLimits& limits,
                                          EnumerationStats* stats = nullptr);

}  // namespace gqzoo

#endif  // GQZOO_CRPQ_MODES_H_
