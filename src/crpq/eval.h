#ifndef GQZOO_CRPQ_EVAL_H_
#define GQZOO_CRPQ_EVAL_H_

#include <vector>

#include "src/automata/nfa.h"
#include "src/crpq/crpq.h"
#include "src/crpq/modes.h"
#include "src/graph/csr.h"
#include "src/rel/wcoj.h"
#include "src/util/result.h"
#include "src/util/thread_pool.h"

namespace gqzoo {

/// Evaluation limits. The semantics of l-CRPQs can have infinitely many
/// list bindings under mode `all` (Section 6.3); the evaluator truncates at
/// these caps and reports it via CrpqResult::truncated.
struct CrpqEvalOptions {
  /// Per endpoint pair: maximum distinct (path, µ) enumerated per atom.
  size_t max_bindings_per_pair = 100000;
  /// Maximum path length explored during enumeration.
  size_t max_path_length = 1000;
  /// Optional cooperative cancellation (deadlines); evaluation returns a
  /// truncated result once the token trips. Not owned.
  const CancellationToken* cancel = nullptr;
  /// Optional label-partitioned view of the same graph (not owned; must
  /// outlive the call). When set, atom reachability, product-graph
  /// construction, and path search all iterate per-label slices instead of
  /// filtering full adjacency lists. Results are identical.
  const GraphSnapshot* snapshot = nullptr;
  /// Optional pool (not owned) for sharding unconstrained atom seeding
  /// (`R(x, y)` with both endpoints free) by source node. Requires
  /// `snapshot`; ignored without it.
  ThreadPool* pool = nullptr;
  /// Shards for the parallel atom seeding; 0 = pick from pool size.
  size_t num_shards = 0;
  /// Precompiled per-atom automata, parallel to the query's atoms (not
  /// owned; must outlive the call). Compiled plans supply these so cached
  /// executions never re-run the Glushkov construction; when null, each
  /// atom's NFA is compiled on the fly (direct callers, regular queries).
  const std::vector<Nfa>* atom_nfas = nullptr;
  /// Conjunct execution order: a permutation of atom indices from the
  /// planner. Null (or wrong size) = textual order. Results are identical
  /// either way under set semantics; only intermediate-join sizes differ.
  const std::vector<size_t>* join_order = nullptr;
  /// Planned worst-case-optimal join group for a cyclic core (not owned;
  /// produced by plan.cc). Honored only when `snapshot` is set: the core
  /// atoms are answered by one generic join over the per-label CSR slices
  /// and skipped in the binary join loop. Results are identical; only the
  /// intermediates differ (no binary blowup on triangles/cliques).
  const rel::WcojSpec* wcoj = nullptr;
  /// Run joins and head projection through the columnar batch kernel
  /// (rel/batch.h). Byte-identical rows and budget charges — the engine
  /// keeps both kernels live as differential oracles.
  bool use_batch = false;
};

/// Evaluates a CRPQ / l-CRPQ on `g` per Sections 3.1.2 and 3.1.5.
///
/// Per the definition of (restricted) path homomorphisms, path modes act
/// only through list variables: an atom with no list variables contributes
/// exactly the endpoint pairs [[R]]_G (computed by product reachability,
/// never enumerating paths), while an atom with list variables contributes,
/// for every endpoint pair (u, v), the bindings of
/// `mode(σ_{u,v}([[R]]_G))` — the endpoint-pair grouping of Example 17.
Result<CrpqResult> EvalCrpq(const EdgeLabeledGraph& g, const Crpq& q,
                            const CrpqEvalOptions& options = {});

}  // namespace gqzoo

#endif  // GQZOO_CRPQ_EVAL_H_
