#ifndef GQZOO_CRPQ_JOIN_H_
#define GQZOO_CRPQ_JOIN_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/crpq/crpq.h"
#include "src/util/query_context.h"

namespace gqzoo {
namespace crpq_internal {

/// An intermediate relation over named columns of CrpqValue cells, shared
/// by the l-CRPQ and dl-CRPQ evaluators.
struct Relation {
  std::vector<std::string> schema;
  std::vector<std::vector<CrpqValue>> rows;
};

/// Deduplicates rows (set semantics).
inline void Dedupe(Relation* r) {
  std::sort(r->rows.begin(), r->rows.end());
  r->rows.erase(std::unique(r->rows.begin(), r->rows.end()), r->rows.end());
}

/// Natural join on shared columns (only endpoint variables can be shared,
/// by conditions (3)–(4) of Section 3.1.5). `ctx` (optional) governs the
/// join: output tuples are charged against the memory budget at
/// allocation — the join is where conjunctive queries blow up — and the
/// result is partial once the context trips (callers must check it).
Relation NaturalJoin(const Relation& a, const Relation& b,
                     const QueryContext* ctx = nullptr);

/// Projects `joined` onto `head` and deduplicates; returns false if some
/// head column is missing (only possible when the join short-circuited
/// empty).
bool ProjectHead(const Relation& joined, const std::vector<std::string>& head,
                 std::vector<std::vector<CrpqValue>>* rows);

}  // namespace crpq_internal
}  // namespace gqzoo

#endif  // GQZOO_CRPQ_JOIN_H_
