#ifndef GQZOO_CRPQ_JOIN_H_
#define GQZOO_CRPQ_JOIN_H_

#include <string>
#include <vector>

#include "src/crpq/crpq.h"
#include "src/graph/csr.h"
#include "src/rel/rel.h"
#include "src/rel/wcoj.h"
#include "src/util/query_context.h"

namespace gqzoo {
namespace crpq_internal {

/// The intermediate relation of the l-CRPQ / dl-CRPQ evaluators is the
/// shared relational kernel instantiated at CrpqValue cells (endpoint
/// nodes and object lists). Only endpoint variables can be shared between
/// atoms, by conditions (3)–(4) of Section 3.1.5.
using Relation = rel::Table<CrpqValue>;

/// Deduplicates rows (set semantics). Skipped on a tripped context: a
/// partial relation is about to be discarded, don't burn time sorting it.
inline void Dedupe(Relation* r, const QueryContext* ctx = nullptr) {
  rel::Dedupe(r, ctx);
}

/// Natural join on shared columns. `ctx` (optional) governs the join:
/// output tuples are charged against the memory budget at allocation — the
/// join is where conjunctive queries blow up — and the result is partial
/// once the context trips (callers must check it). The per-tuple
/// allocation is also the `"crpq.join.alloc"` fail-point site.
/// `use_batch` routes through the columnar batch kernel (rel/batch.h):
/// byte-identical rows and charges, columnar execution underneath.
Relation NaturalJoin(const Relation& a, const Relation& b,
                     const QueryContext* ctx = nullptr,
                     bool use_batch = false);

/// Projects `joined` onto `head` and deduplicates (normalization skipped
/// when `ctx` has tripped); returns false if some head column is missing
/// (only possible when the join short-circuited empty).
bool ProjectHead(const Relation& joined, const std::vector<std::string>& head,
                 std::vector<std::vector<CrpqValue>>* rows,
                 const QueryContext* ctx = nullptr, bool use_batch = false);

/// Evaluates a planned worst-case-optimal group (plan.cc) over the
/// snapshot's per-label slices into a relation whose schema is the
/// group's variable elimination order. Rows arrive sorted and duplicate
/// free. Output tuples are charged like join tuples; the per-tuple
/// allocation is the `"crpq.wcoj.alloc"` fail-point site.
Relation WcojRelation(const GraphSnapshot& snap, const rel::WcojSpec& spec,
                      const QueryContext* ctx = nullptr);

}  // namespace crpq_internal
}  // namespace gqzoo

#endif  // GQZOO_CRPQ_JOIN_H_
