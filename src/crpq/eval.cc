#include "src/crpq/eval.h"

#include <algorithm>
#include <set>

#include "src/crpq/join.h"
#include "src/rpq/rpq_eval.h"

namespace gqzoo {

namespace {

using crpq_internal::Dedupe;
using crpq_internal::NaturalJoin;
using crpq_internal::ProjectHead;
using crpq_internal::Relation;

// Builds the relation of one atom over its precompiled automaton.
// Columns: endpoint variables (if not constants), then the atom's list
// variables. Validation (constants, two-way × list vars) has already run
// for every atom, so lookups here cannot fail.
Relation EvalAtom(const EdgeLabeledGraph& g, const CrpqAtom& atom,
                  const Nfa& nfa, const CrpqEvalOptions& options,
                  bool* truncated) {
  std::vector<std::string> list_vars = atom.regex->CaptureVariables();

  auto resolve = [&](const CrpqTerm& t) -> std::optional<NodeId> {
    return t.is_constant ? g.FindNode(t.name) : std::nullopt;
  };
  std::optional<NodeId> from_const = resolve(atom.from);
  std::optional<NodeId> to_const = resolve(atom.to);

  // Endpoint pairs of [[R]]_G, restricted by constants. With a snapshot,
  // reachability runs over label slices, and the unconstrained case — one
  // product BFS per source node, the dominant cost of atom seeding — is
  // sharded across the pool.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  if (from_const.has_value()) {
    NodeId u = *from_const;
    std::vector<NodeId> reached =
        options.snapshot != nullptr
            ? EvalRpqFrom(*options.snapshot, nfa, u, options.cancel)
            : EvalRpqFrom(g, nfa, u, options.cancel);
    for (NodeId v : reached) pairs.emplace_back(u, v);
  } else if (options.snapshot != nullptr) {
    ParallelRpqOptions seed;
    seed.pool = options.pool;
    seed.num_shards = options.num_shards;
    seed.cancel = options.cancel;
    pairs = EvalRpqParallel(*options.snapshot, nfa, seed);
  } else {
    pairs = EvalRpq(g, nfa, options.cancel);
  }
  if (to_const.has_value()) {
    NodeId v = *to_const;
    std::erase_if(pairs, [v](const auto& p) { return p.second != v; });
  }
  // Same variable at both endpoints is a self-join: R(x, x).
  const bool same_var = !atom.from.is_constant && !atom.to.is_constant &&
                        atom.from.name == atom.to.name;
  if (same_var) {
    std::erase_if(pairs, [](const auto& p) { return p.first != p.second; });
  }

  Relation rel;
  if (!atom.from.is_constant) rel.schema.push_back(atom.from.name);
  if (!atom.to.is_constant && !same_var) rel.schema.push_back(atom.to.name);
  for (const std::string& z : list_vars) rel.schema.push_back(z);

  EnumerationLimits limits;
  limits.max_results = options.max_bindings_per_pair;
  limits.max_length = options.max_path_length;
  limits.cancel = options.cancel;

  for (const auto& [u, v] : pairs) {
    if (ShouldStop(options.cancel)) {
      *truncated = true;
      break;
    }
    std::vector<CrpqValue> prefix;
    if (!atom.from.is_constant) prefix.push_back(u);
    if (!atom.to.is_constant && !same_var) prefix.push_back(v);
    if (list_vars.empty()) {
      // Modes act only through list variables (see eval.h): the atom
      // contributes the endpoint pair itself.
      if (!ChargeMemory(options.cancel,
                        prefix.size() * sizeof(CrpqValue) + 32)) {
        *truncated = true;
        break;
      }
      rel.rows.push_back(std::move(prefix));
      continue;
    }
    EnumerationStats stats;
    std::vector<PathBinding> bindings =
        options.snapshot != nullptr
            ? CollectModePaths(*options.snapshot, nfa, u, v, atom.mode, limits,
                               &stats)
            : CollectModePaths(g, nfa, u, v, atom.mode, limits, &stats);
    if (stats.truncated) *truncated = true;
    if (stats.cancelled) break;
    // Distinct µ projections (several paths may induce the same µ).
    std::set<std::vector<CrpqValue>> seen;
    for (const PathBinding& pb : bindings) {
      std::vector<CrpqValue> row = prefix;
      for (const std::string& z : list_vars) row.push_back(pb.mu.Get(z));
      if (seen.insert(row).second) {
        if (!ChargeMemory(options.cancel,
                          row.size() * sizeof(CrpqValue) + 32)) {
          *truncated = true;
          break;
        }
        rel.rows.push_back(std::move(row));
      }
    }
    if (ShouldStop(options.cancel)) {
      *truncated = true;
      break;
    }
  }
  // A relation left partial by a trip is about to be thrown away by the
  // engine; don't burn time sorting it (same contract as the RPQ path).
  Dedupe(&rel, options.cancel);
  return rel;
}

}  // namespace

Result<CrpqResult> EvalCrpq(const EdgeLabeledGraph& g, const Crpq& q,
                            const CrpqEvalOptions& options) {
  Result<bool> valid = q.Validate();
  if (!valid.ok()) return valid.error();
  if (q.atoms.empty()) return Error("CRPQ has no atoms");

  // Compile (or borrow from the plan) every atom's automaton up front.
  std::vector<Nfa> local_nfas;
  const std::vector<Nfa>* nfas = options.atom_nfas;
  if (nfas == nullptr || nfas->size() != q.atoms.size()) {
    local_nfas.reserve(q.atoms.size());
    for (const CrpqAtom& atom : q.atoms) {
      local_nfas.push_back(Nfa::FromRegex(*atom.regex, g));
    }
    nfas = &local_nfas;
  }

  // Validate every atom before evaluating any, in textual order: which
  // error surfaces must not depend on the planner's join order or on an
  // early-out over an empty intermediate join.
  for (size_t i = 0; i < q.atoms.size(); ++i) {
    const CrpqAtom& atom = q.atoms[i];
    if ((*nfas)[i].HasInverse() &&
        !atom.regex->CaptureVariables().empty()) {
      return Error(
          "two-way atoms (~a) cannot be combined with list variables: paths "
          "are one-way (Remark 9)");
    }
    for (const CrpqTerm* t : {&atom.from, &atom.to}) {
      if (t->is_constant && !g.FindNode(t->name).has_value()) {
        return Error("unknown node constant '@" + t->name + "'");
      }
    }
  }

  const std::vector<size_t>* order = options.join_order;
  const bool use_order =
      order != nullptr && order->size() == q.atoms.size();

  // A planned wcoj group needs the snapshot's label slices; without one
  // the binary path silently serves the whole query.
  const rel::WcojSpec* wcoj =
      options.snapshot != nullptr ? options.wcoj : nullptr;
  std::vector<bool> in_core(q.atoms.size(), false);
  if (wcoj != nullptr) {
    for (size_t i : wcoj->conjuncts) {
      if (i < q.atoms.size()) in_core[i] = true;
    }
  }

  bool truncated = false;
  Relation joined;
  bool first = true;
  if (wcoj != nullptr) {
    joined = crpq_internal::WcojRelation(*options.snapshot, *wcoj,
                                         options.cancel);
    first = false;
  }
  for (size_t step = 0; step < q.atoms.size(); ++step) {
    const size_t idx = use_order ? (*order)[step] : step;
    if (wcoj != nullptr && in_core[idx]) continue;  // served by the wcoj
    if (ShouldStop(options.cancel)) {
      truncated = true;
      break;
    }
    if (!first && joined.rows.empty()) break;  // conjunction is empty
    Relation rel = EvalAtom(g, q.atoms[idx], (*nfas)[idx], options, &truncated);
    if (first) {
      joined = std::move(rel);
      first = false;
    } else {
      joined = NaturalJoin(joined, rel, options.cancel, options.use_batch);
    }
    if (joined.rows.empty()) break;  // early out: conjunction is empty
  }

  CrpqResult result;
  result.head = q.head;
  result.truncated = truncated;
  if (!joined.rows.empty()) {
    ProjectHead(joined, q.head, &result.rows, options.cancel,
                options.use_batch);
  }
  return result;
}

}  // namespace gqzoo
