#include "src/crpq/modes.h"

#include <algorithm>
#include <unordered_set>

#include "src/pmr/build.h"

namespace gqzoo {

std::vector<PathBinding> ApplyMode(PathMode mode,
                                   std::vector<PathBinding> bindings) {
  switch (mode) {
    case PathMode::kAll:
      return bindings;
    case PathMode::kShortest: {
      size_t best = SIZE_MAX;
      for (const PathBinding& pb : bindings) {
        best = std::min(best, pb.path.Length());
      }
      std::vector<PathBinding> out;
      for (PathBinding& pb : bindings) {
        if (pb.path.Length() == best) out.push_back(std::move(pb));
      }
      return out;
    }
    case PathMode::kSimple: {
      std::vector<PathBinding> out;
      for (PathBinding& pb : bindings) {
        if (pb.path.IsSimple()) out.push_back(std::move(pb));
      }
      return out;
    }
    case PathMode::kTrail: {
      std::vector<PathBinding> out;
      for (PathBinding& pb : bindings) {
        if (pb.path.IsTrail()) out.push_back(std::move(pb));
      }
      return out;
    }
  }
  return bindings;
}

namespace {

// Backtracking search for simple paths / trails matching the NFA from u to
// v. State: (graph node, NFA state), plus the used-node or used-edge set.
//
// With a snapshot the successor loop inverts: instead of scanning every
// out-edge and testing each transition's predicate, each transition
// iterates exactly its label slice. The path *set* is unchanged; the
// visit order differs, which only shows once `max_results` truncates (the
// surviving subset is order-dependent either way). Path search requires
// one-way automata (like the PMR path), so transitions always step
// forward.
class RestrictedSearch {
 public:
  RestrictedSearch(const EdgeLabeledGraph& g, const GraphSnapshot* snapshot,
                   const Nfa& nfa, NodeId target, PathMode mode,
                   const EnumerationLimits& limits,
                   std::vector<PathBinding>* out)
      : g_(g),
        snapshot_(snapshot),
        nfa_(nfa),
        target_(target),
        mode_(mode),
        limits_(limits),
        out_(out),
        used_nodes_(g.NumNodes(), false),
        used_edges_(g.NumEdges(), false) {}

  EnumerationStats Run(NodeId start) {
    current_.path = Path::OfNode(start);
    used_nodes_[start] = true;
    Dfs(start, nfa_.initial(), 0);
    return stats_;
  }

 private:
  void Dfs(NodeId node, uint32_t state, size_t depth) {
    if (stopped_) return;
    if (ShouldStop(limits_.cancel)) {
      stats_.cancelled = true;
      stats_.truncated = true;
      stopped_ = true;
      return;
    }
    if (node == target_ && nfa_.accepting(state)) {
      if (!ChargeRows(limits_.cancel) ||
          !ChargeMemory(limits_.cancel, ApproxBytes(current_))) {
        stats_.cancelled = true;
        stats_.truncated = true;
        stopped_ = true;
        return;
      }
      out_->push_back(current_);
      ++stats_.emitted;
      if (stats_.emitted >= limits_.max_results) {
        stats_.truncated = true;
        stopped_ = true;
        return;
      }
    }
    if (depth >= limits_.max_length) {
      stats_.truncated = true;
      return;
    }
    if (snapshot_ != nullptr) {
      for (const Nfa::Transition& t : nfa_.Out(state)) {
        snapshot_->ForEachMatch(node, t.pred, /*inverse=*/false,
                                [&](const GraphSnapshot::Hop& hop) {
                                  if (stopped_) return;
                                  Step(hop.edge, hop.node, t, depth);
                                });
        if (stopped_) return;
      }
    } else {
      for (EdgeId e : g_.OutEdges(node)) {
        LabelId l = g_.EdgeLabel(e);
        NodeId next = g_.Tgt(e);
        for (const Nfa::Transition& t : nfa_.Out(state)) {
          if (!t.pred.Matches(l)) continue;
          Step(e, next, t, depth);
          if (stopped_) return;
        }
      }
    }
  }

  // Tries one (edge, transition) extension: mode checks, extend, recurse,
  // backtrack.
  void Step(EdgeId e, NodeId next, const Nfa::Transition& t, size_t depth) {
    if (mode_ == PathMode::kTrail && used_edges_[e]) return;
    if (mode_ == PathMode::kSimple && used_nodes_[next]) return;
    // Extend.
    used_edges_[e] = true;
    used_nodes_[next] = true;
    current_.path.AppendObject(g_, ObjectRef::Edge(e));
    current_.path.AppendObject(g_, ObjectRef::Node(next));
    const bool captured = t.capture != Nfa::kNoCapture;
    if (captured) {
      current_.mu.Append(nfa_.capture_names()[t.capture], ObjectRef::Edge(e));
    }
    Dfs(next, t.to, depth + 1);
    // Backtrack.
    if (captured) {
      const std::string& var = nfa_.capture_names()[t.capture];
      ObjectList& list = current_.mu.lists[var];
      list.pop_back();
      if (list.empty()) current_.mu.lists.erase(var);
    }
    std::vector<ObjectRef> objs = current_.path.objects();
    objs.resize(objs.size() - 2);
    current_.path = Path::MakeUnchecked(std::move(objs));
    used_edges_[e] = false;
    if (mode_ == PathMode::kSimple) used_nodes_[next] = false;
  }

  const EdgeLabeledGraph& g_;
  const GraphSnapshot* snapshot_;
  const Nfa& nfa_;
  NodeId target_;
  PathMode mode_;
  const EnumerationLimits& limits_;
  std::vector<PathBinding>* out_;
  std::vector<bool> used_nodes_;
  std::vector<bool> used_edges_;
  PathBinding current_;
  EnumerationStats stats_;
  bool stopped_ = false;
};

// Shared body: `snapshot` may be null (seed adjacency).
std::vector<PathBinding> CollectModePathsImpl(const EdgeLabeledGraph& g,
                                              const GraphSnapshot* snapshot,
                                              const Nfa& nfa, NodeId u,
                                              NodeId v, PathMode mode,
                                              const EnumerationLimits& limits,
                                              EnumerationStats* stats) {
  std::vector<PathBinding> results;
  EnumerationStats local;
  auto build_pmr = [&] {
    return snapshot != nullptr ? BuildPmrBetween(*snapshot, nfa, u, v)
                               : BuildPmrBetween(g, nfa, u, v);
  };
  switch (mode) {
    case PathMode::kAll: {
      Pmr pmr = build_pmr();
      // Charge the succinct representation itself (nodes + edges) for the
      // duration of the enumeration; the emitted bindings are charged by
      // the enumerator.
      ScopedMemoryCharge pmr_bytes(limits.cancel);
      if (!pmr_bytes.Charge(pmr.NumNodes() * 32 + pmr.NumEdges() * 16)) {
        local.cancelled = true;
        local.truncated = true;
        break;
      }
      results = CollectPathBindings(pmr, limits, &local);
      break;
    }
    case PathMode::kShortest: {
      Pmr pmr = build_pmr().ShortestRestriction();
      ScopedMemoryCharge pmr_bytes(limits.cancel);
      if (!pmr_bytes.Charge(pmr.NumNodes() * 32 + pmr.NumEdges() * 16)) {
        local.cancelled = true;
        local.truncated = true;
        break;
      }
      results = CollectPathBindings(pmr, limits, &local);
      break;
    }
    case PathMode::kSimple:
    case PathMode::kTrail: {
      RestrictedSearch search(g, snapshot, nfa, v, mode, limits, &results);
      local = search.Run(u);
      // Skip ordering cancelled (partial, to-be-discarded) results so
      // deadlines stay prompt.
      if (!local.cancelled) {
        std::sort(results.begin(), results.end());
        results.erase(std::unique(results.begin(), results.end()),
                      results.end());
      }
      break;
    }
  }
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace

std::vector<PathBinding> CollectModePaths(const EdgeLabeledGraph& g,
                                          const Nfa& nfa, NodeId u, NodeId v,
                                          PathMode mode,
                                          const EnumerationLimits& limits,
                                          EnumerationStats* stats) {
  return CollectModePathsImpl(g, nullptr, nfa, u, v, mode, limits, stats);
}

std::vector<PathBinding> CollectModePaths(const GraphSnapshot& s,
                                          const Nfa& nfa, NodeId u, NodeId v,
                                          PathMode mode,
                                          const EnumerationLimits& limits,
                                          EnumerationStats* stats) {
  return CollectModePathsImpl(s.graph(), &s, nfa, u, v, mode, limits, stats);
}

}  // namespace gqzoo
