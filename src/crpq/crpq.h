#ifndef GQZOO_CRPQ_CRPQ_H_
#define GQZOO_CRPQ_CRPQ_H_

#include <string>
#include <variant>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/path.h"
#include "src/regex/ast.h"
#include "src/util/result.h"

namespace gqzoo {

/// Path modes of Section 3.1.5 (and GQL/SQL-PGQ).
enum class PathMode { kAll, kShortest, kSimple, kTrail };

const char* PathModeName(PathMode mode);

/// An endpoint term of a CRPQ atom: a node variable or a node constant
/// (the generalization of footnote 3; constants are written `@name` in the
/// concrete syntax).
struct CrpqTerm {
  bool is_constant = false;
  std::string name;  // variable name, or node display name if constant

  static CrpqTerm Var(std::string v) { return {false, std::move(v)}; }
  static CrpqTerm Const(std::string n) { return {true, std::move(n)}; }
};

/// One atom `m R(y, y')` of a CRPQ with list variables (3.1.5) or a
/// dl-CRPQ (3.2.2).
struct CrpqAtom {
  PathMode mode = PathMode::kAll;
  RegexPtr regex;
  CrpqTerm from;
  CrpqTerm to;
};

/// A conjunctive regular path query, possibly with list variables and data
/// tests: `q(x1, ..., xk) := m1 R1(y1, y1'), ..., mn Rn(yn, yn')`.
///
/// Plain CRPQs (3.1.2) are the special case where every regex is a plain
/// RPQ and the head contains only endpoint variables.
struct Crpq {
  std::string name;
  std::vector<std::string> head;
  std::vector<CrpqAtom> atoms;

  /// Checks well-formedness conditions (1)–(5) of Section 3.1.5:
  /// list variables are disjoint from endpoint variables, list variables
  /// are not shared between atoms, and every head variable is an endpoint
  /// or list variable of some atom.
  Result<bool> Validate() const;

  /// All endpoint variables, in first-occurrence order.
  std::vector<std::string> EndpointVariables() const;
  /// All list variables, in first-occurrence order.
  std::vector<std::string> ListVariables() const;

  std::string ToString() const;
};

/// A value in a CRPQ output tuple: a node (for endpoint variables) or a
/// list of graph objects (for list variables).
using CrpqValue = std::variant<NodeId, ObjectList>;

std::string CrpqValueToString(const EdgeLabeledGraph& g, const CrpqValue& v);

/// The output of a CRPQ: a set (sorted, deduplicated) of tuples over the
/// head variables. `truncated` is set when enumeration limits cut off an
/// infinite or huge list-binding set (only possible with mode `all` or very
/// large shortest/simple/trail sets; see CrpqEvalOptions).
struct CrpqResult {
  std::vector<std::string> head;
  std::vector<std::vector<CrpqValue>> rows;
  bool truncated = false;

  std::string ToString(const EdgeLabeledGraph& g) const;
};

}  // namespace gqzoo

#endif  // GQZOO_CRPQ_CRPQ_H_
