#include "src/crpq/crpq_parser.h"

#include "src/regex/lexer.h"

namespace gqzoo {

namespace {

Error ErrAt(const Token& t, const std::string& message) {
  return Error("CRPQ parse error at offset " + std::to_string(t.offset) +
               " ('" + t.text + "'): " + message);
}

// Parses an endpoint term at `*pos`: IDENT or '@' IDENT.
Result<CrpqTerm> ParseTerm(const std::vector<Token>& tokens, size_t* pos) {
  if (tokens[*pos].IsPunct("@")) {
    ++*pos;
    if (tokens[*pos].kind != Token::Kind::kIdent) {
      return ErrAt(tokens[*pos], "expected node name after '@'");
    }
    return CrpqTerm::Const(tokens[(*pos)++].text);
  }
  if (tokens[*pos].kind != Token::Kind::kIdent) {
    return ErrAt(tokens[*pos], "expected variable or '@' node constant");
  }
  return CrpqTerm::Var(tokens[(*pos)++].text);
}

}  // namespace

Result<Crpq> ParseCrpq(const std::string& text, RegexDialect dialect) {
  Result<std::vector<Token>> lexed = Lex(text);
  if (!lexed.ok()) return lexed.error();
  const std::vector<Token>& tokens = lexed.value();
  size_t pos = 0;

  Crpq q;
  if (tokens[pos].kind != Token::Kind::kIdent) {
    return ErrAt(tokens[pos], "expected query name");
  }
  q.name = tokens[pos++].text;
  if (!tokens[pos].IsPunct("(")) return ErrAt(tokens[pos], "expected '('");
  ++pos;
  while (!tokens[pos].IsPunct(")")) {
    if (!q.head.empty()) {
      if (!tokens[pos].IsPunct(",")) {
        return ErrAt(tokens[pos], "expected ',' in head");
      }
      ++pos;
    }
    if (tokens[pos].kind != Token::Kind::kIdent) {
      return ErrAt(tokens[pos], "expected head variable");
    }
    q.head.push_back(tokens[pos++].text);
  }
  ++pos;  // ')'
  if (!tokens[pos].IsPunct(":=") && !tokens[pos].IsPunct(":-")) {
    return ErrAt(tokens[pos], "expected ':=' or ':-'");
  }
  ++pos;

  while (true) {
    CrpqAtom atom;
    // Optional mode keyword.
    if (tokens[pos].kind == Token::Kind::kIdent) {
      const std::string& w = tokens[pos].text;
      if (w == "shortest" || w == "simple" || w == "trail" || w == "all") {
        atom.mode = w == "shortest" ? PathMode::kShortest
                    : w == "simple" ? PathMode::kSimple
                    : w == "trail"  ? PathMode::kTrail
                                    : PathMode::kAll;
        ++pos;
      }
    }
    // Find the end of this atom: the first depth-0 ',' or the end.
    size_t depth = 0;
    size_t end = pos;
    while (tokens[end].kind != Token::Kind::kEnd) {
      const Token& t = tokens[end];
      if (t.IsPunct("(") || t.IsPunct("[") || t.IsPunct("{")) {
        ++depth;
      } else if (t.IsPunct(")") || t.IsPunct("]") || t.IsPunct("}")) {
        if (depth == 0) return ErrAt(t, "unbalanced bracket");
        --depth;
      } else if (t.IsPunct(",") && depth == 0) {
        break;
      }
      ++end;
    }
    // The atom must end with an endpoint group "( term , term )": locate
    // its opening parenthesis by scanning back from `end`.
    if (end == pos || !tokens[end - 1].IsPunct(")")) {
      return ErrAt(tokens[end], "atom must end with endpoint pair '(y, y2)'");
    }
    size_t scan = end - 1;  // at ')'
    size_t inner_depth = 1;
    while (inner_depth > 0) {
      if (scan == pos) return ErrAt(tokens[pos], "unbalanced endpoint group");
      --scan;
      const Token& t = tokens[scan];
      if (t.IsPunct(")") || t.IsPunct("]") || t.IsPunct("}")) ++inner_depth;
      if (t.IsPunct("(") || t.IsPunct("[") || t.IsPunct("{")) --inner_depth;
    }
    size_t open = scan;  // index of the endpoint group's '('
    if (open == pos) {
      return ErrAt(tokens[pos], "atom is missing a regular expression");
    }
    // Parse the endpoint terms.
    size_t tpos = open + 1;
    Result<CrpqTerm> from = ParseTerm(tokens, &tpos);
    if (!from.ok()) return from.error();
    if (!tokens[tpos].IsPunct(",")) {
      return ErrAt(tokens[tpos], "expected ',' between endpoints");
    }
    ++tpos;
    Result<CrpqTerm> to = ParseTerm(tokens, &tpos);
    if (!to.ok()) return to.error();
    if (!tokens[tpos].IsPunct(")") || tpos + 1 != end) {
      return ErrAt(tokens[tpos], "malformed endpoint pair");
    }
    atom.from = std::move(from).value();
    atom.to = std::move(to).value();
    // Parse the regex on the slice [pos, open).
    std::vector<Token> slice(tokens.begin() + pos, tokens.begin() + open);
    slice.push_back({Token::Kind::kEnd, "", tokens[open].offset});
    size_t rpos = 0;
    Result<RegexPtr> regex = ParseRegexTokens(slice, &rpos, dialect);
    if (!regex.ok()) return regex.error();
    if (slice[rpos].kind != Token::Kind::kEnd) {
      return ErrAt(slice[rpos], "trailing tokens in atom regex");
    }
    atom.regex = std::move(regex).value();
    q.atoms.push_back(std::move(atom));

    pos = end;
    if (tokens[pos].kind == Token::Kind::kEnd) break;
    ++pos;  // ','
  }

  Result<bool> valid = q.Validate();
  if (!valid.ok()) return valid.error();
  return q;
}

}  // namespace gqzoo
