#include "src/crpq/crpq.h"

#include <algorithm>

#include "src/regex/printer.h"

namespace gqzoo {

const char* PathModeName(PathMode mode) {
  switch (mode) {
    case PathMode::kAll:
      return "all";
    case PathMode::kShortest:
      return "shortest";
    case PathMode::kSimple:
      return "simple";
    case PathMode::kTrail:
      return "trail";
  }
  return "?";
}

namespace {

void AddUnique(std::vector<std::string>* out, const std::string& v) {
  if (std::find(out->begin(), out->end(), v) == out->end()) out->push_back(v);
}

}  // namespace

std::vector<std::string> Crpq::EndpointVariables() const {
  std::vector<std::string> vars;
  for (const CrpqAtom& atom : atoms) {
    if (!atom.from.is_constant) AddUnique(&vars, atom.from.name);
    if (!atom.to.is_constant) AddUnique(&vars, atom.to.name);
  }
  return vars;
}

std::vector<std::string> Crpq::ListVariables() const {
  std::vector<std::string> vars;
  for (const CrpqAtom& atom : atoms) {
    for (const std::string& v : atom.regex->CaptureVariables()) {
      AddUnique(&vars, v);
    }
  }
  return vars;
}

Result<bool> Crpq::Validate() const {
  std::vector<std::string> endpoints = EndpointVariables();
  // (3) Var(R_i) disjoint from endpoint variables; (4) Var(R_i) pairwise
  // disjoint across atoms.
  std::vector<std::string> seen_list_vars;
  for (const CrpqAtom& atom : atoms) {
    for (const std::string& z : atom.regex->CaptureVariables()) {
      if (std::find(endpoints.begin(), endpoints.end(), z) !=
          endpoints.end()) {
        return Error("list variable '" + z +
                     "' also used as an endpoint variable (condition 3)");
      }
      if (std::find(seen_list_vars.begin(), seen_list_vars.end(), z) !=
          seen_list_vars.end()) {
        return Error("list variable '" + z +
                     "' used in more than one atom (condition 4)");
      }
      seen_list_vars.push_back(z);
    }
  }
  // (5) head variables are endpoint or list variables.
  for (const std::string& x : head) {
    bool known = std::find(endpoints.begin(), endpoints.end(), x) !=
                     endpoints.end() ||
                 std::find(seen_list_vars.begin(), seen_list_vars.end(), x) !=
                     seen_list_vars.end();
    if (!known) {
      return Error("head variable '" + x +
                   "' does not occur in the body (condition 5)");
    }
  }
  return true;
}

std::string Crpq::ToString() const {
  std::string out = name.empty() ? "q" : name;
  out += "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += head[i];
  }
  out += ") := ";
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    const CrpqAtom& atom = atoms[i];
    if (atom.mode != PathMode::kAll) {
      out += std::string(PathModeName(atom.mode)) + " ";
    }
    out += atom.regex->ToString();
    out += " (" + std::string(atom.from.is_constant ? "@" : "") +
           atom.from.name + ", " +
           std::string(atom.to.is_constant ? "@" : "") + atom.to.name + ")";
  }
  return out;
}

std::string CrpqValueToString(const EdgeLabeledGraph& g, const CrpqValue& v) {
  if (std::holds_alternative<NodeId>(v)) {
    return std::string(g.NodeName(std::get<NodeId>(v)));
  }
  return ListToString(g, std::get<ObjectList>(v));
}

std::string CrpqResult::ToString(const EdgeLabeledGraph& g) const {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += head[i] + " -> " + CrpqValueToString(g, row[i]);
    }
    out += "\n";
  }
  if (truncated) out += "(truncated)\n";
  return out;
}

}  // namespace gqzoo
