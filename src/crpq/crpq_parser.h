#ifndef GQZOO_CRPQ_CRPQ_PARSER_H_
#define GQZOO_CRPQ_CRPQ_PARSER_H_

#include <string>

#include "src/crpq/crpq.h"
#include "src/regex/parser.h"
#include "src/util/result.h"

namespace gqzoo {

/// Parses a CRPQ rule, e.g.
///
///     q(x, x1, x2) := owner(y, x1), isBlocked(y, x2),
///                     (Transfer Transfer?)(x, y)
///     q(x1, x2, z) := owner(y1, x1), owner(y2, x2),
///                     shortest (Transfer^z)+ (y1, y2)
///
/// Syntax: `name(head...) := [mode] REGEX (term, term), ...` where mode is
/// one of `shortest`, `simple`, `trail`, `all` (default `all`), and a term
/// is a variable or a node constant `@a3` (footnote 3). `:-` is accepted
/// for `:=`. With `dialect == RegexDialect::kDl`, atom regexes use the
/// dl-RPQ syntax, giving dl-CRPQs (Section 3.2.2).
Result<Crpq> ParseCrpq(const std::string& text,
                       RegexDialect dialect = RegexDialect::kPlain);

}  // namespace gqzoo

#endif  // GQZOO_CRPQ_CRPQ_PARSER_H_
