#include "src/crpq/join.h"

#include "src/util/failpoint.h"

namespace gqzoo {
namespace crpq_internal {

Relation NaturalJoin(const Relation& a, const Relation& b,
                     const QueryContext* ctx) {
  std::vector<size_t> shared_a, shared_b;
  std::vector<size_t> b_only;
  for (size_t j = 0; j < b.schema.size(); ++j) {
    auto it = std::find(a.schema.begin(), a.schema.end(), b.schema[j]);
    if (it != a.schema.end()) {
      shared_a.push_back(static_cast<size_t>(it - a.schema.begin()));
      shared_b.push_back(j);
    } else {
      b_only.push_back(j);
    }
  }
  Relation out;
  out.schema = a.schema;
  for (size_t j : b_only) out.schema.push_back(b.schema[j]);

  // The hash index on the shared columns is transient (scoped charge);
  // the output tuples are the join's dominant retained term — charged
  // tuple-by-tuple at allocation, which is also where the simulated
  // alloc-failure fail-point fires.
  ScopedMemoryCharge index_bytes(ctx);
  std::map<std::vector<CrpqValue>, std::vector<size_t>> index;
  for (size_t i = 0; i < b.rows.size(); ++i) {
    if (!index_bytes.Charge(shared_b.size() * sizeof(CrpqValue) + 48)) {
      return out;
    }
    std::vector<CrpqValue> key;
    for (size_t j : shared_b) key.push_back(b.rows[i][j]);
    index[std::move(key)].push_back(i);
  }
  const uint64_t tuple_bytes = out.schema.size() * sizeof(CrpqValue) + 32;
  for (const auto& row_a : a.rows) {
    if (ShouldStop(ctx)) return out;
    std::vector<CrpqValue> key;
    for (size_t j : shared_a) key.push_back(row_a[j]);
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (size_t i : it->second) {
      if (ctx != nullptr && Failpoint::ShouldFail("crpq.join.alloc")) {
        ctx->Trip(StopCause::kMemoryBudget);
        return out;
      }
      if (!ChargeMemory(ctx, tuple_bytes)) return out;
      std::vector<CrpqValue> row = row_a;
      for (size_t j : b_only) row.push_back(b.rows[i][j]);
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

bool ProjectHead(const Relation& joined, const std::vector<std::string>& head,
                 std::vector<std::vector<CrpqValue>>* rows) {
  std::vector<size_t> indices;
  for (const std::string& x : head) {
    auto it = std::find(joined.schema.begin(), joined.schema.end(), x);
    if (it == joined.schema.end()) return false;
    indices.push_back(static_cast<size_t>(it - joined.schema.begin()));
  }
  for (const auto& row : joined.rows) {
    std::vector<CrpqValue> out_row;
    out_row.reserve(indices.size());
    for (size_t i : indices) out_row.push_back(row[i]);
    rows->push_back(std::move(out_row));
  }
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
  return true;
}

}  // namespace crpq_internal
}  // namespace gqzoo
