#include "src/crpq/join.h"

#include <utility>

#include "src/rel/batch.h"

namespace gqzoo {
namespace crpq_internal {

Relation NaturalJoin(const Relation& a, const Relation& b,
                     const QueryContext* ctx, bool use_batch) {
  if (use_batch) {
    return rel::NaturalJoinBatched(a, b, ctx, "crpq.join.alloc");
  }
  return rel::NaturalJoin(a, b, ctx, "crpq.join.alloc");
}

bool ProjectHead(const Relation& joined, const std::vector<std::string>& head,
                 std::vector<std::vector<CrpqValue>>* rows,
                 const QueryContext* ctx, bool use_batch) {
  Relation projected;
  if (use_batch) {
    if (!rel::ProjectBatched(joined, head, &projected, ctx)) return false;
  } else {
    if (!rel::Project(joined, head, &projected, ctx)) return false;
  }
  *rows = std::move(projected.rows);
  return true;
}

Relation WcojRelation(const GraphSnapshot& snap, const rel::WcojSpec& spec,
                      const QueryContext* ctx) {
  Relation out;
  out.schema = spec.vars;
  const uint64_t tuple_bytes = spec.vars.size() * sizeof(CrpqValue) + 32;
  std::vector<std::vector<NodeId>> rows =
      rel::WcojEval(snap, spec, tuple_bytes, ctx, "crpq.wcoj.alloc");
  out.rows.reserve(rows.size());
  for (const std::vector<NodeId>& r : rows) {
    std::vector<CrpqValue> row;
    row.reserve(r.size());
    for (NodeId v : r) row.emplace_back(v);
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace crpq_internal
}  // namespace gqzoo
