#include "src/crpq/join.h"

namespace gqzoo {
namespace crpq_internal {

Relation NaturalJoin(const Relation& a, const Relation& b,
                     const QueryContext* ctx) {
  return rel::NaturalJoin(a, b, ctx, "crpq.join.alloc");
}

bool ProjectHead(const Relation& joined, const std::vector<std::string>& head,
                 std::vector<std::vector<CrpqValue>>* rows,
                 const QueryContext* ctx) {
  Relation projected;
  if (!rel::Project(joined, head, &projected, ctx)) return false;
  *rows = std::move(projected.rows);
  return true;
}

}  // namespace crpq_internal
}  // namespace gqzoo
