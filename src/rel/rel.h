#ifndef GQZOO_REL_REL_H_
#define GQZOO_REL_REL_H_

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/rel/cell.h"
#include "src/util/failpoint.h"
#include "src/util/query_context.h"

namespace gqzoo {
namespace rel {

/// The unified relational kernel: one schema'd relation type over a
/// generic cell, shared by the l-CRPQ / dl-CRPQ evaluators
/// (`Cell = CrpqValue`) and CoreGQL (`Cell = CoreCell`).
///
/// Relations are under set semantics; operators that can introduce
/// duplicates (projection) normalize, and the join of normalized inputs is
/// normalized by construction. Every operator takes an optional
/// `QueryContext`: output tuples are charged against the memory budget at
/// allocation (the join is where conjunctive queries blow up, Section
/// 3.1.5), and a tripped context makes operators unwind promptly with a
/// partial result — in particular, normalization is *skipped* on a tripped
/// context, since the caller is about to discard the rows anyway (the
/// prompt-unwinding contract of the resource governor).
template <typename Cell>
struct Table {
  std::vector<std::string> schema;
  std::vector<std::vector<Cell>> rows;

  size_t AttrIndex(const std::string& name) const {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == name) return i;
    }
    return SIZE_MAX;
  }
};

/// The column pairing of a natural join: positions of shared attributes in
/// each input, plus the b-only tail appended to a's schema.
struct JoinLayout {
  std::vector<size_t> shared_a;
  std::vector<size_t> shared_b;
  std::vector<size_t> b_only;
};

JoinLayout ComputeJoinLayout(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

/// Sorts rows and removes duplicates (set semantics). Skipped on a tripped
/// context: partial results are discarded by the caller, so ordering them
/// would only delay the unwind.
template <typename Cell>
void Dedupe(Table<Cell>* t, const QueryContext* ctx = nullptr) {
  if (HasStopped(ctx)) return;
  std::sort(t->rows.begin(), t->rows.end());
  t->rows.erase(std::unique(t->rows.begin(), t->rows.end()), t->rows.end());
}

/// Natural join on shared attribute names (cartesian product if none).
///
/// The build index on `b`'s shared columns is an unordered, reserve-ahead
/// hash map — transient, so its bytes are a scoped charge returned when
/// the join finishes. Output tuples are the join's dominant retained term:
/// each is charged at allocation, which is also where the simulated
/// alloc-failure fail-point (`alloc_failpoint`, when non-null and the join
/// is governed) fires. Output order: for each `a` row in order, the
/// matching `b` rows in `b` order — identical to the ordered-map
/// predecessor, so rendered results are byte-stable.
template <typename Cell>
Table<Cell> NaturalJoin(const Table<Cell>& a, const Table<Cell>& b,
                        const QueryContext* ctx = nullptr,
                        const char* alloc_failpoint = nullptr) {
  JoinLayout layout = ComputeJoinLayout(a.schema, b.schema);
  Table<Cell> out;
  out.schema = a.schema;
  for (size_t j : layout.b_only) out.schema.push_back(b.schema[j]);

  ScopedMemoryCharge index_bytes(ctx);
  std::unordered_map<std::vector<Cell>, std::vector<size_t>, RowHash<Cell>>
      index;
  index.reserve(b.rows.size());
  for (size_t i = 0; i < b.rows.size(); ++i) {
    if (!index_bytes.Charge(layout.shared_b.size() * sizeof(Cell) + 48)) {
      return out;
    }
    std::vector<Cell> key;
    key.reserve(layout.shared_b.size());
    for (size_t j : layout.shared_b) key.push_back(b.rows[i][j]);
    index[std::move(key)].push_back(i);
  }

  const uint64_t tuple_bytes = out.schema.size() * sizeof(Cell) + 32;
  std::vector<Cell> key;
  for (const auto& row_a : a.rows) {
    if (ShouldStop(ctx)) return out;
    key.clear();
    for (size_t j : layout.shared_a) key.push_back(row_a[j]);
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (size_t i : it->second) {
      if (ctx != nullptr && alloc_failpoint != nullptr &&
          Failpoint::ShouldFail(alloc_failpoint)) {
        ctx->Trip(StopCause::kMemoryBudget);
        return out;
      }
      if (!ChargeMemory(ctx, tuple_bytes)) return out;
      std::vector<Cell> row = row_a;
      for (size_t j : layout.b_only) row.push_back(b.rows[i][j]);
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

/// Semijoin-style filter: the rows of `a` that join with at least one row
/// of `b` on the shared attributes (all of `a` when none are shared). The
/// planner-ordered evaluators use this shape to pre-shrink an expensive
/// conjunct against an already-computed small one without materializing
/// the join.
template <typename Cell>
Table<Cell> SemiJoin(const Table<Cell>& a, const Table<Cell>& b,
                     const QueryContext* ctx = nullptr) {
  JoinLayout layout = ComputeJoinLayout(a.schema, b.schema);
  Table<Cell> out;
  out.schema = a.schema;
  if (layout.shared_b.empty()) {
    if (!b.rows.empty()) out.rows = a.rows;
    return out;
  }
  ScopedMemoryCharge index_bytes(ctx);
  std::unordered_map<std::vector<Cell>, bool, RowHash<Cell>> index;
  index.reserve(b.rows.size());
  for (const auto& row_b : b.rows) {
    if (!index_bytes.Charge(layout.shared_b.size() * sizeof(Cell) + 48)) {
      return out;
    }
    std::vector<Cell> key;
    key.reserve(layout.shared_b.size());
    for (size_t j : layout.shared_b) key.push_back(row_b[j]);
    index.emplace(std::move(key), true);
  }
  std::vector<Cell> key;
  for (const auto& row_a : a.rows) {
    if (ShouldStop(ctx)) return out;
    key.clear();
    for (size_t j : layout.shared_a) key.push_back(row_a[j]);
    if (index.find(key) == index.end()) continue;
    if (!ChargeMemory(ctx, a.schema.size() * sizeof(Cell) + 32)) return out;
    out.rows.push_back(row_a);
  }
  return out;
}

/// π_attrs with normalization (duplicates removed unless the context has
/// tripped). Returns false if some attribute is missing from the schema.
template <typename Cell>
bool Project(const Table<Cell>& t, const std::vector<std::string>& attrs,
             Table<Cell>* out, const QueryContext* ctx = nullptr) {
  std::vector<size_t> indices;
  for (const std::string& x : attrs) {
    size_t i = t.AttrIndex(x);
    if (i == SIZE_MAX) return false;
    indices.push_back(i);
  }
  out->schema = attrs;
  out->rows.clear();
  out->rows.reserve(t.rows.size());
  for (const auto& row : t.rows) {
    std::vector<Cell> out_row;
    out_row.reserve(indices.size());
    for (size_t i : indices) out_row.push_back(row[i]);
    out->rows.push_back(std::move(out_row));
  }
  Dedupe(out, ctx);
  return true;
}

}  // namespace rel
}  // namespace gqzoo

#endif  // GQZOO_REL_REL_H_
