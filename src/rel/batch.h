#ifndef GQZOO_REL_BATCH_H_
#define GQZOO_REL_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "src/graph/graph.h"
#include "src/rel/rel.h"

namespace gqzoo {
namespace rel {

/// Columnar twin of the row kernel (rel.h).
///
/// A `ColumnBatch<Cell>` stores one column per attribute. A column whose
/// cells are all graph ids (the NodeId alternative of `CrpqValue`, the
/// node-ref alternative of `CoreCell`) is held as a raw
/// `std::vector<uint32_t>` with no `Cell` boxes at all; the first non-id
/// cell demotes the column to an index vector into a `side` store of real
/// `Cell`s. Conjunctive cores bind node variables almost exclusively, so
/// the hot joins run over packed u32 columns and only list/value/path
/// columns pay for the variant.
///
/// The batch operators below are drop-in twins of the row operators: same
/// output rows in the same order, and the *identical* `QueryContext`
/// charge sequence (same per-entry amounts, in the same order, with the
/// alloc fail-point consulted at the same points), so a budget that trips
/// mid-join leaves the same partial result and the same `BudgetReport`
/// first cause as the row kernel would. The charge formulas deliberately
/// keep `sizeof(Cell)` even for packed id columns: the budget models the
/// row kernel's allocation behaviour, and diverging would make the two
/// kernels observably different under a governed run.

/// Which cells of `Cell` pack into a u32 id column. The primary template
/// packs nothing (every cell goes to the side store); the two variant
/// specializations cover the kernel's instantiations: `CrpqValue`
/// (NodeId-first) and `CoreCell` (ObjectRef-first, node refs only — edge
/// refs compare after node refs, so only the node alternative keeps u32
/// order equal to `Cell` order).
template <typename Cell>
struct BatchCellTraits {
  static bool IsId(const Cell&) { return false; }
  static uint32_t IdOf(const Cell&) { return 0; }
  static Cell FromId(uint32_t) { return Cell{}; }
};

template <typename... Ts>
struct BatchCellTraits<std::variant<uint32_t, Ts...>> {
  using Cell = std::variant<uint32_t, Ts...>;
  static bool IsId(const Cell& c) { return c.index() == 0; }
  static uint32_t IdOf(const Cell& c) { return std::get<0>(c); }
  static Cell FromId(uint32_t v) { return Cell(std::in_place_index<0>, v); }
};

template <typename... Ts>
struct BatchCellTraits<std::variant<ObjectRef, Ts...>> {
  using Cell = std::variant<ObjectRef, Ts...>;
  static bool IsId(const Cell& c) {
    return c.index() == 0 && std::get<0>(c).is_node();
  }
  static uint32_t IdOf(const Cell& c) { return std::get<0>(c).id; }
  static Cell FromId(uint32_t v) {
    return Cell(std::in_place_index<0>, ObjectRef::Node(v));
  }
};

template <typename Cell>
struct ColumnBatch {
  using Traits = BatchCellTraits<Cell>;

  struct Column {
    bool all_ids = true;          // null-free id column?
    std::vector<uint32_t> data;   // ids, or indices into `side`
    std::vector<Cell> side;       // boxed cells (empty while all_ids)

    Cell At(size_t row) const {
      return all_ids ? Traits::FromId(data[row]) : side[data[row]];
    }
    void AppendId(uint32_t v) {
      if (all_ids) {
        data.push_back(v);
        return;
      }
      data.push_back(static_cast<uint32_t>(side.size()));
      side.push_back(Traits::FromId(v));
    }
    void Append(const Cell& c) {
      if (all_ids && Traits::IsId(c)) {
        data.push_back(Traits::IdOf(c));
        return;
      }
      if (all_ids) Demote();
      data.push_back(static_cast<uint32_t>(side.size()));
      side.push_back(c);
    }
    void AppendFrom(const Column& src, size_t row) {
      if (src.all_ids) {
        AppendId(src.data[row]);
      } else {
        Append(src.side[src.data[row]]);
      }
    }
    // Re-box the packed ids so the column can hold arbitrary cells.
    void Demote() {
      side.reserve(data.size());
      for (size_t i = 0; i < data.size(); ++i) {
        side.push_back(Traits::FromId(data[i]));
        data[i] = static_cast<uint32_t>(i);
      }
      all_ids = false;
    }
    // Three-way compare of two cells of this column; u32 order equals
    // Cell order for id columns (same variant alternative throughout).
    int Compare(size_t r1, size_t r2) const {
      if (all_ids) {
        if (data[r1] != data[r2]) return data[r1] < data[r2] ? -1 : 1;
        return 0;
      }
      const Cell& c1 = side[data[r1]];
      const Cell& c2 = side[data[r2]];
      if (c1 < c2) return -1;
      if (c2 < c1) return 1;
      return 0;
    }
  };

  std::vector<std::string> schema;
  std::vector<Column> cols;
  size_t num_rows = 0;

  size_t AttrIndex(const std::string& name) const {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == name) return i;
    }
    return SIZE_MAX;
  }
};

template <typename Cell>
ColumnBatch<Cell> ToBatch(const Table<Cell>& t) {
  ColumnBatch<Cell> out;
  out.schema = t.schema;
  out.cols.resize(t.schema.size());
  out.num_rows = t.rows.size();
  for (const auto& row : t.rows) {
    for (size_t c = 0; c < row.size(); ++c) out.cols[c].Append(row[c]);
  }
  return out;
}

template <typename Cell>
Table<Cell> ToTable(const ColumnBatch<Cell>& b) {
  Table<Cell> out;
  out.schema = b.schema;
  out.rows.reserve(b.num_rows);
  for (size_t r = 0; r < b.num_rows; ++r) {
    std::vector<Cell> row;
    row.reserve(b.cols.size());
    for (const auto& col : b.cols) row.push_back(col.At(r));
    out.rows.push_back(std::move(row));
  }
  return out;
}

namespace batch_internal {

struct IdKeyHash {
  size_t operator()(const std::vector<uint32_t>& key) const {
    size_t h = key.size();
    for (uint32_t v : key) h = HashCombine(h, HashCell(v));
    return h;
  }
};

template <typename Cell>
bool AllIdColumns(const ColumnBatch<Cell>& b, const std::vector<size_t>& idx) {
  for (size_t i : idx) {
    if (!b.cols[i].all_ids) return false;
  }
  return true;
}

// Gathers `rows` of `src` into a fresh batch with the same schema/layout.
template <typename Cell>
ColumnBatch<Cell> Gather(const ColumnBatch<Cell>& src,
                         const std::vector<size_t>& rows) {
  ColumnBatch<Cell> out;
  out.schema = src.schema;
  out.cols.resize(src.cols.size());
  out.num_rows = rows.size();
  for (size_t c = 0; c < src.cols.size(); ++c) {
    for (size_t r : rows) out.cols[c].AppendFrom(src.cols[c], r);
  }
  return out;
}

}  // namespace batch_internal

/// Columnar Dedupe: sorts a row permutation (column-major comparisons, no
/// row materialization) and gathers the unique rows. Same lexicographic
/// row order as the row kernel's `Dedupe`, and skipped on a tripped
/// context for the same prompt-unwinding reason.
template <typename Cell>
void BatchDedupe(ColumnBatch<Cell>* b, const QueryContext* ctx = nullptr) {
  if (HasStopped(ctx)) return;
  std::vector<size_t> perm(b->num_rows);
  std::iota(perm.begin(), perm.end(), 0);
  auto cmp3 = [b](size_t r1, size_t r2) {
    for (const auto& col : b->cols) {
      int c = col.Compare(r1, r2);
      if (c != 0) return c;
    }
    return 0;
  };
  std::sort(perm.begin(), perm.end(),
            [&cmp3](size_t r1, size_t r2) { return cmp3(r1, r2) < 0; });
  std::vector<size_t> keep;
  keep.reserve(perm.size());
  for (size_t r : perm) {
    if (!keep.empty() && cmp3(keep.back(), r) == 0) continue;
    keep.push_back(r);
  }
  *b = batch_internal::Gather(*b, keep);
}

/// Columnar natural join. Byte-identical outputs and charge sequence to
/// the row kernel's `NaturalJoin` (see file comment); when every key
/// column on both sides is a packed id column the build/probe keys are
/// raw u32 vectors and no `Cell` is ever boxed on the hot path.
template <typename Cell>
ColumnBatch<Cell> BatchNaturalJoin(const ColumnBatch<Cell>& a,
                                   const ColumnBatch<Cell>& b,
                                   const QueryContext* ctx = nullptr,
                                   const char* alloc_failpoint = nullptr) {
  JoinLayout layout = ComputeJoinLayout(a.schema, b.schema);
  ColumnBatch<Cell> out;
  out.schema = a.schema;
  for (size_t j : layout.b_only) out.schema.push_back(b.schema[j]);
  out.cols.resize(out.schema.size());

  const uint64_t entry_bytes = layout.shared_b.size() * sizeof(Cell) + 48;
  const uint64_t tuple_bytes = out.schema.size() * sizeof(Cell) + 32;
  const bool id_keys = batch_internal::AllIdColumns(a, layout.shared_a) &&
                       batch_internal::AllIdColumns(b, layout.shared_b);

  auto emit = [&](size_t ra, size_t rb) {
    size_t c = 0;
    for (; c < a.cols.size(); ++c) out.cols[c].AppendFrom(a.cols[c], ra);
    for (size_t j : layout.b_only) out.cols[c++].AppendFrom(b.cols[j], rb);
    ++out.num_rows;
  };
  // Per-match governance, identical to the row kernel: fail-point first,
  // then the output-tuple charge.
  auto admit = [&]() -> bool {
    if (ctx != nullptr && alloc_failpoint != nullptr &&
        Failpoint::ShouldFail(alloc_failpoint)) {
      ctx->Trip(StopCause::kMemoryBudget);
      return false;
    }
    return ChargeMemory(ctx, tuple_bytes);
  };

  ScopedMemoryCharge index_bytes(ctx);
  if (id_keys) {
    std::unordered_map<std::vector<uint32_t>, std::vector<size_t>,
                       batch_internal::IdKeyHash>
        index;
    index.reserve(b.num_rows);
    for (size_t i = 0; i < b.num_rows; ++i) {
      if (!index_bytes.Charge(entry_bytes)) return out;
      std::vector<uint32_t> key;
      key.reserve(layout.shared_b.size());
      for (size_t j : layout.shared_b) key.push_back(b.cols[j].data[i]);
      index[std::move(key)].push_back(i);
    }
    std::vector<uint32_t> key;
    for (size_t ra = 0; ra < a.num_rows; ++ra) {
      if (ShouldStop(ctx)) return out;
      key.clear();
      for (size_t j : layout.shared_a) key.push_back(a.cols[j].data[ra]);
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (size_t rb : it->second) {
        if (!admit()) return out;
        emit(ra, rb);
      }
    }
    return out;
  }

  std::unordered_map<std::vector<Cell>, std::vector<size_t>, RowHash<Cell>>
      index;
  index.reserve(b.num_rows);
  for (size_t i = 0; i < b.num_rows; ++i) {
    if (!index_bytes.Charge(entry_bytes)) return out;
    std::vector<Cell> key;
    key.reserve(layout.shared_b.size());
    for (size_t j : layout.shared_b) key.push_back(b.cols[j].At(i));
    index[std::move(key)].push_back(i);
  }
  std::vector<Cell> key;
  for (size_t ra = 0; ra < a.num_rows; ++ra) {
    if (ShouldStop(ctx)) return out;
    key.clear();
    for (size_t j : layout.shared_a) key.push_back(a.cols[j].At(ra));
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (size_t rb : it->second) {
      if (!admit()) return out;
      emit(ra, rb);
    }
  }
  return out;
}

/// Columnar semijoin, twin of the row kernel's `SemiJoin`.
template <typename Cell>
ColumnBatch<Cell> BatchSemiJoin(const ColumnBatch<Cell>& a,
                                const ColumnBatch<Cell>& b,
                                const QueryContext* ctx = nullptr) {
  JoinLayout layout = ComputeJoinLayout(a.schema, b.schema);
  ColumnBatch<Cell> out;
  out.schema = a.schema;
  out.cols.resize(a.cols.size());
  if (layout.shared_b.empty()) {
    if (b.num_rows != 0) {
      std::vector<size_t> all(a.num_rows);
      std::iota(all.begin(), all.end(), 0);
      out = batch_internal::Gather(a, all);
    }
    return out;
  }

  const uint64_t entry_bytes = layout.shared_b.size() * sizeof(Cell) + 48;
  const uint64_t keep_bytes = a.schema.size() * sizeof(Cell) + 32;
  ScopedMemoryCharge index_bytes(ctx);
  std::unordered_map<std::vector<Cell>, bool, RowHash<Cell>> index;
  index.reserve(b.num_rows);
  for (size_t i = 0; i < b.num_rows; ++i) {
    if (!index_bytes.Charge(entry_bytes)) return out;
    std::vector<Cell> key;
    key.reserve(layout.shared_b.size());
    for (size_t j : layout.shared_b) key.push_back(b.cols[j].At(i));
    index.emplace(std::move(key), true);
  }
  std::vector<Cell> key;
  for (size_t ra = 0; ra < a.num_rows; ++ra) {
    if (ShouldStop(ctx)) return out;
    key.clear();
    for (size_t j : layout.shared_a) key.push_back(a.cols[j].At(ra));
    if (index.find(key) == index.end()) continue;
    if (!ChargeMemory(ctx, keep_bytes)) return out;
    for (size_t c = 0; c < a.cols.size(); ++c) {
      out.cols[c].AppendFrom(a.cols[c], ra);
    }
    ++out.num_rows;
  }
  return out;
}

/// Columnar projection with normalization, twin of the row kernel's
/// `Project`. Returns false if some attribute is missing.
template <typename Cell>
bool BatchProject(const ColumnBatch<Cell>& t,
                  const std::vector<std::string>& attrs,
                  ColumnBatch<Cell>* out, const QueryContext* ctx = nullptr) {
  std::vector<size_t> indices;
  for (const std::string& x : attrs) {
    size_t i = t.AttrIndex(x);
    if (i == SIZE_MAX) return false;
    indices.push_back(i);
  }
  out->schema = attrs;
  out->cols.clear();
  out->cols.resize(attrs.size());
  out->num_rows = t.num_rows;
  for (size_t c = 0; c < indices.size(); ++c) {
    for (size_t r = 0; r < t.num_rows; ++r) {
      out->cols[c].AppendFrom(t.cols[indices[c]], r);
    }
  }
  BatchDedupe(out, ctx);
  return true;
}

/// Table-level drop-in twins: convert, run the batch operator, convert
/// back. The evaluators call these behind the engine's batch-kernel
/// toggle, so both kernels stay live as differential oracles.
template <typename Cell>
Table<Cell> NaturalJoinBatched(const Table<Cell>& a, const Table<Cell>& b,
                               const QueryContext* ctx = nullptr,
                               const char* alloc_failpoint = nullptr) {
  ColumnBatch<Cell> ca = ToBatch(a);
  ColumnBatch<Cell> cb = ToBatch(b);
  return ToTable(BatchNaturalJoin(ca, cb, ctx, alloc_failpoint));
}

template <typename Cell>
Table<Cell> SemiJoinBatched(const Table<Cell>& a, const Table<Cell>& b,
                            const QueryContext* ctx = nullptr) {
  ColumnBatch<Cell> ca = ToBatch(a);
  ColumnBatch<Cell> cb = ToBatch(b);
  return ToTable(BatchSemiJoin(ca, cb, ctx));
}

template <typename Cell>
bool ProjectBatched(const Table<Cell>& t, const std::vector<std::string>& attrs,
                    Table<Cell>* out, const QueryContext* ctx = nullptr) {
  ColumnBatch<Cell> ct = ToBatch(t);
  ColumnBatch<Cell> cout;
  if (!BatchProject(ct, attrs, &cout, ctx)) return false;
  *out = ToTable(cout);
  return true;
}

}  // namespace rel
}  // namespace gqzoo

#endif  // GQZOO_REL_BATCH_H_
