#include "src/rel/rel.h"

namespace gqzoo {
namespace rel {

JoinLayout ComputeJoinLayout(const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  JoinLayout layout;
  for (size_t j = 0; j < b.size(); ++j) {
    auto it = std::find(a.begin(), a.end(), b[j]);
    if (it != a.end()) {
      layout.shared_a.push_back(static_cast<size_t>(it - a.begin()));
      layout.shared_b.push_back(j);
    } else {
      layout.b_only.push_back(j);
    }
  }
  return layout;
}

}  // namespace rel
}  // namespace gqzoo
