#ifndef GQZOO_REL_CELL_H_
#define GQZOO_REL_CELL_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/path.h"
#include "src/util/interner.h"
#include "src/util/value.h"

namespace gqzoo {
namespace rel {

/// Hashing for the cell universe of the relational kernel (rel.h).
///
/// The kernel's hash join keys rows by their shared columns, so every cell
/// type a `Table<Cell>` instantiation uses needs a `HashCell` overload.
/// The two instantiations in the tree share these component types:
///
///   - `CrpqValue  = std::variant<NodeId, ObjectList>`  (crpq/crpq.h)
///   - `CoreCell   = std::variant<ObjectRef, Value, Path>` (coregql/relation.h)
///
/// Variants hash as (alternative index, alternative hash) so equal cells
/// hash equal and cells of different alternatives rarely collide.

inline size_t HashCell(uint32_t v) {  // NodeId / EdgeId / LabelId
  return HashCombine(0x9e3779b97f4a7c15ull, v);
}

inline size_t HashCell(const ObjectRef& o) { return ObjectRefHash()(o); }

inline size_t HashCell(const ObjectList& list) {
  size_t h = list.size();
  for (const ObjectRef& o : list) h = HashCombine(h, ObjectRefHash()(o));
  return h;
}

inline size_t HashCell(const Value& v) { return v.Hash(); }

inline size_t HashCell(const Path& p) { return p.Hash(); }

template <typename... Ts>
size_t HashCell(const std::variant<Ts...>& cell) {
  return HashCombine(
      cell.index(),
      std::visit([](const auto& alt) { return HashCell(alt); }, cell));
}

/// Hash of a join key (the shared-column projection of a row).
template <typename Cell>
size_t HashRow(const std::vector<Cell>& row) {
  size_t h = row.size();
  for (const Cell& cell : row) h = HashCombine(h, HashCell(cell));
  return h;
}

template <typename Cell>
struct RowHash {
  size_t operator()(const std::vector<Cell>& row) const {
    return HashRow(row);
  }
};

}  // namespace rel
}  // namespace gqzoo

#endif  // GQZOO_REL_CELL_H_
