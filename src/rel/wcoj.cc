#include "src/rel/wcoj.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/util/failpoint.h"

namespace gqzoo {
namespace rel {

namespace {

/// The per-run state of one generic-join execution: memoized candidate
/// lists plus the recursive binder. Levels are `spec.vars` positions; an
/// atom `l(f, t)` constrains the *later* of its endpoints with a
/// neighbour list of the earlier one, and contributes a graph-wide label
/// support list at the earlier level (its other endpoint is still free
/// there, so the only requirement is a non-empty slice in the right
/// direction).
class WcojRun {
 public:
  WcojRun(const GraphSnapshot& snap, const WcojSpec& spec,
          uint64_t tuple_bytes, const QueryContext* ctx,
          const char* alloc_failpoint)
      : snap_(snap),
        spec_(spec),
        tuple_bytes_(tuple_bytes),
        ctx_(ctx),
        alloc_failpoint_(alloc_failpoint),
        cache_bytes_(ctx) {}

  std::vector<std::vector<NodeId>> Run() {
    const size_t n = spec_.vars.size();
    levels_.resize(n);
    for (const WcojSpec::AtomSpec& atom : spec_.atoms) {
      const size_t lo = std::min(atom.from, atom.to);
      const size_t hi = std::max(atom.from, atom.to);
      // Binding the target walks the source's out-slice and vice versa.
      const bool out = atom.to == hi;
      levels_[hi].neigh.push_back({lo, atom.label, out});
      levels_[lo].support.push_back({atom.label, out});
    }
    binding_.resize(n);
    Bind(0);
    return std::move(rows_);
  }

 private:
  struct Neigh {
    size_t other;   // earlier level holding the bound endpoint
    LabelId label;
    bool out;       // true: candidates = out-neighbours of binding[other]
  };
  struct Level {
    std::vector<Neigh> neigh;
    std::vector<std::pair<LabelId, bool>> support;  // (label, needs out-slice)
  };

  /// All nodes with a non-empty out (or in) slice for `label`, in id
  /// order. Computed once per (label, direction) and charged.
  const std::vector<NodeId>* SupportList(LabelId label, bool out) {
    const uint64_t key = (uint64_t{label} << 1) | (out ? 1 : 0);
    auto it = support_.find(key);
    if (it != support_.end()) return &it->second;
    std::vector<NodeId> nodes;
    const size_t n = snap_.NumNodes();
    for (NodeId v = 0; v < n; ++v) {
      const GraphSnapshot::Slice s = out ? snap_.Out(v, label)
                                         : snap_.In(v, label);
      if (!s.empty()) nodes.push_back(v);
    }
    if (!cache_bytes_.Charge(nodes.size() * sizeof(NodeId) + 48)) {
      ok_ = false;
      return nullptr;
    }
    return &support_.emplace(key, std::move(nodes)).first->second;
  }

  /// Sorted, uniqued neighbour ids of `v`'s label slice. The CSR orders a
  /// label run by edge id, so parallel edges repeat a neighbour and the
  /// run is not id-sorted — extract, sort, unique, memoize.
  const std::vector<NodeId>* AdjList(NodeId v, LabelId label, bool out) {
    const uint64_t key =
        (uint64_t{v} << 32) | (uint64_t{label} << 1) | (out ? 1 : 0);
    auto it = adj_.find(key);
    if (it != adj_.end()) return &it->second;
    const GraphSnapshot::Slice s = out ? snap_.Out(v, label)
                                       : snap_.In(v, label);
    std::vector<NodeId> nodes;
    nodes.reserve(s.size());
    for (const GraphSnapshot::Hop& h : s) nodes.push_back(h.node);
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    if (!cache_bytes_.Charge(nodes.size() * sizeof(NodeId) + 48)) {
      ok_ = false;
      return nullptr;
    }
    return &adj_.emplace(key, std::move(nodes)).first->second;
  }

  void Bind(size_t level) {
    if (!ok_) return;
    const Level& lv = levels_[level];
    // Gather this level's sorted candidate lists.
    std::vector<const std::vector<NodeId>*> lists;
    lists.reserve(lv.support.size() + lv.neigh.size());
    for (const auto& [label, out] : lv.support) {
      const std::vector<NodeId>* l = SupportList(label, out);
      if (l == nullptr) return;
      lists.push_back(l);
    }
    for (const Neigh& ng : lv.neigh) {
      const std::vector<NodeId>* l = AdjList(binding_[ng.other], ng.label,
                                             ng.out);
      if (l == nullptr) return;
      lists.push_back(l);
    }
    if (lists.empty()) {
      // Malformed spec: a variable no atom constrains. Refuse rather than
      // enumerate the node universe.
      ok_ = false;
      return;
    }
    size_t base = 0;
    for (size_t i = 1; i < lists.size(); ++i) {
      if (lists[i]->size() < lists[base]->size()) base = i;
    }
    // Leapfrog over the smallest list, probing the rest.
    for (NodeId v : *lists[base]) {
      if (ShouldStop(ctx_)) {
        ok_ = false;
        return;
      }
      bool hit = true;
      for (size_t i = 0; i < lists.size() && hit; ++i) {
        if (i == base) continue;
        hit = std::binary_search(lists[i]->begin(), lists[i]->end(), v);
      }
      if (!hit) continue;
      binding_[level] = v;
      if (level + 1 < levels_.size()) {
        Bind(level + 1);
        if (!ok_) return;
        continue;
      }
      // Full binding: governed exactly like a join output tuple.
      if (ctx_ != nullptr && alloc_failpoint_ != nullptr &&
          Failpoint::ShouldFail(alloc_failpoint_)) {
        ctx_->Trip(StopCause::kMemoryBudget);
        ok_ = false;
        return;
      }
      if (!ChargeMemory(ctx_, tuple_bytes_)) {
        ok_ = false;
        return;
      }
      rows_.push_back(binding_);
    }
  }

  const GraphSnapshot& snap_;
  const WcojSpec& spec_;
  const uint64_t tuple_bytes_;
  const QueryContext* ctx_;
  const char* alloc_failpoint_;
  ScopedMemoryCharge cache_bytes_;
  std::vector<Level> levels_;
  std::vector<NodeId> binding_;
  std::unordered_map<uint64_t, std::vector<NodeId>> support_;
  std::unordered_map<uint64_t, std::vector<NodeId>> adj_;
  std::vector<std::vector<NodeId>> rows_;
  bool ok_ = true;
};

}  // namespace

std::vector<std::vector<NodeId>> WcojEval(const GraphSnapshot& snap,
                                          const WcojSpec& spec,
                                          uint64_t tuple_bytes,
                                          const QueryContext* ctx,
                                          const char* alloc_failpoint) {
  if (spec.vars.empty()) return {};
  return WcojRun(snap, spec, tuple_bytes, ctx, alloc_failpoint).Run();
}

}  // namespace rel
}  // namespace gqzoo
