#ifndef GQZOO_REL_WCOJ_H_
#define GQZOO_REL_WCOJ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/util/query_context.h"

namespace gqzoo {
namespace rel {

/// A planned worst-case-optimal join over a cyclic core of single-label
/// edge atoms. Produced by the planner (plan.cc resolves label names
/// against the graph at compile time, exactly like the compiled NFAs);
/// executed by `WcojEval` directly over a `GraphSnapshot`'s per-label CSR
/// slices — no materialized trie, no binary intermediates.
struct WcojSpec {
  /// One core atom `l(from, to)`: indices into `vars`, which is the
  /// variable *elimination order* chosen from `SnapshotStats`.
  struct AtomSpec {
    uint32_t from = 0;
    uint32_t to = 0;
    LabelId label = 0;
  };
  std::vector<std::string> vars;   // elimination order
  std::vector<AtomSpec> atoms;
  std::vector<size_t> conjuncts;   // group members (textual conjunct indices)
};

/// Leapfrog-style generic join: binds `spec.vars` one at a time, each
/// level intersecting the sorted candidate lists contributed by every
/// incident atom (neighbour lists of already-bound endpoints, label
/// support lists for not-yet-bound ones). Rows come out in lexicographic
/// order of the elimination-order binding — already sorted and duplicate
/// free, so callers need no Dedupe.
///
/// The CSR groups a node's hops by label but orders each label run by
/// edge id, not neighbour id, so candidate lists are extracted, sorted,
/// uniqued and memoized per (node, label, direction); the memo and the
/// label support lists are transient state charged through a
/// `ScopedMemoryCharge`. Every emitted row is charged `tuple_bytes`
/// (callers pass their kernel's output-tuple formula so governed runs
/// account wcoj output like join output), with the simulated
/// alloc-failure fail point `alloc_failpoint` consulted first, exactly
/// like `NaturalJoin`. On a tripped context the join unwinds promptly
/// with a partial result.
std::vector<std::vector<NodeId>> WcojEval(const GraphSnapshot& snap,
                                          const WcojSpec& spec,
                                          uint64_t tuple_bytes,
                                          const QueryContext* ctx = nullptr,
                                          const char* alloc_failpoint = nullptr);

}  // namespace rel
}  // namespace gqzoo

#endif  // GQZOO_REL_WCOJ_H_
