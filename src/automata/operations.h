#ifndef GQZOO_AUTOMATA_OPERATIONS_H_
#define GQZOO_AUTOMATA_OPERATIONS_H_

#include "src/automata/nfa.h"

namespace gqzoo {

/// Language-level operations on label NFAs. These are the "standard automata
/// constructions such as union, intersection, determinization, and
/// complement" that Remark 11's wildcard design keeps available. Capture
/// annotations are dropped: these operations act on languages.

/// L(a) ∪ L(b).
Nfa UnionNfa(const Nfa& a, const Nfa& b);

/// L(a) ∩ L(b), by product construction.
Nfa IntersectNfa(const Nfa& a, const Nfa& b);

/// A complete DFA for L(a) by subset construction over the effective
/// alphabet (mentioned labels + a co-finite "other" class).
Nfa Determinize(const Nfa& a);

/// Complement over the full label universe (determinize, complete, flip).
Nfa Complement(const Nfa& a);

/// Is L(a) empty?
bool IsEmptyLanguage(const Nfa& a);

/// L(a) == L(b)?
bool AreEquivalent(const Nfa& a, const Nfa& b);

/// L(a) ⊆ L(b)? — the query-containment primitive of Section 7.1's
/// "Static Analysis" direction (for single RPQs containment is exactly
/// language inclusion).
bool IsContainedIn(const Nfa& a, const Nfa& b);

/// Does some word have two distinct accepting runs? (Section 6.2 requires
/// unambiguity for path counting.) Decided via the trimmed self-product.
bool IsAmbiguous(const Nfa& a);

}  // namespace gqzoo

#endif  // GQZOO_AUTOMATA_OPERATIONS_H_
