#include "src/automata/nfa.h"

#include <algorithm>
#include <atomic>
#include <deque>

#include "src/automata/glushkov.h"

namespace gqzoo {

LabelPred LabelPred::NegSet(std::vector<LabelId> ls) {
  std::sort(ls.begin(), ls.end());
  ls.erase(std::unique(ls.begin(), ls.end()), ls.end());
  return {Kind::kNegSet, std::move(ls)};
}

bool LabelPred::Matches(LabelId l) const {
  switch (kind) {
    case Kind::kNone:
      return false;
    case Kind::kOne:
      return labels[0] == l;
    case Kind::kNegSet:
      return !std::binary_search(labels.begin(), labels.end(), l);
    case Kind::kAny:
      return true;
  }
  return false;
}

LabelPred LabelPred::And(const LabelPred& a, const LabelPred& b) {
  if (a.kind == Kind::kNone || b.kind == Kind::kNone) return None();
  if (a.kind == Kind::kAny) return b;
  if (b.kind == Kind::kAny) return a;
  if (a.kind == Kind::kOne) return b.Matches(a.labels[0]) ? a : None();
  if (b.kind == Kind::kOne) return a.Matches(b.labels[0]) ? b : None();
  // NegSet ∧ NegSet = Neg(union).
  std::vector<LabelId> merged = a.labels;
  merged.insert(merged.end(), b.labels.begin(), b.labels.end());
  return NegSet(std::move(merged));
}

namespace {

// Resolves an AST atom's label constraint against the graph's interner.
LabelPred ResolvePred(const Atom& atom, const EdgeLabeledGraph& g) {
  switch (atom.label_kind) {
    case Atom::LabelKind::kOne: {
      std::optional<LabelId> l = g.FindLabel(atom.labels[0]);
      return l.has_value() ? LabelPred::One(*l) : LabelPred::None();
    }
    case Atom::LabelKind::kNegSet: {
      std::vector<LabelId> ids;
      for (const std::string& name : atom.labels) {
        std::optional<LabelId> l = g.FindLabel(name);
        if (l.has_value()) ids.push_back(*l);
      }
      return LabelPred::NegSet(std::move(ids));
    }
    case Atom::LabelKind::kAny:
      return LabelPred::Any();
    case Atom::LabelKind::kTest:
      // Tests are not allowed at this layer (dl-RPQs have their own
      // automaton type in src/datatest); treat as match-nothing.
      return LabelPred::None();
  }
  return LabelPred::None();
}

std::atomic<uint64_t> nfa_compile_count{0};

}  // namespace

uint64_t Nfa::CompileCount() {
  return nfa_compile_count.load(std::memory_order_relaxed);
}

Nfa Nfa::FromRegex(const Regex& regex, const EdgeLabeledGraph& g) {
  nfa_compile_count.fetch_add(1, std::memory_order_relaxed);
  GlushkovAutomaton glushkov = BuildGlushkov(regex);
  Nfa nfa(static_cast<uint32_t>(glushkov.position_atoms.size() + 1));
  nfa.set_initial(0);
  nfa.set_accepting(0, glushkov.initial_accepting);
  for (uint32_t p : glushkov.accepting_positions) {
    nfa.set_accepting(p, true);  // positions are 1-based; state 0 is initial
  }
  for (uint32_t from = 0; from < glushkov.transitions.size(); ++from) {
    for (uint32_t to : glushkov.transitions[from]) {
      const Atom& atom = glushkov.position_atoms[to - 1];
      Transition t;
      t.to = to;
      t.pred = ResolvePred(atom, g);
      t.inverse = atom.inverse;
      if (atom.capture.has_value()) {
        t.capture = nfa.InternCapture(*atom.capture);
      }
      nfa.AddTransition(from, std::move(t));
    }
  }
  return nfa;
}

std::vector<uint32_t> Nfa::AcceptingStates() const {
  std::vector<uint32_t> result;
  for (uint32_t s = 0; s < num_states(); ++s) {
    if (accepting_[s]) result.push_back(s);
  }
  return result;
}

size_t Nfa::NumTransitions() const {
  size_t n = 0;
  for (const auto& ts : out_) n += ts.size();
  return n;
}

uint32_t Nfa::InternCapture(const std::string& name) {
  for (uint32_t i = 0; i < capture_names_.size(); ++i) {
    if (capture_names_[i] == name) return i;
  }
  capture_names_.push_back(name);
  return static_cast<uint32_t>(capture_names_.size() - 1);
}

bool Nfa::AcceptsWord(const std::vector<LabelId>& word) const {
  std::vector<bool> current(num_states(), false);
  current[initial_] = true;
  for (LabelId l : word) {
    std::vector<bool> next(num_states(), false);
    for (uint32_t s = 0; s < num_states(); ++s) {
      if (!current[s]) continue;
      for (const Transition& t : out_[s]) {
        if (t.pred.Matches(l)) next[t.to] = true;
      }
    }
    current = std::move(next);
  }
  for (uint32_t s = 0; s < num_states(); ++s) {
    if (current[s] && accepting_[s]) return true;
  }
  return false;
}

std::vector<LabelId> Nfa::MentionedLabels() const {
  std::vector<LabelId> labels;
  for (const auto& ts : out_) {
    for (const Transition& t : ts) {
      labels.insert(labels.end(), t.pred.labels.begin(), t.pred.labels.end());
    }
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

bool Nfa::HasInverse() const {
  for (const auto& ts : out_) {
    for (const Transition& t : ts) {
      if (t.inverse) return true;
    }
  }
  return false;
}

std::vector<bool> Nfa::ReachableStates() const {
  std::vector<bool> seen(num_states(), false);
  std::deque<uint32_t> queue = {initial_};
  seen[initial_] = true;
  while (!queue.empty()) {
    uint32_t s = queue.front();
    queue.pop_front();
    for (const Transition& t : out_[s]) {
      if (t.pred.kind != LabelPred::Kind::kNone && !seen[t.to]) {
        seen[t.to] = true;
        queue.push_back(t.to);
      }
    }
  }
  return seen;
}

std::vector<bool> Nfa::CoaccessibleStates() const {
  // Reverse adjacency.
  std::vector<std::vector<uint32_t>> rev(num_states());
  for (uint32_t s = 0; s < num_states(); ++s) {
    for (const Transition& t : out_[s]) {
      if (t.pred.kind != LabelPred::Kind::kNone) rev[t.to].push_back(s);
    }
  }
  std::vector<bool> seen(num_states(), false);
  std::deque<uint32_t> queue;
  for (uint32_t s = 0; s < num_states(); ++s) {
    if (accepting_[s]) {
      seen[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    uint32_t s = queue.front();
    queue.pop_front();
    for (uint32_t p : rev[s]) {
      if (!seen[p]) {
        seen[p] = true;
        queue.push_back(p);
      }
    }
  }
  return seen;
}

}  // namespace gqzoo
