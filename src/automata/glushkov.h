#ifndef GQZOO_AUTOMATA_GLUSHKOV_H_
#define GQZOO_AUTOMATA_GLUSHKOV_H_

#include <cstdint>
#include <vector>

#include "src/regex/ast.h"

namespace gqzoo {

/// The Glushkov (position) automaton of a regular expression, before label
/// resolution: states are 0 (initial) and 1..P (one per atom occurrence),
/// and the atom consumed when entering position p is `position_atoms[p-1]`.
///
/// The construction is ε-free by design, which Section 6.2 singles out as
/// the entry ticket to product-graph evaluation, and it works uniformly for
/// all three regex classes since atoms are opaque here: the RPQ layer
/// resolves atoms to label predicates, the dl layer to node/edge tests.
struct GlushkovAutomaton {
  std::vector<Atom> position_atoms;            // 1-based positions
  std::vector<std::vector<uint32_t>> transitions;  // state -> target positions
  std::vector<uint32_t> accepting_positions;
  bool initial_accepting = false;              // ε ∈ L(R)
};

/// Builds the Glushkov automaton of `regex` (linear in the number of
/// positions for the state set; quadratic for `follow`).
GlushkovAutomaton BuildGlushkov(const Regex& regex);

}  // namespace gqzoo

#endif  // GQZOO_AUTOMATA_GLUSHKOV_H_
