#include "src/automata/glushkov.h"

#include <set>

namespace gqzoo {

namespace {

// Classic first/last/follow computation over positions.
struct Builder {
  std::vector<Atom> atoms;  // position p -> atoms[p-1]
  std::vector<std::set<uint32_t>> follow;  // position p -> follow set

  struct Info {
    std::set<uint32_t> first;
    std::set<uint32_t> last;
    bool nullable;
  };

  Info Build(const Regex& r) {
    switch (r.op()) {
      case Regex::Op::kEpsilon:
        return {{}, {}, true};
      case Regex::Op::kAtom: {
        atoms.push_back(r.atom());
        follow.emplace_back();
        uint32_t p = static_cast<uint32_t>(atoms.size());
        return {{p}, {p}, false};
      }
      case Regex::Op::kConcat: {
        Info l = Build(*r.left());
        Info rr = Build(*r.right());
        for (uint32_t p : l.last) {
          follow[p - 1].insert(rr.first.begin(), rr.first.end());
        }
        Info out;
        out.first = l.first;
        if (l.nullable) out.first.insert(rr.first.begin(), rr.first.end());
        out.last = rr.last;
        if (rr.nullable) out.last.insert(l.last.begin(), l.last.end());
        out.nullable = l.nullable && rr.nullable;
        return out;
      }
      case Regex::Op::kUnion: {
        Info l = Build(*r.left());
        Info rr = Build(*r.right());
        Info out;
        out.first = l.first;
        out.first.insert(rr.first.begin(), rr.first.end());
        out.last = l.last;
        out.last.insert(rr.last.begin(), rr.last.end());
        out.nullable = l.nullable || rr.nullable;
        return out;
      }
      case Regex::Op::kStar:
      case Regex::Op::kPlus: {
        Info c = Build(*r.child());
        for (uint32_t p : c.last) {
          follow[p - 1].insert(c.first.begin(), c.first.end());
        }
        Info out = c;
        if (r.op() == Regex::Op::kStar) out.nullable = true;
        return out;
      }
      case Regex::Op::kOptional: {
        Info c = Build(*r.child());
        c.nullable = true;
        return c;
      }
    }
    return {{}, {}, true};
  }
};

}  // namespace

GlushkovAutomaton BuildGlushkov(const Regex& regex) {
  Builder builder;
  Builder::Info info = builder.Build(regex);

  GlushkovAutomaton out;
  out.position_atoms = std::move(builder.atoms);
  out.transitions.assign(out.position_atoms.size() + 1, {});
  for (uint32_t p : info.first) out.transitions[0].push_back(p);
  for (uint32_t p = 1; p <= out.position_atoms.size(); ++p) {
    for (uint32_t q : builder.follow[p - 1]) out.transitions[p].push_back(q);
  }
  out.accepting_positions.assign(info.last.begin(), info.last.end());
  out.initial_accepting = info.nullable;
  return out;
}

}  // namespace gqzoo
