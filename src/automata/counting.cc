#include "src/automata/counting.h"

namespace gqzoo {

BigUint CountAcceptingRuns(const Nfa& a, const std::vector<LabelId>& word) {
  std::vector<BigUint> current(a.num_states());
  current[a.initial()] = BigUint(1);
  for (LabelId l : word) {
    std::vector<BigUint> next(a.num_states());
    for (uint32_t s = 0; s < a.num_states(); ++s) {
      if (current[s].is_zero()) continue;
      for (const Nfa::Transition& t : a.Out(s)) {
        if (t.pred.Matches(l)) next[t.to] += current[s];
      }
    }
    current = std::move(next);
  }
  BigUint total;
  for (uint32_t s = 0; s < a.num_states(); ++s) {
    if (a.accepting(s)) total += current[s];
  }
  return total;
}

BigUint CountRunsOnPaths(const EdgeLabeledGraph& g, const Nfa& a, NodeId u,
                         NodeId v, size_t max_len) {
  // count[n][q] = number of (path, run) pairs of the current length from
  // (u, initial) to (n, q).
  const uint32_t num_states = a.num_states();
  std::vector<std::vector<BigUint>> current(
      g.NumNodes(), std::vector<BigUint>(num_states));
  current[u][a.initial()] = BigUint(1);

  auto tally = [&](const std::vector<std::vector<BigUint>>& table) {
    BigUint total;
    for (uint32_t q = 0; q < num_states; ++q) {
      if (a.accepting(q)) total += table[v][q];
    }
    return total;
  };

  BigUint total = tally(current);
  for (size_t step = 0; step < max_len; ++step) {
    std::vector<std::vector<BigUint>> next(g.NumNodes(),
                                           std::vector<BigUint>(num_states));
    bool any = false;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      for (uint32_t q = 0; q < num_states; ++q) {
        if (current[n][q].is_zero()) continue;
        for (EdgeId e : g.OutEdges(n)) {
          LabelId l = g.EdgeLabel(e);
          for (const Nfa::Transition& t : a.Out(q)) {
            if (t.pred.Matches(l)) {
              next[g.Tgt(e)][t.to] += current[n][q];
              any = true;
            }
          }
        }
      }
    }
    if (!any) break;
    current = std::move(next);
    total += tally(current);
  }
  return total;
}

}  // namespace gqzoo
