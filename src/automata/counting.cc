#include "src/automata/counting.h"

namespace gqzoo {

BigUint CountAcceptingRuns(const Nfa& a, const std::vector<LabelId>& word) {
  std::vector<BigUint> current(a.num_states());
  current[a.initial()] = BigUint(1);
  for (LabelId l : word) {
    std::vector<BigUint> next(a.num_states());
    for (uint32_t s = 0; s < a.num_states(); ++s) {
      if (current[s].is_zero()) continue;
      for (const Nfa::Transition& t : a.Out(s)) {
        if (t.pred.Matches(l)) next[t.to] += current[s];
      }
    }
    current = std::move(next);
  }
  BigUint total;
  for (uint32_t s = 0; s < a.num_states(); ++s) {
    if (a.accepting(s)) total += current[s];
  }
  return total;
}

namespace {

// Shared DP body: `expand(n, q, add)` must call `add(next_node, next_state)`
// once per product transition out of (n, q).
template <typename Expand>
BigUint CountRunsOnPathsImpl(size_t num_nodes, const Nfa& a, NodeId u,
                             NodeId v, size_t max_len, Expand&& expand) {
  // count[n][q] = number of (path, run) pairs of the current length from
  // (u, initial) to (n, q).
  const uint32_t num_states = a.num_states();
  std::vector<std::vector<BigUint>> current(num_nodes,
                                            std::vector<BigUint>(num_states));
  current[u][a.initial()] = BigUint(1);

  auto tally = [&](const std::vector<std::vector<BigUint>>& table) {
    BigUint total;
    for (uint32_t q = 0; q < num_states; ++q) {
      if (a.accepting(q)) total += table[v][q];
    }
    return total;
  };

  BigUint total = tally(current);
  for (size_t step = 0; step < max_len; ++step) {
    std::vector<std::vector<BigUint>> next(num_nodes,
                                           std::vector<BigUint>(num_states));
    bool any = false;
    for (NodeId n = 0; n < num_nodes; ++n) {
      for (uint32_t q = 0; q < num_states; ++q) {
        if (current[n][q].is_zero()) continue;
        expand(n, q, [&](NodeId to_node, uint32_t to_state) {
          next[to_node][to_state] += current[n][q];
          any = true;
        });
      }
    }
    if (!any) break;
    current = std::move(next);
    total += tally(current);
  }
  return total;
}

}  // namespace

BigUint CountRunsOnPaths(const EdgeLabeledGraph& g, const Nfa& a, NodeId u,
                         NodeId v, size_t max_len) {
  return CountRunsOnPathsImpl(
      g.NumNodes(), a, u, v, max_len,
      [&](NodeId n, uint32_t q, auto add) {
        for (EdgeId e : g.OutEdges(n)) {
          LabelId l = g.EdgeLabel(e);
          for (const Nfa::Transition& t : a.Out(q)) {
            if (t.pred.Matches(l)) add(g.Tgt(e), t.to);
          }
        }
      });
}

BigUint CountRunsOnPaths(const GraphSnapshot& s, const Nfa& a, NodeId u,
                         NodeId v, size_t max_len) {
  return CountRunsOnPathsImpl(
      s.NumNodes(), a, u, v, max_len,
      [&](NodeId n, uint32_t q, auto add) {
        for (const Nfa::Transition& t : a.Out(q)) {
          // Counting is over one-way paths; transitions step forward.
          s.ForEachMatch(n, t.pred, /*inverse=*/false,
                         [&](const GraphSnapshot::Hop& hop) {
                           add(hop.node, t.to);
                         });
        }
      });
}

}  // namespace gqzoo
