#ifndef GQZOO_AUTOMATA_COUNTING_H_
#define GQZOO_AUTOMATA_COUNTING_H_

#include "src/automata/nfa.h"
#include "src/graph/csr.h"
#include "src/util/biguint.h"

namespace gqzoo {

/// Number of distinct accepting runs of `a` on `word`. Equals 1 for every
/// accepted word iff the automaton is unambiguous.
BigUint CountAcceptingRuns(const Nfa& a, const std::vector<LabelId>& word);

/// Number of accepting runs of `a` over paths of length ≤ `max_len` from
/// `u` to `v` in `g` (DP over the product graph, Section 6.2). When `a` is
/// unambiguous (see IsAmbiguous), this equals the number of matching paths
/// from `u` to `v` of length ≤ `max_len` — the paper's recipe for path
/// counting.
BigUint CountRunsOnPaths(const EdgeLabeledGraph& g, const Nfa& a, NodeId u,
                         NodeId v, size_t max_len);
/// Label-sliced variant: each DP step expands per NFA transition over
/// exactly the label slice it matches. Same count (addition commutes).
BigUint CountRunsOnPaths(const GraphSnapshot& s, const Nfa& a, NodeId u,
                         NodeId v, size_t max_len);

}  // namespace gqzoo

#endif  // GQZOO_AUTOMATA_COUNTING_H_
