#include "src/automata/operations.h"

#include <cassert>
#include <deque>
#include <map>
#include <set>
#include <tuple>

namespace gqzoo {

namespace {

// Language-level operations are defined for one-way automata; 2RPQ
// automata (Remark 9) have a different alphabet (labels x direction) and
// are out of scope here.
void CheckOneWay(const Nfa& a) {
  assert(!a.HasInverse() && "language operations require one-way automata");
  (void)a;
}

// Does any label satisfy `pred`? (The label universe is countably infinite,
// Section 2, so kNegSet is always satisfiable.)
bool Satisfiable(const LabelPred& pred) {
  return pred.kind != LabelPred::Kind::kNone;
}

}  // namespace

Nfa UnionNfa(const Nfa& a, const Nfa& b) {
  CheckOneWay(a);
  CheckOneWay(b);

  uint32_t offset_a = 1;
  uint32_t offset_b = 1 + a.num_states();
  Nfa out(1 + a.num_states() + b.num_states());
  out.set_initial(0);
  out.set_accepting(0, a.accepting(a.initial()) || b.accepting(b.initial()));
  auto copy = [&out](const Nfa& src, uint32_t offset) {
    for (uint32_t s = 0; s < src.num_states(); ++s) {
      if (src.accepting(s)) out.set_accepting(s + offset, true);
      for (const Nfa::Transition& t : src.Out(s)) {
        out.AddTransition(s + offset, {t.to + offset, t.pred, Nfa::kNoCapture});
      }
    }
  };
  copy(a, offset_a);
  copy(b, offset_b);
  for (const Nfa::Transition& t : a.Out(a.initial())) {
    out.AddTransition(0, {t.to + offset_a, t.pred, Nfa::kNoCapture});
  }
  for (const Nfa::Transition& t : b.Out(b.initial())) {
    out.AddTransition(0, {t.to + offset_b, t.pred, Nfa::kNoCapture});
  }
  return out;
}

Nfa IntersectNfa(const Nfa& a, const Nfa& b) {
  CheckOneWay(a);
  CheckOneWay(b);

  std::map<std::pair<uint32_t, uint32_t>, uint32_t> ids;
  std::vector<std::pair<uint32_t, uint32_t>> states;
  auto intern = [&](uint32_t p, uint32_t q) {
    auto [it, inserted] = ids.try_emplace({p, q}, states.size());
    if (inserted) states.push_back({p, q});
    return it->second;
  };
  intern(a.initial(), b.initial());
  struct PendingTransition {
    uint32_t from, to;
    LabelPred pred;
  };
  std::vector<PendingTransition> transitions;
  for (size_t i = 0; i < states.size(); ++i) {
    auto [p, q] = states[i];
    for (const Nfa::Transition& ta : a.Out(p)) {
      for (const Nfa::Transition& tb : b.Out(q)) {
        LabelPred both = LabelPred::And(ta.pred, tb.pred);
        if (!Satisfiable(both)) continue;
        uint32_t to = intern(ta.to, tb.to);
        transitions.push_back({static_cast<uint32_t>(i), to, std::move(both)});
      }
    }
  }
  Nfa out(static_cast<uint32_t>(states.size()));
  out.set_initial(0);
  for (size_t i = 0; i < states.size(); ++i) {
    out.set_accepting(static_cast<uint32_t>(i), a.accepting(states[i].first) &&
                                                    b.accepting(states[i].second));
  }
  for (PendingTransition& t : transitions) {
    out.AddTransition(t.from, {t.to, std::move(t.pred), Nfa::kNoCapture});
  }
  return out;
}

Nfa Determinize(const Nfa& a) {
  CheckOneWay(a);

  // Effective alphabet: each mentioned label is its own symbol; all other
  // labels behave identically ("other" class, satisfiable because the label
  // universe is infinite).
  std::vector<LabelId> mentioned = a.MentionedLabels();
  std::vector<LabelPred> symbols;
  for (LabelId l : mentioned) symbols.push_back(LabelPred::One(l));
  symbols.push_back(mentioned.empty() ? LabelPred::Any()
                                      : LabelPred::NegSet(mentioned));

  auto matches_symbol = [&](const LabelPred& pred, size_t sym) {
    if (sym < mentioned.size()) return pred.Matches(mentioned[sym]);
    // The "other" class: kAny and kNegSet match (their negated labels are
    // all mentioned), kOne (of a mentioned label) and kNone do not.
    return pred.kind == LabelPred::Kind::kAny ||
           pred.kind == LabelPred::Kind::kNegSet;
  };

  std::map<std::set<uint32_t>, uint32_t> ids;
  std::vector<std::set<uint32_t>> subsets;
  auto intern = [&](std::set<uint32_t> subset) {
    auto [it, inserted] = ids.try_emplace(subset, subsets.size());
    if (inserted) subsets.push_back(std::move(subset));
    return it->second;
  };
  intern({a.initial()});
  struct PendingTransition {
    uint32_t from, to;
    size_t symbol;
  };
  std::vector<PendingTransition> transitions;
  for (size_t i = 0; i < subsets.size(); ++i) {
    std::set<uint32_t> current = subsets[i];  // copy: subsets may reallocate
    for (size_t sym = 0; sym < symbols.size(); ++sym) {
      std::set<uint32_t> next;
      for (uint32_t s : current) {
        for (const Nfa::Transition& t : a.Out(s)) {
          if (matches_symbol(t.pred, sym)) next.insert(t.to);
        }
      }
      uint32_t to = intern(std::move(next));
      transitions.push_back({static_cast<uint32_t>(i), to, sym});
    }
  }
  Nfa out(static_cast<uint32_t>(subsets.size()));
  out.set_initial(0);
  for (size_t i = 0; i < subsets.size(); ++i) {
    bool acc = false;
    for (uint32_t s : subsets[i]) acc = acc || a.accepting(s);
    out.set_accepting(static_cast<uint32_t>(i), acc);
  }
  for (const PendingTransition& t : transitions) {
    out.AddTransition(t.from, {t.to, symbols[t.symbol], Nfa::kNoCapture});
  }
  return out;
}

Nfa Complement(const Nfa& a) {
  Nfa dfa = Determinize(a);  // complete by construction (sink = empty set)
  for (uint32_t s = 0; s < dfa.num_states(); ++s) {
    dfa.set_accepting(s, !dfa.accepting(s));
  }
  return dfa;
}

bool IsEmptyLanguage(const Nfa& a) {
  std::vector<bool> reachable = a.ReachableStates();
  for (uint32_t s = 0; s < a.num_states(); ++s) {
    if (reachable[s] && a.accepting(s)) return false;
  }
  return true;
}

bool AreEquivalent(const Nfa& a, const Nfa& b) {
  return IsEmptyLanguage(IntersectNfa(a, Complement(b))) &&
         IsEmptyLanguage(IntersectNfa(b, Complement(a)));
}

bool IsContainedIn(const Nfa& a, const Nfa& b) {
  return IsEmptyLanguage(IntersectNfa(a, Complement(b)));
}

bool IsAmbiguous(const Nfa& a) {
  CheckOneWay(a);
  // Self-product with a divergence flag: a triple (p, q, diverged) is
  // reachable iff two runs on some common word end in p and q, having used
  // different transitions somewhere iff `diverged`. The automaton is
  // ambiguous iff some (f, g, true) with f, g accepting is reachable.
  // States are restricted to useful (reachable and co-accessible) ones so
  // non-accepting run prefixes don't count.
  std::vector<bool> reachable = a.ReachableStates();
  std::vector<bool> coaccessible = a.CoaccessibleStates();
  auto useful = [&](uint32_t s) { return reachable[s] && coaccessible[s]; };
  if (!useful(a.initial())) return false;

  struct Triple {
    uint32_t p, q;
    bool diverged;
    bool operator<(const Triple& o) const {
      return std::tie(p, q, diverged) < std::tie(o.p, o.q, o.diverged);
    }
  };
  std::set<Triple> seen;
  std::deque<Triple> queue;
  auto push = [&](Triple t) {
    if (seen.insert(t).second) queue.push_back(t);
  };
  push({a.initial(), a.initial(), false});
  while (!queue.empty()) {
    Triple cur = queue.front();
    queue.pop_front();
    if (cur.diverged && a.accepting(cur.p) && a.accepting(cur.q)) return true;
    const auto& out_p = a.Out(cur.p);
    const auto& out_q = a.Out(cur.q);
    for (size_t k = 0; k < out_p.size(); ++k) {
      if (!useful(out_p[k].to)) continue;
      for (size_t l = 0; l < out_q.size(); ++l) {
        if (!useful(out_q[l].to)) continue;
        if (!Satisfiable(LabelPred::And(out_p[k].pred, out_q[l].pred))) {
          continue;
        }
        bool diverged = cur.diverged || (cur.p == cur.q && k != l) ||
                        (cur.p != cur.q);
        push({out_p[k].to, out_q[l].to, diverged});
      }
    }
  }
  return false;
}

}  // namespace gqzoo
