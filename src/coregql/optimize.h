#ifndef GQZOO_COREGQL_OPTIMIZE_H_
#define GQZOO_COREGQL_OPTIMIZE_H_

#include "src/coregql/query.h"

namespace gqzoo {

/// Query-level optimizations for CoreGQL — Section 7.1 ("Relational
/// Algebra over Pattern Matching"): "some relational operations correspond
/// to constructs in pattern matching, and can be pushed down to or lifted
/// from the pattern matching layer. Exploring this interaction can support
/// optimization, e.g., by reducing the size of intermediate results."
///
/// Implemented rewrites (all answer-preserving):
///
///  1. Label pushdown: a top-level conjunct `x:L` in the block's WHERE is
///     removed and installed as the label constraint of every unlabeled
///     atom binding `x` (all occurrences of a singleton variable must bind
///     the same element, so constraining each is sound). If `x` already
///     carries a *different* label somewhere, the block is contradictory
///     and the conjunct is kept (the selection will empty it at runtime).
///
///  2. Constant-selection pushdown: a top-level conjunct `x.k op c` is
///     copied into a pattern-level condition wrapped around one pattern
///     that binds `x`, so the filter applies during matching rather than
///     after the join. The WHERE conjunct is dropped (the pattern-level
///     copy is equivalent).
///
/// Returns the rewritten query; `stats` (optional) reports what fired.
struct PushdownStats {
  size_t labels_pushed = 0;
  size_t selections_pushed = 0;
};

CoreGqlQuery PushDownConditions(const CoreGqlQuery& query,
                                PushdownStats* stats = nullptr);

}  // namespace gqzoo

#endif  // GQZOO_COREGQL_OPTIMIZE_H_
