#ifndef GQZOO_COREGQL_PATTERN_PARSER_H_
#define GQZOO_COREGQL_PATTERN_PARSER_H_

#include <string>

#include "src/coregql/pattern.h"
#include "src/regex/lexer.h"
#include "src/util/result.h"

namespace gqzoo {

/// Parses a CoreGQL pattern in GQL-ish ASCII-art syntax:
///
///     (x) -[e:Transfer]-> (y:Account)
///     (x) ( (u)->(v) WHERE u.k < v.k )* (y)
///     (x) ((a)->(b) | (a)<nothing>)    -- unions need equal free variables
///
/// Atoms: `(x)`, `(x:L)`, `(:L)`, `()` for nodes; `-[e]->`, `-[e:L]->`,
/// `-[:L]->`, `-[]->`, `->` for edges. Concatenation is juxtaposition;
/// `|` is disjunction (inside a group); postfix `*`, `+`, `?`, `{n}`,
/// `{n,}`, `{n,m}` are repetitions; `( π WHERE θ )` attaches a condition.
/// Conditions: `x.k op y.k`, `x.k op <const>`, `x:Label`,
/// `label(x) = Label`, combined with AND/OR/NOT and parentheses.
Result<CorePatternPtr> ParseCorePattern(const std::string& text);

/// Token-stream variant for embedding in the query parser; parses greedily
/// from `*pos`.
Result<CorePatternPtr> ParseCorePatternTokens(const std::vector<Token>& tokens,
                                              size_t* pos);

/// Parses a standalone condition θ.
Result<CoreCondPtr> ParseCoreCondition(const std::string& text);
Result<CoreCondPtr> ParseCoreConditionTokens(const std::vector<Token>& tokens,
                                             size_t* pos);

}  // namespace gqzoo

#endif  // GQZOO_COREGQL_PATTERN_PARSER_H_
