#include "src/coregql/group_eval.h"

#include <algorithm>
#include <set>

#include "src/util/failpoint.h"

namespace gqzoo {

std::string GqlValue::ToString(const EdgeLabeledGraph& g) const {
  if (is_element()) return std::string(g.ObjectName(element_));
  std::string out = "list(";
  for (size_t i = 0; i < list_.size(); ++i) {
    if (i > 0) out += ", ";
    out += list_[i].ToString(g);
  }
  return out + ")";
}

namespace {

struct EvalContext {
  const PropertyGraph& g;
  const CorePathEvalOptions& options;
  bool truncated = false;
};

void SortUnique(std::vector<GqlPathRow>* rows) {
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

bool LabelMatches(const PropertyGraph& g, ObjectRef o,
                  const std::optional<std::string>& label) {
  if (!label.has_value()) return true;
  std::optional<LabelId> l = g.FindLabel(*label);
  return l.has_value() && g.ObjectLabel(o) == *l;
}

// Join two bindings: shared singletons must agree; a singleton/group or
// group/group collision is a degree error (GQL's restriction).
enum class MergeOutcome { kOk, kMismatch, kDegreeError };

MergeOutcome MergeGql(const GqlBinding& a, const GqlBinding& b,
                      GqlBinding* out) {
  *out = a;
  for (const auto& [var, value] : b) {
    auto [it, inserted] = out->try_emplace(var, value);
    if (inserted) continue;
    if (it->second.is_list() || value.is_list()) {
      return MergeOutcome::kDegreeError;
    }
    if (!(it->second == value)) return MergeOutcome::kMismatch;
  }
  return MergeOutcome::kOk;
}

// Projects the singleton part of a GQL binding for condition evaluation.
CoreBinding SingletonPart(const GqlBinding& mu) {
  CoreBinding out;
  for (const auto& [var, value] : mu) {
    if (value.is_element()) out[var] = value.element();
  }
  return out;
}

Result<std::vector<GqlPathRow>> Eval(EvalContext* ctx, const CorePattern& p);

Result<std::vector<GqlPathRow>> EvalRepeat(EvalContext* ctx,
                                           const CorePattern& p) {
  Result<std::vector<GqlPathRow>> inner = Eval(ctx, *p.child());
  if (!inner.ok()) return inner;
  const PropertyGraph& g = ctx->g;
  const std::vector<std::string> vars = p.child()->AllVariables();

  std::vector<std::vector<const GqlPathRow*>> by_src(g.NumNodes());
  for (const GqlPathRow& r : inner.value()) {
    by_src[r.path.Src(g.skeleton())].push_back(&r);
  }

  // A partial composition: the concatenated path plus, per variable, the
  // list of per-iteration values collected so far.
  struct Partial {
    Path path;
    std::map<std::string, std::vector<GqlValue>> groups;

    bool operator<(const Partial& o) const {
      if (!(path == o.path)) return path < o.path;
      return groups < o.groups;
    }
    bool operator==(const Partial& o) const {
      return path == o.path && groups == o.groups;
    }
  };

  auto to_row = [&vars](const Partial& partial) {
    GqlPathRow row;
    row.path = partial.path;
    for (const std::string& v : vars) {
      auto it = partial.groups.find(v);
      row.mu[v] = GqlValue(it == partial.groups.end()
                               ? std::vector<GqlValue>{}
                               : it->second);
    }
    return row;
  };

  // The frontier of partial compositions is this evaluator's blow-up term
  // (the 6-clique bag-semantics query grows it past any machine): account
  // it per inserted Partial, releasing each round's frontier when the next
  // one replaces it.
  const QueryContext* gov = ctx->options.cancel;
  auto partial_bytes = [](const Partial& partial) {
    uint64_t bytes = 96 + partial.path.objects().size() * sizeof(ObjectRef);
    for (const auto& [var, values] : partial.groups) {
      bytes += 48 + var.size() + values.size() * 24;
    }
    return bytes;
  };
  ScopedMemoryCharge frontier_bytes(gov);
  uint64_t current_bytes = 0;
  bool cancelled = false;

  std::set<Partial> current;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    Partial start{Path::OfNode(n), {}};
    const uint64_t bytes = partial_bytes(start);
    if (!frontier_bytes.Charge(bytes)) {
      ctx->truncated = true;
      cancelled = true;
      break;
    }
    current_bytes += bytes;
    current.insert(std::move(start));
  }
  std::vector<GqlPathRow> result;
  auto emit = [&](const Partial& partial) {
    if (!ChargeRows(gov) || !ChargeMemory(gov, partial_bytes(partial))) {
      ctx->truncated = true;
      cancelled = true;
      return false;
    }
    result.push_back(to_row(partial));
    return true;
  };
  if (p.lo() == 0 && !cancelled) {
    for (const Partial& partial : current) {
      if (!emit(partial)) break;
    }
  }
  for (size_t j = 1; j <= p.hi() && !cancelled; ++j) {
    if (gov != nullptr && Failpoint::ShouldFail("coregql.frontier")) {
      gov->Trip(StopCause::kMemoryBudget);
    }
    std::set<Partial> next;
    uint64_t next_bytes = 0;
    for (const Partial& prefix : current) {
      // One round over a large frontier can take seconds; probe inside it,
      // not just per round.
      if (ShouldStop(gov)) {
        ctx->truncated = true;
        cancelled = true;
        break;
      }
      for (const GqlPathRow* r : by_src[prefix.path.Tgt(g.skeleton())]) {
        if (prefix.path.Length() + r->path.Length() >
            ctx->options.max_path_length) {
          ctx->truncated = true;
          continue;
        }
        Result<Path> joined =
            Path::Concat(g.skeleton(), prefix.path, r->path);
        if (!joined.ok()) continue;
        Partial extended;
        extended.path = std::move(joined).value();
        extended.groups = prefix.groups;
        for (const std::string& v : vars) {
          auto it = r->mu.find(v);
          if (it != r->mu.end()) extended.groups[v].push_back(it->second);
        }
        auto [pos, inserted] = next.insert(std::move(extended));
        if (inserted) {
          const uint64_t bytes = partial_bytes(*pos);
          if (!frontier_bytes.Charge(bytes)) {
            ctx->truncated = true;
            cancelled = true;
            break;
          }
          next_bytes += bytes;
        }
      }
      if (cancelled) break;
    }
    if (cancelled) break;
    if (j >= p.lo()) {
      for (const Partial& partial : next) {
        if (!emit(partial)) break;
      }
      if (cancelled) break;
    }
    if (next.empty() || next == current) break;
    current = std::move(next);
    frontier_bytes.Release(current_bytes);
    current_bytes = next_bytes;
    if (result.size() > ctx->options.max_results) {
      ctx->truncated = true;
      break;
    }
  }
  // A cancelled evaluation is partial and gets discarded by deadline-aware
  // callers; don't burn post-deadline time ordering it.
  if (!cancelled) SortUnique(&result);
  return result;
}

Result<std::vector<GqlPathRow>> Eval(EvalContext* ctx, const CorePattern& p) {
  if (ShouldStop(ctx->options.cancel)) {
    ctx->truncated = true;
    return std::vector<GqlPathRow>{};
  }
  const PropertyGraph& g = ctx->g;
  const GraphSnapshot* snap = ctx->options.snapshot;
  switch (p.kind()) {
    case CorePattern::Kind::kNode: {
      std::vector<GqlPathRow> rows;
      auto emit = [&](NodeId n) {
        GqlPathRow row;
        row.path = Path::OfNode(n);
        if (p.var().has_value()) row.mu[*p.var()] = GqlValue(ObjectRef::Node(n));
        rows.push_back(std::move(row));
      };
      if (snap != nullptr && snap->has_node_labels() &&
          p.label().has_value()) {
        std::optional<LabelId> l = g.FindLabel(*p.label());
        if (l.has_value()) {
          for (NodeId n : snap->NodesWithLabel(*l)) emit(n);
        }
        return rows;
      }
      for (NodeId n = 0; n < g.NumNodes(); ++n) {
        if (!LabelMatches(g, ObjectRef::Node(n), p.label())) continue;
        emit(n);
      }
      return rows;
    }
    case CorePattern::Kind::kEdge: {
      std::vector<GqlPathRow> rows;
      auto emit = [&](EdgeId e) {
        ObjectRef o = ObjectRef::Edge(e);
        GqlPathRow row;
        row.path = Path::MakeUnchecked({ObjectRef::Node(g.Src(e)), o,
                                        ObjectRef::Node(g.Tgt(e))});
        if (p.var().has_value()) row.mu[*p.var()] = GqlValue(o);
        rows.push_back(std::move(row));
      };
      if (snap != nullptr && p.label().has_value()) {
        std::optional<LabelId> l = g.FindLabel(*p.label());
        if (l.has_value()) {
          for (const GraphSnapshot::Hop& hop : snap->EdgesWithLabel(*l)) {
            emit(hop.edge);
          }
        }
        return rows;
      }
      for (EdgeId e = 0; e < g.NumEdges(); ++e) {
        if (!LabelMatches(g, ObjectRef::Edge(e), p.label())) continue;
        emit(e);
      }
      return rows;
    }
    case CorePattern::Kind::kConcat: {
      Result<std::vector<GqlPathRow>> lhs = Eval(ctx, *p.left());
      if (!lhs.ok()) return lhs;
      Result<std::vector<GqlPathRow>> rhs = Eval(ctx, *p.right());
      if (!rhs.ok()) return rhs;
      std::vector<std::vector<const GqlPathRow*>> by_src(g.NumNodes());
      for (const GqlPathRow& r : rhs.value()) {
        by_src[r.path.Src(g.skeleton())].push_back(&r);
      }
      std::vector<GqlPathRow> rows;
      for (const GqlPathRow& l : lhs.value()) {
        for (const GqlPathRow* r : by_src[l.path.Tgt(g.skeleton())]) {
          if (l.path.Length() + r->path.Length() >
              ctx->options.max_path_length) {
            ctx->truncated = true;
            continue;
          }
          GqlBinding merged;
          MergeOutcome outcome = MergeGql(l.mu, r->mu, &merged);
          if (outcome == MergeOutcome::kDegreeError) {
            return Error(
                "variable bound as both a singleton and a group across a "
                "concatenation (GQL degree restriction)");
          }
          if (outcome == MergeOutcome::kMismatch) continue;
          Result<Path> joined = Path::Concat(g.skeleton(), l.path, r->path);
          if (!joined.ok()) continue;
          const uint64_t row_bytes =
              96 + joined.value().objects().size() * sizeof(ObjectRef);
          if (!ChargeMemory(ctx->options.cancel, row_bytes)) {
            // Context tripped; result is partial and will be discarded.
            ctx->truncated = true;
            return rows;
          }
          rows.push_back({std::move(joined).value(), std::move(merged)});
        }
      }
      SortUnique(&rows);
      return rows;
    }
    case CorePattern::Kind::kUnion: {
      Result<std::vector<GqlPathRow>> lhs = Eval(ctx, *p.left());
      if (!lhs.ok()) return lhs;
      Result<std::vector<GqlPathRow>> rhs = Eval(ctx, *p.right());
      if (!rhs.ok()) return rhs;
      std::vector<GqlPathRow> rows = std::move(lhs).value();
      rows.insert(rows.end(), rhs.value().begin(), rhs.value().end());
      SortUnique(&rows);
      return rows;
    }
    case CorePattern::Kind::kRepeat:
      return EvalRepeat(ctx, p);
    case CorePattern::Kind::kCondition: {
      Result<std::vector<GqlPathRow>> inner = Eval(ctx, *p.child());
      if (!inner.ok()) return inner;
      std::vector<GqlPathRow> rows;
      for (GqlPathRow& r : inner.value()) {
        if (EvalCoreCondition(g, *p.cond(), SingletonPart(r.mu))) {
          rows.push_back(std::move(r));
        }
      }
      return rows;
    }
  }
  return Error("unknown pattern kind");
}

}  // namespace

Result<GqlEvalResult> EvalGqlGroupPattern(const PropertyGraph& g,
                                          const CorePattern& pattern,
                                          const CorePathEvalOptions& options) {
  EvalContext ctx{g, options};
  Result<std::vector<GqlPathRow>> rows = Eval(&ctx, pattern);
  if (!rows.ok()) return rows.error();
  GqlEvalResult result;
  result.rows = std::move(rows).value();
  result.truncated = ctx.truncated;
  return result;
}

}  // namespace gqzoo
